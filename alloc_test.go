// Allocation regression tests: testing.AllocsPerRun with hard ceilings on
// the hot paths the allocation-free core rewrite optimized, so the wins
// cannot silently regress between benchmark runs (the bench guard only
// gates ns/op). Package-internal counterparts live next to their subjects
// (TestBroadcastAllocs in internal/netsim, TestInsertAllocs in
// internal/blocktree); this file pins the façade-level collector pass.
package blockadt_bench

import (
	"testing"

	blockadt "blockadt/pkg/blockadt"
)

// TestCollectorAllocs pins the metric-collector pass over a completed run.
// The collectors iterate the history's derived views (Reads, Appends);
// those are computed once and cached on the immutable history, so a full
// pass over every registered metric costs a handful of small allocations
// (per-collector scratch maps), not a per-collector rebuild and re-sort of
// the read sequence. Measured ≈6 allocs/pass; the ceiling leaves headroom
// for new collectors while still failing instantly if the history caching
// regresses (which costs hundreds per pass).
func TestCollectorAllocs(t *testing.T) {
	res, err := blockadt.Simulate("Bitcoin", blockadt.WithBlocks(30), blockadt.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	run := blockadt.MetricRun{
		N: 8, TargetBlocks: 30, Blocks: res.Blocks, Forks: res.Forks,
		Ticks: res.Ticks, Delivered: res.Delivered, Dropped: res.Dropped,
		Bytes: res.Bytes, History: res.History,
	}
	specs := blockadt.Metrics()
	if len(specs) == 0 {
		t.Fatal("no metric specs registered")
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, spec := range specs {
			spec.Compute(run)
		}
	})
	if allocs > 32 {
		t.Fatalf("collector pass allocated %.1f objects, want ≤ 32", allocs)
	}
}
