package blockadt_bench

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"blockadt/pkg/blockadt"
)

// benchRun is one measured configuration of the sweep benchmark.
type benchRun struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	SpeedupVsP1 float64 `json:"speedupVsParallel1,omitempty"`
}

// benchSweepReport is the BENCH_sweep.json schema: the sweep matrix
// benchmark at parallelism 1/4/NumCPU, the same matrix with the full
// metric pipeline enabled, and the measured metrics-collection overhead.
type benchSweepReport struct {
	Benchmark    string `json:"benchmark"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	NumCPU       int    `json:"numCPU"`
	Configs      int    `json:"configs"`
	Seeds        int    `json:"seeds"`
	TargetBlocks int    `json:"targetBlocks"`
	// Plain is the metrics-disabled engine (BenchmarkSweepMatrix's
	// workload); MetricsEnabled is the same matrix with every registered
	// collector running.
	Plain          []benchRun `json:"plain"`
	MetricsEnabled []benchRun `json:"metricsEnabled"`
	// MetricsOverheadPercent compares metrics-enabled to plain at
	// parallelism 1 (the parallelism-independent number).
	MetricsOverheadPercent float64 `json:"metricsOverheadPercent"`
	Note                   string  `json:"note"`
}

// TestEmitBenchSweepBaseline regenerates BENCH_sweep.json, the committed
// benchmark baseline for sweep-engine trend tracking. It re-runs the
// sweep benchmarks in-process (testing.Benchmark), so it is slow and
// only runs when explicitly requested:
//
//	BENCH_SWEEP=1 go test -run TestEmitBenchSweepBaseline .
func TestEmitBenchSweepBaseline(t *testing.T) {
	if os.Getenv("BENCH_SWEEP") == "" {
		t.Skip("set BENCH_SWEEP=1 to regenerate BENCH_sweep.json")
	}

	plainMatrix := blockadt.Matrix{Seeds: 4, TargetBlocks: 30}
	metricMatrix := blockadt.Matrix{Seeds: 4, TargetBlocks: 30, Metrics: blockadt.MetricNames()}
	configs, err := plainMatrix.Configs()
	if err != nil {
		t.Fatal(err)
	}

	measure := func(m blockadt.Matrix, par int) benchRun {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := blockadt.Run(m, par)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Matched != rep.Total {
					b.Fatalf("%d/%d configurations mismatched", rep.Total-rep.Matched, rep.Total)
				}
			}
		})
		return benchRun{
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}

	report := benchSweepReport{
		Benchmark:    "BenchmarkSweepMatrix",
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Configs:      len(configs),
		Seeds:        4,
		TargetBlocks: 30,
		Note: "ns/op of the 28-config scenario sweep; metricsEnabled runs every registered collector per scenario. " +
			"Overhead is measured at parallelism 1. Regenerate with: BENCH_SWEEP=1 go test -run TestEmitBenchSweepBaseline .",
	}

	var plainP1 int64
	for _, par := range dedupe(1, 4, runtime.NumCPU()) {
		run := measure(plainMatrix, par)
		run.Name = benchName(par)
		if par == 1 {
			plainP1 = run.NsPerOp
		} else if plainP1 > 0 {
			run.SpeedupVsP1 = float64(plainP1) / float64(run.NsPerOp)
		}
		report.Plain = append(report.Plain, run)
	}
	var metricsP1 int64
	for _, par := range dedupe(1, runtime.NumCPU()) {
		run := measure(metricMatrix, par)
		run.Name = benchName(par) + "+metrics"
		if par == 1 {
			metricsP1 = run.NsPerOp
		}
		report.MetricsEnabled = append(report.MetricsEnabled, run)
	}
	if plainP1 > 0 {
		report.MetricsOverheadPercent = 100 * float64(metricsP1-plainP1) / float64(plainP1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sweep.json", append(enc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_sweep.json written: plain p1 %d ns/op, metrics p1 %d ns/op (overhead %.1f%%)",
		plainP1, metricsP1, report.MetricsOverheadPercent)
}

func benchName(par int) string {
	return "parallel=" + strconv.Itoa(par)
}

// dedupe drops repeated parallelism values in order (NumCPU collapses
// into 1 or 4 on small containers).
func dedupe(vals ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
