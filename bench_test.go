// Package blockadt_bench holds the top-level benchmark harness: one
// benchmark per paper artifact (Table 1 and Figures 1-14 / Theorems), as
// indexed in DESIGN.md, plus the ablation benches for the design decisions
// DESIGN.md calls out. Each benchmark regenerates its artifact end to end,
// so `go test -bench=. -benchmem` reproduces the entire evaluation.
package blockadt_bench

import (
	"fmt"
	"runtime"
	"testing"

	"blockadt/internal/adt"
	"blockadt/internal/blocktree"
	"blockadt/internal/chains"
	"blockadt/internal/consensus"
	"blockadt/internal/consistency"
	"blockadt/internal/core"
	"blockadt/internal/experiments"
	"blockadt/internal/fairness"
	"blockadt/internal/figures"
	"blockadt/internal/finality"
	"blockadt/internal/history"
	"blockadt/internal/ledger"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
	"blockadt/internal/pbft"
	"blockadt/internal/prng"
	"blockadt/internal/registers"
	"blockadt/pkg/blockadt"
)

// BenchmarkSweepMatrix measures the scenario-sweep engine on a 28-config
// matrix (7 systems × 4 seeds) at parallelism 1, 4 and NumCPU. The runs
// are embarrassingly parallel and independent, so on a c-core machine the
// wall-clock time at parallelism min(4, c) drops by ~min(4, c)× versus
// parallelism 1 while the results stay byte-identical (the determinism
// regression test in pkg/blockadt pins that).
func BenchmarkSweepMatrix(b *testing.B) {
	matrix := blockadt.Matrix{Seeds: 4, TargetBlocks: 30}
	if configs, err := matrix.Configs(); err != nil || len(configs) < 28 {
		b.Fatalf("matrix expanded to %d configs (err=%v), want >= 28", len(configs), err)
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := blockadt.Run(matrix, par)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Matched != rep.Total {
					b.Fatalf("%d/%d configurations mismatched", rep.Total-rep.Matched, rep.Total)
				}
			}
		})
	}
}

// BenchmarkSweepMatrixMetrics measures the same matrix with the full
// metric-collection pipeline enabled (every registered collector on every
// run). Comparing parallel=1 here against BenchmarkSweepMatrix/parallel=1
// isolates the metrics overhead — the number BENCH_sweep.json records.
func BenchmarkSweepMatrixMetrics(b *testing.B) {
	matrix := blockadt.Matrix{Seeds: 4, TargetBlocks: 30, Metrics: blockadt.MetricNames()}
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := blockadt.Run(matrix, par)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Matched != rep.Total {
					b.Fatalf("%d/%d configurations mismatched", rep.Total-rep.Matched, rep.Total)
				}
				if len(rep.Results[0].Metrics) == 0 {
					b.Fatal("metrics not collected")
				}
			}
		})
	}
}

// BenchmarkMetricCollectors measures the collector pass alone: every
// registered metric over one completed mid-size run, the marginal cost a
// metrics-enabled scenario pays after its simulation finishes.
func BenchmarkMetricCollectors(b *testing.B) {
	res, err := blockadt.Simulate("Bitcoin", blockadt.WithBlocks(30), blockadt.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	run := blockadt.MetricRun{
		N: 8, TargetBlocks: 30, Blocks: res.Blocks, Forks: res.Forks,
		Ticks: res.Ticks, Delivered: res.Delivered, Dropped: res.Dropped,
		Bytes: res.Bytes, History: res.History,
	}
	specs := blockadt.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, spec := range specs {
			if _, ok := spec.Compute(run); ok {
				n++
			}
		}
		if n == 0 {
			b.Fatal("no collector applied")
		}
	}
}

// BenchmarkSeedAggregation measures the streaming fold: 1000 synthetic
// results through a SeedAggregator (past the exact-quantile limit, so
// the P² switch is included).
func BenchmarkSeedAggregation(b *testing.B) {
	results := make([]blockadt.Result, 1000)
	for i := range results {
		results[i] = blockadt.Result{
			Config: blockadt.Scenario{System: "Bitcoin", Link: "sync", Adversary: "none", N: 8, Blocks: 30, SeedIndex: i},
			Match:  true,
			Metrics: map[string]float64{
				"fork_rate": float64(i%7) / 10, "msg_bytes": float64(10000 + i),
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggs := blockadt.AggregateSeeds(results)
		if len(aggs) != 1 || aggs[0].Seeds != 1000 {
			b.Fatal("bad aggregation")
		}
	}
}

// BenchmarkTable1Classify regenerates Table 1: simulate all seven systems
// and classify their histories.
func BenchmarkTable1Classify(b *testing.B) {
	p := chains.Params{N: 8, TargetBlocks: 30, Seed: 42}
	for i := 0; i < b.N; i++ {
		rows := chains.Classify(p)
		if len(rows) != 7 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkTable1PerSystem times each row of Table 1 separately.
func BenchmarkTable1PerSystem(b *testing.B) {
	p := chains.Params{N: 8, TargetBlocks: 30, Seed: 42}
	for _, sys := range chains.All() {
		b.Run(sys.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := chains.ClassifyOne(sys, p)
				if !row.Match {
					b.Fatalf("%s mismatched", sys.Name())
				}
			}
		})
	}
}

// BenchmarkFig1SequentialSpec replays and recognizes the Figure 1
// transition path.
func BenchmarkFig1SequentialSpec(b *testing.B) {
	bt := blocktree.ADT(blocktree.LongestChain{}, blocktree.AcceptAll)
	seq := []adt.Operation[blocktree.Input, blocktree.Output]{
		adt.Out[blocktree.Input, blocktree.Output](blocktree.AppendOp(blocktree.Block{ID: "b1"}), blocktree.Output{OK: true}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.ReadOp(), blocktree.Output{IsChain: true, Chain: history.Chain{"b0", "b1"}}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.AppendOp(blocktree.Block{ID: "b2"}), blocktree.Output{OK: true}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.ReadOp(), blocktree.Output{IsChain: true, Chain: history.Chain{"b0", "b1", "b2"}}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Recognizes(seq, blocktree.Output.Equal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2StrongConsistency builds and checks the Figure 2 history.
func BenchmarkFig2StrongConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := figures.Fig2(12)
		if !consistency.CheckSC(h, consistency.Options{GraceWindow: 8}).Satisfied() {
			b.Fatal("Fig2 not SC")
		}
	}
}

// BenchmarkFig3EventualConsistency builds and checks the Figure 3 history.
func BenchmarkFig3EventualConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := figures.Fig3(12)
		cls := consistency.Classify(h, consistency.Options{GraceWindow: 8})
		if cls.Level != consistency.LevelEC {
			b.Fatal("Fig3 not EC")
		}
	}
}

// BenchmarkFig4Rejection builds and checks the Figure 4 history.
func BenchmarkFig4Rejection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := figures.Fig4(12)
		if consistency.Classify(h, consistency.Options{GraceWindow: 8}).Level != consistency.LevelNone {
			b.Fatal("Fig4 classified")
		}
	}
}

// BenchmarkFig6OracleTransitions measures the oracle's two operations (the
// Figure 6 path).
func BenchmarkFig6OracleTransitions(b *testing.B) {
	o := oracle.NewProdigal(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := oracle.ObjectID(fmt.Sprintf("o%d", i))
		tok, ok := o.GetToken(0, obj, obj+"-c")
		if !ok {
			b.Fatal("refused")
		}
		if _, ins, err := o.ConsumeToken(tok); err != nil || !ins {
			b.Fatal("consume failed")
		}
	}
}

// BenchmarkFig7AppendRefinement measures the composed append+read path.
func BenchmarkFig7AppendRefinement(b *testing.B) {
	bc := core.New(core.Config{Oracle: oracle.NewFrugal(1, 1, 1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := blocktree.BlockID(fmt.Sprintf("n%d", i))
		if ok, err := bc.Append(0, blocktree.Block{ID: id}); err != nil || !ok {
			b.Fatal("append failed")
		}
	}
}

// BenchmarkFig8Hierarchy samples the refinement hierarchy across oracle
// classes.
func BenchmarkFig8Hierarchy(b *testing.B) {
	for _, k := range []int{1, 2, 4, oracle.Unbounded} {
		name := fmt.Sprintf("k=%d", k)
		if k == oracle.Unbounded {
			name = "prodigal"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.ForkWorkload{K: k, Procs: 8, Rounds: 6, Seed: 17}.Run()
				if k > 0 && res.MaxFanout > k {
					b.Fatal("bound violated")
				}
			}
		})
	}
}

// BenchmarkFig9CASFromCT measures the Figure 9/10 reduction.
func BenchmarkFig9CASFromCT(b *testing.B) {
	cas := registers.NewCASFromCT(registers.NewConsumeTokenK1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := fmt.Sprintf("h%d", i)
		if cas.CompareAndSwapEmpty(h, "blk") != "" {
			b.Fatal("lost on fresh object")
		}
	}
}

// BenchmarkThm42ConsensusFromFrugal measures Protocol A (Figure 11) for
// growing process counts.
func BenchmarkThm42ConsensusFromFrugal(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			merits := make([]float64, n)
			for i := range merits {
				merits[i] = 1
			}
			for i := 0; i < b.N; i++ {
				o := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: uint64(i)})
				c, err := consensus.NewFromFrugal(o, "b0")
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < n; p++ {
					if _, err := c.Propose(p, consensus.Value(fmt.Sprintf("v%d", p))); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkThm43ProdigalFromSnapshot measures the Figure 12 reduction.
func BenchmarkThm43ProdigalFromSnapshot(b *testing.B) {
	const tokens = 16
	for i := 0; i < b.N; i++ {
		ct := registers.NewCTFromSnapshot(tokens)
		for t := 0; t < tokens; t++ {
			ct.Consume("h", fmt.Sprintf("t%d", t))
		}
	}
}

// BenchmarkThm47LRCNecessity measures the reliable-vs-lossy replicated runs
// of the Update Agreement experiment.
func BenchmarkThm47LRCNecessity(b *testing.B) {
	r := experiments.Runner{Seed: 42}
	for i := 0; i < b.N; i++ {
		res := r.T46T47UpdateAgreementNecessity()
		if !res.Pass {
			b.Fatal("experiment failed")
		}
	}
}

// BenchmarkThm48ForkImpossibility measures the Theorem 4.8 construction.
func BenchmarkThm48ForkImpossibility(b *testing.B) {
	r := experiments.Runner{Seed: 42}
	for i := 0; i < b.N; i++ {
		if !r.T48ForkImpossibility().Pass {
			b.Fatal("experiment failed")
		}
	}
}

// BenchmarkThm32KForkCoherence measures the contended oracle workload.
func BenchmarkThm32KForkCoherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.ForkWorkload{K: 2, Procs: 8, Rounds: 6, Seed: uint64(i)}.Run()
		if res.MaxFanout > 2 {
			b.Fatal("bound violated")
		}
	}
}

// BenchmarkAllExperiments runs the complete experiment index (the
// EXPERIMENTS.md generator's workload).
func BenchmarkAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range (experiments.Runner{Seed: 42}).All() {
			if !r.Pass {
				b.Fatalf("%s failed", r.ID)
			}
		}
	}
}

// --- checker micro-benchmarks (the consistency checker is the hot path of
// every experiment) ---

func syntheticHistory(reads, chainLen int) *history.History {
	rec := history.NewRecorder()
	chain := make(history.Chain, 1, chainLen+1)
	chain[0] = "b0"
	for i := 0; i < chainLen; i++ {
		id := history.BlockRef(fmt.Sprintf("c%d", i))
		op := rec.Invoke(0, history.Label{Kind: history.KindAppend, Block: id})
		rec.Respond(op, history.Label{Kind: history.KindAppend, Block: id, Parent: chain[len(chain)-1], OK: true})
		chain = append(chain, id)
	}
	for i := 0; i < reads; i++ {
		p := history.ProcID(i % 4)
		n := 1 + (i*chainLen)/reads
		op := rec.Invoke(p, history.Label{Kind: history.KindRead})
		rec.Respond(op, history.Label{Kind: history.KindRead, Chain: chain[:n+1].Clone()})
	}
	return rec.Snapshot()
}

// BenchmarkCheckerStrongPrefix measures Strong Prefix on a 1000-read
// history (O(N log N + N·L) via the length-sorted adjacency check).
func BenchmarkCheckerStrongPrefix(b *testing.B) {
	h := syntheticHistory(1000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !consistency.StrongPrefix(h, consistency.Options{}).Satisfied {
			b.Fatal("violated")
		}
	}
}

// BenchmarkCheckerEventualPrefix measures Eventual Prefix on the same
// history (O(N·L) via the suffix common-prefix computation).
func BenchmarkCheckerEventualPrefix(b *testing.B) {
	h := syntheticHistory(1000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !consistency.EventualPrefix(h, consistency.Options{}).Satisfied {
			b.Fatal("violated")
		}
	}
}

// BenchmarkCheckerFullSC measures the complete SC report.
func BenchmarkCheckerFullSC(b *testing.B) {
	h := syntheticHistory(1000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !consistency.CheckSC(h, consistency.Options{}).Satisfied() {
			b.Fatal("violated")
		}
	}
}

// --- ablation benches (DESIGN.md design decisions) ---

// BenchmarkAblationTapeVsCrypto compares the merit-tape PRF lookup against
// recomputing a hash-chain per attempt (what a naive PoW abstraction would
// do): the tape design keeps getToken O(1) with zero allocations.
func BenchmarkAblationTapeVsCrypto(b *testing.B) {
	b.Run("tape-prf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = prng.Bernoulli(prng.Cell(42, 3, uint64(i)), 0.01)
		}
	})
	b.Run("hash-chain", func(b *testing.B) {
		// Simulated hash chain: iterate the mixer 16 times per attempt,
		// the cost profile of digesting a block header.
		state := uint64(42)
		for i := 0; i < b.N; i++ {
			v := state
			for r := 0; r < 16; r++ {
				v = prng.Mix(v, uint64(r))
			}
			state = v
		}
	})
}

// BenchmarkAblationHorizon sweeps the finitization grace window: smaller
// windows check more pairs (stricter, slower), larger windows forgive more.
func BenchmarkAblationHorizon(b *testing.B) {
	h := syntheticHistory(1000, 200)
	for _, w := range []int{10, 50, 250, 500} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			opts := consistency.Options{GraceWindow: w}
			for i := 0; i < b.N; i++ {
				consistency.EventualPrefix(h, opts)
				consistency.EverGrowingTree(h, opts)
			}
		})
	}
}

// BenchmarkAblationSelectors compares the selection functions' cost on a
// forked tree — the per-read cost each system pays.
func BenchmarkAblationSelectors(b *testing.B) {
	res := core.ForkWorkload{K: oracle.Unbounded, Procs: 8, Rounds: 10, Seed: 5}.Run()
	tree := res.Tree
	for _, sel := range []blocktree.Selector{blocktree.LongestChain{}, blocktree.HeaviestChain{}, blocktree.GHOST{}, blocktree.SingleChain{}} {
		b.Run(sel.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c := sel.Select(tree); len(c) == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}

// --- extension benches (PBFT, gossip, finality, selfish mining, ledger,
// linearizability) ---

// BenchmarkPBFTDecision measures one full three-phase PBFT slot at n=4.
func BenchmarkPBFTDecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := netsim.New(netsim.Synchronous{Delta: 3}, uint64(i))
		reps := make([]*pbft.Replica, 4)
		for j := 0; j < 4; j++ {
			r := pbft.NewReplica(history.ProcID(j), pbft.Config{N: 4, ViewTimeout: 64})
			reps[j] = r
			s.Register(r.ID(), r)
		}
		for j, r := range reps {
			r.Propose(s, 0, fmt.Sprintf("v%d", j))
		}
		s.Run(500)
		if _, ok := reps[0].Decided(0); !ok {
			b.Fatal("no decision")
		}
	}
}

// BenchmarkPBFTChain measures a 15-block PBFT-committed chain run.
func BenchmarkPBFTChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := chains.PBFTChain{}.Run(chains.Params{N: 4, TargetBlocks: 15, Seed: 9})
		if res.Blocks < 15 {
			b.Fatal("short chain")
		}
	}
}

// BenchmarkBroadcast measures the netsim broadcast hot path: one message
// fanned out to 64 registered processes. Every simulator calls this once
// per block per miner, so it is the inner loop of the entire sweep
// engine; the Sim caches the sorted process slice (invalidated on
// Register) instead of re-sorting per call. Gated by benchguard via
// BENCH_baseline.txt.
func BenchmarkBroadcast(b *testing.B) {
	s := netsim.New(netsim.Synchronous{Delta: 4}, 1)
	const procs = 64
	for i := 0; i < procs; i++ {
		s.Register(history.ProcID(i), netsim.HandlerFuncs{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Broadcast(0, netsim.Message{Kind: netsim.UpdateMsg, Block: "b"})
		if i%1024 == 1023 {
			// Drain so the event heap stays bounded. Run(horizon) cannot do
			// this: it jumps virtual time to the horizon, so the next batch
			// of deliveries lands past any fixed horizon and would pile up
			// unprocessed forever. RunToIdle drains by queue emptiness, not
			// by a time window.
			s.RunToIdle(1 << 62)
		}
	}
}

// BenchmarkGossipDissemination measures flooding one block to 8 processes.
func BenchmarkGossipDissemination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := netsim.New(netsim.Synchronous{Delta: 4}, uint64(i))
		gs := make([]*netsim.Gossiper, 8)
		total := 0
		for j := 0; j < 8; j++ {
			g := netsim.NewGossiper(history.ProcID(j), func(*netsim.Sim, netsim.Message) { total++ })
			gs[j] = g
			s.Register(history.ProcID(j), netsim.HandlerFuncs{
				Message: func(sim *netsim.Sim, m netsim.Message) { g.OnMessage(sim, m) },
			})
		}
		gs[0].Publish(s, netsim.Message{Kind: netsim.GossipKind, Block: "b", Origin: 0})
		s.Run(1000)
		if total != 8 {
			b.Fatal("incomplete dissemination")
		}
	}
}

// BenchmarkFinalityGadget measures per-observation cost on a growing chain.
func BenchmarkFinalityGadget(b *testing.B) {
	tree := blocktree.New()
	parent := blocktree.GenesisID
	for i := 0; i < 500; i++ {
		id := blocktree.BlockID(fmt.Sprintf("c%04d", i))
		if err := tree.Insert(blocktree.Block{ID: id, Parent: parent}); err != nil {
			b.Fatal(err)
		}
		parent = id
	}
	g := finality.New(6, blocktree.LongestChain{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Observe(tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfishMining measures the full adversarial run of experiment X7.
func BenchmarkSelfishMining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := chains.Execute(chains.Scenario{
			Adversary: chains.SelfishWithholding,
			Params:    chains.ScenarioParams{Params: chains.Params{N: 6, TargetBlocks: 60, Seed: 31}, Alpha: 0.34},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Adversary.AdversaryMined == 0 {
			b.Fatal("degenerate run")
		}
	}
}

// BenchmarkLedgerReplay measures replaying a 100-block transaction chain.
func BenchmarkLedgerReplay(b *testing.B) {
	w := ledger.NewWorkload(3, 8, 10000)
	tree := blocktree.New()
	parent := blocktree.GenesisID
	for i := 0; i < 100; i++ {
		enc, err := w.NextBatch(5).Encode()
		if err != nil {
			b.Fatal(err)
		}
		id := blocktree.BlockID(fmt.Sprintf("L%03d", i))
		if err := tree.Insert(blocktree.Block{ID: id, Parent: parent, Payload: enc}); err != nil {
			b.Fatal(err)
		}
		parent = id
	}
	chain, _ := tree.ChainTo(parent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ledger.Replay(w.Genesis(), chain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearizabilitySearch measures the Wing–Gong search on a
// maximal-size accepted history.
func BenchmarkLinearizabilitySearch(b *testing.B) {
	bc := core.New(core.Config{Oracle: oracle.NewFrugal(1, 3, 1, 1)})
	for i := 0; i < 8; i++ {
		bc.Append(history.ProcID(i%2), blocktree.Block{ID: blocktree.BlockID(fmt.Sprintf("ln%d", i))})
		bc.Read(history.ProcID(i % 2))
	}
	h := bc.History()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := consistency.Linearizable(h, bc.Selector())
		if err != nil || !ok {
			b.Fatal("not linearizable")
		}
	}
}

// BenchmarkFairnessAnalyze measures the chain-quality analysis of a
// 150-block run history.
func BenchmarkFairnessAnalyze(b *testing.B) {
	res := chains.Bitcoin{}.Run(chains.Params{N: 5, TargetBlocks: 150, Seed: 13})
	merits := []float64{1, 1, 1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := fairness.Analyze(res.History, merits)
		if rep.Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}
