package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// baselineArgs is the canonical CI sweep matrix, shared verbatim by the
// sharded sweep jobs in .github/workflows/ci.yml: every registered
// system, all six link models, both adversaries, two seeds, every
// registered metric. SWEEP_baseline.json is this sweep's canonical JSON.
func baselineArgs(extra ...string) []string {
	args := []string{"-links", "sync,async,psync,lossy,partition,jitter", "-adversaries", "none,selfish",
		"-n", "8", "-seeds", "2", "-blocks", "30", "-seed", "42", "-metrics", "all", "-json"}
	return append(args, extra...)
}

// baselinePath is the committed baseline at the repository root.
const baselinePath = "../../SWEEP_baseline.json"

// TestSweepBaselineCurrent pins SWEEP_baseline.json to the current
// engine: the canonical CI sweep must reproduce the committed baseline
// byte for byte. When an intentional engine change shifts results,
// regenerate with:
//
//	go test ./cmd/btadt -run TestSweepBaselineCurrent -update
//
// and review the diff (`btadt diff` renders it per config and metric).
func TestSweepBaselineCurrent(t *testing.T) {
	got := captureStdout(t, func() error { return cmdSweep(t.Context(), baselineArgs()) })
	if *update {
		if err := os.WriteFile(baselinePath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("missing baseline (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Error("sweep output diverged from SWEEP_baseline.json — if the engine change is intentional, " +
			"regenerate with `go test ./cmd/btadt -run TestSweepBaselineCurrent -update` " +
			"and inspect the drift with `btadt diff`")
	}
}

// TestSweepBaselineShardsCoverMatrix guards the CI sharding setup: both
// halves of the canonical matrix are non-empty and their merged store
// serves the committed baseline exactly (the merge job's contract).
func TestSweepBaselineShardsCoverMatrix(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	for i := 0; i < 2; i++ {
		out := captureStdout(t, func() error {
			// Shards share one store: unioning dirs is exercised by
			// TestSweepShardStoreUnionServesFullMatrix; here both shards
			// write into one store like a single runner would.
			return cmdSweep(t.Context(), baselineArgs("-shard", fmt.Sprintf("%d/2", i), "-store", store, "-resume"))
		})
		if !strings.Contains(out, `"config"`) {
			t.Fatalf("shard %d/2 of the baseline matrix is empty", i)
		}
	}
	served := captureStdout(t, func() error { return cmdSweep(t.Context(), baselineArgs("-store", store, "-resume")) })
	want, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("missing baseline (regenerate with -update): %v", err)
	}
	if served != string(want) {
		t.Error("store-served baseline sweep diverged from SWEEP_baseline.json")
	}
}
