package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"blockadt/pkg/blockadt"
)

// cmdDiff compares two sweep JSON reports (the output of
// `btadt sweep -json`, whether cold, cached, or merged from shards) and
// reports every per-configuration field and metric delta. Numeric fields
// pass when |new-old| <= tol·max(|new|,|old|); categorical fields — the
// consistency verdicts, refinements, a metric collected on one side only
// — must match exactly. A non-clean diff is a non-zero exit: this is the
// primitive CI uses to gate a merged sweep against the committed
// SWEEP_baseline.json.
//
// Hypothesis outcomes (the verdict.json written by `btadt hypothesize`,
// recognized by their "hypothesis" discriminator) are diffed by a
// generic recursive walk over the decoded JSON under the same numeric
// tolerance — the CI gate for the checked-in goldens under hypotheses/.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0, "relative tolerance per numeric field (0.05 = 5%); sweeps are deterministic, so 0 is the honest default")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: btadt diff [-tol T] old.json new.json")
	}
	if *tol < 0 {
		return fmt.Errorf("tolerance must be >= 0, got %v", *tol)
	}
	oldRaw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newRaw, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}

	oldHyp, newHyp := isHypothesisDoc(oldRaw), isHypothesisDoc(newRaw)
	if oldHyp != newHyp {
		return fmt.Errorf("cannot diff a hypothesis outcome against a sweep report (%s vs %s)", fs.Arg(0), fs.Arg(1))
	}
	if oldHyp {
		return diffHypothesis(fs.Arg(0), oldRaw, fs.Arg(1), newRaw, *tol)
	}

	oldRep, err := loadReport(fs.Arg(0), oldRaw)
	if err != nil {
		return err
	}
	newRep, err := loadReport(fs.Arg(1), newRaw)
	if err != nil {
		return err
	}
	d := blockadt.DiffReports(oldRep, newRep, *tol)
	fmt.Print(d.Format())
	if !d.Clean() {
		return fmt.Errorf("%d deltas beyond tolerance %g, %d configs only in %s, %d only in %s",
			d.Breaches(), *tol, len(d.OnlyOld), fs.Arg(0), len(d.OnlyNew), fs.Arg(1))
	}
	return nil
}

// loadReport decodes one sweep report.
func loadReport(path string, raw []byte) (*blockadt.Report, error) {
	rep, err := blockadt.DecodeReport(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// isHypothesisDoc sniffs the hypothesis discriminator without decoding
// the whole document, so sweep reports take the typed path untouched.
func isHypothesisDoc(raw []byte) bool {
	var probe struct {
		Hypothesis string `json:"hypothesis"`
	}
	return json.Unmarshal(raw, &probe) == nil && probe.Hypothesis != ""
}

// diffHypothesis compares two hypothesis outcomes structurally: every
// field of the decoded JSON is walked recursively, numbers under the
// relative tolerance, everything else (verdicts, classes, labels,
// scenario keys) byte-exact. Deltas print with their JSON path, and any
// delta is a non-zero exit.
func diffHypothesis(oldPath string, oldRaw []byte, newPath string, newRaw []byte, tol float64) error {
	var oldDoc, newDoc any
	if err := json.Unmarshal(oldRaw, &oldDoc); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newRaw, &newDoc); err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	var deltas []string
	diffJSON("$", oldDoc, newDoc, tol, &deltas)
	for _, d := range deltas {
		fmt.Println(d)
	}
	if len(deltas) > 0 {
		return fmt.Errorf("%d deltas beyond tolerance %g between %s and %s", len(deltas), tol, oldPath, newPath)
	}
	fmt.Printf("hypothesis outcomes match (%s vs %s, tol %g)\n", oldPath, newPath, tol)
	return nil
}

// diffJSON walks two decoded JSON values in parallel, appending one
// line per mismatch. Objects compare by key union (sorted, so output is
// deterministic), arrays by index, numbers by relative tolerance.
func diffJSON(path string, a, b any, tol float64, deltas *[]string) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*deltas = append(*deltas, fmt.Sprintf("%s: object vs %T", path, b))
			return
		}
		keys := make(map[string]bool, len(av)+len(bv))
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			sub := path + "." + k
			aChild, aOK := av[k]
			bChild, bOK := bv[k]
			switch {
			case !aOK:
				*deltas = append(*deltas, fmt.Sprintf("%s: only in new (%v)", sub, bChild))
			case !bOK:
				*deltas = append(*deltas, fmt.Sprintf("%s: only in old (%v)", sub, aChild))
			default:
				diffJSON(sub, aChild, bChild, tol, deltas)
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*deltas = append(*deltas, fmt.Sprintf("%s: array vs %T", path, b))
			return
		}
		if len(av) != len(bv) {
			*deltas = append(*deltas, fmt.Sprintf("%s: length %d vs %d", path, len(av), len(bv)))
			return
		}
		for i := range av {
			diffJSON(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], tol, deltas)
		}
	case float64:
		bv, ok := b.(float64)
		if !ok {
			*deltas = append(*deltas, fmt.Sprintf("%s: number vs %T", path, b))
			return
		}
		if diff := math.Abs(bv - av); diff > tol*math.Max(math.Abs(av), math.Abs(bv)) && diff != 0 {
			*deltas = append(*deltas, fmt.Sprintf("%s: %v vs %v", path, av, bv))
		}
	default:
		if a != b {
			*deltas = append(*deltas, fmt.Sprintf("%s: %v vs %v", path, a, b))
		}
	}
}
