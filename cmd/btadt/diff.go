package main

import (
	"flag"
	"fmt"
	"os"

	"blockadt/pkg/blockadt"
)

// cmdDiff compares two sweep JSON reports (the output of
// `btadt sweep -json`, whether cold, cached, or merged from shards) and
// reports every per-configuration field and metric delta. Numeric fields
// pass when |new-old| <= tol·max(|new|,|old|); categorical fields — the
// consistency verdicts, refinements, a metric collected on one side only
// — must match exactly. A non-clean diff is a non-zero exit: this is the
// primitive CI uses to gate a merged sweep against the committed
// SWEEP_baseline.json.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0, "relative tolerance per numeric field (0.05 = 5%); sweeps are deterministic, so 0 is the honest default")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: btadt diff [-tol T] old.json new.json")
	}
	if *tol < 0 {
		return fmt.Errorf("tolerance must be >= 0, got %v", *tol)
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		return err
	}
	d := blockadt.DiffReports(oldRep, newRep, *tol)
	fmt.Print(d.Format())
	if !d.Clean() {
		return fmt.Errorf("%d deltas beyond tolerance %g, %d configs only in %s, %d only in %s",
			d.Breaches(), *tol, len(d.OnlyOld), fs.Arg(0), len(d.OnlyNew), fs.Arg(1))
	}
	return nil
}

// loadReport reads one sweep report from disk.
func loadReport(path string) (*blockadt.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := blockadt.DecodeReport(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
