package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blockadt/pkg/blockadt"
)

// writeSweepJSON runs the shared test matrix through `sweep -json` and
// writes the report to a file, optionally mutating it first.
func writeSweepJSON(t *testing.T, path string, mutate func(*blockadt.Report)) {
	t.Helper()
	out := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs()) })
	if mutate != nil {
		rep, err := blockadt.DecodeReport([]byte(out))
		if err != nil {
			t.Fatal(err)
		}
		mutate(rep)
		enc, err := rep.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		out = string(enc)
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiffGoldenIdentical pins `btadt diff` on two byte-identical
// reports: clean verdict, zero exit.
func TestDiffGoldenIdentical(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeSweepJSON(t, a, nil)
	writeSweepJSON(t, b, nil)
	out := captureStdout(t, func() error { return cmdDiff([]string{a, b}) })
	checkGolden(t, "diff_identical", out)
}

// TestDiffGoldenWithinTolerance pins the within-tolerance path: a +4%
// metric drift passes -tol 0.05 but still prints the delta.
func TestDiffGoldenWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeSweepJSON(t, a, nil)
	writeSweepJSON(t, b, func(rep *blockadt.Report) {
		rep.Results[0].Metrics["msg_bytes"] *= 1.04
	})
	out := captureStdout(t, func() error { return cmdDiff([]string{"-tol", "0.05", a, b}) })
	checkGolden(t, "diff_within", out)
}

// TestDiffGoldenRegression pins the regression path: a consistency-level
// flip plus a large numeric drift fail even a generous tolerance, with a
// non-zero exit.
func TestDiffGoldenRegression(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeSweepJSON(t, a, nil)
	writeSweepJSON(t, b, func(rep *blockadt.Report) {
		rep.Results[0].Level = "none"
		rep.Results[0].Match = false
		rep.Results[1].Forks += 10
	})
	out, err := captureStdoutErr(t, func() error { return cmdDiff([]string{"-tol", "0.05", a, b}) })
	if err == nil {
		t.Fatal("diff of a regressed report exited clean")
	}
	if !strings.Contains(err.Error(), "beyond tolerance") {
		t.Fatalf("unexpected diff error: %v", err)
	}
	checkGolden(t, "diff_regress", out)
}

// TestDiffRejectsBadInput covers the CLI error paths: wrong arity,
// negative tolerance, a missing file and a non-report file.
func TestDiffRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	writeSweepJSON(t, a, nil)
	if err := cmdDiff([]string{a}); err == nil {
		t.Error("diff accepted one argument")
	}
	if err := cmdDiff([]string{"-tol", "-1", a, a}); err == nil {
		t.Error("diff accepted a negative tolerance")
	}
	if err := cmdDiff([]string{a, filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("diff accepted a missing file")
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdDiff([]string{a, junk}); err == nil {
		t.Error("diff accepted a non-report file")
	}
}
