package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"blockadt/internal/chains"
	"blockadt/internal/fairness"
)

// cmdFairness runs a PoW simulation with configurable per-miner merits and
// reports the realized block distribution against the merit entitlement —
// the executable reading of the paper's "generic merit parameter that can
// be used to define fairness".
func cmdFairness(args []string) error {
	fs := flag.NewFlagSet("fairness", flag.ExitOnError)
	blocks := fs.Int("blocks", 150, "target chain length")
	seed := fs.Uint64("seed", 13, "simulation seed")
	meritsFlag := fs.String("merits", "0.16,0.04,0.04,0.04,0.04", "comma-separated per-miner token probabilities")
	tol := fs.Float64("tol", 0.15, "total-variation-distance tolerance for the fairness verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var merits []float64
	for _, s := range strings.Split(*meritsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad merit %q: %w", s, err)
		}
		merits = append(merits, v)
	}
	p := chains.Params{N: len(merits), TargetBlocks: *blocks, Seed: *seed, Merits: merits}
	res := chains.Bitcoin{}.Run(p)
	rep := fairness.Analyze(res.History, merits)
	fmt.Printf("Bitcoin run: %d miners, %d blocks committed, %d forks\n\n", len(merits), res.Blocks, res.Forks)
	fmt.Print(rep)
	if rep.Fair(*tol) {
		fmt.Printf("verdict: fair within TVD tolerance %.2f\n", *tol)
	} else {
		fmt.Printf("verdict: UNFAIR (TVD %.3f exceeds %.2f)\n", rep.TVD, *tol)
	}
	return nil
}
