package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"blockadt/pkg/blockadt"
)

// cmdFairness runs a PoW simulation with configurable per-miner merits and
// reports the realized block distribution against the merit entitlement —
// the executable reading of the paper's "generic merit parameter that can
// be used to define fairness".
func cmdFairness(args []string) error {
	fs := flag.NewFlagSet("fairness", flag.ExitOnError)
	blocks := fs.Int("blocks", 150, "target chain length")
	seed := fs.Uint64("seed", 13, "simulation seed (root seed with -seeds > 1)")
	seeds := fs.Int("seeds", 1, "number of derived seeds to sweep")
	parallelism := fs.Int("parallel", 0, "worker pool size for the seed sweep (0 = NumCPU)")
	system := fs.String("system", "Bitcoin", "registered PoW system to simulate")
	meritsFlag := fs.String("merits", "0.16,0.04,0.04,0.04,0.04", "comma-separated per-miner token probabilities")
	tol := fs.Float64("tol", 0.15, "total-variation-distance tolerance for the fairness verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var merits []float64
	for _, s := range strings.Split(*meritsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad merit %q: %w", s, err)
		}
		merits = append(merits, v)
	}
	simulate := func(s uint64) (blockadt.SimResult, error) {
		return blockadt.Simulate(*system,
			blockadt.WithN(len(merits)), blockadt.WithBlocks(*blocks),
			blockadt.WithSeed(s), blockadt.WithMerits(merits...))
	}
	if *seeds > 1 {
		// Workers share nothing but the first error: capture it once and
		// skip the analysis for failed runs instead of feeding a nil
		// history to the analyzer.
		var (
			simErr  error
			errOnce sync.Once
		)
		reports := blockadt.SweepFairnessSeeds(*seed, *seeds, *parallelism, func(s uint64) blockadt.FairnessReport {
			res, err := simulate(s)
			if err != nil {
				errOnce.Do(func() { simErr = err })
				return blockadt.FairnessReport{}
			}
			return blockadt.AnalyzeFairness(res.History, merits)
		})
		if simErr != nil {
			return simErr
		}
		agg := blockadt.AggregateFairness(reports, *tol)
		fmt.Printf("%s seed sweep: %d miners, %d runs from root seed %d\n", *system, len(merits), agg.Runs, *seed)
		fmt.Printf("%d blocks total; TVD mean %.4f max %.4f; %d/%d runs fair at tolerance %.2f\n",
			agg.TotalBlocks, agg.MeanTVD, agg.MaxTVD, agg.FairRuns, agg.Runs, *tol)
		if agg.FairRuns < agg.Runs {
			fmt.Printf("verdict: UNFAIR in %d runs\n", agg.Runs-agg.FairRuns)
		} else {
			fmt.Println("verdict: fair in every run")
		}
		return nil
	}

	res, err := simulate(*seed)
	if err != nil {
		return err
	}
	rep := blockadt.AnalyzeFairness(res.History, merits)
	fmt.Printf("%s run: %d miners, %d blocks committed, %d forks\n\n", *system, len(merits), res.Blocks, res.Forks)
	fmt.Print(rep)
	if rep.Fair(*tol) {
		fmt.Printf("verdict: fair within TVD tolerance %.2f\n", *tol)
	} else {
		fmt.Printf("verdict: UNFAIR (TVD %.3f exceeds %.2f)\n", rep.TVD, *tol)
	}
	return nil
}
