package main

import (
	"flag"

	"blockadt/pkg/blockadt"
)

// runFlags bundles the flags every sweep-backed command shares — seed
// count, worker pool, run store, metric selection — so sweep, stats and
// hypothesize register them once, with identical names, semantics and
// error text, instead of three drifting copies.
type runFlags struct {
	seeds    int
	parallel int
	storeDir string
	resume   bool
	metrics  string
}

// addRunFlags registers the shared flags on fs. The seed default and
// the seeds/metrics usage strings vary per command (sweep defaults to
// one seed, stats to eight, hypothesize to the experiment's own).
func addRunFlags(fs *flag.FlagSet, f *runFlags, seedsDefault int, seedsUsage, metricsUsage string) {
	fs.IntVar(&f.seeds, "seeds", seedsDefault, seedsUsage)
	fs.IntVar(&f.parallel, "parallel", 0, "worker pool size (<1 = NumCPU)")
	fs.StringVar(&f.storeDir, "store", "", "back the sweep with the content-addressed run store at this directory")
	fs.BoolVar(&f.resume, "resume", false, "serve scenarios already in -store from cache instead of failing on a pre-populated store")
	fs.StringVar(&f.metrics, "metrics", "", metricsUsage)
}

// metricNames resolves the -metrics flag: empty → nil (the command
// picks its default), "all" → every registered metric, else the
// comma-split list. Unknown names are not resolved here — they fail in
// Matrix.Configs with the registry's own UnknownNameError, so the
// error text is identical across commands.
func (f *runFlags) metricNames() []string {
	switch f.metrics {
	case "":
		return nil
	case "all":
		return blockadt.MetricNames()
	default:
		return splitList(f.metrics)
	}
}
