package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blockadt/pkg/blockadt"
	"blockadt/pkg/blockadt/hypothesis"
)

// cmdHypothesize runs the statistical verdict harness: each registered
// experiment states one of the paper's claims as an A-vs-B (or
// A-vs-B-vs-C…) comparison over the sweep engine, and the harness
// classifies what the paired seeds actually show — Deterministic,
// Dominance, Monotonicity or Equivalence — gated by an exact sign test.
// Every arm sweeps through the same deterministic engine as `btadt
// sweep`, so outcomes are byte-identical at any -parallel value and
// cache-first under -store -resume.
//
// By default each outcome is written to -dir/<name>/FINDINGS.md (the
// human-readable report) and -dir/<name>/verdict.json (the canonical
// encoding `btadt diff` understands); the checked-in copies under
// hypotheses/ are the repository's goldens. With -json the canonical
// outcome streams to stdout instead and nothing is written. A refuted
// hypothesis fails the command; an inconclusive one does not — absence
// of significance is not evidence of refutation.
func cmdHypothesize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hypothesize", flag.ExitOnError)
	name := fs.String("name", "", "run one experiment by name")
	all := fs.Bool("all", false, "run every registered experiment")
	list := fs.Bool("list", false, "list registered experiments and exit")
	dir := fs.String("dir", "hypotheses", "directory receiving <name>/FINDINGS.md and <name>/verdict.json")
	jsonOut := fs.Bool("json", false, "stream canonical outcome JSON to stdout instead of writing -dir")
	var rf runFlags
	addRunFlags(fs, &rf, 0, "paired seed count (0 = the experiment's own default)",
		"override the per-scenario metric set, or 'all' (must include the experiment's metric)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range hypothesis.All() {
			fmt.Printf("%-28s %-13s %d arms  %s\n", e.Name, e.Class, len(e.Arms), e.Claim)
		}
		return nil
	}

	var selected []hypothesis.Experiment
	switch {
	case *all && *name != "":
		return fmt.Errorf("-all and -name are mutually exclusive")
	case *all:
		selected = hypothesis.All()
	case *name != "":
		e, err := hypothesis.Lookup(*name)
		if err != nil {
			return err
		}
		selected = []hypothesis.Experiment{e}
	default:
		return fmt.Errorf("pick an experiment: -name <experiment>, -all, or -list")
	}

	cfg := hypothesis.Config{Seeds: rf.seeds, Parallelism: rf.parallel, Metrics: rf.metricNames()}

	// One store preflight over every selected arm's matrix: the resume
	// contract is checked against the union up front, so -all behaves
	// like one big sweep rather than n separately-gated ones.
	var matrices []blockadt.Matrix
	for _, e := range selected {
		matrices = append(matrices, e.Matrices(cfg)...)
	}
	runOpts, _, err := storeOptionsMulti(matrices, rf.storeDir, rf.resume, false)
	if err != nil {
		return err
	}
	cfg.Options = runOpts

	var refuted []string
	for _, e := range selected {
		out, err := hypothesis.Run(ctx, e, cfg)
		if err != nil {
			return err
		}
		summary := fmt.Sprintf("%s: %s (expected %s, measured %s)",
			out.Name, strings.ToUpper(string(out.Verdict)), out.Expected, out.Measured)
		if *jsonOut {
			if err := out.EncodeJSON(os.Stdout); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, summary)
		} else {
			expDir := filepath.Join(*dir, out.Name)
			if err := writeOutcome(expDir, out); err != nil {
				return err
			}
			fmt.Printf("%s → %s%c\n", summary, expDir, os.PathSeparator)
		}
		if out.Verdict == hypothesis.Refuted {
			refuted = append(refuted, out.Name)
		}
	}
	if len(refuted) > 0 {
		return fmt.Errorf("%d hypothesis verdict(s) refuted: %s", len(refuted), strings.Join(refuted, ", "))
	}
	return nil
}

// writeOutcome materializes one outcome under dir: FINDINGS.md for the
// reader, verdict.json for `btadt diff` and CI. Both render through
// buffers so a failed render never leaves a truncated file behind.
func writeOutcome(dir string, out *hypothesis.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var findings bytes.Buffer
	if err := out.WriteFindings(&findings); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "FINDINGS.md"), findings.Bytes(), 0o644); err != nil {
		return err
	}
	var verdict bytes.Buffer
	if err := out.EncodeJSON(&verdict); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "verdict.json"), verdict.Bytes(), 0o644)
}
