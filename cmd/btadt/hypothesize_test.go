package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"blockadt/pkg/blockadt/hypothesis"
)

// TestHypothesizeMatchesCommittedGolden runs the CLI end to end for the
// fork-rate experiment and compares both written files byte for byte
// against the checked-in goldens under hypotheses/ — the same gate the
// CI hypothesize-smoke job applies via `btadt diff -tol 0`. Regenerate
// intentionally with `go run ./cmd/btadt hypothesize -all`.
func TestHypothesizeMatchesCommittedGolden(t *testing.T) {
	dir := t.TempDir()
	_ = captureStdout(t, func() error {
		return cmdHypothesize(t.Context(), []string{"-name", "fork-rate-vs-delta", "-dir", dir})
	})
	for _, file := range []string{"verdict.json", "FINDINGS.md"} {
		got, err := os.ReadFile(filepath.Join(dir, "fork-rate-vs-delta", file))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("../../hypotheses/fork-rate-vs-delta", file))
		if err != nil {
			t.Fatalf("missing golden (regenerate with `go run ./cmd/btadt hypothesize -all`): %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s diverged from the committed golden — if the engine change is intentional, "+
				"regenerate with `go run ./cmd/btadt hypothesize -all` and review the drift", file)
		}
	}
}

// TestHypothesizeJSONByteIdenticalAcrossParallelism pins the CLI's
// determinism contract at the -json boundary: serial and NumCPU-wide
// runs emit the same bytes.
func TestHypothesizeJSONByteIdenticalAcrossParallelism(t *testing.T) {
	run := func(parallel string) string {
		return captureStdout(t, func() error {
			return cmdHypothesize(t.Context(), []string{"-name", "fork-rate-vs-delta", "-json", "-parallel", parallel})
		})
	}
	serial := run("1")
	wide := run("0")
	if serial != wide {
		t.Fatalf("hypothesize -json differs between -parallel 1 and %d", runtime.NumCPU())
	}
	var out hypothesis.Outcome
	if err := json.Unmarshal([]byte(serial), &out); err != nil {
		t.Fatalf("stdout is not one canonical outcome document: %v", err)
	}
	if out.Verdict != hypothesis.Confirmed || out.Measured != hypothesis.Dominance {
		t.Fatalf("got verdict %s measured %s, want confirmed Dominance", out.Verdict, out.Measured)
	}
}

// TestHypothesizeSelectionErrors pins the flag-validation surface: a
// missing selection, a conflicting one, and an unknown name (which must
// surface the registry's typed message listing the alternatives).
func TestHypothesizeSelectionErrors(t *testing.T) {
	if err := cmdHypothesize(t.Context(), nil); err == nil || !strings.Contains(err.Error(), "-name") {
		t.Fatalf("no selection: got %v, want guidance mentioning -name", err)
	}
	if err := cmdHypothesize(t.Context(), []string{"-all", "-name", "x"}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("conflicting selection: got %v", err)
	}
	err := cmdHypothesize(t.Context(), []string{"-name", "no-such-experiment"})
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "no-such-experiment"`) ||
		!strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown name: got %v, want the registry's unknown-experiment message", err)
	}
}
