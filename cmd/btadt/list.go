package main

import (
	"flag"
	"fmt"

	"blockadt/pkg/blockadt"
)

// cmdList prints every registered system, oracle, selector, link and
// adversary with its one-line description — the extension surface new
// scenario work plugs into. It doubles as a smoke test of registration
// side effects: an empty section means an init() stopped running.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("systems (Table 1 order):")
	for _, s := range blockadt.Systems() {
		fmt.Printf("  %-12s %-30s %s\n", s.Name, s.Refinement, s.Description)
	}
	fmt.Println("\noracles:")
	for _, o := range blockadt.Oracles() {
		fmt.Printf("  %-12s %s\n", o.Name, o.Description)
	}
	fmt.Println("\nselectors:")
	for _, s := range blockadt.Selectors() {
		fmt.Printf("  %-12s %s\n", s.Name, s.Description)
	}
	fmt.Println("\nlinks:")
	for _, l := range blockadt.Links() {
		fmt.Printf("  %-12s %s\n", l.Name, l.Description)
	}
	fmt.Println("\nadversaries:")
	for _, a := range blockadt.Adversaries() {
		fmt.Printf("  %-12s %s\n", a.Name, a.Description)
	}

	total := len(blockadt.Systems()) + len(blockadt.Oracles()) + len(blockadt.Selectors()) +
		len(blockadt.Links()) + len(blockadt.Adversaries())
	fmt.Printf("\n%d registrations; extend with blockadt.Register{System,Oracle,Selector,Link,Adversary} (see docs/api.md)\n", total)
	return nil
}
