package main

import (
	"flag"
	"fmt"

	"blockadt/pkg/blockadt"
)

// cmdList prints every façade registry with its registrations and
// one-line descriptions — the extension surface new scenario work plugs
// into. It enumerates through blockadt.Registries, so a newly added
// registry (or registration) appears here with no per-registry code. It
// doubles as a smoke test of registration side effects: an empty section
// means an init() stopped running.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}

	registries := blockadt.Registries()
	total := 0
	for i, reg := range registries {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s:\n", reg.Title)
		for _, e := range reg.Entries {
			if e.Detail != "" {
				fmt.Printf("  %-20s %-30s %s\n", e.Name, e.Detail, e.Description)
			} else {
				fmt.Printf("  %-20s %s\n", e.Name, e.Description)
			}
			total++
		}
	}
	fmt.Printf("\n%d registrations across %d registries; extend with blockadt.Register{System,Oracle,Selector,Link,Adversary,Topology,Metric} (see docs/api.md)\n",
		total, len(registries))
	return nil
}
