// Command btadt is the reproduction driver for "Blockchain Abstract Data
// Type" (Anceaume et al., PPoPP'19 poster / arXiv:1802.09877). It is built
// entirely on the public façade (blockadt/pkg/blockadt); the `internal/`
// packages are not a supported import path, and CI rejects any direct use.
//
// Usage:
//
//	btadt list
//	    Print every registered system, oracle, selector, link, adversary
//	    and metric with one-line descriptions.
//
//	btadt classify   [-n 8] [-blocks 30] [-seed 42] [-system NAME] [-v]
//	    Regenerate Table 1: simulate each blockchain system and classify
//	    its recorded history against the BT consistency criteria.
//
//	btadt experiments [-seed 42]
//	    Run the full per-figure/per-theorem experiment index and print
//	    paper-claim vs measured for each.
//
//	btadt hierarchy  [-procs 8] [-rounds 6] [-seed 17]
//	    Sample the refinement hierarchy of Figures 8/14: realized fork
//	    fanout per oracle class.
//
//	btadt figures    [-tail 12]
//	    Check the example histories of Figures 2-4 against SC and EC.
//
//	btadt consensus  [-n 16] [-seed 1]
//	    Solve consensus from the frugal k=1 oracle (Protocol A, Fig 11).
//
//	btadt sweep      [-systems a,b] [-links sync,async,psync] [-adversaries none,selfish]
//	                 [-n 8,16] [-seeds 4] [-seed 42] [-parallel 0] [-json] [-metrics m1,m2|all]
//	                 [-shard i/n] [-store DIR] [-resume] [-store-gc] [-trace out.ndjson] [-v]
//	    Expand and run a scenario matrix across the worker pool; every
//	    configuration gets an independent derived prng stream, so the
//	    output is identical at any -parallel value. -store backs the
//	    sweep with the content-addressed run store (computed results are
//	    persisted; with -resume, cached ones are served without
//	    simulating — byte-identical output either way); -shard i/n runs
//	    one deterministic partition of the matrix for CI fan-out.
//	    -trace writes one NDJSON span per scenario with queue/store/
//	    simulate phase timings; -v adds a periodic progress line on
//	    stderr. Neither changes the sweep output by a byte.
//
//	btadt diff       [-tol 0.05] old.json new.json
//	    Compare two sweep JSON reports per configuration and metric,
//	    under a relative tolerance for numeric fields. Non-zero exit on
//	    drift — the CI regression gate against SWEEP_baseline.json. Also
//	    accepts two hypothesize verdict.json files (recognized by their
//	    "hypothesis" discriminator) and diffs them field by field.
//
//	btadt hypothesize [-name EXP | -all | -list] [-dir hypotheses] [-json]
//	                 [-seeds 0] [-parallel 0] [-metrics m1,m2|all]
//	                 [-store DIR] [-resume]
//	    Run a registered hypothesis experiment: sweep each arm through
//	    the deterministic engine, pair results seed by seed, and issue a
//	    confirmed/refuted/inconclusive verdict for the claimed class
//	    (Deterministic, Dominance, Monotonicity, Equivalence) gated by
//	    an exact paired sign test. Writes -dir/<name>/FINDINGS.md and
//	    verdict.json (or streams canonical JSON with -json); refuted
//	    verdicts exit non-zero. Cache-first under -store -resume, like
//	    sweep. See docs/hypotheses.md.
//
//	btadt stats      [-systems a,b] [-links sync,async,psync] [-adversaries none,selfish]
//	                 [-n 8] [-seeds 8] [-seed 42] [-metrics m1,m2] [-format table|json|csv]
//	                 [-parallel 0] [-store DIR] [-resume]
//	    Sweep a matrix with metric collection enabled and aggregate each
//	    configuration across its seeds (mean/std/min/max/p50/p99 per
//	    metric, streaming accumulators). Byte-identical at any -parallel
//	    value, like sweep.
//
//	btadt serve      [-addr :8423] -store DIR [-parallel 0] [-max-body BYTES]
//	                 [-max-sweeps N] [-lease-ttl 5m] [-log-level info]
//	                 [-log-format text|json] [-debug-addr :6060]
//	btadt serve      -worker URL -store DIR [-name ID] [-idle-exit] [-poll 2s]
//	    Run the cache-first sweep service: POST /v1/sweeps streams a
//	    matrix's results back as NDJSON, identical (even concurrent)
//	    resubmissions are served from the shared run store without
//	    re-simulating, and POST /v1/work fans a matrix out across
//	    -worker processes that lease deterministic shards and upload
//	    their content-addressed results. Every request is logged with a
//	    request ID (echoed as X-Request-Id); /metricsz answers JSON by
//	    default and Prometheus exposition under `Accept: text/plain`;
//	    -debug-addr opts into live pprof on a separate listener.
//	    SIGINT/SIGTERM drains gracefully. See docs/serve.md for the API
//	    and docs/observability.md for the telemetry surface.
//
//	btadt version
//	    Print the build triple: module version, Go toolchain, and the
//	    engine version that namespaces every cached result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"blockadt/pkg/blockadt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One signal-aware context feeds every long-running command: the
	// first SIGINT/SIGTERM cancels it (sweeps stop admitting scenarios,
	// flush their store index and exit; serve drains connections), the
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "hierarchy":
		err = cmdHierarchy(os.Args[2:])
	case "figures":
		err = cmdFigures(os.Args[2:])
	case "consensus":
		err = cmdConsensus(os.Args[2:])
	case "fairness":
		err = cmdFairness(os.Args[2:])
	case "selfish":
		err = cmdSelfish(os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "stats":
		err = cmdStats(ctx, os.Args[2:])
	case "hypothesize":
		err = cmdHypothesize(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "version":
		err = cmdVersion()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "btadt: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Interrupted by signal after a clean teardown: completed
			// store writes are flushed, so the next -resume picks up
			// where this run stopped.
			fmt.Fprintln(os.Stderr, "btadt: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "btadt:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: btadt <command> [flags]

commands:
  list         print every registered system, oracle, selector, link, adversary and metric
  classify     regenerate Table 1 (system → consistency classification)
  experiments  run the per-figure/per-theorem experiment index
  hierarchy    sample the refinement hierarchy (Figures 8/14)
  figures      check the example histories of Figures 2-4
  consensus    solve consensus from the frugal k=1 oracle (Figure 11)
  fairness     analyze proposer fairness against the merit parameter
  selfish      run the selfish-mining chain-quality experiment
  sweep        run a concurrent scenario matrix (system × link × adversary × n × seed)
               [-shard i/n] [-store DIR] [-resume] for incremental / CI-sharded sweeps
  stats        sweep a matrix with metric collection and print per-config aggregates
  hypothesize  run a statistical A-vs-B experiment and issue a confirmed/refuted verdict
  serve        run the cache-first sweep service (or, with -worker URL, a shard worker)
  diff         compare two sweep (or hypothesize) JSON reports with a per-field tolerance (CI gate)
  version      print the build triple: module version, Go toolchain, engine version`)
}

// cmdVersion prints the same build triple /healthz reports and the
// Prometheus btadt_build_info series labels: enough to tell which
// binary (and which run-store namespace) produced an artifact.
func cmdVersion() error {
	bi := blockadt.Build()
	fmt.Printf("btadt %s\ngo %s\nengine %s\n", bi.Version, bi.GoVersion, bi.Engine)
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	n := fs.Int("n", 8, "number of processes")
	blocks := fs.Int("blocks", 30, "target committed blocks per run")
	seed := fs.Uint64("seed", 42, "simulation seed")
	system := fs.String("system", "", "simulate a single system (default: all)")
	verbose := fs.Bool("v", false, "print the detailed consistency reports")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := blockadt.SimParams{N: *n, TargetBlocks: *blocks, Seed: *seed}

	var rows []blockadt.Table1Row
	if *system != "" {
		row, err := blockadt.ClassifySystem(*system, p)
		if err != nil {
			return err
		}
		rows = []blockadt.Table1Row{row}
	} else {
		rows = blockadt.ClassifyTable(p)
	}
	fmt.Print(blockadt.FormatTable1(rows))
	if *verbose {
		for _, r := range rows {
			fmt.Printf("\n── %s ──\n%s%s", r.System, r.SC, r.EC)
		}
	}
	for _, r := range rows {
		if !r.Match {
			return fmt.Errorf("%s classified %s, paper says %s", r.System, r.Measured, r.Expected)
		}
	}
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	seed := fs.Uint64("seed", 42, "experiment seed")
	ext := fs.Bool("extensions", true, "also run the beyond-the-paper extension experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	results := blockadt.RunExperiments(*seed)
	fmt.Println("paper artifacts:")
	fmt.Print(blockadt.FormatExperiments(results))
	if *ext {
		extResults := blockadt.RunExtensions(*seed)
		fmt.Println("\nextensions (worked examples, future work, related-work mapping):")
		fmt.Print(blockadt.FormatExperiments(extResults))
		results = append(results, extResults...)
	}
	for _, r := range results {
		if !r.Pass {
			return fmt.Errorf("experiment %s failed", r.ID)
		}
	}
	return nil
}

func cmdHierarchy(args []string) error {
	fs := flag.NewFlagSet("hierarchy", flag.ExitOnError)
	procs := fs.Int("procs", 8, "contending processes")
	rounds := fs.Int("rounds", 6, "contention rounds")
	seed := fs.Uint64("seed", 17, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %12s %10s\n", "oracle", "max-fanout", "ok-appends", "SC?")
	for _, e := range []struct {
		label string
		k     int
	}{{"Θ_F,k=1", 1}, {"Θ_F,k=2", 2}, {"Θ_F,k=4", 4}, {"Θ_P", blockadt.Unbounded}} {
		res := blockadt.ForkWorkload{K: e.k, Procs: *procs, Rounds: *rounds, Seed: *seed}.Run()
		sc := blockadt.CheckSC(res.History, blockadt.CheckOptions{}).Satisfied()
		fmt.Printf("%-8s %10d %12d %10v\n", e.label, res.MaxFanout, res.SuccessfulAppends, sc)
	}
	return nil
}

func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	tail := fs.Int("tail", 12, "length of the histories' growth tail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := blockadt.CheckOptions{GraceWindow: 8}
	figs := blockadt.FigureHistories(*tail)
	hs := make([]*blockadt.History, len(figs))
	for i, f := range figs {
		hs[i] = f.History
	}
	classifications := blockadt.ClassifyHistories(hs, opts, 0)
	for i, f := range figs {
		fmt.Printf("%s: classified %s\n", f.Name, classifications[i].Level)
		fmt.Printf("  %s  %s", classifications[i].SC, classifications[i].EC)
	}
	return nil
}

func cmdConsensus(args []string) error {
	fs := flag.NewFlagSet("consensus", flag.ExitOnError)
	n := fs.Int("n", 16, "number of proposers")
	seed := fs.Uint64("seed", 1, "oracle seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	merits := make([]float64, *n)
	for i := range merits {
		merits[i] = 1
	}
	o, err := blockadt.NewOracleByName("frugal", blockadt.OracleConfig{K: 1, Merits: merits, Seed: *seed})
	if err != nil {
		return err
	}
	c, err := blockadt.NewConsensusFromFrugal(o, "b0")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	decisions := make([]blockadt.ConsensusValue, *n)
	errs := make([]error, *n)
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], errs[i] = c.Propose(i, blockadt.ConsensusValue(fmt.Sprintf("blk-%d", i)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < *n; i++ {
		if errs[i] != nil {
			return fmt.Errorf("process %d: %w", i, errs[i])
		}
		fmt.Printf("p%-2d proposed blk-%-2d decided %s\n", i, i, decisions[i])
		if decisions[i] != decisions[0] {
			return fmt.Errorf("agreement violated")
		}
	}
	fmt.Printf("agreement: all %d processes decided %q\n", *n, decisions[0])
	return nil
}
