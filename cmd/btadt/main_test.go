package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// update regenerates the golden files: go test ./cmd/btadt -update
var update = flag.Bool("update", false, "rewrite the golden files")

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed. The reader drains concurrently so
// outputs larger than the pipe buffer cannot deadlock the writer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// checkGolden compares the output against testdata/<name>.golden,
// rewriting the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestListGolden pins the full `btadt list` output — and with it the
// registration order and presence of every registry, including the
// metric and psync entries the generic enumeration must pick up.
func TestListGolden(t *testing.T) {
	checkGolden(t, "list", captureStdout(t, func() error { return cmdList(nil) }))
}

// TestClassifyGolden pins the Table 1 regeneration at fixed parameters.
func TestClassifyGolden(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdClassify([]string{"-n", "8", "-blocks", "20", "-seed", "42"})
	})
	checkGolden(t, "classify", out)
}

// TestStatsGolden pins the stats pipeline's table and JSON outputs on a
// small honest+adversarial matrix.
func TestStatsGolden(t *testing.T) {
	args := []string{"-systems", "Bitcoin", "-adversaries", "none,selfish",
		"-seeds", "3", "-blocks", "15", "-seed", "7"}
	table := captureStdout(t, func() error { return cmdStats(t.Context(), args) })
	checkGolden(t, "stats_table", table)

	jsonOut := captureStdout(t, func() error { return cmdStats(t.Context(), append(args, "-format", "json")) })
	checkGolden(t, "stats_json", jsonOut)
}

// TestStatsByteIdenticalAcrossParallelism is the CLI-level determinism
// regression the acceptance criteria require: `btadt stats` output is
// byte-identical at -parallel 1 and -parallel NumCPU, in every format.
func TestStatsByteIdenticalAcrossParallelism(t *testing.T) {
	base := []string{"-systems", "Bitcoin,Hyperledger", "-adversaries", "none,selfish",
		"-seeds", "3", "-blocks", "12", "-seed", "5"}
	for _, format := range []string{"table", "json", "csv"} {
		serial := captureStdout(t, func() error {
			return cmdStats(t.Context(), append(base, "-format", format, "-parallel", "1"))
		})
		parallel := captureStdout(t, func() error {
			return cmdStats(t.Context(), append(base, "-format", format, "-parallel", fmt.Sprint(runtime.NumCPU())))
		})
		if serial != parallel {
			t.Errorf("%s output differs between -parallel 1 and -parallel %d", format, runtime.NumCPU())
		}
	}
}

// TestStatsRejectsBadInput covers the fail-before-output contract.
func TestStatsRejectsBadInput(t *testing.T) {
	if err := cmdStats(t.Context(), []string{"-metrics", "nope"}); err == nil {
		t.Error("stats accepted an unregistered metric")
	}
	if err := cmdStats(t.Context(), []string{"-systems", "Dogecoin"}); err == nil {
		t.Error("stats accepted an unregistered system")
	}
	if err := cmdStats(t.Context(), []string{"-format", "xml", "-systems", "Bitcoin", "-seeds", "1", "-blocks", "5"}); err == nil {
		t.Error("stats accepted an unknown format")
	}
	if err := cmdStats(t.Context(), []string{"-systems", "Hyperledger", "-links", "async"}); err == nil {
		t.Error("stats accepted a fully pruned matrix")
	}
}
