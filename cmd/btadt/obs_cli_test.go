package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blockadt/pkg/blockadt"
)

// readSpans parses a -trace NDJSON file.
func readSpans(t *testing.T, path string) []blockadt.Span {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var spans []blockadt.Span
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var sp blockadt.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestSweepTraceFile pins the -trace contract end to end: the traced
// sweep's JSON is byte-identical to an untraced one, the trace carries
// one span per scenario, and a -resume re-run traces cache hits.
func TestSweepTraceFile(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.ndjson")
	store := filepath.Join(dir, "store")

	plain := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs()) })
	traced := captureStdout(t, func() error {
		return cmdSweep(t.Context(), sweepArgs("-trace", trace, "-store", store))
	})
	if plain != traced {
		t.Fatal("traced sweep output is not byte-identical to the untraced sweep")
	}

	var rep struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal([]byte(plain), &rep); err != nil {
		t.Fatal(err)
	}
	spans := readSpans(t, trace)
	if rep.Total == 0 || len(spans) != rep.Total {
		t.Fatalf("trace has %d spans for %d scenarios", len(spans), rep.Total)
	}
	for _, sp := range spans {
		if sp.Outcome != blockadt.SpanSimulated {
			t.Fatalf("cold span outcome = %q, want simulated: %+v", sp.Outcome, sp)
		}
		if sp.Key == "" || sp.SimulateNS <= 0 || sp.TotalNS <= 0 {
			t.Fatalf("degenerate span: %+v", sp)
		}
	}

	// Resuming from the populated store traces pure cache hits.
	warmTrace := filepath.Join(dir, "warm.ndjson")
	warm := captureStdout(t, func() error {
		return cmdSweep(t.Context(), sweepArgs("-trace", warmTrace, "-store", store, "-resume"))
	})
	if warm != plain {
		t.Fatal("resumed traced sweep output diverged")
	}
	for _, sp := range readSpans(t, warmTrace) {
		if sp.Outcome != blockadt.SpanCacheHit {
			t.Fatalf("warm span outcome = %q, want cache-hit", sp.Outcome)
		}
		if sp.SimulateNS != 0 {
			t.Fatalf("warm span claims simulation time: %+v", sp)
		}
	}
}

// TestVersionCmd pins the version subcommand's triple.
func TestVersionCmd(t *testing.T) {
	out := captureStdout(t, cmdVersion)
	if !strings.Contains(out, "engine "+blockadt.EngineVersion) {
		t.Fatalf("version output missing the engine version: %q", out)
	}
	if !strings.Contains(out, "btadt ") || !strings.Contains(out, "go go1.") {
		t.Fatalf("version output missing the module or Go version: %q", out)
	}
}

// TestServeLoggerFlags pins the -log-level/-log-format validation.
func TestServeLoggerFlags(t *testing.T) {
	if _, err := buildLogger("info", "json"); err != nil {
		t.Fatal(err)
	}
	if _, err := buildLogger("debug", "text"); err != nil {
		t.Fatal(err)
	}
	if _, err := buildLogger("loud", "text"); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("bad level: got %v", err)
	}
	if _, err := buildLogger("info", "xml"); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Fatalf("bad format: got %v", err)
	}
}
