package main

import (
	"flag"
	"fmt"

	"blockadt/pkg/blockadt"
)

// cmdSelfish runs the selfish-mining experiment: an adversary holding a
// fraction of the mining power withholds blocks and publishes reactively;
// the report shows its main-chain share exceeding its merit (the
// Eyal–Sirer effect) and the orphaned honest work.
func cmdSelfish(args []string) error {
	fs := flag.NewFlagSet("selfish", flag.ExitOnError)
	n := fs.Int("n", 6, "total miners (1 selfish + n-1 honest)")
	alpha := fs.Float64("alpha", 0.34, "adversary's share of the mining power")
	blocks := fs.Int("blocks", 120, "target chain length")
	seed := fs.Uint64("seed", 31, "simulation seed")
	system := fs.String("system", "Bitcoin", "registered system to attack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *alpha <= 0 || *alpha >= 1 {
		return fmt.Errorf("alpha must be in (0,1), got %v", *alpha)
	}
	stats, err := blockadt.SimulateAdversary(*system, "selfish",
		blockadt.WithN(*n), blockadt.WithBlocks(*blocks),
		blockadt.WithSeed(*seed), blockadt.WithAlpha(*alpha))
	if err != nil {
		return err
	}
	fmt.Printf("selfish mining: %d miners, adversary power α=%.2f, seed %d\n\n", *n, *alpha, *seed)
	fmt.Printf("blocks mined        adversary %d, honest %d\n", stats.AdversaryMined, stats.HonestMined)
	fmt.Printf("main-chain share    adversary %.1f%% (entitled %.1f%%), honest %.1f%%\n",
		100*stats.AdversaryShare, 100*stats.AdversaryMerit, 100*stats.HonestShare)
	fmt.Printf("orphaned blocks     %d\n", stats.Orphaned)
	fmt.Printf("fork points         %d over %d ticks\n", stats.Forks, stats.Ticks)
	if stats.AdversaryShare > stats.AdversaryMerit {
		fmt.Printf("\nverdict: withholding is profitable here (+%.1f points above entitlement)\n",
			100*(stats.AdversaryShare-stats.AdversaryMerit))
	} else {
		fmt.Println("\nverdict: withholding did not pay at these parameters")
	}
	return nil
}
