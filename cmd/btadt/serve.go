package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"blockadt/pkg/blockadt"
	"blockadt/pkg/blockadt/serve"
)

// cmdServe runs the cache-first sweep service (docs/serve.md). The
// default mode is the coordinator: an HTTP server that accepts sweep
// matrices at POST /v1/sweeps, streams results back as NDJSON, serves
// repeats from the content-addressed run store, and fans sharded jobs
// (POST /v1/work) out to workers. With -worker URL the same binary is
// instead a worker: it leases shards from that coordinator, sweeps them
// against its own -store, and uploads the results.
//
// Shutdown is signal-aware either way: the first SIGINT/SIGTERM stops
// accepting connections and drains in-flight requests (workers finish
// their current shard), bounded by -drain.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8423", "coordinator listen address")
	storeDir := fs.String("store", "", "content-addressed run store directory (required; the service cache, or the worker's local store)")
	parallelism := fs.Int("parallel", 0, "per-sweep worker pool size (<1 = NumCPU)")
	maxBody := fs.Int64("max-body", 1<<20, "maximum matrix submission size in bytes")
	maxSweeps := fs.Int("max-sweeps", 1024, "maximum sweeps retained for polling before the oldest finished ones are evicted")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Minute, "how long a worker may hold a leased shard before it is re-offered")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
	workerURL := fs.String("worker", "", "run as a worker against this coordinator URL instead of serving")
	name := fs.String("name", "", "worker identity reported in leases (default: the hostname)")
	idleExit := fs.Bool("idle-exit", false, "worker: exit once the coordinator has no work instead of polling")
	poll := fs.Duration("poll", 2*time.Second, "worker: idle re-poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("serve requires -store (the run store is the service's cache)")
	}
	store, err := blockadt.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	if *workerURL != "" {
		if *name == "" {
			if host, err := os.Hostname(); err == nil {
				*name = host
			}
		}
		w := &serve.Worker{
			Coordinator: *workerURL,
			Store:       store,
			Parallelism: *parallelism,
			Name:        *name,
			IdleExit:    *idleExit,
			Poll:        *poll,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "btadt serve worker: "+format+"\n", args...)
			},
		}
		err := w.Run(ctx)
		if errors.Is(err, context.Canceled) {
			return nil // interrupted while idle: a clean worker exit
		}
		return err
	}

	srv, err := serve.New(serve.Config{
		Store:        store,
		Parallelism:  *parallelism,
		MaxBodyBytes: *maxBody,
		MaxSweeps:    *maxSweeps,
		LeaseTTL:     *leaseTTL,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "btadt serve: listening on %s (store %s, %d entries)\n",
		ln.Addr(), *storeDir, store.Len())
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "btadt serve: draining (up to %s)\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			httpSrv.Close()
			return fmt.Errorf("drain: %w", err)
		}
		<-done // Serve has returned http.ErrServerClosed
		return store.Flush()
	}
}
