package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"blockadt/pkg/blockadt"
	"blockadt/pkg/blockadt/serve"
)

// cmdServe runs the cache-first sweep service (docs/serve.md). The
// default mode is the coordinator: an HTTP server that accepts sweep
// matrices at POST /v1/sweeps, streams results back as NDJSON, serves
// repeats from the content-addressed run store, and fans sharded jobs
// (POST /v1/work) out to workers. With -worker URL the same binary is
// instead a worker: it leases shards from that coordinator, sweeps them
// against its own -store, and uploads the results.
//
// Shutdown is signal-aware either way: the first SIGINT/SIGTERM stops
// accepting connections and drains in-flight requests (workers finish
// their current shard), bounded by -drain.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8423", "coordinator listen address")
	storeDir := fs.String("store", "", "content-addressed run store directory (required; the service cache, or the worker's local store)")
	parallelism := fs.Int("parallel", 0, "per-sweep worker pool size (<1 = NumCPU)")
	maxBody := fs.Int64("max-body", 1<<20, "maximum matrix submission size in bytes")
	maxSweeps := fs.Int("max-sweeps", 1024, "maximum sweeps retained for polling before the oldest finished ones are evicted")
	leaseTTL := fs.Duration("lease-ttl", 5*time.Minute, "how long a worker may hold a leased shard before it is re-offered")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
	workerURL := fs.String("worker", "", "run as a worker against this coordinator URL instead of serving")
	name := fs.String("name", "", "worker identity reported in leases (default: the hostname)")
	idleExit := fs.Bool("idle-exit", false, "worker: exit once the coordinator has no work instead of polling")
	poll := fs.Duration("poll", 2*time.Second, "worker: idle re-poll interval")
	logLevel := fs.String("log-level", "info", "request-log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "request-log format: text or json")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (off unless set; keep it off the public listener)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("serve requires -store (the run store is the service's cache)")
	}
	store, err := blockadt.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	if *workerURL != "" {
		if *name == "" {
			if host, err := os.Hostname(); err == nil {
				*name = host
			}
		}
		w := &serve.Worker{
			Coordinator: *workerURL,
			Store:       store,
			Parallelism: *parallelism,
			Name:        *name,
			IdleExit:    *idleExit,
			Poll:        *poll,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "btadt serve worker: "+format+"\n", args...)
			},
		}
		err := w.Run(ctx)
		if errors.Is(err, context.Canceled) {
			return nil // interrupted while idle: a clean worker exit
		}
		return err
	}

	srv, err := serve.New(serve.Config{
		Store:        store,
		Parallelism:  *parallelism,
		MaxBodyBytes: *maxBody,
		MaxSweeps:    *maxSweeps,
		LeaseTTL:     *leaseTTL,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	stopDebug, err := startDebugServer(*debugAddr, logger)
	if err != nil {
		return err
	}
	defer stopDebug()
	bi := blockadt.Build()
	logger.Info("listening",
		"addr", ln.Addr().String(), "store", *storeDir, "entries", store.Len(),
		"version", bi.Version, "engine", bi.Engine)
	fmt.Fprintf(os.Stderr, "btadt serve: listening on %s (store %s, %d entries)\n",
		ln.Addr(), *storeDir, store.Len())
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "btadt serve: draining (up to %s)\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			httpSrv.Close()
			return fmt.Errorf("drain: %w", err)
		}
		<-done // Serve has returned http.ErrServerClosed
		return store.Flush()
	}
}

// buildLogger assembles the serve request logger from the -log-level
// and -log-format flags. Logs go to stderr, like every other btadt
// diagnostic, leaving stdout for data.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}

// startDebugServer exposes net/http/pprof on its own listener when
// -debug-addr is set. A dedicated mux (not http.DefaultServeMux) keeps
// the profiling surface off the public API listener entirely — the
// operator opts in per address, typically a loopback one.
func startDebugServer(addr string, logger *slog.Logger) (stop func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-debug-addr: %w", err)
	}
	dbg := &http.Server{Handler: mux}
	go dbg.Serve(ln)
	logger.Info("pprof listening", "addr", ln.Addr().String())
	return func() { dbg.Close() }, nil
}
