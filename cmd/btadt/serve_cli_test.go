package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blockadt/pkg/blockadt"
	"blockadt/pkg/blockadt/serve"
)

// sweepMatrix is the Matrix sweepArgs describes — the store keys behind
// both must agree for the resume assertions below.
func sweepMatrix() blockadt.Matrix {
	return blockadt.Matrix{
		Systems:      []string{"Bitcoin", "Hyperledger"},
		Links:        []string{"sync", "async"},
		Adversaries:  []string{"none", "selfish"},
		Seeds:        2,
		RootSeed:     11,
		TargetBlocks: 10,
		Alpha:        0.34,
		Metrics:      blockadt.MetricNames(),
	}
}

// captureStderr redirects os.Stderr around fn.
func captureStderr(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stderr = old
	out := <-outc
	if ferr != nil {
		t.Fatalf("command failed: %v (stderr %q)", ferr, out)
	}
	return out
}

// TestInterruptedSweepResumesCleanly is the signal-path regression: a
// store-backed table sweep cancelled mid-stream exits with
// context.Canceled, keeps every completed write, and a -resume re-run
// completes the matrix simulating only the remainder — byte-identical to
// an uninterrupted run.
func TestInterruptedSweepResumesCleanly(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	m := sweepMatrix()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	total := len(configs)

	// Interrupt deterministically: cancel the command context the moment
	// the first table row reaches stdout — the CLI analogue of ^C during
	// a sweep.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	scanned := make(chan struct{})
	go func() {
		defer close(scanned)
		sc := bufio.NewScanner(r)
		cancelled := false
		for sc.Scan() {
			// The header and its rule print before the sweep starts; a
			// line opening with a system name is the first real result.
			line := sc.Text()
			if !cancelled && (strings.HasPrefix(line, "Bitcoin") || strings.HasPrefix(line, "Hyperledger")) {
				cancelled = true
				cancel()
			}
		}
	}()
	args := []string{"-systems", "Bitcoin,Hyperledger", "-links", "sync,async",
		"-adversaries", "none,selfish", "-seeds", "2", "-blocks", "10",
		"-seed", "11", "-metrics", "all", "-parallel", "2", "-store", store}
	err = cmdSweep(ctx, args)
	w.Close()
	os.Stdout = old
	<-scanned

	if err == nil {
		// The sweep can win the race and finish before the cancellation
		// lands; the store is then simply complete. Only an error other
		// than the interruption is a failure.
		t.Log("sweep completed before the interrupt landed")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: got %v, want context.Canceled", err)
	}

	cached, storeTotal, err := blockadt.StorePreflight(store, m)
	if err != nil {
		t.Fatal(err)
	}
	if storeTotal != total {
		t.Fatalf("preflight sees %d scenarios, want %d", storeTotal, total)
	}
	if err != nil || cached == 0 {
		t.Fatalf("interrupted sweep persisted %d results, want > 0", cached)
	}

	// Resume completes exactly the remainder and reproduces the
	// uninterrupted output byte for byte.
	before := blockadt.ScenarioRuns()
	resumed := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", store, "-resume")) })
	if ran := blockadt.ScenarioRuns() - before; ran != uint64(total-cached) {
		t.Fatalf("resume simulated %d scenarios, want %d (= %d total - %d cached)", ran, total-cached, total, cached)
	}
	plain := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs()) })
	if resumed != plain {
		t.Fatal("resumed sweep output diverged from an uninterrupted run")
	}
}

// TestSweepVerboseStoreStats pins the `sweep -store -v` summary line:
// a cold run reports one miss and one put per scenario, a -resume run
// reports one hit per scenario.
func TestSweepVerboseStoreStats(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	m := sweepMatrix()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	total := len(configs)

	var stderr string
	captureStdout(t, func() error {
		stderr = captureStderr(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", store, "-v")) })
		return nil
	})
	wantCold := fmt.Sprintf("%d misses, %d puts", total, total)
	if !strings.Contains(stderr, "store stats:") || !strings.Contains(stderr, wantCold) {
		t.Fatalf("cold -v stderr %q does not report %q", stderr, wantCold)
	}

	captureStdout(t, func() error {
		stderr = captureStderr(t, func() error {
			return cmdSweep(t.Context(), sweepArgs("-store", store, "-resume", "-v"))
		})
		return nil
	})
	wantWarm := fmt.Sprintf("%d hits, 0 misses, 0 puts", total)
	if !strings.Contains(stderr, wantWarm) {
		t.Fatalf("resume -v stderr %q does not report %q", stderr, wantWarm)
	}
}

// TestSweepPrintMatrix pins -print-matrix: the emitted JSON round-trips
// to the matrix the same flags would sweep (metrics pre-expanded), and
// invalid flags still fail instead of printing garbage.
func TestSweepPrintMatrix(t *testing.T) {
	out := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-print-matrix")) })
	var m blockadt.Matrix
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("-print-matrix output is not a Matrix: %v\n%s", err, out)
	}
	want := sweepMatrix()
	wantFP, err := want.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Fatalf("-print-matrix fingerprint %s, want %s", gotFP, wantFP)
	}
	if err := cmdSweep(t.Context(), sweepArgs("-print-matrix", "-systems", "Dogecoin")); err == nil {
		t.Fatal("-print-matrix accepted an unregistered system")
	}
}

// TestServeCmdWorkerMode drives cmdServe's worker path against an
// in-process coordinator: enqueue a 2-shard job, run the worker loop
// with -idle-exit semantics, and watch the job complete.
func TestServeCmdWorkerMode(t *testing.T) {
	coordStore, err := blockadt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Store: coordStore, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m := sweepMatrix()
	body, err := json.Marshal(map[string]any{"matrix": m, "shards": 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/work", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	captureStderr(t, func() error {
		return cmdServe(t.Context(), []string{"-worker", ts.URL, "-store", t.TempDir(),
			"-parallel", "2", "-name", "cli-test", "-idle-exit", "-poll", "10ms"})
	})

	resp, err = http.Get(ts.URL + "/v1/work/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.Status != "done" {
		t.Fatalf("job after CLI worker: %+v, want done", job)
	}

	if err := cmdServe(t.Context(), []string{"-worker", ts.URL}); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("worker without -store: got %v", err)
	}
}

// TestServeCmdGracefulShutdown starts the coordinator on an ephemeral
// port and cancels its context: cmdServe must drain and return nil.
func TestServeCmdGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- cmdServe(ctx, []string{"-addr", "127.0.0.1:0", "-store", t.TempDir()})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cmdServe did not drain within 10s of cancellation")
	}
}
