package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"blockadt/pkg/blockadt"
)

// cmdStats is the statistics pipeline: sweep a scenario matrix with
// metric collection enabled, fold the per-seed runs into per-config
// aggregates (streaming Welford/quantile accumulators, O(1) memory per
// config), and print mean/p50/p99 tables in table, JSON or CSV form.
// Like `btadt sweep`, every configuration derives an independent prng
// stream from the root seed, so the output is byte-identical at any
// -parallel value.
func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	systems := fs.String("systems", "", "comma-separated system names (default: all registered)")
	links := fs.String("links", "sync", "comma-separated link models: sync,async,psync,lossy,partition,jitter")
	adversaries := fs.String("adversaries", "none", "comma-separated adversaries: none,selfish")
	topologies := fs.String("topologies", "complete", "comma-separated dissemination topologies: complete,gossip3,clustered2")
	ns := fs.String("n", "8", "comma-separated process counts")
	rootSeed := fs.Uint64("seed", 42, "root seed every per-config stream derives from")
	blocks := fs.Int("blocks", 30, "target committed blocks per run")
	alpha := fs.Float64("alpha", 0.34, "selfish adversary merit share")
	format := fs.String("format", "table", "output format: table, json or csv")
	var rf runFlags
	addRunFlags(fs, &rf, 8, "seed indices per matrix point (the aggregation dimension)",
		"comma-separated metric names (default: all registered)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *format {
	case "table", "json", "csv":
	default:
		return fmt.Errorf("unknown format %q (want table, json or csv)", *format)
	}
	metricOrder := rf.metricNames()
	if len(metricOrder) == 0 {
		metricOrder = blockadt.MetricNames()
	}
	m := blockadt.Matrix{
		Systems:      splitList(*systems),
		Links:        splitList(*links),
		Adversaries:  splitList(*adversaries),
		Topologies:   splitList(*topologies),
		Seeds:        rf.seeds,
		RootSeed:     *rootSeed,
		TargetBlocks: *blocks,
		Alpha:        *alpha,
		Metrics:      metricOrder,
	}
	for _, s := range splitList(*ns) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad process count %q", s)
		}
		m.Ns = append(m.Ns, n)
	}
	// Validate before any output reaches stdout (same contract as sweep).
	configs, err := m.Configs()
	if err != nil {
		return err
	}
	if len(configs) == 0 {
		return errEmptyMatrix
	}
	runOpts, _, err := storeOptions(m, rf.storeDir, rf.resume, false)
	if err != nil {
		return err
	}

	agg := blockadt.NewSeedAggregator()
	total := 0
	for r, err := range blockadt.Stream(ctx, m, rf.parallel, runOpts...) {
		if err != nil {
			return err
		}
		agg.Add(r)
		total++
	}
	aggs := agg.Aggregates()

	switch *format {
	case "json":
		rep := &blockadt.StatsReport{RootSeed: m.RootSeed, Total: total, Configs: aggs}
		enc, err := rep.EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(enc)
	case "csv":
		fmt.Println("system,link,adversary,alpha,n,blocks,seeds,matched,metric,count,mean,std,min,max,p50,p99")
		for _, a := range aggs {
			for _, name := range metricOrder {
				s, ok := a.Metrics[name]
				if !ok {
					continue
				}
				fmt.Printf("%s,%s,%s,%s,%d,%d,%d,%d,%s,%d,%s,%s,%s,%s,%s,%s\n",
					a.System, a.Link, a.Adversary, fmtFloat(a.Alpha), a.N, a.Blocks, a.Seeds, a.Matched,
					name, s.Count, fmtFloat(s.Mean), fmtFloat(s.Std), fmtFloat(s.Min), fmtFloat(s.Max),
					fmtFloat(s.P50), fmtFloat(s.P99))
			}
		}
	default: // "table"; the format was validated before the sweep ran
		fmt.Print(blockadt.FormatStatsHeader())
		matched := 0
		for _, a := range aggs {
			fmt.Print(blockadt.FormatStatsRows(a, metricOrder))
			matched += a.Matched
		}
		fmt.Printf("\n%d configurations × %d seeds aggregated (%d runs, %d matched expectations) from root seed %d\n",
			len(aggs), rf.seeds, total, matched, m.RootSeed)
	}
	return nil
}

// fmtFloat renders a float in the shortest round-trip form — the same
// representation encoding/json uses, keeping CSV and JSON outputs
// consistent and deterministic.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
