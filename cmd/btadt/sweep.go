package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blockadt/internal/sweep"
)

// cmdSweep runs the concurrent scenario-matrix engine: expand a
// (system × link × adversary × n × seed) matrix, fan it out across the
// worker pool, and print the per-configuration verdict table or the
// canonical JSON consumed by BENCH_*.json trend tracking.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	systems := fs.String("systems", "", "comma-separated system names (default: all of Table 1)")
	links := fs.String("links", "sync", "comma-separated link models: sync,async")
	adversaries := fs.String("adversaries", "none", "comma-separated adversaries: none,selfish")
	ns := fs.String("n", "8", "comma-separated process counts")
	seeds := fs.Int("seeds", 1, "seed indices per matrix point")
	rootSeed := fs.Uint64("seed", 42, "root seed every per-config stream derives from")
	blocks := fs.Int("blocks", 30, "target committed blocks per run")
	alpha := fs.Float64("alpha", 0.34, "selfish adversary merit share")
	parallelism := fs.Int("parallel", 0, "worker pool size (0 = NumCPU)")
	jsonOut := fs.Bool("json", false, "emit canonical JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := sweep.Matrix{
		Systems:      splitList(*systems),
		Links:        splitList(*links),
		Adversaries:  splitList(*adversaries),
		Seeds:        *seeds,
		RootSeed:     *rootSeed,
		TargetBlocks: *blocks,
		Alpha:        *alpha,
	}
	for _, s := range splitList(*ns) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad process count %q", s)
		}
		m.Ns = append(m.Ns, n)
	}

	rep, err := sweep.Run(m, *parallelism)
	if err != nil {
		return err
	}
	if rep.Total == 0 {
		return fmt.Errorf("matrix expanded to 0 configurations: every requested combination was pruned (async/selfish are only implemented for Bitcoin's PoW path)")
	}
	if *jsonOut {
		enc, err := rep.EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(enc)
	} else {
		fmt.Print(sweep.FormatTable(rep.Results))
		fmt.Printf("\n%d/%d configurations matched; %d virtual ticks in %.1fms across %d workers\n",
			rep.Matched, rep.Total, rep.Ticks, float64(rep.WallNS)/1e6, rep.Parallelism)
	}
	if rep.Matched != rep.Total {
		return fmt.Errorf("%d configurations missed their expected consistency level", rep.Total-rep.Matched)
	}
	return nil
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
