package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"blockadt/pkg/blockadt"
)

// cmdSweep runs the concurrent scenario-matrix engine: expand a
// (system × link × adversary × n × seed) matrix, fan it out across the
// worker pool, and print the per-configuration verdict table or the
// canonical JSON consumed by BENCH_*.json trend tracking. The table path
// streams: each row prints as its configuration completes, so arbitrarily
// large sweeps run in bounded memory.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	systems := fs.String("systems", "", "comma-separated system names (default: all registered)")
	links := fs.String("links", "sync", "comma-separated link models: sync,async,psync")
	adversaries := fs.String("adversaries", "none", "comma-separated adversaries: none,selfish")
	ns := fs.String("n", "8", "comma-separated process counts")
	seeds := fs.Int("seeds", 1, "seed indices per matrix point")
	rootSeed := fs.Uint64("seed", 42, "root seed every per-config stream derives from")
	blocks := fs.Int("blocks", 30, "target committed blocks per run")
	alpha := fs.Float64("alpha", 0.34, "selfish adversary merit share")
	parallelism := fs.Int("parallel", 0, "worker pool size (0 = NumCPU)")
	jsonOut := fs.Bool("json", false, "emit canonical JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := blockadt.Matrix{
		Systems:      splitList(*systems),
		Links:        splitList(*links),
		Adversaries:  splitList(*adversaries),
		Seeds:        *seeds,
		RootSeed:     *rootSeed,
		TargetBlocks: *blocks,
		Alpha:        *alpha,
	}
	for _, s := range splitList(*ns) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad process count %q", s)
		}
		m.Ns = append(m.Ns, n)
	}

	if *jsonOut {
		rep, err := blockadt.Run(m, *parallelism)
		if err != nil {
			return err
		}
		if rep.Total == 0 {
			return errEmptyMatrix
		}
		enc, err := rep.EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(enc)
		if rep.Matched != rep.Total {
			return fmt.Errorf("%d configurations missed their expected consistency level", rep.Total-rep.Matched)
		}
		return nil
	}

	// Validate the matrix before any table output reaches stdout: a typo
	// or a fully pruned cross product must fail with a clean error, not a
	// dangling header. Stream re-expands internally, but expansion is
	// just validation plus key hashing — no simulation.
	configs, err := m.Configs()
	if err != nil {
		return err
	}
	if len(configs) == 0 {
		return errEmptyMatrix
	}
	var (
		total, matched int
		ticks          int64
		start          = time.Now()
	)
	fmt.Print(blockadt.FormatTableHeader())
	for r, err := range blockadt.Stream(context.Background(), m, *parallelism) {
		if err != nil {
			return err
		}
		fmt.Print(blockadt.FormatRow(r))
		total++
		if r.Match {
			matched++
		}
		ticks += r.Ticks
	}
	fmt.Printf("\n%d/%d configurations matched; %d virtual ticks in %.1fms across %d workers\n",
		matched, total, ticks, float64(time.Since(start).Nanoseconds())/1e6, blockadt.Parallelism(*parallelism))
	if matched != total {
		return fmt.Errorf("%d configurations missed their expected consistency level", total-matched)
	}
	return nil
}

// errEmptyMatrix reports a matrix whose every combination was pruned.
var errEmptyMatrix = fmt.Errorf("matrix expanded to 0 configurations: every requested combination was pruned (async/selfish are only implemented for Bitcoin's PoW path)")

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
