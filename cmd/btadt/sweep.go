package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"blockadt/pkg/blockadt"
)

// cmdSweep runs the concurrent scenario-matrix engine: expand a
// (system × link × adversary × topology × n × seed) matrix, fan it out across the
// worker pool, and print the per-configuration verdict table or the
// canonical JSON consumed by SWEEP_baseline.json trend tracking. The
// table path streams: each row prints as its configuration completes, so
// arbitrarily large sweeps run in bounded memory.
//
// With -store the sweep is backed by the content-addressed run store:
// every computed result is persisted, and (with -resume) results already
// in the store are served without simulating — output is byte-identical
// either way. With -shard i/n only the i'th deterministic partition of
// the matrix runs; per-shard stores from the same matrix can be unioned
// with a plain file copy and served back as the full sweep (docs/runstore.md).
func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	systems := fs.String("systems", "", "comma-separated system names (default: all registered)")
	links := fs.String("links", "sync", "comma-separated link models: sync,async,psync,lossy,partition,jitter")
	adversaries := fs.String("adversaries", "none", "comma-separated adversaries: none,selfish")
	topologies := fs.String("topologies", "complete", "comma-separated dissemination topologies: complete,gossip3,clustered2")
	ns := fs.String("n", "8", "comma-separated process counts")
	rootSeed := fs.Uint64("seed", 42, "root seed every per-config stream derives from")
	blocks := fs.Int("blocks", 30, "target committed blocks per run")
	alpha := fs.Float64("alpha", 0.34, "selfish adversary merit share")
	jsonOut := fs.Bool("json", false, "emit canonical JSON instead of the table")
	shard := fs.String("shard", "", "run one deterministic partition of the matrix, as i/n (e.g. 0/2)")
	storeGC := fs.Bool("store-gc", false, "after the sweep, delete store entries outside this matrix's full expansion")
	var rf runFlags
	addRunFlags(fs, &rf, 1, "seed indices per matrix point",
		"comma-separated metric names to collect per scenario, or 'all'")
	verbose := fs.Bool("v", false, "print a periodic progress line (scenarios/sec, cache-hit ratio) to stderr; with -store, also the store's counters after the sweep")
	printMatrix := fs.Bool("print-matrix", false, "print the expanded matrix as JSON and exit without sweeping (input for `btadt serve` submissions)")
	traceFile := fs.String("trace", "", "write one NDJSON span per scenario (queue/store/simulate phase timings) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := blockadt.Matrix{
		Systems:      splitList(*systems),
		Links:        splitList(*links),
		Adversaries:  splitList(*adversaries),
		Topologies:   splitList(*topologies),
		Seeds:        rf.seeds,
		RootSeed:     *rootSeed,
		TargetBlocks: *blocks,
		Alpha:        *alpha,
		Metrics:      rf.metricNames(),
	}
	for _, s := range splitList(*ns) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad process count %q", s)
		}
		m.Ns = append(m.Ns, n)
	}
	if *shard != "" {
		index, count, err := parseShard(*shard)
		if err != nil {
			return err
		}
		if m, err = m.Shard(index, count); err != nil {
			return err
		}
	}

	if *printMatrix {
		// Validate before printing, so a typo fails here, not at the
		// server. The emitted JSON round-trips through Matrix and is the
		// exact body `btadt serve` expects at POST /v1/sweeps.
		if _, err := m.Configs(); err != nil {
			return err
		}
		enc, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(enc, '\n'))
		return nil
	}

	runOpts, store, err := storeOptions(m, rf.storeDir, rf.resume, *storeGC)
	if err != nil {
		return err
	}

	// The census feeds the -v progress line; the tracer (if any) dumps
	// per-scenario phase spans. Both observe the sweep from the side —
	// stdout output stays byte-identical with or without them.
	var census blockadt.Census
	runOpts = append(runOpts, blockadt.WithCensus(&census))
	var spans *blockadt.SpanWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		spans = blockadt.NewSpanWriter(f)
		runOpts = append(runOpts, blockadt.WithTracer(spans))
	}
	closeTrace := func() error {
		if spans == nil {
			return nil
		}
		if err := spans.Close(); err != nil {
			return fmt.Errorf("writing -trace %s: %w", *traceFile, err)
		}
		fmt.Fprintf(os.Stderr, "trace %s: %d spans\n", *traceFile, spans.Count())
		return nil
	}
	runsBefore := blockadt.ScenarioRuns()

	if *jsonOut {
		stopProgress := startSweepProgress(*verbose, &census, -1)
		rep, err := blockadt.Run(m, rf.parallel, runOpts...)
		stopProgress()
		if err != nil {
			return err
		}
		if rep.Total == 0 {
			return errEmptyMatrix
		}
		reportStoreUse(rf.storeDir, rep.Total, runsBefore)
		reportStoreStats(store, *verbose)
		if err := closeTrace(); err != nil {
			return err
		}
		enc, err := rep.EncodeJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(enc)
		if rep.Matched != rep.Total {
			return fmt.Errorf("%d configurations missed their expected consistency level", rep.Total-rep.Matched)
		}
		return nil
	}

	// Validate the matrix before any table output reaches stdout: a typo
	// or a fully pruned cross product must fail with a clean error, not a
	// dangling header. Stream re-expands internally, but expansion is
	// just validation plus key hashing — no simulation.
	configs, err := m.Configs()
	if err != nil {
		return err
	}
	if len(configs) == 0 {
		return errEmptyMatrix
	}
	var (
		total, matched int
		ticks          int64
		start          = time.Now()
	)
	fmt.Print(blockadt.FormatTableHeader())
	stopProgress := startSweepProgress(*verbose, &census, len(configs))
	for r, err := range blockadt.Stream(ctx, m, rf.parallel, runOpts...) {
		if err != nil {
			stopProgress()
			return err
		}
		fmt.Print(blockadt.FormatRow(r))
		total++
		if r.Match {
			matched++
		}
		ticks += r.Ticks
	}
	stopProgress()
	reportStoreUse(rf.storeDir, total, runsBefore)
	reportStoreStats(store, *verbose)
	if err := closeTrace(); err != nil {
		return err
	}
	fmt.Printf("\n%d/%d configurations matched; %d virtual ticks in %.1fms across %d workers\n",
		matched, total, ticks, float64(time.Since(start).Nanoseconds())/1e6, blockadt.Parallelism(rf.parallel))
	if matched != total {
		return fmt.Errorf("%d configurations missed their expected consistency level", total-matched)
	}
	return nil
}

// startSweepProgress starts the -v progress reporter: a time-based line
// on stderr every two seconds with throughput and cache-hit ratio read
// from the sweep's census. Time-based (not per-result) and stderr-only,
// so stdout stays byte-identical and quiet sweeps cost nothing. total
// < 0 means unknown (the -json path, which expands inside Run). The
// returned stop func is idempotent enough for the error paths: call it
// once when the sweep ends.
func startSweepProgress(enabled bool, census *blockadt.Census, total int) func() {
	if !enabled {
		return func() {}
	}
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				completed := census.Simulated() + census.CacheHits() + census.Coalesced()
				elapsed := time.Since(start).Seconds()
				rate := 0.0
				if elapsed > 0 {
					rate = float64(completed) / elapsed
				}
				ratio := 0.0
				if completed > 0 {
					ratio = 100 * float64(census.CacheHits()) / float64(completed)
				}
				if total >= 0 {
					fmt.Fprintf(os.Stderr, "sweep: %d/%d scenarios, %.1f/sec, %.0f%% cache hits\n",
						completed, total, rate, ratio)
				} else {
					fmt.Fprintf(os.Stderr, "sweep: %d scenarios, %.1f/sec, %.0f%% cache hits\n",
						completed, rate, ratio)
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// reportStoreUse prints the store-backed sweep's exact census to stderr
// after the run: how many scenarios were actually simulated (measured by
// the ScenarioRuns counter, not the advisory preflight) and how many the
// store served. CI's merge job gates on the "0 scenarios simulated" form
// of this line — the real zero-simulation invariant, not a prediction.
func reportStoreUse(storeDir string, total int, runsBefore uint64) {
	if storeDir == "" {
		return
	}
	simulated := blockadt.ScenarioRuns() - runsBefore
	fmt.Fprintf(os.Stderr, "store %s: %d scenarios simulated, %d served from cache\n",
		storeDir, simulated, uint64(total)-simulated)
}

// storeOptions assembles the run-store options shared by sweep and
// stats, enforcing the resume contract: a sweep never silently serves a
// pre-populated store. Without -resume, cached entries for this sweep
// are an error (point -store somewhere fresh, or opt in); with it, the
// hit count goes to stderr so table/JSON output stays canonical. The
// returned handle (nil without -store) is the one the sweep runs
// against, so its Stats reflect exactly this command's traffic.
func storeOptions(m blockadt.Matrix, storeDir string, resume, storeGC bool) ([]blockadt.RunOption, *blockadt.RunStore, error) {
	return storeOptionsMulti([]blockadt.Matrix{m}, storeDir, resume, storeGC)
}

// storeOptionsMulti is storeOptions over several matrices at once — the
// shape `btadt hypothesize` needs, where one experiment sweeps one
// matrix per arm against a single store. Keys shared between arms (a
// common baseline scenario, say) are deduplicated so the preflight
// counts each stored result once, matching what the engine will
// actually fetch.
func storeOptionsMulti(ms []blockadt.Matrix, storeDir string, resume, storeGC bool) ([]blockadt.RunOption, *blockadt.RunStore, error) {
	if storeDir == "" {
		if resume {
			return nil, nil, fmt.Errorf("-resume requires -store")
		}
		if storeGC {
			return nil, nil, fmt.Errorf("-store-gc requires -store")
		}
		return nil, nil, nil
	}
	store, err := blockadt.OpenStore(storeDir)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[string]bool)
	cached, total := 0, 0
	for _, m := range ms {
		keys, err := m.StoreKeys()
		if err != nil {
			return nil, nil, err
		}
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			total++
			if store.Has(k) {
				cached++
			}
		}
	}
	if cached > 0 && !resume {
		return nil, nil, fmt.Errorf("store %s already holds %d of this sweep's %d results; pass -resume to serve them from cache, or use a fresh -store directory", storeDir, cached, total)
	}
	if resume {
		fmt.Fprintf(os.Stderr, "resuming from %s: %d/%d scenarios cached, %d to simulate\n", storeDir, cached, total, total-cached)
	}
	opts := []blockadt.RunOption{blockadt.WithRunStore(store)}
	if storeGC {
		opts = append(opts, blockadt.WithStoreGC())
	}
	return opts, store, nil
}

// reportStoreStats prints the store handle's operation counters to
// stderr — the `-v` summary line behind a store-backed sweep.
func reportStoreStats(store *blockadt.RunStore, verbose bool) {
	if store == nil || !verbose {
		return
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "store stats: %d hits, %d misses, %d puts, %d bytes read, %d bytes written\n",
		st.Hits, st.Misses, st.Puts, st.BytesRead, st.BytesWritten)
}

// parseShard parses the -shard flag's i/n form.
func parseShard(s string) (index, count int, err error) {
	idxStr, cntStr, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n (e.g. 0/2)", s)
	}
	index, err = strconv.Atoi(strings.TrimSpace(idxStr))
	if err != nil {
		return 0, 0, fmt.Errorf("bad -shard index %q", idxStr)
	}
	count, err = strconv.Atoi(strings.TrimSpace(cntStr))
	if err != nil {
		return 0, 0, fmt.Errorf("bad -shard count %q", cntStr)
	}
	return index, count, nil
}

// errEmptyMatrix reports a matrix whose every combination was pruned.
var errEmptyMatrix = fmt.Errorf("matrix expanded to 0 configurations: every requested combination was pruned (the non-sync links and non-complete topologies run only on the PoW systems, and selfish only on Bitcoin under sync on the complete graph)")

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
