package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"blockadt/pkg/blockadt"
)

// sweepArgs is the small metrics-enabled matrix the store/shard/diff CLI
// tests sweep. Systems are pinned so registrations made elsewhere cannot
// change the expansion.
func sweepArgs(extra ...string) []string {
	args := []string{"-systems", "Bitcoin,Hyperledger", "-links", "sync,async",
		"-adversaries", "none,selfish", "-seeds", "2", "-blocks", "10",
		"-seed", "11", "-metrics", "all", "-json"}
	return append(args, extra...)
}

// captureStdoutErr is captureStdout for commands that are expected to
// fail: it returns the output and the command error instead of fataling.
func captureStdoutErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-outc, ferr
}

// TestSweepStoreResumeByteIdentical is the CLI reading of the tentpole
// contract: a cold store-backed sweep and a -resume re-run from the
// populated store emit byte-identical JSON, and the re-run simulates
// nothing.
func TestSweepStoreResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	cold := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", store)) })

	before := blockadt.ScenarioRuns()
	cached := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", store, "-resume")) })
	if ran := blockadt.ScenarioRuns() - before; ran != 0 {
		t.Fatalf("resumed sweep simulated %d scenarios, want 0", ran)
	}
	if cold != cached {
		t.Fatal("resumed sweep output is not byte-identical to the cold run")
	}

	plain := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs()) })
	if plain != cold {
		t.Fatal("store-backed sweep output diverged from the plain sweep")
	}
}

// TestSweepRefusesPopulatedStoreWithoutResume pins the explicit-resume
// contract: serving a pre-populated store silently would let a stale
// cache mask regressions, so it is an error without -resume.
func TestSweepRefusesPopulatedStoreWithoutResume(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", store)) })

	_, err := captureStdoutErr(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", store)) })
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("populated store without -resume: got err %v, want a pointer to -resume", err)
	}

	if err := cmdSweep(t.Context(), sweepArgs("-resume")); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("-resume without -store: got err %v", err)
	}
	if err := cmdSweep(t.Context(), sweepArgs("-store-gc")); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("-store-gc without -store: got err %v", err)
	}
}

// TestSweepShardStoreUnionServesFullMatrix is the CLI merge path CI
// uses: run each shard into its own store, union the stores by copying
// object files, and serve the full matrix from the union — byte-identical
// to the unsharded sweep, with zero simulations.
func TestSweepShardStoreUnionServesFullMatrix(t *testing.T) {
	dir := t.TempDir()
	merged := filepath.Join(dir, "merged")
	var shardTotal int
	for i := 0; i < 2; i++ {
		shardStore := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		out := captureStdout(t, func() error {
			return cmdSweep(t.Context(), sweepArgs("-shard", fmt.Sprintf("%d/2", i), "-store", shardStore))
		})
		shardTotal += strings.Count(out, `"config"`)
		// Union: copy the shard's objects tree into the merged store.
		err := filepath.Walk(filepath.Join(shardStore, "objects"), func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, err := filepath.Rel(shardStore, path)
			if err != nil {
				return err
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			dst := filepath.Join(merged, rel)
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return err
			}
			return os.WriteFile(dst, raw, 0o644)
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	plain := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs()) })
	if got := strings.Count(plain, `"config"`); shardTotal != got {
		t.Fatalf("shards covered %d scenarios, full matrix has %d", shardTotal, got)
	}

	before := blockadt.ScenarioRuns()
	served := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-store", merged, "-resume")) })
	if ran := blockadt.ScenarioRuns() - before; ran != 0 {
		t.Fatalf("union-served sweep simulated %d scenarios, want 0", ran)
	}
	if served != plain {
		t.Fatal("union-served sweep is not byte-identical to the unsharded sweep")
	}
}

// TestSweepShardRejectsBadSpec pins -shard parsing and validation.
func TestSweepShardRejectsBadSpec(t *testing.T) {
	for _, bad := range []string{"2", "a/2", "0/x", "2/2", "-1/2", "0/0"} {
		if err := cmdSweep(t.Context(), sweepArgs("-shard", bad)); err == nil {
			t.Errorf("-shard %q accepted", bad)
		}
	}
}

// TestSweepRejectsUnknownMetricListingRegistered is the satellite fix
// pin: an unknown -metrics name errors out before any output, and the
// message lists the registered metric names.
func TestSweepRejectsUnknownMetricListingRegistered(t *testing.T) {
	err := cmdSweep(t.Context(), sweepArgs("-metrics", "nope"))
	if err == nil {
		t.Fatal("sweep accepted an unregistered metric")
	}
	msg := err.Error()
	if !strings.Contains(msg, "registered:") {
		t.Fatalf("error does not list registered metrics: %v", err)
	}
	for _, name := range blockadt.MetricNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not mention registered metric %q: %v", name, err)
		}
	}
	// Same contract through stats' -metrics flag.
	if err := cmdStats(t.Context(), []string{"-metrics", "nope"}); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("stats unknown-metric error does not list registered names: %v", err)
	}
}

// TestParallelFlagZeroAndNegative is the satellite audit pin: -parallel
// 0 and negative values select NumCPU at every layer and the output
// stays byte-identical to a serial run.
func TestParallelFlagZeroAndNegative(t *testing.T) {
	if got := blockadt.Parallelism(0); got != runtime.NumCPU() {
		t.Errorf("Parallelism(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := blockadt.Parallelism(-3); got != runtime.NumCPU() {
		t.Errorf("Parallelism(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	serial := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-parallel", "1")) })
	for _, par := range []string{"0", "-3"} {
		out := captureStdout(t, func() error { return cmdSweep(t.Context(), sweepArgs("-parallel", par)) })
		if out != serial {
			t.Errorf("-parallel %s output diverged from -parallel 1", par)
		}
	}
}
