// Command consensuschain demonstrates the strong end of the hierarchy:
// a consortium blockchain (Hyperledger-style ordering, Section 5.7) built
// on the frugal oracle with k = 1, plus the underlying reduction — the same
// oracle solving plain Consensus wait-free (Protocol A, Figure 11 /
// Theorem 4.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"blockadt/internal/chains"
	"blockadt/internal/consensus"
	"blockadt/internal/oracle"
)

func main() {
	n := flag.Int("n", 8, "number of processes")
	writers := flag.Int("writers", 4, "consortium writers |M|")
	blocks := flag.Int("blocks", 24, "target chain length")
	seed := flag.Uint64("seed", 3, "simulation seed")
	flag.Parse()

	// Part 1 — the ordering-service blockchain: one block per height,
	// strong consistency.
	params := chains.Params{N: *n, Writers: *writers, TargetBlocks: *blocks, Seed: *seed}
	res := chains.Hyperledger{}.Run(params)
	cls := res.Classify(chains.Options(params, res.History))
	fmt.Printf("Hyperledger-style consortium: %d procs, %d writers\n", *n, *writers)
	fmt.Printf("  committed %d blocks in %d ticks, %d forks\n", res.Blocks, res.Ticks, res.Forks)
	fmt.Printf("  classified %s (paper: %s)\n\n", cls.Level, chains.Hyperledger{}.Refinement())
	if cls.Level.String() != "SC" {
		fmt.Fprintln(os.Stderr, "expected SC")
		os.Exit(1)
	}

	// Part 2 — why k=1 is consensus-grade: the same oracle type solves
	// Consensus for arbitrarily many processes (consensus number ∞).
	fmt.Printf("Protocol A (Figure 11): consensus from %s among %d proposers\n", "Θ_F,k=1", *n)
	merits := make([]float64, *n)
	for i := range merits {
		merits[i] = 1
	}
	orc := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: *seed})
	cons, err := consensus.NewFromFrugal(orc, "b0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var wg sync.WaitGroup
	decisions := make([]consensus.Value, *n)
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], _ = cons.Propose(i, consensus.Value(fmt.Sprintf("proposal-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		if d != decisions[0] {
			fmt.Fprintf(os.Stderr, "agreement violated at p%d\n", i)
			os.Exit(1)
		}
	}
	fmt.Printf("  all %d processes decided %q — Agreement, Validity, Termination hold\n", *n, decisions[0])
}
