// Command consensuschain demonstrates the strong end of the hierarchy:
// a consortium blockchain (Hyperledger-style ordering, Section 5.7) built
// on the frugal oracle with k = 1, plus the underlying reduction — the same
// oracle solving plain Consensus wait-free (Protocol A, Figure 11 /
// Theorem 4.2). Both parts construct through the public façade by name.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"blockadt/pkg/blockadt"
)

func main() {
	n := flag.Int("n", 8, "number of processes")
	writers := flag.Int("writers", 4, "consortium writers |M|")
	blocks := flag.Int("blocks", 24, "target chain length")
	seed := flag.Uint64("seed", 3, "simulation seed")
	flag.Parse()

	// Part 1 — the ordering-service blockchain: one block per height,
	// strong consistency.
	res, cls, err := blockadt.ClassifySimulated("Hyperledger",
		blockadt.WithN(*n), blockadt.WithWriters(*writers),
		blockadt.WithBlocks(*blocks), blockadt.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec, err := blockadt.LookupSystem("Hyperledger")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Hyperledger-style consortium: %d procs, %d writers\n", *n, *writers)
	fmt.Printf("  committed %d blocks in %d ticks, %d forks\n", res.Blocks, res.Ticks, res.Forks)
	fmt.Printf("  classified %s (paper: %s)\n\n", cls.Level, spec.Refinement)
	if cls.Level.String() != "SC" {
		fmt.Fprintln(os.Stderr, "expected SC")
		os.Exit(1)
	}

	// Part 2 — why k=1 is consensus-grade: the same oracle type solves
	// Consensus for arbitrarily many processes (consensus number ∞).
	fmt.Printf("Protocol A (Figure 11): consensus from %s among %d proposers\n", "Θ_F,k=1", *n)
	merits := make([]float64, *n)
	for i := range merits {
		merits[i] = 1
	}
	orc, err := blockadt.NewOracleByName("frugal", blockadt.OracleConfig{K: 1, Merits: merits, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cons, err := blockadt.NewConsensusFromFrugal(orc, "b0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var wg sync.WaitGroup
	decisions := make([]blockadt.ConsensusValue, *n)
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], _ = cons.Propose(i, blockadt.ConsensusValue(fmt.Sprintf("proposal-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		if d != decisions[0] {
			fmt.Fprintf(os.Stderr, "agreement violated at p%d\n", i)
			os.Exit(1)
		}
	}
	fmt.Printf("  all %d processes decided %q — Agreement, Validity, Termination hold\n", *n, decisions[0])
}
