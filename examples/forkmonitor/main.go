// Command forkmonitor uses the consistency checker as a monitoring tool: it
// runs a replicated BlockTree over an unreliable network that silently
// drops updates towards one replica, then audits the recorded history. The
// checker pinpoints the exact properties the deployment lost — Update
// Agreement R3, LRC Agreement, and with them Eventual Prefix — which is
// the operational face of the paper's necessity results (Theorems 4.6-4.7).
package main

import (
	"flag"
	"fmt"
	"log"

	"blockadt/pkg/blockadt"
)

func main() {
	n := flag.Int("n", 4, "number of replicas")
	victim := flag.Int("victim", 3, "replica whose inbound updates are dropped (-1 = none)")
	blocks := flag.Int("blocks", 15, "blocks created by replica 0")
	seed := flag.Uint64("seed", 21, "simulation seed")
	flag.Parse()

	var links blockadt.NetLinkModel = blockadt.SynchronousLink{Delta: 5}
	if *victim >= 0 {
		v := blockadt.ProcID(*victim)
		links = blockadt.LossyLink{
			Inner: blockadt.SynchronousLink{Delta: 5},
			Rule:  func(m blockadt.NetMessage, _ int64) bool { return m.Kind == blockadt.UpdateMsg && m.To == v },
		}
		fmt.Printf("injecting fault: all updates to replica %d are dropped\n\n", *victim)
	}

	sel, err := blockadt.NewSelector("longest")
	if err != nil {
		log.Fatal(err)
	}
	sim := blockadt.NewNetSim(links, *seed)
	reps := make(map[blockadt.ProcID]*blockadt.NetReplica, *n)
	count := 0
	for i := 0; i < *n; i++ {
		id := blockadt.ProcID(i)
		rep := blockadt.NewNetReplica(id, sel, sim.Recorder())
		reps[id] = rep
		creator := i == 0
		sim.Register(id, blockadt.NetHandlerFuncs{
			Message: func(s *blockadt.NetSim, m blockadt.NetMessage) { rep.OnMessage(s, m) },
			Timer: func(s *blockadt.NetSim, tag string) {
				switch tag {
				case "create":
					if creator && count < *blocks {
						parent := rep.Selected().Tip()
						b := blockadt.Block{ID: blockadt.BlockID(fmt.Sprintf("c%03d", count)), Parent: parent.ID, Token: uint64(count + 1)}
						count++
						rep.CreateAndBroadcast(s, parent.ID, b)
						s.TimerAt(id, s.Now()+10, "create")
					}
				case "read":
					rep.Read()
					s.TimerAt(id, s.Now()+8, "read")
				}
			},
		})
		if creator {
			sim.TimerAt(id, 1, "create")
		}
		sim.TimerAt(id, 2+int64(i), "read")
	}
	sim.Run(int64(*blocks)*10 + 200)
	for _, p := range sim.Procs() {
		reps[p].Read()
	}

	fmt.Printf("run complete: %d messages delivered, %d dropped\n", sim.Delivered, sim.Dropped)
	for i := 0; i < *n; i++ {
		id := blockadt.ProcID(i)
		fmt.Printf("  replica %d chain: %s\n", i, reps[id].Read())
	}

	procs := make([]blockadt.ProcID, *n)
	for i := range procs {
		procs[i] = blockadt.ProcID(i)
	}
	h := sim.Recorder().Snapshot()
	opts := blockadt.CheckOptions{Procs: procs, GraceWindow: 8}

	fmt.Println("\naudit:")
	for _, v := range []blockadt.Verdict{
		blockadt.UpdateAgreement(h, opts),
		blockadt.LRC(h, opts),
		blockadt.EventualPrefix(h, opts),
	} {
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("\n%s", blockadt.CheckEC(h, opts))
	if *victim >= 0 {
		fmt.Println("\nthe audit names the lost guarantee: without Update Agreement / LRC,")
		fmt.Println("no protocol can provide BT Eventual Consistency (Theorems 4.6-4.7).")
	}
}
