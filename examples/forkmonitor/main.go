// Command forkmonitor uses the consistency checker as a monitoring tool: it
// runs a replicated BlockTree over an unreliable network that silently
// drops updates towards one replica, then audits the recorded history. The
// checker pinpoints the exact properties the deployment lost — Update
// Agreement R3, LRC Agreement, and with them Eventual Prefix — which is
// the operational face of the paper's necessity results (Theorems 4.6-4.7).
package main

import (
	"flag"
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
)

func main() {
	n := flag.Int("n", 4, "number of replicas")
	victim := flag.Int("victim", 3, "replica whose inbound updates are dropped (-1 = none)")
	blocks := flag.Int("blocks", 15, "blocks created by replica 0")
	seed := flag.Uint64("seed", 21, "simulation seed")
	flag.Parse()

	var links netsim.LinkModel = netsim.Synchronous{Delta: 5}
	if *victim >= 0 {
		v := history.ProcID(*victim)
		links = netsim.Lossy{
			Inner: netsim.Synchronous{Delta: 5},
			Rule:  func(m netsim.Message, _ int64) bool { return m.Kind == netsim.UpdateMsg && m.To == v },
		}
		fmt.Printf("injecting fault: all updates to replica %d are dropped\n\n", *victim)
	}

	sim := netsim.New(links, *seed)
	reps := make(map[history.ProcID]*netsim.Replica, *n)
	count := 0
	for i := 0; i < *n; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplica(id, blocktree.LongestChain{}, sim.Recorder())
		reps[id] = rep
		creator := i == 0
		sim.Register(id, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer: func(s *netsim.Sim, tag string) {
				switch tag {
				case "create":
					if creator && count < *blocks {
						parent := rep.Selected().Tip()
						b := blocktree.Block{ID: blocktree.BlockID(fmt.Sprintf("c%03d", count)), Parent: parent.ID, Token: uint64(count + 1)}
						count++
						rep.CreateAndBroadcast(s, parent.ID, b)
						s.TimerAt(id, s.Now()+10, "create")
					}
				case "read":
					rep.Read()
					s.TimerAt(id, s.Now()+8, "read")
				}
			},
		})
		if creator {
			sim.TimerAt(id, 1, "create")
		}
		sim.TimerAt(id, 2+int64(i), "read")
	}
	sim.Run(int64(*blocks)*10 + 200)
	for _, p := range sim.Procs() {
		reps[p].Read()
	}

	fmt.Printf("run complete: %d messages delivered, %d dropped\n", sim.Delivered, sim.Dropped)
	for i := 0; i < *n; i++ {
		id := history.ProcID(i)
		fmt.Printf("  replica %d chain: %s\n", i, reps[id].Read())
	}

	procs := make([]history.ProcID, *n)
	for i := range procs {
		procs[i] = history.ProcID(i)
	}
	h := sim.Recorder().Snapshot()
	opts := consistency.Options{Procs: procs, GraceWindow: 8}

	fmt.Println("\naudit:")
	for _, v := range []consistency.Verdict{
		consistency.UpdateAgreement(h, opts),
		consistency.LRC(h, opts),
		consistency.EventualPrefix(h, opts),
	} {
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("\n%s", consistency.CheckEC(h, opts))
	if *victim >= 0 {
		fmt.Println("\nthe audit names the lost guarantee: without Update Agreement / LRC,")
		fmt.Println("no protocol can provide BT Eventual Consistency (Theorems 4.6-4.7).")
	}
}
