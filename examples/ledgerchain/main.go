// Command ledgerchain instantiates the paper's worked example of the
// validity predicate P (Section 3.1): "in Bitcoin, a block is considered
// valid if it can be connected to the current blockchain and does not
// contain transactions that double spend a previous transaction."
//
// It builds a blockchain whose blocks carry account-transfer transactions,
// generates a valid workload, demonstrates the predicate rejecting a
// double-spending block, and replays the final chain into the account
// state — showing the ADT, the oracle and the application predicate
// composing end to end, entirely through the public façade.
package main

import (
	"flag"
	"fmt"
	"log"

	"blockadt/pkg/blockadt"
)

func main() {
	nBlocks := flag.Int("blocks", 8, "blocks to commit")
	nAccounts := flag.Int("accounts", 4, "number of accounts")
	seed := flag.Uint64("seed", 9, "workload seed")
	flag.Parse()

	// The transaction workload and its genesis allocation.
	w := blockadt.NewLedgerWorkload(*seed, *nAccounts, 1000)
	tree := blockadt.NewTree()
	validator := blockadt.NewLedgerValidator(w.Genesis(), tree)
	valid := validator.Predicate()

	// The oracle grants the right to append; the predicate judges the
	// content. A block enters the chain only if both agree. Both come
	// from the registry by name.
	orc, err := blockadt.NewOracleByName("frugal", blockadt.OracleConfig{K: 1, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := blockadt.NewSelector("longest")
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < *nBlocks; i++ {
		batch := w.NextBatch(3)
		payload, err := batch.Encode()
		if err != nil {
			log.Fatal(err)
		}
		parent := sel.Select(tree).Tip()
		b := blockadt.Block{
			ID:      blockadt.BlockID(fmt.Sprintf("blk-%02d", i)),
			Parent:  parent.ID,
			Payload: payload,
		}
		if !valid(b) {
			log.Fatalf("workload produced an invalid block: %v", validator.Check(b))
		}
		tok, ok := orc.GetToken(0, parent.ID, b.ID)
		if !ok {
			log.Fatal("oracle refused a token")
		}
		if _, inserted, err := orc.ConsumeToken(tok); err != nil || !inserted {
			log.Fatalf("consume failed: %v", err)
		}
		b.Token = tok.ID
		if err := tree.Insert(b); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed %s with %d txs\n", b.ID, len(batch.Txs))
	}

	// A double-spending block: replay the first transaction of the chain
	// against the current tip — its nonce is long consumed.
	tip := sel.Select(tree).Tip()
	chain := sel.Select(tree)
	firstPayload, err := blockadt.DecodeLedgerPayload(chain[1].Payload)
	if err != nil || len(firstPayload.Txs) == 0 {
		log.Fatal("cannot extract a replayed tx")
	}
	replay, _ := blockadt.LedgerPayload{Txs: firstPayload.Txs[:1]}.Encode()
	evil := blockadt.Block{ID: "evil", Parent: tip.ID, Payload: replay}
	fmt.Printf("\ndouble-spend attempt (%s replayed): P(evil) = %v\n", firstPayload.Txs[0].ID(), valid(evil))
	fmt.Printf("  reason: %v\n", validator.Check(evil))

	// Replay the committed chain into the final account state.
	state, err := blockadt.ReplayLedger(w.Genesis(), sel.Select(tree))
	if err != nil {
		log.Fatalf("committed chain does not replay: %v", err)
	}
	fmt.Printf("\nfinal chain: %s\n", sel.Select(tree))
	fmt.Println("final balances:")
	for _, a := range state.Accounts() {
		fmt.Printf("  %s: %d\n", a, state.Balance(a))
	}
	fmt.Printf("total supply conserved: %d\n", state.Total())
}
