// Command powsim simulates a Bitcoin-style proof-of-work network — the
// paper's R(BT-ADT_EC, Θ_P) refinement — and shows why such systems only
// achieve Eventual (not Strong) consistency: concurrent miners fork the
// BlockTree, divergent reads coexist for a while, and the heaviest-chain
// rule eventually reconciles every replica onto a common prefix.
//
// Flags select the network size, the mining rate and the block target; the
// run ends with the consistency checker's verdict on the recorded history.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"blockadt/pkg/blockadt"
)

func main() {
	n := flag.Int("n", 8, "number of miners")
	blocks := flag.Int("blocks", 40, "target chain length")
	seed := flag.Uint64("seed", 7, "simulation seed")
	ghost := flag.Bool("ghost", false, "use Ethereum's GHOST selection instead of heaviest-chain")
	flag.Parse()

	sysName := "Bitcoin"
	if *ghost {
		sysName = "Ethereum"
	}
	spec, err := blockadt.LookupSystem(sysName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulating %s: %d miners, target %d blocks, seed %d\n", spec.Name, *n, *blocks, *seed)

	res, cls, err := blockadt.ClassifySimulated(sysName,
		blockadt.WithN(*n), blockadt.WithBlocks(*blocks), blockadt.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual time        %d ticks\n", res.Ticks)
	fmt.Printf("committed blocks    %d\n", res.Blocks)
	fmt.Printf("fork points         %d\n", res.Forks)
	fmt.Printf("messages delivered  %d\n", res.Delivered)
	fmt.Printf("oracle              %s, selector %s\n", res.OracleName, res.SelectorName)

	fmt.Printf("\nconsistency level   %s   (paper: %s)\n", cls.Level, spec.Refinement)
	fmt.Printf("\n%s\n%s", cls.SC, cls.EC)

	if cls.Level != spec.Expected {
		fmt.Fprintf(os.Stderr, "unexpected classification: got %s want %s\n", cls.Level, spec.Expected)
		os.Exit(1)
	}
	if res.Forks == 0 {
		fmt.Println("\nnote: no forks occurred this run — try a larger -n or different -seed to see divergence")
	} else {
		fmt.Printf("\nthe %d fork points above are why Strong Prefix fails while Eventual Prefix holds:\n", res.Forks)
		fmt.Println("concurrent reads disagreed on a suffix, then converged (Definition 3.3).")
	}
}
