// Command quickstart is the five-minute tour of the blockadt library: build
// a blockchain object as the paper's refinement R(BT-ADT, Θ) through the
// public façade, append blocks through the token oracle, read chains, and
// check the recorded concurrent history against the BT consistency
// criteria. Everything is constructed by registry name — the same names
// `btadt list` prints and a scenario Matrix sweeps.
package main

import (
	"fmt"
	"log"

	"blockadt/pkg/blockadt"
)

func main() {
	// 1. Pick an oracle: Θ_F,k=1 = "consensus-grade" validation (one
	//    block per predecessor), the strongest model in the hierarchy.
	orc := blockadt.NewFrugalOracle(1, 42, 1.0 /* merit α0: always grants */)

	// 2. Compose it with a registered system profile: R(BT-ADT, Θ_F,k=1)
	//    with longest-chain selection. The instance is injected so we can
	//    inspect the oracle's state after the run.
	sys, err := blockadt.New("Hyperledger",
		blockadt.WithOracleInstance(orc),
		blockadt.WithSelector("longest"))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Append blocks. Each append internally loops getToken on the tip
	//    of f(bt), consumes the token, and concatenates — atomically.
	for i := 0; i < 5; i++ {
		id := blockadt.BlockID(fmt.Sprintf("blk-%d", i))
		ok, err := sys.Append(0, blockadt.Block{ID: id, Payload: []byte(fmt.Sprintf("tx-batch-%d", i))})
		if err != nil {
			log.Fatalf("append %s: %v", id, err)
		}
		fmt.Printf("append(%s) → %v\n", id, ok)
	}

	// 4. Read: {b0}⌢f(bt).
	chain := sys.Read(0)
	fmt.Printf("read() → %s (score %d)\n", chain, chain.Length())

	// 5. The object recorded every operation as a concurrent history;
	//    check it against the BT Strong Consistency criterion.
	report := blockadt.CheckSC(sys.History(), blockadt.CheckOptions{})
	fmt.Printf("\n%s", report)

	// 6. Inspect the oracle's synchronization state: exactly one block
	//    consumed per predecessor (k-Fork Coherence with k = 1).
	fmt.Printf("\noracle %s: K-fork coherent = %v\n", orc.Name(), orc.KForkCoherent())
	for _, h := range orc.Objects() {
		fmt.Printf("  K[%s] = %v\n", h, orc.ConsumedSet(h))
	}
}
