module blockadt

go 1.23
