module blockadt

go 1.21
