// Package adt implements the abstract-data-type formalism of Section 2 of
// "Blockchain Abstract Data Type" (Anceaume et al., arXiv:1802.09877).
//
// An ADT is a transducer T = ⟨A, B, Z, ξ0, τ, δ⟩ (Definition 2.1): A is the
// input alphabet, B the output alphabet, Z the abstract states, ξ0 the
// initial state, τ : Z×A → Z the transition function and δ : Z×A → B the
// output function. Input symbols carry no arguments in the formalism — a
// call with different arguments is a different symbol — so in Go a symbol is
// simply a value of the input type.
//
// The package provides the sequential-specification machinery used by the
// rest of the repository: membership in L(T) (Definition 2.3), replay of
// operation sequences, and transition traces in the style of the paper's
// Figures 1, 6 and 7.
package adt

import "fmt"

// ADT is the 6-tuple of Definition 2.1, generic over the state type S, the
// input alphabet A and the output alphabet B. Tau and Delta must be pure
// functions of (state, symbol); Tau must return a fresh state value rather
// than mutating its argument, so that replays and traces can retain
// intermediate states.
type ADT[S, A, B any] struct {
	// Name identifies the data type in traces and error messages.
	Name string
	// Initial is ξ0, the initial abstract state.
	Initial S
	// Tau is the transition function τ : Z×A → Z.
	Tau func(S, A) S
	// Delta is the output function δ : Z×A → B.
	Delta func(S, A) B
}

// Operation is an element of Σ = A ∪ (A×B) (Definition 2.2): either a bare
// input symbol or an input/output couple α/β.
type Operation[A, B any] struct {
	// Input is the symbol α ∈ A.
	Input A
	// Output is β when the operation is a couple α/β.
	Output B
	// HasOutput reports whether the operation is a couple α/β rather than
	// a bare input symbol.
	HasOutput bool
}

// In builds the bare-input operation α.
func In[A, B any](input A) Operation[A, B] {
	return Operation[A, B]{Input: input}
}

// Out builds the couple operation α/β.
func Out[A, B any](input A, output B) Operation[A, B] {
	return Operation[A, B]{Input: input, Output: output, HasOutput: true}
}

// String renders the operation using the paper's α/β syntax.
func (o Operation[A, B]) String() string {
	if o.HasOutput {
		return fmt.Sprintf("%v/%v", o.Input, o.Output)
	}
	return fmt.Sprintf("%v", o.Input)
}

// Step is one transition of a replayed sequence: the state before the
// operation, the operation itself, the produced output and the state after.
type Step[S, A, B any] struct {
	Before S
	Op     Operation[A, B]
	Output B
	After  S
}

// Trace is the path through the transition system induced by a sequence of
// operations, in the style of the paper's Figures 1, 6 and 7.
type Trace[S, A, B any] struct {
	ADTName string
	Initial S
	Steps   []Step[S, A, B]
}

// Final returns the state reached at the end of the trace.
func (t Trace[S, A, B]) Final() S {
	if len(t.Steps) == 0 {
		return t.Initial
	}
	return t.Steps[len(t.Steps)-1].After
}

// Replay applies the operation inputs in order from ξ0, ignoring any
// recorded outputs, and returns the full transition trace.
func (t *ADT[S, A, B]) Replay(ops []Operation[A, B]) Trace[S, A, B] {
	tr := Trace[S, A, B]{ADTName: t.Name, Initial: t.Initial}
	state := t.Initial
	tr.Steps = make([]Step[S, A, B], 0, len(ops))
	for _, op := range ops {
		out := t.Delta(state, op.Input)
		next := t.Tau(state, op.Input)
		tr.Steps = append(tr.Steps, Step[S, A, B]{Before: state, Op: op, Output: out, After: next})
		state = next
	}
	return tr
}

// RecognitionError reports why a sequence is not a sequential history of the
// ADT, i.e. not a member of L(T) (Definition 2.3).
type RecognitionError[A, B any] struct {
	// Index is the position of the offending operation.
	Index int
	// Op is the offending operation.
	Op Operation[A, B]
	// Expected is the output δ(ξi, αi) the transition system produced.
	Expected B
}

// Error implements the error interface.
func (e *RecognitionError[A, B]) Error() string {
	return fmt.Sprintf("adt: operation %d (%v) incompatible with state: δ produced %v", e.Index, e.Op, e.Expected)
}

// Recognizes reports whether the sequence σ = (σi) is a sequential history
// of T (Definition 2.3): there must exist a run ξ0, ξ1, … with
// τ(ξi, σi) = ξi+1 such that every couple operation's recorded output equals
// δ(ξi, σi) under eq. Bare-input operations constrain only the state
// evolution. A nil error means σ ∈ L(T).
func (t *ADT[S, A, B]) Recognizes(seq []Operation[A, B], eq func(B, B) bool) error {
	state := t.Initial
	for i, op := range seq {
		out := t.Delta(state, op.Input)
		if op.HasOutput && !eq(op.Output, out) {
			return &RecognitionError[A, B]{Index: i, Op: op, Expected: out}
		}
		state = t.Tau(state, op.Input)
	}
	return nil
}

// Language is a convenience wrapper around Recognizes for output types that
// are comparable with ==.
func Language[S, A any, B comparable](t *ADT[S, A, B], seq []Operation[A, B]) error {
	return t.Recognizes(seq, func(a, b B) bool { return a == b })
}
