package adt

import (
	"testing"
	"testing/quick"
)

// counterADT is a toy ADT used to exercise the transducer machinery: state
// is an int, inputs are "inc" and "get", outputs are ints.
type cIn struct {
	inc bool
}

func counterADT() *ADT[int, cIn, int] {
	return &ADT[int, cIn, int]{
		Name:    "counter",
		Initial: 0,
		Tau: func(s int, in cIn) int {
			if in.inc {
				return s + 1
			}
			return s
		},
		Delta: func(s int, in cIn) int {
			if in.inc {
				return s + 1
			}
			return s
		},
	}
}

func TestReplayProducesTrace(t *testing.T) {
	c := counterADT()
	tr := c.Replay([]Operation[cIn, int]{
		In[cIn, int](cIn{inc: true}),
		In[cIn, int](cIn{inc: true}),
		In[cIn, int](cIn{}),
	})
	if got := tr.Final(); got != 2 {
		t.Fatalf("final state = %d, want 2", got)
	}
	if len(tr.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(tr.Steps))
	}
	if tr.Steps[1].Before != 1 || tr.Steps[1].After != 2 {
		t.Fatalf("step 1 = %+v, want before=1 after=2", tr.Steps[1])
	}
	if tr.Steps[2].Output != 2 {
		t.Fatalf("get output = %d, want 2", tr.Steps[2].Output)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	c := counterADT()
	tr := c.Replay(nil)
	if tr.Final() != 0 {
		t.Fatalf("empty replay final = %d, want initial 0", tr.Final())
	}
}

func TestRecognizesAcceptsLegalHistory(t *testing.T) {
	c := counterADT()
	seq := []Operation[cIn, int]{
		Out[cIn, int](cIn{inc: true}, 1),
		Out[cIn, int](cIn{}, 1),
		Out[cIn, int](cIn{inc: true}, 2),
		Out[cIn, int](cIn{}, 2),
	}
	if err := Language(c, seq); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
}

func TestRecognizesRejectsWrongOutput(t *testing.T) {
	c := counterADT()
	seq := []Operation[cIn, int]{
		Out[cIn, int](cIn{inc: true}, 1),
		Out[cIn, int](cIn{}, 7), // wrong: state is 1
	}
	err := Language(c, seq)
	if err == nil {
		t.Fatal("illegal history accepted")
	}
	re, ok := err.(*RecognitionError[cIn, int])
	if !ok {
		t.Fatalf("error type = %T, want *RecognitionError", err)
	}
	if re.Index != 1 {
		t.Fatalf("violation index = %d, want 1", re.Index)
	}
	if re.Expected != 1 {
		t.Fatalf("expected output = %d, want 1", re.Expected)
	}
}

func TestRecognizesBareInputsUnconstrained(t *testing.T) {
	c := counterADT()
	// Bare inputs only constrain state evolution, never outputs.
	seq := []Operation[cIn, int]{
		In[cIn, int](cIn{inc: true}),
		In[cIn, int](cIn{inc: true}),
		Out[cIn, int](cIn{}, 2),
	}
	if err := Language(c, seq); err != nil {
		t.Fatalf("bare-input history rejected: %v", err)
	}
}

func TestOperationString(t *testing.T) {
	op := Out[cIn, int](cIn{inc: true}, 3)
	if got := op.String(); got != "{true}/3" {
		t.Fatalf("String() = %q", got)
	}
	bare := In[cIn, int](cIn{})
	if got := bare.String(); got != "{false}" {
		t.Fatalf("String() = %q", got)
	}
}

// TestProperty_ReplayedOutputsAreRecognized: any sequence of inputs, when
// replayed and decorated with the produced outputs, is a member of L(T).
func TestProperty_ReplayedOutputsAreRecognized(t *testing.T) {
	c := counterADT()
	f := func(incs []bool) bool {
		ops := make([]Operation[cIn, int], len(incs))
		for i, b := range incs {
			ops[i] = In[cIn, int](cIn{inc: b})
		}
		tr := c.Replay(ops)
		decorated := make([]Operation[cIn, int], len(incs))
		for i, st := range tr.Steps {
			decorated[i] = Out[cIn, int](st.Op.Input, st.Output)
		}
		return Language(c, decorated) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestProperty_CorruptedOutputIsRejected: flipping any couple's output by
// +1 makes the sequence leave L(T).
func TestProperty_CorruptedOutputIsRejected(t *testing.T) {
	c := counterADT()
	f := func(incs []bool, at uint) bool {
		if len(incs) == 0 {
			return true
		}
		ops := make([]Operation[cIn, int], len(incs))
		for i, b := range incs {
			ops[i] = In[cIn, int](cIn{inc: b})
		}
		tr := c.Replay(ops)
		decorated := make([]Operation[cIn, int], len(incs))
		for i, st := range tr.Steps {
			decorated[i] = Out[cIn, int](st.Op.Input, st.Output)
		}
		k := int(at % uint(len(decorated)))
		decorated[k].Output++
		return Language(c, decorated) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
