// Package benchguard is the CI benchmark-regression comparator: it
// parses `go test -bench` output, reduces repeated runs (-count=N) to
// each benchmark's best time, and compares a current run against a
// checked-in baseline under a maximum-regression percentage.
//
// Best-of reduction is deliberate: the minimum over repeats is the run
// least perturbed by scheduler noise, so it is the stablest estimator a
// text-output comparator can get. Benchmark names are normalized by
// stripping the trailing -GOMAXPROCS suffix, and names that depend on
// the host's CPU count (the sweep benches parameterize parallelism by
// NumCPU) are expected to differ between machines — the comparator
// therefore compares the intersection of the two sets, requires it to
// be non-empty, and lets callers pin a required-name list so a renamed
// or deleted benchmark cannot silently drop out of the gate.
package benchguard

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Parse reads `go test -bench` output and returns each benchmark's best
// (minimum) ns/op across repeats, keyed by the name with its
// -GOMAXPROCS suffix stripped.
func Parse(r io.Reader) (map[string]float64, error) {
	best := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8   300   123456 ns/op   [... B/op ... allocs/op]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := stripProcSuffix(fields[0])
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchguard: %w", err)
	}
	return best, nil
}

// stripProcSuffix drops the trailing -GOMAXPROCS decoration go test
// appends ("BenchmarkX/sub=1-8" → "BenchmarkX/sub=1"). Only a purely
// numeric final dash segment is removed, so parameterized sub-benchmark
// names survive.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name      string
	Base, Cur float64 // best ns/op
	Pct       float64 // (Cur-Base)/Base * 100, positive = slower
	Regressed bool
	// Improved flags a current best more than the improvement gate
	// below baseline: a real win that must be ratcheted into the
	// baseline file, or the gate slowly goes blind (a later regression
	// hides inside the unclaimed headroom).
	Improved bool
}

// Compare evaluates current against baseline: every benchmark present
// in both is compared, and a current best more than maxRegressPct
// slower than the baseline's is a regression. A maxImprovePct > 0
// additionally flags benchmarks more than that percentage *faster* than
// baseline — improvements must be committed to the baseline, not left as
// slack for future regressions to hide in. Names listed in required must
// be present in both sets — a gate that silently loses its benchmarks is
// worse than one that fails loudly.
func Compare(baseline, current map[string]float64, maxRegressPct, maxImprovePct float64, required []string) ([]Delta, error) {
	if maxRegressPct < 0 {
		return nil, fmt.Errorf("benchguard: max regression must be >= 0%%, got %v", maxRegressPct)
	}
	if maxImprovePct < 0 || maxImprovePct >= 100 {
		if maxImprovePct != 0 {
			return nil, fmt.Errorf("benchguard: max improvement must be in (0, 100)%% or 0 to disable, got %v", maxImprovePct)
		}
	}
	for _, name := range required {
		if _, ok := baseline[name]; !ok {
			return nil, fmt.Errorf("benchguard: required benchmark %q missing from the baseline", name)
		}
		if _, ok := current[name]; !ok {
			return nil, fmt.Errorf("benchguard: required benchmark %q missing from the current run", name)
		}
	}
	var names []string
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("benchguard: no benchmark appears in both baseline and current run")
	}
	sort.Strings(names)
	deltas := make([]Delta, 0, len(names))
	for _, name := range names {
		base, cur := baseline[name], current[name]
		d := Delta{Name: name, Base: base, Cur: cur}
		if base > 0 {
			d.Pct = 100 * (cur - base) / base
		}
		d.Regressed = d.Pct > maxRegressPct
		d.Improved = maxImprovePct > 0 && d.Pct < -maxImprovePct
		deltas = append(deltas, d)
	}
	return deltas, nil
}

// Regressions filters the regressed deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Improvements filters the deltas flagged as unclaimed improvements.
func Improvements(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Improved {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the comparison as an aligned table plus a verdict
// line, the output the CI step prints.
func Format(deltas []Delta, maxRegressPct float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-56s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, d := range deltas {
		flag := ""
		switch {
		case d.Regressed:
			flag = "  REGRESSED"
		case d.Improved:
			flag = "  IMPROVED (ratchet the baseline)"
		}
		fmt.Fprintf(&sb, "%-56s %14.0f %14.0f %+8.1f%%%s\n", d.Name, d.Base, d.Cur, d.Pct, flag)
	}
	reg, imp := Regressions(deltas), Improvements(deltas)
	switch {
	case len(reg) > 0:
		fmt.Fprintf(&sb, "FAIL: %d of %d benchmarks regressed more than %.0f%%\n", len(reg), len(deltas), maxRegressPct)
	case len(imp) > 0:
		fmt.Fprintf(&sb, "FAIL: %d of %d benchmarks improved past the ratchet gate — update BENCH_baseline.txt to claim the win\n", len(imp), len(deltas))
	default:
		fmt.Fprintf(&sb, "ok: %d benchmarks within %.0f%% of baseline\n", len(deltas), maxRegressPct)
	}
	return sb.String()
}
