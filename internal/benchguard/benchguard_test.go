package benchguard

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: blockadt
cpu: Test CPU
BenchmarkSweepMatrix/parallel=1-8         	     100	  10000000 ns/op	 1000 B/op	  10 allocs/op
BenchmarkSweepMatrix/parallel=1-8         	     100	  11000000 ns/op	 1000 B/op	  10 allocs/op
BenchmarkSweepMatrix/parallel=1-8         	     100	  10500000 ns/op	 1000 B/op	  10 allocs/op
BenchmarkSweepMatrix/parallel=4-8         	     100	   3000000 ns/op
BenchmarkMetricCollectors-8               	    5000	     20000 ns/op
BenchmarkSeedAggregation                  	    1000	    500000 ns/op
PASS
ok  	blockadt	12.3s
`

func parseSample(t *testing.T, s string) map[string]float64 {
	t.Helper()
	m, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParseBestOf pins the parser: -GOMAXPROCS suffixes are stripped,
// repeated runs reduce to the minimum, undecorated names survive.
func TestParseBestOf(t *testing.T) {
	m := parseSample(t, sampleBench)
	want := map[string]float64{
		"BenchmarkSweepMatrix/parallel=1": 10000000,
		"BenchmarkSweepMatrix/parallel=4": 3000000,
		"BenchmarkMetricCollectors":       20000,
		"BenchmarkSeedAggregation":        500000,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(m), len(want), m)
	}
	for name, ns := range want {
		if m[name] != ns {
			t.Errorf("%s = %v, want %v", name, m[name], ns)
		}
	}
}

// TestCompareInjectedSlowdown is the acceptance demonstration: a 40%
// slowdown on one benchmark fails a 30% gate, while 20% passes it.
func TestCompareInjectedSlowdown(t *testing.T) {
	base := parseSample(t, sampleBench)

	slowed := parseSample(t, sampleBench)
	slowed["BenchmarkSweepMatrix/parallel=1"] *= 1.40
	deltas, err := Compare(base, slowed, 30, 0, []string{"BenchmarkSweepMatrix/parallel=1"})
	if err != nil {
		t.Fatal(err)
	}
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Name != "BenchmarkSweepMatrix/parallel=1" {
		t.Fatalf("40%% slowdown vs 30%% gate: regressions = %+v", reg)
	}
	out := Format(deltas, 30)
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL") {
		t.Fatalf("regression not flagged in output:\n%s", out)
	}

	mild := parseSample(t, sampleBench)
	mild["BenchmarkSweepMatrix/parallel=1"] *= 1.20
	deltas, err = Compare(base, mild, 30, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(Regressions(deltas)) != 0 {
		t.Fatalf("20%% drift vs 30%% gate regressed: %+v", deltas)
	}
	if out := Format(deltas, 30); !strings.Contains(out, "ok:") {
		t.Fatalf("clean run not reported ok:\n%s", out)
	}

	// Improvements never fail when the ratchet is disabled (max-improve 0).
	fast := parseSample(t, sampleBench)
	for name := range fast {
		fast[name] *= 0.5
	}
	deltas, err = Compare(base, fast, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(Regressions(deltas)) != 0 {
		t.Fatalf("an improvement regressed: %+v", deltas)
	}
	if len(Improvements(deltas)) != 0 {
		t.Fatalf("ratchet disabled but improvements flagged: %+v", deltas)
	}
}

// TestCompareImprovementRatchet pins the downward ratchet: a benchmark
// far below baseline without a baseline update is flagged, so wins get
// committed instead of becoming slack for later regressions to hide in.
func TestCompareImprovementRatchet(t *testing.T) {
	base := parseSample(t, sampleBench)

	fast := parseSample(t, sampleBench)
	fast["BenchmarkSweepMatrix/parallel=1"] *= 0.2 // 80% faster
	deltas, err := Compare(base, fast, 30, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := Improvements(deltas)
	if len(imp) != 1 || imp[0].Name != "BenchmarkSweepMatrix/parallel=1" {
		t.Fatalf("80%% improvement vs 60%% ratchet: improvements = %+v", imp)
	}
	out := Format(deltas, 30)
	if !strings.Contains(out, "IMPROVED") || !strings.Contains(out, "FAIL") {
		t.Fatalf("unclaimed improvement not flagged in output:\n%s", out)
	}

	// Within the ratchet: a 40% win passes a 60% gate.
	mild := parseSample(t, sampleBench)
	mild["BenchmarkSweepMatrix/parallel=1"] *= 0.6
	deltas, err = Compare(base, mild, 30, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(Improvements(deltas)) != 0 {
		t.Fatalf("40%% win vs 60%% ratchet flagged: %+v", deltas)
	}

	// A bad ratchet percentage is rejected.
	if _, err := Compare(base, base, 30, 100, nil); err == nil {
		t.Fatal("max-improve 100 accepted")
	}
}

// TestCompareGuards pins the failure modes: a required benchmark
// missing from either side, an empty intersection, a bad gate.
func TestCompareGuards(t *testing.T) {
	base := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench)

	if _, err := Compare(base, cur, 30, 0, []string{"BenchmarkGone"}); err == nil {
		t.Error("Compare accepted a required benchmark missing from both sides")
	}
	delete(cur, "BenchmarkSeedAggregation")
	if _, err := Compare(base, cur, 30, 0, []string{"BenchmarkSeedAggregation"}); err == nil {
		t.Error("Compare accepted a required benchmark missing from the current run")
	}
	if _, err := Compare(base, map[string]float64{"BenchmarkOther": 1}, 30, 0, nil); err == nil {
		t.Error("Compare accepted an empty intersection")
	}
	if _, err := Compare(base, base, -1, 0, nil); err == nil {
		t.Error("Compare accepted a negative gate")
	}

	// Machine-dependent extras (a parallel=NumCPU sub-bench that only
	// exists on one host) are ignored, not fatal.
	extra := parseSample(t, sampleBench)
	extra["BenchmarkSweepMatrix/parallel=16"] = 1
	deltas, err := Compare(base, extra, 30, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Name == "BenchmarkSweepMatrix/parallel=16" {
			t.Error("host-specific extra benchmark leaked into the comparison")
		}
	}
}

// TestParseRejectsGarbageGracefully: non-benchmark lines and malformed
// rows are skipped, not fatal.
func TestParseRejectsGarbageGracefully(t *testing.T) {
	m := parseSample(t, "hello\nBenchmarkX not-a-number ns/op\nBenchmarkY-2 10 2500 ns/op\n")
	if len(m) != 1 || m["BenchmarkY"] != 2500 {
		t.Fatalf("parsed %v", m)
	}
}
