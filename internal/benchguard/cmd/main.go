// Command benchguard is the CI benchmark-regression gate: it compares a
// current `go test -bench` output against the checked-in baseline
// (BENCH_baseline.txt) and exits non-zero when any shared benchmark's
// best ns/op regressed beyond the gate.
//
//	go run ./internal/benchguard/cmd \
//	    -baseline BENCH_baseline.txt -current bench_current.txt \
//	    -max-regress 30 \
//	    -require 'BenchmarkSweepMatrix/parallel=1,BenchmarkSweepMatrix/parallel=4'
//
// It lives under internal/ because it is repository tooling, not part of
// the public façade surface that cmd/btadt exposes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blockadt/internal/benchguard"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.txt", "checked-in `go test -bench` baseline output")
	current := flag.String("current", "", "current `go test -bench` output to gate")
	maxRegress := flag.Float64("max-regress", 30, "maximum tolerated ns/op regression, in percent")
	maxImprove := flag.Float64("max-improve", 0, "fail when a benchmark is more than this percent faster than baseline without a baseline update (0 disables the ratchet)")
	require := flag.String("require", "", "comma-separated benchmark names that must be present in both runs")
	flag.Parse()

	if err := run(*baseline, *current, *maxRegress, *maxImprove, *require); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath string, maxRegress, maxImprove float64, require string) error {
	if currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	base, err := parseFile(baselinePath)
	if err != nil {
		return err
	}
	cur, err := parseFile(currentPath)
	if err != nil {
		return err
	}
	var required []string
	for _, name := range strings.Split(require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	deltas, err := benchguard.Compare(base, cur, maxRegress, maxImprove, required)
	if err != nil {
		return err
	}
	fmt.Print(benchguard.Format(deltas, maxRegress))
	if reg := benchguard.Regressions(deltas); len(reg) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", len(reg), maxRegress)
	}
	if imp := benchguard.Improvements(deltas); len(imp) > 0 {
		return fmt.Errorf("%d benchmark(s) improved more than %.0f%% past baseline — ratchet BENCH_baseline.txt", len(imp), maxImprove)
	}
	return nil
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchguard.Parse(f)
}
