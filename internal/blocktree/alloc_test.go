package blocktree

import (
	"fmt"
	"testing"
)

// TestInsertAllocs pins the insert path's allocation budget on a pre-sized
// tree: with NewCap the maps never rehash, the sorted leaf slice is reused,
// and the only unavoidable allocation is each parent's children slice — so
// a chain insert must average well under two allocations per block. This is
// the regression guard for the sorted-at-insert rewrite: reintroducing a
// per-read sort+copy or per-insert map rebuild blows the ceiling at once.
func TestInsertAllocs(t *testing.T) {
	const n = 512
	ids := make([]BlockID, n)
	for i := range ids {
		ids[i] = BlockID(fmt.Sprintf("b%04d", i))
	}
	allocs := testing.AllocsPerRun(20, func() {
		tr := NewCap(n + 1)
		parent := GenesisID
		for _, id := range ids {
			if err := tr.Insert(Block{ID: id, Parent: parent, Work: 1}); err != nil {
				t.Fatal(err)
			}
			parent = id
		}
	})
	perInsert := (allocs - 8) / n // subtract the NewCap fixed cost
	if perInsert > 2 {
		t.Fatalf("Insert averaged %.2f allocs per block (%.0f total for %d), want ≤ 2", perInsert, allocs, n)
	}
}

// TestSelectorAllocs pins the read path: selectors on a warm tree must
// allocate only the one chain they materialize (a Chain backing array),
// never per-level copies or sorted scratch.
func TestSelectorAllocs(t *testing.T) {
	tr := New()
	parent := GenesisID
	for i := 0; i < 128; i++ {
		id := BlockID(fmt.Sprintf("b%04d", i))
		if err := tr.Insert(Block{ID: id, Parent: parent, Work: 1}); err != nil {
			t.Fatal(err)
		}
		parent = id
	}
	for _, sel := range []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}} {
		allocs := testing.AllocsPerRun(100, func() {
			if c := sel.Select(tr); len(c) != 129 {
				t.Fatalf("%s returned %d blocks", sel.Name(), len(c))
			}
		})
		if allocs > 1 {
			t.Fatalf("%s allocated %.1f objects per Select, want ≤ 1 (the chain)", sel.Name(), allocs)
		}
	}
}
