// Package blocktree implements the BlockTree abstract data type of
// Section 3.1 of "Blockchain Abstract Data Type" (Anceaume et al.): a
// directed rooted tree bt = (V_bt, E_bt) whose vertices are blocks and whose
// edges point backward to the genesis block b0, together with the selection
// functions f ∈ F, the score functions used by the consistency criteria, and
// the sequential specification of Definition 3.1.
package blocktree

import (
	"fmt"

	"blockadt/internal/history"
)

// BlockID names a block. IDs are unique within a tree.
type BlockID = history.BlockRef

// GenesisID is the conventional identifier of the genesis block b0.
const GenesisID BlockID = "b0"

// Block is a vertex of the BlockTree. A block is valid (∈ B′) when the
// token-oracle refinement has granted it a token; outside the refinement,
// validity is judged by a Predicate.
type Block struct {
	// ID uniquely names the block.
	ID BlockID
	// Parent is the block this one chains to; the genesis block has an
	// empty parent.
	Parent BlockID
	// Height is the distance to the root; genesis has height 0.
	Height int
	// Work is the block's own weight contribution (e.g. difficulty); the
	// heaviest-chain and GHOST selectors accumulate it. A zero value is
	// treated as weight 1 by the selectors so that plain trees behave
	// like length-scored trees.
	Work int
	// Payload is the application content (transactions); opaque here.
	Payload []byte
	// Token is the oracle token that validated the block (0 = none).
	Token uint64
	// Proposer is the merit index / process that created the block; -1
	// when unknown.
	Proposer int
}

// Genesis returns the genesis block b0.
func Genesis() Block {
	return Block{ID: GenesisID, Height: 0, Proposer: -1}
}

// WireSize reports the block's approximate serialized size for the
// network simulator's byte accounting (netsim.Sized): the two id
// strings, the payload, and the fixed numeric fields.
func (b Block) WireSize() int {
	return len(b.ID) + len(b.Parent) + len(b.Payload) + 24
}

// work returns the selector weight of the block (zero Work counts as 1).
func (b Block) work() int {
	if b.Work <= 0 {
		return 1
	}
	return b.Work
}

// String renders the block as id(parent,h=height).
func (b Block) String() string {
	return fmt.Sprintf("%s(parent=%s,h=%d)", string(b.ID), string(b.Parent), b.Height)
}

// Predicate is the application-dependent validity predicate P of
// Section 3.1: bt contains only blocks with P(b) = ⊤. The refinement of
// Section 3.3 replaces predicates with oracle tokens.
type Predicate func(Block) bool

// AcceptAll is the trivial predicate: every block is valid.
func AcceptAll(Block) bool { return true }

// RequireToken accepts exactly the blocks the oracle validated (Token != 0),
// i.e. the blocks in B′ by construction of the refinement.
func RequireToken(b Block) bool { return b.Token != 0 }

// Chain is a path from b0 to a leaf as returned by read(); index 0 is b0.
type Chain []Block

// IDs projects the chain to block references, the representation recorded
// in histories.
func (c Chain) IDs() history.Chain {
	out := make(history.Chain, len(c))
	for i, b := range c {
		out[i] = b.ID
	}
	return out
}

// Tip returns the last block of the chain; the genesis block for the chain
// {b0}.
func (c Chain) Tip() Block {
	return c[len(c)-1]
}

// Length returns the number of non-genesis blocks, the paper's length score
// l with score({b0}) = s0 = 0.
func (c Chain) Length() int {
	if len(c) == 0 {
		return 0
	}
	return len(c) - 1
}

// Weight returns the cumulative work of the non-genesis blocks, the
// "heaviest chain" score.
func (c Chain) Weight() int {
	w := 0
	for _, b := range c[1:] {
		w += b.work()
	}
	return w
}

// String renders the chain with the paper's concatenation syntax.
func (c Chain) String() string { return c.IDs().String() }

// Score is a monotonically increasing deterministic function BC → N
// (Section 3.1.2): score(bc⌢{b}) > score(bc).
type Score func(history.Chain) int

// LengthScore scores a chain by its number of non-genesis blocks.
func LengthScore(c history.Chain) int {
	if len(c) == 0 {
		return 0
	}
	return len(c) - 1
}

// MCPS is the paper's mcps function: the score of the maximal common prefix
// of two chains under the given score.
func MCPS(score Score, a, b history.Chain) int {
	return score(a.CommonPrefix(b))
}
