package blocktree

import (
	"fmt"
	"testing"

	"blockadt/internal/prng"
)

// randomTree grows a tree with count random appends: each block attaches
// to a uniformly chosen existing block (random fork pattern) with random
// work in [1,4].
func randomTree(t *testing.T, src *prng.Source, count int) (*Tree, []BlockID) {
	t.Helper()
	tree := New()
	ids := []BlockID{GenesisID}
	for i := 0; i < count; i++ {
		parent := ids[src.Intn(len(ids))]
		id := BlockID(fmt.Sprintf("r%04d", i))
		if err := tree.Insert(Block{ID: id, Parent: parent, Work: 1 + src.Intn(4)}); err != nil {
			t.Fatalf("insert %s under %s: %v", id, parent, err)
		}
		ids = append(ids, id)
	}
	return tree, ids
}

// allSelectors is the full selector family under test.
func allSelectors() []Selector {
	return []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}}
}

// TestPropertySelectorInvariants drives random append sequences and
// asserts, for every selector, the structural invariants every read
// relies on: the selected chain starts at genesis, is parent-linked with
// strictly increasing heights (so the LongestChain score is monotone
// along it), ends at a leaf reachable from genesis, and is deterministic.
func TestPropertySelectorInvariants(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		src := prng.New(uint64(1000 + trial))
		tree, _ := randomTree(t, src, 40+src.Intn(80))
		for _, sel := range allSelectors() {
			chain := sel.Select(tree)
			if len(chain) == 0 || chain[0].ID != GenesisID {
				t.Fatalf("trial %d %s: selection does not start at genesis: %v", trial, sel.Name(), chain.IDs())
			}
			for i := 1; i < len(chain); i++ {
				if chain[i].Parent != chain[i-1].ID {
					t.Fatalf("trial %d %s: chain link %d broken: %s's parent is %s, predecessor is %s",
						trial, sel.Name(), i, chain[i].ID, chain[i].Parent, chain[i-1].ID)
				}
				if chain[i].Height != chain[i-1].Height+1 {
					t.Fatalf("trial %d %s: height not monotone at %d: %d after %d",
						trial, sel.Name(), i, chain[i].Height, chain[i-1].Height)
				}
			}
			tip := chain[len(chain)-1].ID
			walked, ok := tree.ChainTo(tip)
			if !ok {
				t.Fatalf("trial %d %s: selected tip %s not reachable from genesis", trial, sel.Name(), tip)
			}
			if len(walked) != len(chain) {
				t.Fatalf("trial %d %s: ChainTo(%s) has length %d, selection %d",
					trial, sel.Name(), tip, len(walked), len(chain))
			}
			// Determinism: an identical tree yields an identical selection.
			again := sel.Select(tree.Clone())
			if chain.String() != again.String() {
				t.Fatalf("trial %d %s: selection not deterministic:\n%s\nvs\n%s",
					trial, sel.Name(), chain, again)
			}
		}
	}
}

// TestPropertyLongestChainMaximal asserts the LongestChain score is
// maximal: no leaf's chain is strictly longer than the selected one, and
// ties break toward the lexicographically largest tip.
func TestPropertyLongestChainMaximal(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		src := prng.New(uint64(2000 + trial))
		tree, _ := randomTree(t, src, 60)
		chain := LongestChain{}.Select(tree)
		tip := chain[len(chain)-1].ID
		for _, leaf := range tree.Leaves() {
			c, _ := tree.ChainTo(leaf)
			if len(c) > len(chain) {
				t.Fatalf("trial %d: leaf %s has length %d > selected %d", trial, leaf, len(c), len(chain))
			}
			if len(c) == len(chain) && leaf > tip {
				t.Fatalf("trial %d: tie-break violated: leaf %s > selected tip %s", trial, leaf, tip)
			}
		}
	}
}

// TestPropertyAppendOnlyNeverOrphans asserts the append-only contract:
// once a prefix is committed (observed via a selector), later inserts
// never remove it — every block of the old selection is still present,
// still reachable, and its genesis-rooted chain is unchanged.
func TestPropertyAppendOnlyNeverOrphans(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		src := prng.New(uint64(3000 + trial))
		tree, ids := randomTree(t, src, 50)
		committed := LongestChain{}.Select(tree)
		before := committed.String()
		tipBefore := committed[len(committed)-1].ID

		// Grow the tree further, forking anywhere.
		for i := 0; i < 50; i++ {
			parent := ids[src.Intn(len(ids))]
			id := BlockID(fmt.Sprintf("x%04d", i))
			if err := tree.Insert(Block{ID: id, Parent: parent, Work: 1 + src.Intn(4)}); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}

		for _, b := range committed {
			if !tree.Has(b.ID) {
				t.Fatalf("trial %d: committed block %s vanished", trial, b.ID)
			}
		}
		after, ok := tree.ChainTo(tipBefore)
		if !ok {
			t.Fatalf("trial %d: old tip %s no longer reachable", trial, tipBefore)
		}
		if after.String() != before {
			t.Fatalf("trial %d: committed prefix rewritten:\nbefore: %s\nafter:  %s", trial, before, after)
		}
		// The new selection may move to a longer branch, but it can only
		// be at least as long as the old one: score never regresses.
		if now := (LongestChain{}).Select(tree); len(now) < len(committed) {
			t.Fatalf("trial %d: selection shrank from %d to %d after appends", trial, len(committed), len(now))
		}
	}
}

// TestPropertyGHOSTFollowsHeaviestSubtree asserts GHOST's defining
// invariant on random trees: at every step of the selected chain, the
// chosen child carries maximal subtree work among its siblings.
func TestPropertyGHOSTFollowsHeaviestSubtree(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		src := prng.New(uint64(4000 + trial))
		tree, _ := randomTree(t, src, 70)
		chain := GHOST{}.Select(tree)
		for i := 1; i < len(chain); i++ {
			chosen := chain[i].ID
			for _, sib := range tree.Children(chain[i-1].ID) {
				if tree.SubtreeWork(sib) > tree.SubtreeWork(chosen) {
					t.Fatalf("trial %d: GHOST chose %s (work %d) over heavier sibling %s (work %d)",
						trial, chosen, tree.SubtreeWork(chosen), sib, tree.SubtreeWork(sib))
				}
			}
		}
	}
}
