package blocktree

// Selector is a selection function f ∈ F : BT → BC (Section 3.1): it picks
// the blockchain a read() returns from the tree. When bt = {b0}, every
// selector returns the chain {b0}. Selectors must be deterministic, so all
// provided selectors break ties lexicographically on block id — the
// tie-break the paper uses in its Figure 2 example.
//
// The selectors run on every mine and every read, so they lean on the
// structures Tree.Insert maintains incrementally (the sorted leaf set, the
// per-block chain work and subtree work): one lock acquisition, one scan,
// and a single chain materialization per call.
type Selector interface {
	// Select returns the chosen chain {b0}⌢f(bt).
	Select(t *Tree) Chain
	// Name identifies the selector in reports and tables.
	Name() string
}

// TipSelector is an optional Selector extension for selectors that can
// name their chosen chain's tip without materializing the chain. Miners
// select on every attempt but only extend the tip, so the fast path
// removes the dominant allocation of the mining loop.
type TipSelector interface {
	// SelectTip returns the tip block of the chain Select would return.
	SelectTip(t *Tree) Block
}

// SelectTip returns the tip of sel's chosen chain, using the selector's
// tip-only fast path when it has one and falling back to materializing
// the chain otherwise. Both paths choose the same block by construction.
func SelectTip(sel Selector, t *Tree) Block {
	if ts, ok := sel.(TipSelector); ok {
		return ts.SelectTip(t)
	}
	return sel.Select(t).Tip()
}

// LongestChain selects the chain of maximal length, breaking ties by
// lexicographically largest tip id. This is Bitcoin's abstract rule with the
// paper's Figure 2 tie-break.
type LongestChain struct{}

// Name implements Selector.
func (LongestChain) Name() string { return "longest" }

// Select implements Selector. A leaf's chain length is its height, so the
// scan compares the heights the tree already carries instead of
// materializing one chain per leaf.
func (LongestChain) Select(t *Tree) Chain {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chainToLocked(longestTipLocked(t))
}

// SelectTip implements TipSelector.
func (LongestChain) SelectTip(t *Tree) Block {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[longestTipLocked(t)].block
}

// longestTipLocked returns the slab index of the longest chain's tip (ties
// to the lexicographically largest leaf id). Caller holds the lock.
func longestTipLocked(t *Tree) int32 {
	bestLen, best := -1, int32(0)
	for _, leaf := range t.leaves {
		n := &t.nodes[leaf]
		if h := n.block.Height; h > bestLen || (h == bestLen && n.block.ID > t.nodes[best].block.ID) {
			bestLen, best = h, leaf
		}
	}
	return best
}

// HeaviestChain selects the chain whose cumulative work is maximal ("the
// blockchain which has required the most computational work", Section 5.1),
// breaking ties by lexicographically largest tip id.
type HeaviestChain struct{}

// Name implements Selector.
func (HeaviestChain) Name() string { return "heaviest" }

// Select implements Selector. The chain weight of a leaf is the root-path
// cumulative work Tree.Insert maintains, so the scan is O(#leaves) with a
// single chain materialization.
func (HeaviestChain) Select(t *Tree) Chain {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chainToLocked(heaviestTipLocked(t))
}

// SelectTip implements TipSelector.
func (HeaviestChain) SelectTip(t *Tree) Block {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[heaviestTipLocked(t)].block
}

// heaviestTipLocked returns the slab index of the heaviest chain's tip
// (ties to the lexicographically largest leaf id). Caller holds the lock.
func heaviestTipLocked(t *Tree) int32 {
	bestW, best := -1, int32(0)
	for _, leaf := range t.leaves {
		n := &t.nodes[leaf]
		if w := n.chainW; w > bestW || (w == bestW && n.block.ID > t.nodes[best].block.ID) {
			bestW, best = w, leaf
		}
	}
	return best
}

// GHOST selects a chain by the Greedy Heaviest-Observed SubTree rule
// (Sompolinsky & Zohar), the selection function the paper attributes to
// Ethereum (Section 5.2): walk from the root, at each fork descending into
// the child whose subtree carries the most cumulative work, ties broken by
// lexicographically largest id.
type GHOST struct{}

// Name implements Selector.
func (GHOST) Name() string { return "ghost" }

// Select implements Selector. The walk reads the sorted children slices
// and subtree weights in place under one read lock — no per-level copies.
func (GHOST) Select(t *Tree) Chain {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chainToLocked(ghostTipLocked(t))
}

// SelectTip implements TipSelector.
func (GHOST) SelectTip(t *Tree) Block {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[ghostTipLocked(t)].block
}

// ghostTipLocked runs the GHOST descent and returns the tip's slab index.
// Caller holds the lock.
func ghostTipLocked(t *Tree) int32 {
	cur := int32(0)
	for {
		kids := t.nodes[cur].children
		if len(kids) == 0 {
			return cur
		}
		best, bestW := kids[0], t.nodes[kids[0]].subtree
		for _, k := range kids[1:] {
			if w := t.nodes[k].subtree; w > bestW || (w == bestW && t.nodes[k].block.ID > t.nodes[best].block.ID) {
				best, bestW = k, w
			}
		}
		cur = best
	}
}

// SingleChain is the trivial projection BT ↦→ BC for trees that contain a
// unique chain by construction (Red Belly, Section 5.6; Hyperledger,
// Section 5.7). It selects the unique leaf's chain and falls back to the
// longest-chain rule if — contrary to the construction — a fork exists, so
// that misbehaving runs still produce a well-defined read.
type SingleChain struct{}

// Name implements Selector.
func (SingleChain) Name() string { return "single" }

// Select implements Selector.
func (SingleChain) Select(t *Tree) Chain {
	t.mu.RLock()
	if len(t.leaves) == 1 {
		c := t.chainToLocked(t.leaves[0])
		t.mu.RUnlock()
		return c
	}
	t.mu.RUnlock()
	return LongestChain{}.Select(t)
}

// SelectTip implements TipSelector.
func (SingleChain) SelectTip(t *Tree) Block {
	t.mu.RLock()
	if len(t.leaves) == 1 {
		b := t.nodes[t.leaves[0]].block
		t.mu.RUnlock()
		return b
	}
	t.mu.RUnlock()
	return LongestChain{}.SelectTip(t)
}
