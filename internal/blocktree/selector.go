package blocktree

// Selector is a selection function f ∈ F : BT → BC (Section 3.1): it picks
// the blockchain a read() returns from the tree. When bt = {b0}, every
// selector returns the chain {b0}. Selectors must be deterministic, so all
// provided selectors break ties lexicographically on block id — the
// tie-break the paper uses in its Figure 2 example.
type Selector interface {
	// Select returns the chosen chain {b0}⌢f(bt).
	Select(t *Tree) Chain
	// Name identifies the selector in reports and tables.
	Name() string
}

// LongestChain selects the chain of maximal length, breaking ties by
// lexicographically largest tip id. This is Bitcoin's abstract rule with the
// paper's Figure 2 tie-break.
type LongestChain struct{}

// Name implements Selector.
func (LongestChain) Name() string { return "longest" }

// Select implements Selector.
func (LongestChain) Select(t *Tree) Chain {
	best := Chain{Genesis()}
	bestLen, bestTip := -1, BlockID("")
	for _, leaf := range t.Leaves() {
		c, ok := t.ChainTo(leaf)
		if !ok {
			continue
		}
		if c.Length() > bestLen || (c.Length() == bestLen && leaf > bestTip) {
			best, bestLen, bestTip = c, c.Length(), leaf
		}
	}
	return best
}

// HeaviestChain selects the chain whose cumulative work is maximal ("the
// blockchain which has required the most computational work", Section 5.1),
// breaking ties by lexicographically largest tip id.
type HeaviestChain struct{}

// Name implements Selector.
func (HeaviestChain) Name() string { return "heaviest" }

// Select implements Selector.
func (HeaviestChain) Select(t *Tree) Chain {
	best := Chain{Genesis()}
	bestW, bestTip := -1, BlockID("")
	for _, leaf := range t.Leaves() {
		c, ok := t.ChainTo(leaf)
		if !ok {
			continue
		}
		if w := c.Weight(); w > bestW || (w == bestW && leaf > bestTip) {
			best, bestW, bestTip = c, w, leaf
		}
	}
	return best
}

// GHOST selects a chain by the Greedy Heaviest-Observed SubTree rule
// (Sompolinsky & Zohar), the selection function the paper attributes to
// Ethereum (Section 5.2): walk from the root, at each fork descending into
// the child whose subtree carries the most cumulative work, ties broken by
// lexicographically largest id.
type GHOST struct{}

// Name implements Selector.
func (GHOST) Name() string { return "ghost" }

// Select implements Selector.
func (GHOST) Select(t *Tree) Chain {
	cur := GenesisID
	for {
		kids := t.Children(cur)
		if len(kids) == 0 {
			break
		}
		best, bestW := kids[0], t.SubtreeWork(kids[0])
		for _, k := range kids[1:] {
			if w := t.SubtreeWork(k); w > bestW || (w == bestW && k > best) {
				best, bestW = k, w
			}
		}
		cur = best
	}
	c, _ := t.ChainTo(cur)
	return c
}

// SingleChain is the trivial projection BT ↦→ BC for trees that contain a
// unique chain by construction (Red Belly, Section 5.6; Hyperledger,
// Section 5.7). It selects the unique leaf's chain and falls back to the
// longest-chain rule if — contrary to the construction — a fork exists, so
// that misbehaving runs still produce a well-defined read.
type SingleChain struct{}

// Name implements Selector.
func (SingleChain) Name() string { return "single" }

// Select implements Selector.
func (SingleChain) Select(t *Tree) Chain {
	leaves := t.Leaves()
	if len(leaves) == 1 {
		c, _ := t.ChainTo(leaves[0])
		return c
	}
	return LongestChain{}.Select(t)
}
