package blocktree

import (
	"testing"
	"testing/quick"

	"blockadt/internal/prng"
)

// buildForked builds:
//
//	b0 ── a1 ── a2 ── a3        (length 3, work 3)
//	  └── h1 ── h2              (length 2, work 8)
//	        └── h2b             (sibling of h2, work 1)
func buildForked(t *testing.T) *Tree {
	t.Helper()
	tr := New()
	for _, b := range []Block{
		{ID: "a1", Parent: GenesisID, Work: 1},
		{ID: "a2", Parent: "a1", Work: 1},
		{ID: "a3", Parent: "a2", Work: 1},
		{ID: "h1", Parent: GenesisID, Work: 4},
		{ID: "h2", Parent: "h1", Work: 4},
		{ID: "h2b", Parent: "h1", Work: 1},
	} {
		if err := tr.Insert(b); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestLongestChain(t *testing.T) {
	tr := buildForked(t)
	c := LongestChain{}.Select(tr)
	if c.String() != "b0⌢a1⌢a2⌢a3" {
		t.Fatalf("longest = %s", c)
	}
}

func TestLongestChainTieBreak(t *testing.T) {
	tr := New()
	for _, b := range []Block{
		{ID: "x", Parent: GenesisID},
		{ID: "y", Parent: GenesisID},
	} {
		if err := tr.Insert(b); err != nil {
			t.Fatal(err)
		}
	}
	// Equal lengths: lexicographically largest tip wins (the paper's
	// Figure 2 convention).
	c := LongestChain{}.Select(tr)
	if c.Tip().ID != "y" {
		t.Fatalf("tie-break tip = %s, want y", c.Tip().ID)
	}
}

func TestHeaviestChain(t *testing.T) {
	tr := buildForked(t)
	c := HeaviestChain{}.Select(tr)
	if c.String() != "b0⌢h1⌢h2" {
		t.Fatalf("heaviest = %s (weight %d)", c, c.Weight())
	}
	if c.Weight() != 8 {
		t.Fatalf("weight = %d, want 8", c.Weight())
	}
}

func TestGHOST(t *testing.T) {
	tr := buildForked(t)
	// Subtree works: a-branch = 3; h-branch = 4+4+1 = 9 → descend h1;
	// under h1: h2 (4) vs h2b (1) → h2.
	c := GHOST{}.Select(tr)
	if c.String() != "b0⌢h1⌢h2" {
		t.Fatalf("ghost = %s", c)
	}
}

// TestGHOSTDiffersFromLongest reproduces the canonical GHOST motivation: a
// heavily-forked bushy subtree beats a longer skinny chain.
func TestGHOSTDiffersFromLongest(t *testing.T) {
	tr := New()
	// Skinny chain of length 4.
	for i, id := range []BlockID{"s1", "s2", "s3", "s4"} {
		parent := GenesisID
		if i > 0 {
			parent = BlockID("s" + string(rune('0'+i)))
		}
		if err := tr.Insert(Block{ID: id, Parent: parent, Work: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Bushy subtree: root u1 with 5 children (total work 6) but depth 2.
	if err := tr.Insert(Block{ID: "u1", Parent: GenesisID, Work: 1}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []BlockID{"u2a", "u2b", "u2c", "u2d", "u2e"} {
		if err := tr.Insert(Block{ID: id, Parent: "u1", Work: 1}); err != nil {
			t.Fatal(err)
		}
	}
	longest := LongestChain{}.Select(tr)
	ghost := GHOST{}.Select(tr)
	if longest.Tip().ID != "s4" {
		t.Fatalf("longest tip = %s, want s4", longest.Tip().ID)
	}
	if ghost[1].ID != "u1" {
		t.Fatalf("ghost must enter the bushy subtree, got %s", ghost)
	}
}

func TestSingleChain(t *testing.T) {
	tr := New()
	for i, id := range []BlockID{"c1", "c2", "c3"} {
		parent := GenesisID
		if i > 0 {
			parent = BlockID("c" + string(rune('0'+i)))
		}
		if err := tr.Insert(Block{ID: id, Parent: parent}); err != nil {
			t.Fatal(err)
		}
	}
	c := SingleChain{}.Select(tr)
	if c.String() != "b0⌢c1⌢c2⌢c3" {
		t.Fatalf("single = %s", c)
	}
	// On a forked tree it falls back to longest-chain.
	forked := buildForked(t)
	fb := SingleChain{}.Select(forked)
	lc := LongestChain{}.Select(forked)
	if fb.String() != lc.String() {
		t.Fatalf("fallback = %s, want %s", fb, lc)
	}
}

func TestSelectorsOnGenesisOnlyTree(t *testing.T) {
	tr := New()
	for _, s := range []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}} {
		c := s.Select(tr)
		if len(c) != 1 || c[0].ID != GenesisID {
			t.Fatalf("%s on {b0} = %s", s.Name(), c)
		}
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}} {
		if s.Name() == "" || names[s.Name()] {
			t.Fatalf("selector name empty or duplicated: %q", s.Name())
		}
		names[s.Name()] = true
	}
}

// TestProperty_SelectorsReturnValidRootedChains: on random trees every
// selector returns a genesis-rooted path that exists in the tree, and the
// longest selector's length dominates all leaves.
func TestProperty_SelectorsReturnValidRootedChains(t *testing.T) {
	selectors := []Selector{LongestChain{}, HeaviestChain{}, GHOST{}, SingleChain{}}
	f := func(seed uint64, n uint8) bool {
		src := prng.New(seed)
		tr := New()
		ids := []BlockID{GenesisID}
		for i := 0; i < int(n%40)+1; i++ {
			parent := ids[src.Intn(len(ids))]
			id := BlockID("q" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
			if tr.Insert(Block{ID: id, Parent: parent, Work: 1 + src.Intn(4)}) == nil {
				ids = append(ids, id)
			}
		}
		maxLeafLen := 0
		for _, leaf := range tr.Leaves() {
			c, _ := tr.ChainTo(leaf)
			if c.Length() > maxLeafLen {
				maxLeafLen = c.Length()
			}
		}
		for _, s := range selectors {
			c := s.Select(tr)
			if c[0].ID != GenesisID {
				return false
			}
			for i := 1; i < len(c); i++ {
				if c[i].Parent != c[i-1].ID || !tr.Has(c[i].ID) {
					return false
				}
			}
			if s.Name() == "longest" && c.Length() != maxLeafLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestProperty_GHOSTPrefixStability: adding work under the GHOST-selected
// tip never moves the selection off that chain's prefix — the stability
// property motivating Ethereum's use of GHOST.
func TestProperty_GHOSTPrefixStability(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := prng.New(seed)
		tr := New()
		ids := []BlockID{GenesisID}
		for i := 0; i < int(n%30)+1; i++ {
			parent := ids[src.Intn(len(ids))]
			id := BlockID("g" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
			if tr.Insert(Block{ID: id, Parent: parent, Work: 1}) == nil {
				ids = append(ids, id)
			}
		}
		before := GHOST{}.Select(tr)
		tip := before.Tip().ID
		if err := tr.Insert(Block{ID: "new-under-tip", Parent: tip, Work: 1}); err != nil {
			return false
		}
		after := GHOST{}.Select(tr)
		return after.IDs().HasPrefix(before.IDs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
