package blocktree

import (
	"fmt"

	"blockadt/internal/adt"
	"blockadt/internal/history"
)

// This file gives the sequential specification of the BT-ADT exactly as
// Definition 3.1 states it, as an instance of the generic transducer in
// internal/adt. The abstract state is (bt, f, P); the input alphabet is
// {append(b), read()}; the output alphabet is BC ∪ {true, false}.

// Input is a symbol of the BT-ADT input alphabet A.
type Input struct {
	// Append is true for append(Block) and false for read().
	Append bool
	// Block is the argument of append.
	Block Block
}

// AppendOp returns the input symbol append(b).
func AppendOp(b Block) Input { return Input{Append: true, Block: b} }

// ReadOp returns the input symbol read().
func ReadOp() Input { return Input{} }

// String renders the symbol with the paper's syntax.
func (in Input) String() string {
	if in.Append {
		return fmt.Sprintf("append(%s)", string(in.Block.ID))
	}
	return "read()"
}

// Output is a symbol of the BT-ADT output alphabet B = BC ∪ {true,false}.
type Output struct {
	// Chain is the blockchain returned by read().
	Chain history.Chain
	// OK is the boolean returned by append().
	OK bool
	// IsChain distinguishes the BC case from the boolean case.
	IsChain bool
}

// String renders the output symbol.
func (o Output) String() string {
	if o.IsChain {
		return o.Chain.String()
	}
	return fmt.Sprintf("%v", o.OK)
}

// Equal compares output symbols.
func (o Output) Equal(other Output) bool {
	if o.IsChain != other.IsChain {
		return false
	}
	if !o.IsChain {
		return o.OK == other.OK
	}
	if len(o.Chain) != len(other.Chain) {
		return false
	}
	for i := range o.Chain {
		if o.Chain[i] != other.Chain[i] {
			return false
		}
	}
	return true
}

// State is the abstract state (bt, f, P) of Definition 3.1. The selection
// function and predicate are parameters encoded in the state and never
// change over the computation.
type State struct {
	Tree *Tree
	F    Selector
	P    Predicate
}

// ADT constructs the BT-ADT transducer ⟨A, B, Z, ξ0, τ, δ⟩ with the given
// parameters f and P (Definition 3.1):
//
//	τ((bt,f,P), append(b)) = ({b0}⌢f(bt)⌢{b}, f, P) if b ∈ B′, else (bt,f,P)
//	τ((bt,f,P), read())    = (bt, f, P)
//	δ((bt,f,P), append(b)) = true if b ∈ B′, else false
//	δ((bt,f,P), read())    = {b0}⌢f(bt)   (= b0 on the initial state)
//
// Note append chains the new block to the tip of the currently selected
// chain {b0}⌢f(bt): the transition function, not the caller, decides the
// predecessor.
func ADT(f Selector, p Predicate) *adt.ADT[State, Input, Output] {
	return &adt.ADT[State, Input, Output]{
		Name:    "BT-ADT",
		Initial: State{Tree: New(), F: f, P: p},
		Tau: func(s State, in Input) State {
			if !in.Append || !s.P(in.Block) {
				return s
			}
			next := s.Tree.Clone()
			b := in.Block
			b.Parent = s.F.Select(next).Tip().ID
			if err := next.Insert(b); err != nil {
				// Duplicate ids leave the state unchanged, matching
				// the "otherwise" branch of τ.
				return s
			}
			return State{Tree: next, F: s.F, P: s.P}
		},
		Delta: func(s State, in Input) Output {
			if in.Append {
				return Output{OK: s.P(in.Block) && !s.Tree.Has(in.Block.ID)}
			}
			return Output{Chain: s.F.Select(s.Tree).IDs(), IsChain: true}
		},
	}
}

// SeqBlockTree is a mutable sequential BT-ADT object, the imperative
// counterpart of ADT used by single-process code and as each replica's local
// copy bt_i in the message-passing model (Section 4.2). It is not safe for
// concurrent use; the concurrent object lives in internal/core.
type SeqBlockTree struct {
	tree *Tree
	f    Selector
	p    Predicate
	// lastRead remembers the chain the previous ReadIDs returned, so the
	// next read only walks the blocks appended since. The slice is shared
	// with the recorded history and never mutated.
	lastRead history.Chain
}

// NewSeq returns a sequential BT-ADT with parameters f and P.
func NewSeq(f Selector, p Predicate) *SeqBlockTree {
	return &SeqBlockTree{tree: New(), f: f, p: p}
}

// NewSeqCap is NewSeq with a capacity hint: the underlying tree is
// pre-sized for about n blocks.
func NewSeqCap(f Selector, p Predicate, n int) *SeqBlockTree {
	return &SeqBlockTree{tree: NewCap(n), f: f, p: p}
}

// NewSeqFromTree wraps an existing tree as a sequential BT-ADT with
// selection function f and the trivial predicate — used by replay-based
// checkers that need to branch from intermediate states.
func NewSeqFromTree(t *Tree, f Selector) *SeqBlockTree {
	return &SeqBlockTree{tree: t, f: f, p: AcceptAll}
}

// Tip returns the tip block of the currently selected chain without
// recording a read or materializing the chain — the protocol-internal
// selection miners run on every attempt.
func (s *SeqBlockTree) Tip() Block { return SelectTip(s.f, s.tree) }

// Append implements the append(b) operation of Definition 3.1: if P(b)
// holds, b is chained to the tip of the selected chain and true is
// returned; otherwise the state is unchanged and false is returned.
func (s *SeqBlockTree) Append(b Block) bool {
	if !s.p(b) || s.tree.Has(b.ID) {
		return false
	}
	b.Parent = s.f.Select(s.tree).Tip().ID
	return s.tree.Insert(b) == nil
}

// Update implements the update_i(bg, b) operation of Section 4.2: it
// inserts b with the explicit predecessor bg (as received from the network)
// rather than the locally selected tip. It returns false when P(b) fails or
// bg is unknown.
func (s *SeqBlockTree) Update(parent BlockID, b Block) bool {
	if !s.p(b) || s.tree.Has(b.ID) {
		return false
	}
	b.Parent = parent
	return s.tree.Insert(b) == nil
}

// Read implements read(): it returns {b0}⌢f(bt).
func (s *SeqBlockTree) Read() Chain { return s.f.Select(s.tree) }

// ReadIDs is read() returning only the block ids of {b0}⌢f(bt) — the view
// a read response is recorded with. Callers that drive reads for the
// history and discard the chain use it to skip the []Block materialization.
func (s *SeqBlockTree) ReadIDs() history.Chain {
	ids, ok := s.tree.ChainIDsFrom(SelectTip(s.f, s.tree).ID, s.lastRead)
	if !ok {
		return history.Chain{GenesisID}
	}
	s.lastRead = ids
	return ids
}

// Tree exposes the underlying tree for inspection.
func (s *SeqBlockTree) Tree() *Tree { return s.tree }

// Selector returns the parameter f.
func (s *SeqBlockTree) Selector() Selector { return s.f }
