package blocktree

import (
	"strings"
	"testing"

	"blockadt/internal/adt"
	"blockadt/internal/history"
)

// TestFig1TransitionPath reproduces Figure 1: a possible path of the
// transition system defined by the BT-ADT — append(b1)/true when b1 ∈ B′,
// append(b3)/false when b3 ∉ B′, append(b2)/true, with reads returning
// b0⌢b1 and then b0⌢b1⌢b2.
func TestFig1TransitionPath(t *testing.T) {
	valid := func(b Block) bool { return b.ID != "b3" } // b3 ∉ B′
	bt := ADT(LongestChain{}, valid)

	seq := []adt.Operation[Input, Output]{
		adt.Out[Input, Output](AppendOp(Block{ID: "b1"}), Output{OK: true}),
		adt.Out[Input, Output](AppendOp(Block{ID: "b3"}), Output{OK: false}),
		adt.Out[Input, Output](ReadOp(), Output{IsChain: true, Chain: history.Chain{"b0", "b1"}}),
		adt.Out[Input, Output](AppendOp(Block{ID: "b2"}), Output{OK: true}),
		adt.Out[Input, Output](AppendOp(Block{ID: "b3"}), Output{OK: false}),
		adt.Out[Input, Output](ReadOp(), Output{IsChain: true, Chain: history.Chain{"b0", "b1", "b2"}}),
	}
	if err := bt.Recognizes(seq, Output.Equal); err != nil {
		t.Fatalf("Figure 1 path not in L(BT-ADT): %v", err)
	}

	// A wrong read output must leave the language.
	bad := []adt.Operation[Input, Output]{
		adt.Out[Input, Output](AppendOp(Block{ID: "b1"}), Output{OK: true}),
		adt.Out[Input, Output](ReadOp(), Output{IsChain: true, Chain: history.Chain{"b0"}}),
	}
	if err := bt.Recognizes(bad, Output.Equal); err == nil {
		t.Fatal("stale read accepted into L(BT-ADT)")
	}
}

func TestADTInitialReadReturnsGenesis(t *testing.T) {
	bt := ADT(LongestChain{}, AcceptAll)
	tr := bt.Replay([]adt.Operation[Input, Output]{adt.In[Input, Output](ReadOp())})
	out := tr.Steps[0].Output
	if !out.IsChain || out.Chain.String() != "b0" {
		t.Fatalf("initial read = %v, want b0 (δ((bt0,f,P), read()) = b0)", out)
	}
}

func TestADTAppendChainsToSelectedTip(t *testing.T) {
	bt := ADT(LongestChain{}, AcceptAll)
	tr := bt.Replay([]adt.Operation[Input, Output]{
		adt.In[Input, Output](AppendOp(Block{ID: "x"})),
		adt.In[Input, Output](AppendOp(Block{ID: "y"})),
		adt.In[Input, Output](ReadOp()),
	})
	out := tr.Final().Tree
	y, _ := out.Get("y")
	if y.Parent != "x" {
		t.Fatalf("y's parent = %s, want x (append goes to tip of f(bt))", y.Parent)
	}
}

func TestADTRejectedAppendLeavesStateUnchanged(t *testing.T) {
	rejectAll := func(Block) bool { return false }
	bt := ADT(LongestChain{}, rejectAll)
	tr := bt.Replay([]adt.Operation[Input, Output]{
		adt.In[Input, Output](AppendOp(Block{ID: "x"})),
	})
	if tr.Final().Tree.Size() != 1 {
		t.Fatal("rejected append changed the state")
	}
	if tr.Steps[0].Output.OK {
		t.Fatal("rejected append returned true")
	}
}

func TestADTTauIsPersistent(t *testing.T) {
	// τ must return fresh states: the Before state of a step must not
	// observe the After state's insertion.
	bt := ADT(LongestChain{}, AcceptAll)
	tr := bt.Replay([]adt.Operation[Input, Output]{
		adt.In[Input, Output](AppendOp(Block{ID: "x"})),
	})
	if tr.Steps[0].Before.Tree.Has("x") {
		t.Fatal("τ mutated the predecessor state")
	}
	if !tr.Steps[0].After.Tree.Has("x") {
		t.Fatal("τ did not apply the append")
	}
}

func TestSeqBlockTreeAppendRead(t *testing.T) {
	s := NewSeq(LongestChain{}, AcceptAll)
	if got := s.Read().String(); got != "b0" {
		t.Fatalf("initial read = %s", got)
	}
	if !s.Append(Block{ID: "a"}) {
		t.Fatal("append a failed")
	}
	if !s.Append(Block{ID: "b"}) {
		t.Fatal("append b failed")
	}
	if got := s.Read().String(); got != "b0⌢a⌢b" {
		t.Fatalf("read = %s", got)
	}
}

func TestSeqBlockTreeAppendInvalid(t *testing.T) {
	s := NewSeq(LongestChain{}, func(b Block) bool { return !strings.HasPrefix(string(b.ID), "bad") })
	if s.Append(Block{ID: "bad1"}) {
		t.Fatal("invalid block accepted")
	}
	if got := s.Read().String(); got != "b0" {
		t.Fatalf("read after rejected append = %s", got)
	}
}

func TestSeqBlockTreeDuplicateAppend(t *testing.T) {
	s := NewSeq(LongestChain{}, AcceptAll)
	if !s.Append(Block{ID: "a"}) {
		t.Fatal("first append failed")
	}
	if s.Append(Block{ID: "a"}) {
		t.Fatal("duplicate append accepted")
	}
}

func TestSeqBlockTreeUpdateExplicitParent(t *testing.T) {
	s := NewSeq(LongestChain{}, AcceptAll)
	if !s.Append(Block{ID: "a"}) || !s.Append(Block{ID: "b"}) {
		t.Fatal("setup failed")
	}
	// Update attaches to the named predecessor, forking below the tip.
	if !s.Update("a", Block{ID: "fork"}) {
		t.Fatal("update failed")
	}
	blk, _ := s.Tree().Get("fork")
	if blk.Parent != "a" {
		t.Fatalf("fork parent = %s, want a", blk.Parent)
	}
	if s.Update("ghost-parent", Block{ID: "orphan"}) {
		t.Fatal("update with unknown parent accepted")
	}
}

func TestScoreFunctions(t *testing.T) {
	if LengthScore(nil) != 0 {
		t.Fatal("empty chain score")
	}
	if LengthScore(history.Chain{"b0"}) != 0 {
		t.Fatal("genesis-only score must be s0 = 0")
	}
	if LengthScore(history.Chain{"b0", "1", "2"}) != 2 {
		t.Fatal("length score")
	}
	a := history.Chain{"b0", "1", "2", "3"}
	b := history.Chain{"b0", "1", "x"}
	if MCPS(LengthScore, a, b) != 1 {
		t.Fatalf("mcps = %d, want 1", MCPS(LengthScore, a, b))
	}
}

func TestPredicates(t *testing.T) {
	if !AcceptAll(Block{ID: "anything"}) {
		t.Fatal("AcceptAll rejected a block")
	}
	if RequireToken(Block{ID: "x"}) {
		t.Fatal("RequireToken accepted an unvalidated block")
	}
	if !RequireToken(Block{ID: "x", Token: 7}) {
		t.Fatal("RequireToken rejected a validated block")
	}
}

func TestChainHelpers(t *testing.T) {
	g := Genesis()
	c := Chain{g, {ID: "a", Parent: GenesisID, Height: 1, Work: 2}}
	if c.Tip().ID != "a" {
		t.Fatal("tip")
	}
	if c.Weight() != 2 {
		t.Fatal("weight")
	}
	ids := c.IDs()
	if len(ids) != 2 || ids[1] != "a" {
		t.Fatalf("ids = %v", ids)
	}
}
