package blocktree

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Tree is the BlockTree bt = (V_bt, E_bt): an append-only directed rooted
// tree whose edges point backward to the genesis block. Tree is safe for
// concurrent use.
type Tree struct {
	mu       sync.RWMutex
	blocks   map[BlockID]Block
	children map[BlockID][]BlockID
	// subtreeWork caches cumulative work of each subtree for GHOST; it is
	// updated incrementally on insert.
	subtreeWork map[BlockID]int
	count       int
}

// Errors returned by Tree operations.
var (
	// ErrUnknownParent reports an attempt to attach a block to an absent
	// predecessor.
	ErrUnknownParent = errors.New("blocktree: unknown parent block")
	// ErrDuplicate reports an attempt to insert an already-present block.
	ErrDuplicate = errors.New("blocktree: duplicate block")
	// ErrSelfParent reports a block naming itself as predecessor.
	ErrSelfParent = errors.New("blocktree: block cannot be its own parent")
)

// New returns a tree containing only the genesis block b0.
func New() *Tree {
	t := &Tree{
		blocks:      map[BlockID]Block{GenesisID: Genesis()},
		children:    map[BlockID][]BlockID{},
		subtreeWork: map[BlockID]int{GenesisID: 0},
		count:       1,
	}
	return t
}

// Insert attaches b to its parent. The block's Height is derived from the
// parent regardless of the incoming value. Insert never removes or mutates
// existing vertices: the BlockTree is append-only.
func (t *Tree) Insert(b Block) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b.ID == b.Parent {
		return ErrSelfParent
	}
	if _, dup := t.blocks[b.ID]; dup {
		return ErrDuplicate
	}
	parent, ok := t.blocks[b.Parent]
	if !ok {
		return fmt.Errorf("%w: %s for block %s", ErrUnknownParent, string(b.Parent), string(b.ID))
	}
	b.Height = parent.Height + 1
	t.blocks[b.ID] = b
	t.children[b.Parent] = append(t.children[b.Parent], b.ID)
	// Propagate the new block's work up to the root for GHOST.
	w := b.work()
	t.subtreeWork[b.ID] = w
	for p := b.Parent; ; {
		t.subtreeWork[p] += w
		blk := t.blocks[p]
		if blk.ID == GenesisID {
			break
		}
		p = blk.Parent
	}
	t.count++
	return nil
}

// Has reports whether the tree contains the block.
func (t *Tree) Has(id BlockID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.blocks[id]
	return ok
}

// Get returns the block with the given id.
func (t *Tree) Get(id BlockID) (Block, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b, ok := t.blocks[id]
	return b, ok
}

// Size returns the number of blocks including genesis.
func (t *Tree) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Children returns the ids of the blocks chained to id, sorted
// lexicographically (a deterministic order the selectors rely on).
func (t *Tree) Children(id BlockID) []BlockID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sortedChildrenLocked(id)
}

func (t *Tree) sortedChildrenLocked(id BlockID) []BlockID {
	kids := t.children[id]
	out := make([]BlockID, len(kids))
	copy(out, kids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChainTo returns the path {b0}⌢…⌢{id}.
func (t *Tree) ChainTo(id BlockID) (Chain, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chainToLocked(id)
}

func (t *Tree) chainToLocked(id BlockID) (Chain, bool) {
	b, ok := t.blocks[id]
	if !ok {
		return nil, false
	}
	chain := make(Chain, b.Height+1)
	for i := b.Height; ; i-- {
		chain[i] = b
		if b.ID == GenesisID {
			break
		}
		b = t.blocks[b.Parent]
	}
	return chain, true
}

// Leaves returns the ids of the blocks with no children, sorted
// lexicographically.
func (t *Tree) Leaves() []BlockID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []BlockID
	for id := range t.blocks {
		if len(t.children[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForkCount returns, for each block with more than one child, the number of
// branches departing from it. It is the per-block fork census used by the
// k-Fork Coherence experiments (Definition 3.9).
func (t *Tree) ForkCount() map[BlockID]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := map[BlockID]int{}
	for id, kids := range t.children {
		if len(kids) > 1 {
			out[id] = len(kids)
		}
	}
	return out
}

// MaxFanout returns the maximum number of children of any block: the
// realized fork bound of the tree.
func (t *Tree) MaxFanout() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	maxKids := 0
	for _, kids := range t.children {
		if len(kids) > maxKids {
			maxKids = len(kids)
		}
	}
	return maxKids
}

// SubtreeWork returns the cumulative work of the subtree rooted at id
// (excluding genesis's own zero work), used by the GHOST selector.
func (t *Tree) SubtreeWork(id BlockID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.subtreeWork[id]
}

// Clone returns a deep, independent copy of the tree.
func (t *Tree) Clone() *Tree {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &Tree{
		blocks:      make(map[BlockID]Block, len(t.blocks)),
		children:    make(map[BlockID][]BlockID, len(t.children)),
		subtreeWork: make(map[BlockID]int, len(t.subtreeWork)),
		count:       t.count,
	}
	for id, b := range t.blocks {
		c.blocks[id] = b
	}
	for id, kids := range t.children {
		cp := make([]BlockID, len(kids))
		copy(cp, kids)
		c.children[id] = cp
	}
	for id, w := range t.subtreeWork {
		c.subtreeWork[id] = w
	}
	return c
}
