package blocktree

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"blockadt/internal/history"
)

// node is the slab entry for one block. Blocks are stored in a flat slice
// in insertion order and refer to each other by index: parent walks and
// subtree-work propagation touch no hash table, and the per-block caches
// (root-path work, subtree work, children) live next to the block instead
// of in separate string-keyed maps.
type node struct {
	block  Block
	parent int32 // slab index of the parent; -1 for genesis
	// children holds the slab indexes of the blocks chained to this one,
	// sorted by block id so selectors walk them in deterministic order.
	children []int32
	// subtree caches the cumulative work of the subtree rooted here (for
	// GHOST); updated incrementally on insert.
	subtree int
	// chainW caches the cumulative work of the root path ending here (the
	// heaviest-chain score of ChainTo), set once on insert.
	chainW int
}

// Tree is the BlockTree bt = (V_bt, E_bt): an append-only directed rooted
// tree whose edges point backward to the genesis block. Tree is safe for
// concurrent use.
//
// The tree is the read hot path of every simulator (selectors run on every
// mine and read), so the structures the selectors need are maintained
// incrementally on Insert instead of being rebuilt per read: children
// slices stay sorted, the leaf set and fork census are updated in place,
// and each block's cumulative chain work and subtree work are carried
// forward — Insert pays O(k + depth), reads pay no sorting at all. The
// only hash lookups are the id→index translations at the API boundary;
// everything below it runs on slab indexes.
type Tree struct {
	mu    sync.RWMutex
	nodes []node
	index map[BlockID]int32
	// leaves is the set of blocks with no children, sorted by block id,
	// maintained incrementally: append-only trees only ever grow a leaf
	// set by removing the parent and inserting the new block.
	leaves []int32
	// forkCount counts blocks with more than one child.
	forkCount int
	maxFanout int
	maxHeight int
}

// Errors returned by Tree operations.
var (
	// ErrUnknownParent reports an attempt to attach a block to an absent
	// predecessor.
	ErrUnknownParent = errors.New("blocktree: unknown parent block")
	// ErrDuplicate reports an attempt to insert an already-present block.
	ErrDuplicate = errors.New("blocktree: duplicate block")
	// ErrSelfParent reports a block naming itself as predecessor.
	ErrSelfParent = errors.New("blocktree: block cannot be its own parent")
)

// New returns a tree containing only the genesis block b0.
func New() *Tree { return NewCap(0) }

// NewCap returns a tree containing only the genesis block, with the block
// slab and id index pre-sized for about n blocks so simulators with a known
// target chain length avoid incremental growth on the insert path.
func NewCap(n int) *Tree {
	if n < 1 {
		n = 1
	}
	t := &Tree{
		nodes:  make([]node, 1, n+1),
		index:  make(map[BlockID]int32, n+1),
		leaves: []int32{0},
	}
	t.nodes[0] = node{block: Genesis(), parent: -1}
	t.index[GenesisID] = 0
	return t
}

// Insert attaches b to its parent. The block's Height is derived from the
// parent regardless of the incoming value. Insert never removes or mutates
// existing vertices: the BlockTree is append-only.
func (t *Tree) Insert(b Block) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b.ID == b.Parent {
		return ErrSelfParent
	}
	if _, dup := t.index[b.ID]; dup {
		return ErrDuplicate
	}
	pi, ok := t.index[b.Parent]
	if !ok {
		return fmt.Errorf("%w: %s for block %s", ErrUnknownParent, string(b.Parent), string(b.ID))
	}
	b.Height = t.nodes[pi].block.Height + 1
	w := b.work()
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		block:   b,
		parent:  pi,
		subtree: w,
		chainW:  t.nodes[pi].chainW + w,
	})
	t.index[b.ID] = idx
	if b.Height > t.maxHeight {
		t.maxHeight = b.Height
	}

	// Keep the children slice sorted at insert time so reads never sort:
	// selectors walk them in deterministic order directly.
	kids := t.nodes[pi].children
	pos := sort.Search(len(kids), func(i int) bool { return t.nodes[kids[i]].block.ID >= b.ID })
	kids = append(kids, 0)
	copy(kids[pos+1:], kids[pos:])
	kids[pos] = idx
	t.nodes[pi].children = kids
	if len(kids) == 2 {
		t.forkCount++
	}
	if len(kids) > t.maxFanout {
		t.maxFanout = len(kids)
	}

	// Leaf set update: the parent (if it was a leaf) stops being one, the
	// new block becomes one. Both edits keep the slice sorted.
	if len(kids) == 1 {
		t.removeLeaf(pi)
	}
	t.addLeaf(idx)

	// Propagate the new block's work up to the root for GHOST — an
	// index-chasing walk with no hashing.
	for p := pi; p >= 0; p = t.nodes[p].parent {
		t.nodes[p].subtree += w
	}
	return nil
}

// addLeaf inserts idx into the leaf slice, keeping it sorted by block id.
func (t *Tree) addLeaf(idx int32) {
	id := t.nodes[idx].block.ID
	pos := sort.Search(len(t.leaves), func(i int) bool { return t.nodes[t.leaves[i]].block.ID >= id })
	t.leaves = append(t.leaves, 0)
	copy(t.leaves[pos+1:], t.leaves[pos:])
	t.leaves[pos] = idx
}

// removeLeaf deletes idx from the sorted leaf slice if present.
func (t *Tree) removeLeaf(idx int32) {
	id := t.nodes[idx].block.ID
	pos := sort.Search(len(t.leaves), func(i int) bool { return t.nodes[t.leaves[i]].block.ID >= id })
	if pos < len(t.leaves) && t.leaves[pos] == idx {
		copy(t.leaves[pos:], t.leaves[pos+1:])
		t.leaves = t.leaves[:len(t.leaves)-1]
	}
}

// Has reports whether the tree contains the block.
func (t *Tree) Has(id BlockID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.index[id]
	return ok
}

// Get returns the block with the given id.
func (t *Tree) Get(id BlockID) (Block, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return Block{}, false
	}
	return t.nodes[i].block, true
}

// Size returns the number of blocks including genesis.
func (t *Tree) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// Children returns the ids of the blocks chained to id, sorted
// lexicographically (a deterministic order the selectors rely on). The
// slice is sorted at insert time, so this is a plain copy.
func (t *Tree) Children(id BlockID) []BlockID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return nil
	}
	kids := t.nodes[i].children
	out := make([]BlockID, len(kids))
	for j, k := range kids {
		out[j] = t.nodes[k].block.ID
	}
	return out
}

// ChainTo returns the path {b0}⌢…⌢{id}.
func (t *Tree) ChainTo(id BlockID) (Chain, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return nil, false
	}
	return t.chainToLocked(i), true
}

// chainToLocked materializes the root path ending at slab index idx.
// Caller holds the lock.
func (t *Tree) chainToLocked(idx int32) Chain {
	chain := make(Chain, t.nodes[idx].block.Height+1)
	for i := idx; i >= 0; i = t.nodes[i].parent {
		chain[t.nodes[i].block.Height] = t.nodes[i].block
	}
	return chain
}

// ChainIDsTo returns the ids of the path {b0}⌢…⌢{id} without copying the
// blocks themselves — the id-only view read responses are recorded with.
// For the provided selectors, the selected chain is exactly the root path
// of the selected tip, so ChainIDsTo(SelectTip(f, t).ID) equals
// f.Select(t).IDs() at a fraction of the copying.
func (t *Tree) ChainIDsTo(id BlockID) (history.Chain, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return nil, false
	}
	out := make(history.Chain, t.nodes[i].block.Height+1)
	for ; i >= 0; i = t.nodes[i].parent {
		out[t.nodes[i].block.Height] = t.nodes[i].block.ID
	}
	return out, true
}

// ChainIDsFrom is ChainIDsTo accelerated by a previously returned chain of
// the same tree: the walk stops as soon as it reaches a height where prev
// names the same block — the tree is append-only, so a block's root path
// never changes and the rest of prev can be copied instead of re-walked.
// Periodic readers advance by a few blocks between reads, which turns the
// O(height) parent walk into O(lag). prev is only read, never retained.
func (t *Tree) ChainIDsFrom(id BlockID, prev history.Chain) (history.Chain, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return nil, false
	}
	out := make(history.Chain, t.nodes[i].block.Height+1)
	for ; i >= 0; i = t.nodes[i].parent {
		h := t.nodes[i].block.Height
		if h < len(prev) && prev[h] == t.nodes[i].block.ID {
			copy(out[:h+1], prev[:h+1])
			break
		}
		out[h] = t.nodes[i].block.ID
	}
	return out, true
}

// Leaves returns the ids of the blocks with no children, sorted
// lexicographically. The set is maintained incrementally on Insert, so
// this is a plain copy.
func (t *Tree) Leaves() []BlockID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]BlockID, len(t.leaves))
	for i, idx := range t.leaves {
		out[i] = t.nodes[idx].block.ID
	}
	return out
}

// ForkCount returns, for each block with more than one child, the number of
// branches departing from it. It is the per-block fork census used by the
// k-Fork Coherence experiments (Definition 3.9). It is assembled on demand
// — the hot paths use Forks, which is a counter.
func (t *Tree) ForkCount() map[BlockID]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[BlockID]int, t.forkCount)
	for i := range t.nodes {
		if n := len(t.nodes[i].children); n > 1 {
			out[t.nodes[i].block.ID] = n
		}
	}
	return out
}

// Forks returns the number of blocks with more than one child — the size
// of the ForkCount census without materializing it.
func (t *Tree) Forks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.forkCount
}

// Height returns the maximal block height — the length (excluding genesis)
// of the longest chain, maintained on Insert so progress checks need not
// materialize a chain.
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.maxHeight
}

// MaxFanout returns the maximum number of children of any block: the
// realized fork bound of the tree.
func (t *Tree) MaxFanout() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.maxFanout
}

// SubtreeWork returns the cumulative work of the subtree rooted at id
// (excluding genesis's own zero work), used by the GHOST selector.
func (t *Tree) SubtreeWork(id BlockID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return 0
	}
	return t.nodes[i].subtree
}

// ChainWork returns the cumulative work of the root path ending at id —
// the heaviest-chain score of ChainTo(id) — maintained on Insert.
func (t *Tree) ChainWork(id BlockID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.index[id]
	if !ok {
		return 0
	}
	return t.nodes[i].chainW
}

// Clone returns a deep, independent copy of the tree.
func (t *Tree) Clone() *Tree {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &Tree{
		nodes:     make([]node, len(t.nodes)),
		index:     make(map[BlockID]int32, len(t.index)),
		leaves:    make([]int32, len(t.leaves)),
		forkCount: t.forkCount,
		maxFanout: t.maxFanout,
		maxHeight: t.maxHeight,
	}
	copy(c.nodes, t.nodes)
	for i := range c.nodes {
		if kids := c.nodes[i].children; kids != nil {
			cp := make([]int32, len(kids))
			copy(cp, kids)
			c.nodes[i].children = cp
		}
	}
	for id, i := range t.index {
		c.index[id] = i
	}
	copy(c.leaves, t.leaves)
	return c
}
