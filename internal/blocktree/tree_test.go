package blocktree

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"blockadt/internal/prng"
)

func mustInsert(t *testing.T, tr *Tree, id, parent BlockID, work int) {
	t.Helper()
	if err := tr.Insert(Block{ID: id, Parent: parent, Work: work}); err != nil {
		t.Fatalf("insert %s under %s: %v", id, parent, err)
	}
}

func TestNewTreeHasGenesis(t *testing.T) {
	tr := New()
	if !tr.Has(GenesisID) {
		t.Fatal("new tree missing genesis")
	}
	if tr.Size() != 1 {
		t.Fatalf("size = %d, want 1", tr.Size())
	}
	g, _ := tr.Get(GenesisID)
	if g.Height != 0 {
		t.Fatalf("genesis height = %d", g.Height)
	}
}

func TestInsertDerivesHeight(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "a", GenesisID, 1)
	mustInsert(t, tr, "b", "a", 1)
	b, _ := tr.Get("b")
	if b.Height != 2 {
		t.Fatalf("height = %d, want 2", b.Height)
	}
	// Incoming Height is ignored.
	if err := tr.Insert(Block{ID: "c", Parent: "b", Height: 99}); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.Get("c")
	if c.Height != 3 {
		t.Fatalf("height = %d, want 3", c.Height)
	}
}

func TestInsertErrors(t *testing.T) {
	tr := New()
	if err := tr.Insert(Block{ID: "x", Parent: "nope"}); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("err = %v, want ErrUnknownParent", err)
	}
	mustInsert(t, tr, "x", GenesisID, 1)
	if err := tr.Insert(Block{ID: "x", Parent: GenesisID}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if err := tr.Insert(Block{ID: "y", Parent: "y"}); !errors.Is(err, ErrSelfParent) {
		t.Fatalf("err = %v, want ErrSelfParent", err)
	}
}

func TestChainTo(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "a", GenesisID, 1)
	mustInsert(t, tr, "b", "a", 1)
	c, ok := tr.ChainTo("b")
	if !ok {
		t.Fatal("chain not found")
	}
	if c.String() != "b0⌢a⌢b" {
		t.Fatalf("chain = %s", c)
	}
	if c.Length() != 2 {
		t.Fatalf("length = %d", c.Length())
	}
	if _, ok := tr.ChainTo("zz"); ok {
		t.Fatal("chain to unknown block")
	}
	g, _ := tr.ChainTo(GenesisID)
	if g.String() != "b0" || g.Length() != 0 {
		t.Fatalf("genesis chain = %s len %d", g, g.Length())
	}
}

func TestLeavesAndForks(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "a", GenesisID, 1)
	mustInsert(t, tr, "b", GenesisID, 1)
	mustInsert(t, tr, "c", "a", 1)
	leaves := tr.Leaves()
	if len(leaves) != 2 || leaves[0] != "b" || leaves[1] != "c" {
		t.Fatalf("leaves = %v", leaves)
	}
	forks := tr.ForkCount()
	if forks[GenesisID] != 2 || len(forks) != 1 {
		t.Fatalf("forks = %v", forks)
	}
	if tr.MaxFanout() != 2 {
		t.Fatalf("max fanout = %d", tr.MaxFanout())
	}
}

func TestSubtreeWork(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "a", GenesisID, 2)
	mustInsert(t, tr, "b", GenesisID, 1)
	mustInsert(t, tr, "c", "a", 3)
	if w := tr.SubtreeWork("a"); w != 5 {
		t.Fatalf("subtree(a) = %d, want 5", w)
	}
	if w := tr.SubtreeWork("b"); w != 1 {
		t.Fatalf("subtree(b) = %d, want 1", w)
	}
	if w := tr.SubtreeWork(GenesisID); w != 6 {
		t.Fatalf("subtree(b0) = %d, want 6", w)
	}
}

func TestZeroWorkCountsAsOne(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "a", GenesisID, 0)
	c, _ := tr.ChainTo("a")
	if c.Weight() != 1 {
		t.Fatalf("weight = %d, want 1", c.Weight())
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "a", GenesisID, 1)
	cp := tr.Clone()
	mustInsert(t, tr, "b", "a", 1)
	if cp.Has("b") {
		t.Fatal("clone sees later insert")
	}
	if cp.Size() != 2 {
		t.Fatalf("clone size = %d", cp.Size())
	}
	mustInsert(t, cp, "z", "a", 1)
	if tr.Has("z") {
		t.Fatal("original sees clone insert")
	}
}

func TestConcurrentInsertsAndReads(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := GenesisID
			for i := 0; i < 50; i++ {
				id := BlockID(string(rune('a'+w)) + string(rune('0'+i%10)) + string(rune('A'+i/10)))
				if err := tr.Insert(Block{ID: id, Parent: parent}); err == nil {
					parent = id
				}
				tr.Leaves()
				tr.MaxFanout()
			}
		}(w)
	}
	wg.Wait()
	if tr.Size() != 1+4*50 {
		t.Fatalf("size = %d, want %d", tr.Size(), 1+4*50)
	}
}

// TestProperty_AppendOnlyInvariants: random insertion workloads preserve
// the structural invariants: height = parent height + 1, root subtree work
// equals total work, and every chain ends at genesis.
func TestProperty_AppendOnlyInvariants(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		src := prng.New(seed)
		tr := New()
		ids := []BlockID{GenesisID}
		total := 0
		for i := 0; i < int(nOps); i++ {
			parent := ids[src.Intn(len(ids))]
			id := BlockID("n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
			w := 1 + src.Intn(3)
			if err := tr.Insert(Block{ID: id, Parent: parent, Work: w}); err != nil {
				continue
			}
			total += w
			ids = append(ids, id)
			pb, _ := tr.Get(parent)
			nb, _ := tr.Get(id)
			if nb.Height != pb.Height+1 {
				return false
			}
		}
		if tr.SubtreeWork(GenesisID) != total {
			return false
		}
		for _, leaf := range tr.Leaves() {
			c, ok := tr.ChainTo(leaf)
			if !ok || c[0].ID != GenesisID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
