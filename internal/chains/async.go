package chains

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/netsim"
)

// This file provides the executable counterparts of the open issues the
// paper lists at the end of Section 4.2 ("TBC"): the solvability of
// Eventual Prefix under asynchrony and under block intervals shorter than
// the message-delay bound. The paper states the conjectures:
//
//	(ii)  Eventual Prefix is impossible in an asynchronous system;
//	(iii) Eventual Prefix is impossible if the interval between the
//	      generation of two successive blocks is less than the upper
//	      bound on the message delay.
//
// RunBitcoinAsync exhibits finite-run witnesses for both: with mining much
// faster than delivery, replicas build on stale tips and the recorded
// histories show divergence that outlives any grace window; with mining
// much slower than the (bounded) delay, the same protocol converges.

// AsyncParams extends Params with the asynchronous link bound.
type AsyncParams struct {
	Params
	// MaxDelay is the common-case asynchronous delay bound; stragglers
	// exceed it ×10 with TailProb.
	MaxDelay int64
	// TailProb is the probability of a 10×MaxDelay straggler.
	TailProb float64
}

// RunBitcoinAsync runs the Bitcoin simulator over asynchronous links.
func RunBitcoinAsync(p AsyncParams) Result {
	links := netsim.Asynchronous{MaxDelay: p.MaxDelay, TailProb: p.TailProb}
	return runPoWLinks("Bitcoin/async", "R(BT-ADT_EC, Θ_P) — async regime", blocktree.HeaviestChain{}, links, p.Params)
}
