package chains

import (
	"blockadt/internal/blocktree"
)

// This file keeps the support set of the generic PoW driver — the
// executable counterpart of the open issues the paper lists at the end
// of Section 4.2 ("TBC"): the solvability of Eventual Prefix under
// asynchrony and under block intervals shorter than the message-delay
// bound. The paper states the conjectures:
//
//	(ii)  Eventual Prefix is impossible in an asynchronous system;
//	(iii) Eventual Prefix is impossible if the interval between the
//	      generation of two successive blocks is less than the upper
//	      bound on the message delay.
//
// Executing a PoW system under AsyncLinks exhibits finite-run witnesses
// for both: with mining much faster than delivery, replicas build on
// stale tips and the recorded histories show divergence that outlives
// any grace window; with mining much slower than the (bounded) delay,
// the same protocol converges. The link plans themselves live in
// execute.go; composing one with a system outside this support set is
// an *UnknownSystemError, not a panic — the façade surfaces it as a
// typed unknown-name error.

// powSelectors maps each PoW system — the permissionless protocols whose
// mining loop is link-model agnostic — to its selection function. This is
// the support set of every non-synchronous link regime and non-complete
// topology: the committee systems assume synchronous rounds, so only the
// PoW systems run under async, psync, lossy, partition and jitter links.
// (GHOST's pre-GST oscillation, which used to exclude Ethereum from
// psync, is gone now that WeaklySynchronous honors the DLS "delivered by
// GST+δ" bound: no stale pre-GST straggler can arrive arbitrarily late
// and flip the subtree weights after stabilization.)
var powSelectors = map[string]blocktree.Selector{
	"Bitcoin":  blocktree.HeaviestChain{},
	"Ethereum": blocktree.GHOST{},
}

// SupportsPoWLinks reports whether the named system has a generic
// netsim-backed PoW runner — the Supports predicate of every
// non-synchronous link model and non-complete topology.
func SupportsPoWLinks(system string) bool {
	_, ok := powSelectors[system]
	return ok
}
