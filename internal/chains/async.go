package chains

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/netsim"
)

// This file provides the executable counterparts of the open issues the
// paper lists at the end of Section 4.2 ("TBC"): the solvability of
// Eventual Prefix under asynchrony and under block intervals shorter than
// the message-delay bound. The paper states the conjectures:
//
//	(ii)  Eventual Prefix is impossible in an asynchronous system;
//	(iii) Eventual Prefix is impossible if the interval between the
//	      generation of two successive blocks is less than the upper
//	      bound on the message delay.
//
// RunBitcoinAsync exhibits finite-run witnesses for both: with mining much
// faster than delivery, replicas build on stale tips and the recorded
// histories show divergence that outlives any grace window; with mining
// much slower than the (bounded) delay, the same protocol converges.

// AsyncParams extends Params with the asynchronous link bound.
type AsyncParams struct {
	Params
	// MaxDelay is the common-case asynchronous delay bound; stragglers
	// exceed it ×10 with TailProb.
	MaxDelay int64
	// TailProb is the probability of a 10×MaxDelay straggler.
	TailProb float64
}

// RunBitcoinAsync runs the Bitcoin simulator over asynchronous links.
func RunBitcoinAsync(p AsyncParams) Result {
	return RunPoWAsync("Bitcoin", p)
}

// RunPoWAsync runs the named PoW system over asynchronous links. Unknown
// systems panic; callers gate on SupportsPoWLinks (the link registry's
// Supports predicate does).
func RunPoWAsync(system string, p AsyncParams) Result {
	links := netsim.Asynchronous{MaxDelay: p.MaxDelay, TailProb: p.TailProb}
	return runPoWSystemLinks(system, "async", "R(BT-ADT_EC, Θ_P) — async regime", links, p.Params)
}

// PsyncParams extends Params with the weakly-synchronous (eventually
// synchronous) link bounds of Section 4.2: asynchronous with common-case
// bound PreMax before the global stabilization time GST, δ-bounded after.
type PsyncParams struct {
	Params
	// GST is the global stabilization time; 0 defaults to 8·δ — long
	// enough for the pre-GST regime to fork the tree visibly, short
	// enough that every run length converges back to EC afterwards
	// (longer stabilization times on short runs produce the divergence
	// witnesses of the Section 4.2 conjectures instead).
	GST int64
	// PreMax bounds the common-case delay before GST; 0 defaults to
	// netsim's 8·δ.
	PreMax int64
}

// powSelectors maps each PoW system — the permissionless protocols whose
// mining loop is link-model agnostic — to its selection function. This is
// the support set of every non-synchronous link regime: the committee
// systems assume synchronous rounds, so only the PoW systems run under
// async, psync, lossy, partition and jitter links. (GHOST's pre-GST
// oscillation, which used to exclude Ethereum from psync, is gone now
// that WeaklySynchronous honors the DLS "delivered by GST+δ" bound: no
// stale pre-GST straggler can arrive arbitrarily late and flip the
// subtree weights after stabilization.)
var powSelectors = map[string]blocktree.Selector{
	"Bitcoin":  blocktree.HeaviestChain{},
	"Ethereum": blocktree.GHOST{},
}

// SupportsPoWLinks reports whether the named system has a generic
// netsim-backed PoW runner — the Supports predicate of every
// non-synchronous link model.
func SupportsPoWLinks(system string) bool {
	_, ok := powSelectors[system]
	return ok
}

// runPoWSystemLinks resolves the named PoW system's selector and runs it
// over the given link model, tagging the result with the link regime.
// Unknown systems panic; callers gate on SupportsPoWLinks.
func runPoWSystemLinks(system, regime, refinement string, links netsim.LinkModel, p Params) Result {
	sel, ok := powSelectors[system]
	if !ok {
		panic("chains: no " + regime + " runner for system " + system)
	}
	return runPoWLinks(system+"/"+regime, refinement, sel, links, p)
}

// RunPoWPsync runs the named PoW system over weakly-synchronous links:
// unbounded-looking delays before GST (every pre-GST send still delivered
// by GST+δ, the DLS bound), synchronous δ-bounded delivery after. Because
// the run continues (and drains) well past GST, the history converges and
// the theory still predicts Eventual Consistency — the eventually-
// synchronous regime the paper's weakly synchronous channels model.
// Unknown systems panic; callers gate on SupportsPoWLinks (the link
// registry's Supports predicate does).
func RunPoWPsync(system string, p PsyncParams) Result {
	p.Params = p.Params.withDefaults()
	gst := p.GST
	if gst <= 0 {
		gst = 8 * p.Delta
	}
	links := netsim.WeaklySynchronous{GST: gst, Delta: p.Delta, PreMax: p.PreMax}
	return runPoWSystemLinks(system, "psync", "R(BT-ADT_EC, Θ_P) — weakly synchronous (GST) regime", links, p.Params)
}
