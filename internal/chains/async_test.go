package chains

import (
	"testing"

	"blockadt/internal/consistency"
)

// TestOpenIssueEventualPrefixUnderAsynchrony exhibits finite-run witnesses
// for the paper's Section 4.2 open issues: when blocks are generated much
// faster than messages deliver, the Eventual Prefix property fails on the
// recorded histories; when generation is much slower than the delay bound,
// the same protocol satisfies it.
func TestOpenIssueEventualPrefixUnderAsynchrony(t *testing.T) {
	// Fast mining (attempts every tick, high probability) against slow
	// links (common delay up to 192 ticks, stragglers ×10): replicas
	// mine dozens of blocks per delivered update, so their trees diverge
	// persistently — the conjecture-(iii) regime.
	fast := execScenario(t, Scenario{
		System: Bitcoin{},
		Links:  AsyncLinks,
		Params: ScenarioParams{
			Params:   Params{N: 6, TargetBlocks: 60, Seed: 23, MineInterval: 1, TokenProb: 0.5, ReadEvery: 4},
			MaxDelay: 192,
			TailProb: 0.2,
		},
	})
	fastOpts := Options(Params{N: 6}.withDefaults(), fast.History)
	fastOpts.GraceWindow = 16
	if v := consistency.EventualPrefix(fast.History, fastOpts); v.Satisfied {
		t.Fatalf("fast-mining asynchronous run unexpectedly satisfies Eventual Prefix (forks=%d)", fast.Forks)
	}
	if fast.Forks == 0 {
		t.Fatal("fast regime produced no forks — parameters too tame")
	}

	// Slow mining against moderate asynchronous links: blocks are rare
	// relative to delivery, the network quiesces between blocks, and
	// Eventual Prefix holds.
	slow := execScenario(t, Scenario{
		System: Bitcoin{},
		Links:  AsyncLinks,
		Params: ScenarioParams{
			Params:   Params{N: 6, TargetBlocks: 25, Seed: 23, MineInterval: 64, TokenProb: 0.04, ReadEvery: 32},
			MaxDelay: 8,
		},
	})
	slowOpts := Options(Params{N: 6}.withDefaults(), slow.History)
	if v := consistency.EventualPrefix(slow.History, slowOpts); !v.Satisfied {
		t.Fatalf("slow-mining run violates Eventual Prefix: %s", v)
	}
}

// TestAsyncRunStillSatisfiesSafetyCore: even in the divergent regime the
// per-replica safety properties hold — only the convergence property is
// lost, matching the shape of the paper's conjecture.
func TestAsyncRunStillSatisfiesSafetyCore(t *testing.T) {
	res := execScenario(t, Scenario{
		System: Bitcoin{},
		Links:  AsyncLinks,
		Params: ScenarioParams{
			Params:   Params{N: 6, TargetBlocks: 60, Seed: 23, MineInterval: 1, TokenProb: 0.5, ReadEvery: 4},
			MaxDelay: 192,
			TailProb: 0.2,
		},
	})
	opts := Options(Params{N: 6}.withDefaults(), res.History)
	if v := consistency.BlockValidity(res.History, opts); !v.Satisfied {
		t.Fatalf("block validity lost under asynchrony: %s", v)
	}
	if v := consistency.LocalMonotonicRead(res.History, opts); !v.Satisfied {
		t.Fatalf("local monotonicity lost under asynchrony: %s", v)
	}
}
