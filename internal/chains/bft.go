package chains

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
	"blockadt/internal/prng"
)

// The consensus-based systems of Table 1 (ByzCoin, Algorand, PeerCensus,
// Red Belly, Hyperledger Fabric) all refine BT-ADT_SC with the frugal
// oracle Θ_F,k=1: their agreement machinery commits a single block per
// predecessor. This file provides a round-based engine that realizes that
// commit as an atomic consumeToken on a k=1 oracle — the paper's own
// abstraction of a Byzantine-tolerant commit (Sections 5.3–5.7) — followed
// by a reliable broadcast of the decided block. What varies per system is
// the proposer-selection discipline:
//
//   - ByzCoin / PeerCensus: a proof-of-work race (probabilistic tape
//     grants); concurrent winners are ordered by a digest-derived jitter,
//     modelling ByzCoin's smallest-least-significant-bits rule;
//   - Algorand: cryptographic sortition — per-round committee membership is
//     a Bernoulli draw and the highest sortition priority proposes first,
//     modelling BA*'s highest-priority-wins guarantee;
//   - Red Belly: the consortium's M writers all propose, the Byzantine
//     consensus (the consume) decides one;
//   - Hyperledger Fabric: a round-robin leader among the M writers is the
//     only proposer (the ordering service).
//
// Rounds are paced at 3δ so every correct replica knows the previous
// decision before proposing, matching the semi/eventual-synchrony
// assumptions those systems make.
type roundPlan struct {
	// participate reports whether process i proposes in round r, and the
	// intra-round scheduling priority (smaller proposes earlier).
	participate func(r int, i int) (bool, int64)
	// tokenProb is the per-attempt grant probability of each tape.
	tokenProb float64
}

type bftNode struct {
	rep    *netsim.Replica
	orc    *oracle.Oracle
	merit  int
	params Params
	plan   roundPlan
	round  int
	count  int
	names  nameMemo
	done   *bool
}

const (
	roundTimer   = "round"
	proposeTimer = "propose"
)

func (n *bftNode) roundLen() int64 { return 3 * n.params.Delta }

// OnTimer implements netsim.Handler.
func (n *bftNode) OnTimer(s *netsim.Sim, tag string) {
	switch tag {
	case roundTimer:
		r := n.round
		n.round++
		if ok, prio := n.plan.participate(r, n.merit); ok && !*n.done {
			s.TimerAt(n.rep.ID(), s.Now()+1+prio, proposeTimer)
		}
		if !*n.done {
			s.TimerAt(n.rep.ID(), s.Now()+n.roundLen(), roundTimer)
		}
	case proposeTimer:
		n.propose(s)
	case readTimer:
		n.rep.ReadIDs()
		if !*n.done {
			s.TimerAt(n.rep.ID(), s.Now()+n.params.ReadEvery, readTimer)
		}
	}
}

// OnMessage implements netsim.Handler.
func (n *bftNode) OnMessage(s *netsim.Sim, m netsim.Message) {
	n.rep.OnMessage(s, m)
}

// propose attempts to extend the local tip: getToken (the validation race),
// then consumeToken on the frugal k=1 oracle (the Byzantine-tolerant
// commit). Only the first consume per predecessor succeeds; losers record a
// failed append, which the purged histories of Section 3.4 discard.
func (n *bftNode) propose(s *netsim.Sim) {
	parent := n.rep.SelectedTip()
	candidate := n.names.get(parent.Height+1, n.rep.ID(), n.count)
	tok, granted := n.orc.GetToken(n.merit, parent.ID, candidate)
	if !granted {
		return
	}
	n.count++
	rec := s.Recorder()
	op := rec.Invoke(n.rep.ID(), history.Label{Kind: history.KindAppend, Block: candidate})
	_, inserted, err := n.orc.ConsumeToken(tok)
	ok := err == nil && inserted
	rec.Respond(op, history.Label{Kind: history.KindAppend, Block: candidate, Parent: parent.ID, OK: ok})
	if !ok {
		return
	}
	b := blocktree.Block{ID: candidate, Parent: parent.ID, Work: 1, Token: tok.ID, Proposer: n.merit}
	n.rep.CreateAndBroadcast(s, parent.ID, b)
}

// runBFT drives a round-based k=1 network.
func runBFT(name, refinement string, sel blocktree.Selector, plan roundPlan, p Params) Result {
	p = p.withDefaults()
	sim := netsim.New(netsim.Synchronous{Delta: p.Delta}, p.Seed)
	orc := oracle.NewFrugal(1, p.Seed, equalMerits(p.N, plan.tokenProb)...)
	ops := p.TargetBlocks*p.N*5 + p.N*16
	sim.Recorder().Reserve(2*ops, ops)
	done := false
	reps := map[history.ProcID]*netsim.Replica{}
	for i := 0; i < p.N; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplicaCap(id, sel, sim.Recorder(), p.TargetBlocks+p.TargetBlocks/2)
		reps[id] = rep
		node := &bftNode{rep: rep, orc: orc, merit: i, params: p, plan: plan, done: &done}
		sim.Register(id, node)
		sim.TimerAt(id, 1, roundTimer)
		sim.TimerAt(id, 2+int64(i)%p.ReadEvery, readTimer)
	}

	var t int64
	step := 3 * p.Delta
	for t = 0; t < p.MaxTicks; t += step {
		sim.Run(t + step)
		blocks, _ := bestReplica(reps)
		if blocks >= p.TargetBlocks {
			break
		}
	}
	done = true
	sim.Run(t + step + 16*p.Delta)
	for _, id := range sim.Procs() {
		reps[id].ReadIDs()
	}

	blocks, forks := bestReplica(reps)
	return Result{
		System:       name,
		Refinement:   refinement,
		OracleName:   orc.Name(),
		SelectorName: sel.Name(),
		K:            1,
		History:      sim.Recorder().Finalize(),
		Blocks:       blocks,
		Forks:        forks,
		Ticks:        sim.Now(),
		Delivered:    sim.Delivered,
		Dropped:      sim.Dropped,
		Bytes:        sim.Bytes,
	}
}

// powRacePlan is the ByzCoin/PeerCensus proposer discipline: everyone
// races; intra-round order follows a digest-derived jitter.
func powRacePlan(seed uint64, tokenProb float64) roundPlan {
	return roundPlan{
		tokenProb: tokenProb,
		participate: func(r, i int) (bool, int64) {
			return true, int64(prng.Mix(seed, 0xD16E57, uint64(r), uint64(i)) % 8)
		},
	}
}

// ByzCoin is Section 5.3: keyblock creation by proof-of-work, commitment by
// a PBFT variant that appends a single keyblock per predecessor — a
// strongly consistent BlockTree composed with a frugal oracle, k = 1.
type ByzCoin struct{}

// Name implements System.
func (ByzCoin) Name() string { return "ByzCoin" }

// Refinement implements System.
func (ByzCoin) Refinement() string { return "R(BT-ADT_SC, Θ_F,k=1)" }

// Expected implements System.
func (ByzCoin) Expected() consistency.Level { return consistency.LevelSC }

// Run implements System.
func (ByzCoin) Run(p Params) Result {
	p = p.withDefaults()
	// The PoW race needs a realistic per-round hit rate; scale the tape
	// probability so that a round finds a winner more often than not.
	prob := p.TokenProb * 8
	if prob > 0.9 {
		prob = 0.9
	}
	return runBFT("ByzCoin", ByzCoin{}.Refinement(), blocktree.SingleChain{}, powRacePlan(p.Seed, prob), p)
}

// PeerCensus is Section 5.5: proof-of-work identity plus a dynamic
// Byzantine-tolerant consensus committing a single keyblock among the
// concurrent ones — again R(BT-ADT_SC, Θ_F,k=1) under the secure-state
// assumption (adversarial power below 1/3).
type PeerCensus struct{}

// Name implements System.
func (PeerCensus) Name() string { return "PeerCensus" }

// Refinement implements System.
func (PeerCensus) Refinement() string { return "R(BT-ADT_SC, Θ_F,k=1)" }

// Expected implements System.
func (PeerCensus) Expected() consistency.Level { return consistency.LevelSC }

// Run implements System.
func (PeerCensus) Run(p Params) Result {
	p = p.withDefaults()
	prob := p.TokenProb * 8
	if prob > 0.9 {
		prob = 0.9
	}
	return runBFT("PeerCensus", PeerCensus{}.Refinement(), blocktree.SingleChain{}, powRacePlan(p.Seed, prob), p)
}

// Algorand is Section 5.4: cryptographic sortition selects a committee
// weighted by stake; the highest-priority member proposes and the BA*
// Byzantine agreement commits that block — a probabilistic implementation
// of a strongly consistent BlockTree with a frugal oracle, k = 1 (SC with
// high probability; the fork probability is below 10⁻⁷ and is not injected
// here).
type Algorand struct{}

// Name implements System.
func (Algorand) Name() string { return "Algorand" }

// Refinement implements System.
func (Algorand) Refinement() string { return "R(BT-ADT_SC, Θ_F,k=1) w.h.p." }

// Expected implements System.
func (Algorand) Expected() consistency.Level { return consistency.LevelSC }

// Run implements System.
func (Algorand) Run(p Params) Result {
	p = p.withDefaults()
	committeeProb := 0.5
	plan := roundPlan{
		tokenProb: 1,
		participate: func(r, i int) (bool, int64) {
			draw := prng.Mix(p.Seed, 0xA160, uint64(r), uint64(i))
			if !prng.Bernoulli(draw, committeeProb) {
				return false, 0
			}
			// Sortition priority: smaller value proposes earlier,
			// so the consume picks the highest-priority member.
			prio := int64(prng.Mix(p.Seed, 0xB42A, uint64(r), uint64(i)) % 16)
			return true, prio
		},
	}
	return runBFT("Algorand", Algorand{}.Refinement(), blocktree.SingleChain{}, plan, p)
}

// RedBelly is Section 5.6: a consortium blockchain where only the M
// predefined writers append; every writer can obtain a token and the
// Byzantine consensus run by all processes decides a unique block, so the
// BlockTree contains a unique chain: R(BT-ADT_SC, Θ_F,k=1) with the trivial
// projection as selection function.
type RedBelly struct{}

// Name implements System.
func (RedBelly) Name() string { return "RedBelly" }

// Refinement implements System.
func (RedBelly) Refinement() string { return "R(BT-ADT_SC, Θ_F,k=1)" }

// Expected implements System.
func (RedBelly) Expected() consistency.Level { return consistency.LevelSC }

// Run implements System.
func (RedBelly) Run(p Params) Result {
	p = p.withDefaults()
	writers := p.Writers
	if writers <= 0 || writers > p.N {
		writers = (p.N + 1) / 2
	}
	plan := roundPlan{
		tokenProb: 1,
		participate: func(r, i int) (bool, int64) {
			if i >= writers {
				return false, 0
			}
			return true, int64(prng.Mix(p.Seed, 0x2EDB, uint64(r), uint64(i)) % 8)
		},
	}
	return runBFT("RedBelly", RedBelly{}.Refinement(), blocktree.SingleChain{}, plan, p)
}

// Hyperledger is Section 5.7 (Hyperledger Fabric): a permissioned system
// where a leader among the M writers gathers transactions into the next
// block and the ordering service delivers it to everyone — by construction
// a unique token is consumed per height: R(BT-ADT_SC, Θ_F,k=1).
type Hyperledger struct{}

// Name implements System.
func (Hyperledger) Name() string { return "Hyperledger" }

// Refinement implements System.
func (Hyperledger) Refinement() string { return "R(BT-ADT_SC, Θ_F,k=1)" }

// Expected implements System.
func (Hyperledger) Expected() consistency.Level { return consistency.LevelSC }

// Run implements System.
func (Hyperledger) Run(p Params) Result {
	p = p.withDefaults()
	writers := p.Writers
	if writers <= 0 || writers > p.N {
		writers = (p.N + 1) / 2
	}
	plan := roundPlan{
		tokenProb: 1,
		participate: func(r, i int) (bool, int64) {
			return i == r%writers, 0
		},
	}
	return runBFT("Hyperledger", Hyperledger{}.Refinement(), blocktree.SingleChain{}, plan, p)
}
