package chains

import (
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

// equivocationRun builds a 3-process execution in which process 0 is
// Byzantine: it mints two sibling blocks for the same predecessor and sends
// each to a different peer only (selective send — no LRC). The oracle
// parameter decides whether the equivocation is even possible: Θ_P
// validates both blocks; Θ_F,k=1 refuses the second consumption.
func equivocationRun(t *testing.T, orc *oracle.Oracle) (*netsim.Sim, map[history.ProcID]*netsim.Replica) {
	t.Helper()
	sim := netsim.New(netsim.Synchronous{Delta: 3}, 2)
	rec := sim.Recorder()
	reps := map[history.ProcID]*netsim.Replica{}
	for _, p := range []history.ProcID{1, 2} {
		rep := netsim.NewReplica(p, blocktree.LongestChain{}, rec)
		reps[p] = rep
		sim.Register(p, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer:   func(s *netsim.Sim, tag string) { rep.Read() },
		})
	}
	// The Byzantine process equivocates at t=1: two blocks on b0,
	// selectively delivered. Its own history events are not recorded —
	// Definition 4.2 restricts histories to events at correct processes.
	sim.Register(0, netsim.HandlerFuncs{Timer: func(s *netsim.Sim, tag string) {
		mint := func(id blocktree.BlockID, to history.ProcID) {
			tok, ok := orc.GetToken(0, "b0", id)
			if !ok {
				return
			}
			if _, inserted, err := orc.ConsumeToken(tok); err != nil || !inserted {
				return // the frugal oracle stops the second block here
			}
			b := blocktree.Block{ID: id, Parent: "b0", Token: tok.ID, Proposer: 0}
			s.Send(netsim.Message{From: 0, To: to, Kind: netsim.UpdateMsg, Parent: "b0", Block: id, Origin: 0, Payload: b})
		}
		mint("evil-x", 1)
		mint("evil-y", 2)
	}})
	sim.TimerAt(0, 1, "equivocate")
	// Reads at the two honest processes, well after delivery.
	for _, p := range []history.ProcID{1, 2} {
		for i := int64(0); i < 6; i++ {
			sim.TimerAt(p, 10+8*i, "read")
		}
	}
	sim.Run(100)
	return sim, reps
}

// TestByzantineEquivocationUnderProdigal: with Θ_P the two sibling blocks
// both validate; the selective sends violate LRC Agreement and the two
// honest replicas diverge permanently — Eventual Prefix fails. This is the
// constructive reason Update Agreement (Definition 4.3) quantifies over
// every correct process's updates.
func TestByzantineEquivocationUnderProdigal(t *testing.T) {
	orc := oracle.NewProdigal(3, 1)
	sim, reps := equivocationRun(t, orc)

	c1, c2 := reps[1].Read(), reps[2].Read()
	if c1.String() == c2.String() {
		t.Fatalf("honest replicas agree (%s) — equivocation did not bite", c1)
	}

	h := sim.Recorder().Snapshot()
	opts := consistency.Options{Procs: []history.ProcID{1, 2}, GraceWindow: 2}
	if v := consistency.LRC(h, opts); v.Satisfied {
		t.Fatal("selective send passed the LRC check")
	}
	if v := consistency.EventualPrefix(h, opts); v.Satisfied {
		t.Fatal("permanent divergence passed Eventual Prefix")
	}
}

// TestByzantineEquivocationStoppedByFrugalK1: the same Byzantine schedule
// against Θ_F,k=1 — the oracle consumes only one of the two sibling
// tokens, so a single block circulates and the honest replicas cannot be
// split. The oracle's synchronization power, not the network, is what
// bounds equivocation (Theorem 3.2 with k = 1).
func TestByzantineEquivocationStoppedByFrugalK1(t *testing.T) {
	orc := oracle.NewFrugal(1, 3, 1)
	_, reps := equivocationRun(t, orc)

	c1, c2 := reps[1].Read(), reps[2].Read()
	// Exactly one of the two blocks exists; the replica it was sent to
	// has it, the other is still at genesis — prefix-related, no
	// divergence.
	if !c1.IDs().HasPrefix(c2.IDs()) && !c2.IDs().HasPrefix(c1.IDs()) {
		t.Fatalf("divergence under k=1: %s vs %s", c1, c2)
	}
	if got := len(orc.ConsumedSet("b0")); got != 1 {
		t.Fatalf("K[b0] = %d blocks, want 1", got)
	}
}
