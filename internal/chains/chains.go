// Package chains maps the existing blockchain systems of Section 5 of
// "Blockchain Abstract Data Type" (Anceaume et al.) onto the framework:
// for each system of Table 1 it provides a protocol simulator, faithful at
// the ADT level, whose recorded concurrent history the consistency checker
// classifies — regenerating the table's Refinement column.
//
// The simulators are deliberately abstract: what Table 1's classification
// depends on is (a) which token oracle the validation mechanism realizes
// (prodigal Θ_P vs frugal Θ_F,k=1), (b) the selection function f, and
// (c) the communication assumptions (at least a light reliable
// communication). Each simulator reproduces exactly those three
// ingredients as the paper describes them, and abstracts the rest
// (transaction content, signatures, view changes) — the substitutions are
// recorded in DESIGN.md.
package chains

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

// Params configures a simulated run.
type Params struct {
	// N is the number of processes (|V|).
	N int
	// Writers is the number of processes allowed to append (|M| ≤ N);
	// 0 means everyone (permissionless).
	Writers int
	// TargetBlocks ends the run once this many blocks are committed at
	// the fastest replica.
	TargetBlocks int
	// Seed drives all pseudorandomness.
	Seed uint64
	// Delta is the synchronous-link delivery bound δ.
	Delta int64
	// MineInterval is the period between proof-of-work attempts (PoW
	// systems) or between rounds (committee systems).
	MineInterval int64
	// TokenProb is the per-attempt token probability of each merit tape
	// in PoW systems (committee systems grant deterministically).
	TokenProb float64
	// Merits optionally sets per-process token probabilities (length N),
	// overriding the uniform TokenProb — the paper's merit parameter αᵢ
	// (e.g. hashing power). Used by the fairness experiments.
	Merits []float64
	// ReadEvery is the period between read() operations at each process.
	ReadEvery int64
	// MaxTicks hard-bounds virtual time.
	MaxTicks int64
}

// WithDefaults returns the params with zero fields replaced by the
// repository-wide simulation defaults — the values a simulator actually
// runs with, exported so callers describing a run (metric snapshots)
// agree with the run itself.
func (p Params) WithDefaults() Params { return p.withDefaults() }

// withDefaults fills zero fields with the defaults used throughout the
// experiments.
func (p Params) withDefaults() Params {
	if p.N == 0 {
		p.N = 8
	}
	if p.TargetBlocks == 0 {
		p.TargetBlocks = 40
	}
	if p.Delta == 0 {
		p.Delta = 8
	}
	if p.MineInterval == 0 {
		p.MineInterval = 4
	}
	if p.TokenProb == 0 {
		p.TokenProb = 0.04
	}
	if p.ReadEvery == 0 {
		p.ReadEvery = 16
	}
	if p.MaxTicks == 0 {
		p.MaxTicks = 1 << 20
	}
	return p
}

// Result is the outcome of one simulated run.
type Result struct {
	// System names the simulated protocol.
	System string
	// Refinement is the paper's claimed refinement, e.g.
	// "R(BT-ADT_EC, Θ_P)".
	Refinement string
	// OracleName is the oracle the simulator actually used.
	OracleName string
	// SelectorName is the selection function f.
	SelectorName string
	// K is the oracle fork bound (oracle.Unbounded for Θ_P).
	K int
	// History is the recorded concurrent history.
	History *history.History
	// Blocks is the number of committed blocks at the best replica.
	Blocks int
	// Forks is the number of tree vertices with more than one child at
	// the most forked replica.
	Forks int
	// Ticks is the virtual time consumed.
	Ticks int64
	// Delivered and Dropped count network messages.
	Delivered, Dropped int
	// Bytes is the estimated wire size of all sent messages (the
	// netsim byte counter) — the msg_bytes instrumentation.
	Bytes int64
	// PartitionHeal is the virtual time the run's network partition
	// healed at (0: the run had no partition). The partition_heal_lag
	// metric measures reconvergence from it.
	PartitionHeal int64
	// Metrics holds the named collector values of this run when the
	// caller requested collection (blockadt.WithMetrics); nil otherwise.
	// The simulators never fill it themselves — the façade computes it
	// from the rest of the result, so disabling metrics costs nothing.
	Metrics map[string]float64
	// Adversary carries the adversarial census when an AdversaryPlan
	// drove the run; nil for honest runs.
	Adversary *AdversaryStats
}

// AdversaryStats is the structured census of an adversarial run: who
// mined, who made the main chain, and (for fruit-bearing protocols) who
// was paid. The fruit fields stay nil/zero for plain withholding runs.
type AdversaryStats struct {
	// AdversaryMined / HonestMined count oracle-validated blocks.
	AdversaryMined, HonestMined int
	// AdversaryShare / HonestShare are main-chain proportions.
	AdversaryShare, HonestShare float64
	// AdversaryMerit is the adversary's entitled share (alpha).
	AdversaryMerit float64
	// Orphaned counts mined blocks that missed the final main chain.
	Orphaned int
	// MainChainByProc is the main-chain authorship census, the input to
	// chain-quality fairness analysis.
	MainChainByProc map[history.ProcID]int
	// BlockShareByProc is main-chain block authorship (fruit runs).
	BlockShareByProc map[history.ProcID]int
	// FruitRewardByProc counts included fruits per miner (fruit runs).
	FruitRewardByProc map[history.ProcID]int
	// AdversaryBlockShare and AdversaryRewardShare are the adversary's
	// realized proportions of blocks vs fruit rewards (fruit runs).
	AdversaryBlockShare, AdversaryRewardShare float64
	// FinalChain is the main chain at an honest replica when the run
	// ended (fruit runs).
	FinalChain blocktree.Chain
}

// Classify runs the consistency checker over the result's history.
func (r Result) Classify(opts consistency.Options) consistency.Classification {
	return consistency.Classify(r.History, opts)
}

// System is one row generator of Table 1.
type System interface {
	// Name returns the system's name as in Table 1.
	Name() string
	// Refinement returns the paper's classification, e.g.
	// "R(BT-ADT_SC, Θ_F,k=1)".
	Refinement() string
	// Expected returns the consistency level the paper assigns.
	Expected() consistency.Level
	// Run simulates the system.
	Run(p Params) Result
}

// All returns the seven systems of Table 1 in the paper's order.
func All() []System {
	return []System{
		Bitcoin{},
		Ethereum{},
		Algorand{},
		ByzCoin{},
		PeerCensus{},
		RedBelly{},
		Hyperledger{},
	}
}

// ByName returns the system with the given (case-sensitive) name.
func ByName(name string) (System, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("chains: unknown system %q", name)
}

// equalMerits returns n merit probabilities of p each: the normalized
// α_p = 1/n setting of Section 5 scaled to a per-attempt probability.
func equalMerits(n int, p float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p
	}
	return out
}

// blockName builds the deterministic block id "b<height>-p<proc>-<n>".
// Zero-padding keeps lexicographic tie-breaks stable and readable. The id
// is hand-encoded (identical to fmt.Sprintf("b%04d-p%02d-%04d", …)) because
// miners build a candidate name on every attempt, granted or not.
func blockName(height int, proc history.ProcID, n int) blocktree.BlockID {
	var buf [32]byte
	b := append(buf[:0], 'b')
	b = appendPadded(b, height, 4)
	b = append(b, '-', 'p')
	b = appendPadded(b, int(proc), 2)
	b = append(b, '-')
	b = appendPadded(b, n, 4)
	return blocktree.BlockID(b)
}

// appendPadded appends v ≥ 0 in decimal, zero-padded to at least width
// digits (wider values expand, matching fmt's %0*d).
func appendPadded(b []byte, v, width int) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for pad := width - (len(tmp) - i); pad > 0; pad-- {
		b = append(b, '0')
	}
	return append(b, tmp[i:]...)
}

// nameMemo caches the last candidate id a miner built. Attempts fail far
// more often than they succeed (TokenProb ≈ 0.04), and between successes
// the (height, counter) pair — hence the name — rarely changes, so the memo
// removes nearly all candidate-name constructions from the mining loop.
type nameMemo struct {
	name   blocktree.BlockID
	height int
	n      int
}

func (m *nameMemo) get(height int, proc history.ProcID, n int) blocktree.BlockID {
	if m.name == "" || m.height != height || m.n != n {
		m.name = blockName(height, proc, n)
		m.height, m.n = height, n
	}
	return m.name
}

// bestReplica returns the replica stats over a set of replicas: the
// maximal committed chain length and the maximal fork census. Both are
// O(1) reads of counters the trees maintain on Insert — the progress check
// runs every few ticks, so it must not materialize chains.
func bestReplica(reps map[history.ProcID]*netsim.Replica) (blocks, forks int) {
	for _, r := range reps {
		t := r.Tree()
		if n := t.Height(); n > blocks {
			blocks = n
		}
		if f := t.Forks(); f > forks {
			forks = f
		}
	}
	return blocks, forks
}

// Options returns checker options sized for simulator runs: the process
// universe is the full correct set and the grace window spans the
// convergence tail (half the reads, capped). Zero-valued params are
// normalized the way the simulators normalize them, so an N=0 run is
// checked against the 8 processes that actually ran instead of an empty
// universe that satisfies the communication properties vacuously.
func Options(p Params, h *history.History) consistency.Options {
	p = p.withDefaults()
	procs := make([]history.ProcID, p.N)
	for i := range procs {
		procs[i] = history.ProcID(i)
	}
	n := len(h.Reads())
	w := n / 2
	if w < 8 {
		w = 8
	}
	return consistency.Options{Procs: procs, GraceWindow: w}
}

// newProdigal builds the oracle a PoW system uses: prodigal with the
// configured merits (uniform TokenProb unless Params.Merits overrides).
func newProdigal(p Params) *oracle.Oracle {
	merits := p.Merits
	if len(merits) != p.N {
		merits = equalMerits(p.N, p.TokenProb)
	}
	return oracle.NewProdigal(p.Seed, merits...)
}
