package chains

import (
	"fmt"
	"strings"

	"blockadt/internal/consistency"
	"blockadt/internal/parallel"
)

// Row is one row of the regenerated Table 1.
type Row struct {
	System string
	// PaperRefinement is the classification Table 1 assigns.
	PaperRefinement string
	// Expected is the consistency level implied by the paper.
	Expected consistency.Level
	// Measured is the level our checker assigns to the simulated run.
	Measured consistency.Level
	// Oracle and Selector describe the simulator's instantiation.
	Oracle   string
	Selector string
	// Blocks / Forks / Ticks summarize the run.
	Blocks int
	Forks  int
	Ticks  int64
	// Match reports Measured == Expected.
	Match bool
	// SC and EC are the detailed reports.
	SC consistency.Report
	EC consistency.Report
}

// Classify runs every system of Table 1 with the given parameters and
// returns the regenerated table. The seven runs fan out across all CPUs;
// each simulator owns its network, oracle and recorder, so the rows are
// identical to a serial pass (ClassifyParallel(p, 1)).
func Classify(p Params) []Row {
	return ClassifyParallel(p, 0)
}

// ClassifyParallel is Classify with an explicit worker bound (<1 selects
// NumCPU). Rows come back in Table 1 order regardless of scheduling.
func ClassifyParallel(p Params, parallelism int) []Row {
	return parallel.Map(All(), parallelism, func(_ int, sys System) Row {
		return ClassifyOne(sys, p)
	})
}

// ClassifyOne simulates a single system and checks its history.
func ClassifyOne(sys System, p Params) Row {
	res := sys.Run(p)
	cls := res.Classify(Options(p.withDefaults(), res.History))
	return Row{
		System:          sys.Name(),
		PaperRefinement: sys.Refinement(),
		Expected:        sys.Expected(),
		Measured:        cls.Level,
		Oracle:          res.OracleName,
		Selector:        res.SelectorName,
		Blocks:          res.Blocks,
		Forks:           res.Forks,
		Ticks:           res.Ticks,
		Match:           cls.Level == sys.Expected(),
		SC:              cls.SC,
		EC:              cls.EC,
	}
}

// FormatTable renders the rows as an aligned text table mirroring Table 1
// with the measured column appended.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-28s %-10s %-9s %-9s %-8s %6s %6s %5s\n",
		"System", "Refinement (paper)", "Oracle", "Selector", "Expected", "Measured", "Blocks", "Forks", "Match")
	fmt.Fprintln(&b, strings.Repeat("-", 104))
	for _, r := range rows {
		match := "yes"
		if !r.Match {
			match = "NO"
		}
		fmt.Fprintf(&b, "%-12s %-28s %-10s %-9s %-9s %-8s %6d %6d %5s\n",
			r.System, r.PaperRefinement, r.Oracle, r.Selector, r.Expected, r.Measured, r.Blocks, r.Forks, match)
	}
	return b.String()
}
