package chains

import (
	"strings"
	"testing"

	"blockadt/internal/consistency"
)

var table1Params = Params{N: 8, TargetBlocks: 30, Seed: 42}

// TestTable1Classification regenerates Table 1: each simulated system's
// recorded history classifies at the paper's consistency level.
func TestTable1Classification(t *testing.T) {
	rows := Classify(table1Params)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s: measured %s, paper says %s\nSC: %sEC: %s",
				r.System, r.Measured, r.Expected, r.SC, r.EC)
		}
	}
	t.Logf("\n%s", FormatTable(rows))
}

// TestPoWSystemsViolateStrongPrefixSpecifically: Bitcoin and Ethereum are
// EC, and the SC property that fails is Strong Prefix — the paper's
// rationale for the weaker criterion.
func TestPoWSystemsViolateStrongPrefixSpecifically(t *testing.T) {
	for _, sys := range []System{Bitcoin{}, Ethereum{}} {
		res := sys.Run(table1Params)
		cls := res.Classify(Options(table1Params.withDefaults(), res.History))
		if cls.Level != consistency.LevelEC {
			t.Fatalf("%s level = %s", sys.Name(), cls.Level)
		}
		failed := cls.SC.Failed()
		hasSP := false
		for _, p := range failed {
			if p == "StrongPrefix" {
				hasSP = true
			}
		}
		if !hasSP {
			t.Fatalf("%s: SC failures = %v, want StrongPrefix among them", sys.Name(), failed)
		}
		if res.Forks == 0 {
			t.Fatalf("%s: no forks realized — the run does not exercise divergence", sys.Name())
		}
	}
}

// TestConsensusSystemsNeverFork: every k=1 system commits a single chain.
func TestConsensusSystemsNeverFork(t *testing.T) {
	for _, sys := range []System{Algorand{}, ByzCoin{}, PeerCensus{}, RedBelly{}, Hyperledger{}} {
		res := sys.Run(table1Params)
		if res.Forks != 0 {
			t.Errorf("%s forked %d times under Θ_F,k=1", sys.Name(), res.Forks)
		}
		if res.Blocks < table1Params.TargetBlocks {
			t.Errorf("%s committed only %d blocks", sys.Name(), res.Blocks)
		}
		if res.K != 1 {
			t.Errorf("%s oracle K = %d", sys.Name(), res.K)
		}
	}
}

// TestKForkCoherenceAcrossSystems: every simulated history respects its
// oracle's fork bound (Theorem 3.2 end-to-end).
func TestKForkCoherenceAcrossSystems(t *testing.T) {
	for _, sys := range All() {
		res := sys.Run(table1Params)
		k := res.K
		v := consistency.KForkCoherence(res.History, k, Options(table1Params.withDefaults(), res.History))
		if !v.Satisfied {
			t.Errorf("%s: %s", sys.Name(), v)
		}
	}
}

// TestUpdateAgreementHoldsOnAllSystems: every simulator uses the LRC
// broadcast, so the recorded histories satisfy Update Agreement — the
// necessary condition of Theorem 4.6 honoured by construction.
func TestUpdateAgreementHoldsOnAllSystems(t *testing.T) {
	small := Params{N: 4, TargetBlocks: 10, Seed: 7}
	for _, sys := range All() {
		res := sys.Run(small)
		opts := Options(small.withDefaults(), res.History)
		if v := consistency.UpdateAgreement(res.History, opts); !v.Satisfied {
			t.Errorf("%s: %s", sys.Name(), v)
		}
		if v := consistency.LRC(res.History, opts); !v.Satisfied {
			t.Errorf("%s LRC: %s", sys.Name(), v)
		}
	}
}

// TestDeterministicRuns: the same seed reproduces the same result exactly.
func TestDeterministicRuns(t *testing.T) {
	a := Bitcoin{}.Run(table1Params)
	b := Bitcoin{}.Run(table1Params)
	if a.Blocks != b.Blocks || a.Forks != b.Forks || a.Ticks != b.Ticks || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a, b)
	}
	ra := a.History.Reads()
	rb := b.History.Reads()
	if len(ra) != len(rb) {
		t.Fatalf("read counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Chain.String() != rb[i].Chain.String() {
			t.Fatalf("read %d differs", i)
		}
	}
}

// TestSeedChangesRun: a different seed yields a different execution (the
// simulator actually uses its randomness).
func TestSeedChangesRun(t *testing.T) {
	a := Bitcoin{}.Run(Params{N: 8, TargetBlocks: 20, Seed: 1})
	b := Bitcoin{}.Run(Params{N: 8, TargetBlocks: 20, Seed: 2})
	if a.Ticks == b.Ticks && a.Delivered == b.Delivered && a.Forks == b.Forks {
		t.Fatal("two seeds produced identical executions — suspicious")
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"Bitcoin", "Ethereum", "Algorand", "ByzCoin", "PeerCensus", "RedBelly", "Hyperledger"} {
		sys, err := ByName(want)
		if err != nil || sys.Name() != want {
			t.Fatalf("ByName(%s): %v", want, err)
		}
	}
	if _, err := ByName("Dogecoin"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Row{{System: "X", PaperRefinement: "R", Expected: consistency.LevelSC, Measured: consistency.LevelSC, Match: true}}
	out := FormatTable(rows)
	if !strings.Contains(out, "X") || !strings.Contains(out, "yes") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestWritersParameter(t *testing.T) {
	// A consortium with 2 writers: all blocks must be proposed by procs
	// 0 or 1.
	res := RedBelly{}.Run(Params{N: 6, Writers: 2, TargetBlocks: 12, Seed: 3})
	tree := treeOfBest(t, res)
	for _, a := range res.History.SuccessfulAppends() {
		if a.Op.Proc > 1 {
			t.Fatalf("non-writer %d appended %s", a.Op.Proc, a.Block)
		}
	}
	_ = tree
}

// treeOfBest re-derives a tree from the history's successful appends; it
// sanity-checks that every committed block is attributable.
func treeOfBest(t *testing.T, res Result) map[string]bool {
	t.Helper()
	blocks := map[string]bool{}
	for _, a := range res.History.SuccessfulAppends() {
		blocks[string(a.Block)] = true
	}
	if len(blocks) == 0 {
		t.Fatal("no successful appends recorded")
	}
	return blocks
}

// TestHyperledgerRoundRobin: with the leader rotating over 3 writers,
// successive blocks come from successive leaders.
func TestHyperledgerRoundRobin(t *testing.T) {
	res := Hyperledger{}.Run(Params{N: 6, Writers: 3, TargetBlocks: 9, Seed: 5})
	appends := res.History.SuccessfulAppends()
	if len(appends) < 6 {
		t.Fatalf("appends = %d", len(appends))
	}
	for i := 1; i < len(appends); i++ {
		want := (int(appends[i-1].Op.Proc) + 1) % 3
		if int(appends[i].Op.Proc) != want {
			t.Fatalf("append %d by p%d, want p%d (round-robin)", i, appends[i].Op.Proc, want)
		}
	}
}
