package chains

import (
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
)

// TestDrainOutlastsJitterTails pins the drain-window bugfix: the harness
// must deliver every in-flight message before taking the final convergence
// reads. Under Jitter with an extreme TailFactor a straggler's delay
// (Delta × TailFactor = 32768 ticks here) dwarfs the old fixed drain
// window of 64 + 16·Delta ticks, so on the old code some replicas took
// their final read while block deliveries were still in flight and the
// reads disagreed — a harness artifact, not a property of the link model.
// With loss-free links and a full drain, every replica holds the same tree
// at the end, so the N final reads must be identical.
func TestDrainOutlastsJitterTails(t *testing.T) {
	const n = 6
	links := netsim.Jitter{
		Inner:      netsim.Synchronous{Delta: 8},
		TailProb:   0.3,
		TailFactor: 4096,
	}
	for seed := uint64(1); seed <= 5; seed++ {
		p := Params{N: n, TargetBlocks: 12, Delta: 8, Seed: seed}
		res := runPoWTopo("Bitcoin", Bitcoin{}.Refinement(), blocktree.HeaviestChain{}, links, nil, p)
		if res.Blocks < p.TargetBlocks {
			t.Fatalf("seed %d: run ended with %d blocks, want ≥ %d", seed, res.Blocks, p.TargetBlocks)
		}
		reads := res.History.Reads()
		if len(reads) < n {
			t.Fatalf("seed %d: only %d reads recorded", seed, len(reads))
		}
		final := reads[len(reads)-n:]
		for i := 1; i < n; i++ {
			if !chainsEqual(final[0].Chain, final[i].Chain) {
				t.Errorf("seed %d: final reads diverged after drain:\n  p%d: %s\n  p%d: %s",
					seed, final[0].Op.Proc, final[0].Chain, final[i].Op.Proc, final[i].Chain)
			}
		}
	}
}

func chainsEqual(a, b history.Chain) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
