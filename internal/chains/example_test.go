package chains_test

import (
	"fmt"

	"blockadt/internal/chains"
)

// Example regenerates one row of Table 1: simulate Bitcoin and classify
// its recorded history.
func Example() {
	p := chains.Params{N: 8, TargetBlocks: 30, Seed: 42}
	res := chains.Bitcoin{}.Run(p)
	cls := res.Classify(chains.Options(p, res.History))
	fmt.Println("paper:", chains.Bitcoin{}.Refinement())
	fmt.Println("measured:", cls.Level)
	fmt.Println("forked:", res.Forks > 0)
	// Output:
	// paper: R(BT-ADT_EC, Θ_P)
	// measured: EC
	// forked: true
}

// ExampleClassify regenerates the whole of Table 1.
func ExampleClassify() {
	rows := chains.Classify(chains.Params{N: 8, TargetBlocks: 30, Seed: 42})
	allMatch := true
	for _, r := range rows {
		if !r.Match {
			allMatch = false
		}
	}
	fmt.Printf("%d systems, all at the paper's level: %v\n", len(rows), allMatch)
	// Output:
	// 7 systems, all at the paper's level: true
}
