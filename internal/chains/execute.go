package chains

import (
	"fmt"
	"sort"

	"blockadt/internal/history"
	"blockadt/internal/netsim"
)

// This file is the unified scenario executor: one engine, four
// orthogonal strategy axes. A Scenario composes a System (mining and
// selection behavior), a LinkPlan (the channel model of Section 4.2),
// an AdversaryPlan (the fault model) and a TopologyPlan (the
// dissemination graph); Execute runs the composition. The nine bespoke
// Run* entry points this replaces paired those axes by hand — every new
// link or adversary needed another runner. Now a new axis value is a
// plan value, and the façade registries (pkg/blockadt) compose plans by
// name with no engine changes.

// ScenarioParams is the unified parameter set of the executor: the core
// run shape (Params) plus every knob the link, adversary and topology
// plans read. The per-regime *Params structs this replaces each carried
// two or three of these fields; here they share one struct, and each
// plan documents which fields it reads and how zero values default.
type ScenarioParams struct {
	Params
	// MaxDelay is the asynchronous common-case delay bound (AsyncLinks;
	// 0 defaults inside netsim to 64).
	MaxDelay int64
	// TailProb is the straggler probability: AsyncLinks takes it
	// literally (0 = no stragglers); JitterLinks defaults 0 to 0.05.
	TailProb float64
	// GST is the absolute global stabilization time (PsyncLinks; 0
	// defaults to 8·δ).
	GST int64
	// GSTDeltas is the stabilization time in units of the defaulted δ
	// (LossyPsyncLinks; 0 defaults to 8). It stays distinct from GST
	// because the lossy+psync grid keys scenario identity in δ units.
	GSTDeltas int64
	// PreMax bounds the common-case delay before GST (PsyncLinks; 0
	// defaults inside netsim to 8·δ).
	PreMax int64
	// Rate is the per-message drop probability: LossyLinks defaults
	// 0 to DefaultLossRate; LossyPsyncLinks takes it literally (0 =
	// reliable channels, the p=0 boundary row).
	Rate float64
	// Start and Heal bound the partition interval [Start, Heal)
	// (PartitionLinks; zero values default to [8δ, 24δ)).
	Start, Heal int64
	// Split is the partition cut — processes with id < Split on one
	// side (PartitionLinks; 0 defaults to N/2).
	Split int
	// TailFactor multiplies a straggler's delay (JitterLinks; 0
	// defaults inside netsim to 10).
	TailFactor int64
	// Alpha is the adversary's merit share (adversary plans only).
	Alpha float64
}

// LinkPlan is the channel-model axis: how to build the netsim link
// model from the (defaulted) params, plus the labels the regime stamps
// on results. The zero value is the synchronous default — the system's
// own simulator runs untouched.
type LinkPlan struct {
	// Regime tags the result's System field ("Bitcoin/async") and names
	// the regime in unknown-system errors.
	Regime string
	// Refinement replaces the system's refinement string on results.
	Refinement string
	// Build constructs the link model. p carries the defaulted core
	// Params, so δ-scaled defaults can be computed here.
	Build func(p ScenarioParams) netsim.LinkModel
	// Heal reports the partition heal time the result should carry
	// (PartitionLinks); nil for regimes without one.
	Heal func(p ScenarioParams) int64
}

// AdversaryPlan is the fault-model axis. The zero value runs every
// process honestly. A non-zero plan owns the whole run: adversarial
// strategies replace nodes, reshape merit tapes and post-process the
// final chains, so they drive the simulation themselves and attach
// their census to Result.Adversary. Adversary plans run over the
// synchronous complete-graph network (their analyses assume it);
// Execute rejects compositions with non-default links or topologies.
type AdversaryPlan struct {
	// Name labels the plan in composition errors.
	Name string
	// Run drives the adversarial run. The scenario's Params (including
	// Alpha) arrive exactly as composed; the runner applies its own
	// defaulting, like the honest simulators do.
	Run func(sc Scenario) Result
}

// TopologyPlan is the dissemination-graph axis. The zero value is the
// complete graph. Graph reroutes block updates through Gossiper
// flooding restricted to the topology's neighbor sets; WrapLinks
// decorates the link model (latency matrices). Either or both may be
// set.
type TopologyPlan struct {
	// Name tags the result's System field ("Bitcoin@ring(k=3)").
	Name string
	// Graph, when set, switches replicas to gossip dissemination over
	// this topology.
	Graph netsim.Topology
	// WrapLinks, when set, decorates the link model after the link plan
	// built it. p carries the defaulted core Params.
	WrapLinks func(links netsim.LinkModel, p ScenarioParams) netsim.LinkModel
}

// GossipTopology returns the degree-k ring-gossip plan: each process
// sends direct copies to its k ring successors and the flooding relays
// carry updates the rest of the way.
func GossipTopology(k int) TopologyPlan {
	return TopologyPlan{
		Name:  fmt.Sprintf("gossip%d", k),
		Graph: netsim.RingK{K: k},
	}
}

// ClusteredTopology returns the clustered-latency plan: processes are
// grouped into `clusters` equal-width id clusters and cross-cluster
// deliveries pay extraDeltas·δ on top of the link model.
func ClusteredTopology(clusters int, extraDeltas int64) TopologyPlan {
	if clusters < 1 {
		clusters = 1
	}
	return TopologyPlan{
		Name: fmt.Sprintf("clustered%d", clusters),
		WrapLinks: func(links netsim.LinkModel, p ScenarioParams) netsim.LinkModel {
			size := (p.N + clusters - 1) / clusters
			return netsim.ClusterLatency{Inner: links, Size: size, Extra: extraDeltas * p.Delta}
		},
	}
}

// Scenario is one composed execution: a system and one value per
// strategy axis. Zero-valued axes select the defaults (synchronous
// links, honest processes, complete graph), in which case Execute runs
// the system's own Table 1 simulator unchanged.
type Scenario struct {
	System    System
	Links     LinkPlan
	Adversary AdversaryPlan
	Topology  TopologyPlan
	Params    ScenarioParams
}

// UnknownSystemError reports a composition naming a system that has no
// simulator for the requested axis: the non-default link and topology
// plans run on the generic PoW driver, which only the permissionless
// systems implement (SupportsPoWLinks — committee systems assume
// synchronous rounds and complete dissemination).
type UnknownSystemError struct {
	// System is the name that missed.
	System string
	// Regime is the link regime (or "sync") that was requested.
	Regime string
	// Known lists the systems the generic driver does implement.
	Known []string
}

// Error keeps the message of the panic this error replaced.
func (e *UnknownSystemError) Error() string {
	return "chains: no " + e.Regime + " runner for system " + e.System
}

// PoWSystems returns the sorted names of the systems the generic PoW
// driver implements — the support set of every non-default link and
// topology plan.
func PoWSystems() []string {
	out := make([]string, 0, len(powSelectors))
	for name := range powSelectors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Execute runs a composed scenario. Default-axes scenarios dispatch to
// the system's own simulator (byte-identical to calling System.Run);
// non-default links or topologies run the generic PoW driver; a
// non-default adversary owns the run entirely. The one error surface is
// composition: a system outside the generic driver's support set under
// a non-default link/topology (*UnknownSystemError), an adversary
// composed with a non-default network, or a scenario with no system.
func Execute(sc Scenario) (Result, error) {
	if sc.Adversary.Run != nil {
		if sc.Links.Build != nil || sc.Links.Regime != "" || sc.Topology.Graph != nil || sc.Topology.WrapLinks != nil {
			return Result{}, fmt.Errorf("chains: adversary %q composes only with synchronous complete-graph networks", sc.Adversary.Name)
		}
		return sc.Adversary.Run(sc), nil
	}
	if sc.System == nil {
		return Result{}, fmt.Errorf("chains: scenario names no system")
	}
	defaultLinks := sc.Links.Build == nil && sc.Links.Regime == ""
	defaultTopo := sc.Topology.Graph == nil && sc.Topology.WrapLinks == nil
	if defaultLinks && defaultTopo {
		// The Table 1 path: the system's own simulator, raw params (it
		// applies its own defaults).
		return sc.System.Run(sc.Params.Params), nil
	}
	name := sc.System.Name()
	sel, ok := powSelectors[name]
	if !ok {
		regime := sc.Links.Regime
		if regime == "" {
			regime = "sync"
		}
		return Result{}, &UnknownSystemError{System: name, Regime: regime, Known: PoWSystems()}
	}
	p := sc.Params
	p.Params = p.Params.withDefaults()
	var links netsim.LinkModel
	if sc.Links.Build != nil {
		links = sc.Links.Build(p)
	}
	if links == nil {
		links = netsim.Synchronous{Delta: p.Delta}
	}
	if sc.Topology.WrapLinks != nil {
		links = sc.Topology.WrapLinks(links, p)
	}
	resName := name
	refinement := sc.System.Refinement()
	if sc.Links.Regime != "" {
		resName += "/" + sc.Links.Regime
	}
	if sc.Links.Refinement != "" {
		refinement = sc.Links.Refinement
	}
	if sc.Topology.Name != "" {
		resName += "@" + sc.Topology.Name
	}
	res := runPoWTopo(resName, refinement, sel, links, sc.Topology.Graph, p.Params)
	if sc.Links.Heal != nil {
		res.PartitionHeal = sc.Links.Heal(p)
	}
	return res, nil
}

// The six link plans of the Section 4.2 channel models. Each Build
// reproduces the defaulting and netsim construction of the Run* runner
// it replaced, so results — and the rng streams behind them — are
// byte-identical.
var (
	// AsyncLinks is the asynchronous regime of the Section 4.2 open
	// issues: common-case delay MaxDelay, TailProb stragglers at 10×.
	AsyncLinks = LinkPlan{
		Regime:     "async",
		Refinement: "R(BT-ADT_EC, Θ_P) — async regime",
		Build: func(p ScenarioParams) netsim.LinkModel {
			return netsim.Asynchronous{MaxDelay: p.MaxDelay, TailProb: p.TailProb}
		},
	}
	// PsyncLinks is the weakly synchronous regime: asynchronous before
	// GST (0 → 8δ), δ-bounded after, pre-GST sends delivered by GST+δ.
	PsyncLinks = LinkPlan{
		Regime:     "psync",
		Refinement: "R(BT-ADT_EC, Θ_P) — weakly synchronous (GST) regime",
		Build: func(p ScenarioParams) netsim.LinkModel {
			gst := p.GST
			if gst <= 0 {
				gst = 8 * p.Delta
			}
			return netsim.WeaklySynchronous{GST: gst, Delta: p.Delta, PreMax: p.PreMax}
		},
	}
	// LossyLinks drops each message with probability Rate (0 →
	// DefaultLossRate), never retransmitting — the Theorem 4.7 channels.
	LossyLinks = LinkPlan{
		Regime:     "lossy",
		Refinement: "R(BT-ADT_EC, Θ_P) — lossy channels (Theorem 4.7 regime)",
		Build: func(p ScenarioParams) netsim.LinkModel {
			rate := p.Rate
			if rate <= 0 {
				rate = DefaultLossRate
			}
			return netsim.LossyRate{Inner: netsim.Synchronous{Delta: p.Delta}, P: rate}
		},
	}
	// LossyPsyncLinks combines per-message drops at Rate (taken
	// literally: 0 = reliable) with weak synchrony stabilizing at
	// GSTDeltas·δ (0 → 8) — the Theorem 4.7 phase-boundary grid.
	LossyPsyncLinks = LinkPlan{
		Regime:     "lossy+psync",
		Refinement: "R(BT-ADT_EC, Θ_P) — lossy weakly-synchronous regime (Theorem 4.7 boundary)",
		Build: func(p ScenarioParams) netsim.LinkModel {
			gstDeltas := p.GSTDeltas
			if gstDeltas <= 0 {
				gstDeltas = 8
			}
			return netsim.LossyRate{
				Inner: netsim.WeaklySynchronous{GST: gstDeltas * p.Delta, Delta: p.Delta},
				P:     p.Rate,
			}
		},
	}
	// PartitionLinks bisects the network over [Start, Heal) (0 →
	// [8δ, 24δ)) at cut Split (0 → N/2), deferring cross-cut deliveries
	// until the cut heals.
	PartitionLinks = LinkPlan{
		Regime:     "partition",
		Refinement: "R(BT-ADT_EC, Θ_P) — healed partition regime",
		Build: func(p ScenarioParams) netsim.LinkModel {
			start, heal := partitionWindow(p)
			split := p.Split
			if split <= 0 {
				split = p.N / 2
			}
			return netsim.PartitionModel{
				Inner: netsim.Synchronous{Delta: p.Delta},
				Split: history.ProcID(split),
				Start: start,
				Heal:  heal,
				Defer: true,
			}
		},
		Heal: func(p ScenarioParams) int64 {
			_, heal := partitionWindow(p)
			return heal
		},
	}
	// JitterLinks stretches a TailProb (0 → 0.05) fraction of
	// deliveries by TailFactor× (0 → 10) over synchronous links.
	JitterLinks = LinkPlan{
		Regime:     "jitter",
		Refinement: "R(BT-ADT_EC, Θ_P) — heavy-tail jitter regime",
		Build: func(p ScenarioParams) netsim.LinkModel {
			tail := p.TailProb
			if tail <= 0 {
				tail = 0.05
			}
			return netsim.Jitter{Inner: netsim.Synchronous{Delta: p.Delta}, TailProb: tail, TailFactor: p.TailFactor}
		},
	}
)

// partitionWindow resolves the partition interval's δ-scaled defaults.
func partitionWindow(p ScenarioParams) (start, heal int64) {
	start, heal = p.Start, p.Heal
	if start <= 0 {
		start = 8 * p.Delta
	}
	if heal <= start {
		heal = start + 16*p.Delta
	}
	return start, heal
}

// The two adversary plans: the Eyal–Sirer withholding miner over plain
// Bitcoin and over FruitChain's fruit-reward scheme.
var (
	// SelfishWithholding replaces process 0 with a selfish miner holding
	// merit share Params.Alpha.
	SelfishWithholding = AdversaryPlan{Name: "selfish", Run: runSelfishMining}
	// FruitWithholding runs the same withholding miner against honest
	// FruitChain miners; its withheld blocks include only its own fruits.
	FruitWithholding = AdversaryPlan{Name: "fruit-selfish", Run: runFruitChainAttack}
)
