package chains

import (
	"errors"
	"testing"

	"blockadt/internal/consistency"
)

// execScenario runs a scenario through the unified executor, failing the
// test on composition errors — the helper every in-package test uses.
func execScenario(t *testing.T, sc Scenario) Result {
	t.Helper()
	res, err := Execute(sc)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// TestExecuteDefaultAxesMatchesSystemRun: a scenario with every axis at
// its zero value dispatches to the system's own Table 1 simulator — the
// results are identical to calling System.Run directly, which is what
// keeps the sweep baseline byte-stable across the refactor.
func TestExecuteDefaultAxesMatchesSystemRun(t *testing.T) {
	for _, sys := range []System{Bitcoin{}, Ethereum{}, Algorand{}, Hyperledger{}} {
		p := Params{N: 5, TargetBlocks: 20, Seed: 17}
		direct := sys.Run(p)
		via := execScenario(t, Scenario{System: sys, Params: ScenarioParams{Params: p}})
		if direct.Blocks != via.Blocks || direct.Ticks != via.Ticks ||
			direct.Delivered != via.Delivered || direct.Forks != via.Forks ||
			direct.System != via.System || direct.Refinement != via.Refinement {
			t.Fatalf("%s: Execute diverged from System.Run:\n direct: %+v\n via:    %+v", sys.Name(), direct, via)
		}
		if len(direct.History.Events()) != len(via.History.Events()) {
			t.Fatalf("%s: history lengths differ: %d vs %d", sys.Name(), len(direct.History.Events()), len(via.History.Events()))
		}
	}
}

// TestExecuteUnknownSystem: composing a committee system with a
// non-default link (or topology) is a typed error, not a panic — the
// message stays byte-identical to the panic it replaced so operators'
// grep habits survive.
func TestExecuteUnknownSystem(t *testing.T) {
	p := ScenarioParams{Params: Params{N: 4, TargetBlocks: 10, Seed: 1}}
	_, err := Execute(Scenario{System: Hyperledger{}, Links: AsyncLinks, Params: p})
	var ue *UnknownSystemError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownSystemError, got %v", err)
	}
	if got, want := ue.Error(), "chains: no async runner for system Hyperledger"; got != want {
		t.Fatalf("message = %q, want %q", got, want)
	}
	if ue.System != "Hyperledger" || ue.Regime != "async" {
		t.Fatalf("fields = %+v", ue)
	}
	if len(ue.Known) == 0 {
		t.Fatal("Known list empty")
	}

	// A bare topology (sync links) reports the "sync" regime.
	_, err = Execute(Scenario{System: Algorand{}, Topology: GossipTopology(3), Params: p})
	if !errors.As(err, &ue) || ue.Regime != "sync" {
		t.Fatalf("topology-only miss: %v", err)
	}

	// No system at all is its own error.
	if _, err := Execute(Scenario{Params: p}); err == nil {
		t.Fatal("scenario without a system must error")
	}
}

// TestExecuteRejectsAdversaryNetworkCompositions: adversary plans own the
// run and assume synchronous complete-graph broadcast; composing them
// with a link or topology plan is refused up front rather than silently
// ignoring the network axis.
func TestExecuteRejectsAdversaryNetworkCompositions(t *testing.T) {
	p := ScenarioParams{Params: Params{N: 6, TargetBlocks: 20, Seed: 3}, Alpha: 0.34}
	for _, sc := range []Scenario{
		{Adversary: SelfishWithholding, Links: LossyLinks, Params: p},
		{Adversary: SelfishWithholding, Topology: GossipTopology(3), Params: p},
		{Adversary: FruitWithholding, Topology: ClusteredTopology(2, 4), Params: p},
	} {
		if _, err := Execute(sc); err == nil {
			t.Fatalf("adversary+network composition must error: %+v", sc)
		}
	}
	// The plain composition still runs.
	res := execScenario(t, Scenario{Adversary: SelfishWithholding, Params: p})
	if res.Adversary == nil {
		t.Fatal("adversary run carries no census")
	}
}

// TestGossipTopologyDeterministicEC: ring-gossip dissemination (degree
// k=3) runs deterministically and still converges — restricting direct
// sends to the neighbor set only reroutes updates, it loses none.
func TestGossipTopologyDeterministicEC(t *testing.T) {
	for _, sys := range []System{Bitcoin{}, Ethereum{}} {
		sc := Scenario{
			System:   sys,
			Topology: GossipTopology(3),
			Params:   ScenarioParams{Params: Params{N: 8, TargetBlocks: 30, Seed: 42}},
		}
		a := execScenario(t, sc)
		b := execScenario(t, sc)
		if a.Blocks != b.Blocks || a.Ticks != b.Ticks || a.Delivered != b.Delivered || a.Forks != b.Forks {
			t.Fatalf("%s@gossip3 nondeterministic:\n a: %+v\n b: %+v", sys.Name(), a, b)
		}
		if want := sys.Name() + "@gossip3"; a.System != want {
			t.Fatalf("result system = %q, want %q", a.System, want)
		}
		opts := Options(Params{N: 8}.withDefaults(), a.History)
		if lvl := a.Classify(opts).Level; lvl != consistency.LevelEC {
			t.Fatalf("%s@gossip3 classified %s, want EC", sys.Name(), lvl)
		}
		// Gossip relays multiply deliveries relative to one-hop broadcast.
		if a.Delivered == 0 {
			t.Fatalf("%s@gossip3 delivered nothing", sys.Name())
		}
	}
}

// TestClusteredTopologyDeterministicEC: the clustered-latency wrap adds
// cross-cluster delay without dropping anything, so runs stay
// deterministic and eventually consistent, and compose with a
// non-default link plan.
func TestClusteredTopologyDeterministicEC(t *testing.T) {
	sc := Scenario{
		System:   Bitcoin{},
		Topology: ClusteredTopology(2, 4),
		Params:   ScenarioParams{Params: Params{N: 8, TargetBlocks: 30, Seed: 42}},
	}
	a := execScenario(t, sc)
	b := execScenario(t, sc)
	if a.Blocks != b.Blocks || a.Ticks != b.Ticks || a.Delivered != b.Delivered || a.Forks != b.Forks {
		t.Fatalf("clustered2 nondeterministic:\n a: %+v\n b: %+v", a, b)
	}
	if want := "Bitcoin@clustered2"; a.System != want {
		t.Fatalf("result system = %q, want %q", a.System, want)
	}
	if a.Dropped != 0 {
		t.Fatalf("clustered latency dropped %d messages", a.Dropped)
	}
	opts := Options(Params{N: 8}.withDefaults(), a.History)
	if lvl := a.Classify(opts).Level; lvl != consistency.LevelEC {
		t.Fatalf("clustered2 classified %s, want EC", lvl)
	}

	// Cross-cluster delay is observable: the clustered run takes at least
	// as many ticks as the flat run on the same seed.
	flat := execScenario(t, Scenario{
		System: Bitcoin{},
		Params: ScenarioParams{Params: Params{N: 8, TargetBlocks: 30, Seed: 42}},
	})
	if a.Ticks < flat.Ticks {
		t.Fatalf("clustered run finished faster than flat: %d < %d ticks", a.Ticks, flat.Ticks)
	}

	// Topology wraps compose with link plans: jitter inside clusters.
	composed := Scenario{
		System:   Ethereum{},
		Links:    JitterLinks,
		Topology: ClusteredTopology(2, 4),
		Params:   ScenarioParams{Params: Params{N: 8, TargetBlocks: 20, Seed: 7}},
	}
	c := execScenario(t, composed)
	d := execScenario(t, composed)
	if c.Blocks != d.Blocks || c.Ticks != d.Ticks || c.Delivered != d.Delivered {
		t.Fatal("link×topology composition nondeterministic")
	}
	if want := "Ethereum/jitter@clustered2"; c.System != want {
		t.Fatalf("composed system = %q, want %q", c.System, want)
	}
}

// TestExecuteCrossProductDeterminism: every (PoW system × link plan ×
// topology plan) tuple the engine supports executes deterministically —
// the internal counterpart of the façade's registry cross-product test.
func TestExecuteCrossProductDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cross product is slow")
	}
	links := map[string]LinkPlan{
		"sync": {}, "async": AsyncLinks, "psync": PsyncLinks,
		"lossy": LossyLinks, "partition": PartitionLinks, "jitter": JitterLinks,
	}
	topos := map[string]TopologyPlan{
		"complete": {}, "gossip3": GossipTopology(3), "clustered2": ClusteredTopology(2, 4),
	}
	for _, sys := range []System{Bitcoin{}, Ethereum{}} {
		for ln, link := range links {
			for tn, topo := range topos {
				sc := Scenario{
					System:   sys,
					Links:    link,
					Topology: topo,
					Params:   ScenarioParams{Params: Params{N: 6, TargetBlocks: 15, Seed: 11}},
				}
				a := execScenario(t, sc)
				b := execScenario(t, sc)
				if a.Blocks != b.Blocks || a.Ticks != b.Ticks || a.Delivered != b.Delivered ||
					a.Dropped != b.Dropped || a.Forks != b.Forks {
					t.Errorf("%s × %s × %s nondeterministic", sys.Name(), ln, tn)
				}
			}
		}
	}
}
