package chains

import (
	"encoding/json"
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
	"blockadt/internal/prng"
)

// This file implements the FruitChain protocol (Pass & Shi), which
// Section 5.1 classifies alongside Bitcoin: "the same conclusion applies
// as well for the FruitChain protocol, which proposes a protocol similar
// to Bitcoin except for the rewarding mechanism". The consistency
// classification is identical — R(BT-ADT_EC, Θ_P) — but rewards are paid
// per *fruit*: a lightweight proof-of-work product mined in parallel with
// blocks, gossiped, and included into whichever blocks come next. Because
// a fruit is included by any honest block regardless of who wins the block
// race, withholding attacks that skew block authorship leave the fruit
// (reward) distribution near the merit distribution — fairness by design.
//
// The experiment (X9) runs the same selfish-mining adversary as X7 and
// compares two censuses over the final main chain: block authorship
// (badly skewed) versus fruit rewards (close to merit entitlement).

// Fruit is the lightweight PoW product; it pays its miner one reward unit
// once included in a main-chain block.
type Fruit struct {
	ID    string         `json:"id"`
	Miner history.ProcID `json:"miner"`
}

// WireSize reports the fruit's approximate serialized size for the
// network simulator's byte accounting (netsim.Sized).
func (f Fruit) WireSize() int { return len(f.ID) + 8 }

// fruitMsg is the gossip kind carrying fruits.
const fruitMsg = "fruit"

// fruitPayload is the block payload: the included fruits.
type fruitPayload struct {
	Fruits []Fruit `json:"fruits"`
}

func encodeFruits(fruits []Fruit) []byte {
	b, err := json.Marshal(fruitPayload{Fruits: fruits})
	if err != nil {
		panic(err) // marshalling a struct of strings cannot fail
	}
	return b
}

// DecodeFruits extracts the fruits included in a block payload.
func DecodeFruits(payload []byte) []Fruit {
	if len(payload) == 0 {
		return nil
	}
	var p fruitPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil
	}
	return p.Fruits
}

// fruitNode is an honest FruitChain miner: it mines blocks through the
// prodigal oracle exactly like powNode, mines fruits on a parallel
// high-rate tape, gossips fruits, and includes every pending fruit it has
// seen into the blocks it wins.
type fruitNode struct {
	rep       *netsim.Replica
	orc       *oracle.Oracle
	fruitTape *oracle.Tape
	merit     int
	params    Params
	counter   int
	fruitSeq  int
	// pending are fruits seen but not yet observed inside the local
	// selected chain.
	pending map[string]Fruit
	names   nameMemo
	done    *bool
}

// OnTimer implements netsim.Handler.
func (n *fruitNode) OnTimer(s *netsim.Sim, tag string) {
	switch tag {
	case mineTimer:
		if *n.done {
			return
		}
		n.mineFruit(s)
		n.mineBlock(s)
		s.TimerAt(n.rep.ID(), s.Now()+n.params.MineInterval, mineTimer)
	case readTimer:
		n.rep.ReadIDs()
		if !*n.done {
			s.TimerAt(n.rep.ID(), s.Now()+n.params.ReadEvery, readTimer)
		}
	}
}

func (n *fruitNode) mineFruit(s *netsim.Sim) {
	if !n.fruitTape.Pop() {
		return
	}
	f := Fruit{ID: fmt.Sprintf("f-p%02d-%04d", n.rep.ID(), n.fruitSeq), Miner: n.rep.ID()}
	n.fruitSeq++
	n.pending[f.ID] = f
	s.Broadcast(n.rep.ID(), netsim.Message{Kind: fruitMsg, Origin: n.rep.ID(), Payload: f})
}

func (n *fruitNode) mineBlock(s *netsim.Sim) {
	parent := n.rep.SelectedTip()
	candidate := n.names.get(parent.Height+1, n.rep.ID(), n.counter)
	tok, ok := n.orc.GetToken(n.merit, parent.ID, candidate)
	if !ok {
		return
	}
	n.counter++
	rec := s.Recorder()
	op := rec.Invoke(n.rep.ID(), history.Label{Kind: history.KindAppend, Block: candidate})
	_, inserted, err := n.orc.ConsumeToken(tok)
	okAppend := err == nil && inserted
	rec.Respond(op, history.Label{Kind: history.KindAppend, Block: candidate, Parent: parent.ID, OK: okAppend})
	if !okAppend {
		return
	}
	// Include every pending fruit not already on the selected chain.
	included := n.harvest()
	b := blocktree.Block{
		ID: candidate, Parent: parent.ID, Work: 1, Token: tok.ID,
		Proposer: n.merit, Payload: encodeFruits(included),
	}
	n.rep.CreateAndBroadcast(s, parent.ID, b)
}

// harvest returns the pending fruits absent from the locally selected
// chain and prunes the pending set of fruits already included.
func (n *fruitNode) harvest() []Fruit {
	onChain := map[string]bool{}
	for _, blk := range n.rep.Selected() {
		for _, f := range DecodeFruits(blk.Payload) {
			onChain[f.ID] = true
		}
	}
	var out []Fruit
	for id, f := range n.pending {
		if onChain[id] {
			delete(n.pending, id)
			continue
		}
		out = append(out, f)
	}
	// Deterministic inclusion order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// OnMessage implements netsim.Handler.
func (n *fruitNode) OnMessage(s *netsim.Sim, m netsim.Message) {
	switch m.Kind {
	case fruitMsg:
		if f, ok := m.Payload.(Fruit); ok {
			n.pending[f.ID] = f
		}
	default:
		n.rep.OnMessage(s, m)
	}
}

// runFruitChainAttack is the FruitWithholding plan's driver: N-1 honest
// FruitChain miners against the same selfish block-withholding adversary
// as runSelfishMining, with Params.Alpha as the merit share. The
// adversary also mines fruits (at its merit rate) but its withheld
// blocks include only its own fruits, the worst case for honest rewards.
// The census (block authorship vs fruit rewards) lands on
// Result.Adversary.
func runFruitChainAttack(sc Scenario) Result {
	p, alpha := sc.Params.Params, sc.Params.Alpha
	p = p.withDefaults()
	total := p.TokenProb * float64(p.N)
	merits := make([]float64, p.N)
	merits[0] = total * alpha
	for i := 1; i < p.N; i++ {
		merits[i] = total * (1 - alpha) / float64(p.N-1)
	}
	p.Merits = merits

	sim := netsim.New(netsim.Synchronous{Delta: p.Delta}, p.Seed)
	orc := newProdigal(p)
	done := false
	reps := map[history.ProcID]*netsim.Replica{}

	// The adversary: selfish block miner + own-fruit inclusion.
	adv := &fruitSelfishMiner{
		selfishMiner: selfishMiner{
			rep:    netsim.NewReplica(0, blocktree.HeaviestChain{}, sim.Recorder()),
			orc:    orc,
			merit:  0,
			params: p,
			done:   &done,
		},
		fruitTape: oracle.NewTape(p.Seed^0xF007, 0, 10*merits[0]),
	}
	adv.private = adv.rep.Tree().Clone()
	reps[0] = adv.rep
	sim.Register(0, adv)
	sim.TimerAt(0, 1, mineTimer)

	for i := 1; i < p.N; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplica(id, blocktree.HeaviestChain{}, sim.Recorder())
		reps[id] = rep
		node := &fruitNode{
			rep: rep, orc: orc, merit: i, params: p,
			fruitTape: oracle.NewTape(p.Seed^0xF007, i, 10*merits[i]),
			pending:   map[string]Fruit{},
			done:      &done,
		}
		sim.Register(id, node)
		sim.TimerAt(id, 1+int64(i)%p.MineInterval, mineTimer)
		sim.TimerAt(id, 2+int64(i)%p.ReadEvery, readTimer)
	}

	var t int64
	for t = 0; t < p.MaxTicks; t += 64 {
		sim.Run(t + 64)
		blocks, _ := bestReplica(reps)
		if blocks >= p.TargetBlocks {
			break
		}
	}
	done = true
	adv.publish(sim, len(adv.withheld))
	sim.Run(t + 64 + 16*p.Delta)
	for _, id := range sim.Procs() {
		reps[id].ReadIDs()
	}

	final := blocktree.HeaviestChain{}.Select(reps[1].Tree())
	blockCensus := map[history.ProcID]int{}
	rewardCensus := map[history.ProcID]int{}
	for _, b := range final[1:] {
		blockCensus[history.ProcID(b.Proposer)]++
		for _, f := range DecodeFruits(b.Payload) {
			rewardCensus[f.Miner]++
		}
	}
	stats := &AdversaryStats{
		AdversaryMerit:    alpha,
		MainChainByProc:   blockCensus,
		BlockShareByProc:  blockCensus,
		FruitRewardByProc: rewardCensus,
		FinalChain:        final,
	}
	totalBlocks, totalRewards := 0, 0
	for _, n := range blockCensus {
		totalBlocks += n
	}
	for _, n := range rewardCensus {
		totalRewards += n
	}
	if totalBlocks > 0 {
		stats.AdversaryBlockShare = float64(blockCensus[0]) / float64(totalBlocks)
	}
	if totalRewards > 0 {
		stats.AdversaryRewardShare = float64(rewardCensus[0]) / float64(totalRewards)
	}
	blocks, forks := bestReplica(reps)
	return Result{
		System:       fmt.Sprintf("FruitChain+selfish(α=%.2f)", alpha),
		Refinement:   "R(BT-ADT_EC, Θ_P) — fair rewards via fruits",
		OracleName:   orc.Name(),
		SelectorName: "heaviest",
		K:            oracle.Unbounded,
		History:      sim.Recorder().Finalize(),
		Blocks:       blocks,
		Forks:        forks,
		Ticks:        sim.Now(),
		Delivered:    sim.Delivered,
		Dropped:      sim.Dropped,
		Bytes:        sim.Bytes,
		Adversary:    stats,
	}
}

// fruitSelfishMiner extends the selfish block miner with adversarial fruit
// handling: it mines fruits at its merit rate, keeps them private, and
// includes only its own fruits in its withheld blocks.
type fruitSelfishMiner struct {
	selfishMiner
	fruitTape *oracle.Tape
	fruitSeq  int
	ownFruits []Fruit
}

// OnTimer overrides the block-mining timer to also mine fruits and stuff
// withheld blocks with the adversary's own fruits.
func (m *fruitSelfishMiner) OnTimer(s *netsim.Sim, tag string) {
	if tag == mineTimer && !*m.done {
		if m.fruitTape.Pop() {
			f := Fruit{ID: fmt.Sprintf("f-z%02d-%04d", m.rep.ID(), m.fruitSeq), Miner: m.rep.ID()}
			m.fruitSeq++
			m.ownFruits = append(m.ownFruits, f)
		}
	}
	before := len(m.withheld)
	m.selfishMiner.OnTimer(s, tag)
	if len(m.withheld) > before {
		// A fresh private block: attach the adversary's unspent fruits.
		nb := &m.withheld[len(m.withheld)-1]
		nb.Payload = encodeFruits(m.ownFruits)
		m.ownFruits = nil
		// Mirror the payload into the private tree copy is unnecessary:
		// the withheld slice is what gets published.
	}
}

// OnMessage drops honest fruit gossip (the adversary never includes honest
// fruits — worst case) and defers to the selfish block policy otherwise.
func (m *fruitSelfishMiner) OnMessage(s *netsim.Sim, msg netsim.Message) {
	if msg.Kind == fruitMsg {
		return
	}
	m.selfishMiner.OnMessage(s, msg)
}

// hash helper kept for deterministic fruit jitter if needed later.
var _ = prng.Mix
