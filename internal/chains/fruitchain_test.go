package chains

import (
	"testing"

	"blockadt/internal/consistency"
	"blockadt/internal/fairness"
)

// runFruit executes the FruitChain withholding plan through the unified
// executor.
func runFruit(t *testing.T, p Params, alpha float64) Result {
	t.Helper()
	return execScenario(t, Scenario{
		Adversary: FruitWithholding,
		Params:    ScenarioParams{Params: p, Alpha: alpha},
	})
}

// TestFruitChainRestoresRewardFairness is the Section 5.1 FruitChain
// claim made measurable: under the same selfish-mining adversary, block
// authorship is skewed far above the adversary's merit, but the fruit
// reward distribution stays close to it — the rewarding mechanism, not the
// consistency level, is what FruitChain changes.
func TestFruitChainRestoresRewardFairness(t *testing.T) {
	p := Params{N: 6, TargetBlocks: 120, Seed: 31}
	const alpha = 0.34
	stats := runFruit(t, p, alpha).Adversary

	if stats.AdversaryBlockShare <= alpha {
		t.Fatalf("adversary block share %.3f ≤ merit %.3f — attack did not bite", stats.AdversaryBlockShare, alpha)
	}
	blockExcess := stats.AdversaryBlockShare - alpha
	rewardExcess := stats.AdversaryRewardShare - alpha
	if rewardExcess >= blockExcess {
		t.Fatalf("reward skew %.3f not smaller than block skew %.3f", rewardExcess, blockExcess)
	}
	// The reward distribution is within fairness tolerance of the merit
	// entitlement.
	merits := adversaryMeritVector(p, stats.AdversaryMerit)
	rewardRep := fairness.FromCounts(stats.FruitRewardByProc, merits)
	if !rewardRep.Fair(0.12) {
		t.Fatalf("fruit rewards unfair (TVD %.3f):\n%s", rewardRep.TVD, rewardRep)
	}
	blockRep := fairness.FromCounts(stats.BlockShareByProc, merits)
	if blockRep.TVD <= rewardRep.TVD {
		t.Fatalf("block TVD %.3f ≤ reward TVD %.3f", blockRep.TVD, rewardRep.TVD)
	}
	t.Logf("α=%.2f: block share %.3f (TVD %.3f) vs reward share %.3f (TVD %.3f)",
		alpha, stats.AdversaryBlockShare, blockRep.TVD, stats.AdversaryRewardShare, rewardRep.TVD)
}

// TestFruitChainStillEventuallyConsistent: FruitChain maps to the same
// refinement as Bitcoin (R(BT-ADT_EC, Θ_P)) — the reward change does not
// alter the consistency classification.
func TestFruitChainStillEventuallyConsistent(t *testing.T) {
	p := Params{N: 6, TargetBlocks: 80, Seed: 31}
	res := runFruit(t, p, 0.3)
	cls := consistency.Classify(res.History, Options(p.withDefaults(), res.History))
	if cls.Level != consistency.LevelEC {
		t.Fatalf("FruitChain classified %s, want EC\nSC: %sEC: %s", cls.Level, cls.SC, cls.EC)
	}
}

// TestFruitsAreIncludedInHonestRuns: with a negligible adversary the run
// is effectively honest and fruits from every honest miner land on the
// main chain.
func TestFruitsAreIncludedInHonestRuns(t *testing.T) {
	p := Params{N: 5, TargetBlocks: 60, Seed: 7}
	stats := runFruit(t, p, 0.01).Adversary
	totalRewards := 0
	miners := 0
	for _, n := range stats.FruitRewardByProc {
		totalRewards += n
		if n > 0 {
			miners++
		}
	}
	if totalRewards == 0 {
		t.Fatal("no fruits included at all")
	}
	if miners < 4 {
		t.Fatalf("only %d miners earned rewards", miners)
	}
}

// TestFruitPayloadRoundTrip covers the payload codec.
func TestFruitPayloadRoundTrip(t *testing.T) {
	fruits := []Fruit{{ID: "f1", Miner: 2}, {ID: "f2", Miner: 3}}
	enc := encodeFruits(fruits)
	dec := DecodeFruits(enc)
	if len(dec) != 2 || dec[0] != fruits[0] || dec[1] != fruits[1] {
		t.Fatalf("round trip = %+v", dec)
	}
	if DecodeFruits(nil) != nil {
		t.Fatal("nil payload must decode to nil")
	}
	if DecodeFruits([]byte("{bad")) != nil {
		t.Fatal("garbage must decode to nil")
	}
}

// TestFruitUniquenessOnChain: no fruit id appears twice across the final
// chain's payloads (the harvest prunes already-included fruits).
func TestFruitUniquenessOnChain(t *testing.T) {
	p := Params{N: 5, TargetBlocks: 60, Seed: 7}
	stats := runFruit(t, p, 0.2).Adversary
	seen := map[string]bool{}
	total := 0
	for _, blk := range stats.FinalChain {
		for _, f := range DecodeFruits(blk.Payload) {
			if seen[f.ID] {
				t.Fatalf("fruit %s included twice", f.ID)
			}
			seen[f.ID] = true
			total++
		}
	}
	if total < 10 {
		t.Fatalf("rewards = %d, run too small", total)
	}
}

// TestFruitChainDeterministic: seeded reproducibility.
func TestFruitChainDeterministic(t *testing.T) {
	p := Params{N: 4, TargetBlocks: 30, Seed: 5}
	a := runFruit(t, p, 0.25).Adversary
	b := runFruit(t, p, 0.25).Adversary
	if a.AdversaryBlockShare != b.AdversaryBlockShare || a.AdversaryRewardShare != b.AdversaryRewardShare {
		t.Fatal("nondeterministic fruitchain run")
	}
}
