package chains

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files with the current output")

// TestFormatTableGolden pins the full rendered Table 1 — every system's
// verdict, oracle, selector and run summary at the canonical seed —
// against a golden file, so a refactor cannot silently flip a consistency
// verdict or perturb a deterministic simulation. Regenerate deliberately
// with: go test ./internal/chains -run TestFormatTableGolden -update
func TestFormatTableGolden(t *testing.T) {
	got := FormatTable(Classify(Params{N: 8, TargetBlocks: 30, Seed: 42}))
	path := filepath.Join("testdata", "table1.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("Table 1 drifted from golden file %s.\n--- got ---\n%s--- want ---\n%s(if the change is intentional, rerun with -update)",
			path, got, want)
	}
}

// TestClassifyParallelMatchesSerial asserts the parallel Table 1 fan-out
// is row-for-row identical to the serial pass, including the detailed SC
// and EC report strings. Parallelism is pinned at 4 (not NumCPU) so the
// goroutines really interleave even on a 1-core CI runner.
func TestClassifyParallelMatchesSerial(t *testing.T) {
	p := Params{N: 8, TargetBlocks: 20, Seed: 7}
	serial := ClassifyParallel(p, 1)
	concurrent := ClassifyParallel(p, 4)
	if len(serial) != len(concurrent) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(concurrent))
	}
	for i := range serial {
		a, b := serial[i], concurrent[i]
		if a.System != b.System || a.Measured != b.Measured || a.Blocks != b.Blocks ||
			a.Forks != b.Forks || a.Ticks != b.Ticks || a.Match != b.Match {
			t.Errorf("row %d differs:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
		if a.SC.String() != b.SC.String() || a.EC.String() != b.EC.String() {
			t.Errorf("row %d detailed reports differ between serial and parallel", i)
		}
	}
}
