package chains

import (
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

// TestTheorem48ForkImpossibility executes the proof construction of
// Theorem 4.8: two correct processes i and j, synchronous channels, an LRC
// primitive, and an oracle that allows forks (here Θ_F,k=2). At the same
// instant t0 both invoke append on b0; both tokens are consumable (k = 2),
// both updates are exchanged, and at a time t < t0+δ — before the remote
// updates are delivered — each process reads its own branch: the reads
// return b0⌢b_i at i and b0⌢b_j at j, neither a prefix of the other. Strong
// Prefix is violated even in a fault-free synchronous environment,
// demonstrating that no Θ ≠ Θ_F,k=1 refinement implements BT-ADT_SC.
func TestTheorem48ForkImpossibility(t *testing.T) {
	const delta = 10
	sim := netsim.New(netsim.Synchronous{Delta: delta, Min: delta}, 1)
	orc := oracle.NewFrugal(2, 1, 1, 1) // k=2: forks allowed
	rec := sim.Recorder()

	reps := map[history.ProcID]*netsim.Replica{}
	for _, p := range []history.ProcID{0, 1} {
		rep := netsim.NewReplica(p, blocktree.LongestChain{}, rec)
		reps[p] = rep
		p := p
		sim.Register(p, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer: func(s *netsim.Sim, tag string) {
				switch tag {
				case "append":
					// append(b_p) at time t0: getToken on the local
					// tip (b0 at both), consume (k=2 admits both),
					// update locally and broadcast via LRC.
					parent := rep.Selected().Tip()
					id := blocktree.BlockID("b_" + string(rune('i'+p)))
					tok, ok := orc.GetToken(int(p), parent.ID, id)
					if !ok {
						t.Errorf("token refused at p%d", p)
						return
					}
					op := rec.Invoke(p, history.Label{Kind: history.KindAppend, Block: id})
					_, inserted, err := orc.ConsumeToken(tok)
					rec.Respond(op, history.Label{Kind: history.KindAppend, Block: id, Parent: parent.ID, OK: inserted && err == nil})
					if inserted && err == nil {
						rep.CreateAndBroadcast(s, parent.ID, blocktree.Block{ID: id, Parent: parent.ID, Token: tok.ID})
					}
				case "read":
					rep.Read()
				}
			},
		})
	}

	const t0 = 5
	sim.TimerAt(0, t0, "append")
	sim.TimerAt(1, t0, "append")
	// Reads at t < t0 + δ: the remote updates (delay exactly δ) have not
	// arrived, so each process sees only its own block.
	sim.TimerAt(0, t0+delta/2, "read")
	sim.TimerAt(1, t0+delta/2, "read")
	sim.Run(t0 + 4*delta)

	h := rec.Snapshot()
	reads := h.Reads()
	if len(reads) != 2 {
		t.Fatalf("reads = %d", len(reads))
	}
	c0, c1 := reads[0].Chain, reads[1].Chain
	if c0.HasPrefix(c1) || c1.HasPrefix(c0) {
		t.Fatalf("the construction failed to diverge: %s vs %s", c0, c1)
	}
	if v := consistency.StrongPrefix(h, consistency.Options{}); v.Satisfied {
		t.Fatal("Strong Prefix holds — Theorem 4.8's construction broken")
	}
	// Both appends succeeded: the k=2 oracle admitted the fork.
	if got := len(h.SuccessfulAppends()); got != 2 {
		t.Fatalf("successful appends = %d, want 2", got)
	}
	// Sanity: the same construction under Θ_F,k=1 cannot diverge — the
	// second consume is refused, so one branch never exists
	// (Corollary 4.8.1: Θ_F,k=1 is necessary for Strong Prefix).
	if !orc.KForkCoherent() {
		t.Fatal("oracle exceeded its own bound")
	}
}

// TestCorollary481K1PreventsTheFork re-runs the Theorem 4.8 schedule with
// Θ_F,k=1: exactly one of the two simultaneous appends succeeds, the tree
// never forks, and the reads are prefix-related.
func TestCorollary481K1PreventsTheFork(t *testing.T) {
	const delta = 10
	sim := netsim.New(netsim.Synchronous{Delta: delta, Min: delta}, 1)
	orc := oracle.NewFrugal(1, 1, 1, 1)
	rec := sim.Recorder()

	reps := map[history.ProcID]*netsim.Replica{}
	for _, p := range []history.ProcID{0, 1} {
		rep := netsim.NewReplica(p, blocktree.LongestChain{}, rec)
		reps[p] = rep
		p := p
		sim.Register(p, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer: func(s *netsim.Sim, tag string) {
				switch tag {
				case "append":
					parent := rep.Selected().Tip()
					id := blocktree.BlockID("b_" + string(rune('i'+p)))
					tok, ok := orc.GetToken(int(p), parent.ID, id)
					if !ok {
						return
					}
					op := rec.Invoke(p, history.Label{Kind: history.KindAppend, Block: id})
					_, inserted, err := orc.ConsumeToken(tok)
					rec.Respond(op, history.Label{Kind: history.KindAppend, Block: id, Parent: parent.ID, OK: inserted && err == nil})
					if inserted && err == nil {
						rep.CreateAndBroadcast(s, parent.ID, blocktree.Block{ID: id, Parent: parent.ID, Token: tok.ID})
					}
				case "read":
					rep.Read()
				}
			},
		})
	}

	const t0 = 5
	sim.TimerAt(0, t0, "append")
	sim.TimerAt(1, t0, "append")
	sim.TimerAt(0, t0+delta/2, "read")
	sim.TimerAt(1, t0+delta/2, "read")
	// Post-convergence reads.
	sim.TimerAt(0, t0+3*delta, "read")
	sim.TimerAt(1, t0+3*delta, "read")
	sim.Run(t0 + 4*delta)

	h := rec.Snapshot()
	if got := len(h.SuccessfulAppends()); got != 1 {
		t.Fatalf("successful appends = %d, want 1 under k=1", got)
	}
	if v := consistency.StrongPrefix(h, consistency.Options{}); !v.Satisfied {
		t.Fatalf("Strong Prefix violated under k=1: %s", v)
	}
	for p, rep := range reps {
		if rep.Tree().MaxFanout() > 1 {
			t.Fatalf("replica %d forked under k=1", p)
		}
	}
}
