package chains

// This file keeps the shared constants of the network-adversity regimes:
// the PoW systems over rate-lossy, partitioned and jitter-prone channels,
// whose link plans (LossyLinks, PartitionLinks, JitterLinks, …) live in
// execute.go. Together with the async/psync plans they make the channel
// model — the deciding variable of Section 4.2 — a first-class scenario
// dimension. The lossy regime is the executable side of the necessity
// results (Theorem 4.7: Eventual Prefix is unimplementable once even one
// message sent by a correct process is dropped); the partition regime
// exercises the related-work remark that partition-prone systems sustain
// nothing stronger than monotonic-prefix consistency while the cut is up;
// the jitter regime shows rare heavy-tail stragglers alone do not break
// convergence.

// DefaultLossRate is the drop probability of the registered "lossy"
// scenario link: high enough that every realistic run loses several
// block updates (the Theorem 4.7 hypothesis), low enough that the best
// replica still reaches its target chain length.
const DefaultLossRate = 0.10

// NormalizeSelfishN is the one process-count normalization of the
// selfish-mining experiment, shared by the SelfishWithholding plan and
// the façade's merit-vector reconstruction so the two can never drift
// apart: the Params default (0 → 8) plus the adversarial minimum of one
// honest miner (n < 2 → 2).
func NormalizeSelfishN(n int) int {
	if n == 0 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}
