package chains

import (
	"blockadt/internal/history"
	"blockadt/internal/netsim"
)

// This file provides the network-adversity runners: the PoW systems over
// rate-lossy, partitioned and jitter-prone channels. Together with the
// async/psync runners they make the channel model — the deciding variable
// of Section 4.2 — a first-class scenario dimension. The lossy regime is
// the executable side of the necessity results (Theorem 4.7: Eventual
// Prefix is unimplementable once even one message sent by a correct
// process is dropped); the partition regime exercises the related-work
// remark that partition-prone systems sustain nothing stronger than
// monotonic-prefix consistency while the cut is up; the jitter regime
// shows rare heavy-tail stragglers alone do not break convergence.

// LossyParams extends Params with the per-message drop probability.
type LossyParams struct {
	Params
	// Rate is the per-message drop probability; 0 defaults to
	// DefaultLossRate.
	Rate float64
}

// DefaultLossRate is the drop probability of the registered "lossy"
// scenario link: high enough that every realistic run loses several
// block updates (the Theorem 4.7 hypothesis), low enough that the best
// replica still reaches its target chain length.
const DefaultLossRate = 0.10

// RunPoWLossy runs the named PoW system over δ-bounded links that drop
// each message independently with probability Rate. Dropped updates are
// never retransmitted, so replicas missing a block diverge permanently —
// the recorded histories witness the Eventual Prefix violation of
// Theorem 4.7. Unknown systems panic; callers gate on SupportsPoWLinks.
func RunPoWLossy(system string, p LossyParams) Result {
	p.Params = p.Params.withDefaults()
	rate := p.Rate
	if rate <= 0 {
		rate = DefaultLossRate
	}
	links := netsim.LossyRate{Inner: netsim.Synchronous{Delta: p.Delta}, P: rate}
	return runPoWSystemLinks(system, "lossy", "R(BT-ADT_EC, Θ_P) — lossy channels (Theorem 4.7 regime)", links, p.Params)
}

// LossyPsyncParams extends Params with the two knobs of the Theorem 4.7
// phase-boundary sweep: the per-message drop probability and the
// weakly-synchronous stabilization time the surviving messages obey.
type LossyPsyncParams struct {
	Params
	// Rate is the per-message drop probability. Unlike LossyParams.Rate
	// it is taken literally: 0 means reliable channels (the p=0 boundary
	// row), not the default rate.
	Rate float64
	// GSTDeltas is the global stabilization time of the underlying
	// weakly-synchronous links, in units of the (defaulted) δ bound; 0
	// defaults to 8, like RunPoWPsync. Scaling by δ here keeps callers —
	// which usually leave δ to its default — from having to know it.
	GSTDeltas int64
}

// RunPoWLossyPsync runs the named PoW system over weakly-synchronous
// links that additionally drop each message independently with
// probability Rate — the two-dimensional regime of the Theorem 4.7 phase
// boundary. At Rate 0 it degrades to exactly the psync channel model (the
// drop draw is still taken per message, so the delivery schedule differs
// from RunPoWPsync's by the rng stream, but reliability is restored and
// the run converges); at any Rate > 0 dropped updates are never
// retransmitted and the theorem predicts the loss of Eventual Prefix.
// Unknown systems panic; callers gate on SupportsPoWLinks.
func RunPoWLossyPsync(system string, p LossyPsyncParams) Result {
	p.Params = p.Params.withDefaults()
	gstDeltas := p.GSTDeltas
	if gstDeltas <= 0 {
		gstDeltas = 8
	}
	links := netsim.LossyRate{
		Inner: netsim.WeaklySynchronous{GST: gstDeltas * p.Delta, Delta: p.Delta},
		P:     p.Rate,
	}
	return runPoWSystemLinks(system, "lossy+psync", "R(BT-ADT_EC, Θ_P) — lossy weakly-synchronous regime (Theorem 4.7 boundary)", links, p.Params)
}

// PartitionParams extends Params with the partition window.
type PartitionParams struct {
	Params
	// Start and Heal bound the partition interval [Start, Heal) in
	// virtual time; zero values default to [8δ, 24δ).
	Start, Heal int64
	// Split is the cut (processes with id < Split on one side); 0
	// defaults to N/2 — the bisection.
	Split int
}

// RunPoWPartition runs the named PoW system through a transient network
// bisection: cross-cut messages whose delivery would land inside
// [Start, Heal) are deferred until the cut closes (the network
// retransmits on heal), so the two sides fork while partitioned and
// reconverge afterwards without an anti-entropy resync. The result
// carries PartitionHeal so the partition_heal_lag metric can measure the
// reconvergence tail. Unknown systems panic; callers gate on
// SupportsPoWLinks.
func RunPoWPartition(system string, p PartitionParams) Result {
	p.Params = p.Params.withDefaults()
	start, heal := p.Start, p.Heal
	if start <= 0 {
		start = 8 * p.Delta
	}
	if heal <= start {
		heal = start + 16*p.Delta
	}
	split := p.Split
	if split <= 0 {
		split = p.N / 2
	}
	links := netsim.PartitionModel{
		Inner: netsim.Synchronous{Delta: p.Delta},
		Split: history.ProcID(split),
		Start: start,
		Heal:  heal,
		Defer: true,
	}
	res := runPoWSystemLinks(system, "partition", "R(BT-ADT_EC, Θ_P) — healed partition regime", links, p.Params)
	res.PartitionHeal = heal
	return res
}

// JitterParams extends Params with the heavy-tail straggler knobs.
type JitterParams struct {
	Params
	// TailProb is the per-message straggler probability; 0 defaults to
	// 0.05.
	TailProb float64
	// TailFactor multiplies a straggler's delay; 0 defaults to 10.
	TailFactor int64
}

// RunPoWJitter runs the named PoW system over δ-bounded links where a
// TailProb fraction of messages straggle by TailFactor×. Every message
// still arrives, so convergence survives — jitter degrades fork rate and
// finality depth, not the consistency level. Unknown systems panic;
// callers gate on SupportsPoWLinks.
func RunPoWJitter(system string, p JitterParams) Result {
	p.Params = p.Params.withDefaults()
	tail := p.TailProb
	if tail <= 0 {
		tail = 0.05
	}
	links := netsim.Jitter{Inner: netsim.Synchronous{Delta: p.Delta}, TailProb: tail, TailFactor: p.TailFactor}
	return runPoWSystemLinks(system, "jitter", "R(BT-ADT_EC, Θ_P) — heavy-tail jitter regime", links, p.Params)
}

// NormalizeSelfishN is the one process-count normalization of the
// selfish-mining experiment, shared by RunSelfishMining and the façade's
// merit-vector reconstruction so the two can never drift apart: the
// Params default (0 → 8) plus the adversarial minimum of one honest
// miner (n < 2 → 2).
func NormalizeSelfishN(n int) int {
	if n == 0 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}
