package chains

import (
	"testing"

	"blockadt/internal/consistency"
)

// classifyLevel runs the standard checker over a result the way the
// sweep engine does.
func classifyLevel(res Result, n int) consistency.Level {
	return res.Classify(Options(Params{N: n}.withDefaults(), res.History)).Level
}

// TestLossyWitnessesTheorem47 is the executable side of Theorem 4.7
// ("it is impossible to implement Eventual Prefix if even only one
// message sent by a correct process is dropped"): under rate-based loss
// with no retransmission, every run drops messages from correct
// processes and its recorded history violates Eventual Prefix — for both
// PoW systems, across seeds.
func TestLossyWitnessesTheorem47(t *testing.T) {
	for _, sys := range []System{Bitcoin{}, Ethereum{}} {
		for _, seed := range []uint64{1, 42, 12345} {
			res := execScenario(t, Scenario{
				System: sys,
				Links:  LossyLinks,
				Params: ScenarioParams{Params: Params{N: 8, TargetBlocks: 30, Seed: seed}},
			})
			if res.Dropped == 0 {
				t.Fatalf("%s seed=%d: lossy run dropped nothing — no Theorem 4.7 hypothesis", sys.Name(), seed)
			}
			opts := Options(Params{N: 8}.withDefaults(), res.History)
			v := consistency.EventualPrefix(res.History, opts)
			if v.Satisfied {
				t.Fatalf("%s seed=%d: lossy run satisfies Eventual Prefix despite %d drops", sys.Name(), seed, res.Dropped)
			}
			if len(v.Violations) == 0 {
				t.Fatalf("%s seed=%d: Eventual Prefix violated but no witness recorded", sys.Name(), seed)
			}
			if lvl := classifyLevel(res, 8); lvl != consistency.LevelNone {
				t.Fatalf("%s seed=%d: lossy run classified %s, want none", sys.Name(), seed, lvl)
			}
		}
	}
}

// TestPartitionHealsBackToEC: the deferred-delivery partition forks the
// tree while the cut is up, then reconverges — the run classifies EC and
// carries the heal time for the partition_heal_lag metric.
func TestPartitionHealsBackToEC(t *testing.T) {
	for _, sys := range []System{Bitcoin{}, Ethereum{}} {
		for _, seed := range []uint64{1, 42, 12345} {
			res := execScenario(t, Scenario{
				System: sys,
				Links:  PartitionLinks,
				Params: ScenarioParams{Params: Params{N: 8, TargetBlocks: 30, Seed: seed}},
			})
			if res.PartitionHeal == 0 {
				t.Fatalf("%s seed=%d: partition run lost its heal time", sys.Name(), seed)
			}
			if lvl := classifyLevel(res, 8); lvl != consistency.LevelEC {
				t.Fatalf("%s seed=%d: healed partition classified %s, want EC", sys.Name(), seed, lvl)
			}
		}
	}
}

// TestJitterKeepsEC: heavy-tail stragglers alone never break eventual
// consistency — every message still arrives.
func TestJitterKeepsEC(t *testing.T) {
	for _, sys := range []System{Bitcoin{}, Ethereum{}} {
		res := execScenario(t, Scenario{
			System: sys,
			Links:  JitterLinks,
			Params: ScenarioParams{Params: Params{N: 8, TargetBlocks: 30, Seed: 42}},
		})
		if res.Dropped != 0 {
			t.Fatalf("%s: jitter dropped %d messages", sys.Name(), res.Dropped)
		}
		if lvl := classifyLevel(res, 8); lvl != consistency.LevelEC {
			t.Fatalf("%s: jitter run classified %s, want EC", sys.Name(), lvl)
		}
	}
}

// TestPoWLinkPlansCoverAllPoWSystems: the generic driver extends the
// async and psync regimes beyond Bitcoin — Ethereum's GHOST selection
// converges under the DLS-bounded weak synchrony too.
func TestPoWLinkPlansCoverAllPoWSystems(t *testing.T) {
	if !SupportsPoWLinks("Bitcoin") || !SupportsPoWLinks("Ethereum") {
		t.Fatal("PoW link support must cover Bitcoin and Ethereum")
	}
	if SupportsPoWLinks("Hyperledger") || SupportsPoWLinks("RedBelly") {
		t.Fatal("committee systems must not claim PoW link runners")
	}
	p := Params{N: 8, TargetBlocks: 30, Seed: 42}
	async := execScenario(t, Scenario{
		System: Ethereum{},
		Links:  AsyncLinks,
		Params: ScenarioParams{Params: p, MaxDelay: 8},
	})
	if lvl := classifyLevel(async, 8); lvl != consistency.LevelEC {
		t.Fatalf("Ethereum/async classified %s, want EC", lvl)
	}
	psync := execScenario(t, Scenario{
		System: Ethereum{},
		Links:  PsyncLinks,
		Params: ScenarioParams{Params: p},
	})
	if lvl := classifyLevel(psync, 8); lvl != consistency.LevelEC {
		t.Fatalf("Ethereum/psync classified %s, want EC", lvl)
	}
}

// TestNormalizeSelfishN pins the shared clamp both the withholding plan
// and the façade's merit-vector reconstruction use.
func TestNormalizeSelfishN(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 8}, {1, 2}, {2, 2}, {5, 5}} {
		if got := NormalizeSelfishN(tc.in); got != tc.want {
			t.Errorf("NormalizeSelfishN(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// The degenerate requests really run with the normalized counts: no
	// main-chain author can sit outside [0, NormalizeSelfishN(n)).
	for _, n := range []int{0, 1} {
		res := execScenario(t, Scenario{
			Adversary: SelfishWithholding,
			Params:    ScenarioParams{Params: Params{N: n, TargetBlocks: 20, Seed: 42}, Alpha: 0.34},
		})
		stats := res.Adversary
		limit := NormalizeSelfishN(n)
		for proc := range stats.MainChainByProc {
			if int(proc) >= limit {
				t.Fatalf("N=%d run credits process %d, outside the normalized count %d", n, proc, limit)
			}
		}
		if stats.AdversaryMined == 0 && stats.HonestMined == 0 {
			t.Fatalf("N=%d run mined nothing", n)
		}
	}
}
