package chains

import (
	"fmt"
	"strings"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/pbft"
)

// This file discharges the abstraction the consensus-based simulators use:
// where bft.go realizes the "Byzantine-tolerant commit" as an atomic
// consumeToken on Θ_F,k=1 (the paper's own oracle reading), PBFTChain
// commits each block through the actual three-phase PBFT protocol of
// internal/pbft. The resulting histories must — and do, see
// pbftchain_test.go — classify exactly like the oracle-committed ones:
// strongly consistent, fork-free. That equivalence is the executable
// content of the paper's claim that PBFT-based systems implement
// R(BT-ADT_SC, Θ_F,k=1).

// pbftChainNode couples a PBFT replica with a BlockTree replica: writers
// propose one candidate block per slot; every decision is applied, in slot
// order, to the local tree.
type pbftChainNode struct {
	bft     *pbft.Replica
	tree    *netsim.Replica
	params  Params
	writers int
	slot    int
	// decided buffers out-of-order slot decisions until their
	// predecessor slot has been applied.
	decided map[int]pbft.Value
	applied int
	done    *bool
}

// slotValue encodes (proposer, block id) so the decided value names its
// block unambiguously.
func slotValue(slot int, proposer history.ProcID) pbft.Value {
	return fmt.Sprintf("p%02d|%s", proposer, blockName(slot+1, proposer, slot))
}

func parseSlotValue(v pbft.Value) (history.ProcID, blocktree.BlockID) {
	parts := strings.SplitN(v, "|", 2)
	if len(parts) != 2 {
		return 0, ""
	}
	var p int
	fmt.Sscanf(parts[0], "p%d", &p)
	return history.ProcID(p), blocktree.BlockID(parts[1])
}

const slotTimer = "slot"

// OnTimer implements netsim.Handler.
func (n *pbftChainNode) OnTimer(s *netsim.Sim, tag string) {
	switch tag {
	case slotTimer:
		if *n.done {
			return
		}
		slot := n.slot
		n.slot++
		if int(n.tree.ID()) < n.writers {
			n.bft.Propose(s, slot, slotValue(slot, n.tree.ID()))
		} else {
			// Non-writers still run the PBFT replica (they vote) but
			// propose nothing.
			n.bft.Propose(s, slot, "")
		}
		s.TimerAt(n.tree.ID(), s.Now()+3*n.params.Delta, slotTimer)
	case readTimer:
		n.tree.ReadIDs()
		if !*n.done {
			s.TimerAt(n.tree.ID(), s.Now()+n.params.ReadEvery, readTimer)
		}
	default:
		n.bft.OnTimer(s, tag)
	}
}

// OnMessage implements netsim.Handler.
func (n *pbftChainNode) OnMessage(s *netsim.Sim, m netsim.Message) {
	n.bft.OnMessage(s, m)
}

// onDecide applies decided blocks in slot order.
func (n *pbftChainNode) onDecide(s *netsim.Sim, slot int, v pbft.Value) {
	n.decided[slot] = v
	rec := s.Recorder()
	for {
		val, ok := n.decided[n.applied]
		if !ok {
			break
		}
		proposer, block := parseSlotValue(val)
		if block != "" {
			parent := n.tree.Selected().Tip().ID
			// The proposer's replica records the append operation the
			// history criteria quantify over; every replica records
			// its local update.
			if n.tree.ID() == proposer {
				op := rec.Invoke(proposer, history.Label{Kind: history.KindAppend, Block: block})
				rec.Respond(op, history.Label{Kind: history.KindAppend, Block: block, Parent: parent, OK: true})
			}
			b := blocktree.Block{ID: block, Parent: parent, Work: 1, Token: uint64(n.applied + 1), Proposer: int(proposer)}
			if n.tree.Tree().Has(parent) {
				// Apply locally; recorded as an update event.
				n.applyLocal(s, parent, b, proposer)
			}
		}
		n.applied++
	}
}

func (n *pbftChainNode) applyLocal(s *netsim.Sim, parent blocktree.BlockID, b blocktree.Block, origin history.ProcID) {
	// Reuse the replica's update path without a network hop: the PBFT
	// decision certificate *is* the dissemination.
	n.tree.OnMessage(s, netsim.Message{Kind: netsim.UpdateMsg, Parent: parent, Block: b.ID, Origin: origin, Payload: b})
	if origin == n.tree.ID() {
		// Self-origin updates are skipped by OnMessage (they assume
		// CreateAndBroadcast applied them); apply directly.
		n.tree.ApplyDecided(parent, b, origin)
	}
}

// PBFTChain is the consortium chain whose per-slot commit is the real
// three-phase PBFT protocol (writers = Params.Writers, default N/2+). It
// is a System value — experiments and benchmarks run it like a Table 1
// row (deliberately unregistered in the façade: the registered committee
// systems commit through the Θ_F,k=1 oracle reading; this one exists to
// discharge that abstraction).
type PBFTChain struct{}

// Name implements System.
func (PBFTChain) Name() string { return "PBFT-chain" }

// Refinement implements System.
func (PBFTChain) Refinement() string { return "R(BT-ADT_SC, Θ_F,k=1) — commit by real PBFT" }

// Expected implements System.
func (PBFTChain) Expected() consistency.Level { return consistency.LevelSC }

// Run implements System.
func (PBFTChain) Run(p Params) Result {
	p = p.withDefaults()
	writers := p.Writers
	if writers <= 0 || writers > p.N {
		writers = (p.N + 1) / 2
	}
	sim := netsim.New(netsim.Synchronous{Delta: p.Delta}, p.Seed)
	done := false
	reps := map[history.ProcID]*netsim.Replica{}
	nodes := make([]*pbftChainNode, p.N)
	for i := 0; i < p.N; i++ {
		id := history.ProcID(i)
		tree := netsim.NewReplica(id, blocktree.SingleChain{}, sim.Recorder())
		reps[id] = tree
		node := &pbftChainNode{
			tree:    tree,
			params:  p,
			writers: writers,
			decided: map[int]pbft.Value{},
			done:    &done,
		}
		node.bft = pbft.NewReplica(id, pbft.Config{
			N:           p.N,
			ViewTimeout: 8 * p.Delta,
			OnDecide:    func(r *pbft.Replica, slot int, v pbft.Value) { node.onDecide(sim, slot, v) },
		})
		nodes[i] = node
		sim.Register(id, node)
		sim.TimerAt(id, 1, slotTimer)
		sim.TimerAt(id, 2+int64(i)%p.ReadEvery, readTimer)
	}

	var t int64
	step := 3 * p.Delta
	for t = 0; t < p.MaxTicks; t += step {
		sim.Run(t + step)
		blocks, _ := bestReplica(reps)
		if blocks >= p.TargetBlocks {
			break
		}
	}
	done = true
	sim.Run(t + step + 32*p.Delta)
	for _, id := range sim.Procs() {
		reps[id].ReadIDs()
	}

	blocks, forks := bestReplica(reps)
	return Result{
		System:       "PBFT-chain",
		Refinement:   "R(BT-ADT_SC, Θ_F,k=1) — commit by real PBFT",
		OracleName:   "pbft(n=" + fmt.Sprint(p.N) + ")",
		SelectorName: blocktree.SingleChain{}.Name(),
		K:            1,
		History:      sim.Recorder().Finalize(),
		Blocks:       blocks,
		Forks:        forks,
		Ticks:        sim.Now(),
		Delivered:    sim.Delivered,
		Dropped:      sim.Dropped,
		Bytes:        sim.Bytes,
	}
}
