package chains

import (
	"testing"

	"blockadt/internal/consistency"
)

// TestPBFTChainIsStronglyConsistent: committing blocks through the real
// three-phase PBFT (instead of the Θ_F,k=1 oracle abstraction) still yields
// strongly consistent, fork-free histories — the abstraction is sound.
func TestPBFTChainIsStronglyConsistent(t *testing.T) {
	p := Params{N: 4, TargetBlocks: 20, Seed: 9}
	res := PBFTChain{}.Run(p)
	if res.Blocks < p.TargetBlocks {
		t.Fatalf("committed only %d blocks", res.Blocks)
	}
	if res.Forks != 0 {
		t.Fatalf("forks = %d under PBFT commit", res.Forks)
	}
	cls := res.Classify(Options(p.withDefaults(), res.History))
	if cls.Level != consistency.LevelSC {
		t.Fatalf("PBFT chain classified %s, want SC\nSC: %sEC: %s", cls.Level, cls.SC, cls.EC)
	}
}

// TestPBFTChainMatchesOracleAbstraction: the oracle-committed Hyperledger
// run and the PBFT-committed run classify identically — the executable
// justification for modelling "Byzantine commit" as consumeToken on
// Θ_F,k=1.
func TestPBFTChainMatchesOracleAbstraction(t *testing.T) {
	p := Params{N: 4, TargetBlocks: 15, Seed: 10}
	oracleRun := Hyperledger{}.Run(p)
	pbftRun := PBFTChain{}.Run(p)

	oracleCls := oracleRun.Classify(Options(p.withDefaults(), oracleRun.History))
	pbftCls := pbftRun.Classify(Options(p.withDefaults(), pbftRun.History))
	if oracleCls.Level != pbftCls.Level {
		t.Fatalf("oracle-committed level %s ≠ PBFT-committed level %s", oracleCls.Level, pbftCls.Level)
	}
	if oracleRun.Forks != 0 || pbftRun.Forks != 0 {
		t.Fatalf("forks: oracle %d, pbft %d", oracleRun.Forks, pbftRun.Forks)
	}
	// Both respect k=1 fork coherence.
	for _, res := range []Result{oracleRun, pbftRun} {
		if v := consistency.KForkCoherence(res.History, 1, Options(p.withDefaults(), res.History)); !v.Satisfied {
			t.Fatalf("%s: %s", res.System, v)
		}
	}
}

// TestPBFTChainConsortium: only writers' blocks are committed.
func TestPBFTChainConsortium(t *testing.T) {
	p := Params{N: 7, Writers: 3, TargetBlocks: 12, Seed: 11}
	res := PBFTChain{}.Run(p)
	for _, a := range res.History.SuccessfulAppends() {
		if int(a.Op.Proc) >= 3 {
			t.Fatalf("non-writer p%d appended %s", a.Op.Proc, a.Block)
		}
	}
	if res.Blocks < p.TargetBlocks {
		t.Fatalf("committed only %d blocks", res.Blocks)
	}
}

// TestPBFTChainDeterministic: same seed, same run.
func TestPBFTChainDeterministic(t *testing.T) {
	p := Params{N: 4, TargetBlocks: 10, Seed: 12}
	a := PBFTChain{}.Run(p)
	b := PBFTChain{}.Run(p)
	if a.Blocks != b.Blocks || a.Ticks != b.Ticks || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
