package chains

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

// powNode is a proof-of-work miner: at every mining tick it invokes
// getToken on the tip of its locally selected chain (the PoW attempt,
// Section 5.1); a granted token is consumed (always possible with Θ_P) and
// the resulting valid block is flooded with the LRC broadcast.
type powNode struct {
	rep     *netsim.Replica
	orc     *oracle.Oracle
	merit   int
	params  Params
	counter int
	names   nameMemo
	done    *bool
}

const (
	mineTimer = "mine"
	readTimer = "read"
)

// OnTimer implements netsim.Handler.
func (n *powNode) OnTimer(s *netsim.Sim, tag string) {
	switch tag {
	case mineTimer:
		if !*n.done {
			n.mine(s)
			s.TimerAt(n.rep.ID(), s.Now()+n.params.MineInterval, mineTimer)
		}
	case readTimer:
		n.rep.ReadIDs()
		if !*n.done {
			s.TimerAt(n.rep.ID(), s.Now()+n.params.ReadEvery, readTimer)
		}
	}
}

// OnMessage implements netsim.Handler.
func (n *powNode) OnMessage(s *netsim.Sim, m netsim.Message) {
	n.rep.OnMessage(s, m)
}

func (n *powNode) mine(s *netsim.Sim) {
	parent := n.rep.SelectedTip()
	candidate := n.names.get(parent.Height+1, n.rep.ID(), n.counter)
	tok, ok := n.orc.GetToken(n.merit, parent.ID, candidate)
	if !ok {
		return
	}
	n.counter++
	rec := s.Recorder()
	op := rec.Invoke(n.rep.ID(), history.Label{Kind: history.KindAppend, Block: candidate})
	_, inserted, err := n.orc.ConsumeToken(tok)
	okAppend := err == nil && inserted
	rec.Respond(op, history.Label{Kind: history.KindAppend, Block: candidate, Parent: parent.ID, OK: okAppend})
	if !okAppend {
		return
	}
	b := blocktree.Block{ID: candidate, Parent: parent.ID, Work: 1, Token: tok.ID, Proposer: n.merit}
	n.rep.CreateAndBroadcast(s, parent.ID, b)
}

// runPoW drives a permissionless PoW network with the given selector over
// synchronous links and returns its result.
func runPoW(name, refinement string, sel blocktree.Selector, p Params) Result {
	return runPoWTopo(name, refinement, sel, nil, nil, p)
}

// runPoWTopo is runPoW with an explicit link model (nil = synchronous with
// bound Delta) and dissemination topology (nil = complete-graph broadcast;
// non-nil switches replicas to Gossiper flooding over the topology). The
// asynchronous variants back the Section 4.2 open-issue experiments:
// Eventual Prefix under unbounded delay.
func runPoWTopo(name, refinement string, sel blocktree.Selector, links netsim.LinkModel, topo netsim.Topology, p Params) Result {
	p = p.withDefaults()
	if links == nil {
		links = netsim.Synchronous{Delta: p.Delta}
	}
	sim := netsim.New(links, p.Seed)
	orc := newProdigal(p)
	// The history size is bounded by the run shape: per block roughly one
	// append plus a (send, receive, update) record fan-out per replica, plus
	// the periodic reads. Reserving up front keeps the recorder's append
	// path reallocation-free.
	ops := p.TargetBlocks*p.N*5 + p.N*16
	sim.Recorder().Reserve(2*ops, ops)
	done := false
	reps := map[history.ProcID]*netsim.Replica{}
	for i := 0; i < p.N; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplicaCap(id, sel, sim.Recorder(), p.TargetBlocks+p.TargetBlocks/2)
		if topo != nil {
			rep.EnableGossip(topo)
		}
		reps[id] = rep
		node := &powNode{rep: rep, orc: orc, merit: i, params: p, done: &done}
		sim.Register(id, node)
		sim.TimerAt(id, 1+int64(i)%p.MineInterval, mineTimer)
		sim.TimerAt(id, 2+int64(i)%p.ReadEvery, readTimer)
	}

	// Run in slices, stopping the mining phase once the target chain
	// length is reached, then drain in-flight messages and take a final
	// round of reads so the history exhibits convergence.
	var t int64
	for t = 0; t < p.MaxTicks; t += 64 {
		sim.Run(t + 64)
		blocks, _ := bestReplica(reps)
		if blocks >= p.TargetBlocks {
			break
		}
	}
	done = true
	// Drain every in-flight message before the final convergence reads.
	// A fixed window (the old `sim.Run(t + 64 + 16*p.Delta)`) is wrong
	// under heavy-tail links: a Jitter straggler or an Asynchronous tail
	// can exceed any constant multiple of Delta, leaving deliveries
	// pending when the reads run — a harness artifact the consistency
	// checkers then misattribute to the model. RunToIdle stops at the last
	// real delivery; the cap only bounds runaway schedules.
	sim.RunToIdle(t + 64 + p.MaxTicks)
	for _, id := range sim.Procs() {
		reps[id].ReadIDs()
	}

	blocks, forks := bestReplica(reps)
	return Result{
		System:       name,
		Refinement:   refinement,
		OracleName:   orc.Name(),
		SelectorName: sel.Name(),
		K:            oracle.Unbounded,
		History:      sim.Recorder().Finalize(),
		Blocks:       blocks,
		Forks:        forks,
		Ticks:        sim.Now(),
		Delivered:    sim.Delivered,
		Dropped:      sim.Dropped,
		Bytes:        sim.Bytes,
	}
}

// Bitcoin is Section 5.1: permissionless, merits are hashing power, the
// getToken operation is proof-of-work, consumeToken returns true for all
// valid blocks (no bound on consumed tokens ⇒ prodigal oracle Θ_P), and f
// selects the chain that required the most work. Bitcoin implements
// R(BT-ADT_EC, Θ_P): Eventual consistency only.
type Bitcoin struct{}

// Name implements System.
func (Bitcoin) Name() string { return "Bitcoin" }

// Refinement implements System.
func (Bitcoin) Refinement() string { return "R(BT-ADT_EC, Θ_P)" }

// Expected implements System.
func (Bitcoin) Expected() consistency.Level { return consistency.LevelEC }

// Run implements System.
func (Bitcoin) Run(p Params) Result {
	return runPoW("Bitcoin", Bitcoin{}.Refinement(), blocktree.HeaviestChain{}, p)
}

// Ethereum is Section 5.2: as Bitcoin but the merit parameter models
// memory-bound work and f is implemented through the GHOST algorithm.
// Ethereum implements R(BT-ADT_EC, Θ_P).
type Ethereum struct{}

// Name implements System.
func (Ethereum) Name() string { return "Ethereum" }

// Refinement implements System.
func (Ethereum) Refinement() string { return "R(BT-ADT_EC, Θ_P)" }

// Expected implements System.
func (Ethereum) Expected() consistency.Level { return consistency.LevelEC }

// Run implements System.
func (Ethereum) Run(p Params) Result {
	return runPoW("Ethereum", Ethereum{}.Refinement(), blocktree.GHOST{}, p)
}
