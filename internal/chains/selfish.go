package chains

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

// This file implements the selfish-mining strategy (Eyal & Sirer) inside
// the framework: an adversarial miner that withholds its proof-of-work
// blocks and publishes them reactively to orphan honest work. The paper
// leaves fairness as future work but notes the merit parameter supports
// defining it (and cites FruitChain, whose purpose is exactly to defeat
// this strategy); the experiment shows the BT-ADT machinery *measuring*
// the attack: the realized block distribution of the selfish run deviates
// from the merit entitlement (chain quality loss), while the criteria
// checkers still classify the run as eventually consistent — fairness and
// consistency are orthogonal, which is why the paper needs a separate
// fairness notion.
//
// Strategy state machine (lead = private tip height − public tip height):
//
//	adversary finds a block   → extend the private branch, withhold;
//	honest block arrives:
//	  lead was 0  → adopt the honest chain (discard private work);
//	  lead was 1  → publish the private branch (race, here won by the
//	                adversary's broadcast reaching everyone within δ);
//	  lead was 2  → publish everything (overrides the honest block);
//	  lead  > 2   → publish enough blocks to stay one ahead.
type selfishMiner struct {
	rep      *netsim.Replica // public view (honest chain as received)
	private  *blocktree.Tree // public view + withheld private branch
	orc      *oracle.Oracle
	merit    int
	params   Params
	counter  int
	withheld []blocktree.Block // private blocks not yet published
	done     *bool
}

func (m *selfishMiner) publicTip() blocktree.Block {
	return blocktree.HeaviestChain{}.Select(m.rep.Tree()).Tip()
}

func (m *selfishMiner) privateTip() blocktree.Block {
	return blocktree.HeaviestChain{}.Select(m.private).Tip()
}

// OnTimer implements netsim.Handler.
func (m *selfishMiner) OnTimer(s *netsim.Sim, tag string) {
	if tag != mineTimer || *m.done {
		return
	}
	defer s.TimerAt(m.rep.ID(), s.Now()+m.params.MineInterval, mineTimer)

	parent := m.privateTip()
	// Adversary blocks carry a "z" marker that wins the deterministic
	// lexicographic tie-break of the selectors: this models γ = 1 of the
	// Eyal–Sirer analysis (every honest miner that sees both blocks of a
	// race mines on the adversary's), the strategy's best case.
	candidate := blocktree.BlockID(fmt.Sprintf("b%04d-z%02d-%04d", parent.Height+1, m.rep.ID(), m.counter))
	tok, ok := m.orc.GetToken(m.merit, parent.ID, candidate)
	if !ok {
		return
	}
	m.counter++
	rec := s.Recorder()
	op := rec.Invoke(m.rep.ID(), history.Label{Kind: history.KindAppend, Block: candidate})
	_, inserted, err := m.orc.ConsumeToken(tok)
	okAppend := err == nil && inserted
	rec.Respond(op, history.Label{Kind: history.KindAppend, Block: candidate, Parent: parent.ID, OK: okAppend})
	if !okAppend {
		return
	}
	b := blocktree.Block{ID: candidate, Parent: parent.ID, Work: 1, Token: tok.ID, Proposer: m.merit}
	if err := m.private.Insert(b); err != nil {
		return
	}
	m.withheld = append(m.withheld, b)
}

// OnMessage implements netsim.Handler: honest blocks update the public
// view and trigger the reactive publication policy.
func (m *selfishMiner) OnMessage(s *netsim.Sim, msg netsim.Message) {
	if msg.Kind != netsim.UpdateMsg {
		return
	}
	b, ok := msg.Payload.(blocktree.Block)
	if !ok {
		return
	}
	if msg.Origin == m.rep.ID() {
		m.rep.OnMessage(s, msg) // own published block echoing back
		return
	}
	leadBefore := m.privateTip().Height - m.publicTip().Height
	m.rep.OnMessage(s, msg)
	if m.private.Has(b.Parent) && !m.private.Has(b.ID) {
		bb := b
		m.private.Insert(bb)
	}

	switch {
	case leadBefore <= 0:
		// Nothing withheld worth defending: adopt the honest chain.
		m.withheld = nil
		m.resyncPrivate()
	case leadBefore == 1, leadBefore == 2:
		m.publish(s, len(m.withheld)) // race / override
	default:
		m.publish(s, 1) // stay ahead, reveal one
	}
}

// resyncPrivate rebuilds the private tree from the public view (discarding
// abandoned withheld work). The clone matters: Replica.Tree() exposes the
// live tree, and the private branch must not leak into the public view.
func (m *selfishMiner) resyncPrivate() {
	m.private = m.rep.Tree().Clone()
}

// publish releases the first n withheld blocks through the regular update
// broadcast.
func (m *selfishMiner) publish(s *netsim.Sim, n int) {
	if n > len(m.withheld) {
		n = len(m.withheld)
	}
	for _, b := range m.withheld[:n] {
		m.rep.CreateAndBroadcast(s, b.Parent, b)
	}
	m.withheld = m.withheld[n:]
}

// OnTimerRead is unused; reads come from honest observers.

// runSelfishMining is the SelfishWithholding plan's driver: N-1 honest
// miners against one selfish miner (process 0) holding fraction
// Params.Alpha of the total mining power. The census lands on
// Result.Adversary.
func runSelfishMining(sc Scenario) Result {
	p, alpha := sc.Params.Params, sc.Params.Alpha
	p.N = NormalizeSelfishN(p.N)
	p = p.withDefaults()
	// Merit tapes: adversary gets alpha of the aggregate attempt rate.
	total := p.TokenProb * float64(p.N)
	merits := make([]float64, p.N)
	merits[0] = total * alpha
	for i := 1; i < p.N; i++ {
		merits[i] = total * (1 - alpha) / float64(p.N-1)
	}
	p.Merits = merits

	sim := netsim.New(netsim.Synchronous{Delta: p.Delta}, p.Seed)
	orc := newProdigal(p)
	done := false
	reps := map[history.ProcID]*netsim.Replica{}

	adv := &selfishMiner{
		rep:    netsim.NewReplica(0, blocktree.HeaviestChain{}, sim.Recorder()),
		orc:    orc,
		merit:  0,
		params: p,
		done:   &done,
	}
	adv.private = adv.rep.Tree().Clone()
	reps[0] = adv.rep
	sim.Register(0, adv)
	sim.TimerAt(0, 1, mineTimer)

	for i := 1; i < p.N; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplica(id, blocktree.HeaviestChain{}, sim.Recorder())
		reps[id] = rep
		node := &powNode{rep: rep, orc: orc, merit: i, params: p, done: &done}
		sim.Register(id, node)
		sim.TimerAt(id, 1+int64(i)%p.MineInterval, mineTimer)
		sim.TimerAt(id, 2+int64(i)%p.ReadEvery, readTimer)
	}

	var t int64
	for t = 0; t < p.MaxTicks; t += 64 {
		sim.Run(t + 64)
		blocks, _ := bestReplica(reps)
		if blocks >= p.TargetBlocks {
			break
		}
	}
	done = true
	// Final reveal: the adversary publishes its remaining lead so the
	// run ends in a quiescent state.
	adv.publish(sim, len(adv.withheld))
	sim.Run(t + 64 + 16*p.Delta)
	for _, id := range sim.Procs() {
		reps[id].ReadIDs()
	}

	// Count main-chain authorship at an honest replica.
	final := blocktree.HeaviestChain{}.Select(reps[1].Tree())
	advBlocks, honBlocks := 0, 0
	byProc := map[history.ProcID]int{}
	for _, b := range final[1:] {
		byProc[history.ProcID(b.Proposer)]++
		if b.Proposer == 0 {
			advBlocks++
		} else {
			honBlocks++
		}
	}
	stats := &AdversaryStats{
		AdversaryMerit:  alpha,
		MainChainByProc: byProc,
	}
	h := sim.Recorder().Finalize()
	mined := map[history.ProcID]int{}
	for _, a := range h.SuccessfulAppends() {
		mined[a.Op.Proc]++
	}
	for pID, n := range mined {
		if pID == 0 {
			stats.AdversaryMined += n
		} else {
			stats.HonestMined += n
		}
	}
	mainLen := len(final) - 1
	if mainLen > 0 {
		stats.AdversaryShare = float64(advBlocks) / float64(mainLen)
		stats.HonestShare = float64(honBlocks) / float64(mainLen)
	}
	stats.Orphaned = stats.AdversaryMined + stats.HonestMined - mainLen
	blocks, forks := bestReplica(reps)
	return Result{
		System:       fmt.Sprintf("Bitcoin+selfish(α=%.2f)", alpha),
		Refinement:   "R(BT-ADT_EC, Θ_P) under adversarial withholding",
		OracleName:   orc.Name(),
		SelectorName: "heaviest",
		K:            oracle.Unbounded,
		History:      h,
		Blocks:       blocks,
		Forks:        forks,
		Ticks:        sim.Now(),
		Delivered:    sim.Delivered,
		Dropped:      sim.Dropped,
		Bytes:        sim.Bytes,
		Adversary:    stats,
	}
}
