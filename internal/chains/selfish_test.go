package chains

import (
	"testing"

	"blockadt/internal/consistency"
	"blockadt/internal/fairness"
)

// runSelfish executes the withholding plan through the unified executor.
func runSelfish(t *testing.T, p Params, alpha float64) Result {
	t.Helper()
	return execScenario(t, Scenario{
		Adversary: SelfishWithholding,
		Params:    ScenarioParams{Params: p, Alpha: alpha},
	})
}

// TestSelfishMiningDegradesChainQuality: a withholding adversary with a
// third of the power orphans honest work, so the honest miners' realized
// main-chain share falls below their merit entitlement — the chain-quality
// loss the fairness analyzer is built to expose.
func TestSelfishMiningDegradesChainQuality(t *testing.T) {
	p := Params{N: 6, TargetBlocks: 120, Seed: 31}
	stats := runSelfish(t, p, 0.34).Adversary

	if stats.AdversaryMined == 0 || stats.HonestMined == 0 {
		t.Fatalf("degenerate run: adv=%d honest=%d", stats.AdversaryMined, stats.HonestMined)
	}
	if stats.Orphaned == 0 {
		t.Fatal("no orphans: the withholding strategy never bit")
	}
	honestEntitled := 1 - stats.AdversaryMerit
	if stats.HonestShare >= honestEntitled {
		t.Fatalf("honest share %.3f ≥ entitlement %.3f — no chain-quality loss", stats.HonestShare, honestEntitled)
	}
	t.Logf("α=%.2f: adversary main-chain share %.3f (mined %d), honest %.3f (mined %d), orphaned %d",
		stats.AdversaryMerit, stats.AdversaryShare, stats.AdversaryMined,
		stats.HonestShare, stats.HonestMined, stats.Orphaned)
}

// TestSelfishMiningProfitability: the adversary's main-chain share exceeds
// its merit — the Eyal–Sirer profitability effect (here amplified by the
// synchronous broadcast winning every race for the adversary, the γ=1
// best case).
func TestSelfishMiningProfitability(t *testing.T) {
	p := Params{N: 6, TargetBlocks: 120, Seed: 31}
	stats := runSelfish(t, p, 0.34).Adversary
	if stats.AdversaryShare <= stats.AdversaryMerit {
		t.Fatalf("adversary share %.3f ≤ merit %.3f — strategy unprofitable in the γ=1 regime",
			stats.AdversaryShare, stats.AdversaryMerit)
	}
}

// TestSelfishMiningFlaggedUnfair: the fairness analyzer (realized vs
// entitled over *mined* blocks that reached the chain) reports a
// significant deviation, while an honest-only control run stays fair.
func TestSelfishMiningFlaggedUnfair(t *testing.T) {
	p := Params{N: 6, TargetBlocks: 120, Seed: 31}
	res := runSelfish(t, p, 0.34)
	stats := res.Adversary

	// Chain quality: main-chain authorship against merit entitlement.
	merits := adversaryMeritVector(p, stats.AdversaryMerit)
	rep := fairness.FromCounts(stats.MainChainByProc, merits)
	// Production fairness is untouched (the tapes are fair), so the gap
	// between the two reports isolates the withholding attack.
	prod := fairness.Analyze(res.History, merits)
	if rep.TVD <= prod.TVD {
		t.Fatalf("chain-quality TVD %.3f ≤ production TVD %.3f — attack invisible", rep.TVD, prod.TVD)
	}
	if rep.Fair(0.1) {
		t.Fatalf("selfish run judged fair: TVD %.3f", rep.TVD)
	}
	t.Logf("fairness TVD: chain quality %.3f vs production %.3f", rep.TVD, prod.TVD)
}

// adversaryMeritVector reconstructs the merit distribution the
// withholding plans build: the adversary at process 0 holds alpha of the
// aggregate attempt rate, the honest miners split the rest equally.
func adversaryMeritVector(p Params, alpha float64) []float64 {
	p = p.withDefaults()
	total := p.TokenProb * float64(p.N)
	merits := make([]float64, p.N)
	merits[0] = total * alpha
	for i := 1; i < p.N; i++ {
		merits[i] = total * (1 - alpha) / float64(p.N-1)
	}
	return merits
}

// TestSelfishMiningStillEventuallyConsistent: withholding hurts fairness,
// not consistency — the run still classifies EC (consistency criteria and
// fairness are orthogonal dimensions, which is why the paper lists
// fairness as separate future work).
func TestSelfishMiningStillEventuallyConsistent(t *testing.T) {
	p := Params{N: 6, TargetBlocks: 80, Seed: 31}
	res := runSelfish(t, p, 0.3)
	opts := Options(p.withDefaults(), res.History)
	ec := consistency.CheckEC(res.History, opts)
	if !ec.Satisfied() {
		t.Fatalf("selfish run lost eventual consistency:\n%s", ec)
	}
}
