// Package consensus implements the Consensus abstraction of Definition 4.1
// of "Blockchain Abstract Data Type" (Anceaume et al.) and the paper's
// Protocol A (Figure 11), which solves Consensus wait-free from the frugal
// oracle with k = 1 — the constructive half of Theorem 4.2 (Θ_F,k=1 has
// consensus number ∞). A Compare&Swap-based implementation is provided as
// the classical baseline the reduction is compared against.
//
// The Consensus variant used is the blockchain one: the Validity property
// requires the decided block to satisfy the validity predicate P ([11]'s
// formulation — a valid block can be decided even if proposed by a faulty
// process). In the oracle construction validity holds by construction,
// because only oracle-validated blocks can be consumed.
package consensus

import (
	"errors"
	"fmt"

	"blockadt/internal/oracle"
	"blockadt/internal/registers"
)

// Value is a proposed/decided value (a block id in this reproduction).
type Value = oracle.ObjectID

// Consensus is the one-shot consensus object interface: every correct
// process calls Propose once with its input and obtains the decided value.
// Implementations must satisfy Termination, Integrity, Agreement and
// Validity (Definition 4.1).
type Consensus interface {
	// Propose submits the calling process's value and returns the
	// decision. merit identifies the invoking process to the oracle;
	// implementations that do not use an oracle ignore it.
	Propose(merit int, v Value) (Value, error)
}

// ErrNoDecision reports that the implementation failed to decide, which
// violates Termination and is only possible under misconfiguration (e.g. an
// oracle whose tape never grants a token with probability 0).
var ErrNoDecision = errors.New("consensus: no decision reached")

// FromFrugal is Protocol A (Figure 11): consensus from Θ_F,k=1.
//
//	upon propose(b):
//	  while validBlock = ⊥: validBlock ← getToken(b0, b)
//	  validBlockSet ← consumeToken(validBlock)  // |set| = k = 1
//	  decide(validBlockSet)
//
// The first process to consume installs its block into K[b0]; every
// consumeToken thereafter returns the same singleton set, so all processes
// decide identically (Agreement), with a value some process proposed and
// the oracle validated (Validity).
type FromFrugal struct {
	oracle *oracle.Oracle
	base   oracle.ObjectID
	// MaxAttempts bounds the getToken loop for defensive termination in
	// tests; 0 means unbounded (the paper's wait-free loop, which
	// terminates with probability 1 for pα > 0).
	MaxAttempts int
}

// NewFromFrugal returns a consensus instance anchored at the object base
// (the paper uses b0). The oracle must be frugal with k = 1; any other
// oracle makes Agreement unsound, so the constructor rejects it.
func NewFromFrugal(o *oracle.Oracle, base oracle.ObjectID) (*FromFrugal, error) {
	if o.K() != 1 {
		return nil, fmt.Errorf("consensus: FromFrugal requires Θ_F,k=1, got %s", o.Name())
	}
	return &FromFrugal{oracle: o, base: base}, nil
}

// Propose implements Consensus by Protocol A.
func (c *FromFrugal) Propose(merit int, v Value) (Value, error) {
	for attempt := 0; c.MaxAttempts == 0 || attempt < c.MaxAttempts; attempt++ {
		tok, ok := c.oracle.GetToken(merit, c.base, v)
		if !ok {
			continue
		}
		set, _, err := c.oracle.ConsumeToken(tok)
		if err != nil {
			return "", err
		}
		if len(set) != 1 {
			return "", fmt.Errorf("consensus: frugal k=1 oracle returned set of size %d", len(set))
		}
		return set[0], nil
	}
	return "", ErrNoDecision
}

// FromCAS is the textbook consensus from a Compare&Swap object, provided as
// the baseline object of consensus number ∞ the reduction chain of
// Theorem 4.1/4.2 passes through: the first CompareAndSwap("", v) wins.
type FromCAS struct {
	cas *registers.CAS
}

// NewFromCAS returns a consensus instance over a fresh CAS object.
func NewFromCAS() *FromCAS { return &FromCAS{cas: &registers.CAS{}} }

// Propose implements Consensus: decide the first value installed.
func (c *FromCAS) Propose(_ int, v Value) (Value, error) {
	if v == "" {
		return "", errors.New("consensus: empty value is reserved")
	}
	prev := c.cas.CompareAndSwap("", string(v))
	if prev == "" {
		return v, nil
	}
	return Value(prev), nil
}

// FromCT is consensus built from the consumeToken shared object through the
// CAS reduction of Figure 10, composing Theorem 4.1 with the CAS baseline:
// CT → CAS → consensus. It demonstrates the full reduction chain
// executably.
type FromCT struct {
	cas  *registers.CASFromCT
	base string
}

// NewFromCT returns a consensus instance over a fresh consumeToken object
// anchored at base.
func NewFromCT(base string) *FromCT {
	return &FromCT{cas: registers.NewCASFromCT(registers.NewConsumeTokenK1()), base: base}
}

// Propose implements Consensus via compare&swap(K[h], {}, v).
func (c *FromCT) Propose(_ int, v Value) (Value, error) {
	if v == "" {
		return "", errors.New("consensus: empty value is reserved")
	}
	prev := c.cas.CompareAndSwapEmpty(c.base, string(v))
	if prev == "" {
		return v, nil
	}
	return Value(prev), nil
}
