package consensus

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"blockadt/internal/oracle"
)

// runConsensus drives n concurrent proposers through a Consensus instance
// and verifies Termination, Integrity, Agreement and Validity
// (Definition 4.1). valid reports membership in B′; proposals are generated
// per process.
func runConsensus(t *testing.T, c Consensus, n int, propose func(i int) Value, valid func(Value) bool) Value {
	t.Helper()
	var wg sync.WaitGroup
	decisions := make([]Value, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i], errs[i] = c.Propose(i, propose(i))
		}(i)
	}
	wg.Wait()
	proposed := map[Value]bool{}
	for i := 0; i < n; i++ {
		proposed[propose(i)] = true
	}
	for i := 0; i < n; i++ {
		// Termination: every correct process decides.
		if errs[i] != nil {
			t.Fatalf("process %d did not decide: %v", i, errs[i])
		}
		// Agreement: all decide the same value.
		if decisions[i] != decisions[0] {
			t.Fatalf("disagreement: p%d=%q vs p0=%q", i, decisions[i], decisions[0])
		}
		// Validity: the decided value is valid (satisfies P); here every
		// proposed value is valid, so decided ∈ proposed.
		if !valid(decisions[i]) || !proposed[decisions[i]] {
			t.Fatalf("invalid decision %q", decisions[i])
		}
	}
	return decisions[0]
}

// TestTheorem42FrugalConsensus is the executable Theorem 4.2: Protocol A
// (Figure 11) solves Consensus from Θ_F,k=1 for any number of processes,
// i.e. the frugal oracle with k = 1 has consensus number ∞.
func TestTheorem42FrugalConsensus(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			merits := make([]float64, n)
			for i := range merits {
				merits[i] = 1
			}
			o := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: uint64(n)})
			c, err := NewFromFrugal(o, "b0")
			if err != nil {
				t.Fatal(err)
			}
			runConsensus(t, c, n,
				func(i int) Value { return Value(fmt.Sprintf("blk-%d", i)) },
				func(Value) bool { return true })
		})
	}
}

// TestFrugalConsensusWithLossyTapes: Protocol A's getToken loop tolerates
// tapes that grant with low probability — the wait-free loop of Figure 11.
func TestFrugalConsensusWithLossyTapes(t *testing.T) {
	const n = 8
	merits := make([]float64, n)
	for i := range merits {
		merits[i] = 0.05
	}
	o := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: 99})
	c, err := NewFromFrugal(o, "b0")
	if err != nil {
		t.Fatal(err)
	}
	runConsensus(t, c, n,
		func(i int) Value { return Value(fmt.Sprintf("v%d", i)) },
		func(Value) bool { return true })
}

// TestFrugalConsensusCrashTolerance: crashed processes (which simply never
// propose) do not block the others — wait-freedom.
func TestFrugalConsensusCrashTolerance(t *testing.T) {
	const n, alive = 8, 3
	merits := make([]float64, n)
	for i := range merits {
		merits[i] = 1
	}
	o := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: 5})
	c, err := NewFromFrugal(o, "b0")
	if err != nil {
		t.Fatal(err)
	}
	// Only `alive` of n processes participate; they must still decide.
	runConsensus(t, c, alive,
		func(i int) Value { return Value(fmt.Sprintf("v%d", i)) },
		func(Value) bool { return true })
}

func TestFromFrugalRejectsWrongOracle(t *testing.T) {
	if _, err := NewFromFrugal(oracle.NewProdigal(0, 1), "b0"); err == nil {
		t.Fatal("prodigal oracle accepted")
	}
	if _, err := NewFromFrugal(oracle.NewFrugal(2, 0, 1), "b0"); err == nil {
		t.Fatal("k=2 oracle accepted")
	}
}

func TestFromFrugalMaxAttempts(t *testing.T) {
	o := oracle.New(oracle.Config{K: 1, Merits: []float64{0}, Seed: 1})
	c, err := NewFromFrugal(o, "b0")
	if err != nil {
		t.Fatal(err)
	}
	c.MaxAttempts = 10
	if _, err := c.Propose(0, "v"); err != ErrNoDecision {
		t.Fatalf("err = %v, want ErrNoDecision", err)
	}
}

func TestFromCASConsensus(t *testing.T) {
	c := NewFromCAS()
	runConsensus(t, c, 16,
		func(i int) Value { return Value(fmt.Sprintf("c%d", i)) },
		func(Value) bool { return true })
	if _, err := c.Propose(0, ""); err == nil {
		t.Fatal("empty value accepted")
	}
}

func TestFromCTConsensus(t *testing.T) {
	c := NewFromCT("b0")
	runConsensus(t, c, 16,
		func(i int) Value { return Value(fmt.Sprintf("t%d", i)) },
		func(Value) bool { return true })
	if _, err := c.Propose(0, ""); err == nil {
		t.Fatal("empty value accepted")
	}
}

// TestConsensusIntegritySequentialRepeat: proposing again after a decision
// returns the same decision (the object is one-shot; no process decides
// twice differently).
func TestConsensusIntegritySequentialRepeat(t *testing.T) {
	o := oracle.New(oracle.Config{K: 1, Merits: []float64{1, 1}, Seed: 3})
	c, _ := NewFromFrugal(o, "b0")
	d1, err := c.Propose(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Propose(1, "b")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("decisions differ: %q vs %q", d1, d2)
	}
	if d1 != "a" {
		t.Fatalf("decision = %q, want the first proposal a", d1)
	}
}

// TestProperty_AgreementUnderRandomSchedules: for random proposer counts
// and seeds, all implementations agree internally and decide a proposed
// value.
func TestProperty_AgreementUnderRandomSchedules(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		merits := make([]float64, n)
		for i := range merits {
			merits[i] = 1
		}
		o := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: seed})
		c, err := NewFromFrugal(o, "root")
		if err != nil {
			return false
		}
		var wg sync.WaitGroup
		decisions := make([]Value, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				decisions[i], _ = c.Propose(i, Value(fmt.Sprintf("p%d", i)))
			}(i)
		}
		wg.Wait()
		for i := 1; i < n; i++ {
			if decisions[i] != decisions[0] {
				return false
			}
		}
		return decisions[0] != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
