package consistency

import (
	"sort"

	"blockadt/internal/history"
)

// msgKey identifies a propagated update (bg, b_origin) as in Definition 4.3.
type msgKey struct {
	parent history.BlockRef
	block  history.BlockRef
}

// procUniverse returns the correct-process universe: Options.Procs if set,
// otherwise every process that produced an event.
func procUniverse(h *history.History, opts Options) []history.ProcID {
	if opts.Procs != nil {
		return opts.Procs
	}
	seen := map[history.ProcID]bool{}
	for _, e := range h.Events() {
		seen[e.Proc] = true
	}
	out := make([]history.ProcID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UpdateAgreement checks the three Update Agreement properties of
// Definition 4.3 on a replicated-object history:
//
//	R1. every update_i(bg, b_i) of a locally generated block has a
//	    matching send_i(bg, b_i);
//	R2. every update_i(bg, b_j) of a remote block (j ≠ i) is preceded at
//	    i by a receive_i(bg, b_j);
//	R3. for every update_i(bg, b_j), every correct process k has a
//	    receive_k(bg, b_j) somewhere in the history.
//
// Theorem 4.6 makes Update Agreement necessary for BT Eventual Consistency;
// the experiments use this checker on both compliant and message-dropping
// runs.
func UpdateAgreement(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	procs := procUniverse(h, opts)

	sends := map[history.ProcID]map[msgKey]int64{}
	receives := map[history.ProcID]map[msgKey]int64{}
	put := func(m map[history.ProcID]map[msgKey]int64, p history.ProcID, k msgKey, t int64) {
		inner, ok := m[p]
		if !ok {
			inner = map[msgKey]int64{}
			m[p] = inner
		}
		if old, ok := inner[k]; !ok || t < old {
			inner[k] = t
		}
	}
	var updates []history.Op
	for _, op := range h.Ops() {
		k := msgKey{parent: op.Label.Parent, block: op.Label.Block}
		switch op.Label.Kind {
		case history.KindSend:
			put(sends, op.Proc, k, op.InvTime)
		case history.KindReceive:
			put(receives, op.Proc, k, op.InvTime)
		case history.KindUpdate:
			updates = append(updates, op)
		}
	}

	checked := 0
	for _, u := range updates {
		k := msgKey{parent: u.Label.Parent, block: u.Label.Block}
		if u.Label.Origin == u.Proc {
			// R1: locally generated block must be sent.
			checked++
			if _, ok := sends[u.Proc][k]; !ok {
				sink.addf("R1: update_%d(%s,%s) of own block without send", u.Proc, string(k.parent), string(k.block))
			}
		} else {
			// R2: remote block must have been received first.
			checked++
			t, ok := receives[u.Proc][k]
			if !ok {
				sink.addf("R2: update_%d(%s,%s) without receive", u.Proc, string(k.parent), string(k.block))
			} else if t > u.InvTime {
				sink.addf("R2: update_%d(%s,%s) at t=%d precedes its receive at t=%d", u.Proc, string(k.parent), string(k.block), u.InvTime, t)
			}
		}
		// R3: everyone eventually receives the update's block.
		for _, p := range procs {
			checked++
			if _, ok := receives[p][k]; !ok {
				sink.addf("R3: update of (%s,%s) but p%d never receives it", string(k.parent), string(k.block), p)
			}
		}
	}
	return sink.verdict("UpdateAgreement", checked)
}

// LRC checks the Light Reliable Communication properties of Definition 4.4:
//
//	Validity:  every send_i(b, b_i) has a matching receive_i(b, b_i) at
//	           the sender itself;
//	Agreement: every message received by some correct process is received
//	           by every correct process.
//
// Theorem 4.7 makes LRC necessary for BT Eventual Consistency.
func LRC(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	procs := procUniverse(h, opts)

	received := map[history.ProcID]map[msgKey]bool{}
	for _, p := range procs {
		received[p] = map[msgKey]bool{}
	}
	var anyReceived []msgKey
	seen := map[msgKey]bool{}
	type sendEvt struct {
		proc history.ProcID
		key  msgKey
	}
	var sendEvents []sendEvt
	for _, op := range h.Ops() {
		k := msgKey{parent: op.Label.Parent, block: op.Label.Block}
		switch op.Label.Kind {
		case history.KindSend:
			sendEvents = append(sendEvents, sendEvt{proc: op.Proc, key: k})
		case history.KindReceive:
			if m, ok := received[op.Proc]; ok {
				m[k] = true
			}
			if !seen[k] {
				seen[k] = true
				anyReceived = append(anyReceived, k)
			}
		}
	}

	checked := 0
	for _, s := range sendEvents {
		checked++
		if m, ok := received[s.proc]; ok && !m[s.key] {
			sink.addf("Validity: send_%d(%s,%s) never received by sender", s.proc, string(s.key.parent), string(s.key.block))
		}
	}
	for _, k := range anyReceived {
		for _, p := range procs {
			checked++
			if !received[p][k] {
				sink.addf("Agreement: (%s,%s) received by some process but not by p%d", string(k.parent), string(k.block), p)
			}
		}
	}
	return sink.verdict("LRC", checked)
}
