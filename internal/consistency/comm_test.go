package consistency

import (
	"testing"

	"blockadt/internal/figures"
	"blockadt/internal/history"
)

// fig13History builds the compliant Figure 13 history: process i performs
// send_i(bg,b), update_i(bg,b) and receive_i(bg,b); processes j and k
// receive and update — all three Update Agreement properties hold.
func fig13History() *history.History {
	const (
		i history.ProcID = 0
		j history.ProcID = 1
		k history.ProcID = 2
	)
	return figures.NewCustom().
		At(1).Record(i, history.Label{Kind: history.KindSend, Parent: "b0", Block: "b", Origin: i}).
		At(2).Record(i, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: i}).
		At(3).Record(i, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: i}).
		At(4).Record(j, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: i}).
		At(5).Record(j, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: i}).
		At(6).Record(k, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: i}).
		At(7).Record(k, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: i}).
		History()
}

// TestFig13UpdateAgreementSatisfied: the Figure 13 history satisfies
// R1, R2 and R3.
func TestFig13UpdateAgreementSatisfied(t *testing.T) {
	h := fig13History()
	if v := UpdateAgreement(h, Options{}); !v.Satisfied {
		t.Fatalf("Figure 13 rejected: %s", v)
	}
	if v := LRC(h, Options{}); !v.Satisfied {
		t.Fatalf("Figure 13 violates LRC: %s", v)
	}
}

func TestUpdateAgreementR1Violation(t *testing.T) {
	// Own-block update without a send.
	h := figures.NewCustom().
		At(1).Record(0, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: 0}).
		At(2).Record(0, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		At(3).Record(1, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		History()
	v := UpdateAgreement(h, Options{})
	if v.Satisfied {
		t.Fatal("missing send accepted")
	}
	if v.Violations[0][:2] != "R1" {
		t.Fatalf("expected R1 violation, got %v", v.Violations)
	}
}

func TestUpdateAgreementR2Violation(t *testing.T) {
	// Remote-block update without a prior receive.
	h := figures.NewCustom().
		At(1).Record(0, history.Label{Kind: history.KindSend, Parent: "b0", Block: "b", Origin: 0}).
		At(2).Record(0, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: 0}).
		At(3).Record(0, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		At(4).Record(1, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: 0}).
		At(5).Record(1, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		History()
	v := UpdateAgreement(h, Options{Procs: []history.ProcID{0, 1}})
	if v.Satisfied {
		t.Fatal("update-before-receive accepted")
	}
	found := false
	for _, s := range v.Violations {
		if s[:2] == "R2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected R2 violation, got %v", v.Violations)
	}
}

func TestUpdateAgreementR3Violation(t *testing.T) {
	// Process 2 never receives the update.
	h := figures.NewCustom().
		At(1).Record(0, history.Label{Kind: history.KindSend, Parent: "b0", Block: "b", Origin: 0}).
		At(2).Record(0, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: 0}).
		At(3).Record(0, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		At(4).Record(1, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		History()
	v := UpdateAgreement(h, Options{Procs: []history.ProcID{0, 1, 2}})
	if v.Satisfied {
		t.Fatal("missing receive at p2 accepted")
	}
	found := false
	for _, s := range v.Violations {
		if s[:2] == "R3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected R3 violation, got %v", v.Violations)
	}
}

func TestLRCValidityViolation(t *testing.T) {
	// Sender never receives its own message.
	h := figures.NewCustom().
		At(1).Record(0, history.Label{Kind: history.KindSend, Parent: "b0", Block: "b", Origin: 0}).
		At(2).Record(1, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		History()
	v := LRC(h, Options{Procs: []history.ProcID{0, 1}})
	if v.Satisfied {
		t.Fatal("sender-no-receive accepted")
	}
}

func TestLRCAgreementViolation(t *testing.T) {
	// Received by p0 but never by p1.
	h := figures.NewCustom().
		At(1).Record(0, history.Label{Kind: history.KindSend, Parent: "b0", Block: "b", Origin: 0}).
		At(2).Record(0, history.Label{Kind: history.KindReceive, Parent: "b0", Block: "b", Origin: 0}).
		History()
	v := LRC(h, Options{Procs: []history.ProcID{0, 1}})
	if v.Satisfied {
		t.Fatal("partial delivery accepted")
	}
}

func TestProcUniverseDerivation(t *testing.T) {
	h := fig13History()
	procs := procUniverse(h, Options{})
	if len(procs) != 3 || procs[0] != 0 || procs[2] != 2 {
		t.Fatalf("derived universe = %v", procs)
	}
	explicit := procUniverse(h, Options{Procs: []history.ProcID{5}})
	if len(explicit) != 1 || explicit[0] != 5 {
		t.Fatalf("explicit universe = %v", explicit)
	}
}
