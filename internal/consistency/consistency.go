// Package consistency implements the BlockTree consistency criteria of
// Sections 3.1.2 and 4.3 of "Blockchain Abstract Data Type" (Anceaume et
// al.) as executable checkers over recorded concurrent histories:
//
//   - Block Validity, Local Monotonic Read, Strong Prefix and Ever Growing
//     Tree — together the BT Strong Consistency criterion SC
//     (Definition 3.2);
//   - Eventual Prefix — with the first three, the BT Eventual Consistency
//     criterion EC (Definition 3.4);
//   - k-Fork Coherence (Definition 3.9);
//   - Update Agreement R1–R3 (Definition 4.3) and the Light Reliable
//     Communication properties (Definition 4.4).
//
// # Finitization
//
// Ever Growing Tree and Eventual Prefix quantify over infinite histories
// ("…the set of reads that do not … is finite"). A recorded history is a
// finite prefix, so these checkers take a grace window W (Options.
// GraceWindow, default max(4, N/4) for N reads): a read r may be followed
// by at most W-1 reads violating the score/prefix condition before the
// condition must hold for every later read. Formally, with reads indexed by
// response order,
//
//	Ever Growing Tree:  ∀i, ∀j ≥ i+W with ersp(rᵢ) ր einv(rⱼ):
//	                    score(rⱼ) > score(rᵢ);
//	Eventual Prefix:    ∀i, ∀j,k ≥ i+W, j≠k: mcps(rⱼ, rₖ) ≥ score(rᵢ).
//
// A history that satisfies the paper's property for some finite
// convergence bound satisfies the finitized property for W at least that
// bound; a violation of the finitized property exhibits a divergence
// persisting longer than W reads, the executable counterpart of an
// infinite violating set.
package consistency

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
)

// Options configures the checkers.
type Options struct {
	// Score is the chain score function (monotonic, deterministic);
	// nil defaults to chain length, the paper's running example.
	Score blocktree.Score
	// GraceWindow is the finitization window W in number of reads; 0
	// selects max(4, N/4).
	GraceWindow int
	// Procs is the process universe for the communication properties
	// (R3, LRC Agreement); nil derives it from the processes appearing
	// in the history. Byzantine processes should be excluded by the
	// caller, since the properties quantify over correct processes only.
	Procs []history.ProcID
	// MaxViolations bounds the recorded counterexamples per property;
	// 0 selects 8.
	MaxViolations int
}

func (o Options) score() blocktree.Score {
	if o.Score != nil {
		return o.Score
	}
	return blocktree.LengthScore
}

func (o Options) window(nReads int) int {
	if o.GraceWindow > 0 {
		return o.GraceWindow
	}
	w := nReads / 4
	if w < 4 {
		w = 4
	}
	return w
}

func (o Options) maxViolations() int {
	if o.MaxViolations > 0 {
		return o.MaxViolations
	}
	return 8
}

// Verdict is the outcome of checking one property on one history.
type Verdict struct {
	// Property names the checked property.
	Property string
	// Satisfied reports whether the property holds on the history.
	Satisfied bool
	// Checked counts the constraint instances examined.
	Checked int
	// Violations holds up to Options.MaxViolations human-readable
	// counterexamples.
	Violations []string
	// TotalViolations counts all violations, including unrecorded ones.
	TotalViolations int
}

// String renders the verdict as "property: OK" or a violation summary.
func (v Verdict) String() string {
	if v.Satisfied {
		return fmt.Sprintf("%s: OK (%d constraints)", v.Property, v.Checked)
	}
	return fmt.Sprintf("%s: VIOLATED (%d/%d constraints), e.g. %v", v.Property, v.TotalViolations, v.Checked, v.Violations)
}

type violationSink struct {
	max   int
	total int
	out   []string
}

func (s *violationSink) addf(format string, args ...any) {
	s.total++
	if len(s.out) < s.max {
		s.out = append(s.out, fmt.Sprintf(format, args...))
	}
}

func (s *violationSink) verdict(property string, checked int) Verdict {
	return Verdict{
		Property:        property,
		Satisfied:       s.total == 0,
		Checked:         checked,
		Violations:      s.out,
		TotalViolations: s.total,
	}
}
