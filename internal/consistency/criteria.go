package consistency

import (
	"sort"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
)

// BlockValidity checks the Block validity property of Definition 3.2: every
// block in a chain returned by a read() is valid and was inserted via an
// append() whose invocation program-order-precedes the read's response.
// Replicated histories (Section 4.2) insert remote blocks via update
// events, so an update of the block before the read response at any process
// also witnesses insertion — updates only carry oracle-validated blocks in
// this reproduction (Definition 4.2 restricts E to appends of valid
// blocks).
func BlockValidity(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}

	// earliest[b] = earliest time the block entered the system via an
	// append invocation or an update event.
	earliest := map[history.BlockRef]int64{}
	note := func(b history.BlockRef, t int64) {
		if b == "" {
			return
		}
		if old, ok := earliest[b]; !ok || t < old {
			earliest[b] = t
		}
	}
	for _, op := range h.Ops() {
		switch op.Label.Kind {
		case history.KindAppend:
			note(op.Label.Block, op.InvTime)
		case history.KindUpdate:
			note(op.Label.Block, op.InvTime)
		}
	}

	checked := 0
	for _, r := range h.Reads() {
		for _, b := range r.Chain {
			if b == blocktree.GenesisID {
				continue
			}
			checked++
			t, ok := earliest[b]
			if !ok {
				sink.addf("read by p%d returned %s containing %s, never appended", r.Op.Proc, r.Chain, string(b))
				continue
			}
			if t > r.Op.RspTime {
				sink.addf("read by p%d (rsp t=%d) returned %s before its append/update (t=%d)", r.Op.Proc, r.Op.RspTime, string(b), t)
			}
		}
	}
	return sink.verdict("BlockValidity", checked)
}

// LocalMonotonicRead checks Definition 3.2's Local monotonic read: along
// each process's sequence of reads (process order ↦→), the score of the
// returned blockchain never decreases.
func LocalMonotonicRead(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	score := opts.score()
	last := map[history.ProcID]int{}
	lastChain := map[history.ProcID]history.Chain{}
	checked := 0
	reads := h.Reads()
	for _, i := range readsByProcessOrder(h) {
		r := &reads[i]
		s := score(r.Chain)
		if prev, ok := last[r.Op.Proc]; ok {
			checked++
			if s < prev {
				sink.addf("p%d read %s (score %d) after %s (score %d)", r.Op.Proc, r.Chain, s, lastChain[r.Op.Proc], prev)
			}
		}
		last[r.Op.Proc] = s
		lastChain[r.Op.Proc] = r.Chain
	}
	return sink.verdict("LocalMonotonicRead", checked)
}

// readsByProcessOrder returns the indexes into h.Reads() sorted by (proc,
// invocation sequence): the per-process order ↦→. History.Reads returns a
// shared cached slice, so the permutation is sorted instead of a private
// copy of the (much larger) read records.
func readsByProcessOrder(h *history.History) []int32 {
	reads := h.Reads()
	order := make([]int32, len(reads))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &reads[order[i]].Op, &reads[order[j]].Op
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.InvSeq < b.InvSeq
	})
	return order
}

// StrongPrefix checks Definition 3.2's Strong prefix: for every pair of
// reads, one returned blockchain is a prefix of the other. The check sorts
// chains by length and verifies each is a prefix of the next longer one:
// prefix order is total on a set iff adjacent elements in length order are
// related, which brings the pairwise O(N²) property to O(N log N + N·L).
func StrongPrefix(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	reads := h.Reads()
	chains := make([]history.Chain, len(reads))
	for i, r := range reads {
		chains[i] = r.Chain
	}
	order := make([]int, len(chains))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(chains[order[a]]) < len(chains[order[b]]) })
	checked := 0
	for i := 1; i < len(order); i++ {
		a, b := chains[order[i-1]], chains[order[i]]
		checked++
		if !b.HasPrefix(a) {
			sink.addf("neither of %s and %s prefixes the other", a, b)
		}
	}
	return sink.verdict("StrongPrefix", checked)
}

// EverGrowingTree checks Definition 3.2's Ever growing tree under the
// finitization documented in the package comment: a read rᵢ with score s
// may be followed by at most W-1 reads before every later read whose
// invocation the response of rᵢ program-order-precedes returns a score
// strictly greater than s.
//
// The paper quantifies the property over E(a∗, r∗) — histories with
// infinitely many appends. A finite recorded prefix inevitably ends with a
// plateau (reads after the final append legitimately stop growing), so the
// checker constrains only reads followed by at least W growth events
// (successful appends or updates): those are the reads for which the
// recorded prefix still witnesses the infinite-append regime.
func EverGrowingTree(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	score := opts.score()
	reads := h.Reads() // response order
	w := opts.window(len(reads))
	scores := make([]int, len(reads))
	for i, r := range reads {
		scores[i] = score(r.Chain)
	}
	// growthTimes holds the invocation times of growth events, sorted.
	// Collected in one pass over the raw operations — building the
	// per-kind cached views just to read invocation times would copy far
	// more than this check needs.
	var growthTimes []int64
	for i := range h.Ops() {
		op := &h.Ops()[i]
		switch op.Label.Kind {
		case history.KindAppend:
			if op.Complete && op.Response.OK {
				growthTimes = append(growthTimes, op.InvTime)
			}
		case history.KindUpdate:
			growthTimes = append(growthTimes, op.InvTime)
		}
	}
	sort.Slice(growthTimes, func(a, b int) bool { return growthTimes[a] < growthTimes[b] })
	growthAfter := func(t int64) int {
		// Number of growth events invoked strictly after t.
		lo, hi := 0, len(growthTimes)
		for lo < hi {
			mid := (lo + hi) / 2
			if growthTimes[mid] <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return len(growthTimes) - lo
	}
	checked := 0
	for i := range reads {
		if growthAfter(reads[i].Op.RspTime) < w {
			continue // plateau region of the finite prefix: exempt
		}
		checked++
		for j := i + w; j < len(reads); j++ {
			if scores[j] > scores[i] {
				continue
			}
			if !history.RespondedBefore(reads[i].Op, reads[j].Op) {
				continue
			}
			sink.addf("read#%d by p%d score %d still matched by read#%d by p%d score %d after grace window %d",
				i, reads[i].Op.Proc, scores[i], j, reads[j].Op.Proc, scores[j], w)
			break
		}
	}
	return sink.verdict("EverGrowingTree", checked)
}

// EventualPrefix checks Definition 3.3's Eventual prefix under the
// finitization documented in the package comment: for a read rᵢ with score
// s, every pair of reads responding at least W positions after rᵢ must
// share a maximal common prefix of score at least s.
//
// The pairwise quantification collapses to a suffix computation: prefix
// score is an ultrametric (mcps(a,c) ≥ min(mcps(a,b), mcps(b,c))), so the
// minimum pairwise mcps over a set of chains equals the score of the
// common prefix of the whole set, computable right-to-left in O(N·L).
func EventualPrefix(h *history.History, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	score := opts.score()
	reads := h.Reads()
	w := opts.window(len(reads))
	n := len(reads)
	// suffixCP[j] = common prefix of chains[j..n-1].
	suffixCPScore := make([]int, n+1)
	var cp history.Chain
	for j := n - 1; j >= 0; j-- {
		if j == n-1 {
			cp = reads[j].Chain
		} else {
			cp = cp.CommonPrefix(reads[j].Chain)
		}
		suffixCPScore[j] = score(cp)
	}
	suffixCPScore[n] = int(^uint(0) >> 1) // empty suffix: vacuously ∞
	checked := 0
	for i := range reads {
		checked++
		s := score(reads[i].Chain)
		j := i + w
		if j >= n {
			continue // no mature pairs after rᵢ: vacuously satisfied
		}
		if suffixCPScore[j] < s {
			// Locate a concrete violating pair for the report.
			hi, ki := findDivergentPair(reads[j:], score, s)
			sink.addf("read#%d score %d: reads #%d and #%d past window %d share prefix score %d < %d",
				i, s, j+hi, j+ki, w, suffixCPScore[j], s)
		}
	}
	return sink.verdict("EventualPrefix", checked)
}

// findDivergentPair returns indices (relative to reads) of a pair whose
// mcps is below s; it exists whenever the suffix common-prefix score is
// below s.
func findDivergentPair(reads []history.ReadOp, score blocktree.Score, s int) (int, int) {
	for i := 1; i < len(reads); i++ {
		if score(reads[0].Chain.CommonPrefix(reads[i].Chain)) < s {
			return 0, i
		}
	}
	// The first chain agrees with everyone: divergence is among the
	// rest; recurse linearly.
	if len(reads) > 1 {
		a, b := findDivergentPair(reads[1:], score, s)
		return a + 1, b + 1
	}
	return 0, 0
}

// KForkCoherence checks Definition 3.9: at most k append() operations
// return ⊤ for the same token target (the block the token was granted on,
// recorded as the Parent of a successful append response). Replicated
// histories additionally count distinct child blocks per predecessor among
// update events. Θ_P corresponds to k = Unbounded (pass k ≤ 0 to skip the
// bound and always succeed).
func KForkCoherence(h *history.History, k int, opts Options) Verdict {
	sink := &violationSink{max: opts.maxViolations()}
	if k <= 0 {
		return sink.verdict("KForkCoherence(∞)", 0)
	}
	children := map[history.BlockRef]map[history.BlockRef]bool{}
	add := func(parent, child history.BlockRef) {
		if parent == "" || child == "" {
			return
		}
		m, ok := children[parent]
		if !ok {
			m = map[history.BlockRef]bool{}
			children[parent] = m
		}
		m[child] = true
	}
	for _, a := range h.SuccessfulAppends() {
		add(a.Op.Response.Parent, a.Block)
	}
	for _, op := range h.OpsOfKind(history.KindUpdate) {
		add(op.Label.Parent, op.Label.Block)
	}
	checked := 0
	for parent, kids := range children {
		checked++
		if len(kids) > k {
			sink.addf("block %s has %d successful extensions, bound k=%d", string(parent), len(kids), k)
		}
	}
	return sink.verdict("KForkCoherence", checked)
}
