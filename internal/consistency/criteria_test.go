package consistency

import (
	"strings"
	"testing"

	"blockadt/internal/figures"
	"blockadt/internal/history"
)

func TestBlockValidityViolation(t *testing.T) {
	// A read returns a block that was never appended.
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(5).Read(0, "b0", "1", "ghost").
		History()
	v := BlockValidity(h, Options{})
	if v.Satisfied {
		t.Fatal("ghost block accepted")
	}
	if v.TotalViolations != 1 || !strings.Contains(v.Violations[0], "ghost") {
		t.Fatalf("violations = %v", v.Violations)
	}
}

func TestBlockValidityReadBeforeAppend(t *testing.T) {
	// The read responds before the block's append invocation: the
	// program-order condition einv(append) ր ersp(read) fails.
	h := figures.NewCustom().
		At(1).Read(0, "b0", "late").
		At(10).AppendOK(1, "b0", "late").
		History()
	if v := BlockValidity(h, Options{}); v.Satisfied {
		t.Fatal("time-travelling read accepted")
	}
}

func TestBlockValidityAcceptsUpdateWitness(t *testing.T) {
	// Replicated histories: an update event (not an append) witnesses
	// insertion.
	h := figures.NewCustom().
		At(1).Record(1, history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "u", Origin: 1}).
		At(5).Read(0, "b0", "u").
		History()
	if v := BlockValidity(h, Options{}); !v.Satisfied {
		t.Fatalf("update-witnessed block rejected: %s", v)
	}
}

func TestBlockValidityGenesisExempt(t *testing.T) {
	h := figures.NewCustom().At(1).Read(0, "b0").History()
	if v := BlockValidity(h, Options{}); !v.Satisfied {
		t.Fatalf("genesis-only read rejected: %s", v)
	}
}

func TestLocalMonotonicReadViolation(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).AppendOK(0, "1", "2").
		At(3).Read(0, "b0", "1", "2").
		At(4).Read(0, "b0", "1"). // score regressed at the same process
		History()
	if v := LocalMonotonicRead(h, Options{}); v.Satisfied {
		t.Fatal("score regression accepted")
	}
}

func TestLocalMonotonicReadCrossProcessExempt(t *testing.T) {
	// Monotonicity is local: another process may read a shorter chain.
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).AppendOK(0, "1", "2").
		At(3).Read(0, "b0", "1", "2").
		At(4).Read(1, "b0", "1").
		History()
	if v := LocalMonotonicRead(h, Options{}); !v.Satisfied {
		t.Fatalf("cross-process read flagged: %s", v)
	}
}

func TestLocalMonotonicReadEqualScoresOK(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).Read(0, "b0", "1").
		At(3).Read(0, "b0", "1").
		History()
	if v := LocalMonotonicRead(h, Options{}); !v.Satisfied {
		t.Fatalf("equal scores flagged: %s", v)
	}
}

func TestStrongPrefixViolation(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(2).AppendOK(1, "b0", "b").
		At(3).Read(0, "b0", "a").
		At(4).Read(1, "b0", "b").
		History()
	v := StrongPrefix(h, Options{})
	if v.Satisfied {
		t.Fatal("divergent reads accepted")
	}
}

func TestStrongPrefixEqualLengthIdenticalOK(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(3).Read(0, "b0", "a").
		At(4).Read(1, "b0", "a").
		History()
	if v := StrongPrefix(h, Options{}); !v.Satisfied {
		t.Fatalf("identical reads flagged: %s", v)
	}
}

func TestStrongPrefixVacuousOnNoReads(t *testing.T) {
	h := figures.NewCustom().At(1).AppendOK(0, "b0", "a").History()
	if v := StrongPrefix(h, Options{}); !v.Satisfied || v.Checked != 0 {
		t.Fatalf("empty read set: %s", v)
	}
}

func TestEverGrowingTreeViolation(t *testing.T) {
	// Appends keep succeeding (the tree grows) but reads keep returning
	// the stale score-1 chain: the returned scores stall despite the
	// infinite-append regime — an Ever Growing Tree violation.
	b := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).Read(0, "b0", "1")
	tick := int64(3)
	parent := "1"
	for i := 0; i < 10; i++ {
		next := string(rune('a' + i))
		b.At(tick).AppendOK(0, history.BlockRef(parent), history.BlockRef(next))
		parent = next
		tick++
		b.At(tick).Read(1, "b0", "1")
		tick += 2
	}
	h := b.History()
	v := EverGrowingTree(h, Options{GraceWindow: 3})
	if v.Satisfied {
		t.Fatal("stalled reads accepted despite ongoing growth")
	}
}

func TestEverGrowingTreePlateauExempt(t *testing.T) {
	// Appends cease and reads plateau: the finite-prefix plateau is not a
	// violation (the property quantifies over E(a∗,r∗)).
	b := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).Read(0, "b0", "1")
	tick := int64(3)
	for i := 0; i < 10; i++ {
		b.At(tick).Read(1, "b0", "1")
		tick += 2
	}
	h := b.History()
	if v := EverGrowingTree(h, Options{GraceWindow: 3}); !v.Satisfied {
		t.Fatalf("plateau after final append flagged: %s", v)
	}
}

func TestEverGrowingTreeGrowthWithinWindowOK(t *testing.T) {
	// Scores repeat briefly but grow before the window closes.
	b := figures.NewCustom().At(1).AppendOK(0, "b0", "1")
	chainBlocks := []string{"b0", "1"}
	tick := int64(2)
	for i := 0; i < 8; i++ {
		b.At(tick).Read(0, chainBlocks...)
		tick += 2
		b.At(tick).Read(1, chainBlocks...)
		tick += 2
		next := string(rune('2' + i))
		b.At(tick).AppendOK(0, history.BlockRef(chainBlocks[len(chainBlocks)-1]), history.BlockRef(next))
		chainBlocks = append(chainBlocks, next)
		tick += 2
	}
	h := b.History()
	if v := EverGrowingTree(h, Options{GraceWindow: 4}); !v.Satisfied {
		t.Fatalf("periodic growth flagged: %s", v)
	}
}

func TestEventualPrefixViolationNeedsPersistence(t *testing.T) {
	// Divergence shorter than the window is forgiven; divergence longer
	// than the window is flagged. Reuse figures.Fig4 tails.
	short := figures.Fig4(2) // short divergence tail
	if v := EventualPrefix(short, Options{GraceWindow: 30}); !v.Satisfied {
		t.Fatalf("short divergence flagged under wide window: %s", v)
	}
	long := figures.Fig4(30)
	if v := EventualPrefix(long, Options{GraceWindow: 8}); v.Satisfied {
		t.Fatal("persistent divergence accepted")
	}
}

func TestEventualPrefixVacuousTail(t *testing.T) {
	// Fewer reads than the window: every read is vacuously satisfied.
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).Read(0, "b0", "1").
		At(3).Read(1, "b0").
		History()
	if v := EventualPrefix(h, Options{GraceWindow: 10}); !v.Satisfied {
		t.Fatalf("vacuous case flagged: %s", v)
	}
}

func TestKForkCoherenceCounts(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(2).AppendOK(1, "b0", "b").
		At(3).AppendOK(2, "b0", "c").
		History()
	if v := KForkCoherence(h, 2, Options{}); v.Satisfied {
		t.Fatal("3 children under k=2 accepted")
	}
	if v := KForkCoherence(h, 3, Options{}); !v.Satisfied {
		t.Fatalf("3 children under k=3 rejected: %s", v)
	}
	if v := KForkCoherence(h, 0, Options{}); !v.Satisfied {
		t.Fatal("unbounded check must always pass")
	}
}

func TestKForkCoherenceIgnoresFailedAppends(t *testing.T) {
	// Failed appends (OK=false) do not count against the bound: the
	// hierarchy considers purged histories.
	b := figures.NewCustom().At(1).AppendOK(0, "b0", "a")
	// Record a failed append manually.
	b.Record(1, history.Label{Kind: history.KindAppend, Parent: "b0", Block: "rejected", OK: false})
	h := b.History()
	if v := KForkCoherence(h, 1, Options{}); !v.Satisfied {
		t.Fatalf("failed append counted: %s", v)
	}
}

func TestCustomScoreOption(t *testing.T) {
	// A constant score function makes every history trivially monotone
	// but breaks Ever Growing Tree.
	constScore := func(history.Chain) int { return 7 }
	h := figures.Fig2(12)
	if v := LocalMonotonicRead(h, Options{Score: constScore}); !v.Satisfied {
		t.Fatalf("constant score must be monotone: %s", v)
	}
	if v := EverGrowingTree(h, Options{Score: constScore, GraceWindow: 4}); v.Satisfied {
		t.Fatal("constant score cannot ever-grow")
	}
}

func TestVerdictAndReportStrings(t *testing.T) {
	h := figures.Fig2(12)
	rep := CheckSC(h, figOpts)
	s := rep.String()
	if !strings.Contains(s, "SATISFIED") || !strings.Contains(s, "StrongPrefix") {
		t.Fatalf("report rendering:\n%s", s)
	}
	bad := figures.Fig4(12)
	rep = CheckEC(bad, figOpts)
	if !strings.Contains(rep.String(), "VIOLATED") {
		t.Fatalf("violated report rendering:\n%s", rep)
	}
	if len(rep.Failed()) == 0 {
		t.Fatal("Failed() empty on violated report")
	}
}

func TestMaxViolationsBound(t *testing.T) {
	// Many violations, small cap: recorded list bounded, total counted.
	b := figures.NewCustom()
	b.At(1).AppendOK(0, "b0", "x")
	tick := int64(2)
	for i := 0; i < 20; i++ {
		b.At(tick).Read(0, "b0", "x")
		tick++
		b.At(tick).Read(1, "b0", string(rune('A'+i)))
		tick++
	}
	h := b.History()
	v := BlockValidity(h, Options{MaxViolations: 3})
	if v.Satisfied {
		t.Fatal("expected violations")
	}
	if len(v.Violations) != 3 {
		t.Fatalf("recorded = %d, want 3", len(v.Violations))
	}
	if v.TotalViolations <= 3 {
		t.Fatalf("total = %d, want > 3", v.TotalViolations)
	}
}

func TestWindowDefaults(t *testing.T) {
	o := Options{}
	if o.window(100) != 25 {
		t.Fatalf("window(100) = %d", o.window(100))
	}
	if o.window(4) != 4 {
		t.Fatalf("window(4) = %d", o.window(4))
	}
	o.GraceWindow = 7
	if o.window(100) != 7 {
		t.Fatal("explicit window ignored")
	}
}
