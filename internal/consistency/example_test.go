package consistency_test

import (
	"fmt"

	"blockadt/internal/consistency"
	"blockadt/internal/figures"
	"blockadt/internal/history"
)

// updateLabel builds the update-event label used by the audit example.
func updateLabel() history.Label {
	return history.Label{Kind: history.KindUpdate, Parent: "b0", Block: "b", Origin: 0}
}

// Example classifies the paper's three example histories (Figures 2-4)
// into the consistency hierarchy.
func Example() {
	opts := consistency.Options{GraceWindow: 8}
	fmt.Println("Figure 2:", consistency.Classify(figures.Fig2(12), opts).Level)
	fmt.Println("Figure 3:", consistency.Classify(figures.Fig3(12), opts).Level)
	fmt.Println("Figure 4:", consistency.Classify(figures.Fig4(12), opts).Level)
	// Output:
	// Figure 2: SC
	// Figure 3: EC
	// Figure 4: none
}

// ExampleStrongPrefix shows a single violated property with its
// counterexample.
func ExampleStrongPrefix() {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "left").
		At(2).AppendOK(1, "b0", "right").
		At(3).Read(0, "b0", "left").
		At(4).Read(1, "b0", "right").
		History()
	v := consistency.StrongPrefix(h, consistency.Options{})
	fmt.Println("satisfied:", v.Satisfied)
	fmt.Println(v.Violations[0])
	// Output:
	// satisfied: false
	// neither of b0⌢left and b0⌢right prefixes the other
}

// ExampleUpdateAgreement audits a replicated history for the necessary
// communication properties of Theorem 4.6.
func ExampleUpdateAgreement() {
	// An update applied at p0 without ever being sent: R1 violated.
	h := figures.NewCustom().
		Record(0, updateLabel()).
		History()
	v := consistency.UpdateAgreement(h, consistency.Options{})
	fmt.Println("satisfied:", v.Satisfied)
	// Output:
	// satisfied: false
}
