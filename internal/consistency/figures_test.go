package consistency

import (
	"testing"

	"blockadt/internal/figures"
)

// The figure histories are built with a convergent/divergent tail of 12
// extension steps; a grace window of 8 reads sits well inside that tail, so
// persistent divergence is detected and transient divergence forgiven.
var figOpts = Options{GraceWindow: 8}

// TestFig2SatisfiesSC: the Figure 2 history satisfies the BT Strong
// Consistency criterion (all four properties).
func TestFig2SatisfiesSC(t *testing.T) {
	h := figures.Fig2(12)
	rep := CheckSC(h, figOpts)
	if !rep.Satisfied() {
		t.Fatalf("Figure 2 must satisfy SC:\n%s", rep)
	}
}

// TestFig2SatisfiesEC: by Theorem 3.1, Figure 2 also satisfies EC.
func TestFig2SatisfiesEC(t *testing.T) {
	h := figures.Fig2(12)
	rep := CheckEC(h, figOpts)
	if !rep.Satisfied() {
		t.Fatalf("Figure 2 must satisfy EC (Theorem 3.1):\n%s", rep)
	}
}

// TestFig3SatisfiesECNotSC: the Figure 3 history satisfies Eventual but
// not Strong consistency — Strong Prefix is violated by b0⌢1 vs b0⌢2⌢4.
func TestFig3SatisfiesECNotSC(t *testing.T) {
	h := figures.Fig3(12)
	ec := CheckEC(h, figOpts)
	if !ec.Satisfied() {
		t.Fatalf("Figure 3 must satisfy EC:\n%s", ec)
	}
	sc := CheckSC(h, figOpts)
	if sc.Satisfied() {
		t.Fatal("Figure 3 must violate SC")
	}
	// Specifically the Strong Prefix property fails, nothing else.
	for _, v := range sc.Verdicts {
		if v.Property == "StrongPrefix" && v.Satisfied {
			t.Fatal("StrongPrefix unexpectedly satisfied")
		}
		if v.Property != "StrongPrefix" && !v.Satisfied {
			t.Fatalf("unexpected violation: %s", v)
		}
	}
}

// TestFig4SatisfiesNeither: the Figure 4 history, whose branches diverge
// forever, violates both criteria.
func TestFig4SatisfiesNeither(t *testing.T) {
	h := figures.Fig4(12)
	if rep := CheckSC(h, figOpts); rep.Satisfied() {
		t.Fatal("Figure 4 must violate SC")
	}
	ec := CheckEC(h, figOpts)
	if ec.Satisfied() {
		t.Fatal("Figure 4 must violate EC")
	}
	// The Eventual Prefix property is the one that fails.
	failed := map[string]bool{}
	for _, p := range ec.Failed() {
		failed[p] = true
	}
	if !failed["EventualPrefix"] {
		t.Fatalf("expected EventualPrefix violation, got %v", ec.Failed())
	}
}

// TestClassifyLevels: Classify assigns the figures their paper levels.
func TestClassifyLevels(t *testing.T) {
	if got := Classify(figures.Fig2(12), figOpts).Level; got != LevelSC {
		t.Fatalf("Fig2 level = %s, want SC", got)
	}
	if got := Classify(figures.Fig3(12), figOpts).Level; got != LevelEC {
		t.Fatalf("Fig3 level = %s, want EC", got)
	}
	if got := Classify(figures.Fig4(12), figOpts).Level; got != LevelNone {
		t.Fatalf("Fig4 level = %s, want none", got)
	}
}

// TestTheorem31SCSubsetOfEC is the executable Theorem 3.1: H_SC ⊂ H_EC —
// every SC history is EC (checked on Figure 2 and on a family of growing
// tails) and some EC history is not SC (Figure 3).
func TestTheorem31SCSubsetOfEC(t *testing.T) {
	for _, tail := range []int{8, 16, 32} {
		h := figures.Fig2(tail)
		if !CheckSC(h, figOpts).Satisfied() {
			t.Fatalf("tail=%d: Fig2 not SC", tail)
		}
		if !CheckEC(h, figOpts).Satisfied() {
			t.Fatalf("tail=%d: SC history not EC — contradicts Theorem 3.1", tail)
		}
	}
	// Strictness witness.
	h := figures.Fig3(12)
	if CheckSC(h, figOpts).Satisfied() || !CheckEC(h, figOpts).Satisfied() {
		t.Fatal("Fig3 must witness H_EC \\ H_SC")
	}
}

// TestLevelString covers the Level stringer.
func TestLevelString(t *testing.T) {
	if LevelSC.String() != "SC" || LevelEC.String() != "EC" || LevelNone.String() != "none" {
		t.Fatal("level names")
	}
}
