package consistency

import (
	"errors"
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
)

// This file implements the two strongest criteria of the related-work
// comparison ([6], Fernández Anta et al., "Formalizing and implementing
// distributed ledger objects"): linearizability and sequential consistency
// of the ledger object, checked against the paper's own sequential
// specification of the BT-ADT (Definition 3.1: append chains to the tip of
// f(bt), read returns {b0}⌢f(bt)).
//
// The checker is a Wing & Gong-style search over operation orders:
//
//   - Linearizable: a total order extending the real-time precedence
//     (rsp(o) before inv(o') ⇒ o before o') under which replaying the
//     sequential BT-ADT reproduces every recorded response;
//   - SequentiallyConsistent: the same with only per-process order
//     preserved.
//
// The search memoizes on (linearized-set, tree fingerprint) and is
// exponential in the worst case, so it accepts histories up to MaxOps
// operations — it is a verification aid for small witnesses, not a bulk
// checker (the per-criterion checkers above scale; this one certifies).

// MaxLinearizeOps bounds the search.
const MaxLinearizeOps = 24

// ErrTooLarge reports a history beyond the search bound.
var ErrTooLarge = errors.New("consistency: history too large for linearizability search")

type linOp struct {
	op    history.Op
	read  bool
	chain history.Chain // recorded response chain for reads
	ok    bool          // recorded response for appends
	block blocktree.BlockID
}

// Linearizable reports whether the completed append/read operations of h
// are linearizable with respect to the sequential BT-ADT with selection
// function sel.
func Linearizable(h *history.History, sel blocktree.Selector) (bool, error) {
	return searchOrder(h, sel, true)
}

// SequentiallyConsistent reports whether the operations admit a legal
// sequential order preserving only per-process order.
func SequentiallyConsistent(h *history.History, sel blocktree.Selector) (bool, error) {
	return searchOrder(h, sel, false)
}

func collectLinOps(h *history.History) ([]linOp, error) {
	var ops []linOp
	for _, op := range h.Ops() {
		if !op.Complete {
			continue // pending ops may linearize anywhere; we drop them
		}
		switch op.Label.Kind {
		case history.KindRead:
			ops = append(ops, linOp{op: op, read: true, chain: op.Response.Chain})
		case history.KindAppend:
			ops = append(ops, linOp{op: op, ok: op.Response.OK, block: op.Label.Block})
		}
	}
	if len(ops) > MaxLinearizeOps {
		return nil, fmt.Errorf("%w: %d ops > %d", ErrTooLarge, len(ops), MaxLinearizeOps)
	}
	return ops, nil
}

// searchOrder explores admissible operation orders.
func searchOrder(h *history.History, sel blocktree.Selector, realTime bool) (bool, error) {
	ops, err := collectLinOps(h)
	if err != nil {
		return false, err
	}
	if len(ops) == 0 {
		return true, nil
	}
	if sel == nil {
		sel = blocktree.LongestChain{}
	}
	s := &linSearch{ops: ops, sel: sel, realTime: realTime, memo: map[string]bool{}}
	return s.run(0, blocktree.NewSeq(sel, blocktree.AcceptAll), ""), nil
}

type linSearch struct {
	ops      []linOp
	sel      blocktree.Selector
	realTime bool
	memo     map[string]bool
}

// run tries to extend the linearization; done is the bitmask of linearized
// ops and fp a fingerprint of the applied append sequence (the tree state
// is a function of the applied appends in order; the fingerprint is the
// concatenation of applied block ids, which determines the tree given the
// deterministic tip rule).
func (s *linSearch) run(done uint32, tree *blocktree.SeqBlockTree, fp string) bool {
	all := uint32(1)<<len(s.ops) - 1
	if done == all {
		return true
	}
	key := fmt.Sprintf("%08x|%s", done, fp)
	if v, seen := s.memo[key]; seen {
		return v
	}
	res := false
	for i := range s.ops {
		if done&(1<<i) != 0 {
			continue
		}
		if !s.eligible(done, i) {
			continue
		}
		if s.ops[i].read {
			got := tree.Read().IDs()
			if chainsEqual(got, s.ops[i].chain) {
				if s.run(done|1<<i, tree, fp) {
					res = true
					break
				}
			}
			continue
		}
		// Append: replay on a copy (SeqBlockTree has no undo).
		next := cloneSeq(tree, s.sel)
		okGot := next.Append(blocktree.Block{ID: s.ops[i].block})
		if okGot != s.ops[i].ok {
			continue
		}
		nfp := fp
		if okGot {
			nfp = fp + "/" + string(s.ops[i].block)
		}
		if s.run(done|1<<i, next, nfp) {
			res = true
			break
		}
	}
	s.memo[key] = res
	return res
}

// eligible reports whether op i may be the next linearization point: no
// other unlinearized op strictly precedes it in the preserved order.
func (s *linSearch) eligible(done uint32, i int) bool {
	for j := range s.ops {
		if j == i || done&(1<<j) != 0 {
			continue
		}
		a, b := s.ops[j].op, s.ops[i].op
		if s.realTime {
			if a.RspTime < b.InvTime {
				return false // j must come first
			}
		}
		if a.Proc == b.Proc && a.InvSeq < b.InvSeq {
			return false // per-process order always preserved
		}
	}
	return true
}

func cloneSeq(t *blocktree.SeqBlockTree, sel blocktree.Selector) *blocktree.SeqBlockTree {
	return blocktree.NewSeqFromTree(t.Tree().Clone(), sel)
}

func chainsEqual(a, b history.Chain) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
