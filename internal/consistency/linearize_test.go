package consistency

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/core"
	"blockadt/internal/figures"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
)

func TestLinearizableSequentialHistory(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(3).Read(0, "b0", "a").
		At(5).AppendOK(1, "a", "b").
		At(7).Read(1, "b0", "a", "b").
		History()
	ok, err := Linearizable(h, blocktree.LongestChain{})
	if err != nil || !ok {
		t.Fatalf("sequential history not linearizable: ok=%v err=%v", ok, err)
	}
}

func TestLinearizableEmptyHistory(t *testing.T) {
	ok, err := Linearizable(figures.NewCustom().History(), nil)
	if err != nil || !ok {
		t.Fatal("empty history must be linearizable")
	}
}

func TestNotLinearizableGhostRead(t *testing.T) {
	// A read returns a block never appended: no order explains it.
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(3).Read(0, "b0", "ghost").
		History()
	ok, err := Linearizable(h, blocktree.LongestChain{})
	if err != nil || ok {
		t.Fatalf("ghost read linearizable: ok=%v err=%v", ok, err)
	}
}

func TestNotLinearizableStaleReadAfterAppend(t *testing.T) {
	// The append completes strictly before the read is invoked, yet the
	// read misses the block — forbidden by real-time order.
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a"). // rsp at t=2
		At(10).Read(1, "b0").         // inv at t=10
		History()
	ok, err := Linearizable(h, blocktree.LongestChain{})
	if err != nil || ok {
		t.Fatal("stale read after completed append is not linearizable")
	}
}

func TestSequentialConsistencyForgivesCrossProcessStaleness(t *testing.T) {
	// The same history IS sequentially consistent: the read's process has
	// no order constraint against the other process's append.
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(10).Read(1, "b0").
		History()
	ok, err := SequentiallyConsistent(h, blocktree.LongestChain{})
	if err != nil || !ok {
		t.Fatalf("cross-process stale read not sequentially consistent: ok=%v err=%v", ok, err)
	}
	// But same-process staleness is still forbidden.
	h2 := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(10).Read(0, "b0").
		History()
	ok, err = SequentiallyConsistent(h2, blocktree.LongestChain{})
	if err != nil || ok {
		t.Fatal("same-process stale read accepted by sequential consistency")
	}
}

type manualTestClock struct{ t *int64 }

func (c manualTestClock) Now() int64 { return *c.t }

// overlapHistory builds: append(x) by p0 spanning [1,10], append(y) by p1
// spanning [2,3] (nested inside x), then a read at [12,13] returning the
// given chain.
func overlapHistory(readChain ...history.BlockRef) *history.History {
	now := new(int64)
	rec := history.NewRecorderWithClock(manualTestClock{t: now})
	at := func(t int64) { *now = t }

	at(1)
	opX := rec.Invoke(0, history.Label{Kind: history.KindAppend, Block: "x"})
	at(2)
	opY := rec.Invoke(1, history.Label{Kind: history.KindAppend, Block: "y"})
	at(3)
	rec.Respond(opY, history.Label{Kind: history.KindAppend, Block: "y", OK: true})
	at(10)
	rec.Respond(opX, history.Label{Kind: history.KindAppend, Block: "x", OK: true})
	at(12)
	opR := rec.Invoke(2, history.Label{Kind: history.KindRead})
	at(13)
	rec.Respond(opR, history.Label{Kind: history.KindRead, Chain: history.Chain(readChain)})
	return rec.Snapshot()
}

// TestLinearizableOverlappingAppendsEitherOrder: the two appends overlap in
// real time, so both serializations are admissible — the read may see
// b0⌢y⌢x or b0⌢x⌢y; but a read missing the completed y admits no order.
func TestLinearizableOverlappingAppendsEitherOrder(t *testing.T) {
	for _, chain := range []history.Chain{
		{"b0", "y", "x"},
		{"b0", "x", "y"},
	} {
		ok, err := Linearizable(overlapHistory(chain...), blocktree.LongestChain{})
		if err != nil || !ok {
			t.Fatalf("order %v should be linearizable: ok=%v err=%v", chain, ok, err)
		}
	}
	ok, err := Linearizable(overlapHistory("b0", "x"), blocktree.LongestChain{})
	if err != nil || ok {
		t.Fatal("read missing the completed append y must not be linearizable")
	}
}

// TestConcurrentBlockchainIsLinearizable: the shared-memory refinement
// object (mutex-serialized appends and reads) produces linearizable
// histories under real concurrency.
func TestConcurrentBlockchainIsLinearizable(t *testing.T) {
	merits := []float64{1, 1, 1}
	bc := core.New(core.Config{Oracle: oracle.New(oracle.Config{K: 1, Merits: merits, Seed: 7})})
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				bc.Append(history.ProcID(p), blocktree.Block{ID: blocktree.BlockID(fmt.Sprintf("p%d-%d", p, i))})
				bc.Read(history.ProcID(p))
			}
		}(p)
	}
	wg.Wait()
	ok, err := Linearizable(bc.History(), bc.Selector())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("mutex-serialized blockchain object produced a non-linearizable history")
	}
}

// TestLinearizableImpliesSequentiallyConsistent on assorted histories.
func TestLinearizableImpliesSequentiallyConsistent(t *testing.T) {
	histories := []*history.History{
		figures.NewCustom().At(1).AppendOK(0, "b0", "a").At(3).Read(0, "b0", "a").History(),
		figures.NewCustom().At(1).Read(0, "b0").History(),
	}
	for i, h := range histories {
		lin, err := Linearizable(h, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := SequentiallyConsistent(h, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lin && !seq {
			t.Fatalf("history %d: linearizable but not sequentially consistent", i)
		}
	}
}

func TestLinearizeSizeBound(t *testing.T) {
	b := figures.NewCustom()
	tick := int64(1)
	for i := 0; i < MaxLinearizeOps+1; i++ {
		b.At(tick).Read(0, "b0")
		tick += 2
	}
	_, err := Linearizable(b.History(), nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestForkedReadsNotLinearizable: the Figure 3 divergence (two reads on
// incomparable branches) cannot be explained by any sequential order of
// the BT-ADT, whose appends always extend the selected tip.
func TestForkedReadsNotLinearizable(t *testing.T) {
	h := figures.NewCustom().
		At(1).AppendOK(0, "b0", "a").
		At(2).AppendOK(1, "b0", "c").
		At(5).Read(0, "b0", "a").
		At(7).Read(1, "b0", "c").
		History()
	ok, err := Linearizable(h, blocktree.LongestChain{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("forked reads linearizable against the sequential BT-ADT")
	}
}
