package consistency

import "blockadt/internal/history"

// CheckMPC checks Monotonic Prefix Consistency, the criterion of Girault
// et al. ([20] in the paper) that the related-work section aligns with
// Strong Prefix: "no criterion stronger than MPC can be implemented in a
// partition-prone message-passing system", and the paper's Strong Prefix
// solvability results "immediately apply" to it.
//
// MPC is the safety core of BT Strong Consistency: reads are monotone per
// process and globally prefix-comparable, with every returned block
// legitimately inserted — but, unlike SC, MPC imposes no liveness (no Ever
// Growing Tree), so a system that stalls forever while returning the same
// consistent chain is MPC but not SC. CheckMPC therefore reuses the Block
// validity, Local monotonic read and Strong prefix checkers.
func CheckMPC(h *history.History, opts Options) Report {
	return Report{
		Criterion: "Monotonic Prefix Consistency",
		Verdicts: []Verdict{
			BlockValidity(h, opts),
			LocalMonotonicRead(h, opts),
			StrongPrefix(h, opts),
		},
	}
}
