package consistency

import (
	"testing"

	"blockadt/internal/figures"
	"blockadt/internal/history"
)

// TestMPCOnFigures: Figure 2 satisfies MPC (it is SC); Figure 3 violates it
// (Strong Prefix fails).
func TestMPCOnFigures(t *testing.T) {
	if rep := CheckMPC(figures.Fig2(12), figOpts); !rep.Satisfied() {
		t.Fatalf("Fig2 not MPC:\n%s", rep)
	}
	if rep := CheckMPC(figures.Fig3(12), figOpts); rep.Satisfied() {
		t.Fatal("Fig3 must violate MPC (Strong Prefix fails)")
	}
}

// TestMPCWeakerThanSC: a history whose chain stalls while appends continue
// elsewhere violates SC's Ever Growing Tree but still satisfies MPC — the
// liveness/safety separation between the two criteria.
func TestMPCWeakerThanSC(t *testing.T) {
	b := figures.NewCustom().
		At(1).AppendOK(0, "b0", "1").
		At(2).Read(0, "b0", "1")
	tick := int64(3)
	parent := "1"
	for i := 0; i < 10; i++ {
		next := "x" + string(rune('a'+i))
		b.At(tick).AppendOK(0, history.BlockRef(parent), history.BlockRef(next))
		parent = next
		tick++
		// Reads stall at the same (consistent) chain.
		b.At(tick).Read(1, "b0", "1")
		tick += 2
	}
	h := b.History()
	opts := Options{GraceWindow: 3}
	if rep := CheckMPC(h, opts); !rep.Satisfied() {
		t.Fatalf("stalled-but-consistent history must be MPC:\n%s", rep)
	}
	if rep := CheckSC(h, opts); rep.Satisfied() {
		t.Fatal("stalled history must violate SC (Ever Growing Tree)")
	}
}
