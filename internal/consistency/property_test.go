package consistency

import (
	"fmt"
	"testing"
	"testing/quick"

	"blockadt/internal/blocktree"
	"blockadt/internal/core"
	"blockadt/internal/oracle"
)

// TestProperty_Theorem31OnGeneratedHistories: across random fork workloads
// and oracle bounds, every history classified SC also satisfies EC — the
// inclusion H_SC ⊂ H_EC holds on machine-generated histories, not just the
// hand-built figures.
func TestProperty_Theorem31OnGeneratedHistories(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw % 4) // 0 = prodigal
		res := core.ForkWorkload{K: k, Procs: 5, Rounds: 5, Seed: seed}.Run()
		opts := Options{}
		sc := CheckSC(res.History, opts).Satisfied()
		ec := CheckEC(res.History, opts).Satisfied()
		// SC ⇒ EC always.
		return !sc || ec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProperty_K1WorkloadsAlwaysSC: the frugal k=1 fork workload can never
// produce anything below Strong Consistency — the shared-memory reading of
// Corollary 4.8.1.
func TestProperty_K1WorkloadsAlwaysSC(t *testing.T) {
	f := func(seed uint64) bool {
		res := core.ForkWorkload{K: 1, Procs: 5, Rounds: 5, Seed: seed}.Run()
		return CheckSC(res.History, Options{}).Satisfied() && res.MaxFanout <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestProperty_ClassificationMonotoneInLevel: Classify never reports SC
// when CheckSC fails, nor EC when CheckEC fails.
func TestProperty_ClassificationMonotoneInLevel(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw % 4)
		res := core.ForkWorkload{K: k, Procs: 4, Rounds: 4, Seed: seed}.Run()
		opts := Options{}
		cls := Classify(res.History, opts)
		switch cls.Level {
		case LevelSC:
			return cls.SC.Satisfied()
		case LevelEC:
			return !cls.SC.Satisfied() && cls.EC.Satisfied()
		default:
			return !cls.EC.Satisfied()
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProperty_SharedMemoryK1Linearizable: small concurrent runs of the
// k=1 refinement object are always linearizable against the sequential
// BT-ADT spec.
func TestProperty_SharedMemoryK1Linearizable(t *testing.T) {
	f := func(seed uint64) bool {
		merits := []float64{1, 1}
		bc := core.New(core.Config{Oracle: oracle.New(oracle.Config{K: 1, Merits: merits, Seed: seed})})
		// Sequential-but-interleaved workload: 2 procs, 4 ops each.
		for i := 0; i < 4; i++ {
			bc.Append(0, blockFor(0, i))
			bc.Read(1)
			bc.Append(1, blockFor(1, i))
			bc.Read(0)
		}
		ok, err := Linearizable(bc.History(), bc.Selector())
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// blockFor names workload blocks uniquely per (proc, index).
func blockFor(proc, i int) blocktree.Block {
	return blocktree.Block{ID: blocktree.BlockID(fmt.Sprintf("w%d-%d", proc, i))}
}
