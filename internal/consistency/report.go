package consistency

import (
	"fmt"
	"strings"

	"blockadt/internal/history"
)

// Report is the outcome of checking a composite criterion.
type Report struct {
	// Criterion names the composite criterion ("SC", "EC", …).
	Criterion string
	// Verdicts holds the per-property outcomes.
	Verdicts []Verdict
}

// Satisfied reports whether every constituent property holds.
func (r Report) Satisfied() bool {
	for _, v := range r.Verdicts {
		if !v.Satisfied {
			return false
		}
	}
	return true
}

// Failed returns the names of the violated properties.
func (r Report) Failed() []string {
	var out []string
	for _, v := range r.Verdicts {
		if !v.Satisfied {
			out = append(out, v.Property)
		}
	}
	return out
}

// String renders the report as one line per property.
func (r Report) String() string {
	var b strings.Builder
	status := "SATISFIED"
	if !r.Satisfied() {
		status = "VIOLATED"
	}
	fmt.Fprintf(&b, "%s: %s\n", r.Criterion, status)
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// CheckSC checks the BT Strong Consistency criterion (Definition 3.2): the
// conjunction of Block validity, Local monotonic read, Strong prefix and
// Ever growing tree.
func CheckSC(h *history.History, opts Options) Report {
	return Report{
		Criterion: "BT Strong Consistency",
		Verdicts: []Verdict{
			BlockValidity(h, opts),
			LocalMonotonicRead(h, opts),
			StrongPrefix(h, opts),
			EverGrowingTree(h, opts),
		},
	}
}

// CheckEC checks the BT Eventual Consistency criterion (Definition 3.4):
// the conjunction of Block validity, Local monotonic read, Ever growing
// tree and Eventual prefix.
func CheckEC(h *history.History, opts Options) Report {
	return Report{
		Criterion: "BT Eventual Consistency",
		Verdicts: []Verdict{
			BlockValidity(h, opts),
			LocalMonotonicRead(h, opts),
			EverGrowingTree(h, opts),
			EventualPrefix(h, opts),
		},
	}
}

// Level classifies a history into the hierarchy of Theorem 3.1
// (H_SC ⊂ H_EC).
type Level int

// Classification levels, strongest first.
const (
	// LevelSC: the history satisfies BT Strong Consistency (hence also
	// Eventual, Theorem 3.1).
	LevelSC Level = iota
	// LevelEC: the history satisfies BT Eventual Consistency but not
	// Strong.
	LevelEC
	// LevelNone: the history satisfies neither criterion.
	LevelNone
)

// String returns "SC", "EC" or "none".
func (l Level) String() string {
	switch l {
	case LevelSC:
		return "SC"
	case LevelEC:
		return "EC"
	default:
		return "none"
	}
}

// Classification is the result of Classify.
type Classification struct {
	Level Level
	SC    Report
	EC    Report
}

// Classify determines the strongest criterion the history satisfies.
// SC and EC share three of their four constituent properties (Definitions
// 3.2 and 3.4), so Classify evaluates each property once and assembles
// both reports from the shared verdicts instead of delegating to CheckSC
// and CheckEC, which would walk the history twice.
func Classify(h *history.History, opts Options) Classification {
	bv := BlockValidity(h, opts)
	lmr := LocalMonotonicRead(h, opts)
	egt := EverGrowingTree(h, opts)
	sc := Report{
		Criterion: "BT Strong Consistency",
		Verdicts:  []Verdict{bv, lmr, StrongPrefix(h, opts), egt},
	}
	ec := Report{
		Criterion: "BT Eventual Consistency",
		Verdicts:  []Verdict{bv, lmr, egt, EventualPrefix(h, opts)},
	}
	c := Classification{SC: sc, EC: ec, Level: LevelNone}
	switch {
	case sc.Satisfied():
		c.Level = LevelSC
	case ec.Satisfied():
		c.Level = LevelEC
	}
	return c
}
