// Package core implements the paper's primary contribution: the refinement
// R(BT-ADT, Θ) of Definitions 3.7–3.8 of "Blockchain Abstract Data Type"
// (Anceaume et al.) — a BlockTree abstract data type augmented with a token
// oracle, exposed as a concurrent, history-recording Blockchain object.
//
// The refined append(b) triggers getToken(b_h ← last block(f(bt)), b_ℓ)
// until a token is returned, then consumes the token and concatenates the
// validated block at position h: {b0}⌢f(bt)|⌢h{b_ℓ}. The two oracle
// operations and the concatenation occur atomically (Section 3.3), which is
// the oracle-side synchronization assumed by the message-passing results
// (Section 4.4). read() returns {b0}⌢f(bt).
//
// Every operation is recorded into a history.Recorder so that the
// consistency checkers of internal/consistency can adjudicate the run.
package core

import (
	"errors"
	"fmt"
	"sync"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
)

// Config parameterizes a Blockchain.
type Config struct {
	// Oracle is the token oracle Θ; nil defaults to a frugal oracle with
	// k = 1 and a single always-granting merit.
	Oracle *oracle.Oracle
	// Selector is the selection function f; nil defaults to longest
	// chain.
	Selector blocktree.Selector
	// Recorder receives the history events; nil allocates a fresh one.
	Recorder *history.Recorder
	// MaxTokenAttempts bounds the getToken loop of a single append; 0
	// means unbounded (the paper's semantics, terminating with
	// probability 1 whenever the invoker's merit probability is
	// positive).
	MaxTokenAttempts int
}

// Blockchain is the concurrent object R(BT-ADT, Θ).
type Blockchain struct {
	mu       sync.Mutex
	tree     *blocktree.Tree
	orc      *oracle.Oracle
	sel      blocktree.Selector
	rec      *history.Recorder
	maxTries int
}

// ErrTokenExhausted reports that an append gave up before obtaining a token
// because Config.MaxTokenAttempts was reached.
var ErrTokenExhausted = errors.New("core: token attempts exhausted")

// New returns a Blockchain per the configuration.
func New(cfg Config) *Blockchain {
	orc := cfg.Oracle
	if orc == nil {
		orc = oracle.NewFrugal(1, 0, 1)
	}
	sel := cfg.Selector
	if sel == nil {
		sel = blocktree.LongestChain{}
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = history.NewRecorder()
	}
	return &Blockchain{
		tree:     blocktree.New(),
		orc:      orc,
		sel:      sel,
		rec:      rec,
		maxTries: cfg.MaxTokenAttempts,
	}
}

// Oracle returns the oracle Θ the object was refined with.
func (bc *Blockchain) Oracle() *oracle.Oracle { return bc.orc }

// Selector returns the selection function f.
func (bc *Blockchain) Selector() blocktree.Selector { return bc.sel }

// Recorder returns the recorder collecting this object's history.
func (bc *Blockchain) Recorder() *history.Recorder { return bc.rec }

// Tree returns a snapshot copy of the current BlockTree.
func (bc *Blockchain) Tree() *blocktree.Tree {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.tree.Clone()
}

// History returns an immutable snapshot of the recorded history.
func (bc *Blockchain) History() *history.History { return bc.rec.Snapshot() }

// Append implements the refined append(b) of Definition 3.7 on behalf of
// process proc, whose oracle merit index equals int(proc). It returns the
// paper's evaluate() output: true iff a token was obtained and the block
// entered the consumed set (and hence the tree). The error is non-nil only
// for configuration-level failures (token attempts exhausted).
func (bc *Blockchain) Append(proc history.ProcID, b blocktree.Block) (bool, error) {
	op := bc.rec.Invoke(proc, history.Label{Kind: history.KindAppend, Block: b.ID})

	bc.mu.Lock()
	ok, parent, err := bc.appendLocked(int(proc), b)
	bc.mu.Unlock()

	bc.rec.Respond(op, history.Label{Kind: history.KindAppend, Block: b.ID, Parent: parent, OK: ok})
	return ok, err
}

// appendLocked runs the atomic getToken*·consumeToken·concatenate step.
func (bc *Blockchain) appendLocked(merit int, b blocktree.Block) (bool, blocktree.BlockID, error) {
	parent := bc.sel.Select(bc.tree).Tip().ID
	var tok oracle.Token
	for attempt := 0; ; attempt++ {
		if bc.maxTries > 0 && attempt >= bc.maxTries {
			return false, parent, ErrTokenExhausted
		}
		t, granted := bc.orc.GetToken(merit, parent, b.ID)
		if granted {
			tok = t
			break
		}
	}
	set, inserted, err := bc.orc.ConsumeToken(tok)
	if err != nil {
		return false, parent, fmt.Errorf("core: consume: %w", err)
	}
	// evaluate(b, δb ∘ δa*): true iff b^tknh is in the returned set.
	in := false
	for _, o := range set {
		if o == b.ID {
			in = true
			break
		}
	}
	if !inserted || !in {
		// Frugal oracle refused the consumption: K[h] already holds k
		// blocks. The tree is unchanged and append returns false.
		return false, parent, nil
	}
	b.Parent = parent
	b.Token = tok.ID
	if err := bc.tree.Insert(b); err != nil {
		return false, parent, fmt.Errorf("core: insert after consume: %w", err)
	}
	return true, parent, nil
}

// Read implements read() on behalf of process proc: {b0}⌢f(bt).
func (bc *Blockchain) Read(proc history.ProcID) blocktree.Chain {
	op := bc.rec.Invoke(proc, history.Label{Kind: history.KindRead})
	bc.mu.Lock()
	chain := bc.sel.Select(bc.tree)
	bc.mu.Unlock()
	bc.rec.Respond(op, history.Label{Kind: history.KindRead, Chain: chain.IDs()})
	return chain
}
