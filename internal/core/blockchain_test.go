package core

import (
	"fmt"
	"sync"
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
)

func TestDefaults(t *testing.T) {
	bc := New(Config{})
	if bc.Oracle().K() != 1 {
		t.Fatalf("default oracle k = %d, want 1", bc.Oracle().K())
	}
	if bc.Selector().Name() != "longest" {
		t.Fatalf("default selector = %s", bc.Selector().Name())
	}
	if bc.Recorder() == nil {
		t.Fatal("default recorder missing")
	}
}

// TestFig7AppendRefinementPath reproduces Figure 7: the refined append's
// path through the combined transition system — getToken on the tip of
// f(bt), then consumeToken inserting into K, then the concatenation — made
// observable through the recorded history and the oracle state.
func TestFig7AppendRefinementPath(t *testing.T) {
	orc := oracle.NewFrugal(2, 42, 1)
	bc := New(Config{Oracle: orc})

	ok, err := bc.Append(0, blocktree.Block{ID: "bk"})
	if err != nil || !ok {
		t.Fatalf("append(bk): ok=%v err=%v", ok, err)
	}
	// Oracle state ξ'1/b: K[b0] = {bk}.
	if set := orc.ConsumedSet("b0"); len(set) != 1 || set[0] != "bk" {
		t.Fatalf("K[b0] = %v, want {bk}", set)
	}
	// read()/b0⌢bk.
	if got := bc.Read(0).String(); got != "b0⌢bk" {
		t.Fatalf("read = %s", got)
	}
	// Second append chains to the new tip.
	ok, err = bc.Append(0, blocktree.Block{ID: "b2"})
	if err != nil || !ok {
		t.Fatalf("append(b2): ok=%v err=%v", ok, err)
	}
	if got := bc.Read(0).String(); got != "b0⌢bk⌢b2" {
		t.Fatalf("read = %s", got)
	}

	// The recorded history carries the same path.
	h := bc.History()
	appends := h.SuccessfulAppends()
	if len(appends) != 2 {
		t.Fatalf("successful appends = %d", len(appends))
	}
	if appends[0].Op.Response.Parent != "b0" || appends[1].Op.Response.Parent != "bk" {
		t.Fatalf("append parents = %s, %s", appends[0].Op.Response.Parent, appends[1].Op.Response.Parent)
	}
}

func TestAppendedBlockCarriesToken(t *testing.T) {
	bc := New(Config{})
	if ok, _ := bc.Append(0, blocktree.Block{ID: "a"}); !ok {
		t.Fatal("append failed")
	}
	b, ok := bc.Tree().Get("a")
	if !ok {
		t.Fatal("block missing from tree")
	}
	if !blocktree.RequireToken(b) {
		t.Fatal("appended block has no oracle token: not in B′")
	}
}

func TestFrugalK1RefusesSecondChild(t *testing.T) {
	// Two appends race for the same parent under k=1: the loser's append
	// returns false (evaluate fails) and the tree stays a single chain.
	orc := oracle.NewFrugal(1, 7, 1, 1)
	bc := New(Config{Oracle: orc})
	ok1, _ := bc.Append(0, blocktree.Block{ID: "x"})
	// Force the second append onto the same parent by reading the
	// oracle: after x's insertion, the selected tip is x, so to contend
	// on b0 we use a fresh object directly.
	tok, granted := orc.GetToken(1, "b0", "y")
	if !granted {
		t.Fatal("token refused")
	}
	_, inserted, err := orc.ConsumeToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !ok1 {
		t.Fatal("first append failed")
	}
	if inserted {
		t.Fatal("k=1 oracle allowed a second child of b0")
	}
}

func TestAppendTokenExhaustion(t *testing.T) {
	orc := oracle.New(oracle.Config{K: 1, Merits: []float64{0}, Seed: 1})
	bc := New(Config{Oracle: orc, MaxTokenAttempts: 5})
	ok, err := bc.Append(0, blocktree.Block{ID: "never"})
	if ok || err != ErrTokenExhausted {
		t.Fatalf("ok=%v err=%v, want token exhaustion", ok, err)
	}
	// The failed append is still recorded (purged histories drop it).
	h := bc.History()
	if len(h.Appends()) != 1 || h.Appends()[0].OK {
		t.Fatalf("appends = %+v", h.Appends())
	}
}

func TestReadRecordsHistory(t *testing.T) {
	bc := New(Config{})
	bc.Read(3)
	h := bc.History()
	reads := h.Reads()
	if len(reads) != 1 || reads[0].Op.Proc != 3 {
		t.Fatalf("reads = %+v", reads)
	}
	if reads[0].Chain.String() != "b0" {
		t.Fatalf("initial read = %s", reads[0].Chain)
	}
}

// TestConcurrentAppendsProduceSCHistory: with the frugal k=1 oracle, fully
// concurrent appenders and readers still yield a history satisfying BT
// Strong Consistency — the shared-memory counterpart of Corollary 4.8.1.
func TestConcurrentAppendsProduceSCHistory(t *testing.T) {
	const procs = 8
	merits := make([]float64, procs)
	for i := range merits {
		merits[i] = 1
	}
	orc := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: 21})
	bc := New(Config{Oracle: orc})

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := blocktree.BlockID(fmt.Sprintf("p%d-%d", p, i))
				bc.Append(history.ProcID(p), blocktree.Block{ID: id})
				bc.Read(history.ProcID(p))
			}
		}(p)
	}
	wg.Wait()

	h := bc.History()
	rep := consistency.CheckSC(h, consistency.Options{})
	if !rep.Satisfied() {
		t.Fatalf("concurrent k=1 run violates SC:\n%s", rep)
	}
	// The tree must be a single chain: k=1 everywhere.
	if bc.Tree().MaxFanout() > 1 {
		t.Fatalf("fanout = %d under k=1", bc.Tree().MaxFanout())
	}
}

// TestConcurrentProdigalKeepsECProperties: with Θ_P the same workload may
// fork, but Block Validity and Local Monotonic Read always hold.
func TestConcurrentProdigalKeepsECProperties(t *testing.T) {
	const procs = 8
	merits := make([]float64, procs)
	for i := range merits {
		merits[i] = 1
	}
	orc := oracle.NewProdigal(5, merits...)
	bc := New(Config{Oracle: orc})

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := blocktree.BlockID(fmt.Sprintf("q%d-%d", p, i))
				if ok, err := bc.Append(history.ProcID(p), blocktree.Block{ID: id}); err != nil || !ok {
					t.Errorf("prodigal append refused: ok=%v err=%v", ok, err)
					return
				}
				bc.Read(history.ProcID(p))
			}
		}(p)
	}
	wg.Wait()

	h := bc.History()
	opts := consistency.Options{}
	if v := consistency.BlockValidity(h, opts); !v.Satisfied {
		t.Fatalf("block validity: %s", v)
	}
	if v := consistency.LocalMonotonicRead(h, opts); !v.Satisfied {
		t.Fatalf("local monotonic read: %s", v)
	}
	if got := len(h.SuccessfulAppends()); got != procs*20 {
		t.Fatalf("successful appends = %d, want %d (Θ_P never refuses)", got, procs*20)
	}
}
