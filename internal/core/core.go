package core
