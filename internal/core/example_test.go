package core_test

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/core"
	"blockadt/internal/oracle"
)

// Example builds the refinement R(BT-ADT, Θ_F,k=1), appends two blocks and
// reads the selected chain — the minimal end-to-end use of the library.
func Example() {
	bc := core.New(core.Config{
		Oracle:   oracle.NewFrugal(1, 42, 1.0),
		Selector: blocktree.LongestChain{},
	})
	ok, _ := bc.Append(0, blocktree.Block{ID: "a"})
	fmt.Println("append(a):", ok)
	ok, _ = bc.Append(0, blocktree.Block{ID: "b"})
	fmt.Println("append(b):", ok)
	fmt.Println("read():", bc.Read(0))
	// Output:
	// append(a): true
	// append(b): true
	// read(): b0⌢a⌢b
}

// Example_consistencyCheck records a run's history and adjudicates it
// against the BT Strong Consistency criterion.
func Example_consistencyCheck() {
	bc := core.New(core.Config{})
	bc.Append(0, blocktree.Block{ID: "x"})
	bc.Read(0)
	bc.Read(1)
	report := consistency.CheckSC(bc.History(), consistency.Options{})
	fmt.Println("SC satisfied:", report.Satisfied())
	// Output:
	// SC satisfied: true
}

// Example_forkBound shows the frugal oracle refusing a second block on the
// same predecessor: the k-fork bound at work.
func Example_forkBound() {
	orc := oracle.NewFrugal(1, 7, 1, 1)
	t1, _ := orc.GetToken(0, "b0", "left")
	t2, _ := orc.GetToken(1, "b0", "right")
	_, first, _ := orc.ConsumeToken(t1)
	_, second, _ := orc.ConsumeToken(t2)
	fmt.Println("first consumed:", first)
	fmt.Println("second consumed:", second)
	fmt.Println("K[b0]:", orc.ConsumedSet("b0"))
	// Output:
	// first consumed: true
	// second consumed: false
	// K[b0]: [left]
}
