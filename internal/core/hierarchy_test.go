package core

import (
	"testing"
	"testing/quick"

	"blockadt/internal/consistency"
	"blockadt/internal/oracle"
)

// TestTheorem32RealizedFanoutBoundedByK: the fork workload's realized
// fanout never exceeds the oracle bound — the structural consequence of
// k-Fork Coherence on the BlockTree.
func TestTheorem32RealizedFanoutBoundedByK(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		res := ForkWorkload{K: k, Procs: 8, Rounds: 6, Seed: 17}.Run()
		if res.MaxFanout > k {
			t.Fatalf("k=%d: realized fanout %d", k, res.MaxFanout)
		}
		v := consistency.KForkCoherence(res.History, k, consistency.Options{})
		if !v.Satisfied {
			t.Fatalf("k=%d: %s", k, v)
		}
	}
}

// TestTheorem34FrugalInclusion is the executable Theorem 3.4: for k1 ≤ k2,
// every purged history generated under Θ_F,k1 is admissible under Θ_F,k2 —
// witnessed by the k2-Fork Coherence checker accepting it. The converse
// fails: some history generated under k2 > k1 exceeds the k1 bound, so the
// inclusion is strict in the sampled sets.
func TestTheorem34FrugalInclusion(t *testing.T) {
	ks := []int{1, 2, 4}
	histories := map[int]ForkResult{}
	for _, k := range ks {
		histories[k] = ForkWorkload{K: k, Procs: 8, Rounds: 6, Seed: 99}.Run()
	}
	for i, k1 := range ks {
		for _, k2 := range ks[i:] {
			v := consistency.KForkCoherence(histories[k1].History, k2, consistency.Options{})
			if !v.Satisfied {
				t.Fatalf("history from k=%d rejected at k=%d: %s", k1, k2, v)
			}
		}
	}
	// Strictness: the k=4 workload under 8-way contention forks beyond 1.
	if v := consistency.KForkCoherence(histories[4].History, 1, consistency.Options{}); v.Satisfied {
		t.Fatal("k=4 history unexpectedly admissible at k=1: no contention realized")
	}
}

// TestTheorem33ProdigalContainsFrugal is the executable Theorem 3.3:
// Ĥ(R(BT,Θ_F,k)) ⊆ Ĥ(R(BT,Θ_P)) — every frugal history passes the
// (vacuous) unbounded check, and the prodigal workload produces histories
// outside every finite-k class under sufficient contention.
func TestTheorem33ProdigalContainsFrugal(t *testing.T) {
	frugal := ForkWorkload{K: 2, Procs: 8, Rounds: 6, Seed: 31}.Run()
	if v := consistency.KForkCoherence(frugal.History, 0, consistency.Options{}); !v.Satisfied {
		t.Fatalf("frugal history rejected by Θ_P class: %s", v)
	}
	prodigal := ForkWorkload{K: oracle.Unbounded, Procs: 8, Rounds: 6, Seed: 31}.Run()
	if prodigal.MaxFanout <= 2 {
		t.Fatalf("prodigal workload insufficiently contended: fanout %d", prodigal.MaxFanout)
	}
	if v := consistency.KForkCoherence(prodigal.History, 2, consistency.Options{}); v.Satisfied {
		t.Fatal("prodigal history unexpectedly inside the k=2 class")
	}
}

// TestProdigalAcceptsAllContenders: under Θ_P every contender's append
// succeeds (Section 3.2: no upper bound on consumed tokens).
func TestProdigalAcceptsAllContenders(t *testing.T) {
	res := ForkWorkload{K: oracle.Unbounded, Procs: 5, Rounds: 4, Seed: 3}.Run()
	if res.SuccessfulAppends != 5*4 {
		t.Fatalf("successful = %d, want 20", res.SuccessfulAppends)
	}
	if res.MaxFanout != 5 {
		t.Fatalf("fanout = %d, want 5 (all contenders share each round's parent)", res.MaxFanout)
	}
}

// TestFrugalK1ExactlyOneWinnerPerRound: under Θ_F,1 each round commits
// exactly one block.
func TestFrugalK1ExactlyOneWinnerPerRound(t *testing.T) {
	res := ForkWorkload{K: 1, Procs: 6, Rounds: 7, Seed: 3}.Run()
	if res.SuccessfulAppends != 7 {
		t.Fatalf("successful = %d, want 7 (one per round)", res.SuccessfulAppends)
	}
	if res.MaxFanout != 1 {
		t.Fatalf("fanout = %d, want 1", res.MaxFanout)
	}
	// A k=1 fork workload is a single chain: the history satisfies SC.
	rep := consistency.CheckSC(res.History, consistency.Options{})
	if !rep.Satisfied() {
		t.Fatalf("k=1 workload violates SC:\n%s", rep)
	}
}

// TestCorollary341SCHistoriesSatisfyEC: every SC-satisfying sampled history
// also satisfies EC (Theorem 3.1 / Corollary 3.4.1).
func TestCorollary341SCHistoriesSatisfyEC(t *testing.T) {
	res := ForkWorkload{K: 1, Procs: 6, Rounds: 7, Seed: 13}.Run()
	if rep := consistency.CheckSC(res.History, consistency.Options{}); !rep.Satisfied() {
		t.Fatalf("precondition failed:\n%s", rep)
	}
	if rep := consistency.CheckEC(res.History, consistency.Options{}); !rep.Satisfied() {
		t.Fatalf("SC history violates EC:\n%s", rep)
	}
}

// TestProperty_FanoutMonotoneInK: across random seeds, the realized fanout
// is non-decreasing in k for the same contention pattern — the hierarchy of
// Figure 8 in sampled form.
func TestProperty_FanoutMonotoneInK(t *testing.T) {
	f := func(seed uint64) bool {
		f1 := ForkWorkload{K: 1, Procs: 6, Rounds: 4, Seed: seed}.Run().MaxFanout
		f2 := ForkWorkload{K: 2, Procs: 6, Rounds: 4, Seed: seed}.Run().MaxFanout
		f4 := ForkWorkload{K: 4, Procs: 6, Rounds: 4, Seed: seed}.Run().MaxFanout
		fp := ForkWorkload{K: oracle.Unbounded, Procs: 6, Rounds: 4, Seed: seed}.Run().MaxFanout
		return f1 <= f2 && f2 <= f4 && f4 <= fp && f1 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
