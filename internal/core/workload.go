package core

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
)

// ForkWorkload generates a contended history for the hierarchy experiments
// of Section 3.4 (Figures 8 and 14, Theorems 3.3 and 3.4): in each round,
// every process proposes a block for the same predecessor (the current tip
// of the longest chain) and consumes a token for it, so the realized fanout
// per block is limited exactly by the oracle bound k. The resulting
// (history, tree) pair exhibits how Θ_F,k shapes the admissible histories.
type ForkWorkload struct {
	// K is the oracle bound (oracle.Unbounded for Θ_P).
	K int
	// Procs is the number of contending processes.
	Procs int
	// Rounds is the number of contention rounds.
	Rounds int
	// Seed drives the oracle tapes.
	Seed uint64
}

// ForkResult is the outcome of running a ForkWorkload.
type ForkResult struct {
	// History is the recorded concurrent history, reads included.
	History *history.History
	// Tree is the final BlockTree.
	Tree *blocktree.Tree
	// MaxFanout is the realized maximum number of children per block.
	MaxFanout int
	// SuccessfulAppends counts appends that returned true.
	SuccessfulAppends int
}

// Run executes the workload deterministically (sequential rounds; the
// contention is on the oracle's consumed sets, not on goroutine timing, so
// results are reproducible).
func (w ForkWorkload) Run() ForkResult {
	procs := w.Procs
	if procs <= 0 {
		procs = 4
	}
	rounds := w.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	merits := make([]float64, procs)
	for i := range merits {
		merits[i] = 1
	}
	orc := oracle.New(oracle.Config{K: w.K, Merits: merits, Seed: w.Seed})
	rec := history.NewRecorder()
	tree := blocktree.New()
	sel := blocktree.LongestChain{}

	success := 0
	for r := 0; r < rounds; r++ {
		parent := sel.Select(tree).Tip().ID
		for p := 0; p < procs; p++ {
			id := blocktree.BlockID(fmt.Sprintf("r%02d-p%02d", r, p))
			op := rec.Invoke(history.ProcID(p), history.Label{Kind: history.KindAppend, Block: id})
			tok, granted := orc.GetToken(p, parent, id)
			ok := false
			if granted {
				if _, inserted, err := orc.ConsumeToken(tok); err == nil && inserted {
					if tree.Insert(blocktree.Block{ID: id, Parent: parent, Token: tok.ID, Proposer: p}) == nil {
						ok = true
						success++
					}
				}
			}
			rec.Respond(op, history.Label{Kind: history.KindAppend, Block: id, Parent: parent, OK: ok})
		}
		// One read per process per round.
		for p := 0; p < procs; p++ {
			op := rec.Invoke(history.ProcID(p), history.Label{Kind: history.KindRead})
			rec.Respond(op, history.Label{Kind: history.KindRead, Chain: sel.Select(tree).IDs()})
		}
	}
	return ForkResult{
		History:           rec.Snapshot(),
		Tree:              tree,
		MaxFanout:         tree.MaxFanout(),
		SuccessfulAppends: success,
	}
}
