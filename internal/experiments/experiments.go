// Package experiments runs the per-figure/per-theorem reproduction
// experiments indexed in DESIGN.md and records paper-claim versus measured
// outcome. Each experiment is deterministic (seeded) and returns a
// structured Result consumed by the btadt CLI, the test suite and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"blockadt/internal/adt"
	"blockadt/internal/blocktree"
	"blockadt/internal/chains"
	"blockadt/internal/consensus"
	"blockadt/internal/consistency"
	"blockadt/internal/core"
	"blockadt/internal/figures"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
	"blockadt/internal/parallel"
	"blockadt/internal/registers"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "F2", "T42").
	ID string
	// Artifact names the paper artifact reproduced.
	Artifact string
	// PaperClaim summarizes what the paper states.
	PaperClaim string
	// Measured summarizes what the reproduction observed.
	Measured string
	// Pass reports whether the observation matches the claim.
	Pass bool
}

// String renders a one-line summary.
func (r Result) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("[%s] %-4s %-34s %s", status, r.ID, r.Artifact, r.Measured)
}

// Runner executes experiments with a shared base seed.
type Runner struct {
	// Seed drives every experiment; default 42.
	Seed uint64
}

func (r Runner) seed() uint64 {
	if r.Seed == 0 {
		return 42
	}
	return r.Seed
}

// All runs every experiment and returns the results in index order. The
// experiments are mutually independent (each builds its own simulators,
// oracles and recorders from the shared seed), so they fan out across all
// CPUs; AllParallel(1) forces the old serial pass and returns identical
// results.
func (r Runner) All() []Result {
	return r.AllParallel(0)
}

// AllParallel is All with an explicit worker bound (<1 selects NumCPU).
func (r Runner) AllParallel(parallelism int) []Result {
	return parallel.Map([]func() Result{
		r.F1SequentialSpec,
		r.F2StrongHistory,
		r.F3EventualHistory,
		r.F4InconsistentHistory,
		r.F5F6OracleTransitions,
		r.F7AppendRefinement,
		r.F8F14Hierarchy,
		r.T31SCSubsetEC,
		r.T32KForkCoherence,
		r.T33T34FrugalInclusions,
		r.T41CASFromConsumeToken,
		r.T42ConsensusFromFrugal,
		r.T43ProdigalFromSnapshot,
		r.T46T47UpdateAgreementNecessity,
		r.T48ForkImpossibility,
		r.Table1Classification,
	}, parallelism, func(_ int, exp func() Result) Result { return exp() })
}

// F1SequentialSpec replays Figure 1's transition path through the BT-ADT
// transducer and checks membership in L(BT-ADT).
func (r Runner) F1SequentialSpec() Result {
	valid := func(b blocktree.Block) bool { return b.ID != "b3" }
	bt := blocktree.ADT(blocktree.LongestChain{}, valid)
	seq := []adt.Operation[blocktree.Input, blocktree.Output]{
		adt.Out[blocktree.Input, blocktree.Output](blocktree.AppendOp(blocktree.Block{ID: "b1"}), blocktree.Output{OK: true}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.AppendOp(blocktree.Block{ID: "b3"}), blocktree.Output{OK: false}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.ReadOp(), blocktree.Output{IsChain: true, Chain: history.Chain{"b0", "b1"}}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.AppendOp(blocktree.Block{ID: "b2"}), blocktree.Output{OK: true}),
		adt.Out[blocktree.Input, blocktree.Output](blocktree.ReadOp(), blocktree.Output{IsChain: true, Chain: history.Chain{"b0", "b1", "b2"}}),
	}
	err := bt.Recognizes(seq, blocktree.Output.Equal)
	return Result{
		ID:         "F1",
		Artifact:   "Fig 1: BT-ADT transition path",
		PaperClaim: "the depicted append/read path is a sequential history of the BT-ADT",
		Measured:   measured(err == nil, "path ∈ L(BT-ADT)", fmt.Sprintf("rejected: %v", err)),
		Pass:       err == nil,
	}
}

func measured(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}

// figOpts is the grace window used on the hand-built figure histories.
var figOpts = consistency.Options{GraceWindow: 8}

// F2StrongHistory checks that the Figure 2 history satisfies SC.
func (r Runner) F2StrongHistory() Result {
	cls := consistency.Classify(figures.Fig2(12), figOpts)
	pass := cls.Level == consistency.LevelSC
	return Result{
		ID:         "F2",
		Artifact:   "Fig 2: SC-admissible history",
		PaperClaim: "the history satisfies the BT Strong Consistency criterion",
		Measured:   "classified " + cls.Level.String(),
		Pass:       pass,
	}
}

// F3EventualHistory checks that the Figure 3 history is EC but not SC.
func (r Runner) F3EventualHistory() Result {
	cls := consistency.Classify(figures.Fig3(12), figOpts)
	pass := cls.Level == consistency.LevelEC
	return Result{
		ID:         "F3",
		Artifact:   "Fig 3: EC-but-not-SC history",
		PaperClaim: "the history satisfies Eventual but violates Strong consistency",
		Measured:   "classified " + cls.Level.String() + "; SC failures: " + strings.Join(cls.SC.Failed(), ","),
		Pass:       pass,
	}
}

// F4InconsistentHistory checks that the Figure 4 history satisfies neither
// criterion.
func (r Runner) F4InconsistentHistory() Result {
	cls := consistency.Classify(figures.Fig4(12), figOpts)
	pass := cls.Level == consistency.LevelNone
	return Result{
		ID:         "F4",
		Artifact:   "Fig 4: inconsistent history",
		PaperClaim: "the history satisfies no BT consistency criterion",
		Measured:   "classified " + cls.Level.String(),
		Pass:       pass,
	}
}

// F5F6OracleTransitions replays the Figure 6 oracle path and verifies the
// Figure 5 abstract state (tapes + K array) behaves as specified.
func (r Runner) F5F6OracleTransitions() Result {
	o := oracle.New(oracle.Config{K: 2, Merits: []float64{1, 0}, Seed: r.seed()})
	tok, granted := o.GetToken(0, "obj1", "objk")
	if !granted {
		return Result{ID: "F5-6", Artifact: "Fig 5-6: Θ oracle state/transitions", PaperClaim: "getToken pops tkn, consumeToken fills K[h] up to k", Measured: "tape α1 (p=1) refused a token", Pass: false}
	}
	set, inserted, err := o.ConsumeToken(tok)
	_, zeroGrant := o.GetToken(1, "obj1", "objz")
	pass := inserted && err == nil && len(set) == 1 && set[0] == "objk" && !zeroGrant
	return Result{
		ID:         "F5-6",
		Artifact:   "Fig 5-6: Θ oracle state/transitions",
		PaperClaim: "getToken pops the merit tape; consumeToken inserts into K[h] while |K[h]| < k",
		Measured:   fmt.Sprintf("K[obj1]=%v after consume; p=0 tape granted=%v", set, zeroGrant),
		Pass:       pass,
	}
}

// F7AppendRefinement executes the refined append of Figure 7 on the
// composed object and checks the resulting chain and oracle state.
func (r Runner) F7AppendRefinement() Result {
	orc := oracle.NewFrugal(2, r.seed(), 1)
	bc := core.New(core.Config{Oracle: orc})
	ok1, _ := bc.Append(0, blocktree.Block{ID: "bk"})
	ok2, _ := bc.Append(0, blocktree.Block{ID: "b2"})
	chain := bc.Read(0).String()
	set := orc.ConsumedSet("b0")
	pass := ok1 && ok2 && chain == "b0⌢bk⌢b2" && len(set) == 1 && set[0] == "bk"
	return Result{
		ID:         "F7",
		Artifact:   "Fig 7: refined append path",
		PaperClaim: "append = getToken*·consumeToken·concatenate, atomically",
		Measured:   fmt.Sprintf("read()=%s, K[b0]=%v", chain, set),
		Pass:       pass,
	}
}

// F8F14Hierarchy samples the refinement hierarchy: realized fanout is
// monotone in k, and only k=1 yields fork-free trees.
func (r Runner) F8F14Hierarchy() Result {
	fanouts := map[string]int{}
	ks := []struct {
		label string
		k     int
	}{{"k=1", 1}, {"k=2", 2}, {"k=4", 4}, {"Θ_P", oracle.Unbounded}}
	prev := 0
	monotone := true
	for i, e := range ks {
		res := core.ForkWorkload{K: e.k, Procs: 8, Rounds: 6, Seed: r.seed()}.Run()
		fanouts[e.label] = res.MaxFanout
		if i > 0 && res.MaxFanout < prev {
			monotone = false
		}
		prev = res.MaxFanout
	}
	pass := monotone && fanouts["k=1"] == 1 && fanouts["Θ_P"] == 8
	return Result{
		ID:         "F8-14",
		Artifact:   "Fig 8/14: refinement hierarchy",
		PaperClaim: "Ĥ(Θ_F,k1) ⊆ Ĥ(Θ_F,k2) ⊆ Ĥ(Θ_P) for k1≤k2; only k=1 forbids forks",
		Measured:   fmt.Sprintf("max fanout: k=1→%d, k=2→%d, k=4→%d, Θ_P→%d", fanouts["k=1"], fanouts["k=2"], fanouts["k=4"], fanouts["Θ_P"]),
		Pass:       pass,
	}
}

// T31SCSubsetEC checks Theorem 3.1 on the figure histories.
func (r Runner) T31SCSubsetEC() Result {
	fig2 := figures.Fig2(12)
	scIsEC := consistency.CheckSC(fig2, figOpts).Satisfied() && consistency.CheckEC(fig2, figOpts).Satisfied()
	fig3 := figures.Fig3(12)
	strict := consistency.CheckEC(fig3, figOpts).Satisfied() && !consistency.CheckSC(fig3, figOpts).Satisfied()
	pass := scIsEC && strict
	return Result{
		ID:         "T3.1",
		Artifact:   "Theorem 3.1: H_SC ⊂ H_EC",
		PaperClaim: "every SC history is EC; some EC history is not SC",
		Measured:   fmt.Sprintf("SC⇒EC on Fig2: %v; EC∖SC witness (Fig3): %v", scIsEC, strict),
		Pass:       pass,
	}
}

// T32KForkCoherence checks Theorem 3.2 under contention.
func (r Runner) T32KForkCoherence() Result {
	ok := true
	detail := []string{}
	for _, k := range []int{1, 2, 3} {
		res := core.ForkWorkload{K: k, Procs: 8, Rounds: 5, Seed: r.seed()}.Run()
		v := consistency.KForkCoherence(res.History, k, consistency.Options{})
		ok = ok && v.Satisfied && res.MaxFanout <= k
		detail = append(detail, fmt.Sprintf("k=%d fanout=%d", k, res.MaxFanout))
	}
	return Result{
		ID:         "T3.2",
		Artifact:   "Theorem 3.2: k-Fork Coherence",
		PaperClaim: "histories of BT-ADT ∘ Θ_F,k have ≤ k successful appends per token target",
		Measured:   strings.Join(detail, ", "),
		Pass:       ok,
	}
}

// T33T34FrugalInclusions checks the sampled inclusions of Theorems 3.3/3.4.
func (r Runner) T33T34FrugalInclusions() Result {
	h1 := core.ForkWorkload{K: 1, Procs: 8, Rounds: 5, Seed: r.seed()}.Run().History
	h2 := core.ForkWorkload{K: 2, Procs: 8, Rounds: 5, Seed: r.seed()}.Run().History
	hp := core.ForkWorkload{K: oracle.Unbounded, Procs: 8, Rounds: 5, Seed: r.seed()}.Run().History
	inc12 := consistency.KForkCoherence(h1, 2, consistency.Options{}).Satisfied
	incP := consistency.KForkCoherence(h2, 0, consistency.Options{}).Satisfied
	strict := !consistency.KForkCoherence(hp, 2, consistency.Options{}).Satisfied
	pass := inc12 && incP && strict
	return Result{
		ID:         "T3.3-4",
		Artifact:   "Theorems 3.3/3.4: oracle-class inclusions",
		PaperClaim: "Ĥ(Θ_F,k1) ⊆ Ĥ(Θ_F,k2) ⊆ Ĥ(Θ_P), strictly under contention",
		Measured:   fmt.Sprintf("k1⊆k2: %v, frugal⊆prodigal: %v, strictness: %v", inc12, incP, strict),
		Pass:       pass,
	}
}

// T41CASFromConsumeToken exercises the Figure 9/10 reduction.
func (r Runner) T41CASFromConsumeToken() Result {
	cas := registers.NewCASFromCT(registers.NewConsumeTokenK1())
	won := cas.CompareAndSwapEmpty("h", "b1") == ""
	lostPrev := cas.CompareAndSwapEmpty("h", "b2")
	pass := won && lostPrev == "b1"
	return Result{
		ID:         "T4.1",
		Artifact:   "Fig 9/10: CAS from consumeToken (k=1)",
		PaperClaim: "compare&swap is wait-free implementable from consumeToken",
		Measured:   fmt.Sprintf("winner saw {}, loser saw %q", lostPrev),
		Pass:       pass,
	}
}

// T42ConsensusFromFrugal runs Protocol A with 16 processes.
func (r Runner) T42ConsensusFromFrugal() Result {
	const n = 16
	merits := make([]float64, n)
	for i := range merits {
		merits[i] = 1
	}
	o := oracle.New(oracle.Config{K: 1, Merits: merits, Seed: r.seed()})
	c, err := consensus.NewFromFrugal(o, "b0")
	if err != nil {
		return Result{ID: "T4.2", Artifact: "Fig 11/Thm 4.2", Measured: err.Error(), Pass: false}
	}
	decisions := map[consensus.Value]int{}
	for i := 0; i < n; i++ {
		d, err := c.Propose(i, consensus.Value(fmt.Sprintf("blk%d", i)))
		if err != nil {
			return Result{ID: "T4.2", Artifact: "Fig 11/Thm 4.2", Measured: err.Error(), Pass: false}
		}
		decisions[d]++
	}
	pass := len(decisions) == 1
	var decided consensus.Value
	for d := range decisions {
		decided = d
	}
	return Result{
		ID:         "T4.2",
		Artifact:   "Fig 11 / Thm 4.2: Consensus from Θ_F,k=1",
		PaperClaim: "Θ_F,k=1 has consensus number ∞ (Protocol A solves n-process consensus)",
		Measured:   fmt.Sprintf("%d processes all decided %q", n, decided),
		Pass:       pass,
	}
}

// T43ProdigalFromSnapshot exercises the Figure 12 reduction.
func (r Runner) T43ProdigalFromSnapshot() Result {
	ct := registers.NewCTFromSnapshot(8)
	ct.Consume("h", "t1")
	ct.Consume("h", "t2")
	set := ct.Consume("h", "t3")
	pass := len(set) == 3
	return Result{
		ID:         "T4.3",
		Artifact:   "Fig 12 / Thm 4.3: Θ_P from Atomic Snapshot",
		PaperClaim: "the prodigal consumeToken is implementable from snapshot (consensus number 1)",
		Measured:   fmt.Sprintf("3 consumptions all accepted, final set %v", set),
		Pass:       pass,
	}
}

// T46T47UpdateAgreementNecessity compares a reliable run against a lossy
// run: the reliable run satisfies Update Agreement + LRC + EC; the lossy
// run violates all three.
func (r Runner) T46T47UpdateAgreementNecessity() Result {
	reliable := runReplicated(r.seed(), false)
	lossy := runReplicated(r.seed(), true)
	opts := consistency.Options{Procs: []history.ProcID{0, 1, 2}, GraceWindow: 8}
	relOK := consistency.UpdateAgreement(reliable, opts).Satisfied &&
		consistency.LRC(reliable, opts).Satisfied &&
		consistency.CheckEC(reliable, opts).Satisfied()
	lossyBad := !consistency.UpdateAgreement(lossy, opts).Satisfied &&
		!consistency.LRC(lossy, opts).Satisfied &&
		!consistency.EventualPrefix(lossy, opts).Satisfied
	pass := relOK && lossyBad
	return Result{
		ID:         "T4.6-7",
		Artifact:   "Fig 13 / Thms 4.6-4.7: Update Agreement & LRC necessity",
		PaperClaim: "dropping even one correct process's update breaks Eventual Prefix",
		Measured:   fmt.Sprintf("reliable run: UA+LRC+EC=%v; lossy run violates UA,LRC,EventualPrefix=%v", relOK, lossyBad),
		Pass:       pass,
	}
}

// T48ForkImpossibility runs the Theorem 4.8 construction.
func (r Runner) T48ForkImpossibility() Result {
	violatedAtK2, singleAtK1 := theorem48Runs(r.seed())
	pass := violatedAtK2 && singleAtK1
	return Result{
		ID:         "T4.8",
		Artifact:   "Theorem 4.8: Strong Prefix needs Θ_F,k=1",
		PaperClaim: "with any fork-allowing oracle, a fault-free synchronous run violates Strong Prefix",
		Measured:   fmt.Sprintf("k=2 construction violates StrongPrefix: %v; k=1 rerun stays a single chain: %v", violatedAtK2, singleAtK1),
		Pass:       pass,
	}
}

// Table1Classification regenerates Table 1. The seven system runs stay
// serial here: this experiment already executes inside the runner's
// worker pool, and a nested NumCPU fan-out would only oversubscribe the
// CPUs (and break AllParallel(1)'s one-worker guarantee).
func (r Runner) Table1Classification() Result {
	rows := chains.ClassifyParallel(chains.Params{N: 8, TargetBlocks: 30, Seed: r.seed()}, 1)
	mismatches := []string{}
	for _, row := range rows {
		if !row.Match {
			mismatches = append(mismatches, fmt.Sprintf("%s(%s≠%s)", row.System, row.Measured, row.Expected))
		}
	}
	pass := len(mismatches) == 0
	return Result{
		ID:         "T1",
		Artifact:   "Table 1: mapping of existing systems",
		PaperClaim: "Bitcoin/Ethereum → R(BT_EC,Θ_P); Algorand/ByzCoin/PeerCensus/RedBelly/Hyperledger → R(BT_SC,Θ_F,k=1)",
		Measured:   measured(pass, "all 7 systems classified at the paper's level", "mismatches: "+strings.Join(mismatches, ", ")),
		Pass:       pass,
	}
}

// Format renders results as an aligned report.
func Format(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintln(&b, r)
	}
	pass := 0
	for _, r := range results {
		if r.Pass {
			pass++
		}
	}
	fmt.Fprintf(&b, "%d/%d experiments reproduce the paper's claims\n", pass, len(results))
	return b.String()
}
