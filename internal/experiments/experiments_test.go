package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass: every indexed experiment reproduces its paper
// claim — the repository-level acceptance test.
func TestAllExperimentsPass(t *testing.T) {
	results := Runner{}.All()
	if len(results) != 16 {
		t.Fatalf("experiments = %d, want 16", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s (%s): %s", r.ID, r.Artifact, r.Measured)
		}
	}
	t.Logf("\n%s", Format(results))
}

// TestExperimentsDeterministic: the same seed yields identical measured
// strings.
func TestExperimentsDeterministic(t *testing.T) {
	a := Runner{Seed: 7}.All()
	b := Runner{Seed: 7}.All()
	for i := range a {
		if a[i].Measured != b[i].Measured || a[i].Pass != b[i].Pass {
			t.Fatalf("experiment %s not deterministic", a[i].ID)
		}
	}
}

// TestAlternateSeedsStillPass: the reproduction is not seed-lucky.
func TestAlternateSeedsStillPass(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, seed := range []uint64{1, 9, 123} {
		for _, r := range (Runner{Seed: seed}).All() {
			if !r.Pass {
				t.Errorf("seed %d: %s failed: %s", seed, r.ID, r.Measured)
			}
		}
	}
}

func TestFormat(t *testing.T) {
	out := Format([]Result{{ID: "X", Artifact: "a", Measured: "m", Pass: true}})
	if !strings.Contains(out, "[PASS]") || !strings.Contains(out, "1/1") {
		t.Fatalf("format:\n%s", out)
	}
	out = Format([]Result{{ID: "X", Artifact: "a", Measured: "m", Pass: false}})
	if !strings.Contains(out, "[FAIL]") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestResultString(t *testing.T) {
	s := Result{ID: "F2", Artifact: "art", Measured: "ok", Pass: true}.String()
	if !strings.Contains(s, "F2") || !strings.Contains(s, "PASS") {
		t.Fatalf("string: %s", s)
	}
}

// TestExtensionsPass: the beyond-the-paper experiments (worked examples,
// future work, related-work mapping) also hold.
func TestExtensionsPass(t *testing.T) {
	results := Runner{}.Extensions()
	if len(results) != 9 {
		t.Fatalf("extensions = %d, want 9", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s (%s): %s", r.ID, r.Artifact, r.Measured)
		}
	}
	t.Logf("\n%s", Format(results))
}
