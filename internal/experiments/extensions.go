package experiments

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/chains"
	"blockadt/internal/consistency"
	"blockadt/internal/fairness"
	"blockadt/internal/figures"
	"blockadt/internal/ledger"
	"blockadt/internal/parallel"
)

// Extensions runs the experiments that go beyond the paper's published
// claims: its worked examples (the Bitcoin validity predicate), its
// explicitly deferred future work (fairness, asynchrony), and its
// related-work mapping (MPC). They are reported separately from All()
// because the paper states them as examples or conjectures, not theorems.
// Like All, the extensions are independent and fan out across all CPUs.
func (r Runner) Extensions() []Result {
	return r.ExtensionsParallel(0)
}

// ExtensionsParallel is Extensions with an explicit worker bound (<1
// selects NumCPU).
func (r Runner) ExtensionsParallel(parallelism int) []Result {
	return parallel.Map([]func() Result{
		r.X1LedgerPredicate,
		r.X2Fairness,
		r.X3AsyncEventualPrefix,
		r.X4MPCMapping,
		r.X5FinalityGadget,
		r.X6PBFTDischarge,
		r.X7SelfishMining,
		r.X8PartitionProne,
		r.X9FruitChain,
	}, parallelism, func(_ int, exp func() Result) Result { return exp() })
}

// mustExecute runs a scenario whose strategies are fixed at compile time:
// the only Execute errors are composition mistakes, so a failure here is a
// programming bug, not an input problem.
func mustExecute(sc chains.Scenario) chains.Result {
	res, err := chains.Execute(sc)
	if err != nil {
		panic(err)
	}
	return res
}

// X1LedgerPredicate instantiates the paper's Section 3.1 example of the
// validity predicate P: connectivity plus no double spending.
func (r Runner) X1LedgerPredicate() Result {
	tree := blocktree.New()
	v := ledger.NewValidator(map[ledger.Account]uint64{"alice": 100, "bob": 50}, tree)
	p := v.Predicate()

	pay := func(txs ...ledger.Tx) []byte {
		enc, err := ledger.Payload{Txs: txs}.Encode()
		if err != nil {
			panic(err)
		}
		return enc
	}
	good := blocktree.Block{ID: "g", Parent: blocktree.GenesisID,
		Payload: pay(ledger.Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0})}
	okGood := p(good)
	if okGood {
		if err := tree.Insert(good); err != nil {
			okGood = false
		}
	}
	dbl := blocktree.Block{ID: "d", Parent: "g",
		Payload: pay(ledger.Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0})}
	okDbl := p(dbl)
	orphan := blocktree.Block{ID: "o", Parent: "nowhere"}
	okOrphan := p(orphan)
	pass := okGood && !okDbl && !okOrphan
	return Result{
		ID:         "X1",
		Artifact:   "Sec 3.1 example: validity predicate P",
		PaperClaim: "P(b): b connects to the chain and does not double spend",
		Measured:   fmt.Sprintf("valid block accepted=%v, double spend rejected=%v, unconnected rejected=%v", okGood, !okDbl, !okOrphan),
		Pass:       pass,
	}
}

// X2Fairness exercises the merit parameter's fairness reading: realized
// block shares track the merit distribution (chain quality).
func (r Runner) X2Fairness() Result {
	merits := []float64{0.16, 0.04, 0.04, 0.04, 0.04}
	p := chains.Params{N: 5, TargetBlocks: 150, Seed: r.seed(), Merits: merits}
	res := chains.Bitcoin{}.Run(p)
	rep := fairness.Analyze(res.History, merits)
	pass := rep.Total >= 100 && rep.Fair(0.15)
	return Result{
		ID:         "X2",
		Artifact:   "Merit parameter → fairness (future work)",
		PaperClaim: "the generic merit parameter αᵢ supports defining fairness",
		Measured:   fmt.Sprintf("%d blocks; realized-vs-entitled TVD=%.3f (p0 entitled 50%%)", rep.Total, rep.TVD),
		Pass:       pass,
	}
}

// X3AsyncEventualPrefix exhibits finite-run witnesses for the Section 4.2
// open issues (ii)/(iii): Eventual Prefix fails when block generation
// outpaces message delay, and holds when it does not.
func (r Runner) X3AsyncEventualPrefix() Result {
	fast := mustExecute(chains.Scenario{
		System: chains.Bitcoin{},
		Links:  chains.AsyncLinks,
		Params: chains.ScenarioParams{
			Params:   chains.Params{N: 6, TargetBlocks: 60, Seed: 23, MineInterval: 1, TokenProb: 0.5, ReadEvery: 4},
			MaxDelay: 192, TailProb: 0.2,
		},
	})
	fastOpts := chains.Options(chains.Params{N: 6}, fast.History)
	fastOpts.GraceWindow = 16
	fastDiverges := !consistency.EventualPrefix(fast.History, fastOpts).Satisfied

	slow := mustExecute(chains.Scenario{
		System: chains.Bitcoin{},
		Links:  chains.AsyncLinks,
		Params: chains.ScenarioParams{
			Params:   chains.Params{N: 6, TargetBlocks: 25, Seed: 23, MineInterval: 64, TokenProb: 0.04, ReadEvery: 32},
			MaxDelay: 8,
		},
	})
	slowOpts := chains.Options(chains.Params{N: 6}, slow.History)
	slowConverges := consistency.EventualPrefix(slow.History, slowOpts).Satisfied

	pass := fastDiverges && slowConverges
	return Result{
		ID:         "X3",
		Artifact:   "Sec 4.2 open issues (ii)/(iii): asynchrony",
		PaperClaim: "Eventual Prefix conjectured impossible when block interval < message delay",
		Measured:   fmt.Sprintf("fast-mining async run diverges=%v; slow-mining run converges=%v", fastDiverges, slowConverges),
		Pass:       pass,
	}
}

// X4MPCMapping checks the related-work alignment with Monotonic Prefix
// Consistency ([20]): SC histories are MPC, the EC-only witness is not.
func (r Runner) X4MPCMapping() Result {
	opts := consistency.Options{GraceWindow: 8}
	fig2MPC := consistency.CheckMPC(figures.Fig2(12), opts).Satisfied()
	fig3MPC := consistency.CheckMPC(figures.Fig3(12), opts).Satisfied()
	pass := fig2MPC && !fig3MPC
	return Result{
		ID:         "X4",
		Artifact:   "Related work [20]: MPC mapping",
		PaperClaim: "the Strong Prefix results transfer to Monotonic Prefix Consistency",
		Measured:   fmt.Sprintf("SC history is MPC: %v; forked history violates MPC: %v", fig2MPC, !fig3MPC),
		Pass:       pass,
	}
}

// X5FinalityGadget layers a depth-d finality rule on an eventually
// consistent PoW run: the finalized reads satisfy Strong Prefix while the
// raw reads do not — a BT-ADT_SC view carved out of R(BT-ADT_EC, Θ_P).
func (r Runner) X5FinalityGadget() Result {
	raw, finalized, violations := runFinalityComparison(r.seed())
	rawSP := consistency.StrongPrefix(raw, consistency.Options{}).Satisfied
	finSP := consistency.StrongPrefix(finalized, consistency.Options{}).Satisfied
	pass := !rawSP && finSP && violations == 0
	return Result{
		ID:         "X5",
		Artifact:   "Finality gadget (oracle future work)",
		PaperClaim: "stronger synchronization can be layered on weaker oracles",
		Measured:   fmt.Sprintf("raw reads StrongPrefix=%v; depth-8 finalized reads StrongPrefix=%v (%d finality violations)", rawSP, finSP, violations),
		Pass:       pass,
	}
}

// X6PBFTDischarge re-commits a consortium chain through the real PBFT
// protocol instead of the Θ_F,k=1 oracle and verifies the classification
// is unchanged — the oracle abstraction is sound.
func (r Runner) X6PBFTDischarge() Result {
	p := chains.Params{N: 4, TargetBlocks: 15, Seed: r.seed()}
	pbftRun := chains.PBFTChain{}.Run(p)
	cls := pbftRun.Classify(chains.Options(p, pbftRun.History))
	pass := cls.Level == consistency.LevelSC && pbftRun.Forks == 0
	return Result{
		ID:         "X6",
		Artifact:   "PBFT discharge of the Θ_F,k=1 abstraction",
		PaperClaim: "PBFT-based systems implement R(BT-ADT_SC, Θ_F,k=1)",
		Measured:   fmt.Sprintf("PBFT-committed chain: %d blocks, %d forks, classified %s", pbftRun.Blocks, pbftRun.Forks, cls.Level),
		Pass:       pass,
	}
}

// X7SelfishMining runs the Eyal–Sirer strategy inside the framework: chain
// quality degrades below the merit entitlement while the run remains
// eventually consistent — fairness and consistency are orthogonal.
func (r Runner) X7SelfishMining() Result {
	p := chains.Params{N: 6, TargetBlocks: 120, Seed: 31}
	res := mustExecute(chains.Scenario{
		Adversary: chains.SelfishWithholding,
		Params:    chains.ScenarioParams{Params: p, Alpha: 0.34},
	})
	stats := res.Adversary
	ec := consistency.CheckEC(res.History, chains.Options(p, res.History)).Satisfied()
	profitable := stats.AdversaryShare > stats.AdversaryMerit
	pass := profitable && stats.Orphaned > 0 && ec
	return Result{
		ID:         "X7",
		Artifact:   "Selfish mining vs the merit parameter",
		PaperClaim: "fairness needs its own definition: consistency does not imply chain quality",
		Measured:   fmt.Sprintf("α=%.2f adversary holds %.1f%% of the chain, %d honest blocks orphaned, run still EC=%v", stats.AdversaryMerit, 100*stats.AdversaryShare, stats.Orphaned, ec),
		Pass:       pass,
	}
}

// X8PartitionProne exhibits the related-work remark that partition-prone
// systems cap the achievable consistency: during a partition the sides
// diverge; healing plus an anti-entropy resync (re-establishing LRC)
// restores Eventual Prefix, while healing alone does not.
func (r Runner) X8PartitionProne() Result {
	convergedWith, hWith := runPartition(r.seed(), true)
	convergedWithout, hWithout := runPartition(r.seed(), false)
	withOK := consistency.EventualPrefix(hWith, consistency.Options{GraceWindow: len(hWith.Reads()) * 3 / 4}).Satisfied
	withoutBad := !consistency.EventualPrefix(hWithout, consistency.Options{GraceWindow: 8}).Satisfied
	pass := convergedWith && withOK && !convergedWithout && withoutBad
	return Result{
		ID:         "X8",
		Artifact:   "Partition-prone message passing ([20] remark)",
		PaperClaim: "without re-established LRC after a partition, Eventual Prefix is lost",
		Measured:   fmt.Sprintf("heal+resync converges=%v (EventualPrefix=%v); heal-only converges=%v", convergedWith, withOK, convergedWithout),
		Pass:       pass,
	}
}

// X9FruitChain runs the FruitChain protocol (Section 5.1: "similar to
// Bitcoin except for the rewarding mechanism") under the same selfish
// adversary as X7: block authorship skews, fruit rewards do not.
func (r Runner) X9FruitChain() Result {
	p := chains.Params{N: 6, TargetBlocks: 120, Seed: 31}
	res := mustExecute(chains.Scenario{
		Adversary: chains.FruitWithholding,
		Params:    chains.ScenarioParams{Params: p, Alpha: 0.34},
	})
	stats := res.Adversary
	blockExcess := stats.AdversaryBlockShare - stats.AdversaryMerit
	rewardExcess := stats.AdversaryRewardShare - stats.AdversaryMerit
	cls := consistency.Classify(res.History, chains.Options(p, res.History))
	pass := blockExcess > 0.05 && rewardExcess < blockExcess/2 && cls.Level == consistency.LevelEC
	return Result{
		ID:         "X9",
		Artifact:   "FruitChain (Sec 5.1): fair rewards",
		PaperClaim: "FruitChain maps to R(BT-ADT_EC, Θ_P); only the rewarding mechanism differs",
		Measured:   fmt.Sprintf("under α=0.34 withholding: block share %.1f%%, reward share %.1f%%, still %s", 100*stats.AdversaryBlockShare, 100*stats.AdversaryRewardShare, cls.Level),
		Pass:       pass,
	}
}
