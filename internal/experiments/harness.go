package experiments

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/finality"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

// runReplicated drives the 3-process replicated BT-ADT of Section 4.2 —
// process 0 creates blocks, everyone reads — over reliable or lossy links
// (lossy = all updates towards process 2 dropped, the Lemma 4.5
// construction).
func runReplicated(seed uint64, lossy bool) *history.History {
	var links netsim.LinkModel = netsim.Synchronous{Delta: 4}
	if lossy {
		links = netsim.Lossy{
			Inner: netsim.Synchronous{Delta: 4},
			Rule:  func(m netsim.Message, _ int64) bool { return m.Kind == netsim.UpdateMsg && m.To == 2 },
		}
	}
	s := netsim.New(links, seed)
	reps := map[history.ProcID]*netsim.Replica{}
	for i := 0; i < 3; i++ {
		id := history.ProcID(i)
		reps[id] = netsim.NewReplica(id, blocktree.LongestChain{}, s.Recorder())
	}
	count := 0
	const blocks = 12
	for i := 0; i < 3; i++ {
		id := history.ProcID(i)
		rep := reps[id]
		creator := i == 0
		s.Register(id, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer: func(s *netsim.Sim, tag string) {
				switch tag {
				case "create":
					if creator && count < blocks {
						parent := rep.Selected().Tip()
						b := blocktree.Block{
							ID:     blocktree.BlockID(fmt.Sprintf("c%03d", count)),
							Parent: parent.ID,
							Token:  uint64(count + 1),
						}
						count++
						rep.CreateAndBroadcast(s, parent.ID, b)
						s.TimerAt(id, s.Now()+10, "create")
					}
				case "read":
					rep.Read()
					s.TimerAt(id, s.Now()+7, "read")
				}
			},
		})
		if creator {
			s.TimerAt(id, 1, "create")
		}
		s.TimerAt(id, 2+int64(i), "read")
	}
	s.Run(600)
	for _, p := range s.Procs() {
		reps[p].Read()
	}
	return s.Recorder().Snapshot()
}

// theorem48Runs executes the Theorem 4.8 construction twice: once with
// Θ_F,k=2 (forks allowed — Strong Prefix must break) and once with Θ_F,k=1
// (the fork is refused — Strong Prefix must hold). It returns
// (violatedAtK2, singleChainAtK1).
func theorem48Runs(seed uint64) (bool, bool) {
	run := func(k int) (*history.History, int) {
		const delta = 10
		sim := netsim.New(netsim.Synchronous{Delta: delta, Min: delta}, seed)
		orc := oracle.NewFrugal(k, seed, 1, 1)
		rec := sim.Recorder()
		reps := map[history.ProcID]*netsim.Replica{}
		for _, p := range []history.ProcID{0, 1} {
			rep := netsim.NewReplica(p, blocktree.LongestChain{}, rec)
			reps[p] = rep
			p := p
			sim.Register(p, netsim.HandlerFuncs{
				Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
				Timer: func(s *netsim.Sim, tag string) {
					switch tag {
					case "append":
						parent := rep.Selected().Tip()
						id := blocktree.BlockID("b_" + string(rune('i'+p)))
						tok, ok := orc.GetToken(int(p), parent.ID, id)
						if !ok {
							return
						}
						op := rec.Invoke(p, history.Label{Kind: history.KindAppend, Block: id})
						_, inserted, err := orc.ConsumeToken(tok)
						okAppend := inserted && err == nil
						rec.Respond(op, history.Label{Kind: history.KindAppend, Block: id, Parent: parent.ID, OK: okAppend})
						if okAppend {
							rep.CreateAndBroadcast(s, parent.ID, blocktree.Block{ID: id, Parent: parent.ID, Token: tok.ID})
						}
					case "read":
						rep.Read()
					}
				},
			})
		}
		const t0 = 5
		sim.TimerAt(0, t0, "append")
		sim.TimerAt(1, t0, "append")
		sim.TimerAt(0, t0+delta/2, "read")
		sim.TimerAt(1, t0+delta/2, "read")
		sim.Run(t0 + 4*delta)
		maxFanout := 0
		for _, rep := range reps {
			if f := rep.Tree().MaxFanout(); f > maxFanout {
				maxFanout = f
			}
		}
		return rec.Snapshot(), maxFanout
	}

	h2, _ := run(2)
	violated := !consistency.StrongPrefix(h2, consistency.Options{}).Satisfied
	h1, fanout1 := run(1)
	single := consistency.StrongPrefix(h1, consistency.Options{}).Satisfied && fanout1 <= 1
	return violated, single
}

// runFinalityComparison drives a forking PoW network and reads it both
// raw and through depth-8 finality gadgets; it returns the raw history,
// the finalized-read history and the number of finality violations.
func runFinalityComparison(seed uint64) (*history.History, *history.History, int) {
	const n = 4
	sim := netsim.New(netsim.Synchronous{Delta: 8}, seed)
	merits := make([]float64, n)
	for i := range merits {
		merits[i] = 0.2
	}
	orc := oracle.NewProdigal(seed, merits...)
	reps := map[history.ProcID]*netsim.Replica{}
	for i := 0; i < n; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplica(id, blocktree.LongestChain{}, sim.Recorder())
		reps[id] = rep
		counter := 0
		sim.Register(id, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer: func(s *netsim.Sim, tag string) {
				switch tag {
				case "mine":
					parent := rep.Selected().Tip()
					cand := blocktree.BlockID(fmt.Sprintf("b%04d-p%02d-%04d", parent.Height+1, id, counter))
					if tok, ok := orc.GetToken(int(id), parent.ID, cand); ok {
						if _, ins, err := orc.ConsumeToken(tok); err == nil && ins {
							counter++
							op := s.Recorder().Invoke(id, history.Label{Kind: history.KindAppend, Block: cand})
							s.Recorder().Respond(op, history.Label{Kind: history.KindAppend, Block: cand, Parent: parent.ID, OK: true})
							rep.CreateAndBroadcast(s, parent.ID, blocktree.Block{ID: cand, Parent: parent.ID, Work: 1, Proposer: int(id), Token: tok.ID})
						}
					}
					s.TimerAt(id, s.Now()+4, "mine")
				case "read":
					rep.Read()
					s.TimerAt(id, s.Now()+16, "read")
				}
			},
		})
		sim.TimerAt(id, 1+int64(i), "mine")
		sim.TimerAt(id, 2+int64(i), "read")
	}

	finRec := history.NewRecorderWithClock(simNowClock{sim})
	readers := map[history.ProcID]*finality.Reader{}
	for id := range reps {
		readers[id] = &finality.Reader{Gadget: finality.New(8, blocktree.LongestChain{}), Proc: id, Rec: finRec}
	}
	violations := 0
	for step := 0; step < 120; step++ {
		sim.Run(int64(step+1) * 16)
		for id, rep := range reps {
			if _, err := readers[id].FinalizedRead(rep.Tree()); err != nil {
				violations++
			}
		}
	}
	return sim.Recorder().Snapshot(), finRec.Snapshot(), violations
}

// simNowClock adapts the simulator clock for external recorders.
type simNowClock struct{ s *netsim.Sim }

// Now implements history.Clock.
func (c simNowClock) Now() int64 { return c.s.Now() }

// runPartition drives a 4-replica network split 2/2 until heal; one creator
// per side. With anti-entropy resync after healing the sides converge;
// without it they diverge forever.
func runPartition(seed uint64, resync bool) (converged bool, h *history.History) {
	const heal = 120
	side := func(p history.ProcID) int {
		if p <= 1 {
			return 0
		}
		return 1
	}
	rule := func(m netsim.Message, now int64) bool {
		return now < heal && side(m.From) != side(m.To)
	}
	s := netsim.New(netsim.Lossy{Inner: netsim.Synchronous{Delta: 4}, Rule: rule}, seed)
	reps := map[history.ProcID]*netsim.Replica{}
	for i := 0; i < 4; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplica(id, blocktree.LongestChain{}, s.Recorder())
		reps[id] = rep
		creator := i == 0 || i == 2
		count := 0
		s.Register(id, netsim.HandlerFuncs{
			Message: func(sim *netsim.Sim, m netsim.Message) { rep.OnMessage(sim, m) },
			Timer: func(sim *netsim.Sim, tag string) {
				switch tag {
				case "create":
					if creator && count < 8 {
						parent := rep.Selected().Tip()
						b := blocktree.Block{
							ID:       blocktree.BlockID(fmt.Sprintf("c%d-%02d", id, count)),
							Parent:   parent.ID,
							Proposer: int(id),
							Token:    uint64(100*int(id) + count + 1),
						}
						count++
						rep.CreateAndBroadcast(sim, parent.ID, b)
						sim.TimerAt(id, sim.Now()+12, "create")
					}
				case "read":
					rep.Read()
					sim.TimerAt(id, sim.Now()+9, "read")
				case "resync":
					rep.Resync(sim)
				}
			},
		})
		if creator {
			s.TimerAt(id, 1, "create")
		}
		s.TimerAt(id, 2+int64(i), "read")
		if resync {
			s.TimerAt(id, heal+4, "resync")
		}
	}
	s.Run(600)
	for _, p := range s.Procs() {
		reps[p].Read()
	}
	chains := map[string]bool{}
	for _, r := range reps {
		chains[r.Read().String()] = true
	}
	return len(chains) == 1, s.Recorder().Snapshot()
}
