// Package fairness analyzes proposer fairness — the paper leaves fairness
// unformalized but provides "a generic merit parameter that can be used to
// define fairness" (Section 1, related-work discussion of [1]). This
// package defines the natural notion that parameter supports: a run is
// α-fair when each process's share of committed blocks matches its merit
// share, which is the chain-quality property of the Bitcoin backbone line
// of work.
package fairness

import (
	"fmt"
	"sort"
	"strings"

	"blockadt/internal/history"
	"blockadt/internal/metrics"
)

// Share is one process's realized vs entitled proportion of blocks.
type Share struct {
	Proc history.ProcID
	// Blocks is the number of committed blocks proposed by the process.
	Blocks int
	// Realized is Blocks / total.
	Realized float64
	// Entitled is the process's normalized merit αᵢ / Σαⱼ.
	Entitled float64
}

// Report is the fairness analysis of a history.
type Report struct {
	// Shares holds one entry per process with positive merit or blocks.
	Shares []Share
	// Total is the number of committed blocks counted.
	Total int
	// TVD is the total variation distance between the realized and
	// entitled distributions: ½·Σ|realized−entitled| ∈ [0,1].
	TVD float64
	// ChiSquare is Σ (observedᵢ − expectedᵢ)² / expectedᵢ over processes
	// with positive entitlement.
	ChiSquare float64
}

// Fair reports whether the realized distribution is within tolerance of
// the entitlement in total variation distance.
func (r Report) Fair(tolerance float64) bool { return r.TVD <= tolerance }

// String renders the report as an aligned table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s\n", "proc", "blocks", "realized", "entitled")
	for _, s := range r.Shares {
		fmt.Fprintf(&b, "p%-5d %8d %9.1f%% %9.1f%%\n", s.Proc, s.Blocks, 100*s.Realized, 100*s.Entitled)
	}
	fmt.Fprintf(&b, "total %d blocks, TVD %.4f, χ² %.3f\n", r.Total, r.TVD, r.ChiSquare)
	return b.String()
}

// Analyze counts, per process, the successful appends in the history and
// compares the realized block shares against the merit entitlement.
// merits[i] is αᵢ for process i; processes beyond the slice have merit 0.
//
// Note this measures *production* fairness (who got blocks validated). For
// chain quality — whose blocks survive onto the selected chain, the measure
// selfish mining attacks — count main-chain authorship and use FromCounts.
func Analyze(h *history.History, merits []float64) Report {
	counts := map[history.ProcID]int{}
	seen := map[history.BlockRef]bool{}
	for _, a := range h.SuccessfulAppends() {
		if seen[a.Block] {
			continue
		}
		seen[a.Block] = true
		counts[a.Op.Proc]++
	}
	return FromCounts(counts, merits)
}

// FromCounts compares an arbitrary per-process block census (e.g.
// main-chain authorship) against the merit entitlement.
func FromCounts(counts map[history.ProcID]int, merits []float64) Report {
	total := 0
	for _, n := range counts {
		total += n
	}

	var meritSum float64
	for _, m := range merits {
		meritSum += m
	}

	procs := map[history.ProcID]bool{}
	for p := range counts {
		procs[p] = true
	}
	for i := range merits {
		if merits[i] > 0 {
			procs[history.ProcID(i)] = true
		}
	}
	ids := make([]history.ProcID, 0, len(procs))
	for p := range procs {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	rep := Report{Total: total}
	// Assemble the aligned realized/entitled distributions, then hand
	// the distance statistics to the metrics subsystem (the single
	// implementation the sweep aggregation uses too).
	realized := make([]float64, 0, len(ids))
	entitled := make([]float64, 0, len(ids))
	observedCounts := make([]float64, 0, len(ids))
	expectedCounts := make([]float64, 0, len(ids))
	for _, p := range ids {
		s := Share{Proc: p, Blocks: counts[p]}
		if total > 0 {
			s.Realized = float64(counts[p]) / float64(total)
		}
		if int(p) < len(merits) && meritSum > 0 {
			s.Entitled = merits[p] / meritSum
		}
		rep.Shares = append(rep.Shares, s)
		realized = append(realized, s.Realized)
		entitled = append(entitled, s.Entitled)
		if total > 0 {
			observedCounts = append(observedCounts, float64(counts[p]))
			expectedCounts = append(expectedCounts, s.Entitled*float64(total))
		}
	}
	rep.TVD = metrics.TVD(realized, entitled)
	rep.ChiSquare = metrics.ChiSquare(observedCounts, expectedCounts)
	return rep
}
