package fairness

import (
	"math"
	"testing"

	"blockadt/internal/chains"
	"blockadt/internal/figures"
	"blockadt/internal/history"
)

func TestAnalyzeSyntheticUniform(t *testing.T) {
	// 2 processes, 2 blocks each, equal merits → perfectly fair.
	b := figures.NewCustom()
	b.At(1).AppendOK(0, "b0", "a")
	b.At(2).AppendOK(1, "a", "b")
	b.At(3).AppendOK(0, "b", "c")
	b.At(4).AppendOK(1, "c", "d")
	rep := Analyze(b.History(), []float64{1, 1})
	if rep.Total != 4 {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.TVD != 0 {
		t.Fatalf("TVD = %v, want 0", rep.TVD)
	}
	if !rep.Fair(0.01) {
		t.Fatal("perfectly balanced run judged unfair")
	}
}

func TestAnalyzeSyntheticSkewed(t *testing.T) {
	// One process proposes everything but merits are equal: TVD = 0.5.
	b := figures.NewCustom()
	b.At(1).AppendOK(0, "b0", "a")
	b.At(2).AppendOK(0, "a", "b")
	rep := Analyze(b.History(), []float64{1, 1})
	if math.Abs(rep.TVD-0.5) > 1e-9 {
		t.Fatalf("TVD = %v, want 0.5", rep.TVD)
	}
	if rep.Fair(0.1) {
		t.Fatal("monopolized run judged fair")
	}
	if rep.ChiSquare <= 0 {
		t.Fatalf("χ² = %v", rep.ChiSquare)
	}
}

func TestAnalyzeIgnoresFailedAndDuplicateAppends(t *testing.T) {
	b := figures.NewCustom()
	b.At(1).AppendOK(0, "b0", "a")
	b.Record(1, history.Label{Kind: history.KindAppend, Block: "rej", OK: false})
	rep := Analyze(b.History(), []float64{1, 1})
	if rep.Total != 1 {
		t.Fatalf("total = %d, want 1 (failed append excluded)", rep.Total)
	}
}

func TestAnalyzeEmptyHistory(t *testing.T) {
	rep := Analyze(figures.NewCustom().History(), []float64{1, 1})
	if rep.Total != 0 {
		t.Fatal("phantom blocks")
	}
	// With no blocks, realized is 0 everywhere; TVD = ½·Σ entitled = ½.
	if math.Abs(rep.TVD-0.5) > 1e-9 {
		t.Fatalf("TVD = %v", rep.TVD)
	}
}

// TestBitcoinChainQualityUniform: with equal hashing power, each of the n
// miners should win about 1/n of the blocks — the α-fairness the merit
// tapes provide by construction.
func TestBitcoinChainQualityUniform(t *testing.T) {
	p := chains.Params{N: 4, TargetBlocks: 150, Seed: 11}
	res := chains.Bitcoin{}.Run(p)
	merits := []float64{1, 1, 1, 1}
	rep := Analyze(res.History, merits)
	if rep.Total < 100 {
		t.Fatalf("too few blocks: %d", rep.Total)
	}
	if !rep.Fair(0.15) {
		t.Fatalf("uniform-merit run unfair:\n%s", rep)
	}
}

// TestBitcoinChainQualitySkewed: a miner with half the total hashing power
// should win about half the blocks.
func TestBitcoinChainQualitySkewed(t *testing.T) {
	// Process 0 has 4× everyone else's per-attempt probability.
	merits := []float64{0.16, 0.04, 0.04, 0.04, 0.04}
	p := chains.Params{N: 5, TargetBlocks: 150, Seed: 13, Merits: merits}
	res := chains.Bitcoin{}.Run(p)
	rep := Analyze(res.History, merits)
	if rep.Total < 100 {
		t.Fatalf("too few blocks: %d", rep.Total)
	}
	var p0 Share
	for _, s := range rep.Shares {
		if s.Proc == 0 {
			p0 = s
		}
	}
	if p0.Entitled != 0.5 {
		t.Fatalf("entitlement = %v, want 0.5", p0.Entitled)
	}
	if math.Abs(p0.Realized-0.5) > 0.12 {
		t.Fatalf("p0 realized %.2f, entitled 0.50:\n%s", p0.Realized, rep)
	}
	if !rep.Fair(0.15) {
		t.Fatalf("skewed run deviates from entitlement:\n%s", rep)
	}
}

func TestReportString(t *testing.T) {
	b := figures.NewCustom()
	b.At(1).AppendOK(0, "b0", "a")
	rep := Analyze(b.History(), []float64{1})
	s := rep.String()
	if len(s) == 0 || rep.Shares[0].Blocks != 1 {
		t.Fatalf("render: %s", s)
	}
}
