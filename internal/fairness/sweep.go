package fairness

import (
	"blockadt/internal/metrics"
	"blockadt/internal/parallel"
	"blockadt/internal/prng"
)

// SweepSeeds runs one fairness analysis per derived seed across a bounded
// worker pool and returns the reports in seed order. Seed i receives the
// independent stream prng.Mix(rootSeed, i) — the same mix-from-root
// pattern as the scenario-sweep engine, keyed here by the seed index
// alone (the engine keys on the full config; the streams differ) — so a
// sweep is reproducible from rootSeed alone and bit-identical at any
// parallelism. run must be a pure function of its seed.
func SweepSeeds(rootSeed uint64, seeds, parallelism int, run func(seed uint64) Report) []Report {
	idx := make([]int, seeds)
	for i := range idx {
		idx[i] = i
	}
	return parallel.Map(idx, parallelism, func(_ int, i int) Report {
		return run(prng.Mix(rootSeed, uint64(i)))
	})
}

// Aggregate summarizes a seed sweep.
type Aggregate struct {
	// Runs is the number of reports aggregated.
	Runs int
	// TotalBlocks sums the committed blocks across runs.
	TotalBlocks int
	// MeanTVD / MaxTVD summarize the per-run total variation distances.
	MeanTVD, MaxTVD float64
	// FairRuns counts the runs within the given tolerance.
	FairRuns int
}

// AggregateReports folds a seed sweep into its summary statistics using
// the given fairness tolerance. The TVD statistics run through the
// metrics subsystem's streaming accumulator — the same fold the scenario
// sweep's AggregateSeeds uses.
func AggregateReports(reports []Report, tolerance float64) Aggregate {
	agg := Aggregate{Runs: len(reports)}
	var tvd metrics.Welford
	for _, r := range reports {
		agg.TotalBlocks += r.Total
		tvd.Add(r.TVD)
		if r.Fair(tolerance) {
			agg.FairRuns++
		}
	}
	if agg.Runs > 0 {
		agg.MeanTVD = tvd.Mean()
		agg.MaxTVD = tvd.Max()
	}
	return agg
}
