package fairness

import (
	"reflect"
	"runtime"
	"testing"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// fakeRun builds a deterministic report from the seed alone, standing in
// for a full chain simulation.
func fakeRun(seed uint64) Report {
	src := prng.New(seed)
	counts := map[history.ProcID]int{}
	for p := 0; p < 4; p++ {
		counts[history.ProcID(p)] = 1 + src.Intn(20)
	}
	return FromCounts(counts, []float64{1, 1, 1, 1})
}

func TestSweepSeedsDeterministicAcrossParallelism(t *testing.T) {
	// Fixed pool of 4: real goroutine interleaving even on a 1-core
	// runner, where NumCPU would compare serial against serial.
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := SweepSeeds(7, 16, 1, fakeRun)
	concurrent := SweepSeeds(7, 16, workers, fakeRun)
	if !reflect.DeepEqual(serial, concurrent) {
		t.Fatalf("seed sweep differs across parallelism:\n%v\nvs\n%v", serial, concurrent)
	}
}

func TestSweepSeedsDerivesDistinctStreams(t *testing.T) {
	reports := SweepSeeds(7, 8, 0, fakeRun)
	if len(reports) != 8 {
		t.Fatalf("got %d reports, want 8", len(reports))
	}
	distinct := false
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all seeds produced identical reports — streams are not independent")
	}
}

func TestAggregateReports(t *testing.T) {
	reports := []Report{
		{Total: 10, TVD: 0.1},
		{Total: 20, TVD: 0.3},
	}
	agg := AggregateReports(reports, 0.15)
	if agg.Runs != 2 || agg.TotalBlocks != 30 {
		t.Fatalf("bad counts: %+v", agg)
	}
	if agg.FairRuns != 1 {
		t.Fatalf("FairRuns = %d, want 1", agg.FairRuns)
	}
	if agg.MaxTVD != 0.3 || agg.MeanTVD != 0.2 {
		t.Fatalf("bad TVD stats: %+v", agg)
	}
	if empty := AggregateReports(nil, 0.1); empty.Runs != 0 || empty.MeanTVD != 0 {
		t.Fatalf("empty aggregate: %+v", empty)
	}
}
