// Package figures constructs the example concurrent histories of Figures
// 2, 3 and 4 of "Blockchain Abstract Data Type" (Anceaume et al.), which
// the paper uses to illustrate the consistency criteria:
//
//   - Figure 2: a history satisfying BT Strong Consistency — the selection
//     function is longest-chain with lexicographic tie-break and the score
//     is the length;
//   - Figure 3: a history satisfying BT Eventual Consistency but violating
//     Strong Prefix (two processes temporarily on divergent branches that
//     converge);
//   - Figure 4: a history satisfying no BT consistency criterion (the
//     divergence persists forever).
//
// The constructors also accept a tail length: the figures' histories are
// infinite, so tests extend the convergent suffix far enough to outlast any
// finitization grace window.
package figures

import (
	"fmt"

	"blockadt/internal/history"
)

// builder accumulates a history with explicit virtual times.
type builder struct {
	rec  *history.Recorder
	tick int64
}

type manualClock struct{ t *int64 }

func (c manualClock) Now() int64 { return *c.t }

func newBuilder() *builder {
	b := &builder{}
	b.rec = history.NewRecorderWithClock(manualClock{t: &b.tick})
	return b
}

func (b *builder) at(t int64) *builder { b.tick = t; return b }

// appendOK records a successful append(block) on proc with the given
// parent, spanning one tick.
func (b *builder) appendOK(p history.ProcID, parent, block history.BlockRef) {
	op := b.rec.Invoke(p, history.Label{Kind: history.KindAppend, Block: block})
	b.tick++
	b.rec.Respond(op, history.Label{Kind: history.KindAppend, Block: block, Parent: parent, OK: true})
}

// read records a read() on proc returning the chain, spanning one tick.
func (b *builder) read(p history.ProcID, chain ...history.BlockRef) {
	op := b.rec.Invoke(p, history.Label{Kind: history.KindRead})
	b.tick++
	b.rec.Respond(op, history.Label{Kind: history.KindRead, Chain: history.Chain(chain)})
}

func (b *builder) done() *history.History { return b.rec.Snapshot() }

// chain builds a history.Chain from block names.
func chain(blocks ...string) []history.BlockRef {
	out := make([]history.BlockRef, len(blocks))
	for i, s := range blocks {
		out[i] = history.BlockRef(s)
	}
	return out
}

// Processes used by the figures.
const (
	ProcI history.ProcID = 0
	ProcJ history.ProcID = 1
)

// Fig2 builds the Figure 2 history: both processes read along the single
// chain b0⌢1⌢2⌢3⌢4…, every pair of returned chains prefix-related, scores
// growing. tail extends the growth beyond length 4 with alternating reads,
// one block per step, to model the figure's infinite continuation.
func Fig2(tail int) *history.History {
	b := newBuilder()
	// Blocks 1..4 are appended as the figure assumes.
	b.at(1).appendOK(ProcI, "b0", "1")
	b.at(3).appendOK(ProcJ, "1", "2")
	b.at(5).appendOK(ProcI, "2", "3")
	b.at(7).appendOK(ProcJ, "3", "4")

	b.at(10).read(ProcJ, chain("b0", "1")...)
	b.at(12).read(ProcI, chain("b0", "1", "2")...)
	b.at(14).read(ProcJ, chain("b0", "1", "2")...)
	b.at(16).read(ProcI, chain("b0", "1", "2", "3")...) // the reference read, l=3
	b.at(18).read(ProcI, chain("b0", "1", "2", "3", "4")...)
	b.at(20).read(ProcJ, chain("b0", "1", "2", "3", "4")...)

	// Infinite continuation: the chain keeps growing and both processes
	// keep reading it.
	cur := chain("b0", "1", "2", "3", "4")
	t := int64(22)
	for i := 0; i < tail; i++ {
		next := history.BlockRef(fmt.Sprintf("%d", 5+i))
		b.at(t).appendOK(ProcI, cur[len(cur)-1], next)
		cur = append(cur, next)
		t += 2
		b.at(t).read(ProcI, cur...)
		t += 2
		b.at(t).read(ProcJ, cur...)
		t += 2
	}
	return b.done()
}

// Fig3 builds the Figure 3 history: process i first adopts the branch
// b0⌢2⌢4 while process j is on b0⌢1; both later converge on the branch
// b0⌢1⌢3⌢5…, so Strong Prefix is violated (b0⌢1 ⋢ b0⌢2⌢4 and vice versa)
// but Eventual Prefix holds. tail extends the convergent suffix.
func Fig3(tail int) *history.History {
	b := newBuilder()
	// Appends: 1 and 2 fork from b0; 3 extends 1; 4 extends 2; 5
	// extends 3. (Blocks named as in the figure.)
	b.at(1).appendOK(ProcJ, "b0", "1")
	b.at(2).appendOK(ProcI, "b0", "2")
	b.at(3).appendOK(ProcJ, "1", "3")
	b.at(4).appendOK(ProcI, "2", "4")
	b.at(5).appendOK(ProcJ, "3", "5")

	// First reads: i on the 2-branch, j on the 1-branch.
	b.at(10).read(ProcI, chain("b0", "2", "4")...) // the reference read, l=2
	b.at(12).read(ProcJ, chain("b0", "1")...)
	// Convergence begins: i switches to the now-longer 1-branch.
	b.at(14).read(ProcJ, chain("b0", "1", "3")...)
	b.at(16).read(ProcI, chain("b0", "1", "3")...)
	b.at(18).read(ProcI, chain("b0", "1", "3", "5")...)
	b.at(20).read(ProcJ, chain("b0", "1", "3", "5")...)

	// Infinite convergent continuation along the odd branch.
	cur := chain("b0", "1", "3", "5")
	t := int64(22)
	for i := 0; i < tail; i++ {
		next := history.BlockRef(fmt.Sprintf("%d", 7+2*i))
		b.at(t).appendOK(ProcJ, cur[len(cur)-1], next)
		cur = append(cur, next)
		t += 2
		b.at(t).read(ProcI, cur...)
		t += 2
		b.at(t).read(ProcJ, cur...)
		t += 2
	}
	return b.done()
}

// Fig4 builds the Figure 4 history: the two processes stay on divergent
// branches forever — i on b0⌢2⌢4⌢6…, j on b0⌢1⌢3⌢5… — so no BT
// consistency criterion holds. tail extends both divergent branches.
func Fig4(tail int) *history.History {
	b := newBuilder()
	b.at(1).appendOK(ProcJ, "b0", "1")
	b.at(2).appendOK(ProcI, "b0", "2")
	b.at(3).appendOK(ProcJ, "1", "3")
	b.at(4).appendOK(ProcI, "2", "4")
	b.at(5).appendOK(ProcJ, "3", "5")
	b.at(6).appendOK(ProcI, "4", "6")

	b.at(10).read(ProcI, chain("b0", "2", "4")...) // reference read, l=2
	b.at(12).read(ProcJ, chain("b0", "1")...)
	b.at(14).read(ProcJ, chain("b0", "1", "3")...)
	b.at(16).read(ProcI, chain("b0", "2", "4", "6")...)
	b.at(18).read(ProcJ, chain("b0", "1", "3", "5")...)

	// Persistent divergence.
	even := chain("b0", "2", "4", "6")
	odd := chain("b0", "1", "3", "5")
	t := int64(20)
	for i := 0; i < tail; i++ {
		nextEven := history.BlockRef(fmt.Sprintf("%d", 8+2*i))
		nextOdd := history.BlockRef(fmt.Sprintf("%d", 7+2*i))
		b.at(t).appendOK(ProcI, even[len(even)-1], nextEven)
		even = append(even, nextEven)
		t++
		b.at(t).appendOK(ProcJ, odd[len(odd)-1], nextOdd)
		odd = append(odd, nextOdd)
		t++
		b.at(t).read(ProcI, even...)
		t += 2
		b.at(t).read(ProcJ, odd...)
		t += 2
	}
	return b.done()
}

// Custom exposes the builder so experiments can assemble bespoke histories
// (e.g. the Theorem 4.8 fork execution) with explicit timing.
type Custom struct{ b *builder }

// NewCustom returns an empty history builder.
func NewCustom() *Custom { return &Custom{b: newBuilder()} }

// At sets the current virtual time.
func (c *Custom) At(t int64) *Custom { c.b.at(t); return c }

// AppendOK records a successful append.
func (c *Custom) AppendOK(p history.ProcID, parent, block history.BlockRef) *Custom {
	c.b.appendOK(p, parent, block)
	return c
}

// Read records a read returning the given chain.
func (c *Custom) Read(p history.ProcID, blocks ...string) *Custom {
	c.b.read(p, chain(blocks...)...)
	return c
}

// Record records a raw collapsed event (send/receive/update).
func (c *Custom) Record(p history.ProcID, l history.Label) *Custom {
	c.b.rec.Record(p, l)
	return c
}

// History returns the built history.
func (c *Custom) History() *history.History { return c.b.done() }

// Named pairs a figure's paper name with its constructed history.
type Named struct {
	Name    string
	History *history.History
}

// All returns the three example histories with the given convergence
// tail, in figure order — the iteration target for drivers that check or
// classify every figure in one pass.
func All(tail int) []Named {
	return []Named{
		{Name: "Figure 2", History: Fig2(tail)},
		{Name: "Figure 3", History: Fig3(tail)},
		{Name: "Figure 4", History: Fig4(tail)},
	}
}
