package figures

import (
	"testing"

	"blockadt/internal/history"
)

func TestFig2Shape(t *testing.T) {
	h := Fig2(0)
	reads := h.Reads()
	if len(reads) != 6 {
		t.Fatalf("reads = %d, want 6", len(reads))
	}
	if got := reads[0].Chain.String(); got != "b0⌢1" {
		t.Fatalf("first read = %s", got)
	}
	if got := reads[5].Chain.String(); got != "b0⌢1⌢2⌢3⌢4" {
		t.Fatalf("last read = %s", got)
	}
	if got := len(h.SuccessfulAppends()); got != 4 {
		t.Fatalf("appends = %d, want 4", got)
	}
}

func TestFig2TailGrows(t *testing.T) {
	h := Fig2(5)
	reads := h.Reads()
	last := reads[len(reads)-1].Chain
	if len(last) != 1+4+5 {
		t.Fatalf("final chain length = %d, want 10", len(last))
	}
	if got := len(h.SuccessfulAppends()); got != 9 {
		t.Fatalf("appends = %d, want 9", got)
	}
}

func TestFig3DivergenceThenConvergence(t *testing.T) {
	h := Fig3(3)
	reads := h.Reads()
	// First two reads diverge.
	a, b := reads[0].Chain, reads[1].Chain
	if a.HasPrefix(b) || b.HasPrefix(a) {
		t.Fatalf("first reads must diverge: %s vs %s", a, b)
	}
	// Last two reads agree.
	n := len(reads)
	x, y := reads[n-1].Chain, reads[n-2].Chain
	if x.String() != y.String() {
		t.Fatalf("final reads must converge: %s vs %s", x, y)
	}
}

func TestFig4PersistentDivergence(t *testing.T) {
	h := Fig4(4)
	reads := h.Reads()
	n := len(reads)
	// The two final reads (one per process) still diverge.
	var lastI, lastJ history.Chain
	for _, r := range reads {
		if r.Op.Proc == ProcI {
			lastI = r.Chain
		} else {
			lastJ = r.Chain
		}
	}
	if lastI.HasPrefix(lastJ) || lastJ.HasPrefix(lastI) {
		t.Fatalf("final reads converged: %s vs %s", lastI, lastJ)
	}
	if n < 10 {
		t.Fatalf("reads = %d", n)
	}
}

func TestFiguresReadsAreProcessMonotone(t *testing.T) {
	for name, h := range map[string]*history.History{
		"fig2": Fig2(6), "fig3": Fig3(6), "fig4": Fig4(6),
	} {
		last := map[history.ProcID]int{}
		for _, r := range h.Reads() {
			s := len(r.Chain)
			if prev, ok := last[r.Op.Proc]; ok && s < prev {
				t.Fatalf("%s: process %d read scores regress", name, r.Op.Proc)
			}
			last[r.Op.Proc] = s
		}
	}
}

func TestCustomBuilder(t *testing.T) {
	h := NewCustom().
		At(5).AppendOK(2, "b0", "z").
		At(9).Read(2, "b0", "z").
		History()
	reads := h.Reads()
	if len(reads) != 1 || reads[0].Op.InvTime != 9 {
		t.Fatalf("reads = %+v", reads)
	}
	appends := h.SuccessfulAppends()
	if len(appends) != 1 || appends[0].Op.InvTime != 5 {
		t.Fatalf("appends = %+v", appends)
	}
}
