package finality_test

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/finality"
)

// Example finalizes the prefix of a growing chain at confirmation depth 2.
func Example() {
	tree := blocktree.New()
	parent := blocktree.GenesisID
	for _, id := range []blocktree.BlockID{"a", "b", "c", "d", "e"} {
		tree.Insert(blocktree.Block{ID: id, Parent: parent})
		parent = id
	}
	g := finality.New(2, blocktree.LongestChain{})
	fin, _ := g.Observe(tree)
	fmt.Println("finalized:", fin)
	// Output:
	// finalized: b0⌢a⌢b⌢c
}

// Example_violation shows a reorganization deeper than the confirmation
// depth being detected instead of silently rolled back.
func Example_violation() {
	tree := blocktree.New()
	tree.Insert(blocktree.Block{ID: "a", Parent: blocktree.GenesisID})
	g := finality.New(0, blocktree.LongestChain{})
	g.Observe(tree) // finalizes b0⌢a

	// A longer competing branch reorganizes past the finalized block.
	tree.Insert(blocktree.Block{ID: "x1", Parent: blocktree.GenesisID})
	tree.Insert(blocktree.Block{ID: "x2", Parent: "x1"})
	_, err := g.Observe(tree)
	fmt.Println("violation detected:", err != nil)
	fmt.Println("finalized prefix kept:", g.Finalized())
	// Output:
	// violation detected: true
	// finalized prefix kept: b0⌢a
}
