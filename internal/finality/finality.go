// Package finality derives a strongly consistent view from an eventually
// consistent BlockTree: the depth-d finality rule declares the prefix of
// the selected chain that is at least d blocks below the tip final —
// Bitcoin's "six confirmations" folklore expressed in the paper's terms.
//
// The package connects the two BT consistency criteria: under
// R(BT-ADT_EC, Θ_P), raw reads only satisfy Eventual Prefix, but if d
// exceeds the deepest reorganization of the run, the finalized reads
// satisfy Strong Prefix and Local Monotonic Read — i.e. the finality
// gadget is a (conditional) BT-ADT_SC implementation layered on a
// BT-ADT_EC one. The condition is real: too small a d yields finality
// violations, which the gadget detects and reports rather than silently
// rolling back (the safety contract of deployed finality layers).
//
// This is an extension beyond the paper (which leaves "the synchronization
// power of other oracle models" as future work); the experiments register
// it as X5.
package finality

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
)

// Gadget tracks the finalized prefix of one replica's evolving tree.
type Gadget struct {
	depth int
	sel   blocktree.Selector
	// finalized is the last finalized prefix (genesis-rooted).
	finalized history.Chain
	// violations counts detected finality breaks.
	violations int
}

// New returns a depth-d gadget over the given selection function.
func New(depth int, sel blocktree.Selector) *Gadget {
	if sel == nil {
		sel = blocktree.LongestChain{}
	}
	return &Gadget{depth: depth, sel: sel, finalized: history.Chain{blocktree.GenesisID}}
}

// Depth returns the confirmation depth d.
func (g *Gadget) Depth() int { return g.depth }

// Finalized returns the current finalized prefix.
func (g *Gadget) Finalized() history.Chain { return g.finalized.Clone() }

// Violations returns the number of observed finality breaks.
func (g *Gadget) Violations() int { return g.violations }

// ErrFinalityViolation reports that a newly finalized prefix contradicts an
// earlier one — the selected chain reorganized deeper than d.
type ErrFinalityViolation struct {
	Old, New history.Chain
}

// Error implements error.
func (e *ErrFinalityViolation) Error() string {
	return fmt.Sprintf("finality: finalized prefix %s contradicted by %s", e.Old, e.New)
}

// Observe inspects the tree, advances the finalized prefix to the selected
// chain truncated d blocks below its tip, and returns it. If the new
// prefix does not extend the previous one, the violation is counted, the
// previous prefix is retained (never roll back a finalized block), and an
// ErrFinalityViolation is returned.
func (g *Gadget) Observe(t *blocktree.Tree) (history.Chain, error) {
	chain := g.sel.Select(t).IDs()
	cut := len(chain) - g.depth
	if cut < 1 {
		cut = 1 // genesis is always final
	}
	candidate := chain[:cut]
	if len(candidate) < len(g.finalized) {
		// The selected chain shrank below the finalized horizon; keep
		// the old prefix (monotonicity) — not a violation unless it
		// conflicts, which the next growth will reveal.
		if !g.finalized.HasPrefix(candidate) {
			g.violations++
			return g.finalized.Clone(), &ErrFinalityViolation{Old: g.finalized.Clone(), New: candidate.Clone()}
		}
		return g.finalized.Clone(), nil
	}
	if !candidate.HasPrefix(g.finalized) {
		g.violations++
		return g.finalized.Clone(), &ErrFinalityViolation{Old: g.finalized.Clone(), New: candidate.Clone()}
	}
	g.finalized = candidate.Clone()
	return g.finalized.Clone(), nil
}

// Reader couples a gadget with a history recorder: each FinalizedRead is
// recorded as a read() operation returning the finalized prefix, so the
// consistency checkers can adjudicate the finalized view like any other
// history.
type Reader struct {
	Gadget *Gadget
	Proc   history.ProcID
	Rec    *history.Recorder
}

// FinalizedRead observes the tree and records the finalized prefix as a
// read operation.
func (r *Reader) FinalizedRead(t *blocktree.Tree) (history.Chain, error) {
	op := r.Rec.Invoke(r.Proc, history.Label{Kind: history.KindRead})
	chain, err := r.Gadget.Observe(t)
	r.Rec.Respond(op, history.Label{Kind: history.KindRead, Chain: chain})
	return chain, err
}
