package finality

import (
	"fmt"
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/netsim"
	"blockadt/internal/oracle"
)

func TestGadgetBasicAdvance(t *testing.T) {
	tr := blocktree.New()
	g := New(2, blocktree.LongestChain{})
	if got := g.Finalized().String(); got != "b0" {
		t.Fatalf("initial finalized = %s", got)
	}
	// Chain of 5: finalized = first 3 (tip minus depth 2).
	parent := blocktree.GenesisID
	for i := 0; i < 5; i++ {
		id := blocktree.BlockID(fmt.Sprintf("c%d", i))
		if err := tr.Insert(blocktree.Block{ID: id, Parent: parent}); err != nil {
			t.Fatal(err)
		}
		parent = id
	}
	fin, err := g.Observe(tr)
	if err != nil {
		t.Fatal(err)
	}
	if fin.String() != "b0⌢c0⌢c1⌢c2" {
		t.Fatalf("finalized = %s", fin)
	}
}

func TestGadgetNeverRollsBack(t *testing.T) {
	tr := blocktree.New()
	g := New(0, blocktree.LongestChain{}) // depth 0: finalize the tip itself
	if err := tr.Insert(blocktree.Block{ID: "a", Parent: blocktree.GenesisID}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Observe(tr); err != nil {
		t.Fatal(err)
	}
	// A competing longer branch reorganizes the tip: with depth 0 this
	// contradicts finality.
	if err := tr.Insert(blocktree.Block{ID: "x1", Parent: blocktree.GenesisID}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(blocktree.Block{ID: "x2", Parent: "x1"}); err != nil {
		t.Fatal(err)
	}
	fin, err := g.Observe(tr)
	if err == nil {
		t.Fatal("deep reorg not flagged at depth 0")
	}
	if _, ok := err.(*ErrFinalityViolation); !ok {
		t.Fatalf("err type %T", err)
	}
	// The finalized prefix is retained, not rolled back.
	if fin.String() != "b0⌢a" {
		t.Fatalf("finalized after violation = %s", fin)
	}
	if g.Violations() != 1 {
		t.Fatalf("violations = %d", g.Violations())
	}
}

func TestGadgetDeepEnoughAbsorbsReorg(t *testing.T) {
	tr := blocktree.New()
	g := New(3, blocktree.LongestChain{})
	if err := tr.Insert(blocktree.Block{ID: "a", Parent: blocktree.GenesisID}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Observe(tr); err != nil {
		t.Fatal(err)
	}
	// The same 2-deep reorg is invisible below a depth-3 horizon.
	tr.Insert(blocktree.Block{ID: "x1", Parent: blocktree.GenesisID})
	tr.Insert(blocktree.Block{ID: "x2", Parent: "x1"})
	if _, err := g.Observe(tr); err != nil {
		t.Fatalf("depth-3 gadget flagged a shallow reorg: %v", err)
	}
	if g.Violations() != 0 {
		t.Fatal("violations counted")
	}
}

// powNetwork builds a small forking PoW network and returns the simulator,
// the replicas, and a function driving it; used to compare raw vs
// finalized read histories.
func powNetwork(seed uint64) (*netsim.Sim, map[history.ProcID]*netsim.Replica) {
	const n = 4
	sim := netsim.New(netsim.Synchronous{Delta: 8}, seed)
	merits := make([]float64, n)
	for i := range merits {
		merits[i] = 0.2
	}
	orc := oracle.NewProdigal(seed, merits...)
	reps := map[history.ProcID]*netsim.Replica{}
	for i := 0; i < n; i++ {
		id := history.ProcID(i)
		rep := netsim.NewReplica(id, blocktree.LongestChain{}, sim.Recorder())
		reps[id] = rep
		counter := 0
		sim.Register(id, netsim.HandlerFuncs{
			Message: func(s *netsim.Sim, m netsim.Message) { rep.OnMessage(s, m) },
			Timer: func(s *netsim.Sim, tag string) {
				switch tag {
				case "mine":
					parent := rep.Selected().Tip()
					cand := blocktree.BlockID(fmt.Sprintf("b%04d-p%02d-%04d", parent.Height+1, id, counter))
					if tok, ok := orc.GetToken(int(id), parent.ID, cand); ok {
						if _, ins, err := orc.ConsumeToken(tok); err == nil && ins {
							counter++
							op := s.Recorder().Invoke(id, history.Label{Kind: history.KindAppend, Block: cand})
							s.Recorder().Respond(op, history.Label{Kind: history.KindAppend, Block: cand, Parent: parent.ID, OK: true})
							rep.CreateAndBroadcast(s, parent.ID, blocktree.Block{ID: cand, Parent: parent.ID, Work: 1, Proposer: int(id), Token: tok.ID})
						}
					}
					s.TimerAt(id, s.Now()+4, "mine")
				case "read":
					rep.Read()
					s.TimerAt(id, s.Now()+16, "read")
				}
			},
		})
		sim.TimerAt(id, 1+int64(i), "mine")
		sim.TimerAt(id, 2+int64(i), "read")
	}
	return sim, reps
}

// TestFinalizedViewIsStronglyConsistent: on a forking PoW run whose raw
// reads violate Strong Prefix, the depth-d finalized reads satisfy it (and
// local monotonicity) with zero finality violations — the gadget lifts
// R(BT-ADT_EC, Θ_P) reads to a BT-ADT_SC view.
func TestFinalizedViewIsStronglyConsistent(t *testing.T) {
	sim, reps := powNetwork(77)

	finRec := history.NewRecorderWithClock(simNow{sim})
	readers := map[history.ProcID]*Reader{}
	for id := range reps {
		readers[id] = &Reader{Gadget: New(8, blocktree.LongestChain{}), Proc: id, Rec: finRec}
	}
	var finalityErrs int
	for step := 0; step < 120; step++ {
		sim.Run(int64(step+1) * 16)
		for id, rep := range reps {
			if _, err := readers[id].FinalizedRead(rep.Tree()); err != nil {
				finalityErrs++
			}
		}
	}

	raw := sim.Recorder().Snapshot()
	rawSP := consistency.StrongPrefix(raw, consistency.Options{})
	if rawSP.Satisfied {
		t.Fatal("raw PoW reads satisfy Strong Prefix — run too tame to be interesting")
	}

	if finalityErrs > 0 {
		t.Fatalf("%d finality violations at depth 8", finalityErrs)
	}
	fin := finRec.Snapshot()
	if v := consistency.StrongPrefix(fin, consistency.Options{}); !v.Satisfied {
		t.Fatalf("finalized reads violate Strong Prefix: %s", v)
	}
	if v := consistency.LocalMonotonicRead(fin, consistency.Options{}); !v.Satisfied {
		t.Fatalf("finalized reads not monotone: %s", v)
	}
}

// TestShallowDepthViolatesFinality: the same run with depth 0 produces
// finality violations — the condition on d is necessary.
func TestShallowDepthViolatesFinality(t *testing.T) {
	sim, reps := powNetwork(77)
	finRec := history.NewRecorderWithClock(simNow{sim})
	readers := map[history.ProcID]*Reader{}
	for id := range reps {
		readers[id] = &Reader{Gadget: New(0, blocktree.LongestChain{}), Proc: id, Rec: finRec}
	}
	violations := 0
	for step := 0; step < 120; step++ {
		sim.Run(int64(step+1) * 16)
		for id, rep := range reps {
			if _, err := readers[id].FinalizedRead(rep.Tree()); err != nil {
				violations++
			}
		}
	}
	if violations == 0 {
		t.Fatal("depth-0 finality survived a forking run")
	}
}

type simNow struct{ s *netsim.Sim }

func (c simNow) Now() int64 { return c.s.Now() }

func TestGadgetDefaults(t *testing.T) {
	g := New(5, nil)
	if g.Depth() != 5 {
		t.Fatal("depth")
	}
	tr := blocktree.New()
	fin, err := g.Observe(tr)
	if err != nil || fin.String() != "b0" {
		t.Fatalf("genesis observe: %s %v", fin, err)
	}
}
