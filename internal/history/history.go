// Package history implements the concurrent-history formalism of
// Definition 2.4 of "Blockchain Abstract Data Type" (Anceaume et al.).
//
// A concurrent history H = ⟨Σ, E, Λ, ↦→, ≺, ր⟩ consists of a set of events
// E (invocations and responses of ADT operations, plus the message-passing
// events of Definition 4.2: send, receive and update), the labelling Λ, the
// process order ↦→ (events of the same process), the operation order ≺
// (invocation precedes its response; a response at real time t precedes any
// invocation at t' > t), and the program order ր, the union of the two.
//
// Histories are produced by a Recorder, which concurrent objects call around
// each operation, and consumed immutably by the consistency checkers in
// internal/consistency.
package history

import (
	"fmt"
	"sort"
	"sync"
)

// ProcID identifies a sequential process.
type ProcID int

// BlockRef names a block; the empty string is reserved for "no block".
type BlockRef string

// Chain is a blockchain value as returned by read(): the genesis-rooted
// sequence of block references {b0}⌢…
type Chain []BlockRef

// Clone returns an independent copy of the chain.
func (c Chain) Clone() Chain {
	out := make(Chain, len(c))
	copy(out, c)
	return out
}

// HasPrefix reports whether p is a prefix of c (p ⊑ c).
func (c Chain) HasPrefix(p Chain) bool {
	if len(p) > len(c) {
		return false
	}
	for i := range p {
		if c[i] != p[i] {
			return false
		}
	}
	return true
}

// CommonPrefix returns the maximal common prefix of c and other.
func (c Chain) CommonPrefix(other Chain) Chain {
	n := len(c)
	if len(other) < n {
		n = len(other)
	}
	i := 0
	for i < n && c[i] == other[i] {
		i++
	}
	return c[:i]
}

// String renders the chain with the paper's b0⌢b1⌢… concatenation syntax.
func (c Chain) String() string {
	s := ""
	for i, b := range c {
		if i > 0 {
			s += "⌢"
		}
		s += string(b)
	}
	return s
}

// Kind enumerates the operation kinds that appear in the histories of this
// reproduction.
type Kind int

// Operation kinds. Read and Append are the BT-ADT operations
// (Definition 3.1); GetToken and ConsumeToken are the oracle operations
// (Definition 3.5); Send, Receive and Update are the replicated-object
// events of Definitions 4.2 and 4.3.
const (
	KindRead Kind = iota
	KindAppend
	KindGetToken
	KindConsumeToken
	KindSend
	KindReceive
	KindUpdate
	KindPropose
	KindDecide
)

var kindNames = map[Kind]string{
	KindRead:         "read",
	KindAppend:       "append",
	KindGetToken:     "getToken",
	KindConsumeToken: "consumeToken",
	KindSend:         "send",
	KindReceive:      "receive",
	KindUpdate:       "update",
	KindPropose:      "propose",
	KindDecide:       "decide",
}

// String returns the paper's name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Label is Λ(e): the operation an event belongs to, with its arguments and —
// on responses — its result.
type Label struct {
	Kind Kind
	// Block is the block argument of append/send/receive/update/propose,
	// or the proposed block of getToken.
	Block BlockRef
	// Parent is the predecessor argument bg of send/receive/update and of
	// getToken (the block the token is requested for).
	Parent BlockRef
	// Chain is the blockchain returned by a read response (or decided by
	// a decide event).
	Chain Chain
	// OK is the boolean result of an append response.
	OK bool
	// Token identifies the oracle token involved in
	// getToken/consumeToken responses.
	Token uint64
	// Origin is the process that generated the block carried by a
	// send/receive/update event (the i of b_i in Definition 4.3); it is
	// meaningful only for those kinds.
	Origin ProcID
}

// EventType distinguishes invocation and response events.
type EventType int

// Event types.
const (
	Invocation EventType = iota
	Response
)

// String returns "inv" or "rsp".
func (t EventType) String() string {
	if t == Invocation {
		return "inv"
	}
	return "rsp"
}

// OpID pairs an invocation event with its response event.
type OpID int

// Event is an element of E.
type Event struct {
	// Seq is the event's position in the global record; it is consistent
	// with real time (Time) and with per-process order.
	Seq int
	// Type says whether this is the invocation or the response event.
	Type EventType
	// Proc is the process that produced the event.
	Proc ProcID
	// Op identifies the operation this event belongss to.
	Op OpID
	// Label is Λ(e).
	Label Label
	// Time is the real (or virtual) timestamp used by the operation
	// order ≺.
	Time int64
}

// String renders the event compactly for diagnostics.
func (e Event) String() string {
	return fmt.Sprintf("e%d[p%d %s %s(%s) t=%d]", e.Seq, e.Proc, e.Type, e.Label.Kind, string(e.Label.Block), e.Time)
}

// Op is a completed (or pending) operation reconstructed from a history:
// its invocation event and, when present, its response event.
type Op struct {
	ID       OpID
	Proc     ProcID
	Label    Label // invocation label
	Response *Label
	InvTime  int64
	RspTime  int64
	InvSeq   int
	RspSeq   int
	// Complete reports whether a response was recorded.
	Complete bool
}

// History is an immutable concurrent history H.
//
// Because the history never changes after Snapshot, the derived views the
// consistency checkers and metric collectors iterate (Reads, Appends,
// OpsOfKind) are computed once and cached: every checker of a
// classification pass walks the same slices instead of re-filtering and
// re-sorting the event set per call. The cached slices are shared —
// callers must not mutate or reorder them (clone first, as
// readsByProcessOrder in internal/consistency does).
type History struct {
	events []Event
	ops    []Op

	mu          sync.Mutex
	readsCache  []ReadOp
	appendCache []AppendOp
	okAppends   []AppendOp
	kindCache   map[Kind][]Op
}

// Events returns the event set E in global (Seq) order.
func (h *History) Events() []Event { return h.events }

// Ops returns all operations in invocation order.
func (h *History) Ops() []Op { return h.ops }

// Len returns the number of events.
func (h *History) Len() int { return len(h.events) }

// ReadOp is a completed read() operation together with its returned chain.
type ReadOp struct {
	Op    Op
	Chain Chain
}

// Reads returns the completed read() operations in response order (the
// order their responses occurred), which is the order the consistency
// criteria quantify over. The slice is computed once and shared across
// calls; callers must not mutate or reorder it.
func (h *History) Reads() []ReadOp {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.readsCache == nil {
		out := []ReadOp{}
		for _, op := range h.ops {
			if op.Label.Kind == KindRead && op.Complete {
				out = append(out, ReadOp{Op: op, Chain: op.Response.Chain})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Op.RspSeq < out[j].Op.RspSeq })
		h.readsCache = out
	}
	return h.readsCache
}

// AppendOp is a completed append() operation.
type AppendOp struct {
	Op    Op
	Block BlockRef
	OK    bool
}

// Appends returns the completed append() operations in invocation order.
// The slice is computed once and shared; callers must not mutate it.
func (h *History) Appends() []AppendOp {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.appendCache == nil {
		out := []AppendOp{}
		for _, op := range h.ops {
			if op.Label.Kind == KindAppend && op.Complete {
				out = append(out, AppendOp{Op: op, Block: op.Label.Block, OK: op.Response.OK})
			}
		}
		h.appendCache = out
	}
	return h.appendCache
}

// SuccessfulAppends returns the appends whose response is true. The
// hierarchy results (Section 3.4) consider histories purged of unsuccessful
// append responses; this accessor implements that purge. The slice is
// computed once and shared; callers must not mutate it.
func (h *History) SuccessfulAppends() []AppendOp {
	appends := h.Appends()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.okAppends == nil {
		out := []AppendOp{}
		for _, a := range appends {
			if a.OK {
				out = append(out, a)
			}
		}
		h.okAppends = out
	}
	return h.okAppends
}

// OpsOfKind returns completed operations with the given kind, in invocation
// order. The slice is computed once per kind and shared; callers must not
// mutate it.
func (h *History) OpsOfKind(k Kind) []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	out, ok := h.kindCache[k]
	if !ok {
		out = []Op{}
		for _, op := range h.ops {
			if op.Label.Kind == k {
				out = append(out, op)
			}
		}
		if h.kindCache == nil {
			h.kindCache = map[Kind][]Op{}
		}
		h.kindCache[k] = out
	}
	return out
}

// ProcessOrdered reports a ↦→ b: both events belong to the same process and
// a precedes b in that process's sequence.
func ProcessOrdered(a, b Event) bool {
	return a.Proc == b.Proc && a.Seq < b.Seq
}

// OperationOrdered reports a ≺ b per Definition 2.4: either a is the
// invocation and b the response of the same operation, or a is a response
// occurring strictly before the invocation b in real time.
func OperationOrdered(a, b Event) bool {
	if a.Op == b.Op && a.Type == Invocation && b.Type == Response {
		return true
	}
	return a.Type == Response && b.Type == Invocation && a.Time < b.Time
}

// ProgramOrdered reports a ր b: the union of process order and operation
// order (Definition 2.4). It is the order the consistency criteria use to
// relate a read response to later read invocations.
func ProgramOrdered(a, b Event) bool {
	if a.Seq == b.Seq {
		return false
	}
	return ProcessOrdered(a, b) || OperationOrdered(a, b)
}

// RespondedBefore reports whether op a's response program-order-precedes op
// b's invocation: ersp(a) ր einv(b). Both operations must be complete.
func RespondedBefore(a, b Op) bool {
	if !a.Complete {
		return false
	}
	// Same process: compare per-process sequence.
	if a.Proc == b.Proc {
		return a.RspSeq < b.InvSeq
	}
	return a.RspTime < b.InvTime
}

// Recorder accumulates events concurrently. The zero value is not usable;
// create one with NewRecorder.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	ops    []Op
	clock  Clock
	// respSlab is the current response-label chunk. Respond hands out
	// pointers into it; append never reallocates within a chunk (a fresh
	// chunk is started when the current one fills), so the pointers stay
	// valid and one allocation serves many responses.
	respSlab []Label
}

// Clock supplies timestamps for the operation order ≺. Virtual-time
// simulators supply their own clock; real concurrent runs use a monotonic
// counter.
type Clock interface {
	// Now returns the current time; values must be non-decreasing.
	Now() int64
}

// counterClock is a monotonic logical clock: each call returns a strictly
// larger value, which linearizes real concurrent runs by recording order.
type counterClock struct {
	mu sync.Mutex
	t  int64
}

func (c *counterClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t++
	return c.t
}

// NewRecorder returns a recorder using a monotonic logical clock.
func NewRecorder() *Recorder {
	return &Recorder{clock: &counterClock{}}
}

// NewRecorderWithClock returns a recorder stamped by the given clock (used
// by the virtual-time netsim).
func NewRecorderWithClock(c Clock) *Recorder {
	return &Recorder{clock: c}
}

// Reserve grows the recorder's event and operation buffers to at least the
// given capacities. Simulators that can bound the history size from their
// parameters (TargetBlocks × replicas × ops-per-block) call this once so the
// append path never reallocates mid-run.
func (r *Recorder) Reserve(events, ops int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cap(r.events) < events {
		grown := make([]Event, len(r.events), events)
		copy(grown, r.events)
		r.events = grown
	}
	if cap(r.ops) < ops {
		grown := make([]Op, len(r.ops), ops)
		copy(grown, r.ops)
		r.ops = grown
	}
	if cap(r.respSlab)-len(r.respSlab) < ops {
		r.respSlab = make([]Label, 0, ops)
	}
}

// Invoke records the invocation event of a new operation and returns its
// OpID, to be passed to Respond.
func (r *Recorder) Invoke(p ProcID, l Label) OpID {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := OpID(len(r.ops))
	seq := len(r.events)
	now := r.clock.Now()
	r.events = append(r.events, Event{Seq: seq, Type: Invocation, Proc: p, Op: id, Label: l, Time: now})
	r.ops = append(r.ops, Op{ID: id, Proc: p, Label: l, InvTime: now, InvSeq: seq})
	return id
}

// Respond records the response event of operation id with the given result
// label.
func (r *Recorder) Respond(id OpID, result Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := len(r.events)
	now := r.clock.Now()
	op := &r.ops[id]
	r.events = append(r.events, Event{Seq: seq, Type: Response, Proc: op.Proc, Op: id, Label: result, Time: now})
	if len(r.respSlab) == cap(r.respSlab) {
		r.respSlab = make([]Label, 0, 256)
	}
	r.respSlab = append(r.respSlab, result)
	op.Response = &r.respSlab[len(r.respSlab)-1]
	op.RspTime = now
	op.RspSeq = seq
	op.Complete = true
}

// Record records an instantaneous (invocation+response collapsed) event,
// used for send/receive/update events which have no call/return structure.
// It appends both events under one lock acquisition — equivalent to
// Invoke+Respond (including drawing two clock values) but cheaper on the
// simulator's per-delivery path, where Record is the dominant call.
func (r *Recorder) Record(p ProcID, l Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := OpID(len(r.ops))
	seq := len(r.events)
	tInv := r.clock.Now()
	tRsp := r.clock.Now()
	r.events = append(r.events,
		Event{Seq: seq, Type: Invocation, Proc: p, Op: id, Label: l, Time: tInv},
		Event{Seq: seq + 1, Type: Response, Proc: p, Op: id, Label: l, Time: tRsp})
	if len(r.respSlab) == cap(r.respSlab) {
		r.respSlab = make([]Label, 0, 256)
	}
	r.respSlab = append(r.respSlab, l)
	r.ops = append(r.ops, Op{
		ID: id, Proc: p, Label: l,
		Response: &r.respSlab[len(r.respSlab)-1],
		InvTime:  tInv, RspTime: tRsp,
		InvSeq: seq, RspSeq: seq + 1,
		Complete: true,
	})
}

// Snapshot returns an immutable copy of the history recorded so far.
func (r *Recorder) Snapshot() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &History{
		events: make([]Event, len(r.events)),
		ops:    make([]Op, len(r.ops)),
	}
	copy(h.events, r.events)
	copy(h.ops, r.ops)
	// One response slab for the whole snapshot instead of one heap object
	// per completed operation: the copies stay independent of the recorder
	// (the slab is owned by the snapshot) without per-op allocations.
	n := 0
	for i := range r.ops {
		if r.ops[i].Response != nil {
			n++
		}
	}
	slab := make([]Label, 0, n)
	for i := range h.ops {
		if r.ops[i].Response != nil {
			slab = append(slab, *r.ops[i].Response)
			h.ops[i].Response = &slab[len(slab)-1]
		}
	}
	return h
}

// Finalize returns the recorded history by transferring ownership of the
// recorder's buffers — no copy. The recorder is reset to empty and must
// not be reused, or the returned history would observe the new events.
// Single-use harnesses (one recorder per simulation run) call this instead
// of Snapshot to avoid duplicating the full event set at the end of every
// run.
func (r *Recorder) Finalize() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &History{events: r.events, ops: r.ops}
	r.events = nil
	r.ops = nil
	r.respSlab = nil
	return h
}
