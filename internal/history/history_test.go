package history

import (
	"sync"
	"testing"
	"testing/quick"
)

func chainOf(ids ...string) Chain {
	c := make(Chain, len(ids))
	for i, s := range ids {
		c[i] = BlockRef(s)
	}
	return c
}

func TestChainHasPrefix(t *testing.T) {
	c := chainOf("b0", "1", "2", "3")
	cases := []struct {
		prefix Chain
		want   bool
	}{
		{chainOf(), true},
		{chainOf("b0"), true},
		{chainOf("b0", "1"), true},
		{chainOf("b0", "1", "2", "3"), true},
		{chainOf("b0", "2"), false},
		{chainOf("b0", "1", "2", "3", "4"), false},
		{chainOf("1"), false},
	}
	for _, tc := range cases {
		if got := c.HasPrefix(tc.prefix); got != tc.want {
			t.Errorf("HasPrefix(%v) = %v, want %v", tc.prefix, got, tc.want)
		}
	}
}

func TestChainCommonPrefix(t *testing.T) {
	a := chainOf("b0", "1", "2", "3")
	b := chainOf("b0", "1", "9")
	cp := a.CommonPrefix(b)
	if cp.String() != "b0⌢1" {
		t.Fatalf("common prefix = %s, want b0⌢1", cp)
	}
	if got := a.CommonPrefix(a); len(got) != len(a) {
		t.Fatalf("self common prefix length = %d, want %d", len(got), len(a))
	}
	if got := a.CommonPrefix(chainOf("x")); len(got) != 0 {
		t.Fatalf("disjoint common prefix length = %d, want 0", len(got))
	}
}

func TestChainClone(t *testing.T) {
	a := chainOf("b0", "1")
	b := a.Clone()
	b[1] = "2"
	if a[1] != "1" {
		t.Fatal("Clone aliases the original")
	}
}

// TestProperty_CommonPrefixIsPrefixOfBoth: the common prefix prefixes both
// inputs and is maximal (extending it by one block breaks the property).
func TestProperty_CommonPrefixIsPrefixOfBoth(t *testing.T) {
	f := func(a, b []uint8) bool {
		ca := make(Chain, len(a))
		for i, v := range a {
			ca[i] = BlockRef(string(rune('a' + v%4)))
		}
		cb := make(Chain, len(b))
		for i, v := range b {
			cb[i] = BlockRef(string(rune('a' + v%4)))
		}
		cp := ca.CommonPrefix(cb)
		if !ca.HasPrefix(cp) || !cb.HasPrefix(cp) {
			return false
		}
		// Maximality.
		if len(cp) < len(ca) && len(cp) < len(cb) && ca[len(cp)] == cb[len(cp)] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProperty_PrefixUltrametric: lcp(a,c) ≥ min(lcp(a,b), lcp(b,c)), the
// inequality the EventualPrefix checker's suffix optimization relies on.
func TestProperty_PrefixUltrametric(t *testing.T) {
	mk := func(v []uint8) Chain {
		c := make(Chain, len(v))
		for i, x := range v {
			c[i] = BlockRef(string(rune('a' + x%3)))
		}
		return c
	}
	f := func(a, b, c []uint8) bool {
		ca, cb, cc := mk(a), mk(b), mk(c)
		lab := len(ca.CommonPrefix(cb))
		lbc := len(cb.CommonPrefix(cc))
		lac := len(ca.CommonPrefix(cc))
		minv := lab
		if lbc < minv {
			minv = lbc
		}
		return lac >= minv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderBasicOps(t *testing.T) {
	r := NewRecorder()
	id := r.Invoke(0, Label{Kind: KindRead})
	r.Respond(id, Label{Kind: KindRead, Chain: chainOf("b0", "1")})
	r.Record(1, Label{Kind: KindSend, Block: "1", Parent: "b0", Origin: 1})
	h := r.Snapshot()

	if h.Len() != 4 {
		t.Fatalf("events = %d, want 4 (inv+rsp, send collapsed pair)", h.Len())
	}
	reads := h.Reads()
	if len(reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(reads))
	}
	if reads[0].Chain.String() != "b0⌢1" {
		t.Fatalf("read chain = %s", reads[0].Chain)
	}
	sends := h.OpsOfKind(KindSend)
	if len(sends) != 1 || sends[0].Label.Origin != 1 {
		t.Fatalf("sends = %+v", sends)
	}
}

func TestRecorderPendingOperation(t *testing.T) {
	r := NewRecorder()
	r.Invoke(0, Label{Kind: KindAppend, Block: "1"})
	h := r.Snapshot()
	if got := len(h.Appends()); got != 0 {
		t.Fatalf("incomplete append counted: %d", got)
	}
	ops := h.Ops()
	if len(ops) != 1 || ops[0].Complete {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestSuccessfulAppendsPurge(t *testing.T) {
	r := NewRecorder()
	a := r.Invoke(0, Label{Kind: KindAppend, Block: "x"})
	r.Respond(a, Label{Kind: KindAppend, Block: "x", OK: false})
	b := r.Invoke(0, Label{Kind: KindAppend, Block: "y"})
	r.Respond(b, Label{Kind: KindAppend, Block: "y", OK: true})
	h := r.Snapshot()
	if got := len(h.Appends()); got != 2 {
		t.Fatalf("appends = %d, want 2", got)
	}
	ok := h.SuccessfulAppends()
	if len(ok) != 1 || ok[0].Block != "y" {
		t.Fatalf("successful appends = %+v", ok)
	}
}

func TestOrders(t *testing.T) {
	r := NewRecorder()
	op1 := r.Invoke(0, Label{Kind: KindRead})
	r.Respond(op1, Label{Kind: KindRead, Chain: chainOf("b0")})
	op2 := r.Invoke(1, Label{Kind: KindRead})
	r.Respond(op2, Label{Kind: KindRead, Chain: chainOf("b0")})
	h := r.Snapshot()
	ev := h.Events()

	// Process order: events 0,1 belong to proc 0; 2,3 to proc 1.
	if !ProcessOrdered(ev[0], ev[1]) {
		t.Fatal("invocation should process-precede own response")
	}
	if ProcessOrdered(ev[0], ev[2]) {
		t.Fatal("different processes are never process-ordered")
	}
	// Operation order: inv ≺ rsp of same op; rsp(op1) ≺ inv(op2) since
	// op1 responded before op2 was invoked.
	if !OperationOrdered(ev[0], ev[1]) {
		t.Fatal("inv should operation-precede its response")
	}
	if !OperationOrdered(ev[1], ev[2]) {
		t.Fatal("earlier response should operation-precede later invocation")
	}
	if OperationOrdered(ev[2], ev[1]) {
		t.Fatal("operation order must not be symmetric")
	}
	// Program order is their union.
	if !ProgramOrdered(ev[0], ev[1]) || !ProgramOrdered(ev[1], ev[2]) {
		t.Fatal("program order must contain both orders")
	}

	ops := h.Ops()
	if !RespondedBefore(ops[0], ops[1]) {
		t.Fatal("op1 responded before op2 invoked")
	}
	if RespondedBefore(ops[1], ops[0]) {
		t.Fatal("RespondedBefore must not be symmetric")
	}
}

func TestRecorderConcurrentSafety(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const procs, opsPerProc = 8, 50
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p ProcID) {
			defer wg.Done()
			for i := 0; i < opsPerProc; i++ {
				id := r.Invoke(p, Label{Kind: KindRead})
				r.Respond(id, Label{Kind: KindRead, Chain: chainOf("b0")})
			}
		}(ProcID(p))
	}
	wg.Wait()
	h := r.Snapshot()
	if got := len(h.Reads()); got != procs*opsPerProc {
		t.Fatalf("reads = %d, want %d", got, procs*opsPerProc)
	}
	// Per-process invariants: events strictly ordered, times
	// non-decreasing.
	last := map[ProcID]int{}
	for _, e := range h.Events() {
		if prev, ok := last[e.Proc]; ok && e.Seq <= prev {
			t.Fatal("per-process sequence not increasing")
		}
		last[e.Proc] = e.Seq
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	r := NewRecorder()
	id := r.Invoke(0, Label{Kind: KindRead})
	h1 := r.Snapshot()
	r.Respond(id, Label{Kind: KindRead, Chain: chainOf("b0")})
	if h1.Ops()[0].Complete {
		t.Fatal("snapshot mutated by later Respond")
	}
	h2 := r.Snapshot()
	if !h2.Ops()[0].Complete {
		t.Fatal("second snapshot missing the response")
	}
}

func TestKindString(t *testing.T) {
	if KindRead.String() != "read" || KindConsumeToken.String() != "consumeToken" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must render something")
	}
}
