package ledger_test

import (
	"fmt"

	"blockadt/internal/blocktree"
	"blockadt/internal/ledger"
)

// Example instantiates the paper's Section 3.1 validity-predicate example:
// a block is valid iff it connects to the chain and does not double spend.
func Example() {
	tree := blocktree.New()
	v := ledger.NewValidator(map[ledger.Account]uint64{"alice": 100}, tree)
	p := v.Predicate()

	pay, _ := ledger.Payload{Txs: []ledger.Tx{{From: "alice", To: "bob", Amount: 10, Nonce: 0}}}.Encode()
	good := blocktree.Block{ID: "g", Parent: blocktree.GenesisID, Payload: pay}
	fmt.Println("P(good):", p(good))
	tree.Insert(good)

	// Replaying the same nonce on top of g is the double spend.
	dbl := blocktree.Block{ID: "d", Parent: "g", Payload: pay}
	fmt.Println("P(double-spend):", p(dbl))

	// On a sibling branch the same transfer is fresh: validity is
	// per-chain.
	sib := blocktree.Block{ID: "s", Parent: blocktree.GenesisID, Payload: pay}
	fmt.Println("P(sibling):", p(sib))
	// Output:
	// P(good): true
	// P(double-spend): false
	// P(sibling): true
}

// ExampleReplay computes the account state of a chain.
func ExampleReplay() {
	tree := blocktree.New()
	pay, _ := ledger.Payload{Txs: []ledger.Tx{{From: "alice", To: "bob", Amount: 30, Nonce: 0}}}.Encode()
	tree.Insert(blocktree.Block{ID: "x", Parent: blocktree.GenesisID, Payload: pay})
	chain, _ := tree.ChainTo("x")
	state, _ := ledger.Replay(map[ledger.Account]uint64{"alice": 100}, chain)
	fmt.Println("alice:", state.Balance("alice"), "bob:", state.Balance("bob"))
	// Output:
	// alice: 70 bob: 30
}
