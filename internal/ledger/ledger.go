// Package ledger instantiates the paper's application-dependent validity
// predicate P with the example Section 3.1 gives for Bitcoin: "a block is
// considered valid if it can be connected to the current blockchain and
// does not contain transactions that double spend a previous transaction".
//
// The package provides a minimal account/transfer transaction model, block
// payload encoding (encoding/json — stdlib only), deterministic workload
// generation, and the Predicate constructor that plugs into the BlockTree:
// P(b) = the block's transactions apply without double spends to the state
// reached by replaying the chain b connects to.
package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"blockadt/internal/blocktree"
	"blockadt/internal/prng"
)

// Account identifies a balance holder.
type Account string

// Tx is a transfer of Amount from From to To. Nonce orders the transfers of
// a single account; a transaction is a double spend when it reuses a nonce
// the account has already consumed on the chain (the classic replay form of
// double spending).
type Tx struct {
	From   Account `json:"from"`
	To     Account `json:"to"`
	Amount uint64  `json:"amount"`
	Nonce  uint64  `json:"nonce"`
}

// ID returns the canonical identity of the transaction.
func (t Tx) ID() string {
	return fmt.Sprintf("%s->%s#%d@%d", t.From, t.To, t.Nonce, t.Amount)
}

// Payload is a block's transaction content.
type Payload struct {
	Txs []Tx `json:"txs"`
}

// Encode serializes the payload for embedding into blocktree.Block.Payload.
func (p Payload) Encode() ([]byte, error) {
	return json.Marshal(p)
}

// DecodePayload parses a block payload. A nil/empty payload decodes to an
// empty transaction list (blocks without application content are valid).
func DecodePayload(b []byte) (Payload, error) {
	if len(b) == 0 {
		return Payload{}, nil
	}
	var p Payload
	if err := json.Unmarshal(b, &p); err != nil {
		return Payload{}, fmt.Errorf("ledger: decode payload: %w", err)
	}
	return p, nil
}

// State is the replayed account state of a chain: balances plus the next
// expected nonce per account.
type State struct {
	balances map[Account]uint64
	nonces   map[Account]uint64
}

// NewState returns a state with the given genesis allocation.
func NewState(genesis map[Account]uint64) *State {
	s := &State{balances: map[Account]uint64{}, nonces: map[Account]uint64{}}
	for a, v := range genesis {
		s.balances[a] = v
	}
	return s
}

// Clone returns an independent copy.
func (s *State) Clone() *State {
	c := &State{
		balances: make(map[Account]uint64, len(s.balances)),
		nonces:   make(map[Account]uint64, len(s.nonces)),
	}
	for a, v := range s.balances {
		c.balances[a] = v
	}
	for a, v := range s.nonces {
		c.nonces[a] = v
	}
	return c
}

// Balance returns the account's balance.
func (s *State) Balance(a Account) uint64 { return s.balances[a] }

// Nonce returns the next expected nonce of the account.
func (s *State) Nonce(a Account) uint64 { return s.nonces[a] }

// Accounts returns the accounts with a non-zero balance, sorted.
func (s *State) Accounts() []Account {
	out := make([]Account, 0, len(s.balances))
	for a, v := range s.balances {
		if v > 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Errors returned by Apply.
var (
	// ErrDoubleSpend reports a reused (or skipped) nonce — the paper's
	// double-spend example.
	ErrDoubleSpend = errors.New("ledger: double spend (nonce reuse)")
	// ErrInsufficient reports an overdraft.
	ErrInsufficient = errors.New("ledger: insufficient balance")
	// ErrSelfTransfer reports a transfer to the sending account.
	ErrSelfTransfer = errors.New("ledger: self transfer")
)

// Apply executes the transaction, mutating the state, or returns an error
// leaving the state unchanged.
func (s *State) Apply(t Tx) error {
	if t.From == t.To {
		return ErrSelfTransfer
	}
	if t.Nonce != s.nonces[t.From] {
		return fmt.Errorf("%w: account %s nonce %d, expected %d", ErrDoubleSpend, t.From, t.Nonce, s.nonces[t.From])
	}
	if s.balances[t.From] < t.Amount {
		return fmt.Errorf("%w: account %s has %d, needs %d", ErrInsufficient, t.From, s.balances[t.From], t.Amount)
	}
	s.balances[t.From] -= t.Amount
	s.balances[t.To] += t.Amount
	s.nonces[t.From]++
	return nil
}

// Total returns the sum of all balances (conserved by Apply).
func (s *State) Total() uint64 {
	var sum uint64
	for _, v := range s.balances {
		sum += v
	}
	return sum
}

// Replay computes the state after applying every block of the chain in
// order from the genesis allocation. It fails on the first invalid
// transaction — a chain that replays cleanly is exactly a chain of valid
// blocks under the Predicate below.
func Replay(genesis map[Account]uint64, chain blocktree.Chain) (*State, error) {
	s := NewState(genesis)
	for _, b := range chain {
		if b.ID == blocktree.GenesisID {
			continue
		}
		p, err := DecodePayload(b.Payload)
		if err != nil {
			return nil, fmt.Errorf("block %s: %w", b.ID, err)
		}
		for _, t := range p.Txs {
			if err := s.Apply(t); err != nil {
				return nil, fmt.Errorf("block %s tx %s: %w", b.ID, t.ID(), err)
			}
		}
	}
	return s, nil
}

// Validator builds the application-dependent predicate P of Section 3.1 for
// a tree: a block is valid iff it connects to the tree and its transactions
// apply, without double spends or overdrafts, to the state reached by
// replaying the chain from genesis to its parent.
type Validator struct {
	genesis map[Account]uint64
	tree    *blocktree.Tree
}

// NewValidator returns a validator bound to the tree.
func NewValidator(genesis map[Account]uint64, tree *blocktree.Tree) *Validator {
	g := make(map[Account]uint64, len(genesis))
	for a, v := range genesis {
		g[a] = v
	}
	return &Validator{genesis: g, tree: tree}
}

// Predicate returns the blocktree.Predicate P.
func (v *Validator) Predicate() blocktree.Predicate {
	return func(b blocktree.Block) bool {
		return v.Check(b) == nil
	}
}

// Check explains why a block is invalid (nil = valid).
func (v *Validator) Check(b blocktree.Block) error {
	chain, ok := v.tree.ChainTo(b.Parent)
	if !ok {
		return fmt.Errorf("ledger: block %s does not connect: unknown parent %s", b.ID, b.Parent)
	}
	state, err := Replay(v.genesis, chain)
	if err != nil {
		return fmt.Errorf("ledger: parent chain invalid: %w", err)
	}
	p, err := DecodePayload(b.Payload)
	if err != nil {
		return err
	}
	for _, t := range p.Txs {
		if err := state.Apply(t); err != nil {
			return err
		}
	}
	return nil
}

// Workload deterministically generates valid transaction batches against an
// evolving expected state — the block-content generator the simulators and
// examples use.
type Workload struct {
	rng      *prng.Source
	state    *State
	genesis  map[Account]uint64
	accounts []Account
}

// NewWorkload returns a generator over nAccounts accounts each funded with
// initial balance.
func NewWorkload(seed uint64, nAccounts int, initial uint64) *Workload {
	gen := map[Account]uint64{}
	accounts := make([]Account, nAccounts)
	for i := range accounts {
		a := Account(fmt.Sprintf("acct-%02d", i))
		accounts[i] = a
		gen[a] = initial
	}
	return &Workload{rng: prng.New(seed), state: NewState(gen), genesis: gen, accounts: accounts}
}

// Genesis returns the initial allocation.
func (w *Workload) Genesis() map[Account]uint64 {
	out := make(map[Account]uint64, len(w.genesis))
	for a, v := range w.genesis {
		out[a] = v
	}
	return out
}

// NextBatch produces n valid transfers and advances the expected state.
func (w *Workload) NextBatch(n int) Payload {
	var txs []Tx
	for len(txs) < n {
		fi := w.rng.Intn(len(w.accounts))
		ti := w.rng.Intn(len(w.accounts))
		if fi == ti {
			continue
		}
		from, to := w.accounts[fi], w.accounts[ti]
		bal := w.state.Balance(from)
		if bal == 0 {
			continue
		}
		amt := 1 + uint64(w.rng.Int63n(int64(bal)))
		t := Tx{From: from, To: to, Amount: amt, Nonce: w.state.Nonce(from)}
		if err := w.state.Apply(t); err != nil {
			continue
		}
		txs = append(txs, t)
	}
	return Payload{Txs: txs}
}

// ExpectedState exposes the state the workload has advanced to.
func (w *Workload) ExpectedState() *State { return w.state.Clone() }
