package ledger

import (
	"errors"
	"testing"
	"testing/quick"

	"blockadt/internal/blocktree"
)

func genesisAlloc() map[Account]uint64 {
	return map[Account]uint64{"alice": 100, "bob": 50}
}

func TestApplyTransfers(t *testing.T) {
	s := NewState(genesisAlloc())
	if err := s.Apply(Tx{From: "alice", To: "bob", Amount: 30, Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	if s.Balance("alice") != 70 || s.Balance("bob") != 80 {
		t.Fatalf("balances = %d/%d", s.Balance("alice"), s.Balance("bob"))
	}
	if s.Nonce("alice") != 1 {
		t.Fatalf("nonce = %d", s.Nonce("alice"))
	}
}

func TestApplyDoubleSpend(t *testing.T) {
	s := NewState(genesisAlloc())
	tx := Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0}
	if err := s.Apply(tx); err != nil {
		t.Fatal(err)
	}
	// Replaying the same nonce is the double spend.
	if err := s.Apply(tx); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("err = %v, want ErrDoubleSpend", err)
	}
	// Skipping a nonce is also rejected.
	if err := s.Apply(Tx{From: "alice", To: "bob", Amount: 10, Nonce: 5}); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("err = %v, want ErrDoubleSpend", err)
	}
}

func TestApplyOverdraftAndSelfTransfer(t *testing.T) {
	s := NewState(genesisAlloc())
	if err := s.Apply(Tx{From: "bob", To: "alice", Amount: 51, Nonce: 0}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Apply(Tx{From: "bob", To: "bob", Amount: 1, Nonce: 0}); !errors.Is(err, ErrSelfTransfer) {
		t.Fatalf("err = %v", err)
	}
	// Failed applications leave the state unchanged.
	if s.Balance("bob") != 50 || s.Nonce("bob") != 0 {
		t.Fatal("failed apply mutated state")
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	p := Payload{Txs: []Tx{{From: "a", To: "b", Amount: 1, Nonce: 0}, {From: "b", To: "a", Amount: 2, Nonce: 0}}}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Txs) != 2 || dec.Txs[0] != p.Txs[0] || dec.Txs[1] != p.Txs[1] {
		t.Fatalf("round trip: %+v", dec)
	}
}

func TestDecodePayloadEmptyAndBad(t *testing.T) {
	if p, err := DecodePayload(nil); err != nil || len(p.Txs) != 0 {
		t.Fatal("empty payload must decode to no txs")
	}
	if _, err := DecodePayload([]byte("{garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func mustPayload(t *testing.T, txs ...Tx) []byte {
	t.Helper()
	enc, err := Payload{Txs: txs}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestReplayChain(t *testing.T) {
	tree := blocktree.New()
	b1 := blocktree.Block{ID: "x", Parent: blocktree.GenesisID,
		Payload: mustPayload(t, Tx{From: "alice", To: "bob", Amount: 40, Nonce: 0})}
	if err := tree.Insert(b1); err != nil {
		t.Fatal(err)
	}
	b2 := blocktree.Block{ID: "y", Parent: "x",
		Payload: mustPayload(t, Tx{From: "bob", To: "alice", Amount: 90, Nonce: 0})}
	if err := tree.Insert(b2); err != nil {
		t.Fatal(err)
	}
	chain, _ := tree.ChainTo("y")
	s, err := Replay(genesisAlloc(), chain)
	if err != nil {
		t.Fatal(err)
	}
	if s.Balance("alice") != 150 || s.Balance("bob") != 0 {
		t.Fatalf("balances = %d/%d", s.Balance("alice"), s.Balance("bob"))
	}
	if s.Total() != 150 {
		t.Fatalf("total = %d (not conserved)", s.Total())
	}
}

func TestValidatorPredicateP(t *testing.T) {
	tree := blocktree.New()
	v := NewValidator(genesisAlloc(), tree)
	p := v.Predicate()

	good := blocktree.Block{ID: "g", Parent: blocktree.GenesisID,
		Payload: mustPayload(t, Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0})}
	if !p(good) {
		t.Fatalf("valid block rejected: %v", v.Check(good))
	}
	if err := tree.Insert(good); err != nil {
		t.Fatal(err)
	}

	// Double spend against the parent chain: nonce 0 already consumed.
	dbl := blocktree.Block{ID: "d", Parent: "g",
		Payload: mustPayload(t, Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0})}
	if p(dbl) {
		t.Fatal("double-spending block accepted")
	}
	if err := v.Check(dbl); !errors.Is(err, ErrDoubleSpend) {
		t.Fatalf("check = %v", err)
	}

	// The same transaction is fine on a sibling branch (no double spend
	// there): validity is per-chain, the essence of fork semantics.
	sib := blocktree.Block{ID: "s", Parent: blocktree.GenesisID,
		Payload: mustPayload(t, Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0})}
	if !p(sib) {
		t.Fatalf("sibling-branch block rejected: %v", v.Check(sib))
	}

	// A block that does not connect is invalid ("can be connected" half
	// of the paper's example).
	orphan := blocktree.Block{ID: "o", Parent: "nowhere"}
	if p(orphan) {
		t.Fatal("unconnected block accepted")
	}
}

func TestValidatorOverdraft(t *testing.T) {
	tree := blocktree.New()
	v := NewValidator(genesisAlloc(), tree)
	over := blocktree.Block{ID: "v", Parent: blocktree.GenesisID,
		Payload: mustPayload(t, Tx{From: "bob", To: "alice", Amount: 9999, Nonce: 0})}
	if err := v.Check(over); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("check = %v", err)
	}
}

func TestWorkloadGeneratesValidBatches(t *testing.T) {
	w := NewWorkload(7, 6, 1000)
	tree := blocktree.New()
	v := NewValidator(w.Genesis(), tree)
	parent := blocktree.GenesisID
	for i := 0; i < 10; i++ {
		batch := w.NextBatch(5)
		enc, err := batch.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b := blocktree.Block{ID: blocktree.BlockID(string(rune('A' + i))), Parent: parent, Payload: enc}
		if err := v.Check(b); err != nil {
			t.Fatalf("workload batch %d invalid: %v", i, err)
		}
		if err := tree.Insert(b); err != nil {
			t.Fatal(err)
		}
		parent = b.ID
	}
	chain, _ := tree.ChainTo(parent)
	s, err := Replay(w.Genesis(), chain)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed chain state matches the workload's expected state.
	exp := w.ExpectedState()
	for _, a := range exp.Accounts() {
		if s.Balance(a) != exp.Balance(a) {
			t.Fatalf("account %s: replay %d, expected %d", a, s.Balance(a), exp.Balance(a))
		}
	}
	if s.Total() != 6*1000 {
		t.Fatalf("total = %d (not conserved)", s.Total())
	}
}

// TestProperty_ConservationAndNonceMonotonicity: any sequence of applied
// transactions conserves the total supply, and nonces only move forward.
func TestProperty_ConservationAndNonceMonotonicity(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		w := NewWorkload(seed, 4, 500)
		s := NewState(w.Genesis())
		total := s.Total()
		for i := 0; i < int(n%20)+1; i++ {
			batch := w.NextBatch(3)
			for _, tx := range batch.Txs {
				before := s.Nonce(tx.From)
				if err := s.Apply(tx); err != nil {
					return false
				}
				if s.Nonce(tx.From) != before+1 {
					return false
				}
			}
			if s.Total() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStateCloneIndependence(t *testing.T) {
	s := NewState(genesisAlloc())
	c := s.Clone()
	if err := s.Apply(Tx{From: "alice", To: "bob", Amount: 10, Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	if c.Balance("alice") != 100 || c.Nonce("alice") != 0 {
		t.Fatal("clone aliased")
	}
}

func TestTxID(t *testing.T) {
	id := Tx{From: "a", To: "b", Amount: 5, Nonce: 2}.ID()
	if id != "a->b#2@5" {
		t.Fatalf("id = %s", id)
	}
}
