package metrics

import (
	"math"
	"sort"
	"testing"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// exactQuantile is the nearest-rank reference the P² estimator
// approximates.
func exactQuantile(samples []float64, p float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestP2HandlesRepeatedMaxima is the regression for the max-marker tie
// bug: on a 10k-sample stream where the maximum recurs constantly (here
// values quantized to a handful of levels, so ties at the running max are
// the common case), the P² p99 must track the exact nearest-rank p99
// within a small relative tolerance. Before the strict-> fix, every tie
// re-wrote the max marker and dragged the upper interior markers toward
// the extreme.
func TestP2HandlesRepeatedMaxima(t *testing.T) {
	rng := prng.New(99)
	var samples []float64
	q := NewQuantile(0.5, 0.99)
	for i := 0; i < 10000; i++ {
		// Heavy duplication: 0, 10, 20, ..., 90; the max level 90 appears
		// ~10% of the time, so post-switch ties at heights[4] are constant.
		v := float64(rng.Intn(10) * 10)
		samples = append(samples, v)
		q.Add(v)
	}
	// P² interpolates between the quantized levels, so mid-quantiles are
	// inherently coarse on discrete data (10% tolerance); the p99 sits at
	// the repeated maximum itself — exactly what the tie bug skewed — and
	// must be tight.
	for _, tc := range []struct{ p, tol float64 }{{0.5, 0.10}, {0.99, 0.05}} {
		want := exactQuantile(samples, tc.p)
		got := q.Get(tc.p)
		tol := tc.tol * (want + 1)
		if math.Abs(got-want) > tol {
			t.Errorf("p%.0f = %v, exact %v (tolerance %v) — tie handling skews the estimate", tc.p*100, got, want, tol)
		}
	}
}

// TestP2ContinuousStreamStillAccurate guards the fix's other side: the
// strict comparison must not hurt ordinary continuous streams.
func TestP2ContinuousStreamStillAccurate(t *testing.T) {
	rng := prng.New(7)
	var samples []float64
	q := NewQuantile(0.5, 0.99)
	for i := 0; i < 10000; i++ {
		v := rng.Float64() * 1000
		samples = append(samples, v)
		q.Add(v)
	}
	for _, p := range []float64{0.5, 0.99} {
		want := exactQuantile(samples, p)
		got := q.Get(p)
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("p%.0f = %v, exact %v — continuous accuracy regressed", p*100, got, want)
		}
	}
}

// readAt records one read into the recorder at the given virtual time.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64 { return c.now }

// TestPartitionHealLag builds a history where two processes disagree
// until t=150 and agree from t=160: with heal at 100, the lag is 60.
func TestPartitionHealLag(t *testing.T) {
	clock := &fakeClock{}
	rec := history.NewRecorderWithClock(clock)
	read := func(p history.ProcID, at int64, chain ...history.BlockRef) {
		clock.now = at
		op := rec.Invoke(p, history.Label{Kind: history.KindRead})
		rec.Respond(op, history.Label{Kind: history.KindRead, Chain: chain})
	}
	// Divergent while partitioned (and shortly after heal).
	read(0, 50, "g", "a1")
	read(1, 55, "g", "b1")
	read(0, 120, "g", "a1", "a2")
	read(1, 150, "g", "b1", "b2")
	// Converged: 1 adopts 0's chain.
	read(1, 160, "g", "a1", "a2")
	read(0, 170, "g", "a1", "a2", "a3")

	run := Run{PartitionHeal: 100, Ticks: 400, History: rec.Snapshot()}
	lag, ok := PartitionHealLag(run)
	if !ok {
		t.Fatal("heal lag inapplicable on a partitioned run")
	}
	if lag != 60 {
		t.Fatalf("heal lag = %v, want 60 (converged at t=160, healed at 100)", lag)
	}

	// No partition → inapplicable.
	if _, ok := PartitionHealLag(Run{History: rec.Snapshot()}); ok {
		t.Fatal("heal lag applicable without a partition")
	}

	// Run ended before the heal instant → the partition never healed:
	// inapplicable, never a negative lag.
	if _, ok := PartitionHealLag(Run{PartitionHeal: 100, Ticks: 80, History: rec.Snapshot()}); ok {
		t.Fatal("heal lag applicable on a run that ended mid-partition")
	}

	// Never converging → full post-heal window.
	rec2 := history.NewRecorderWithClock(clock)
	read2 := func(p history.ProcID, at int64, chain ...history.BlockRef) {
		clock.now = at
		op := rec2.Invoke(p, history.Label{Kind: history.KindRead})
		rec2.Respond(op, history.Label{Kind: history.KindRead, Chain: chain})
	}
	read2(0, 120, "g", "a1")
	read2(1, 130, "g", "b1")
	lag, ok = PartitionHealLag(Run{PartitionHeal: 100, Ticks: 400, History: rec2.Snapshot()})
	if !ok || lag != 300 {
		t.Fatalf("non-converging lag = %v ok=%v, want 300 (Ticks−Heal)", lag, ok)
	}
}

// TestMsgsDropped pins the dropped-message collector.
func TestMsgsDropped(t *testing.T) {
	if v, ok := MsgsDropped(Run{Dropped: 17}); !ok || v != 17 {
		t.Fatalf("MsgsDropped = %v ok=%v", v, ok)
	}
}
