package metrics

import (
	"math"
	"sort"
)

// Welford is the streaming mean/variance accumulator (Welford's online
// algorithm): numerically stable, O(1) memory, and — because it is a pure
// fold over the input order — deterministic whenever the feed order is.
// The zero value is ready to use.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations folded in.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator; 0 below two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// exactLimit is the sample count up to which Quantile stays exact. Seed
// sweeps are typically tens of observations per configuration, so the
// exact path is the common case; the P² estimators only engage on very
// large sweeps, keeping memory O(1) either way.
const exactLimit = 512

// Quantile estimates a fixed set of quantiles over a stream: exact (it
// buffers and sorts) up to exactLimit observations, then hands the buffer
// to one P² estimator per probe (Jain & Chlamtac 1985) and discards it.
// Like Welford, it is a pure fold over the input order, so identical feed
// order gives identical estimates at any parallelism.
type Quantile struct {
	probes []float64
	buf    []float64
	p2     []*p2Estimator
	// sorted is the cached sorted view of buf on the exact path; Add
	// invalidates it, Get (re)builds it at most once per batch of Adds —
	// `btadt stats` calls Get once per probe per (config, metric), so
	// re-sorting per call would dominate aggregation.
	sorted []float64
}

// NewQuantile returns an estimator for the given probe points (each in
// (0,1)), e.g. NewQuantile(0.5, 0.99).
func NewQuantile(probes ...float64) *Quantile {
	return &Quantile{probes: append([]float64(nil), probes...)}
}

// Add folds one observation into the estimator.
func (q *Quantile) Add(x float64) {
	if q.p2 != nil {
		for _, e := range q.p2 {
			e.add(x)
		}
		return
	}
	q.buf = append(q.buf, x)
	q.sorted = q.sorted[:0]
	if len(q.buf) > exactLimit {
		// Switch to P²: seed each estimator with the buffered samples in
		// arrival order, then drop the buffer.
		q.p2 = make([]*p2Estimator, len(q.probes))
		for i, p := range q.probes {
			q.p2[i] = newP2(p)
			for _, v := range q.buf {
				q.p2[i].add(v)
			}
		}
		q.buf = nil
		q.sorted = nil
	}
}

// Get returns the estimate for probe p, which must be one of the probes
// the estimator was constructed with (0 when empty or unknown — the
// restriction holds on the exact path too, so switching to P² never
// changes which probes are answerable).
func (q *Quantile) Get(p float64) float64 {
	known := false
	for _, probe := range q.probes {
		if probe == p {
			known = true
			break
		}
	}
	if !known {
		return 0
	}
	if q.p2 != nil {
		for i, probe := range q.probes {
			if probe == p {
				return q.p2[i].value()
			}
		}
	}
	if len(q.buf) == 0 {
		return 0
	}
	if len(q.sorted) != len(q.buf) {
		q.sorted = append(q.sorted[:0], q.buf...)
		sort.Float64s(q.sorted)
	}
	s := q.sorted
	// Nearest-rank on the sorted sample: index ⌈p·n⌉-1.
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// p2Estimator is the classic five-marker P² streaming quantile estimator.
type p2Estimator struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64 // marker positions (1-based)
	desired [5]float64
	inc     [5]float64
}

func newP2(p float64) *p2Estimator {
	e := &p2Estimator{p: p}
	e.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

func (e *p2Estimator) add(x float64) {
	if e.n < 5 {
		e.heights[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.heights[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Find the cell k the observation falls into, clamping the extremes.
	// The max comparison is strict: on a tie (x == heights[4]) the
	// observation belongs in the top cell but must not overwrite the max
	// marker, whose height doubles as the running maximum — repeated
	// maxima would otherwise pin marker positions' desired adjustments to
	// the extreme and skew high quantiles on duplicate-heavy streams.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x > e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	e.n++
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.desired {
		e.desired[i] += e.inc[i]
	}
	// Adjust the three interior markers with the piecewise-parabolic
	// interpolation, falling back to linear when P² would cross a
	// neighbour.
	for i := 1; i <= 3; i++ {
		d := e.desired[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *p2Estimator) parabolic(i int, sign float64) float64 {
	return e.heights[i] + sign/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+sign)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-sign)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *p2Estimator) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return e.heights[i] + sign*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

func (e *p2Estimator) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := append([]float64(nil), e.heights[:e.n]...)
		sort.Float64s(s)
		idx := int(math.Ceil(e.p*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	}
	return e.heights[2]
}

// Summary is the canonical aggregate of one metric across a seed sweep:
// the JSON shape AggregateSeeds and `btadt stats` emit. All fields are
// pure folds of the observation order, so two sweeps that feed the same
// values in the same order summarize byte-identically.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Agg couples a Welford accumulator with a p50/p99 quantile sketch — the
// per-(config, metric) state of a streaming seed aggregation.
type Agg struct {
	w Welford
	q *Quantile
}

// NewAgg returns an empty aggregator.
func NewAgg() *Agg { return &Agg{q: NewQuantile(0.5, 0.99)} }

// Add folds one observation.
func (a *Agg) Add(x float64) {
	a.w.Add(x)
	a.q.Add(x)
}

// Count returns the number of observations folded in.
func (a *Agg) Count() int { return a.w.Count() }

// Summary snapshots the aggregate.
func (a *Agg) Summary() Summary {
	return Summary{
		Count: a.w.Count(),
		Mean:  a.w.Mean(),
		Std:   a.w.Std(),
		Min:   a.w.Min(),
		Max:   a.w.Max(),
		P50:   a.q.Get(0.5),
		P99:   a.q.Get(0.99),
	}
}
