package metrics

import (
	"math"
	"sort"
	"testing"

	"blockadt/internal/prng"
)

func TestWelfordMatchesDirectComputation(t *testing.T) {
	src := prng.New(7)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = src.Float64()*100 - 50
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}

	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var m2, mn, mx float64
	mn, mx = xs[0], xs[0]
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	variance := m2 / float64(len(xs)-1)

	if w.Count() != len(xs) {
		t.Fatalf("count %d, want %d", w.Count(), len(xs))
	}
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("variance %v, want %v", w.Variance(), variance)
	}
	if w.Min() != mn || w.Max() != mx {
		t.Fatalf("min/max %v/%v, want %v/%v", w.Min(), w.Max(), mn, mx)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatalf("single observation summary wrong: %+v", w)
	}
}

// TestQuantileExactSmall pins the exact nearest-rank path used below
// exactLimit observations — the common case for seed sweeps.
func TestQuantileExactSmall(t *testing.T) {
	q := NewQuantile(0.5, 0.99)
	for _, x := range []float64{50, 10, 40, 20, 30} {
		q.Add(x)
	}
	if got := q.Get(0.5); got != 30 {
		t.Fatalf("p50 = %v, want 30", got)
	}
	if got := q.Get(0.99); got != 50 {
		t.Fatalf("p99 = %v, want 50", got)
	}
	if got := q.Get(0.25); got != 0 {
		t.Fatalf("unknown probe must return 0, got %v", got)
	}
}

// TestQuantileCachedSortMatchesFresh pins the sorted-view cache: a Get
// interleaved with Adds (invalidating and rebuilding the cache each time)
// must return exactly what a freshly built estimator over the same prefix
// returns, for every prefix and probe. This is the before/after guarantee
// of the caching change — Get is still a pure function of the Adds so far.
func TestQuantileCachedSortMatchesFresh(t *testing.T) {
	src := prng.New(42)
	probes := []float64{0.5, 0.9, 0.99}
	q := NewQuantile(probes...)
	var xs []float64
	for i := 0; i < 200; i++ {
		x := src.Float64() * 100
		xs = append(xs, x)
		q.Add(x)
		for _, p := range probes {
			fresh := NewQuantile(probes...)
			for _, v := range xs {
				fresh.Add(v)
			}
			if got, want := q.Get(p), fresh.Get(p); got != want {
				t.Fatalf("after %d adds, cached Get(%v) = %v, fresh = %v", i+1, p, got, want)
			}
		}
	}
}

// TestQuantileP2Engages feeds past exactLimit and checks the P²
// estimates track the true quantiles of a uniform stream.
func TestQuantileP2Engages(t *testing.T) {
	const n = 5000
	src := prng.New(99)
	q := NewQuantile(0.5, 0.99)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64() * 1000
		q.Add(xs[i])
	}
	sort.Float64s(xs)
	trueP50, trueP99 := xs[n/2], xs[n*99/100]
	if got := q.Get(0.5); math.Abs(got-trueP50) > 50 {
		t.Fatalf("p50 = %v, true %v — P² estimate off", got, trueP50)
	}
	if got := q.Get(0.99); math.Abs(got-trueP99) > 50 {
		t.Fatalf("p99 = %v, true %v — P² estimate off", got, trueP99)
	}
}

// TestAggDeterministicFold: the aggregation contract the sweep relies on
// — identical observations in identical order summarize identically.
func TestAggDeterministicFold(t *testing.T) {
	feed := func() Summary {
		a := NewAgg()
		src := prng.New(3)
		for i := 0; i < 700; i++ { // past exactLimit: covers the P² switch
			a.Add(src.Float64() * 10)
		}
		return a.Summary()
	}
	first, second := feed(), feed()
	if first != second {
		t.Fatalf("same feed, different summaries:\n%+v\n%+v", first, second)
	}
	if first.Count != 700 {
		t.Fatalf("count %d, want 700", first.Count)
	}
}
