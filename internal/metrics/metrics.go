// Package metrics is the measurement layer of the reproduction: named
// collectors that turn one simulated run into numbers (fork rate, chain
// quality, growth rate, finality depth, message cost, rounds to
// agreement), plus the streaming aggregators (Welford mean/variance,
// exact-or-P² quantiles) that fold multi-seed sweeps into summaries in
// O(1) memory.
//
// Collectors are pure functions of a Run snapshot and aggregators are
// pure folds of their input order, so every number the subsystem produces
// is a deterministic function of (matrix, root seed) — the same contract
// the sweep engine makes for its scenario results, extended to the
// statistics derived from them (docs/metrics.md).
package metrics

import "blockadt/internal/history"

// Run is the per-run snapshot collectors measure: the simulator counters
// of one scenario plus the recorded history for collectors that derive
// their value from the reads (finality depth). The façade assembles it
// from a simulation result; collectors must treat it as read-only.
type Run struct {
	// N is the process count; TargetBlocks the requested chain length.
	N, TargetBlocks int
	// Blocks / Forks summarize the best replica's tree.
	Blocks, Forks int
	// Ticks is the virtual time the run consumed.
	Ticks int64
	// Delivered / Dropped / Bytes count network messages and their
	// estimated wire size.
	Delivered, Dropped int
	Bytes              int64
	// FairnessTVD is the realized-vs-entitled total variation distance
	// (chain quality against this run's merit layout).
	FairnessTVD float64
	// Adversarial marks adversary runs; AdversaryShare / AdversaryMerit
	// are the adversary's realized vs entitled main-chain proportions.
	Adversarial                    bool
	AdversaryShare, AdversaryMerit float64
	// PartitionHeal is the virtual time the run's network partition
	// healed at (0: no partition — the heal-lag metric is inapplicable).
	PartitionHeal int64
	// History is the recorded concurrent history.
	History *history.History
}

// Collector computes one named measurement from a run snapshot. The
// boolean reports applicability: an adversary-only metric returns false
// on honest runs and the value is skipped, not recorded as zero.
type Collector func(Run) (float64, bool)

// Built-in collector names, exported so callers can request subsets
// without spelling strings.
const (
	ForkRateName          = "fork_rate"
	ChainQualityName      = "chain_quality"
	GrowthRateName        = "growth_rate"
	FinalityDepthName     = "finality_depth"
	FinalityLatencyName   = "finality_latency"
	MsgsName              = "msgs_delivered"
	MsgBytesName          = "msg_bytes"
	RoundsToAgreementName = "rounds_to_agreement"
	AdversaryShareName    = "adversary_share"
	FairnessTVDName       = "fairness_tvd"
	MsgsDroppedName       = "msgs_dropped"
	PartitionHealLagName  = "partition_heal_lag"
)

// ForkRate is the number of fork points per committed block — 0 for the
// consensus systems (one chain by construction), positive for PoW races.
func ForkRate(r Run) (float64, bool) {
	if r.Blocks == 0 {
		return 0, false
	}
	return float64(r.Forks) / float64(r.Blocks), true
}

// ChainQuality is 1 − FairnessTVD ∈ [0,1]: 1 when every process's
// main-chain share matches its merit entitlement, degrading toward 0 as
// authorship skews (the chain-quality loss selfish mining inflicts).
func ChainQuality(r Run) (float64, bool) {
	return 1 - r.FairnessTVD, true
}

// GrowthRate is committed blocks per virtual tick — the paper's chain
// growth, normalized by the simulator clock.
func GrowthRate(r Run) (float64, bool) {
	if r.Ticks == 0 {
		return 0, false
	}
	return float64(r.Blocks) / float64(r.Ticks), true
}

// FinalityDepth is MaxReorg+1: the smallest depth-d finality gadget that
// would have been safe on this run (1 for the SC systems, deeper under
// PoW forks).
func FinalityDepth(r Run) (float64, bool) {
	if r.History == nil {
		return 0, false
	}
	return float64(MaxReorg(r.History) + 1), true
}

// FinalityLatency is the virtual time for a block to sink to the safe
// depth: FinalityDepth × ticks-per-committed-block.
func FinalityLatency(r Run) (float64, bool) {
	d, ok := FinalityDepth(r)
	if !ok || r.Blocks == 0 {
		return 0, false
	}
	return d * float64(r.Ticks) / float64(r.Blocks), true
}

// Msgs is the delivered message count.
func Msgs(r Run) (float64, bool) { return float64(r.Delivered), true }

// MsgBytes is the estimated wire bytes sent (netsim's Bytes counter).
func MsgBytes(r Run) (float64, bool) { return float64(r.Bytes), true }

// RoundsToAgreement is virtual ticks per committed block — for the
// round-based consensus systems, proportional to rounds per decision.
func RoundsToAgreement(r Run) (float64, bool) {
	if r.Blocks == 0 {
		return 0, false
	}
	return float64(r.Ticks) / float64(r.Blocks), true
}

// AdversaryShare is the adversary's realized main-chain proportion;
// applicable to adversarial runs only.
func AdversaryShare(r Run) (float64, bool) {
	return r.AdversaryShare, r.Adversarial
}

// FairnessTVD is the realized-vs-entitled total variation distance the
// run was analyzed with.
func FairnessTVD(r Run) (float64, bool) { return r.FairnessTVD, true }

// MsgsDropped is the number of messages the link model destroyed (lossy
// drops, drop-mode partition cuts) — the hypothesis counter of the
// Theorem 4.7 necessity experiments.
func MsgsDropped(r Run) (float64, bool) { return float64(r.Dropped), true }

// PartitionHealLag measures reconvergence after a healed partition: the
// virtual time from the heal instant to the first read at which every
// process's latest chain is pairwise prefix-compatible again (one chain a
// prefix of the other — the forks of the partition era resolved). A run
// that never reconverges reports the full post-heal window. Inapplicable
// when the run had no partition, or when it ended before the heal
// instant — a partition that never healed has no heal lag.
func PartitionHealLag(r Run) (float64, bool) {
	if r.PartitionHeal <= 0 || r.History == nil || r.Ticks <= r.PartitionHeal {
		return 0, false
	}
	latest := map[history.ProcID]history.Chain{}
	sawAll := func() bool {
		if len(latest) < 2 {
			return false
		}
		chains := make([]history.Chain, 0, len(latest))
		for _, c := range latest {
			chains = append(chains, c)
		}
		for i := range chains {
			for j := i + 1; j < len(chains); j++ {
				cp := chains[i].CommonPrefix(chains[j])
				if len(cp) != len(chains[i]) && len(cp) != len(chains[j]) {
					return false
				}
			}
		}
		return true
	}
	for _, rd := range r.History.Reads() {
		latest[rd.Op.Proc] = rd.Chain
		if rd.Op.RspTime >= r.PartitionHeal && sawAll() {
			lag := rd.Op.RspTime - r.PartitionHeal
			if lag < 0 {
				lag = 0
			}
			return float64(lag), true
		}
	}
	return float64(r.Ticks - r.PartitionHeal), true
}

// MaxReorg scans each process's read sequence and returns the deepest
// observed rollback: the largest number of blocks a process saw leave its
// selected chain between two consecutive reads.
func MaxReorg(h *history.History) int {
	last := map[history.ProcID]history.Chain{}
	deepest := 0
	for _, r := range h.Reads() {
		prev, ok := last[r.Op.Proc]
		if ok {
			cp := prev.CommonPrefix(r.Chain)
			if d := len(prev) - len(cp); d > deepest {
				deepest = d
			}
		}
		last[r.Op.Proc] = r.Chain
	}
	return deepest
}

// TVD is the total variation distance ½·Σ|observedᵢ−expectedᵢ| between
// two distributions given pointwise (callers align and normalize the
// slices; a missing entry is 0).
func TVD(observed, expected []float64) float64 {
	n := len(observed)
	if len(expected) > n {
		n = len(expected)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var o, e float64
		if i < len(observed) {
			o = observed[i]
		}
		if i < len(expected) {
			e = expected[i]
		}
		d := o - e
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 2
}

// ChiSquare is Σ (observedᵢ−expectedᵢ)²/expectedᵢ over entries with
// positive expectation, the goodness-of-fit statistic of the fairness
// reports (expected counts, not proportions).
func ChiSquare(observed, expected []float64) float64 {
	n := len(observed)
	if len(expected) > n {
		n = len(expected)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var o, e float64
		if i < len(observed) {
			o = observed[i]
		}
		if i < len(expected) {
			e = expected[i]
		}
		if e <= 0 {
			continue
		}
		d := o - e
		sum += d * d / e
	}
	return sum
}
