package metrics

import (
	"math"
	"testing"

	"blockadt/internal/history"
)

// readsHistory records one process reading the given chains in order.
func readsHistory(chains ...history.Chain) *history.History {
	rec := history.NewRecorder()
	for _, c := range chains {
		op := rec.Invoke(0, history.Label{Kind: history.KindRead})
		rec.Respond(op, history.Label{Kind: history.KindRead, Chain: c})
	}
	return rec.Snapshot()
}

func TestMaxReorgDetectsRollback(t *testing.T) {
	h := readsHistory(
		history.Chain{"b0", "a1", "a2", "a3"},
		history.Chain{"b0", "a1", "c2"}, // a2,a3 rolled back: depth 2
		history.Chain{"b0", "a1", "c2", "c3"},
	)
	if got := MaxReorg(h); got != 2 {
		t.Fatalf("MaxReorg = %d, want 2", got)
	}
	if got := MaxReorg(readsHistory(history.Chain{"b0"}, history.Chain{"b0", "a1"})); got != 0 {
		t.Fatalf("monotone growth reorg = %d, want 0", got)
	}
}

func TestCollectorsComputeAndGate(t *testing.T) {
	r := Run{
		N: 8, TargetBlocks: 30,
		Blocks: 30, Forks: 6, Ticks: 600,
		Delivered: 4000, Dropped: 2, Bytes: 123456,
		FairnessTVD: 0.2,
		Adversarial: true, AdversaryShare: 0.45, AdversaryMerit: 0.34,
		History: readsHistory(history.Chain{"b0", "a1"}, history.Chain{"b0", "c1"}),
	}
	cases := []struct {
		name string
		c    Collector
		want float64
	}{
		{ForkRateName, ForkRate, 0.2},
		{ChainQualityName, ChainQuality, 0.8},
		{GrowthRateName, GrowthRate, 0.05},
		{FinalityDepthName, FinalityDepth, 2},
		{FinalityLatencyName, FinalityLatency, 40},
		{MsgsName, Msgs, 4000},
		{MsgBytesName, MsgBytes, 123456},
		{RoundsToAgreementName, RoundsToAgreement, 20},
		{AdversaryShareName, AdversaryShare, 0.45},
		{FairnessTVDName, FairnessTVD, 0.2},
	}
	for _, c := range cases {
		got, ok := c.c(r)
		if !ok {
			t.Errorf("%s inapplicable on a populated run", c.name)
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}

	// Gating: adversary share is honest-run inapplicable; ratios refuse
	// division by zero.
	if _, ok := AdversaryShare(Run{Adversarial: false}); ok {
		t.Error("AdversaryShare applicable on an honest run")
	}
	if _, ok := ForkRate(Run{Blocks: 0}); ok {
		t.Error("ForkRate applicable with zero blocks")
	}
	if _, ok := GrowthRate(Run{Ticks: 0}); ok {
		t.Error("GrowthRate applicable with zero ticks")
	}
	if _, ok := FinalityDepth(Run{}); ok {
		t.Error("FinalityDepth applicable without a history")
	}
}

func TestTVDAndChiSquare(t *testing.T) {
	if got := TVD([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Fatalf("TVD of identical distributions = %v", got)
	}
	if got := TVD([]float64{1, 0}, []float64{0, 1}); got != 1 {
		t.Fatalf("TVD of disjoint distributions = %v, want 1", got)
	}
	// Ragged lengths: the shorter side is zero-extended.
	if got := TVD([]float64{0.6, 0.4}, []float64{0.6}); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("ragged TVD = %v, want 0.2", got)
	}
	if got := ChiSquare([]float64{12, 8}, []float64{10, 10}); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("chi-square = %v, want 0.8", got)
	}
	// Zero expectation contributes nothing instead of dividing by zero.
	if got := ChiSquare([]float64{5}, []float64{0}); got != 0 {
		t.Fatalf("chi-square with zero expectation = %v", got)
	}
}
