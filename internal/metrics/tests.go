package metrics

import "math"

// This file provides the two-sample significance tests behind the
// hypothesis harness (pkg/blockadt/hypothesis): an exact paired sign test
// and Welch's unequal-variance t-test. Both are closed-form floating-point
// computations over Welford-style summaries — pure functions of their
// inputs, no randomization, no external dependencies — so a verdict
// computed from a deterministic sweep is itself deterministic.

// SignTest returns the two-sided p-value of the exact paired sign test:
// under H0 (no systematic direction) the pos positive differences among
// n = pos+neg non-tied pairs follow Binomial(n, 1/2). Ties are excluded
// before calling (the standard treatment); n == 0 returns 1 — no
// informative pairs, no evidence either way.
func SignTest(pos, neg int) float64 {
	n := pos + neg
	if n == 0 {
		return 1
	}
	k := pos
	if neg < k {
		k = neg
	}
	// Two-sided: double the one-sided tail P(X <= k). The doubling can
	// exceed 1 on balanced counts (k = n/2), so clamp.
	tail := 0.0
	for i := 0; i <= k; i++ {
		tail += math.Exp(lchoose(n, i) - float64(n)*math.Ln2)
	}
	p := 2 * tail
	if p > 1 {
		p = 1
	}
	return p
}

// lchoose is log C(n, k) via log-gamma, exact enough for the pair counts
// a seed sweep produces (tens to thousands).
func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// WelchResult is the outcome of Welch's unequal-variance two-sample
// t-test.
type WelchResult struct {
	// T is the test statistic (mean(a) − mean(b) over the pooled standard
	// error) and DF the Welch–Satterthwaite degrees of freedom.
	T, DF float64
	// P is the two-sided p-value from the Student-t distribution.
	P float64
}

// WelchT runs Welch's t-test on two Welford summaries. It reports
// ok=false when the test is undefined: fewer than two observations on
// either side, or both sample variances exactly zero (two deterministic
// constants — either identical, which the caller sees as a zero mean
// difference, or trivially different, which needs no test).
func WelchT(a, b *Welford) (WelchResult, bool) {
	if a.Count() < 2 || b.Count() < 2 {
		return WelchResult{}, false
	}
	va, vb := a.Variance(), b.Variance()
	if va == 0 && vb == 0 {
		return WelchResult{}, false
	}
	na, nb := float64(a.Count()), float64(b.Count())
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	t := (a.Mean() - b.Mean()) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	return WelchResult{T: t, DF: df, P: StudentTTwoSided(t, df)}, true
}

// StudentTTwoSided returns P(|T| >= |t|) for a Student-t variable with df
// degrees of freedom, via the regularized incomplete beta identity
// P = I_{df/(df+t²)}(df/2, 1/2).
func StudentTTwoSided(t, df float64) float64 {
	if df <= 0 {
		return 1
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// evaluated with the Lentz continued fraction (Numerical Recipes betacf),
// using the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) to stay in the
// fast-converging region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	la, _ := math.Lgamma(a + b)
	lb, _ := math.Lgamma(a)
	lc, _ := math.Lgamma(b)
	front := math.Exp(la - lb - lc + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf is the continued-fraction kernel of the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		tiny    = 1e-30
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
