package metrics

import (
	"math"
	"testing"
)

func TestSignTestExactValues(t *testing.T) {
	cases := []struct {
		pos, neg int
		want     float64
	}{
		// All eight pairs one direction: p = 2·(1/2)^8.
		{8, 0, 2.0 / 256},
		{0, 8, 2.0 / 256},
		// One dissenter among eight: p = 2·(C(8,0)+C(8,1))/2^8 = 18/256.
		{7, 1, 18.0 / 256},
		// Balanced: two-sided tail doubles past 1 and clamps.
		{4, 4, 1},
		{1, 1, 1},
		// No informative pairs.
		{0, 0, 1},
		// Six one-directional pairs clear 0.05, five do not.
		{6, 0, 2.0 / 64},
		{5, 0, 2.0 / 32},
	}
	for _, c := range cases {
		got := SignTest(c.pos, c.neg)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SignTest(%d, %d) = %v, want %v", c.pos, c.neg, got, c.want)
		}
	}
}

func TestSignTestSymmetry(t *testing.T) {
	for pos := 0; pos <= 20; pos++ {
		for neg := 0; neg <= 20; neg++ {
			a, b := SignTest(pos, neg), SignTest(neg, pos)
			if a != b {
				t.Fatalf("SignTest(%d,%d)=%v != SignTest(%d,%d)=%v", pos, neg, a, neg, pos, b)
			}
			if a < 0 || a > 1 {
				t.Fatalf("SignTest(%d,%d)=%v out of [0,1]", pos, neg, a)
			}
		}
	}
}

func TestStudentTTwoSidedReferencePoints(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		t, df, want, tol float64
	}{
		{0, 10, 1, 1e-12},
		// t distribution with df=1 is Cauchy: P(|T|>=1) = 1/2.
		{1, 1, 0.5, 1e-9},
		// Critical values: P(|T| >= 2.228) = 0.05 at df=10.
		{2.228, 10, 0.05, 1e-3},
		// P(|T| >= 1.96) -> 0.05 as df -> inf; at df=1000 it is ~0.0502.
		{1.96, 1000, 0.0502, 5e-4},
		{12.706, 1, 0.05, 1e-4},
	}
	for _, c := range cases {
		got := StudentTTwoSided(c.t, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("StudentTTwoSided(%v, %v) = %v, want %v ± %v", c.t, c.df, got, c.want, c.tol)
		}
	}
	// Symmetry in t.
	if a, b := StudentTTwoSided(2.5, 7), StudentTTwoSided(-2.5, 7); math.Abs(a-b) > 1e-14 {
		t.Errorf("two-sided p not symmetric: %v vs %v", a, b)
	}
}

func TestWelchTKnownExample(t *testing.T) {
	// Hand-computable equal-size example: a = {1..5}, b = {2..6}. Both
	// variances are 2.5, so se = sqrt(2.5/5 + 2.5/5) = 1, t = -1, and the
	// Welch–Satterthwaite df reduces to 1 / (2·(0.5²/4)) = 8. The
	// two-sided p at t=1, df=8 is 0.346594 (standard t table).
	var a, b Welford
	for i := 1; i <= 5; i++ {
		a.Add(float64(i))
		b.Add(float64(i) + 1)
	}
	res, ok := WelchT(&a, &b)
	if !ok {
		t.Fatal("test unexpectedly undefined")
	}
	if math.Abs(res.T-(-1)) > 1e-12 {
		t.Errorf("t = %v, want -1", res.T)
	}
	if math.Abs(res.DF-8) > 1e-12 {
		t.Errorf("df = %v, want 8", res.DF)
	}
	if math.Abs(res.P-0.346594) > 1e-4 {
		t.Errorf("p = %v, want about 0.346594", res.P)
	}
	// The df=8 critical value: P(|T| >= 2.306) = 0.05.
	if p := StudentTTwoSided(2.306, 8); math.Abs(p-0.05) > 1e-3 {
		t.Errorf("p at the df=8 critical value = %v, want 0.05", p)
	}
}

func TestWelchTUndefinedCases(t *testing.T) {
	var one, two, flatA, flatB Welford
	one.Add(1)
	two.Add(1)
	two.Add(2)
	if _, ok := WelchT(&one, &two); ok {
		t.Error("single observation should refuse the test")
	}
	for i := 0; i < 4; i++ {
		flatA.Add(3)
		flatB.Add(5)
	}
	if _, ok := WelchT(&flatA, &flatB); ok {
		t.Error("two zero-variance samples should refuse the test")
	}
	// One side flat is fine: the other side's variance carries the test.
	var noisy Welford
	for i := 0; i < 4; i++ {
		noisy.Add(float64(i))
	}
	if _, ok := WelchT(&flatA, &noisy); !ok {
		t.Error("one-sided zero variance should still run")
	}
}
