package netsim

import (
	"testing"

	"blockadt/internal/history"
)

// TestBroadcastAllocs pins the allocation-free event core: once the queue's
// backing array and the batch-planning scratch have warmed up, a broadcast
// fan-out plus its delivery drain must not allocate at all — events are
// values in a reused heap, and Synchronous plans the whole fan-out through
// the batched path. AllocsPerRun's warm-up call grows the buffers; the
// measured runs must then stay on the steady state.
func TestBroadcastAllocs(t *testing.T) {
	const n = 64
	s := New(Synchronous{Delta: 8}, 1)
	for i := 0; i < n; i++ {
		s.Register(history.ProcID(i), HandlerFuncs{})
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Broadcast(0, Message{Kind: "ping"})
		s.Run(s.Now() + 16)
	})
	if allocs > 0 {
		t.Fatalf("Broadcast+Run allocated %.1f objects per fan-out, want 0", allocs)
	}
}
