package netsim

import (
	"blockadt/internal/history"
)

// Gossiper implements the Light Reliable Communication abstraction
// (Definition 4.4) as a protocol rather than a simulator guarantee: every
// process relays the first copy of each message it receives to every peer.
// This is the flooding dissemination the paper attributes to Bitcoin and
// Ethereum ("valid blocks are flooded in the system", Sections 5.1–5.2).
//
// Relaying buys the Agreement property under sender failure: if any
// correct process receives m, its relays deliver m to every correct
// process even when the original sender crashed mid-broadcast — the case a
// direct broadcast cannot cover. The gossip tests demonstrate exactly that
// separation.
type Gossiper struct {
	id history.ProcID
	// seen de-duplicates by message identity.
	seen map[gossipKey]bool
	// Deliver is invoked exactly once per distinct message.
	Deliver func(s *Sim, m Message)
	// Topo restricts the relay fan-out to the topology's neighbor set;
	// nil relays to every registered process (the complete graph). Set
	// it before the first publish or relay: membership is static once a
	// simulation starts, so the neighbor set is computed once and cached.
	Topo Topology
	// peers caches Topo's neighbor set for this process.
	peers []history.ProcID
}

// gossipKey identifies a message independent of its relay path.
type gossipKey struct {
	kind   string
	parent history.BlockRef
	block  history.BlockRef
	origin history.ProcID
	round  int
}

func keyOf(m Message) gossipKey {
	return gossipKey{kind: m.Kind, parent: m.Parent, block: m.Block, origin: m.Origin, round: m.Round}
}

// GossipKind marks messages carried by the gossip layer.
const GossipKind = "gossip"

// NewGossiper returns a gossiper for process id.
func NewGossiper(id history.ProcID, deliver func(s *Sim, m Message)) *Gossiper {
	return &Gossiper{id: id, seen: map[gossipKey]bool{}, Deliver: deliver}
}

// Publish originates a message: it is delivered locally (LRC Validity) and
// sent to all peers. Unlike Sim.Broadcast, the copies are individual sends
// the caller's process could crash between — the relays, not the
// primitive, provide Agreement.
func (g *Gossiper) Publish(s *Sim, m Message) {
	m.From = g.id
	k := keyOf(m)
	if g.seen[k] {
		return
	}
	g.seen[k] = true
	if g.Deliver != nil {
		g.Deliver(s, m)
	}
	g.relay(s, m)
}

// PublishPartial originates a message but sends it only to the given peers
// before "crashing" — the failure-injection entry point of the gossip
// tests.
func (g *Gossiper) PublishPartial(s *Sim, m Message, peers []history.ProcID) {
	m.From = g.id
	g.seen[keyOf(m)] = true
	for _, p := range peers {
		cp := m
		cp.To = p
		s.Send(cp)
	}
}

// OnMessage handles a delivery: first copies are delivered and relayed,
// duplicates are dropped. It reports whether the message was fresh.
func (g *Gossiper) OnMessage(s *Sim, m Message) bool {
	k := keyOf(m)
	if g.seen[k] {
		return false
	}
	g.seen[k] = true
	if g.Deliver != nil {
		g.Deliver(s, m)
	}
	g.relay(s, m)
	return true
}

func (g *Gossiper) relay(s *Sim, m Message) {
	for _, p := range g.relayPeers(s) {
		if p == g.id {
			continue
		}
		cp := m
		cp.From = g.id
		cp.To = p
		s.Send(cp)
	}
}

// relayPeers resolves the relay fan-out: the topology's neighbor set
// when Topo is set, every registered process otherwise.
func (g *Gossiper) relayPeers(s *Sim) []history.ProcID {
	if g.Topo == nil {
		return s.Procs()
	}
	if g.peers == nil {
		g.peers = g.Topo.Peers(g.id, s.Procs())
	}
	return g.peers
}

// Seen reports whether the gossiper has already delivered the message.
func (g *Gossiper) Seen(m Message) bool { return g.seen[keyOf(m)] }
