package netsim

import (
	"testing"

	"blockadt/internal/history"
)

// gossipNet wires n gossipers, each recording its deliveries.
func gossipNet(n int, links LinkModel, seed uint64) (*Sim, []*Gossiper, []int) {
	s := New(links, seed)
	gs := make([]*Gossiper, n)
	delivered := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		g := NewGossiper(history.ProcID(i), func(*Sim, Message) { delivered[i]++ })
		gs[i] = g
		s.Register(history.ProcID(i), HandlerFuncs{
			Message: func(sim *Sim, m Message) { g.OnMessage(sim, m) },
		})
	}
	return s, gs, delivered
}

func TestGossipDeliversToAll(t *testing.T) {
	s, gs, delivered := gossipNet(6, Synchronous{Delta: 4}, 1)
	gs[0].Publish(s, Message{Kind: GossipKind, Block: "b1", Origin: 0})
	s.Run(500)
	for i, d := range delivered {
		if d != 1 {
			t.Fatalf("process %d delivered %d times, want exactly 1", i, d)
		}
	}
}

func TestGossipDeduplicates(t *testing.T) {
	s, gs, delivered := gossipNet(4, Synchronous{Delta: 4}, 2)
	m := Message{Kind: GossipKind, Block: "b1", Origin: 0}
	gs[0].Publish(s, m)
	gs[0].Publish(s, m) // duplicate origination
	s.Run(500)
	for i, d := range delivered {
		if d != 1 {
			t.Fatalf("process %d delivered %d times", i, d)
		}
	}
	if !gs[1].Seen(m) {
		t.Fatal("Seen() after delivery")
	}
}

func TestGossipDistinctMessagesBothDeliver(t *testing.T) {
	s, gs, delivered := gossipNet(4, Synchronous{Delta: 4}, 3)
	gs[0].Publish(s, Message{Kind: GossipKind, Block: "b1", Origin: 0})
	gs[1].Publish(s, Message{Kind: GossipKind, Block: "b2", Origin: 1})
	s.Run(500)
	for i, d := range delivered {
		if d != 2 {
			t.Fatalf("process %d delivered %d, want 2", i, d)
		}
	}
}

// TestGossipAgreementUnderSenderCrash: the sender reaches only one peer
// before crashing; the relay closes the gap and every correct process
// still delivers — the Agreement property a direct broadcast loses.
func TestGossipAgreementUnderSenderCrash(t *testing.T) {
	s, gs, delivered := gossipNet(6, Synchronous{Delta: 4}, 4)
	m := Message{Kind: GossipKind, Block: "b1", Origin: 0}
	gs[0].PublishPartial(s, m, []history.ProcID{3}) // only p3 hears it
	s.Crash(0)
	s.Run(1000)
	for i := 1; i < 6; i++ {
		if delivered[i] != 1 {
			t.Fatalf("correct process %d delivered %d times, want 1 (relay must cover the crash)", i, delivered[i])
		}
	}
}

// TestDirectSendWithoutRelayViolatesAgreement: the control experiment —
// the same partial send with relaying disabled leaves the other processes
// without the message, which is exactly the LRC-violating scenario of the
// necessity theorems.
func TestDirectSendWithoutRelayViolatesAgreement(t *testing.T) {
	s := New(Synchronous{Delta: 4}, 5)
	delivered := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Register(history.ProcID(i), HandlerFuncs{
			Message: func(*Sim, Message) { delivered[i]++ }, // no relay
		})
	}
	s.Send(Message{From: 0, To: 2, Kind: GossipKind, Block: "b1", Origin: 0})
	s.Crash(0)
	s.Run(1000)
	if delivered[2] != 1 {
		t.Fatalf("p2 delivered %d", delivered[2])
	}
	if delivered[1] != 0 || delivered[3] != 0 {
		t.Fatal("agreement held without relay — control experiment broken")
	}
}

// TestGossipUnderAsynchrony: relaying still terminates and delivers to all
// over asynchronous links.
func TestGossipUnderAsynchrony(t *testing.T) {
	s, gs, delivered := gossipNet(5, Asynchronous{MaxDelay: 50, TailProb: 0.2}, 6)
	gs[2].Publish(s, Message{Kind: GossipKind, Block: "x", Origin: 2})
	s.Run(1 << 16)
	for i, d := range delivered {
		if d != 1 {
			t.Fatalf("process %d delivered %d", i, d)
		}
	}
}

// TestGossipMessageComplexity: n processes each relay once, so the wire
// carries at most n·(n-1) copies per message — flooding, not broadcast
// storms (dedup bounds the relays).
func TestGossipMessageComplexity(t *testing.T) {
	const n = 8
	s, gs, _ := gossipNet(n, Synchronous{Delta: 2}, 7)
	gs[0].Publish(s, Message{Kind: GossipKind, Block: "b", Origin: 0})
	s.Run(2000)
	maxCopies := n * (n - 1)
	if s.Delivered > maxCopies {
		t.Fatalf("delivered %d copies > bound %d", s.Delivered, maxCopies)
	}
}
