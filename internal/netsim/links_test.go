package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// TestWeaklySynchronousPreGSTDeliveryBound is the regression test for the
// DLS partial-synchrony contract: a message sent at any time t < GST —
// including the worst case GST−1 — must be delivered by GST+Delta, even
// when the asynchronous pre-GST draw (up to PreMax = 8δ by default) would
// overshoot the bound.
func TestWeaklySynchronousPreGSTDeliveryBound(t *testing.T) {
	const gst, delta = 100, 8
	l := WeaklySynchronous{GST: gst, Delta: delta}
	rng := prng.New(7)
	for _, now := range []int64{0, 42, gst - delta, gst - 2, gst - 1} {
		for i := 0; i < 500; i++ {
			d, drop := l.Plan(rng, Message{}, now)
			if drop {
				t.Fatal("weakly synchronous links never drop")
			}
			if d < 1 {
				t.Fatalf("delay %d < 1 at t=%d", d, now)
			}
			if now+d > gst+delta {
				t.Fatalf("message sent at t=%d delivered at %d, after the GST+δ=%d bound", now, now+d, gst+delta)
			}
		}
	}
}

// TestWeaklySynchronousGSTMinusOneSim drives the bound end to end: a
// burst sent at GST−1 through a Sim is fully delivered by GST+Delta.
func TestWeaklySynchronousGSTMinusOneSim(t *testing.T) {
	const gst, delta = 200, 8
	s := New(WeaklySynchronous{GST: gst, Delta: delta}, 11)
	c := &collector{}
	s.Register(1, c)
	s.Register(0, HandlerFuncs{Timer: func(s *Sim, tag string) {
		for i := 0; i < 100; i++ {
			s.Send(Message{From: 0, To: 1})
		}
	}})
	s.TimerAt(0, gst-1, "burst")
	s.Run(1 << 16)
	if len(c.got) != 100 {
		t.Fatalf("delivered = %d, want 100", len(c.got))
	}
	for _, at := range c.at {
		if at > gst+delta {
			t.Fatalf("pre-GST send delivered at %d, after the GST+δ=%d bound", at, gst+delta)
		}
	}
}

// delivery is one row of a recorded delivery schedule.
type delivery struct {
	At       int64
	From, To history.ProcID
	Block    history.BlockRef
}

// scheduleUnder drives a fixed broadcast workload (every process
// broadcasts a block per period) over the given link model and returns
// the complete delivery schedule.
func scheduleUnder(links LinkModel, seed uint64, procs int, until int64) []delivery {
	s := New(links, seed)
	var sched []delivery
	for i := 0; i < procs; i++ {
		id := history.ProcID(i)
		count := 0
		s.Register(id, HandlerFuncs{
			Message: func(sim *Sim, m Message) {
				sched = append(sched, delivery{At: sim.Now(), From: m.From, To: m.To, Block: m.Block})
			},
			Timer: func(sim *Sim, tag string) {
				count++
				sim.Broadcast(id, Message{Kind: UpdateMsg, Block: history.BlockRef(fmt.Sprintf("b%d-%d", id, count))})
				sim.TimerAt(id, sim.Now()+7, "tick")
			},
		})
		s.TimerAt(id, 1+int64(i), "tick")
	}
	s.Run(until)
	return sched
}

// TestLinkModelsDeterministicSchedule is the property the whole sweep
// contract rests on: identical (topology, seed) produces an identical
// delivery schedule for every link model, including the adversity models
// this layer adds.
func TestLinkModelsDeterministicSchedule(t *testing.T) {
	models := []LinkModel{
		Synchronous{Delta: 8},
		Asynchronous{MaxDelay: 16, TailProb: 0.1},
		WeaklySynchronous{GST: 64, Delta: 8},
		LossyRate{Inner: Synchronous{Delta: 8}, P: 0.2},
		PartitionModel{Inner: Synchronous{Delta: 8}, Split: 2, Start: 32, Heal: 96, Defer: true},
		PartitionModel{Inner: Synchronous{Delta: 8}, Split: 2, Start: 32, Heal: 96},
		Jitter{Inner: Synchronous{Delta: 8}, TailProb: 0.15},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			a := scheduleUnder(m, 42, 4, 400)
			b := scheduleUnder(m, 42, 4, 400)
			if len(a) == 0 {
				t.Fatal("empty schedule — workload too tame")
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("identical (topology, seed) produced different delivery schedules")
			}
			c := scheduleUnder(m, 43, 4, 400)
			if m.Name() == (Synchronous{Delta: 8}).Name() {
				return // delta=min range still randomizes, but don't require it
			}
			_ = c
		})
	}
}

// TestPartitionModelCutAndReconvergence pins the partition contract: zero
// cross-cut deliveries inside [Start, Heal), and — in defer mode — full
// reconvergence after healing without any anti-entropy resync, because
// the deferred messages arrive once the cut closes.
func TestPartitionModelCutAndReconvergence(t *testing.T) {
	const start, heal = 40, 160
	links := PartitionModel{Inner: Synchronous{Delta: 4}, Split: 2, Start: start, Heal: heal, Defer: true}
	s := New(links, 9)
	reps := map[history.ProcID]*Replica{}
	crossCut := func(a, b history.ProcID) bool { return (a < 2) != (b < 2) }
	violations := 0
	for i := 0; i < 4; i++ {
		id := history.ProcID(i)
		rep := NewReplica(id, blocktree.LongestChain{}, s.Recorder())
		reps[id] = rep
		creator := i == 0 || i == 2
		count := 0
		s.Register(id, HandlerFuncs{
			Message: func(sim *Sim, m Message) {
				if crossCut(m.From, m.To) && sim.Now() >= start && sim.Now() < heal {
					violations++
				}
				rep.OnMessage(sim, m)
			},
			Timer: func(sim *Sim, tag string) {
				if creator && count < 8 {
					parent := rep.Selected().Tip()
					b := blocktree.Block{
						ID:       blocktree.BlockID(fmt.Sprintf("c%d-%02d", id, count)),
						Parent:   parent.ID,
						Proposer: int(id),
						Token:    uint64(100*int(id) + count + 1),
					}
					count++
					rep.CreateAndBroadcast(sim, parent.ID, b)
					sim.TimerAt(id, sim.Now()+12, "create")
				}
			},
		})
		if creator {
			s.TimerAt(id, 1, "create")
		}
	}
	s.Run(600)
	if violations != 0 {
		t.Fatalf("%d cross-cut deliveries inside [start, heal)", violations)
	}
	// Defer mode loses nothing: all 16 blocks reach all 4 replicas.
	want := reps[0].Tree().Size()
	if want != 17 { // genesis + 8 + 8
		t.Fatalf("replica 0 tree size = %d, want 17", want)
	}
	for p, r := range reps {
		if got := r.Tree().Size(); got != want {
			t.Fatalf("replica %d tree size %d ≠ %d — deferred messages lost", p, got, want)
		}
	}
	if s.Dropped != 0 {
		t.Fatalf("defer mode dropped %d messages", s.Dropped)
	}
}

// TestPartitionModelDropLosesCrossCut: drop mode really loses the
// cross-cut traffic (the Theorem 4.7 regime), counting it as dropped.
func TestPartitionModelDropLosesCrossCut(t *testing.T) {
	links := PartitionModel{Inner: Synchronous{Delta: 4}, Split: 1, Start: 0, Heal: 1 << 30}
	s := New(links, 5)
	c := &collector{}
	s.Register(0, HandlerFuncs{})
	s.Register(1, c)
	for i := 0; i < 20; i++ {
		s.Send(Message{From: 0, To: 1})
	}
	s.Run(1 << 20)
	if len(c.got) != 0 {
		t.Fatalf("delivered %d cross-cut messages during the partition", len(c.got))
	}
	if s.Dropped != 20 {
		t.Fatalf("Dropped = %d, want 20", s.Dropped)
	}
}

// TestLossyRateDropsAtConfiguredRate: the drop census tracks P and the
// survivors respect the inner model's bound.
func TestLossyRateDropsAtConfiguredRate(t *testing.T) {
	s := New(LossyRate{Inner: Synchronous{Delta: 4}, P: 0.25}, 12)
	c := &collector{}
	s.Register(1, c)
	const sent = 4000
	for i := 0; i < sent; i++ {
		s.Send(Message{From: 0, To: 1})
	}
	s.Run(1 << 20)
	if got := s.Dropped; got < sent/5 || got > sent/3 {
		t.Fatalf("dropped %d of %d at p=0.25 — rate draw broken", got, sent)
	}
	if len(c.got)+s.Dropped != sent {
		t.Fatalf("delivered %d + dropped %d ≠ sent %d", len(c.got), s.Dropped, sent)
	}
	for _, at := range c.at {
		if at > 4 {
			t.Fatalf("survivor delivered at %d, beyond the inner δ=4", at)
		}
	}
}

// TestJitterStretchesTail: common-case deliveries keep the inner bound
// while a TailProb fraction stretch by the factor — and nothing is lost.
func TestJitterStretchesTail(t *testing.T) {
	s := New(Jitter{Inner: Synchronous{Delta: 4}, TailProb: 0.1}, 3)
	c := &collector{}
	s.Register(1, c)
	const sent = 2000
	for i := 0; i < sent; i++ {
		s.Send(Message{From: 0, To: 1})
	}
	s.Run(1 << 20)
	if len(c.got) != sent {
		t.Fatalf("delivered %d, want %d (jitter drops nothing)", len(c.got), sent)
	}
	stragglers := 0
	for _, at := range c.at {
		switch {
		case at <= 4:
		case at <= 40:
			stragglers++
		default:
			t.Fatalf("delivery at %d beyond 10×δ", at)
		}
	}
	if stragglers < sent/20 || stragglers > sent/5 {
		t.Fatalf("stragglers = %d of %d at tail=0.1 — tail draw broken", stragglers, sent)
	}
}

// TestBroadcastProcsCacheInvalidatedOnRegister guards the Broadcast
// hot-path cache: registrations after a broadcast are picked up.
func TestBroadcastProcsCacheInvalidatedOnRegister(t *testing.T) {
	s := New(Synchronous{Delta: 2}, 1)
	a, b := &collector{}, &collector{}
	s.Register(1, a)
	s.Broadcast(0, Message{Kind: "x"})
	s.Register(2, b)
	s.Broadcast(0, Message{Kind: "x"})
	s.Run(100)
	if len(a.got) != 2 || len(b.got) != 1 {
		t.Fatalf("deliveries a=%d b=%d, want 2 and 1 — procs cache stale", len(a.got), len(b.got))
	}
	if got := s.Procs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Procs() = %v", got)
	}
}
