// Package netsim is the deterministic message-passing substrate of
// Section 4.2 of "Blockchain Abstract Data Type" (Anceaume et al.): an
// arbitrary large but finite set of n processes exchanging messages over
// channels that are synchronous (delivery within δ), weakly synchronous
// (unbounded before a global stabilization time GST, with every message —
// including ones sent before GST — delivered by max(send+δ, GST+δ), the
// Dwork–Lynch–Stockmeyer partial-synchrony contract), or asynchronous (no
// delivery bound), with optional message dropping, partitions, heavy-tail
// jitter, and crash/Byzantine fault injection.
//
// The simulator runs in virtual time from a single priority queue, so every
// execution is a deterministic function of (topology, link model, seed).
// The fictional global clock the paper postulates is the simulator's `now`;
// processes never read it except through message delivery order, matching
// the paper's "processes do not have access to the fictional global time".
//
// The package also provides the two broadcast primitives the paper's
// necessity results revolve around: a Light Reliable Communication (LRC)
// broadcast satisfying Definition 4.4 (Validity + Agreement among correct
// processes), and a lossy broadcast whose per-destination drops construct
// the counterexample histories of Lemmas 4.4–4.5 and Theorem 4.7.
package netsim

import (
	"fmt"
	"slices"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// Message is a network message. The blockchain protocols of this
// repository propagate block updates, so messages carry the (predecessor,
// block, origin) triple of Definition 4.3 plus a protocol-defined kind and
// optional payload.
type Message struct {
	From history.ProcID
	To   history.ProcID
	// Kind is a protocol-defined discriminator ("update", "vote", …).
	Kind string
	// Parent and Block are the (bg, b) of block-update messages.
	Parent history.BlockRef
	Block  history.BlockRef
	// Origin is the process that generated Block.
	Origin history.ProcID
	// Round tags protocol rounds (votes, proposals).
	Round int
	// Payload carries protocol-specific extra data.
	Payload any
}

// Sized lets protocol payloads report their approximate wire size, so
// the simulator's byte accounting reflects protocol data without netsim
// depending on the payload types. Payloads that do not implement it
// count as header-only messages.
type Sized interface {
	// WireSize returns the payload's approximate serialized size in
	// bytes.
	WireSize() int
}

// wireSize estimates the message's serialized size: the fixed header
// (from, to, origin, round), the kind and block references, and the
// payload's own estimate when it provides one. The estimate feeds the
// Bytes counter the metrics subsystem reads; it only needs to be
// deterministic and proportional, not exact.
func (m Message) wireSize() int64 {
	n := 16 + len(m.Kind) + len(m.Parent) + len(m.Block)
	if s, ok := m.Payload.(Sized); ok {
		n += s.WireSize()
	}
	return int64(n)
}

// Handler reacts to deliveries and scheduled timers at one process.
type Handler interface {
	// OnMessage is called when a message is delivered to the process.
	OnMessage(s *Sim, m Message)
	// OnTimer is called when a timer scheduled via Sim.TimerAt fires.
	OnTimer(s *Sim, tag string)
}

// HandlerFuncs adapts plain functions to Handler.
type HandlerFuncs struct {
	Message func(s *Sim, m Message)
	Timer   func(s *Sim, tag string)
}

// OnMessage implements Handler.
func (h HandlerFuncs) OnMessage(s *Sim, m Message) {
	if h.Message != nil {
		h.Message(s, m)
	}
}

// OnTimer implements Handler.
func (h HandlerFuncs) OnTimer(s *Sim, tag string) {
	if h.Timer != nil {
		h.Timer(s, tag)
	}
}

// LinkModel decides delivery delay and loss per message.
type LinkModel interface {
	// Plan returns the delivery delay for the message sent at time now
	// and whether the message is dropped instead. Implementations must
	// be deterministic given the rng stream.
	Plan(rng *prng.Source, m Message, now int64) (delay int64, drop bool)
	// Name identifies the model in reports.
	Name() string
}

// Synchronous delivers every message within [Min, Delta] (Section 4.2's
// synchronous channels: sent at t ⇒ delivered by t+δ).
type Synchronous struct {
	// Delta is the inclusive delivery bound δ (≥ 1).
	Delta int64
	// Min is the minimum delay (≥ 1; 0 defaults to 1).
	Min int64
}

// Name implements LinkModel.
func (l Synchronous) Name() string { return fmt.Sprintf("synchronous(δ=%d)", l.Delta) }

// Plan implements LinkModel.
func (l Synchronous) Plan(rng *prng.Source, _ Message, _ int64) (int64, bool) {
	lo := l.Min
	if lo < 1 {
		lo = 1
	}
	hi := l.Delta
	if hi < lo {
		hi = lo
	}
	return lo + rng.Int63n(hi-lo+1), false
}

// PlanBatch implements BatchPlanner. The delays are drawn in slice order
// with one rng draw each, exactly as len(delays) consecutive Plan calls
// would, so batched and per-send planning produce identical executions.
func (l Synchronous) PlanBatch(rng *prng.Source, _ Message, _ int64, delays []int64) {
	lo := l.Min
	if lo < 1 {
		lo = 1
	}
	hi := l.Delta
	if hi < lo {
		hi = lo
	}
	span := hi - lo + 1
	for i := range delays {
		delays[i] = lo + rng.Int63n(span)
	}
}

// Asynchronous delivers every message eventually but with no bound: delays
// are drawn from [1, MaxDelay] with occasional long-tail stragglers, which
// is the executable stand-in for unbounded delay on finite runs.
type Asynchronous struct {
	// MaxDelay bounds common-case delays (default 64).
	MaxDelay int64
	// TailProb is the probability of a straggler delayed 10×MaxDelay.
	TailProb float64
}

// Name implements LinkModel.
func (l Asynchronous) Name() string { return "asynchronous" }

// Plan implements LinkModel.
func (l Asynchronous) Plan(rng *prng.Source, _ Message, _ int64) (int64, bool) {
	maxd := l.MaxDelay
	if maxd <= 0 {
		maxd = 64
	}
	if l.TailProb > 0 && rng.Bool(l.TailProb) {
		return 1 + rng.Int63n(10*maxd), false
	}
	return 1 + rng.Int63n(maxd), false
}

// WeaklySynchronous behaves asynchronously before the global stabilization
// time GST and synchronously (bound Delta) after it — the paper's weakly
// synchronous channels. It honors the standard partial-synchrony delivery
// contract (Dwork–Lynch–Stockmeyer): every message sent at time t is
// delivered by max(t, GST) + Delta, so pre-GST sends whose asynchronous
// draw overshoots are clamped to land by GST+Delta.
type WeaklySynchronous struct {
	GST    int64
	Delta  int64
	PreMax int64
}

// Name implements LinkModel.
func (l WeaklySynchronous) Name() string {
	return fmt.Sprintf("weakly-synchronous(GST=%d,δ=%d)", l.GST, l.Delta)
}

// Plan implements LinkModel.
func (l WeaklySynchronous) Plan(rng *prng.Source, m Message, now int64) (int64, bool) {
	if now >= l.GST {
		return Synchronous{Delta: l.Delta}.Plan(rng, m, now)
	}
	pre := l.PreMax
	if pre <= 0 {
		pre = 8 * l.Delta
	}
	d, _ := Asynchronous{MaxDelay: pre}.Plan(rng, m, now)
	// DLS bound: a message sent before GST must be delivered by GST+Delta.
	// now < GST here, so the clamp never drops the delay below Delta+1.
	if bound := l.GST + l.Delta - now; d > bound {
		d = bound
	}
	return d, false
}

// DropRule decides whether a particular message is lost.
type DropRule func(m Message, now int64) bool

// Lossy wraps a link model with a drop rule, producing the non-reliable
// channels used by the necessity counterexamples (Theorem 4.7: "it is
// impossible to implement Eventual Prefix if even only one message sent by
// a correct process is dropped").
type Lossy struct {
	Inner LinkModel
	Rule  DropRule
}

// Name implements LinkModel.
func (l Lossy) Name() string { return "lossy(" + l.Inner.Name() + ")" }

// Plan implements LinkModel.
func (l Lossy) Plan(rng *prng.Source, m Message, now int64) (int64, bool) {
	if l.Rule != nil && l.Rule(m, now) {
		return 0, true
	}
	return l.Inner.Plan(rng, m, now)
}

// LossyRate drops each message independently with probability P and
// otherwise defers to the inner model — the rate-based generalization of
// Lossy used by the "lossy" scenario link. Theorem 4.7 proves Eventual
// Prefix is unimplementable once even one message from a correct process
// is dropped; seeded per-message drops construct such runs reproducibly.
type LossyRate struct {
	Inner LinkModel
	// P is the per-message drop probability in [0, 1].
	P float64
}

// Name implements LinkModel.
func (l LossyRate) Name() string { return fmt.Sprintf("lossy(p=%.2f,%s)", l.P, l.Inner.Name()) }

// Plan implements LinkModel. The drop draw is taken for every message —
// kept or not — so the rng stream position, and with it every later
// delivery, is a deterministic function of the send sequence alone.
func (l LossyRate) Plan(rng *prng.Source, m Message, now int64) (int64, bool) {
	if rng.Bool(l.P) {
		return 0, true
	}
	return l.Inner.Plan(rng, m, now)
}

// PartitionModel bisects the process set for the interval [Start, Heal):
// processes with id < Split form one side, the rest the other. A message
// crossing the cut whose delivery would land inside [Start, Heal) —
// whether sent during the partition or already in flight when it starts —
// is dropped (Defer false) or deferred to arrive after healing (Defer
// true: delivery at Heal plus the inner model's draw, as if the network
// retransmitted once the cut closed). Same-side traffic is untouched, so
// no cross-cut message is ever delivered while the partition is up. This
// is the executable form of the partition-prone channels behind the
// paper's remark that nothing stronger than monotonic-prefix consistency
// survives partitions.
type PartitionModel struct {
	Inner LinkModel
	// Split is the cut: processes with id < Split are side A.
	Split history.ProcID
	// Start and Heal bound the partition interval [Start, Heal).
	Start, Heal int64
	// Defer delivers cross-cut messages after healing instead of
	// dropping them.
	Defer bool
}

// Name implements LinkModel.
func (l PartitionModel) Name() string {
	mode := "drop"
	if l.Defer {
		mode = "defer"
	}
	return fmt.Sprintf("partition(split=%d,[%d,%d),%s,%s)", l.Split, l.Start, l.Heal, mode, l.Inner.Name())
}

// crossesCut reports whether the message spans the bisection.
func (l PartitionModel) crossesCut(m Message) bool {
	return (m.From < l.Split) != (m.To < l.Split)
}

// Plan implements LinkModel. Like LossyRate, the inner draw happens for
// every message so the rng stream is independent of partition timing.
func (l PartitionModel) Plan(rng *prng.Source, m Message, now int64) (int64, bool) {
	delay, drop := l.Inner.Plan(rng, m, now)
	if drop {
		return delay, true
	}
	if at := now + delay; l.crossesCut(m) && at >= l.Start && at < l.Heal {
		if !l.Defer {
			return 0, true
		}
		// Deliver at Heal+delay: strictly after the cut closes, never
		// inside [Start, Heal).
		return l.Heal - now + delay, false
	}
	return delay, false
}

// Jitter wraps a link model with heavy-tail straggler delays: with
// probability TailProb the inner draw is multiplied by TailFactor. Unlike
// Asynchronous it preserves the inner model's common case exactly, so it
// isolates the effect of rare stragglers on convergence.
type Jitter struct {
	Inner LinkModel
	// TailProb is the per-message straggler probability.
	TailProb float64
	// TailFactor multiplies a straggler's delay (0 defaults to 10).
	TailFactor int64
}

// Name implements LinkModel.
func (l Jitter) Name() string {
	return fmt.Sprintf("jitter(tail=%.2f,×%d,%s)", l.TailProb, l.factor(), l.Inner.Name())
}

func (l Jitter) factor() int64 {
	if l.TailFactor <= 0 {
		return 10
	}
	return l.TailFactor
}

// Plan implements LinkModel. The tail draw is taken for every message so
// the rng stream position is independent of the inner model's outcome.
func (l Jitter) Plan(rng *prng.Source, m Message, now int64) (int64, bool) {
	delay, drop := l.Inner.Plan(rng, m, now)
	tail := rng.Bool(l.TailProb)
	if drop {
		return delay, true
	}
	if tail {
		delay *= l.factor()
	}
	return delay, false
}

// BatchPlanner is an optional LinkModel extension for models whose draws
// do not depend on the individual message: PlanBatch fills delays with one
// value per message, consuming the rng exactly as len(delays) consecutive
// Plan calls on the same stream would. Broadcast uses it to plan a whole
// fan-out with one call; the drop decision must be uniformly "keep" (models
// that can drop cannot implement BatchPlanner without changing semantics).
type BatchPlanner interface {
	PlanBatch(rng *prng.Source, m Message, now int64, delays []int64)
}

// event is a queue entry's payload: either a delivery or a timer. Events
// live in a slab the simulator recycles through a free list — scheduling
// never heap-allocates, and both the slab and the heap's backing array are
// reused across Run iterations.
type event struct {
	msg   Message
	timer bool
	tag   string
	proc  history.ProcID
}

// heapItem is what the priority queue actually orders: the (at, seq) key
// plus the slab index of the payload. Sift operations move these 24-byte
// items instead of full event structs, which keeps the heap's memory
// traffic independent of the message size.
type heapItem struct {
	at  int64
	seq int64 // FIFO tie-break for determinism
	idx int32
}

// itemLess orders the min-heap by (at, seq).
func itemLess(a, b heapItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is the discrete-event simulator. It is single-goroutine: handlers run
// sequentially in virtual-time order.
type Sim struct {
	now   int64
	seq   int64
	queue []heapItem
	// slab holds the queued events' payloads; free lists the vacated slots.
	// Together they pool event structs: a pop releases its slot for the
	// next push, so steady-state scheduling allocates nothing.
	slab []event
	free []int32
	// delays is Broadcast's scratch buffer for batched link planning; it is
	// reused across calls so batched fan-outs allocate nothing steady-state.
	delays   []int64
	handlers map[history.ProcID]Handler
	// procs caches the sorted process ids; Register invalidates it.
	// Broadcast iterates it once per call, so the sort is paid per
	// registration instead of per broadcast.
	procs   []history.ProcID
	crashed map[history.ProcID]bool
	links   LinkModel
	rng     *prng.Source
	rec     *history.Recorder
	// Delivered counts delivered messages; Dropped counts planned drops.
	Delivered int
	Dropped   int
	// Bytes accumulates the estimated wire size of every message sent
	// through the link model, including ones the model then drops (the
	// sender paid for them); self-deliveries bypass the wire and are not
	// counted. This is the instrumentation behind the msg_bytes metric.
	Bytes int64
}

// New returns a simulator over the given link model, seeded for
// reproducibility. The recorder (for histories of Definition 4.2) is
// created with the simulator's virtual clock.
func New(links LinkModel, seed uint64) *Sim {
	s := &Sim{
		handlers: map[history.ProcID]Handler{},
		crashed:  map[history.ProcID]bool{},
		links:    links,
		rng:      prng.New(seed),
	}
	s.rec = history.NewRecorderWithClock(simClock{s})
	return s
}

// simClock exposes virtual time to the history recorder.
type simClock struct{ s *Sim }

// Now implements history.Clock.
func (c simClock) Now() int64 { return c.s.now }

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.now }

// Recorder returns the history recorder stamped by virtual time.
func (s *Sim) Recorder() *history.Recorder { return s.rec }

// Rng returns the simulator's deterministic random source.
func (s *Sim) Rng() *prng.Source { return s.rng }

// Register installs the handler for a process.
func (s *Sim) Register(p history.ProcID, h Handler) {
	s.handlers[p] = h
	s.procs = nil
}

// sortedProcs returns the cached ascending process ids, rebuilding the
// cache after a Register invalidated it. Callers must not mutate the
// returned slice.
func (s *Sim) sortedProcs() []history.ProcID {
	if s.procs == nil && len(s.handlers) > 0 {
		s.procs = make([]history.ProcID, 0, len(s.handlers))
		for p := range s.handlers {
			s.procs = append(s.procs, p)
		}
		slices.Sort(s.procs)
	}
	return s.procs
}

// Procs returns the registered process ids in ascending order.
func (s *Sim) Procs() []history.ProcID {
	return slices.Clone(s.sortedProcs())
}

// Crash marks the process faulty from the current instant: pending and
// future deliveries and timers to it are discarded.
func (s *Sim) Crash(p history.ProcID) { s.crashed[p] = true }

// Crashed reports whether the process has crashed.
func (s *Sim) Crashed(p history.ProcID) bool { return s.crashed[p] }

// push assigns the event a sequence number, parks its payload in a slab
// slot (recycled from the free list when one is available) and sifts the
// 24-byte heap item up — no per-event allocation.
func (s *Sim) push(at int64, ev event) {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		s.slab[idx] = ev
	} else {
		idx = int32(len(s.slab))
		s.slab = append(s.slab, ev)
	}
	s.seq++
	s.queue = append(s.queue, heapItem{at: at, seq: s.seq, idx: idx})
	q := s.queue
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !itemLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes the minimum item (sift-down) and returns its payload, with
// the event's timestamp. The slab slot is zeroed — so the pool does not
// retain message payloads — and released to the free list.
func (s *Sim) pop() (int64, event) {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	s.queue = q
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && itemLess(q[r], q[c]) {
			c = r
		}
		if !itemLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	ev := s.slab[top.idx]
	s.slab[top.idx] = event{}
	s.free = append(s.free, top.idx)
	return top.at, ev
}

// Send transmits m (with From/To already set) through the link model. Loss
// and delay are decided at send time; the send itself is not recorded here —
// protocol code records send events explicitly, because the paper's send
// event belongs to the protocol history, not the wire.
func (s *Sim) Send(m Message) {
	s.Bytes += m.wireSize()
	delay, drop := s.links.Plan(s.rng, m, s.now)
	if drop {
		s.Dropped++
		return
	}
	if delay < 1 {
		delay = 1
	}
	s.push(s.now+delay, event{msg: m, proc: m.To})
}

// TimerAt schedules Handler.OnTimer(tag) at process p at absolute virtual
// time at (clamped to now+1 if in the past).
func (s *Sim) TimerAt(p history.ProcID, at int64, tag string) {
	if at <= s.now {
		at = s.now + 1
	}
	s.push(at, event{timer: true, tag: tag, proc: p})
}

// Pending returns the number of queued (undelivered) events.
func (s *Sim) Pending() int { return len(s.queue) }

// dispatch delivers one event to its handler, returning whether a handler
// actually ran (crashed or unregistered processes consume the event
// silently).
func (s *Sim) dispatch(ev *event) bool {
	if s.crashed[ev.proc] {
		return false
	}
	h, ok := s.handlers[ev.proc]
	if !ok {
		return false
	}
	if ev.timer {
		h.OnTimer(s, ev.tag)
	} else {
		s.Delivered++
		h.OnMessage(s, ev.msg)
	}
	return true
}

// Run processes events until the queue drains or virtual time exceeds
// until. It returns the number of events processed.
func (s *Sim) Run(until int64) int {
	n := 0
	for len(s.queue) > 0 {
		if s.queue[0].at > until {
			break
		}
		at, ev := s.pop()
		s.now = at
		if s.dispatch(&ev) {
			n++
		}
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunToIdle processes events until the queue is empty, however far into
// virtual time they reach — the drain harnesses use it so final reads
// never race in-flight deliveries whose link-model delay (heavy-tail
// jitter, asynchronous stragglers) exceeds any fixed window. Unlike Run,
// virtual time stops at the last processed event rather than jumping to a
// horizon. safetyCap bounds the drain loudly: an event scheduled past it
// indicates a runaway model (or a handler scheduling unboundedly) rather
// than a legitimate tail, and panics instead of spinning forever.
func (s *Sim) RunToIdle(safetyCap int64) int {
	n := 0
	for len(s.queue) > 0 {
		if at := s.queue[0].at; at > safetyCap {
			panic(fmt.Sprintf("netsim: RunToIdle exceeded safety cap %d: next event at t=%d with %d pending", safetyCap, at, len(s.queue)))
		}
		at, ev := s.pop()
		s.now = at
		if s.dispatch(&ev) {
			n++
		}
	}
	return n
}

// Broadcast sends m from `from` to every registered process including the
// sender itself (self-delivery is how LRC Validity — "if a correct process
// i sends m then i eventually receives m" — is realized). Each copy goes
// through the link model independently, so a Lossy model can drop
// individual copies: that is exactly the misbehaviour the Update Agreement
// experiments inject. Under a loss-free model this primitive satisfies the
// LRC properties of Definition 4.4 among correct processes.
func (s *Sim) Broadcast(from history.ProcID, m Message) {
	m.From = from
	procs := s.sortedProcs()
	if bp, ok := s.links.(BatchPlanner); ok {
		s.broadcastBatched(from, m, procs, bp)
		return
	}
	for _, p := range procs {
		cp := m
		cp.To = p
		if p == from {
			// Self-delivery bypasses the wire: local, next instant.
			s.push(s.now+1, event{msg: cp, proc: p})
			continue
		}
		s.Send(cp)
	}
}

// broadcastBatched plans the whole fan-out with one BatchPlanner call. The
// delays are drawn in ascending destination order — the same rng sequence
// the per-send loop consumes — so batched and unbatched broadcasts yield
// byte-identical executions.
func (s *Sim) broadcastBatched(from history.ProcID, m Message, procs []history.ProcID, bp BatchPlanner) {
	wire := 0
	for _, p := range procs {
		if p != from {
			wire++
		}
	}
	if cap(s.delays) < wire {
		s.delays = make([]int64, wire)
	}
	delays := s.delays[:wire]
	bp.PlanBatch(s.rng, m, s.now, delays)
	ws := m.wireSize()
	i := 0
	for _, p := range procs {
		cp := m
		cp.To = p
		if p == from {
			// Self-delivery bypasses the wire: local, next instant.
			s.push(s.now+1, event{msg: cp, proc: p})
			continue
		}
		s.Bytes += ws
		d := delays[i]
		i++
		if d < 1 {
			d = 1
		}
		s.push(s.now+d, event{msg: cp, proc: p})
	}
}
