package netsim

import (
	"testing"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// collector records deliveries with their times.
type collector struct {
	got []Message
	at  []int64
}

func (c *collector) OnMessage(s *Sim, m Message) {
	c.got = append(c.got, m)
	c.at = append(c.at, s.Now())
}
func (c *collector) OnTimer(*Sim, string) {}

func TestSynchronousDeliveryWithinDelta(t *testing.T) {
	const delta = 5
	s := New(Synchronous{Delta: delta}, 1)
	c := &collector{}
	s.Register(0, HandlerFuncs{})
	s.Register(1, c)
	for i := 0; i < 100; i++ {
		s.Send(Message{From: 0, To: 1, Kind: "x", Round: i})
	}
	s.Run(1000)
	if len(c.got) != 100 {
		t.Fatalf("delivered = %d, want 100", len(c.got))
	}
	for _, at := range c.at {
		if at < 1 || at > delta {
			t.Fatalf("delivery at t=%d outside (0,%d]", at, delta)
		}
	}
}

func TestAsynchronousDeliversEventually(t *testing.T) {
	s := New(Asynchronous{MaxDelay: 32, TailProb: 0.1}, 2)
	c := &collector{}
	s.Register(1, c)
	for i := 0; i < 200; i++ {
		s.Send(Message{From: 0, To: 1})
	}
	s.Run(1 << 20)
	if len(c.got) != 200 {
		t.Fatalf("delivered = %d, want 200 (async drops nothing)", len(c.got))
	}
}

func TestWeaklySynchronousAfterGST(t *testing.T) {
	const gst, delta = 100, 4
	s := New(WeaklySynchronous{GST: gst, Delta: delta, PreMax: 50}, 3)
	c := &collector{}
	s.Register(1, c)
	// Schedule sends after GST via a timer at proc 0.
	s.Register(0, HandlerFuncs{Timer: func(s *Sim, tag string) {
		for i := 0; i < 50; i++ {
			s.Send(Message{From: 0, To: 1})
		}
	}})
	s.TimerAt(0, gst+1, "go")
	s.Run(10000)
	if len(c.got) != 50 {
		t.Fatalf("delivered = %d", len(c.got))
	}
	for _, at := range c.at {
		if at > gst+1+delta {
			t.Fatalf("post-GST delivery at %d exceeds bound %d", at, gst+1+delta)
		}
	}
}

func TestLossyDropsSelectedMessages(t *testing.T) {
	rule := func(m Message, _ int64) bool { return m.To == 2 }
	s := New(Lossy{Inner: Synchronous{Delta: 3}, Rule: rule}, 4)
	c1, c2 := &collector{}, &collector{}
	s.Register(1, c1)
	s.Register(2, c2)
	s.Send(Message{From: 0, To: 1})
	s.Send(Message{From: 0, To: 2})
	s.Run(100)
	if len(c1.got) != 1 || len(c2.got) != 0 {
		t.Fatalf("deliveries = %d,%d want 1,0", len(c1.got), len(c2.got))
	}
	if s.Dropped != 1 || s.Delivered != 1 {
		t.Fatalf("dropped=%d delivered=%d", s.Dropped, s.Delivered)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(Synchronous{Delta: 9}, 42)
		c := &collector{}
		s.Register(1, c)
		for i := 0; i < 50; i++ {
			s.Send(Message{From: 0, To: 1, Round: i})
		}
		s.Run(100)
		return c.at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different delivery counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	s := New(Synchronous{Delta: 2}, 5)
	c := &collector{}
	s.Register(1, c)
	s.Send(Message{From: 0, To: 1})
	s.Run(10)
	s.Crash(1)
	s.Send(Message{From: 0, To: 1})
	s.Run(20)
	if len(c.got) != 1 {
		t.Fatalf("deliveries = %d, want 1 (post-crash dropped)", len(c.got))
	}
	if !s.Crashed(1) || s.Crashed(0) {
		t.Fatal("crash bookkeeping")
	}
}

func TestTimersFireInOrder(t *testing.T) {
	s := New(Synchronous{Delta: 1}, 6)
	var fired []string
	s.Register(0, HandlerFuncs{Timer: func(s *Sim, tag string) {
		fired = append(fired, tag)
	}})
	s.TimerAt(0, 30, "c")
	s.TimerAt(0, 10, "a")
	s.TimerAt(0, 20, "b")
	s.Run(100)
	if len(fired) != 3 || fired[0] != "a" || fired[1] != "b" || fired[2] != "c" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerInPastClamped(t *testing.T) {
	s := New(Synchronous{Delta: 1}, 6)
	fired := false
	s.Register(0, HandlerFuncs{Timer: func(s *Sim, tag string) { fired = true }})
	s.Run(50) // now = 50
	s.TimerAt(0, 10, "late")
	s.Run(100)
	if !fired {
		t.Fatal("past timer never fired")
	}
}

func TestBroadcastReachesAllIncludingSender(t *testing.T) {
	s := New(Synchronous{Delta: 4}, 7)
	cs := map[history.ProcID]*collector{}
	for p := history.ProcID(0); p < 4; p++ {
		c := &collector{}
		cs[p] = c
		s.Register(p, c)
	}
	s.Broadcast(0, Message{Kind: "hello"})
	s.Run(100)
	for p, c := range cs {
		if len(c.got) != 1 {
			t.Fatalf("p%d deliveries = %d", p, len(c.got))
		}
		if c.got[0].From != 0 {
			t.Fatalf("p%d sender = %d", p, c.got[0].From)
		}
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	s := New(Synchronous{Delta: 1}, 8)
	s.Register(0, HandlerFuncs{Timer: func(s *Sim, tag string) {}})
	s.TimerAt(0, 500, "later")
	n := s.Run(100)
	if n != 0 {
		t.Fatalf("processed = %d before deadline", n)
	}
	if s.Now() != 100 {
		t.Fatalf("now = %d, want 100", s.Now())
	}
	n = s.Run(1000)
	if n != 1 {
		t.Fatalf("processed = %d after extension", n)
	}
}

func TestRecorderUsesVirtualClock(t *testing.T) {
	s := New(Synchronous{Delta: 1}, 9)
	s.Register(0, HandlerFuncs{Timer: func(s *Sim, tag string) {
		s.Recorder().Record(0, history.Label{Kind: history.KindSend, Block: "b"})
	}})
	s.TimerAt(0, 77, "stamp")
	s.Run(100)
	h := s.Recorder().Snapshot()
	ops := h.OpsOfKind(history.KindSend)
	if len(ops) != 1 || ops[0].InvTime != 77 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestLinkModelNames(t *testing.T) {
	models := []LinkModel{
		Synchronous{Delta: 3},
		Asynchronous{},
		WeaklySynchronous{GST: 10, Delta: 2},
		Lossy{Inner: Synchronous{Delta: 1}},
	}
	seen := map[string]bool{}
	for _, m := range models {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("bad name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestSynchronousPlanRespectsMin(t *testing.T) {
	l := Synchronous{Delta: 10, Min: 4}
	rng := prng.New(1)
	for i := 0; i < 200; i++ {
		d, drop := l.Plan(rng, Message{}, 0)
		if drop || d < 4 || d > 10 {
			t.Fatalf("delay = %d drop=%v", d, drop)
		}
	}
}
