package netsim

import (
	"fmt"
	"testing"

	"blockadt/internal/blocktree"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
)

// partitionRule splits {0,1} from {2,3} until heal time.
func partitionRule(heal int64) DropRule {
	side := func(p history.ProcID) int {
		if p <= 1 {
			return 0
		}
		return 1
	}
	return func(m Message, now int64) bool {
		return now < heal && side(m.From) != side(m.To)
	}
}

// partitionNet builds 4 replicas where procs 0 and 2 (one per side) create
// blocks; the network is partitioned until heal.
func partitionNet(heal int64, resyncAt int64, seed uint64) (*Sim, map[history.ProcID]*Replica) {
	s := New(Lossy{Inner: Synchronous{Delta: 4}, Rule: partitionRule(heal)}, seed)
	reps := map[history.ProcID]*Replica{}
	for i := 0; i < 4; i++ {
		id := history.ProcID(i)
		rep := NewReplica(id, blocktree.LongestChain{}, s.Recorder())
		reps[id] = rep
		creator := i == 0 || i == 2
		count := 0
		s.Register(id, HandlerFuncs{
			Message: func(sim *Sim, m Message) { rep.OnMessage(sim, m) },
			Timer: func(sim *Sim, tag string) {
				switch tag {
				case "create":
					if creator && count < 8 {
						parent := rep.Selected().Tip()
						b := blocktree.Block{
							ID:       blocktree.BlockID(fmt.Sprintf("c%d-%02d", id, count)),
							Parent:   parent.ID,
							Proposer: int(id),
							Token:    uint64(100*int(id) + count + 1),
						}
						count++
						rep.CreateAndBroadcast(sim, parent.ID, b)
						sim.TimerAt(id, sim.Now()+12, "create")
					}
				case "read":
					rep.Read()
					sim.TimerAt(id, sim.Now()+9, "read")
				case "resync":
					rep.Resync(sim)
				}
			},
		})
		if creator {
			s.TimerAt(id, 1, "create")
		}
		s.TimerAt(id, 2+int64(i), "read")
		if resyncAt > 0 {
			s.TimerAt(id, resyncAt, "resync")
		}
	}
	return s, reps
}

// TestPartitionWithResyncConverges: a healed partition followed by an
// anti-entropy resync restores agreement — all replicas end on the same
// chain and the post-heal history satisfies Eventual Prefix.
func TestPartitionWithResyncConverges(t *testing.T) {
	const heal = 120
	s, reps := partitionNet(heal, heal+4, 51)
	s.Run(600)
	for _, p := range s.Procs() {
		reps[p].Read()
	}
	// All replicas converge to the identical tree.
	want := reps[0].Tree().Size()
	if want < 17 { // genesis + 8 + 8
		t.Fatalf("replica 0 tree size = %d, missing blocks", want)
	}
	for p, r := range reps {
		if got := r.Tree().Size(); got != want {
			t.Fatalf("replica %d size %d ≠ %d", p, got, want)
		}
	}
	chains := map[string]bool{}
	for _, r := range reps {
		chains[r.Read().String()] = true
	}
	if len(chains) != 1 {
		t.Fatalf("replicas disagree after heal+resync: %v", chains)
	}
	// The overall history converges within a window covering the
	// partition interval.
	h := s.Recorder().Snapshot()
	opts := consistency.Options{GraceWindow: len(h.Reads()) * 3 / 4}
	if v := consistency.EventualPrefix(h, opts); !v.Satisfied {
		t.Fatalf("healed run violates Eventual Prefix: %s", v)
	}
}

// TestPartitionWithoutResyncDiverges: healing the links without exchanging
// the missed blocks leaves the two sides permanently divergent — the
// partition-prone scenario behind the related-work remark that nothing
// stronger than MPC is implementable in partition-prone systems, and
// behind Theorem 4.7 (the dropped updates were sent by correct processes).
func TestPartitionWithoutResyncDiverges(t *testing.T) {
	const heal = 120
	s, reps := partitionNet(heal, 0, 51)
	s.Run(600)
	for _, p := range s.Procs() {
		reps[p].Read()
	}
	c0, c2 := reps[0].Read().IDs(), reps[2].Read().IDs()
	if c0.HasPrefix(c2) || c2.HasPrefix(c0) {
		t.Fatalf("sides agree without resync: %s vs %s", c0, c2)
	}
	h := s.Recorder().Snapshot()
	opts := consistency.Options{GraceWindow: 8}
	if v := consistency.EventualPrefix(h, opts); v.Satisfied {
		t.Fatal("divergent run satisfies Eventual Prefix")
	}
	if v := consistency.LRC(h, opts); v.Satisfied {
		t.Fatal("partition run satisfies LRC")
	}
}

// TestResyncIdempotent: resyncing twice adds nothing.
func TestResyncIdempotent(t *testing.T) {
	s := New(Synchronous{Delta: 2}, 3)
	a := NewReplica(0, blocktree.LongestChain{}, s.Recorder())
	b := NewReplica(1, blocktree.LongestChain{}, s.Recorder())
	s.Register(0, HandlerFuncs{Message: func(sim *Sim, m Message) { a.OnMessage(sim, m) }})
	s.Register(1, HandlerFuncs{Message: func(sim *Sim, m Message) { b.OnMessage(sim, m) }})
	a.CreateAndBroadcast(s, blocktree.GenesisID, blocktree.Block{ID: "x", Parent: blocktree.GenesisID, Proposer: 0})
	s.Run(50)
	a.Resync(s)
	a.Resync(s)
	s.Run(200)
	if b.Tree().Size() != 2 {
		t.Fatalf("tree size = %d", b.Tree().Size())
	}
	// The update event for x at b must be recorded exactly once.
	h := s.Recorder().Snapshot()
	updates := 0
	for _, op := range h.OpsOfKind(history.KindUpdate) {
		if op.Proc == 1 && op.Label.Block == "x" {
			updates++
		}
	}
	if updates != 1 {
		t.Fatalf("update events = %d, want 1 (idempotence)", updates)
	}
}
