package netsim

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/history"
)

// Replica is the generic replicated BT-ADT implementation of Section 4.2:
// each process i maintains a local copy bt_i of the BlockTree; an update
// related to a block b generated at process i is applied locally with
// update_i(bg, b), communicated with send_i(bg, b), and takes effect on a
// remote replica bt_j when receive_j(bg, b) triggers update_j(bg, b).
//
// All three event kinds are recorded into the simulator's history, which is
// what the Update Agreement (Definition 4.3) and LRC (Definition 4.4)
// checkers consume. Updates whose predecessor has not arrived yet are
// buffered and applied when the gap fills, preserving R2's receive-before-
// update order.
type Replica struct {
	id  history.ProcID
	bt  *blocktree.SeqBlockTree
	rec *history.Recorder
	// pending[parent] = blocks waiting for parent to arrive.
	pending map[blocktree.BlockID][]pendingBlock
	// gossip, when set (EnableGossip), routes update dissemination
	// through the flooding Gossiper over a restricted topology instead
	// of the simulator's complete-graph broadcast.
	gossip *Gossiper
	// UpdateKind is the message kind replicas react to ("update").
}

type pendingBlock struct {
	block  blocktree.Block
	origin history.ProcID
}

// UpdateMsg is the message kind replicas exchange.
const UpdateMsg = "update"

// NewReplica returns a replica for process id using selection function f.
// The predicate is RequireToken-free here: validity is enforced upstream by
// the oracle (only validated blocks are ever broadcast, per Definition 4.2
// which restricts histories to appends of valid blocks).
func NewReplica(id history.ProcID, f blocktree.Selector, rec *history.Recorder) *Replica {
	return NewReplicaCap(id, f, rec, 0)
}

// NewReplicaCap is NewReplica with a capacity hint: the local tree is
// pre-sized for about n blocks, so simulators that know their target chain
// length avoid incremental map growth on the hot insert path.
func NewReplicaCap(id history.ProcID, f blocktree.Selector, rec *history.Recorder, n int) *Replica {
	return &Replica{
		id:      id,
		bt:      blocktree.NewSeqCap(f, blocktree.AcceptAll, n),
		rec:     rec,
		pending: map[blocktree.BlockID][]pendingBlock{},
	}
}

// ID returns the replica's process id.
func (r *Replica) ID() history.ProcID { return r.id }

// Tree exposes the local BlockTree copy bt_i. The returned tree is the
// replica's live structure, shared for efficiency: callers that mutate or
// retain it across steps must Clone() it.
func (r *Replica) Tree() *blocktree.Tree { return r.bt.Tree() }

// CreateAndBroadcast applies update_i(parent, b) for a locally generated
// block and sends it to all processes via the simulator's broadcast
// (send_i(parent, b)). It records the update and send events.
func (r *Replica) CreateAndBroadcast(s *Sim, parent blocktree.BlockID, b blocktree.Block) {
	r.applyUpdate(parent, b, r.id)
	r.rec.Record(r.id, history.Label{Kind: history.KindSend, Parent: parent, Block: b.ID, Origin: r.id})
	m := Message{Kind: UpdateMsg, Parent: parent, Block: b.ID, Origin: r.id, Payload: b}
	if r.gossip != nil {
		r.gossip.Publish(s, m)
		return
	}
	s.Broadcast(r.id, m)
}

// EnableGossip switches the replica's update dissemination from the
// simulator's complete-graph broadcast to Gossiper flooding over the
// given topology (nil: flooding over the complete graph). Originated
// blocks reach only the topology's direct peers; every replica relays
// the first copy it receives, so updates cross the graph hop by hop —
// the LRC abstraction carried by the protocol instead of the primitive.
// Call it before the simulation starts; dissemination mode is not
// meant to change mid-run.
func (r *Replica) EnableGossip(topo Topology) {
	r.gossip = NewGossiper(r.id, func(s *Sim, m Message) {
		b, ok := m.Payload.(blocktree.Block)
		if !ok {
			return
		}
		r.rec.Record(r.id, history.Label{Kind: history.KindReceive, Parent: m.Parent, Block: m.Block, Origin: m.Origin})
		if m.Origin == r.id {
			// Own block: update already applied at creation.
			return
		}
		r.applyUpdate(m.Parent, b, m.Origin)
	})
	r.gossip.Topo = topo
}

// OnMessage handles an update delivery: records receive_j(bg, b) and applies
// update_j(bg, b), deferring it if the predecessor is unknown. In gossip
// mode the first copy is additionally relayed to the topology's peers;
// duplicate copies are dropped without a receive record.
func (r *Replica) OnMessage(s *Sim, m Message) {
	if m.Kind != UpdateMsg {
		return
	}
	if _, ok := m.Payload.(blocktree.Block); !ok {
		return
	}
	if r.gossip != nil {
		r.gossip.OnMessage(s, m)
		return
	}
	b := m.Payload.(blocktree.Block)
	r.rec.Record(r.id, history.Label{Kind: history.KindReceive, Parent: m.Parent, Block: m.Block, Origin: m.Origin})
	if m.Origin == r.id {
		// Self-delivery: update already applied at creation.
		return
	}
	r.applyUpdate(m.Parent, b, m.Origin)
}

func (r *Replica) applyUpdate(parent blocktree.BlockID, b blocktree.Block, origin history.ProcID) {
	if !r.bt.Tree().Has(parent) {
		r.pending[parent] = append(r.pending[parent], pendingBlock{block: b, origin: origin})
		return
	}
	if r.bt.Update(parent, b) {
		r.rec.Record(r.id, history.Label{Kind: history.KindUpdate, Parent: parent, Block: b.ID, Origin: origin})
	}
	// Drain blocks that were waiting for b.
	waiting := r.pending[b.ID]
	delete(r.pending, b.ID)
	for _, w := range waiting {
		r.applyUpdate(b.ID, w.block, w.origin)
	}
}

// OnTimer implements Handler; replicas have no timers of their own.
func (r *Replica) OnTimer(*Sim, string) {}

// Read performs the read() operation on the local replica, recording
// invocation and response.
func (r *Replica) Read() blocktree.Chain {
	op := r.rec.Invoke(r.id, history.Label{Kind: history.KindRead})
	c := r.bt.Read()
	r.rec.Respond(op, history.Label{Kind: history.KindRead, Chain: c.IDs()})
	return c
}

// ReadIDs performs read() recording only the chain's block ids — the same
// response label Read records, without materializing the []Block chain.
// The simulation drivers call it on their periodic read timers, where the
// returned chain is only ever recorded, never inspected.
func (r *Replica) ReadIDs() history.Chain {
	op := r.rec.Invoke(r.id, history.Label{Kind: history.KindRead})
	ids := r.bt.ReadIDs()
	r.rec.Respond(op, history.Label{Kind: history.KindRead, Chain: ids})
	return ids
}

// ApplyDecided applies a block this replica learned through an agreement
// protocol (rather than a network update message): the decision
// certificate replaces the wire hop, so the block is inserted directly and
// recorded as an update event. Used by the PBFT-committed chains.
func (r *Replica) ApplyDecided(parent blocktree.BlockID, b blocktree.Block, origin history.ProcID) {
	r.applyUpdate(parent, b, origin)
}

// Selected applies the replica's selection function f to the local tree
// without recording a read event — the protocol-internal chain selection
// miners use to choose the block to extend (distinct from the ADT's read()
// operation, which belongs to the application-facing history).
func (r *Replica) Selected() blocktree.Chain { return r.bt.Read() }

// SelectedTip is Selected().Tip() without materializing the chain: the
// tip-only fast path for miners, which select on every attempt but only
// ever extend the tip.
func (r *Replica) SelectedTip() blocktree.Block { return r.bt.Tip() }

// Resync re-broadcasts every non-genesis block of the local tree — a
// one-shot anti-entropy pass. Partition-prone systems need it: updates
// broadcast during a partition are lost for the other side, and the LRC
// abstraction (whose necessity Theorem 4.7 proves) must be re-established
// after healing by exchanging the missed blocks. Receivers deduplicate
// through the ordinary update path, so resync is idempotent.
func (r *Replica) Resync(s *Sim) {
	t := r.bt.Tree()
	// Breadth-first from genesis so parents precede children on the wire.
	queue := []blocktree.BlockID{blocktree.GenesisID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, child := range t.Children(id) {
			b, ok := t.Get(child)
			if !ok {
				continue
			}
			// Relay under the block's original creator so the
			// (b_g, b_i) naming of Definition 4.3 stays accurate.
			origin := r.id
			if b.Proposer >= 0 {
				origin = history.ProcID(b.Proposer)
			}
			r.rec.Record(r.id, history.Label{Kind: history.KindSend, Parent: b.Parent, Block: b.ID, Origin: origin})
			s.Broadcast(r.id, Message{Kind: UpdateMsg, Parent: b.Parent, Block: b.ID, Origin: origin, Payload: b})
			queue = append(queue, child)
		}
	}
}

// PendingCount returns the number of buffered out-of-order blocks, useful
// to assert quiescence at the end of a run.
func (r *Replica) PendingCount() int {
	n := 0
	for _, v := range r.pending {
		n += len(v)
	}
	return n
}
