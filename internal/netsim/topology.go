package netsim

import (
	"fmt"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// Topology restricts which processes receive direct copies of a
// broadcast or gossip relay. The default everywhere is the complete
// graph (every process hears every send directly — the Table 1
// setting); a non-complete topology makes dissemination multi-hop, so
// the flooding relays of the Gossiper (the paper's Light Reliable
// Communication, Definition 4.4) carry updates across the graph.
//
// Membership is static for the lifetime of a run, so implementations
// may be pure functions of (p, procs) and callers may cache the result.
type Topology interface {
	// Name identifies the topology in reports and scenario labels.
	Name() string
	// Peers returns the processes p sends direct copies to. procs is the
	// full membership in ascending id order; the returned slice must not
	// include p itself and must induce a connected digraph over procs so
	// relays can reach everyone.
	Peers(p history.ProcID, procs []history.ProcID) []history.ProcID
}

// RingK is the degree-k ring overlay: processes are arranged on a ring
// in id order and each sends to its K successors. K ≥ 1 keeps the ring
// connected (diameter ⌈(n-1)/K⌉ hops); K ≥ n-1 degrades to the complete
// graph. It is the smallest deterministic gossip graph with a tunable
// fan-out, which is exactly what the topology dimension needs: same
// protocol, fewer direct edges, convergence now owed to relaying.
type RingK struct {
	// K is the successor fan-out; values < 1 are clamped to 1.
	K int
}

// Name implements Topology.
func (r RingK) Name() string { return fmt.Sprintf("ring(k=%d)", r.K) }

// Peers implements Topology.
func (r RingK) Peers(p history.ProcID, procs []history.ProcID) []history.ProcID {
	k := r.K
	if k < 1 {
		k = 1
	}
	if k > len(procs)-1 {
		k = len(procs) - 1
	}
	idx := -1
	for i, q := range procs {
		if q == p {
			idx = i
			break
		}
	}
	if idx < 0 || k <= 0 {
		return nil
	}
	out := make([]history.ProcID, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, procs[(idx+i)%len(procs)])
	}
	return out
}

// ClusterLatency decorates a link model with a two-level latency matrix:
// processes are grouped into fixed-size clusters by id (ids [0,Size) in
// cluster 0, [Size,2·Size) in cluster 1, …) and a delivery crossing a
// cluster boundary pays Extra ticks on top of the inner plan. The
// decorator draws nothing from the rng itself, so wrapping a model
// leaves its draw sequence — and with it the determinism contract of
// seeded runs — untouched. It deliberately does not implement
// BatchPlanner: the surcharge depends on the receiver, so a broadcast
// fan-out has per-message delays even over a Synchronous inner model.
type ClusterLatency struct {
	Inner LinkModel
	// Size is the cluster width in process ids; values < 1 behave as 1.
	Size int
	// Extra is the cross-cluster delivery surcharge in ticks.
	Extra int64
}

// Name implements LinkModel.
func (c ClusterLatency) Name() string {
	return fmt.Sprintf("clustered(size=%d,+%d,%s)", c.Size, c.Extra, c.Inner.Name())
}

// Plan implements LinkModel.
func (c ClusterLatency) Plan(rng *prng.Source, m Message, now int64) (int64, bool) {
	delay, drop := c.Inner.Plan(rng, m, now)
	if drop {
		return delay, true
	}
	size := c.Size
	if size < 1 {
		size = 1
	}
	if int(m.From)/size != int(m.To)/size {
		delay += c.Extra
	}
	return delay, false
}
