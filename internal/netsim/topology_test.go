package netsim

import (
	"reflect"
	"testing"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

func procs(n int) []history.ProcID {
	out := make([]history.ProcID, n)
	for i := range out {
		out[i] = history.ProcID(i)
	}
	return out
}

// TestRingKPeers pins the ring overlay's neighbor sets: K successors in
// id order with wrap-around, K clamped into [1, n-1], never including
// the process itself.
func TestRingKPeers(t *testing.T) {
	ps := procs(5)
	cases := []struct {
		k    int
		p    history.ProcID
		want []history.ProcID
	}{
		{1, 0, []history.ProcID{1}},
		{2, 3, []history.ProcID{4, 0}},
		{3, 4, []history.ProcID{0, 1, 2}},
		{0, 2, []history.ProcID{3}},          // k<1 clamps to 1
		{9, 1, []history.ProcID{2, 3, 4, 0}}, // k>n-1 degrades to complete
	}
	for _, c := range cases {
		got := RingK{K: c.k}.Peers(c.p, ps)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("RingK{K:%d}.Peers(%d) = %v, want %v", c.k, c.p, got, c.want)
		}
		for _, q := range got {
			if q == c.p {
				t.Errorf("RingK{K:%d}.Peers(%d) includes the process itself", c.k, c.p)
			}
		}
	}
	if got := (RingK{K: 2}).Peers(7, ps); got != nil {
		t.Errorf("unknown process got peers %v", got)
	}
	if name := (RingK{K: 3}).Name(); name != "ring(k=3)" {
		t.Errorf("Name() = %q", name)
	}
}

// TestRingKConnected: every process reaches every other by following
// successor edges — the connectivity precondition relays depend on.
func TestRingKConnected(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		ps := procs(8)
		topo := RingK{K: k}
		for _, start := range ps {
			reached := map[history.ProcID]bool{start: true}
			frontier := []history.ProcID{start}
			for len(frontier) > 0 {
				p := frontier[0]
				frontier = frontier[1:]
				for _, q := range topo.Peers(p, ps) {
					if !reached[q] {
						reached[q] = true
						frontier = append(frontier, q)
					}
				}
			}
			if len(reached) != len(ps) {
				t.Fatalf("k=%d: from %d only %d/%d reachable", k, start, len(reached), len(ps))
			}
		}
	}
}

// TestClusterLatencySurcharge: only deliveries crossing the cluster
// boundary pay Extra, drops pass through untouched, and the decorator
// draws nothing from the rng (the inner model's stream position is the
// same with and without the wrap).
func TestClusterLatencySurcharge(t *testing.T) {
	inner := Synchronous{Delta: 8}
	wrapped := ClusterLatency{Inner: inner, Size: 4, Extra: 32}

	// Same seed, same message position: the only difference between the
	// two draws is the receiver's cluster.
	intra, drop := wrapped.Plan(prng.New(1), Message{From: 0, To: 3}, 0)
	if drop {
		t.Fatal("synchronous delivery dropped")
	}
	cross, _ := wrapped.Plan(prng.New(1), Message{From: 0, To: 4}, 0)
	if cross != intra+32 {
		t.Fatalf("cross-cluster delay %d, want intra %d + 32", cross, intra)
	}

	// rng-neutrality: the wrapped model consumes exactly the inner model's
	// draws, so both streams stay in lockstep across a message sequence.
	a, b := prng.New(7), prng.New(7)
	jitterInner := Jitter{Inner: Synchronous{Delta: 8}, TailProb: 0.5, TailFactor: 4}
	jitterWrapped := ClusterLatency{Inner: jitterInner, Size: 4, Extra: 32}
	for i := 0; i < 100; i++ {
		m := Message{From: history.ProcID(i % 8), To: history.ProcID((i + 3) % 8)}
		di, _ := jitterInner.Plan(a, m, 0)
		dw, _ := jitterWrapped.Plan(b, m, 0)
		want := di
		if int(m.From)/4 != int(m.To)/4 {
			want += 32
		}
		if dw != want {
			t.Fatalf("message %d: wrapped delay %d, want %d — rng streams diverged", i, dw, want)
		}
	}

	// Drops propagate unchanged.
	lossy := ClusterLatency{Inner: LossyRate{Inner: Synchronous{Delta: 8}, P: 1}, Size: 4, Extra: 32}
	if _, drop := lossy.Plan(prng.New(3), Message{From: 0, To: 5}, 0); !drop {
		t.Fatal("inner drop swallowed by the decorator")
	}

	if name := wrapped.Name(); name != "clustered(size=4,+32,synchronous(δ=8))" {
		t.Errorf("Name() = %q", name)
	}
}

// TestGossipOverRingTopology: with the relay fan-out restricted to a
// degree-1 ring, a published message still reaches every process — over
// n-1 hops instead of one — and the per-process dedup keeps deliveries
// exactly-once.
func TestGossipOverRingTopology(t *testing.T) {
	const n = 6
	s := New(Synchronous{Delta: 4}, 9)
	gs := make([]*Gossiper, n)
	delivered := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		g := NewGossiper(history.ProcID(i), func(*Sim, Message) { delivered[i]++ })
		g.Topo = RingK{K: 1}
		gs[i] = g
		s.Register(history.ProcID(i), HandlerFuncs{
			Message: func(sim *Sim, m Message) { g.OnMessage(sim, m) },
		})
	}
	gs[0].Publish(s, Message{Kind: GossipKind, Block: "b", Origin: 0})
	s.Run(1000)
	for i, d := range delivered {
		if d != 1 {
			t.Fatalf("process %d delivered %d times, want exactly 1", i, d)
		}
	}
	// Degree-1 ring: each process sends to exactly one successor, so the
	// wire carries at most n copies (origin + n-1 relays).
	if s.Delivered > n {
		t.Fatalf("ring relay delivered %d copies, want ≤ %d", s.Delivered, n)
	}
}
