package obs

import (
	"sync"

	"blockadt/internal/metrics"
)

// latencyProbes are the quantiles Latencies tracks per series.
var latencyProbes = []float64{0.5, 0.95, 0.99}

// latencyKey identifies one histogram series.
type latencyKey struct {
	phase, outcome string
}

// latencySeries couples the streaming aggregators of internal/metrics:
// Welford for count/mean/sum, one quantile sketch for p50/p95/p99. Both
// are O(1) memory, so a Latencies never grows with traffic — only with
// the (phase × outcome) label space, which is bounded by construction.
type latencySeries struct {
	w metrics.Welford
	q *metrics.Quantile
}

// LatencySummary is one series' snapshot. Durations are nanoseconds.
type LatencySummary struct {
	Phase   string  `json:"phase"`
	Outcome string  `json:"outcome"`
	Count   int     `json:"count"`
	SumNS   float64 `json:"sumNs"`
	MeanNS  float64 `json:"meanNs"`
	MaxNS   float64 `json:"maxNs"`
	P50NS   float64 `json:"p50Ns"`
	P95NS   float64 `json:"p95Ns"`
	P99NS   float64 `json:"p99Ns"`
}

// Latencies is a Tracer that folds every span's phases into per-(phase,
// outcome) latency histograms: live p50/p95/p99 for where sweep time
// goes — queue wait vs store reads vs simulation vs persistence — split
// by how the scenario was satisfied. Safe for concurrent use; the zero
// value is NOT ready, construct with NewLatencies.
type Latencies struct {
	mu     sync.Mutex
	series map[latencyKey]*latencySeries
	order  []latencyKey // first-observation order, for deterministic snapshots
}

// NewLatencies returns an empty histogram set.
func NewLatencies() *Latencies {
	return &Latencies{series: map[latencyKey]*latencySeries{}}
}

// ObserveSpan folds one span into the histograms.
func (l *Latencies) ObserveSpan(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s.Phases(func(phase string, ns int64) {
		k := latencyKey{phase: phase, outcome: s.Outcome}
		sr := l.series[k]
		if sr == nil {
			sr = &latencySeries{q: metrics.NewQuantile(latencyProbes...)}
			l.series[k] = sr
			l.order = append(l.order, k)
		}
		sr.w.Add(float64(ns))
		sr.q.Add(float64(ns))
	})
}

// Snapshot returns every series' summary. Ordering is stable across
// snapshots of the same Latencies (first-observation order), so two
// scrapes render series in the same sequence.
func (l *Latencies) Snapshot() []LatencySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LatencySummary, 0, len(l.order))
	for _, k := range l.order {
		sr := l.series[k]
		n := sr.w.Count()
		out = append(out, LatencySummary{
			Phase:   k.phase,
			Outcome: k.outcome,
			Count:   n,
			SumNS:   sr.w.Mean() * float64(n),
			MeanNS:  sr.w.Mean(),
			MaxNS:   sr.w.Max(),
			P50NS:   sr.q.Get(0.5),
			P95NS:   sr.q.Get(0.95),
			P99NS:   sr.q.Get(0.99),
		})
	}
	return out
}
