package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// NDJSON is a Tracer that appends each span as one JSON line — the
// `btadt sweep -trace out.ndjson` sink. Writes are serialized by a
// mutex and buffered; call Close (or Flush) before reading the output.
// Spans are written in completion order, which under parallelism is not
// expansion order — offline consumers sort by the span's Index or
// StartNS.
type NDJSON struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	count int
	err   error
}

// NewNDJSON returns an NDJSON tracer writing to w.
func NewNDJSON(w io.Writer) *NDJSON {
	return &NDJSON{bw: bufio.NewWriter(w)}
}

// ObserveSpan appends one span line. The first write error sticks and
// is reported by Close; later spans are dropped rather than interleaved
// into a torn line.
func (n *NDJSON) ObserveSpan(s Span) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	enc, err := json.Marshal(s)
	if err != nil {
		n.err = err
		return
	}
	if _, err := n.bw.Write(append(enc, '\n')); err != nil {
		n.err = err
		return
	}
	n.count++
}

// Count reports the number of spans written so far.
func (n *NDJSON) Count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.count
}

// Flush drains the buffer to the underlying writer.
func (n *NDJSON) Flush() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return n.err
	}
	return n.bw.Flush()
}

// Close flushes and surfaces the first error encountered. It does not
// close the underlying writer (the caller owns the file handle).
func (n *NDJSON) Close() error { return n.Flush() }
