// Package obs is the repository's zero-dependency observability core:
// per-scenario execution spans, O(1)-memory latency histograms built on
// the streaming aggregators of internal/metrics, and a minimal
// Prometheus text-exposition writer. The sweep engine (pkg/blockadt)
// emits spans through the Tracer interface; consumers fan them into an
// NDJSON file for offline analysis (`btadt sweep -trace`), into
// Latencies for live p50/p95/p99 per phase, or both. Nothing here
// influences a simulation: spans measure wall-clock phases of scenario
// execution, never its virtual time, so tracing-enabled sweeps stay
// byte-identical to untraced ones.
package obs

// Span phase outcomes: how one scenario execution was satisfied.
const (
	// OutcomeSimulated — the scenario was actually simulated by this
	// execution (a cold cache miss, or the singleflight leader).
	OutcomeSimulated = "simulated"
	// OutcomeCacheHit — served from the content-addressed run store
	// without simulating (including the leader's in-flight double-check).
	OutcomeCacheHit = "cache-hit"
	// OutcomeCoalesced — satisfied by waiting on another concurrent
	// sweep's in-flight simulation of the identical scenario.
	OutcomeCoalesced = "coalesced"
	// OutcomeSkipped — abandoned without simulating because the sweep
	// was torn down first.
	OutcomeSkipped = "skipped"
)

// Span phase names, in execution order. A phase absent from a span's
// outcome (e.g. simulate on a cache hit) is recorded as zero and not
// folded into histograms.
const (
	PhaseQueue    = "queue"
	PhaseStoreGet = "store_get"
	PhaseSimulate = "simulate"
	PhaseStorePut = "store_put"
	PhaseTotal    = "total"
)

// Span is the record of one scenario execution inside a sweep: where
// the wall-clock time went, phase by phase. All durations are
// nanoseconds from the process's monotonic clock; StartNS is the offset
// of the execution's start from the owning sweep's start, so spans from
// one sweep order and align on a common timeline.
//
// Phase semantics by outcome:
//
//	simulated: Queue (sweep start → worker pickup), StoreGet (the miss
//	           probe, when a store is configured), Simulate (the real
//	           simulation), StorePut (persisting the result).
//	cache-hit: Queue, StoreGet (the read that served it).
//	coalesced: Queue, Simulate (the wait for the leader's result).
//	skipped:   Queue only.
type Span struct {
	// Index is the scenario's position in matrix-expansion order.
	Index int `json:"i"`
	// Key is the scenario's canonical key (Scenario.Key).
	Key string `json:"key"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Request tags the span with the submission it ran under (the serve
	// request ID); empty for CLI sweeps.
	Request string `json:"request,omitempty"`
	// StartNS is the execution's start, relative to the sweep's start.
	StartNS int64 `json:"startNs"`
	// QueueNS is the time from sweep start to worker pickup.
	QueueNS int64 `json:"queueNs"`
	// StoreGetNS is the time spent probing/reading the run store.
	StoreGetNS int64 `json:"storeGetNs,omitempty"`
	// SimulateNS is the simulation time (or, for a coalesced execution,
	// the time spent waiting on the leader's simulation).
	SimulateNS int64 `json:"simulateNs,omitempty"`
	// StorePutNS is the time spent persisting the result.
	StorePutNS int64 `json:"storePutNs,omitempty"`
	// TotalNS is the execution's full wall-clock span (excluding queue
	// wait): pickup → result.
	TotalNS int64 `json:"totalNs"`
}

// Phases yields the span's non-zero phases as (name, ns) pairs,
// including the queue wait and the total. It is the one place the
// span→histogram phase mapping lives.
func (s Span) Phases(yield func(phase string, ns int64)) {
	yield(PhaseQueue, s.QueueNS)
	if s.StoreGetNS > 0 {
		yield(PhaseStoreGet, s.StoreGetNS)
	}
	if s.SimulateNS > 0 {
		yield(PhaseSimulate, s.SimulateNS)
	}
	if s.StorePutNS > 0 {
		yield(PhaseStorePut, s.StorePutNS)
	}
	yield(PhaseTotal, s.TotalNS)
}

// Tracer receives completed scenario spans. Implementations must be
// safe for concurrent use: the sweep engine calls ObserveSpan from
// every worker goroutine.
type Tracer interface {
	ObserveSpan(Span)
}

// tagged stamps a request ID onto every span before forwarding.
type tagged struct {
	request string
	inner   Tracer
}

func (t tagged) ObserveSpan(s Span) {
	s.Request = t.request
	t.inner.ObserveSpan(s)
}

// Tagged wraps a tracer so every span it forwards carries the given
// request ID — how a serving layer ties engine spans back to the HTTP
// request that submitted them.
func Tagged(request string, inner Tracer) Tracer {
	return tagged{request: request, inner: inner}
}

// multi fans one span out to several tracers.
type multi []Tracer

func (m multi) ObserveSpan(s Span) {
	for _, t := range m {
		t.ObserveSpan(s)
	}
}

// Multi combines tracers into one; nil entries are dropped. Returns nil
// when nothing remains, so callers can keep the len==0 fast path.
func Multi(tracers ...Tracer) Tracer {
	var out multi
	for _, t := range tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
