package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func TestSpanPhases(t *testing.T) {
	s := Span{
		Outcome: OutcomeSimulated,
		QueueNS: 10, StoreGetNS: 20, SimulateNS: 30, StorePutNS: 40, TotalNS: 90,
	}
	got := map[string]int64{}
	s.Phases(func(phase string, ns int64) { got[phase] = ns })
	want := map[string]int64{
		PhaseQueue: 10, PhaseStoreGet: 20, PhaseSimulate: 30, PhaseStorePut: 40, PhaseTotal: 90,
	}
	if len(got) != len(want) {
		t.Fatalf("phases = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("phase %s = %d, want %d", k, got[k], v)
		}
	}
	// A cache hit has no simulate/put phases: they must not be yielded
	// as zeros, or histograms would count phantom observations.
	hit := Span{Outcome: OutcomeCacheHit, QueueNS: 5, StoreGetNS: 7, TotalNS: 7}
	count := 0
	hit.Phases(func(string, int64) { count++ })
	if count != 3 { // queue, store_get, total
		t.Fatalf("cache-hit span yielded %d phases, want 3", count)
	}
}

func TestTaggedAndMulti(t *testing.T) {
	var mu sync.Mutex
	var seen []Span
	sink := tracerFunc(func(s Span) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
	})
	tr := Multi(nil, Tagged("req-1", sink), sink)
	tr.ObserveSpan(Span{Index: 3, Outcome: OutcomeSimulated})
	if len(seen) != 2 {
		t.Fatalf("multi fanned out to %d tracers, want 2", len(seen))
	}
	if seen[0].Request != "req-1" {
		t.Fatalf("tagged span request = %q, want req-1", seen[0].Request)
	}
	if seen[1].Request != "" {
		t.Fatalf("untagged span request = %q, want empty", seen[1].Request)
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil (the engine's fast-path sentinel)")
	}
}

type tracerFunc func(Span)

func (f tracerFunc) ObserveSpan(s Span) { f(s) }

func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n := NewNDJSON(&buf)
	var wg sync.WaitGroup
	const spans = 100
	for i := 0; i < spans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n.ObserveSpan(Span{Index: i, Key: "k", Outcome: OutcomeSimulated, SimulateNS: int64(i), TotalNS: int64(i)})
		}(i)
	}
	wg.Wait()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Count() != spans {
		t.Fatalf("count = %d, want %d", n.Count(), spans)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	seen := map[int]bool{}
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", lines, err, sc.Text())
		}
		seen[s.Index] = true
		lines++
	}
	if lines != spans {
		t.Fatalf("wrote %d lines, want %d", lines, spans)
	}
	if len(seen) != spans {
		t.Fatalf("spans deduplicated or torn: %d distinct indices", len(seen))
	}
}

func TestLatenciesSnapshot(t *testing.T) {
	l := NewLatencies()
	for i := 1; i <= 100; i++ {
		l.ObserveSpan(Span{
			Outcome:    OutcomeSimulated,
			QueueNS:    int64(i),
			SimulateNS: int64(i) * 10,
			TotalNS:    int64(i) * 11,
		})
	}
	l.ObserveSpan(Span{Outcome: OutcomeCacheHit, QueueNS: 1, StoreGetNS: 2, TotalNS: 2})

	snaps := l.Snapshot()
	bySeries := map[string]LatencySummary{}
	for _, s := range snaps {
		bySeries[s.Phase+"/"+s.Outcome] = s
	}
	sim, ok := bySeries[PhaseSimulate+"/"+OutcomeSimulated]
	if !ok {
		t.Fatalf("no simulate/simulated series in %v", snaps)
	}
	if sim.Count != 100 {
		t.Fatalf("simulate count = %d, want 100", sim.Count)
	}
	if sim.P50NS < 400 || sim.P50NS > 600 {
		t.Fatalf("simulate p50 = %v, want ~500 (1..100 ×10)", sim.P50NS)
	}
	if sim.P99NS < 950 || sim.P99NS > 1000 {
		t.Fatalf("simulate p99 = %v, want ~990", sim.P99NS)
	}
	if sim.MaxNS != 1000 {
		t.Fatalf("simulate max = %v, want 1000", sim.MaxNS)
	}
	if hit := bySeries[PhaseStoreGet+"/"+OutcomeCacheHit]; hit.Count != 1 || hit.P50NS != 2 {
		t.Fatalf("cache-hit store_get series = %+v, want count 1 p50 2", hit)
	}
	// There must be no simulate series under the cache-hit outcome.
	if _, ok := bySeries[PhaseSimulate+"/"+OutcomeCacheHit]; ok {
		t.Fatal("cache-hit spans contributed a simulate phase")
	}
	// Snapshot ordering is stable.
	again := l.Snapshot()
	for i := range snaps {
		if snaps[i] != again[i] {
			t.Fatalf("snapshot order unstable at %d: %+v vs %+v", i, snaps[i], again[i])
		}
	}
}

// TestPromGolden pins the exposition format byte for byte: counters,
// gauges, labeled samples, escaping, and the latency summary family.
// Regenerate with -update after intentional format changes.
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Counter("btadt_scenarios_simulated_total", "Scenarios actually simulated.", 42)
	p.Gauge("btadt_inflight_sweeps", "Sweeps streaming right now.", 3)
	p.Header("btadt_work_shards", "gauge", "Shards by state.")
	p.Sample("btadt_work_shards", []Label{{"state", "pending"}}, 2)
	p.Sample("btadt_work_shards", []Label{{"state", "leased"}}, 1)
	p.Sample("btadt_work_shards", []Label{{"state", "done"}}, 7)
	p.Gauge("btadt_build_info", `Build metadata ("escaped\ok").`, 1,
		Label{"engine", `v3"quoted\slash`}, Label{"go", "go1.24"})
	p.Latencies("btadt_scenario_phase_seconds", "Per-phase scenario latency.", []LatencySummary{
		{Phase: PhaseSimulate, Outcome: OutcomeSimulated, Count: 100,
			SumNS: 55000, MeanNS: 550, MaxNS: 1000, P50NS: 500, P95NS: 950, P99NS: 990},
		{Phase: PhaseQueue, Outcome: OutcomeCacheHit, Count: 2,
			SumNS: 3e9, MeanNS: 1.5e9, MaxNS: 2e9, P50NS: 1e9, P95NS: 2e9, P99NS: 2e9},
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition format drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// Every non-comment line must parse as `name{labels} value` with a
	// float value — the shape any scrape parser requires.
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[idx+1:], "%g", &v); err != nil {
			t.Fatalf("sample %q has a non-numeric value: %v", line, err)
		}
	}
}
