package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prom writes the Prometheus text exposition format, version 0.0.4 —
// the `Accept: text/plain` face of /metricsz. It is deliberately tiny:
// HELP/TYPE headers, escaped labels, and Go-shortest float rendering
// are all a scrape parser needs, and keeping it here means no
// client-library dependency. The first write error sticks; check Err
// once at the end instead of per call.
type Prom struct {
	w   io.Writer
	err error
}

// NewProm returns a writer emitting to w. Serve it with content type
// PromContentType.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// PromContentType is the exposition format's content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair.
type Label struct{ Name, Value string }

// Err reports the first underlying write error.
func (p *Prom) Err() error { return p.err }

func (p *Prom) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the # HELP and # TYPE lines for a metric family. typ is
// one of "counter", "gauge", "summary", "untyped".
func (p *Prom) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line: name{labels} value.
func (p *Prom) Sample(name string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
	_, p.err = io.WriteString(p.w, sb.String())
}

// Counter emits a complete single-sample counter family.
func (p *Prom) Counter(name, help string, v float64, labels ...Label) {
	p.Header(name, "counter", help)
	p.Sample(name, labels, v)
}

// Gauge emits a complete single-sample gauge family.
func (p *Prom) Gauge(name, help string, v float64, labels ...Label) {
	p.Header(name, "gauge", help)
	p.Sample(name, labels, v)
}

// Latencies emits the histogram set as one summary family named name,
// with phase/outcome labels, quantile samples at .5/.95/.99, and the
// conventional _sum/_count series. Durations convert from the spans'
// nanoseconds to the exposition's base unit, seconds.
func (p *Prom) Latencies(name, help string, snaps []LatencySummary) {
	p.Header(name, "summary", help)
	const nsPerSec = 1e9
	for _, s := range snaps {
		base := []Label{{"phase", s.Phase}, {"outcome", s.Outcome}}
		for _, q := range []struct {
			probe string
			v     float64
		}{{"0.5", s.P50NS}, {"0.95", s.P95NS}, {"0.99", s.P99NS}} {
			p.Sample(name, append(base[:2:2], Label{"quantile", q.probe}), q.v/nsPerSec)
		}
		p.Sample(name+"_sum", base, s.SumNS/nsPerSec)
		p.Sample(name+"_count", base, float64(s.Count))
	}
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
