package oracle_test

import (
	"fmt"

	"blockadt/internal/oracle"
)

// Example walks the Figure 6 transition path: getToken pops the invoking
// merit's tape and consumeToken inserts the validated object into K[h].
func Example() {
	// Two merits: α0 always wins the tape draw, α1 never does.
	o := oracle.New(oracle.Config{K: 2, Merits: []float64{1, 0}, Seed: 42})

	tok, granted := o.GetToken(0, "obj1", "objK")
	fmt.Println("α0 granted:", granted)

	set, inserted, _ := o.ConsumeToken(tok)
	fmt.Println("inserted:", inserted, "K[obj1]:", set)

	_, granted = o.GetToken(1, "obj1", "objZ")
	fmt.Println("α1 granted:", granted)
	// Output:
	// α0 granted: true
	// inserted: true K[obj1]: [objK]
	// α1 granted: false
}

// ExampleOracle_ConsumeToken shows the frugal bound: the k+1-th
// consumption on the same object is refused but still returns K[h].
func ExampleOracle_ConsumeToken() {
	o := oracle.NewFrugal(1, 7, 1, 1)
	t1, _ := o.GetToken(0, "b0", "first")
	t2, _ := o.GetToken(1, "b0", "second")
	_, ok1, _ := o.ConsumeToken(t1)
	set, ok2, _ := o.ConsumeToken(t2)
	fmt.Println(ok1, ok2, set)
	// Output:
	// true false [first]
}

// ExampleTape shows the deterministic pseudorandom tape backing each merit.
func ExampleTape() {
	a := oracle.NewTape(1, 0, 0.5)
	b := oracle.NewTape(1, 0, 0.5)
	same := true
	for i := 0; i < 100; i++ {
		if a.Pop() != b.Pop() {
			same = false
		}
	}
	fmt.Println("tapes with identical parameters agree:", same)
	// Output:
	// tapes with identical parameters agree: true
}
