// Package oracle implements the token-oracle abstract data types Θ_P
// (prodigal) and Θ_F,k (frugal) of Section 3.2 of "Blockchain Abstract Data
// Type" (Anceaume et al.).
//
// The oracle abstracts the implementation-specific block-validation process
// (proof-of-work, committees, …): a process obtains the right to chain a new
// block b_ℓ to b_h by gaining a token tkn_h via getToken, and the block
// becomes appended when the token is consumed via consumeToken. The oracle
// is the only generator of valid blocks; it also owns the synchronization
// power that bounds forks: consumeToken inserts the object into the set K[h]
// only while |K[h]| < k. Θ_P is Θ_F with k = ∞ (Definition 3.6).
//
// Token grant probability follows the paper's merit tapes: for each merit αᵢ
// the oracle state embeds an infinite tape of pseudorandom {tkn, ⊥} cells;
// getToken pops the head cell of the invoker's tape and grants a token iff
// the cell contains tkn. Tapes are realized by the stateless PRF in
// internal/prng, so the abstract state (Figure 5) never needs to be
// materialized.
package oracle

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"blockadt/internal/history"
	"blockadt/internal/prng"
)

// ObjectID names an object (in the refinement: a block) tokens relate to.
type ObjectID = history.BlockRef

// Unbounded is the k value of the prodigal oracle Θ_P: no bound on the
// number of tokens consumed per object.
const Unbounded = 0

// Token is the right, granted by getToken, to chain a new object to the
// object named Object. Each token can be consumed at most once.
type Token struct {
	// ID is unique per granted token; 0 is never a valid id.
	ID uint64
	// Object is the object h the token tkn_h grants access to.
	Object ObjectID
	// Merit is the merit index αᵢ of the invoking process.
	Merit int
}

// Valid reports whether the token was actually granted.
func (t Token) Valid() bool { return t.ID != 0 }

// String renders the token as tkn<h>#<id>.
func (t Token) String() string {
	return fmt.Sprintf("tkn[%s]#%d", string(t.Object), t.ID)
}

// Errors returned by ConsumeToken.
var (
	// ErrTokenReused reports a second consumption of the same token; the
	// paper's tokens are consumed at most once.
	ErrTokenReused = errors.New("oracle: token already consumed")
	// ErrInvalidToken reports consumption of a token that was never
	// granted (tkn_h ∉ T).
	ErrInvalidToken = errors.New("oracle: token was not granted by this oracle")
)

// Config parameterizes an oracle.
type Config struct {
	// K bounds tokens consumed per object; Unbounded (0) gives Θ_P, any
	// positive value gives Θ_F,k.
	K int
	// Merits holds pα_i, the per-merit token probability of each tape.
	// The merit parameter abstracts e.g. hashing power (footnote 2).
	Merits []float64
	// Seed identifies the pseudorandom tape family (footnote 3).
	Seed uint64
}

// Oracle is a Θ-ADT instance. It is safe for concurrent use; getToken and
// consumeToken are individually atomic, matching the oracle-side
// synchronization the paper assumes (Section 4.4 observation).
type Oracle struct {
	mu sync.Mutex
	k  int
	// merits[i] = pα_i.
	merits []float64
	seed   uint64
	// tapePos[i] is the number of cells popped from tape αᵢ.
	tapePos []uint64
	// consumed[h] is K[h]: the objects whose token on h was consumed.
	consumed map[ObjectID][]ObjectID
	// granted tracks outstanding token ids → (object, consumed?).
	granted map[uint64]*grant
	nextID  uint64
	// stats
	getCalls     uint64
	grants       uint64
	consumeCalls uint64
	consumeOK    uint64
}

type grant struct {
	object   ObjectID
	proposed ObjectID
	consumed bool
}

// New returns an oracle with the given configuration. A nil or empty merit
// list defaults to a single merit with probability 1 (every getToken
// succeeds), the convenient setting for shared-memory experiments.
func New(cfg Config) *Oracle {
	merits := cfg.Merits
	if len(merits) == 0 {
		merits = []float64{1}
	}
	return &Oracle{
		k:        cfg.K,
		merits:   append([]float64(nil), merits...),
		seed:     cfg.Seed,
		tapePos:  make([]uint64, len(merits)),
		consumed: map[ObjectID][]ObjectID{},
		granted:  map[uint64]*grant{},
	}
}

// NewProdigal returns Θ_P with the given merits.
func NewProdigal(seed uint64, merits ...float64) *Oracle {
	return New(Config{K: Unbounded, Merits: merits, Seed: seed})
}

// NewFrugal returns Θ_F,k with the given merits.
func NewFrugal(k int, seed uint64, merits ...float64) *Oracle {
	if k < 1 {
		panic("oracle: frugal oracle requires k >= 1")
	}
	return New(Config{K: k, Merits: merits, Seed: seed})
}

// K returns the fork bound (Unbounded for Θ_P).
func (o *Oracle) K() int { return o.k }

// IsProdigal reports whether the oracle is Θ_P.
func (o *Oracle) IsProdigal() bool { return o.k == Unbounded }

// Name returns "Θ_P" or "Θ_F,k=<k>".
func (o *Oracle) Name() string {
	if o.IsProdigal() {
		return "Θ_P"
	}
	return fmt.Sprintf("Θ_F,k=%d", o.k)
}

// Merits returns the number of merit tapes.
func (o *Oracle) Merits() int { return len(o.merits) }

// GetToken implements getToken(obj_h, obj_ℓ) for the process with the given
// merit index: it pops the head cell of tape α_merit and, when the cell
// contains tkn, grants a token for object h, thereby validating the
// proposed object ℓ (the returned token makes obj_ℓ^tkn_h ∈ O′). The second
// return value is false when the cell contained ⊥.
func (o *Oracle) GetToken(merit int, h, l ObjectID) (Token, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if merit < 0 || merit >= len(o.merits) {
		return Token{}, false
	}
	o.getCalls++
	pos := o.tapePos[merit]
	o.tapePos[merit]++
	cell := prng.Cell(o.seed, merit, pos)
	if !prng.Bernoulli(cell, o.merits[merit]) {
		return Token{}, false
	}
	o.nextID++
	tok := Token{ID: o.nextID, Object: h, Merit: merit}
	o.granted[tok.ID] = &grant{object: h, proposed: l}
	o.grants++
	return tok, true
}

// ConsumeToken implements consumeToken(obj_ℓ^tkn_h): it inserts the
// validated object into K[h] as long as |K[h]| < k, and in every case
// returns the contents of K[h] (the paper's get(K, h)). The boolean result
// reports whether this call's object was inserted. Consuming a token twice
// or consuming a token the oracle never granted returns an error.
func (o *Oracle) ConsumeToken(tok Token) ([]ObjectID, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.consumeCalls++
	g, ok := o.granted[tok.ID]
	if !ok || g.object != tok.Object {
		return o.setCopy(tok.Object), false, ErrInvalidToken
	}
	if g.consumed {
		return o.setCopy(tok.Object), false, ErrTokenReused
	}
	g.consumed = true
	set := o.consumed[tok.Object]
	if o.k != Unbounded && len(set) >= o.k {
		return o.setCopy(tok.Object), false, nil
	}
	o.consumed[tok.Object] = append(set, g.proposed)
	o.consumeOK++
	return o.setCopy(tok.Object), true, nil
}

func (o *Oracle) setCopy(h ObjectID) []ObjectID {
	set := o.consumed[h]
	out := make([]ObjectID, len(set))
	copy(out, set)
	return out
}

// ConsumedSet returns K[h].
func (o *Oracle) ConsumedSet(h ObjectID) []ObjectID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.setCopy(h)
}

// Objects returns the object ids with a non-empty consumed set, sorted.
func (o *Oracle) Objects() []ObjectID {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]ObjectID, 0, len(o.consumed))
	for h := range o.consumed {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats reports the oracle's operation counters.
type Stats struct {
	GetCalls     uint64
	Grants       uint64
	ConsumeCalls uint64
	ConsumeOK    uint64
}

// Stats returns a snapshot of the counters.
func (o *Oracle) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Stats{GetCalls: o.getCalls, Grants: o.grants, ConsumeCalls: o.consumeCalls, ConsumeOK: o.consumeOK}
}

// KForkCoherent reports whether every consumed set respects the bound k
// (Definition 3.9 / Theorem 3.2): at most k objects consumed per token
// target. It always holds for Θ_P.
func (o *Oracle) KForkCoherent() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.k == Unbounded {
		return true
	}
	for _, set := range o.consumed {
		if len(set) > o.k {
			return false
		}
	}
	return true
}
