package oracle

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func grantingOracle(k int) *Oracle {
	// Probability-1 merit: every getToken grants.
	return New(Config{K: k, Merits: []float64{1, 1, 1, 1}, Seed: 7})
}

func TestGetTokenAlwaysGrantsAtP1(t *testing.T) {
	o := grantingOracle(1)
	tok, ok := o.GetToken(0, "b0", "b1")
	if !ok || !tok.Valid() {
		t.Fatal("p=1 tape must grant")
	}
	if tok.Object != "b0" || tok.Merit != 0 {
		t.Fatalf("token = %+v", tok)
	}
}

func TestGetTokenNeverGrantsAtP0(t *testing.T) {
	o := New(Config{K: 1, Merits: []float64{0}, Seed: 7})
	for i := 0; i < 100; i++ {
		if _, ok := o.GetToken(0, "b0", "b1"); ok {
			t.Fatal("p=0 tape granted a token")
		}
	}
}

func TestGetTokenUnknownMerit(t *testing.T) {
	o := grantingOracle(1)
	if _, ok := o.GetToken(99, "b0", "b1"); ok {
		t.Fatal("unknown merit granted")
	}
	if _, ok := o.GetToken(-1, "b0", "b1"); ok {
		t.Fatal("negative merit granted")
	}
}

func TestConsumeFrugalK1(t *testing.T) {
	o := grantingOracle(1)
	t1, _ := o.GetToken(0, "b0", "x")
	t2, _ := o.GetToken(1, "b0", "y")

	set, ok, err := o.ConsumeToken(t1)
	if err != nil || !ok {
		t.Fatalf("first consume: ok=%v err=%v", ok, err)
	}
	if len(set) != 1 || set[0] != "x" {
		t.Fatalf("set = %v", set)
	}
	// Second consume on the same object must be refused but return the
	// set (the paper's get(K, h) in every case).
	set, ok, err = o.ConsumeToken(t2)
	if err != nil {
		t.Fatalf("second consume err: %v", err)
	}
	if ok {
		t.Fatal("k=1 allowed a second consumption")
	}
	if len(set) != 1 || set[0] != "x" {
		t.Fatalf("set after refusal = %v", set)
	}
}

func TestConsumeFrugalKN(t *testing.T) {
	const k = 3
	o := grantingOracle(k)
	inserted := 0
	for i := 0; i < 6; i++ {
		tok, _ := o.GetToken(i%4, "b0", ObjectID(rune('a'+i)))
		_, ok, err := o.ConsumeToken(tok)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			inserted++
		}
	}
	if inserted != k {
		t.Fatalf("inserted = %d, want %d", inserted, k)
	}
	if got := len(o.ConsumedSet("b0")); got != k {
		t.Fatalf("|K[b0]| = %d, want %d", got, k)
	}
}

func TestConsumeProdigalUnbounded(t *testing.T) {
	o := New(Config{K: Unbounded, Merits: []float64{1}, Seed: 1})
	for i := 0; i < 50; i++ {
		tok, _ := o.GetToken(0, "b0", ObjectID(rune('a'+i%26))+ObjectID(rune('a'+i/26)))
		if _, ok, err := o.ConsumeToken(tok); err != nil || !ok {
			t.Fatalf("prodigal refused consumption %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := len(o.ConsumedSet("b0")); got != 50 {
		t.Fatalf("|K[b0]| = %d, want 50", got)
	}
	if !o.IsProdigal() {
		t.Fatal("IsProdigal")
	}
}

func TestTokenReuseRejected(t *testing.T) {
	o := grantingOracle(2)
	tok, _ := o.GetToken(0, "b0", "x")
	if _, _, err := o.ConsumeToken(tok); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := o.ConsumeToken(tok); !errors.Is(err, ErrTokenReused) || ok {
		t.Fatalf("token reuse: ok=%v err=%v", ok, err)
	}
}

func TestInvalidTokenRejected(t *testing.T) {
	o := grantingOracle(2)
	if _, ok, err := o.ConsumeToken(Token{ID: 999, Object: "b0"}); !errors.Is(err, ErrInvalidToken) || ok {
		t.Fatalf("forged token: ok=%v err=%v", ok, err)
	}
	// A token replayed against a different object is also invalid.
	tok, _ := o.GetToken(0, "b0", "x")
	tok.Object = "elsewhere"
	if _, ok, err := o.ConsumeToken(tok); !errors.Is(err, ErrInvalidToken) || ok {
		t.Fatalf("re-targeted token: ok=%v err=%v", ok, err)
	}
}

func TestGrantRateMatchesMerit(t *testing.T) {
	p := 0.2
	o := New(Config{K: Unbounded, Merits: []float64{p}, Seed: 11})
	const n = 50000
	grants := 0
	for i := 0; i < n; i++ {
		if _, ok := o.GetToken(0, "b0", "c"); ok {
			grants++
		}
	}
	got := float64(grants) / n
	if math.Abs(got-p) > 5*math.Sqrt(p*(1-p)/n) {
		t.Fatalf("grant rate %v, want ~%v", got, p)
	}
}

func TestNameAndK(t *testing.T) {
	if got := NewProdigal(0, 1).Name(); got != "Θ_P" {
		t.Fatalf("name = %s", got)
	}
	if got := NewFrugal(3, 0, 1).Name(); got != "Θ_F,k=3" {
		t.Fatalf("name = %s", got)
	}
	if NewFrugal(2, 0, 1).K() != 2 {
		t.Fatal("K()")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewFrugal(0) must panic")
		}
	}()
	NewFrugal(0, 0, 1)
}

func TestDefaultMerits(t *testing.T) {
	o := New(Config{K: 1})
	if o.Merits() != 1 {
		t.Fatalf("default merits = %d", o.Merits())
	}
	if _, ok := o.GetToken(0, "b0", "x"); !ok {
		t.Fatal("default merit must grant (p=1)")
	}
}

func TestStatsCounters(t *testing.T) {
	o := grantingOracle(1)
	t1, _ := o.GetToken(0, "b0", "x")
	t2, _ := o.GetToken(1, "b0", "y")
	o.ConsumeToken(t1)
	o.ConsumeToken(t2)
	s := o.Stats()
	if s.GetCalls != 2 || s.Grants != 2 || s.ConsumeCalls != 2 || s.ConsumeOK != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestObjectsSorted(t *testing.T) {
	o := grantingOracle(1)
	for _, h := range []ObjectID{"z", "a", "m"} {
		tok, _ := o.GetToken(0, h, h+"-child")
		o.ConsumeToken(tok)
	}
	objs := o.Objects()
	if len(objs) != 3 || objs[0] != "a" || objs[2] != "z" {
		t.Fatalf("objects = %v", objs)
	}
}

// TestTheorem32KForkCoherence is the executable Theorem 3.2: every
// concurrent history of the BT-ADT composed with Θ_F,k satisfies k-Fork
// Coherence — at most k consumptions succeed per object — under arbitrary
// concurrent schedules.
func TestTheorem32KForkCoherence(t *testing.T) {
	for _, k := range []int{1, 2, 5} {
		o := New(Config{K: k, Merits: []float64{1, 1, 1, 1, 1, 1, 1, 1}, Seed: 3})
		var wg sync.WaitGroup
		for p := 0; p < 8; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					obj := ObjectID(rune('a' + i%5))
					tok, ok := o.GetToken(p, obj, ObjectID(rune('A'+p))+obj)
					if !ok {
						continue
					}
					o.ConsumeToken(tok)
				}
			}(p)
		}
		wg.Wait()
		if !o.KForkCoherent() {
			t.Fatalf("k=%d: K-fork coherence violated", k)
		}
		for _, h := range o.Objects() {
			if got := len(o.ConsumedSet(h)); got > k {
				t.Fatalf("k=%d: |K[%s]| = %d", k, h, got)
			}
		}
	}
}

// TestProperty_FrugalNeverExceedsK: random interleavings of get/consume
// never push a consumed set past k (quick-checked Theorem 3.2).
func TestProperty_FrugalNeverExceedsK(t *testing.T) {
	f := func(seed uint64, kRaw, ops uint8) bool {
		k := int(kRaw%4) + 1
		o := New(Config{K: k, Merits: []float64{1, 1}, Seed: seed})
		var pendingTokens []Token
		for i := 0; i < int(ops); i++ {
			switch {
			case i%3 == 0 && len(pendingTokens) > 0:
				tok := pendingTokens[0]
				pendingTokens = pendingTokens[1:]
				o.ConsumeToken(tok)
			default:
				obj := ObjectID(rune('a' + i%3))
				if tok, ok := o.GetToken(i%2, obj, ObjectID(rune('A'+i%26))); ok {
					pendingTokens = append(pendingTokens, tok)
				}
			}
		}
		return o.KForkCoherent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
