package oracle

import "blockadt/internal/prng"

// Tape is the per-merit infinite pseudorandom tape of Figure 5, exposed for
// direct inspection in tests and experiments. Cells hold tkn with
// probability pα and ⊥ otherwise; the sequence is a pure function of
// (seed, merit), so two tapes with the same parameters are identical and
// tapes with different merits are independent.
type Tape struct {
	seed  uint64
	merit int
	p     float64
	pos   uint64
}

// NewTape returns the tape for the given merit index with probability p in
// the tape family identified by seed.
func NewTape(seed uint64, merit int, p float64) *Tape {
	return &Tape{seed: seed, merit: merit, p: p}
}

// Head reports whether the current head cell contains tkn (the paper's
// head(tape) = tkn test) without consuming it.
func (t *Tape) Head() bool {
	return prng.Bernoulli(prng.Cell(t.seed, t.merit, t.pos), t.p)
}

// Pop consumes the head cell and reports whether it contained tkn.
func (t *Tape) Pop() bool {
	v := t.Head()
	t.pos++
	return v
}

// Pos returns the number of cells popped so far.
func (t *Tape) Pos() uint64 { return t.pos }

// At reports the content of cell i without moving the head.
func (t *Tape) At(i uint64) bool {
	return prng.Bernoulli(prng.Cell(t.seed, t.merit, i), t.p)
}

// Probability returns pα.
func (t *Tape) Probability() float64 { return t.p }
