package oracle

import (
	"math"
	"testing"
)

func TestTapeDeterministicReplay(t *testing.T) {
	a := NewTape(9, 0, 0.3)
	b := NewTape(9, 0, 0.3)
	for i := 0; i < 200; i++ {
		if a.Pop() != b.Pop() {
			t.Fatal("identical tapes diverged")
		}
	}
	if a.Pos() != 200 {
		t.Fatalf("pos = %d", a.Pos())
	}
}

func TestTapeHeadDoesNotConsume(t *testing.T) {
	tp := NewTape(9, 1, 0.5)
	h1 := tp.Head()
	h2 := tp.Head()
	if h1 != h2 {
		t.Fatal("Head consumed the cell")
	}
	if tp.Pop() != h1 {
		t.Fatal("Pop disagrees with Head")
	}
}

func TestTapeAtRandomAccess(t *testing.T) {
	tp := NewTape(5, 2, 0.4)
	// At must agree with sequential Pop.
	vals := make([]bool, 50)
	for i := range vals {
		vals[i] = tp.At(uint64(i))
	}
	for i := range vals {
		if tp.Pop() != vals[i] {
			t.Fatalf("At(%d) disagrees with Pop", i)
		}
	}
}

func TestTapeFrequency(t *testing.T) {
	p := 0.25
	tp := NewTape(123, 0, p)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if tp.Pop() {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 5*math.Sqrt(p*(1-p)/n) {
		t.Fatalf("tape frequency %v, want ~%v", got, p)
	}
	if tp.Probability() != p {
		t.Fatal("Probability()")
	}
}

func TestTapesDifferAcrossMeritsAndSeeds(t *testing.T) {
	base := NewTape(1, 0, 0.5)
	otherMerit := NewTape(1, 1, 0.5)
	otherSeed := NewTape(2, 0, 0.5)
	agreeM, agreeS := 0, 0
	for i := uint64(0); i < 200; i++ {
		if base.At(i) == otherMerit.At(i) {
			agreeM++
		}
		if base.At(i) == otherSeed.At(i) {
			agreeS++
		}
	}
	// ~50% agreement expected for independent fair tapes.
	if agreeM > 140 || agreeM < 60 {
		t.Fatalf("merit tapes suspiciously correlated: %d/200", agreeM)
	}
	if agreeS > 140 || agreeS < 60 {
		t.Fatalf("seed tapes suspiciously correlated: %d/200", agreeS)
	}
}

// TestFig6OraclePath replays Figure 6's transition path: a getToken that
// pops a tkn cell and returns a valid object, followed by a consumeToken
// that inserts it into K[1] (|K[1]| < k).
func TestFig6OraclePath(t *testing.T) {
	o := New(Config{K: 2, Merits: []float64{1, 0}, Seed: 42})
	// ξ0 → ξ1: getToken(obj1, objk) pops tape α1 and grants.
	tok, ok := o.GetToken(0, "obj1", "objk")
	if !ok {
		t.Fatal("Figure 6 getToken must grant (tape α1 head = tkn)")
	}
	// ξ1 → ξ2: consumeToken(obj_k^tkn1) inserts into K[1].
	set, inserted, err := o.ConsumeToken(tok)
	if err != nil || !inserted {
		t.Fatalf("consume: inserted=%v err=%v", inserted, err)
	}
	if len(set) != 1 || set[0] != "objk" {
		t.Fatalf("K[1] = %v, want {objk}", set)
	}
	// The α2 tape (p=0) never grants: its cells are all ⊥.
	if _, ok := o.GetToken(1, "obj1", "objz"); ok {
		t.Fatal("tape α2 with p=0 granted")
	}
}
