// Package parallel provides the bounded fork-join pool shared by every
// fan-out driver in the reproduction (the Table 1 classifier, the
// experiment runner, the fairness seed sweeps and the scenario-matrix
// engine in pkg/blockadt).
//
// The contract every caller relies on: Map preserves input order in its
// output, runs each item exactly once, and shares nothing between items —
// so for pure per-item work the result is bit-identical regardless of the
// worker count or the goroutine schedule. Determinism therefore reduces to
// the per-item function being deterministic, which the simulators
// guarantee by deriving an independent prng stream per item.
package parallel

import (
	"runtime"
	"sync"
)

// Workers clamps a requested parallelism: values < 1 select NumCPU.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.NumCPU()
	}
	return requested
}

// Map applies fn to every item using at most workers concurrent
// goroutines and returns the results in input order. fn receives the
// item's index and value. workers < 1 selects NumCPU. With exactly
// workers == 1 (or a single item) the items run sequentially on the
// calling goroutine (no spawn), which keeps single-threaded callers
// allocation-light and trivially race-free.
func Map[T, R any](items []T, workers int, fn func(int, T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i, items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// ForEach is Map for side-effecting work without results.
func ForEach[T any](items []T, workers int, fn func(int, T)) {
	Map(items, workers, func(i int, it T) struct{} {
		fn(i, it)
		return struct{}{}
	})
}
