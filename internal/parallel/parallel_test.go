package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, runtime.NumCPU(), 0} {
		got := Map(items, workers, func(_ int, v int) int { return v * v })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEachItemOnce(t *testing.T) {
	const n = 500
	var calls [n]int64
	items := make([]int, n)
	Map(items, 8, func(i int, _ int) struct{} {
		atomic.AddInt64(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int64
	items := make([]int, 64)
	Map(items, workers, func(int, int) struct{} {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		atomic.AddInt64(&cur, -1)
		return struct{}{}
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent workers, limit %d", peak, workers)
	}
}

func TestMapEmptyAndWorkersClamp(t *testing.T) {
	if got := Map(nil, 4, func(int, int) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty input returned %d results", len(got))
	}
	if w := Workers(0); w != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU", w)
	}
	if w := Workers(3); w != 3 {
		t.Fatalf("Workers(3) = %d", w)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach([]int{1, 2, 3, 4}, 2, func(_ int, v int) { atomic.AddInt64(&sum, int64(v)) })
	if sum != 10 {
		t.Fatalf("sum = %d", sum)
	}
}
