package parallel

import (
	"context"
	"iter"
)

// Stream applies fn to every item using at most workers concurrent
// goroutines and yields the results in input order as they become
// available. Unlike Map it never materializes the full result slice:
// at most ~2×workers results exist at once (in-flight plus reorder
// buffer), so arbitrarily long inputs stream in bounded memory.
//
// The ordering and exactly-once contracts match Map, so for pure per-item
// work the yielded sequence is bit-identical to Map's output at any worker
// count. Cancelling the context or breaking out of the iteration stops
// new items from being scheduled; items already dispatched finish on
// their workers (their goroutines exit once done — nothing leaks, and
// buffered slots mean no worker ever blocks on an abandoned consumer).
func Stream[T, R any](ctx context.Context, items []T, workers int, fn func(int, T) R) iter.Seq2[int, R] {
	return func(yield func(int, R) bool) {
		if len(items) == 0 {
			return
		}
		workers = Workers(workers)
		if workers > len(items) {
			workers = len(items)
		}
		if workers == 1 {
			for i, it := range items {
				if ctx.Err() != nil || !yield(i, fn(i, it)) {
					return
				}
			}
			return
		}

		// Window-gated ordered fan-out: the dispatcher admits at most
		// `window` items past the last yielded index, each worker writes
		// its result into a 1-buffered ring slot (never blocking), and
		// the consumer drains slots strictly in index order. The gate
		// guarantees index i is fully yielded before index i+window is
		// admitted, so at most `window` consecutive indices are ever in
		// flight — they map to distinct ring positions, making slot
		// reuse safe and the allocation O(workers), not O(items).
		window := 2 * workers
		slots := make([]chan R, window)
		for i := range slots {
			slots[i] = make(chan R, 1)
		}
		gate := make(chan struct{}, window)
		jobs := make(chan int)
		done := make(chan struct{})
		defer close(done)

		go func() {
			defer close(jobs)
			for i := range items {
				select {
				case gate <- struct{}{}:
				case <-done:
					return
				}
				select {
				case jobs <- i:
				case <-done:
					return
				}
			}
		}()
		for w := 0; w < workers; w++ {
			go func() {
				for i := range jobs {
					slots[i%window] <- fn(i, items[i])
				}
			}()
		}
		for i := range items {
			var r R
			select {
			case r = <-slots[i%window]:
			case <-ctx.Done():
				return
			}
			if !yield(i, r) {
				return
			}
			<-gate
		}
	}
}
