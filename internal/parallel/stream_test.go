package parallel

import (
	"context"
	"testing"
	"time"
)

// TestStreamMatchesMap pins the ordering and exactly-once contract: the
// streamed sequence equals Map's output at any worker count.
func TestStreamMatchesMap(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	square := func(_ int, v int) int { return v * v }
	want := Map(items, 1, square)
	for _, workers := range []int{1, 3, 16, 200} {
		var gotIdx, n int
		for i, r := range Stream(context.Background(), items, workers, square) {
			if i != gotIdx {
				t.Fatalf("workers=%d: yielded index %d, want %d (order broken)", workers, i, gotIdx)
			}
			if r != want[i] {
				t.Fatalf("workers=%d: item %d yielded %d, want %d", workers, i, r, want[i])
			}
			gotIdx++
			n++
		}
		if n != len(items) {
			t.Fatalf("workers=%d: yielded %d results, want %d", workers, n, len(items))
		}
	}
}

// TestStreamEarlyBreak verifies breaking out of the iteration returns
// promptly (no deadlock on the gate/jobs channels).
func TestStreamEarlyBreak(t *testing.T) {
	items := make([]int, 1000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for range Stream(context.Background(), items, 4, func(i int, _ int) int { return i }) {
			n++
			if n == 5 {
				break
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("early break deadlocked")
	}
}

// TestStreamCancellation verifies a cancelled context stops the sequence.
func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := make([]int, 1000)
	n := 0
	for range Stream(ctx, items, 4, func(i int, _ int) int { return i }) {
		n++
		if n == 10 {
			cancel()
		}
	}
	if n >= len(items) {
		t.Fatal("cancellation did not stop the stream")
	}
}

// TestStreamEmpty covers the zero-item edge.
func TestStreamEmpty(t *testing.T) {
	for range Stream(context.Background(), nil, 4, func(int, int) int { return 0 }) {
		t.Fatal("empty input yielded a result")
	}
}
