// Package pbft implements a PBFT-style Byzantine-tolerant consensus over
// the netsim message-passing substrate — the concrete agreement protocol
// behind the frugal k=1 oracle of the consensus-based systems in Table 1
// (ByzCoin and PeerCensus commit keyblocks "by a variant of PBFT [10]";
// Red Belly and Hyperledger run a Byzantine consensus / ordering service).
//
// The protocol is the classic three-phase pattern per instance (one
// instance per decision slot):
//
//	pre-prepare  the view's leader proposes a value;
//	prepare      every replica echoes the first leader proposal it sees;
//	             2f+1 matching prepares lock the (view, value) pair;
//	commit       replicas broadcast commit after preparing; 2f+1 matching
//	             commits decide the value.
//
// View changes are timeout-driven: a replica that has not decided by the
// view deadline moves to view v+1, whose leader is (slot+v+1) mod n, and
// the new leader proposes its own candidate (a prepared value is
// re-proposed, preserving agreement across views). With n ≥ 3f+1 and the
// synchronous/weakly-synchronous channels of Section 4.2, every correct
// replica decides the same value, and Byzantine leaders cannot cause
// conflicting decisions: two quorums of 2f+1 intersect in a correct
// replica, which prepares at most one value per view.
//
// This package exists to show the "consumeToken = Byzantine commit"
// abstraction of internal/chains discharging to a real protocol: the
// chains tests verify that a chain committed through pbft yields the same
// strongly consistent histories as one committed through Θ_F,k=1.
package pbft

import (
	"fmt"
	"sort"

	"blockadt/internal/history"
	"blockadt/internal/netsim"
)

// Value is a proposed/decided opaque value (block ids in this repository).
type Value = string

// Message kinds exchanged by replicas.
const (
	MsgPrePrepare = "pbft/pre-prepare"
	MsgPrepare    = "pbft/prepare"
	MsgCommit     = "pbft/commit"
)

// payload is the wire content of every PBFT message.
type payload struct {
	Slot  int
	View  int
	Value Value
}

// Config parameterizes a replica group.
type Config struct {
	// N is the number of replicas; tolerance is f = (N-1)/3.
	N int
	// ViewTimeout is the virtual-time budget of one view before a
	// replica moves on (default 8·Delta is sensible).
	ViewTimeout int64
	// OnDecide is called exactly once per slot at each correct replica.
	OnDecide func(r *Replica, slot int, v Value)
}

// Quorum returns the 2f+1 quorum size.
func (c Config) Quorum() int {
	f := (c.N - 1) / 3
	return 2*f + 1
}

// Replica is one PBFT participant. Register it as the netsim handler for
// its process (or embed it and forward OnMessage/OnTimer).
type Replica struct {
	id    history.ProcID
	cfg   Config
	slots map[int]*slotState
	// proposals[slot] is this replica's own candidate, used when it
	// becomes leader.
	proposals map[int]Value
	// Decisions records the decided value per slot.
	Decisions map[int]Value
}

type slotState struct {
	view     int
	proposed bool
	// preprepared[view] = value received from that view's leader.
	preprepared map[int]Value
	// prepares[view][value] = set of replicas that prepared it.
	prepares map[int]map[Value]map[history.ProcID]bool
	commits  map[int]map[Value]map[history.ProcID]bool
	// prepared, if non-empty, is the value this replica locked.
	prepared     Value
	preparedView int
	sentPrepare  map[int]bool
	sentCommit   map[int]bool
	decided      bool
	deadline     int64
}

// NewReplica returns a PBFT replica for process id.
func NewReplica(id history.ProcID, cfg Config) *Replica {
	if cfg.ViewTimeout <= 0 {
		cfg.ViewTimeout = 64
	}
	return &Replica{
		id:        id,
		cfg:       cfg,
		slots:     map[int]*slotState{},
		proposals: map[int]Value{},
		Decisions: map[int]Value{},
	}
}

// ID returns the replica's process id.
func (r *Replica) ID() history.ProcID { return r.id }

func (r *Replica) slot(s int) *slotState {
	st, ok := r.slots[s]
	if !ok {
		st = &slotState{
			preprepared: map[int]Value{},
			prepares:    map[int]map[Value]map[history.ProcID]bool{},
			commits:     map[int]map[Value]map[history.ProcID]bool{},
			sentPrepare: map[int]bool{},
			sentCommit:  map[int]bool{},
		}
		r.slots[s] = st
	}
	return st
}

// Leader returns the leader of (slot, view): (slot+view) mod n — a
// deterministic rotation every replica computes locally.
func (r *Replica) Leader(slot, view int) history.ProcID {
	return history.ProcID((slot + view) % r.cfg.N)
}

// Propose submits this replica's candidate for the slot and starts the
// protocol at this replica (arming the view timer; broadcasting the
// pre-prepare if it is the view-0 leader).
func (r *Replica) Propose(s *netsim.Sim, slot int, v Value) {
	r.proposals[slot] = v
	st := r.slot(slot)
	if st.decided {
		return
	}
	r.armTimer(s, slot, st)
	if r.Leader(slot, st.view) == r.id && !st.proposed && v != "" {
		st.proposed = true
		r.broadcast(s, MsgPrePrepare, slot, st.view, v)
	}
}

func (r *Replica) armTimer(s *netsim.Sim, slot int, st *slotState) {
	st.deadline = s.Now() + r.cfg.ViewTimeout
	s.TimerAt(r.id, st.deadline, fmt.Sprintf("pbft/%d/%d", slot, st.view))
}

func (r *Replica) broadcast(s *netsim.Sim, kind string, slot, view int, v Value) {
	s.Broadcast(r.id, netsim.Message{
		Kind:    kind,
		Round:   slot,
		Payload: payload{Slot: slot, View: view, Value: v},
	})
}

// OnMessage implements the netsim handler protocol for PBFT traffic;
// non-PBFT messages are ignored so Replica can share a process with other
// protocol layers.
func (r *Replica) OnMessage(s *netsim.Sim, m netsim.Message) {
	p, ok := m.Payload.(payload)
	if !ok {
		return
	}
	st := r.slot(p.Slot)
	if st.decided {
		return
	}
	switch m.Kind {
	case MsgPrePrepare:
		// Accept only from the leader of the claimed view, once.
		if m.From != r.Leader(p.Slot, p.View) {
			return
		}
		if _, dup := st.preprepared[p.View]; dup {
			return
		}
		st.preprepared[p.View] = p.Value
		// Prepare for the current view only; a locked replica echoes
		// its lock instead of the leader's value (agreement across
		// views).
		if p.View == st.view && !st.sentPrepare[p.View] {
			v := p.Value
			if st.prepared != "" {
				v = st.prepared
			}
			st.sentPrepare[p.View] = true
			r.broadcast(s, MsgPrepare, p.Slot, p.View, v)
		}
	case MsgPrepare:
		set := bucket(st.prepares, p.View, p.Value)
		set[m.From] = true
		if len(set) >= r.cfg.Quorum() && !st.sentCommit[p.View] {
			st.prepared = p.Value
			st.preparedView = p.View
			st.sentCommit[p.View] = true
			r.broadcast(s, MsgCommit, p.Slot, p.View, p.Value)
		}
	case MsgCommit:
		set := bucket(st.commits, p.View, p.Value)
		set[m.From] = true
		if len(set) >= r.cfg.Quorum() {
			st.decided = true
			r.Decisions[p.Slot] = p.Value
			if r.cfg.OnDecide != nil {
				r.cfg.OnDecide(r, p.Slot, p.Value)
			}
		}
	}
}

func bucket(m map[int]map[Value]map[history.ProcID]bool, view int, v Value) map[history.ProcID]bool {
	byVal, ok := m[view]
	if !ok {
		byVal = map[Value]map[history.ProcID]bool{}
		m[view] = byVal
	}
	set, ok := byVal[v]
	if !ok {
		set = map[history.ProcID]bool{}
		byVal[v] = set
	}
	return set
}

// OnTimer drives view changes: if the slot's deadline passed without a
// decision, move to the next view; the new leader proposes (its lock, or
// its own candidate).
func (r *Replica) OnTimer(s *netsim.Sim, tag string) {
	var slot, view int
	if _, err := fmt.Sscanf(tag, "pbft/%d/%d", &slot, &view); err != nil {
		return
	}
	st := r.slot(slot)
	if st.decided || view != st.view || s.Now() < st.deadline {
		return
	}
	st.view++
	r.armTimer(s, slot, st)
	if r.Leader(slot, st.view) == r.id {
		v := st.prepared
		if v == "" {
			v = r.proposals[slot]
		}
		if v == "" {
			return // nothing to propose yet; a later Propose will retry
		}
		r.broadcast(s, MsgPrePrepare, slot, st.view, v)
	}
	// Re-prepare in the new view if a pre-prepare already arrived.
	if v, ok := st.preprepared[st.view]; ok && !st.sentPrepare[st.view] {
		if st.prepared != "" {
			v = st.prepared
		}
		st.sentPrepare[st.view] = true
		r.broadcast(s, MsgPrepare, slot, st.view, v)
	}
}

// Decided returns the decided value for the slot, if any.
func (r *Replica) Decided(slot int) (Value, bool) {
	v, ok := r.Decisions[slot]
	return v, ok
}

// DecidedSlots returns the decided slots in ascending order.
func (r *Replica) DecidedSlots() []int {
	out := make([]int, 0, len(r.Decisions))
	for s := range r.Decisions {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
