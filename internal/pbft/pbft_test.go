package pbft

import (
	"fmt"
	"testing"

	"blockadt/internal/history"
	"blockadt/internal/netsim"
)

// group wires n PBFT replicas into a simulator.
func group(n int, links netsim.LinkModel, seed uint64) (*netsim.Sim, []*Replica) {
	s := netsim.New(links, seed)
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		r := NewReplica(history.ProcID(i), Config{N: n, ViewTimeout: 64})
		reps[i] = r
		s.Register(r.ID(), r)
	}
	return s, reps
}

func checkAgreement(t *testing.T, reps []*Replica, slot int, alive func(int) bool) Value {
	t.Helper()
	var decided Value
	count := 0
	for i, r := range reps {
		if alive != nil && !alive(i) {
			continue
		}
		v, ok := r.Decided(slot)
		if !ok {
			t.Fatalf("replica %d did not decide slot %d", i, slot)
		}
		if decided == "" {
			decided = v
		} else if v != decided {
			t.Fatalf("disagreement at slot %d: %q vs %q", slot, v, decided)
		}
		count++
	}
	if count == 0 {
		t.Fatal("no live replicas")
	}
	return decided
}

// TestHappyPathDecides: 4 replicas (f=1), view-0 leader proposes, everyone
// decides the leader's value.
func TestHappyPathDecides(t *testing.T) {
	s, reps := group(4, netsim.Synchronous{Delta: 3}, 1)
	for _, r := range reps {
		r.Propose(s, 0, fmt.Sprintf("v%d", r.ID()))
	}
	s.Run(500)
	v := checkAgreement(t, reps, 0, nil)
	if v != "v0" {
		t.Fatalf("decided %q, want the slot-0 leader's v0", v)
	}
}

// TestMultipleSlotsIndependent: slots decide independently, each led by its
// rotation leader.
func TestMultipleSlotsIndependent(t *testing.T) {
	s, reps := group(4, netsim.Synchronous{Delta: 3}, 2)
	for slot := 0; slot < 5; slot++ {
		for _, r := range reps {
			r.Propose(s, slot, fmt.Sprintf("s%d-v%d", slot, r.ID()))
		}
	}
	s.Run(2000)
	for slot := 0; slot < 5; slot++ {
		v := checkAgreement(t, reps, slot, nil)
		leader := (slot) % 4
		want := fmt.Sprintf("s%d-v%d", slot, leader)
		if v != want {
			t.Fatalf("slot %d decided %q, want %q", slot, v, want)
		}
	}
	if got := len(reps[0].DecidedSlots()); got != 5 {
		t.Fatalf("decided slots = %d", got)
	}
}

// TestCrashedLeaderViewChange: the view-0 leader crashes before proposing;
// the timeout rotates to the view-1 leader, whose value is decided by the
// survivors.
func TestCrashedLeaderViewChange(t *testing.T) {
	s, reps := group(4, netsim.Synchronous{Delta: 3}, 3)
	s.Crash(0) // slot-0, view-0 leader
	for _, r := range reps[1:] {
		r.Propose(s, 0, fmt.Sprintf("v%d", r.ID()))
	}
	s.Run(2000)
	v := checkAgreement(t, reps, 0, func(i int) bool { return i != 0 })
	if v != "v1" {
		t.Fatalf("decided %q, want the view-1 leader's v1", v)
	}
}

// TestLeaderCrashAfterPartialPrePrepare: the leader's pre-prepare reaches
// only some replicas before it crashes; the view change still converges
// without conflicting decisions.
func TestLeaderCrashAfterPartialPrePrepare(t *testing.T) {
	// Drop the leader's messages to replicas 2 and 3 — only replica 1
	// hears the original proposal.
	rule := func(m netsim.Message, _ int64) bool {
		return m.From == 0 && (m.To == 2 || m.To == 3)
	}
	s := netsim.New(netsim.Lossy{Inner: netsim.Synchronous{Delta: 3}, Rule: rule}, 4)
	reps := make([]*Replica, 4)
	for i := 0; i < 4; i++ {
		r := NewReplica(history.ProcID(i), Config{N: 4, ViewTimeout: 64})
		reps[i] = r
		s.Register(r.ID(), r)
	}
	for _, r := range reps {
		r.Propose(s, 0, fmt.Sprintf("v%d", r.ID()))
	}
	s.Run(100) // let the partial pre-prepare land
	s.Crash(0)
	s.Run(3000)
	checkAgreement(t, reps, 0, func(i int) bool { return i != 0 })
}

// byzantineEquivocator is a leader that sends different pre-prepares to
// different replicas — the classic safety attack PBFT's prepare quorum
// neutralizes.
func TestByzantineLeaderEquivocationSafe(t *testing.T) {
	const n = 4
	s := netsim.New(netsim.Synchronous{Delta: 3}, 5)
	reps := make([]*Replica, n)
	for i := 1; i < n; i++ {
		r := NewReplica(history.ProcID(i), Config{N: n, ViewTimeout: 64})
		reps[i] = r
		s.Register(r.ID(), r)
	}
	// Process 0 (slot-0 leader) equivocates: "evil-a" to 1, "evil-b" to
	// 2 and 3.
	s.Register(0, netsim.HandlerFuncs{Timer: func(sim *netsim.Sim, tag string) {
		send := func(to history.ProcID, v Value) {
			sim.Send(netsim.Message{From: 0, To: to, Kind: MsgPrePrepare, Round: 0,
				Payload: payload{Slot: 0, View: 0, Value: v}})
		}
		send(1, "evil-a")
		send(2, "evil-b")
		send(3, "evil-b")
	}})
	s.TimerAt(0, 1, "equivocate")
	for i := 1; i < n; i++ {
		reps[i].Propose(s, 0, fmt.Sprintf("v%d", i))
	}
	s.Run(3000)

	// Safety: no two correct replicas decide different values. (The
	// split 1 vs 2 prepares cannot both reach the 2f+1 = 3 quorum.)
	var first Value
	for i := 1; i < n; i++ {
		if v, ok := reps[i].Decided(0); ok {
			if first == "" {
				first = v
			} else if v != first {
				t.Fatalf("conflicting decisions: %q vs %q", v, first)
			}
		}
	}
	// Liveness: the view change around the Byzantine leader lets the
	// correct replicas decide something.
	decided := 0
	for i := 1; i < n; i++ {
		if _, ok := reps[i].Decided(0); ok {
			decided++
		}
	}
	if decided < 3 {
		t.Fatalf("only %d correct replicas decided", decided)
	}
}

// TestSevenReplicasTolerateTwoCrashes: n=7, f=2 — crash two replicas
// including a leader; the rest decide.
func TestSevenReplicasTolerateTwoCrashes(t *testing.T) {
	s, reps := group(7, netsim.Synchronous{Delta: 3}, 6)
	s.Crash(0)
	s.Crash(1)
	for _, r := range reps[2:] {
		r.Propose(s, 0, fmt.Sprintf("v%d", r.ID()))
	}
	s.Run(4000)
	checkAgreement(t, reps, 0, func(i int) bool { return i >= 2 })
}

// TestWeaklySynchronousDecides: decisions survive a pre-GST asynchronous
// phase (the semi-synchrony ByzCoin/PeerCensus assume).
func TestWeaklySynchronousDecides(t *testing.T) {
	links := netsim.WeaklySynchronous{GST: 300, Delta: 3, PreMax: 100}
	s, reps := group(4, links, 7)
	for _, r := range reps {
		r.Propose(s, 0, fmt.Sprintf("v%d", r.ID()))
	}
	s.Run(5000)
	checkAgreement(t, reps, 0, nil)
}

func TestQuorumSizes(t *testing.T) {
	cases := map[int]int{4: 3, 7: 5, 10: 7}
	for n, want := range cases {
		if got := (Config{N: n}).Quorum(); got != want {
			t.Fatalf("quorum(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	r := NewReplica(0, Config{N: 4})
	if r.Leader(0, 0) != 0 || r.Leader(0, 1) != 1 || r.Leader(3, 2) != 1 {
		t.Fatal("leader rotation formula")
	}
}

func TestIgnoresForeignMessages(t *testing.T) {
	s, reps := group(4, netsim.Synchronous{Delta: 3}, 8)
	reps[0].OnMessage(s, netsim.Message{Kind: "update", Payload: "not-pbft"})
	if len(reps[0].Decisions) != 0 {
		t.Fatal("foreign message caused a decision")
	}
}
