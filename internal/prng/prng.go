// Package prng provides the deterministic pseudorandomness used across the
// reproduction: a SplitMix64 sequential generator and a stateless PRF for
// the oracle's merit tapes.
//
// The paper's token oracles own, per merit αᵢ, an infinite tape of
// pseudorandom cells "mostly indistinguishable from a Bernoulli sequence"
// (Section 3.2.1, footnote 3). We realize a tape cell as a pure function of
// (seed, merit, index), so tapes are reproducible, independent across
// merits, and never need to be materialized.
package prng

// splitmix64 advances the SplitMix64 state and returns the next output.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (the standard gamma 0x9E3779B97F4A7C15).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Mix hashes the inputs into a single well-distributed 64-bit value; it is
// the stateless PRF behind Cell.
func Mix(vals ...uint64) uint64 {
	acc := uint64(0x2545F4914F6CDD1D)
	for _, v := range vals {
		acc ^= v
		_, acc = splitmix64(acc)
	}
	return acc
}

// Cell returns the pseudorandom 64-bit value of cell (merit, index) of the
// tape family identified by seed.
func Cell(seed uint64, merit int, index uint64) uint64 {
	return Mix(seed, uint64(merit)+0x9E37, index+0xC2B2)
}

// Bernoulli reports whether the value v (interpreted as uniform on
// [0, 2^64)) falls below probability p ∈ [0, 1].
func Bernoulli(v uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	// Compare against p·2^64 without overflowing: split the scale.
	threshold := uint64(p * (1 << 63) * 2)
	return v < threshold
}

// Source is a seeded sequential generator with convenience helpers. The
// zero value is a valid generator seeded with 0.
type Source struct {
	state uint64
}

// New returns a Source with the given seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next pseudorandom value.
func (s *Source) Uint64() uint64 {
	var out uint64
	s.state, out = splitmix64(s.state)
	return out
}

// Intn returns a pseudorandom int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive bound")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a pseudorandom int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("prng: Int63n with non-positive bound")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a pseudorandom float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return Bernoulli(s.Uint64(), p)
}

// Perm returns a pseudorandom permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns an independent Source derived from this one and a label,
// used to give subsystems (links, processes, tapes) their own streams.
func (s *Source) Fork(label uint64) *Source {
	return New(Mix(s.state, label, 0xF0CC))
}
