package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincide on %d/100 draws", same)
	}
}

func TestCellIsPure(t *testing.T) {
	if Cell(7, 3, 11) != Cell(7, 3, 11) {
		t.Fatal("Cell must be a pure function")
	}
	if Cell(7, 3, 11) == Cell(7, 3, 12) || Cell(7, 3, 11) == Cell(7, 4, 11) || Cell(7, 3, 11) == Cell(8, 3, 11) {
		t.Fatal("Cell must separate its arguments")
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	if Bernoulli(0, 0) {
		t.Fatal("p=0 must never fire")
	}
	if !Bernoulli(^uint64(0), 1) {
		t.Fatal("p=1 must always fire")
	}
	if Bernoulli(^uint64(0), 0.999999) {
		t.Fatal("max draw must not fire below p=1")
	}
	if !Bernoulli(0, 1e-9) {
		t.Fatal("zero draw must fire for any positive p")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	for _, p := range []float64{0.05, 0.25, 0.5, 0.9} {
		src := New(1234)
		const n = 200000
		hits := 0
		for i := 0; i < n; i++ {
			if Bernoulli(src.Uint64(), p) {
				hits++
			}
		}
		got := float64(hits) / n
		// 5σ bound on the binomial proportion.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("p=%v: frequency %v beyond %v", p, got, tol)
		}
	}
}

func TestTapeCellFrequency(t *testing.T) {
	// The oracle's merit tapes must hit close to their probability.
	const n = 100000
	p := 0.1
	hits := 0
	for i := uint64(0); i < n; i++ {
		if Bernoulli(Cell(99, 2, i), p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("tape frequency %v, want ~%v", got, p)
	}
}

func TestTapeIndependenceAcrossMerits(t *testing.T) {
	// Cells of different merits at the same index must be uncorrelated:
	// count agreements of the Bernoulli(0.5) projections.
	const n = 50000
	agree := 0
	for i := uint64(0); i < n; i++ {
		a := Bernoulli(Cell(5, 0, i), 0.5)
		b := Bernoulli(Cell(5, 1, i), 0.5)
		if a == b {
			agree++
		}
	}
	got := float64(agree) / n
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("cross-merit agreement %v, want ~0.5", got)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	s.Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	s := New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Int63n(5); v < 0 || v >= 5 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		p := New(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(11)
	a := s.Fork(1)
	b := s.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams coincide on %d/100 draws", same)
	}
}

func TestMixVariadicSeparation(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix must be order-sensitive")
	}
	if Mix(1) == Mix(1, 0) {
		t.Fatal("Mix must be length-sensitive")
	}
}
