package registers

import (
	"sync"
)

// This file implements the object reductions of Section 4.1.
//
// The paper works with consumeToken as a standalone shared object: for
// Θ_F,k=1, consumeToken(b^tknh_ℓ) writes b into K[h] iff K[h] = {} and in
// every case returns the content of K[h] (Figure 9, right). For Θ_P,
// consumeToken_h(tkn_m) writes tkn_m into its own register R_{h,m} and
// returns an atomic read of all registers (Figure 12).

// ConsumeTokenK1 is the consumeToken() shared object of Figure 9 for
// Θ_F,k=1: per object h a single-slot set K[h]. It is linearizable and
// wait-free (one mutex-protected step per call models the atomic step of
// the shared object).
type ConsumeTokenK1 struct {
	mu sync.Mutex
	k  map[string]string // K[h], "" = {}
}

// NewConsumeTokenK1 returns an empty consumeToken object.
func NewConsumeTokenK1() *ConsumeTokenK1 {
	return &ConsumeTokenK1{k: map[string]string{}}
}

// Consume implements consumeToken(b^tknh_ℓ) per Figure 9: if K[h] = {} then
// K[h] ← {b}; in every case returns K[h]'s content ("" when still empty,
// which cannot happen here since b is written first).
func (c *ConsumeTokenK1) Consume(h, b string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.k[h] == "" {
		c.k[h] = b
	}
	return c.k[h]
}

// Get returns K[h]'s content without modifying it.
func (c *ConsumeTokenK1) Get(h string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.k[h]
}

// CASFromCT implements compare&swap(K[h], {}, b) from consumeToken,
// following Figure 10 (Theorem 4.1): invoke consumeToken(b^tknh_ℓ); if the
// returned value is b the CAS succeeded and the register's prior value was
// {} (returned as ""); otherwise the returned value is the register's
// unchanged content. Input values must be valid blocks (non-empty strings).
type CASFromCT struct {
	ct *ConsumeTokenK1
}

// NewCASFromCT wraps a consumeToken object as a CAS object.
func NewCASFromCT(ct *ConsumeTokenK1) *CASFromCT {
	return &CASFromCT{ct: ct}
}

// CompareAndSwapEmpty performs compare&swap(K[h], {}, b): it returns ""
// (the old value {}) when this call installed b, and the current occupant
// otherwise. It panics on an empty b, mirroring the theorem's hypothesis
// that inputs are valid blocks in B′.
func (c *CASFromCT) CompareAndSwapEmpty(h, b string) string {
	if b == "" {
		panic("registers: CASFromCT requires a valid (non-empty) block")
	}
	returned := c.ct.Consume(h, b)
	if returned == b {
		return ""
	}
	return returned
}

// CTFromCAS implements the consumeToken object from a Compare&Swap object
// per object (the inverse direction implicit in Figure 9's side-by-side
// presentation): Consume(h, b) CASes b into K[h] if empty and returns the
// resulting content.
type CTFromCAS struct {
	mu  sync.Mutex
	cas map[string]*CAS
}

// NewCTFromCAS returns an empty object.
func NewCTFromCAS() *CTFromCAS {
	return &CTFromCAS{cas: map[string]*CAS{}}
}

func (c *CTFromCAS) obj(h string) *CAS {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.cas[h]
	if !ok {
		o = &CAS{}
		c.cas[h] = o
	}
	return o
}

// Consume implements consumeToken(b^tknh_ℓ) on top of CAS: returns K[h]'s
// content after the (attempted) insertion.
func (c *CTFromCAS) Consume(h, b string) string {
	o := c.obj(h)
	prev := o.CompareAndSwap("", b)
	if prev == "" {
		return b
	}
	return prev
}

// CTFromSnapshot implements the prodigal consumeToken from an Atomic
// Snapshot per Figure 12 (Theorem 4.3): consumeToken_h(tkn_m) updates the
// register R_{h,m} assigned to token m and returns a scan of all registers
// for h — the consumed set including the last written token. Because Θ_P
// never refuses an insertion (k = ∞), a register per token always exists.
type CTFromSnapshot struct {
	mu    sync.Mutex
	snaps map[string]*Snapshot
	// slot[h][token] is the register index R_{h,m}; tokens are uniquely
	// identified (assumption (i) of Section 4.1.2) and the cardinality n
	// of T is finite but not known a priori (assumption (ii)), so slots
	// are assigned on first use within the fixed capacity.
	slot map[string]map[string]int
	n    int
}

// NewCTFromSnapshot returns the object with capacity n tokens per object h
// (the paper's finite-but-unknown n; callers choose a bound large enough
// for the run).
func NewCTFromSnapshot(n int) *CTFromSnapshot {
	return &CTFromSnapshot{snaps: map[string]*Snapshot{}, slot: map[string]map[string]int{}, n: n}
}

func (c *CTFromSnapshot) registers(h, token string) (*Snapshot, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.snaps[h]
	if !ok {
		s = NewSnapshot(c.n)
		c.snaps[h] = s
		c.slot[h] = map[string]int{}
	}
	m, ok := c.slot[h][token]
	if !ok {
		m = len(c.slot[h])
		if m >= c.n {
			panic("registers: CTFromSnapshot capacity exceeded")
		}
		c.slot[h][token] = m
	}
	return s, m
}

// Consume implements Figure 12's consumeToken_h(tkn_m): update R_{h,m} then
// scan. The returned slice is the consumed set K[h] (empty strings
// filtered), which includes tkn_m.
func (c *CTFromSnapshot) Consume(h, token string) []string {
	s, m := c.registers(h, token)
	s.Update(m, token)
	scan := s.Scan()
	out := make([]string, 0, len(scan))
	for _, v := range scan {
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}
