package registers

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// TestFig9ConsumeTokenSemantics checks the consumeToken() shared object of
// Figure 9 (Θ_F,k=1): the first consume installs, every consume returns
// K[h]'s content.
func TestFig9ConsumeTokenSemantics(t *testing.T) {
	ct := NewConsumeTokenK1()
	if got := ct.Consume("h", "b1"); got != "b1" {
		t.Fatalf("first consume = %q", got)
	}
	if got := ct.Consume("h", "b2"); got != "b1" {
		t.Fatalf("second consume = %q, want the installed b1", got)
	}
	if got := ct.Get("h"); got != "b1" {
		t.Fatalf("get = %q", got)
	}
	// Independent objects are independent.
	if got := ct.Consume("h2", "b9"); got != "b9" {
		t.Fatalf("independent object consume = %q", got)
	}
}

// TestFig10Theorem41 checks the CAS-from-consumeToken implementation of
// Figure 10 (Theorem 4.1): compare&swap(K[h], {}, b) returns {} ("")
// exactly when this call installed b.
func TestFig10Theorem41(t *testing.T) {
	cas := NewCASFromCT(NewConsumeTokenK1())
	if prev := cas.CompareAndSwapEmpty("h", "b1"); prev != "" {
		t.Fatalf("winning CAS prev = %q, want empty", prev)
	}
	if prev := cas.CompareAndSwapEmpty("h", "b2"); prev != "b1" {
		t.Fatalf("losing CAS prev = %q, want b1", prev)
	}
	// Theorem 4.1's hypothesis: inputs must be valid blocks.
	defer func() {
		if recover() == nil {
			t.Fatal("empty block must be rejected")
		}
	}()
	cas.CompareAndSwapEmpty("h", "")
}

// TestFig10ConcurrentAgreement: under contention exactly one CAS-from-CT
// caller wins and every caller learns the same winner — the property that
// gives consumeToken consensus number ∞ (Theorem 4.2).
func TestFig10ConcurrentAgreement(t *testing.T) {
	cas := NewCASFromCT(NewConsumeTokenK1())
	const n = 24
	var wg sync.WaitGroup
	outcome := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mine := fmt.Sprintf("b%d", i)
			prev := cas.CompareAndSwapEmpty("h", mine)
			if prev == "" {
				outcome[i] = mine
			} else {
				outcome[i] = prev
			}
		}(i)
	}
	wg.Wait()
	winners := 0
	for i := 0; i < n; i++ {
		if outcome[i] == fmt.Sprintf("b%d", i) {
			winners++
		}
		if outcome[i] != outcome[0] {
			t.Fatalf("disagreement: %q vs %q", outcome[i], outcome[0])
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want 1", winners)
	}
}

// TestCTFromCASRoundTrip: the inverse reduction matches the consumeToken
// specification.
func TestCTFromCASRoundTrip(t *testing.T) {
	ct := NewCTFromCAS()
	if got := ct.Consume("h", "x"); got != "x" {
		t.Fatalf("first = %q", got)
	}
	if got := ct.Consume("h", "y"); got != "x" {
		t.Fatalf("second = %q", got)
	}
	if got := ct.Consume("g", "z"); got != "z" {
		t.Fatalf("other object = %q", got)
	}
}

// TestProperty_CTandCASReductionsAgree: for arbitrary schedules of
// (object, block) consumptions, the Figure 9 object and the CAS-backed
// object produce identical return values — the two implementations are
// observationally equivalent.
func TestProperty_CTandCASReductionsAgree(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewConsumeTokenK1()
		b := NewCTFromCAS()
		for _, op := range ops {
			h := fmt.Sprintf("h%d", op%3)
			blk := fmt.Sprintf("b%d", op%7+1)
			if a.Consume(h, blk) != b.Consume(h, blk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFig12Theorem43 checks the snapshot-based prodigal consumeToken of
// Figure 12: every consumption is accepted (k = ∞) and the returned scan
// contains the consumed token and every previously consumed one.
func TestFig12Theorem43(t *testing.T) {
	ct := NewCTFromSnapshot(16)
	set := ct.Consume("h", "t1")
	if len(set) != 1 || set[0] != "t1" {
		t.Fatalf("first consume = %v", set)
	}
	set = ct.Consume("h", "t2")
	if len(set) != 2 {
		t.Fatalf("second consume = %v", set)
	}
	found := map[string]bool{}
	for _, v := range set {
		found[v] = true
	}
	if !found["t1"] || !found["t2"] {
		t.Fatalf("scan misses a token: %v", set)
	}
	// Distinct objects use distinct snapshots.
	if got := ct.Consume("g", "t9"); len(got) != 1 || got[0] != "t9" {
		t.Fatalf("other object = %v", got)
	}
}

// TestFig12ConcurrentInclusion: concurrent consumers each see their own
// token in the returned scan (the "read includes the last written token"
// clause of Section 4.1.2), and the final scan holds all tokens — the
// unbounded-insertion behaviour that keeps Θ_P at consensus number 1.
func TestFig12ConcurrentInclusion(t *testing.T) {
	const n = 16
	ct := NewCTFromSnapshot(n + 1)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mine := fmt.Sprintf("t%02d", i)
			set := ct.Consume("h", mine)
			for _, v := range set {
				if v == mine {
					return
				}
			}
			errs <- fmt.Errorf("consumer %d missing own token in %v", i, set)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final := ct.Consume("h", "t99")
	if len(final) < n {
		t.Fatalf("final set size = %d, want ≥ %d (prodigal never refuses)", len(final), n)
	}
}

func TestCTFromSnapshotCapacity(t *testing.T) {
	ct := NewCTFromSnapshot(1)
	ct.Consume("h", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("capacity overflow must panic")
		}
	}()
	ct.Consume("h", "b")
}
