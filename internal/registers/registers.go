// Package registers implements the shared-memory substrate of Section 4.1
// of "Blockchain Abstract Data Type" (Anceaume et al.): linearizable
// single-value registers, a Compare&Swap object, and a wait-free atomic
// snapshot (Aspnes & Herlihy style), plus the paper's reductions between
// these objects and the oracle's consumeToken:
//
//   - Figure 9/10: Compare&Swap from consumeToken for Θ_F,k=1 (hence
//     consumeToken has consensus number ∞, Theorem 4.1/4.2);
//   - Figure 12: consumeToken from Atomic Snapshot for Θ_P (hence Θ_P has
//     consensus number 1, Theorem 4.3).
package registers

import (
	"sync"
	"sync/atomic"
)

// Register is a linearizable multi-reader multi-writer atomic register
// holding a string value (block/object ids in this reproduction). The zero
// value is an empty register holding "".
type Register struct {
	v atomic.Value // always string
}

// Read returns the current value.
func (r *Register) Read() string {
	if v := r.v.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Write stores the value.
func (r *Register) Write(s string) { r.v.Store(s) }

// CAS is a linearizable Compare&Swap object over string values, the
// universal object with consensus number ∞ (Herlihy). Empty string is the
// conventional "unset" value {}.
type CAS struct {
	mu sync.Mutex
	v  string
}

// CompareAndSwap implements the paper's Figure 9 compare&swap(): if the
// current value equals old, new is stored; in every case the value held at
// the beginning of the operation is returned.
func (c *CAS) CompareAndSwap(old, new string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.v
	if prev == old {
		c.v = new
	}
	return prev
}

// Read returns the current value (a plain register read).
func (c *CAS) Read() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Snapshot is a wait-free atomic snapshot object over n string components
// offering update(i, v) and scan() (Aspnes & Herlihy, cited as [7]). The
// implementation uses per-component sequence numbers and the classic
// double-collect with helping-free bounded retry, falling back to a brief
// writer-exclusion only if collects never stabilize; with finitely many
// updates (our workloads) the double collect terminates.
type Snapshot struct {
	n     int
	cells []snapCell
	// writeGate serializes the rare fallback path; scans normally never
	// take it.
	writeGate sync.Mutex
}

type snapCell struct {
	mu  sync.Mutex
	seq uint64
	val string
}

// NewSnapshot returns a snapshot object with n components, all "".
func NewSnapshot(n int) *Snapshot {
	return &Snapshot{n: n, cells: make([]snapCell, n)}
}

// N returns the number of components.
func (s *Snapshot) N() int { return s.n }

// Update atomically sets component i to v.
func (s *Snapshot) Update(i int, v string) {
	c := &s.cells[i]
	c.mu.Lock()
	c.seq++
	c.val = v
	c.mu.Unlock()
}

func (s *Snapshot) collect() ([]string, []uint64) {
	vals := make([]string, s.n)
	seqs := make([]uint64, s.n)
	for i := range s.cells {
		c := &s.cells[i]
		c.mu.Lock()
		vals[i] = c.val
		seqs[i] = c.seq
		c.mu.Unlock()
	}
	return vals, seqs
}

// Scan returns an atomic view of all components: a vector of values that
// all coexisted at some instant during the scan (double-collect until two
// identical collects).
func (s *Snapshot) Scan() []string {
	const maxRetries = 1 << 16
	vals, seqs := s.collect()
	for try := 0; try < maxRetries; try++ {
		vals2, seqs2 := s.collect()
		same := true
		for i := range seqs {
			if seqs[i] != seqs2[i] {
				same = false
				break
			}
		}
		if same {
			return vals2
		}
		vals, seqs = vals2, seqs2
	}
	// Pathological churn: take the gate to obtain a quiescent collect.
	// This preserves linearizability at the cost of wait-freedom and is
	// unreachable in the workloads of this repository.
	s.writeGate.Lock()
	defer s.writeGate.Unlock()
	vals, _ = s.collect()
	return vals
}
