package registers

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegisterReadWrite(t *testing.T) {
	var r Register
	if r.Read() != "" {
		t.Fatal("zero register not empty")
	}
	r.Write("hello")
	if r.Read() != "hello" {
		t.Fatal("read after write")
	}
}

func TestCASSemantics(t *testing.T) {
	var c CAS
	if prev := c.CompareAndSwap("", "a"); prev != "" {
		t.Fatalf("first CAS prev = %q", prev)
	}
	if c.Read() != "a" {
		t.Fatal("CAS did not install")
	}
	if prev := c.CompareAndSwap("", "b"); prev != "a" {
		t.Fatalf("failed CAS prev = %q, want a", prev)
	}
	if c.Read() != "a" {
		t.Fatal("failed CAS modified the register")
	}
	if prev := c.CompareAndSwap("a", "b"); prev != "a" {
		t.Fatalf("matching CAS prev = %q", prev)
	}
	if c.Read() != "b" {
		t.Fatal("matching CAS did not install")
	}
}

func TestCASExactlyOneWinner(t *testing.T) {
	var c CAS
	const n = 32
	var wg sync.WaitGroup
	wins := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = c.CompareAndSwap("", fmt.Sprintf("v%d", i)) == ""
		}(i)
	}
	wg.Wait()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

func TestSnapshotUpdateScan(t *testing.T) {
	s := NewSnapshot(3)
	if s.N() != 3 {
		t.Fatal("N")
	}
	s.Update(0, "a")
	s.Update(2, "c")
	got := s.Scan()
	if got[0] != "a" || got[1] != "" || got[2] != "c" {
		t.Fatalf("scan = %v", got)
	}
}

// TestSnapshotAtomicity: writers publish matched pairs (components i and
// i+1 always updated to the same value in sequence); scans must never
// observe a "torn" state where a later pair write is visible while an
// earlier one is not. We verify the weaker but tractable invariant that
// every scanned value was genuinely written (no invention) and scans are
// monotone per component under single-writer-per-component usage.
func TestSnapshotAtomicity(t *testing.T) {
	const comps = 4
	const rounds = 200
	s := NewSnapshot(comps)
	var writers sync.WaitGroup
	for c := 0; c < comps; c++ {
		writers.Add(1)
		go func(c int) {
			defer writers.Done()
			for r := 1; r <= rounds; r++ {
				s.Update(c, fmt.Sprintf("%d", r))
			}
		}(c)
	}

	stop := make(chan struct{})
	scanErr := make(chan error, 1)
	var scanner sync.WaitGroup
	scanner.Add(1)
	go func() {
		defer scanner.Done()
		prev := make([]int, comps)
		for {
			select {
			case <-stop:
				return
			default:
			}
			vals := s.Scan()
			for c, v := range vals {
				n := 0
				if v != "" {
					fmt.Sscanf(v, "%d", &n)
				}
				if n < prev[c] {
					select {
					case scanErr <- fmt.Errorf("component %d went backwards: %d < %d", c, n, prev[c]):
					default:
					}
					return
				}
				prev[c] = n
			}
		}
	}()

	writers.Wait()
	close(stop)
	scanner.Wait()
	select {
	case err := <-scanErr:
		t.Fatal(err)
	default:
	}
	final := s.Scan()
	for c, v := range final {
		if v != fmt.Sprintf("%d", rounds) {
			t.Fatalf("component %d final = %q, want %d", c, v, rounds)
		}
	}
}

func TestSnapshotScanReflectsLatestQuiescent(t *testing.T) {
	s := NewSnapshot(2)
	s.Update(0, "x")
	s.Update(1, "y")
	s.Update(0, "x2")
	got := s.Scan()
	if got[0] != "x2" || got[1] != "y" {
		t.Fatalf("scan = %v", got)
	}
}
