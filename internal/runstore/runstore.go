// Package runstore is the content-addressed on-disk cache behind
// incremental scenario sweeps. Each entry maps a canonical key string
// (the sweep engine derives it from the scenario coordinates, the root
// seed, the requested metrics and the engine version) to an opaque value
// — in practice one scenario's canonical Result JSON.
//
// Layout, under the store directory:
//
//	objects/<hh>/<hash>.json   one entry per cached run, where <hash> is
//	                           the hex SHA-256 of the key and <hh> its
//	                           first two characters. The file is a JSON
//	                           envelope {"key": ..., "data": ...} so the
//	                           key preimage survives inside the object
//	                           itself.
//	index.json                 an accelerator listing every entry. It is
//	                           NOT authoritative: Open reconciles it
//	                           against the objects tree, adopting objects
//	                           the index misses and dropping index rows
//	                           whose object is gone.
//
// Because objects are the source of truth and their names are pure
// functions of their keys, two stores can be merged by unioning their
// objects/ trees with plain file copies — that is how CI folds per-shard
// stores into one before serving the merged sweep from cache.
//
// Writes are atomic (temp file + rename in the same directory), so a
// killed sweep leaves a store containing exactly the scenarios that
// completed; re-running with the same store resumes from them.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Hash returns the store address of a key: hex SHA-256 of its bytes.
func Hash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// envelope is the on-disk object schema: the key preimage plus the
// cached value, kept verbatim as raw JSON.
type envelope struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// indexFile is the index.json schema.
type indexFile struct {
	Version int              `json:"version"`
	Entries map[string]entry `json:"entries"` // hash → entry
}

type entry struct {
	Key string `json:"key"`
}

// Stats snapshots one Store handle's operation counters. Counters are
// per-handle and in-memory only: they start at zero at Open and are
// never persisted, so they measure the traffic this process sent to the
// store, not the store's lifetime history.
type Stats struct {
	// Hits / Misses partition Get calls: a hit returned a decodable
	// cached value, a miss is everything else (unknown key, unreadable
	// or corrupt object — the degrade-to-recompute path).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts successful Put calls.
	Puts uint64 `json:"puts"`
	// BytesRead / BytesWritten total the envelope bytes moved by hits
	// and successful puts respectively.
	BytesRead    uint64 `json:"bytesRead"`
	BytesWritten uint64 `json:"bytesWritten"`
}

// Store is a goroutine-safe handle on one store directory.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string]entry // hash → entry
	dirty   bool             // entries diverged from index.json

	hits, misses, puts      atomic.Uint64
	bytesRead, bytesWritten atomic.Uint64
}

// Open opens (creating if necessary) the store rooted at dir, loads the
// index and reconciles it against the objects tree: objects missing from
// the index — e.g. copied in from another shard's store — are adopted,
// and index rows whose object has been deleted are dropped.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{dir: dir, entries: map[string]entry{}}

	var idx indexFile
	if raw, err := os.ReadFile(s.indexPath()); err == nil {
		// A corrupt index is not fatal: the scan below rebuilds it.
		_ = json.Unmarshal(raw, &idx)
	}
	for hash, e := range idx.Entries {
		if _, err := os.Stat(s.objectPath(hash)); err == nil {
			s.entries[hash] = e
		} else {
			s.dirty = true // row without object: drop it
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan walks the objects tree and adopts every decodable object the
// index does not know about. Undecodable files are ignored (a truncated
// temp file can never exist here — writes rename atomically — but a
// foreign file dropped into the tree should not break the store).
func (s *Store) scan() error {
	root := filepath.Join(s.dir, "objects")
	prefixes, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	for _, p := range prefixes {
		if !p.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, p.Name()))
		if err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
		for _, f := range files {
			hash, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok {
				continue
			}
			if _, known := s.entries[hash]; known {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(root, p.Name(), f.Name()))
			if err != nil {
				continue
			}
			var env envelope
			if json.Unmarshal(raw, &env) != nil || Hash(env.Key) != hash {
				continue
			}
			s.entries[hash] = entry{Key: env.Key}
			s.dirty = true
		}
	}
	return nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

// Has reports whether key has an entry, from the in-memory index alone
// — no file read, so counting hits over a large matrix stays cheap. A
// corrupt object can make Has true while Get still misses; callers that
// need the value must use Get.
func (s *Store) Has(key string) bool {
	hash := Hash(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[hash]
	return ok
}

// Get returns the cached value for key. A missing entry is (nil, false,
// nil); an entry whose object cannot be read or decoded is also reported
// as a miss (the caller recomputes and Put overwrites it), so a damaged
// store degrades to recomputation, never to failure.
func (s *Store) Get(key string) ([]byte, bool, error) {
	hash := Hash(key)
	s.mu.Lock()
	_, known := s.entries[hash]
	s.mu.Unlock()
	if !known {
		s.misses.Add(1)
		return nil, false, nil
	}
	raw, err := os.ReadFile(s.objectPath(hash))
	if err != nil {
		s.misses.Add(1)
		return nil, false, nil
	}
	var env envelope
	if json.Unmarshal(raw, &env) != nil || env.Key != key {
		s.misses.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(raw)))
	return env.Data, true, nil
}

// Put stores value under key, atomically: the envelope is written to a
// temp file in the object's directory and renamed into place, so readers
// (and crashed writers) never observe a partial object.
func (s *Store) Put(key string, value []byte) error {
	hash := Hash(key)
	enc, err := json.Marshal(envelope{Key: key, Data: json.RawMessage(value)})
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	path := s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	s.mu.Lock()
	s.entries[hash] = entry{Key: key}
	s.dirty = true
	s.mu.Unlock()
	s.puts.Add(1)
	s.bytesWritten.Add(uint64(len(enc)))
	return nil
}

// Stats snapshots the handle's operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// Len reports the number of cached entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys returns every cached key preimage, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.Key)
	}
	sort.Strings(out)
	return out
}

// GC deletes every entry whose key the keep predicate rejects and
// reports how many were removed. The index is flushed afterwards so a
// GC'd store opens without a reconciliation pass.
func (s *Store) GC(keep func(key string) bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for hash, e := range s.entries {
		if keep(e.Key) {
			continue
		}
		if err := os.Remove(s.objectPath(hash)); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("runstore: %w", err)
		}
		delete(s.entries, hash)
		removed++
		s.dirty = true
	}
	return removed, s.flushLocked()
}

// Flush writes index.json if any entry changed since the last flush.
// The index is an accelerator, not the source of truth, so callers may
// skip Flush entirely — the next Open just pays for a scan.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if !s.dirty {
		return nil
	}
	idx := indexFile{Version: 1, Entries: s.entries}
	enc, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".index-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(append(enc, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	s.dirty = false
	return nil
}
