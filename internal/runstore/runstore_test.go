package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	val := []byte(`{"blocks":30,"forks":2}`)
	if err := s.Put("k1", val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(got) != string(val) {
		t.Fatalf("value changed in the store: got %s want %s", got, val)
	}
	if _, ok, _ := s.Get("k2"); ok {
		t.Fatal("Get reported a hit for a key never stored")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestReopenServesWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alpha", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("beta", []byte(`2`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the index intact.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s2.Get("beta"); !ok || string(got) != "2" {
		t.Fatalf("reopen lost an entry: ok=%v got=%s", ok, got)
	}

	// Delete the index: the objects tree alone must rebuild the store
	// (this is what makes unioning two shard stores a plain file copy).
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 2 {
		t.Fatalf("scan recovered %d entries, want 2", s3.Len())
	}
	if got, ok, _ := s3.Get("alpha"); !ok || string(got) != "1" {
		t.Fatalf("scan lost an entry: ok=%v got=%s", ok, got)
	}
}

func TestStaleIndexRowDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", []byte(`0`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "objects", Hash("gone")[:2], Hash("gone")+".json")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("stale index row survived: Len = %d", s2.Len())
	}
	if _, ok, _ := s2.Get("gone"); ok {
		t.Fatal("Get hit an entry whose object was deleted")
	}
}

func TestCorruptObjectIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath(Hash("k")), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("corrupt object must degrade to a miss: ok=%v err=%v", ok, err)
	}
	// Overwriting heals it.
	if err := s.Put("k", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s.Get("k"); !ok || string(got) != `{"v":2}` {
		t.Fatalf("Put did not heal the entry: ok=%v got=%s", ok, got)
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"keep-1", "keep-2", "drop-1", "drop-2", "drop-3"} {
		if err := s.Put(k, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.GC(func(key string) bool { return strings.HasPrefix(key, "keep-") })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || s.Len() != 2 {
		t.Fatalf("GC removed %d (want 3), left %d (want 2)", removed, s.Len())
	}
	// The GC'd state survives a reopen (index was flushed, objects gone).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := s2.Keys()
	if len(keys) != 2 || keys[0] != "keep-1" || keys[1] != "keep-2" {
		t.Fatalf("post-GC keys = %v", keys)
	}
}

func TestUnionByFileCopy(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("only-a", []byte(`"A"`)); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("only-b", []byte(`"B"`)); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	// Copy B's objects tree into A — exactly what the CI merge job does.
	err = filepath.Walk(filepath.Join(dirB, "objects"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dirB, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(dirA, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	merged, err := Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2 {
		t.Fatalf("union holds %d entries, want 2", merged.Len())
	}
	if got, ok, _ := merged.Get("only-b"); !ok || string(got) != `"B"` {
		t.Fatalf("adopted entry unreadable: ok=%v got=%s", ok, got)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "k" + string(rune('a'+i%8))
			val, _ := json.Marshal(i)
			if err := s.Put(key, val); err != nil {
				t.Error(err)
			}
			if _, _, err := s.Get(key); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}

// TestStatsScriptedSequence pins the Stats counters against an explicit
// hit/miss/put script: misses for unknown keys and corrupt objects, hits
// (with byte totals) only for decodable cached values, puts (with byte
// totals) for successful writes. Counters are per-handle, so a reopened
// store starts from zero.
func TestStatsScriptedSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("fresh handle has non-zero stats: %+v", got)
	}

	// 1. Get of an unknown key: one miss, nothing else.
	if _, ok, _ := s.Get("absent"); ok {
		t.Fatal("unknown key reported as a hit")
	}
	// 2-3. Two puts.
	if err := s.Put("a", []byte(`"alpha"`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte(`"beta"`)); err != nil {
		t.Fatal(err)
	}
	// 4-5. Hit each once.
	for _, key := range []string{"a", "b"} {
		if _, ok, _ := s.Get(key); !ok {
			t.Fatalf("put key %q missed", key)
		}
	}
	// 6. Corrupt b's object on disk: the next Get degrades to a miss.
	if err := os.WriteFile(s.objectPath(Hash("b")), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("b"); ok {
		t.Fatal("corrupt object reported as a hit")
	}

	got := s.Stats()
	if got.Hits != 2 || got.Misses != 2 || got.Puts != 2 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, 2 puts", got)
	}
	// Each object is the envelope {"key":...,"data":...}; both byte
	// totals count envelope bytes, and the two hits read back exactly
	// what the two puts wrote.
	if got.BytesWritten == 0 || got.BytesRead != got.BytesWritten {
		t.Fatalf("stats bytes = read %d, written %d; want equal and non-zero",
			got.BytesRead, got.BytesWritten)
	}

	// A fresh handle on the same directory starts from zero.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got != (Stats{}) {
		t.Fatalf("reopened handle inherited stats: %+v", got)
	}
}
