// Package sweep is the concurrent scenario-matrix engine: it expands a
// (system × link model × adversary × n × seed) matrix into fully resolved
// configurations, fans them out across a bounded worker pool
// (internal/parallel), and collects structured per-configuration results —
// classification verdict, finality depth, fairness ratios, virtual and
// wall time.
//
// Reproducibility contract: every configuration receives its own
// deterministic prng stream, derived from the matrix root seed and a hash
// of the configuration's canonical key (see Config.DeriveSeed). Because
// configurations share no state and the pool preserves input order, a
// sweep's canonical JSON output is byte-identical at any parallelism —
// the determinism regression test pins exactly that.
package sweep

import (
	"fmt"
	"time"

	"blockadt/internal/chains"
	"blockadt/internal/consistency"
	"blockadt/internal/fairness"
	"blockadt/internal/history"
	"blockadt/internal/parallel"
	"blockadt/internal/prng"
)

// Link models the matrix's network dimension.
const (
	// LinkSync is the synchronous δ-bounded link model every Table 1
	// simulator uses.
	LinkSync = "sync"
	// LinkAsync is the asynchronous regime of the Section 4.2 open
	// issues (bounded common case with stragglers). Only the PoW
	// systems implement it.
	LinkAsync = "async"
)

// Adversary models the matrix's fault dimension.
const (
	// AdvNone runs every process honestly.
	AdvNone = "none"
	// AdvSelfish replaces process 0 with an Eyal–Sirer selfish miner
	// holding merit share Alpha. Only the PoW systems implement it.
	AdvSelfish = "selfish"
)

// asyncSystems and selfishSystems list the systems that implement the
// non-default link and adversary dimensions; other combinations are
// pruned from the cross product (documented in docs/sweep.md).
var (
	asyncSystems   = map[string]bool{"Bitcoin": true}
	selfishSystems = map[string]bool{"Bitcoin": true}
)

// Config is one fully resolved scenario of the matrix.
type Config struct {
	System    string `json:"system"`
	Link      string `json:"link"`
	Adversary string `json:"adversary"`
	// Alpha is the adversary's merit share (selfish runs only).
	Alpha float64 `json:"alpha,omitempty"`
	N     int     `json:"n"`
	// Blocks is the target committed chain length.
	Blocks int `json:"blocks"`
	// SeedIndex is the configuration's position along the matrix's seed
	// dimension; Seed is the stream actually used, derived from the
	// root seed and the canonical key (DeriveSeed).
	SeedIndex int    `json:"seedIndex"`
	Seed      uint64 `json:"seed"`
}

// Key returns the canonical identity of the configuration — everything
// that distinguishes it within a matrix except the derived seed itself.
func (c Config) Key() string {
	return fmt.Sprintf("%s|%s|%s|a=%.4f|n=%d|b=%d|s=%d",
		c.System, c.Link, c.Adversary, c.Alpha, c.N, c.Blocks, c.SeedIndex)
}

// DeriveSeed returns the configuration's independent prng stream:
// prng.Mix(root, hash(Key)). Two configurations that differ in any matrix
// coordinate get unrelated streams; the same configuration under the same
// root always gets the same stream, regardless of where it sits in the
// expansion order or which worker runs it.
func (c Config) DeriveSeed(root uint64) uint64 {
	return prng.Mix(root, hashString(c.Key()))
}

// hashString folds a string into a 64-bit value with the repository's
// stateless mixer (an FNV-style byte fold finished by prng.Mix, so the
// result is well distributed even for short keys).
func hashString(s string) uint64 {
	const prime = 0x100000001B3
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return prng.Mix(h, uint64(len(s)))
}

// Matrix spans a scenario cross product. Zero-valued dimensions fall back
// to defaults (all seven Table 1 systems, synchronous links, no
// adversary, n=8, one seed).
type Matrix struct {
	// Systems are chains system names (chains.ByName); empty = all of
	// Table 1.
	Systems []string `json:"systems,omitempty"`
	// Links ⊆ {sync, async}; empty = {sync}.
	Links []string `json:"links,omitempty"`
	// Adversaries ⊆ {none, selfish}; empty = {none}.
	Adversaries []string `json:"adversaries,omitempty"`
	// Ns are process counts; empty = {8}.
	Ns []int `json:"ns,omitempty"`
	// Seeds is the number of seed indices per point; 0 = 1.
	Seeds int `json:"seeds,omitempty"`
	// RootSeed drives every derived stream. Unlike the other knobs, 0
	// is NOT remapped: it is a valid root and is used as-is, so an
	// explicit `-seed 0` sweep is distinct from the CLI's default 42.
	RootSeed uint64 `json:"rootSeed"`
	// TargetBlocks is the committed-chain target per run; 0 = 30.
	TargetBlocks int `json:"targetBlocks,omitempty"`
	// Alpha is the selfish adversary's merit share; 0 = 0.34 (a
	// zero-merit adversary is degenerate, so zero means unset here).
	Alpha float64 `json:"alpha,omitempty"`
}

// Table1 returns the matrix regenerating Table 1: all seven systems, one
// honest synchronous run each.
func Table1(n, blocks int, seed uint64) Matrix {
	return Matrix{Ns: []int{n}, TargetBlocks: blocks, RootSeed: seed}
}

func (m Matrix) withDefaults() Matrix {
	if len(m.Systems) == 0 {
		for _, sys := range chains.All() {
			m.Systems = append(m.Systems, sys.Name())
		}
	}
	if len(m.Links) == 0 {
		m.Links = []string{LinkSync}
	}
	if len(m.Adversaries) == 0 {
		m.Adversaries = []string{AdvNone}
	}
	if len(m.Ns) == 0 {
		m.Ns = []int{8}
	}
	if m.Seeds <= 0 {
		m.Seeds = 1
	}
	if m.TargetBlocks <= 0 {
		m.TargetBlocks = 30
	}
	if m.Alpha == 0 {
		m.Alpha = 0.34
	}
	return m
}

// Configs expands the matrix into its resolved configurations, in
// deterministic (systems → links → adversaries → ns → seeds) order,
// pruning combinations no simulator implements. It errors on unknown
// systems, links or adversaries so a typo fails loudly instead of
// silently sweeping nothing.
func (m Matrix) Configs() ([]Config, error) {
	m = m.withDefaults()
	for _, name := range m.Systems {
		if _, err := chains.ByName(name); err != nil {
			return nil, err
		}
	}
	var out []Config
	for _, sys := range m.Systems {
		for _, link := range m.Links {
			switch link {
			case LinkSync, LinkAsync:
			default:
				return nil, fmt.Errorf("sweep: unknown link model %q", link)
			}
			if link == LinkAsync && !asyncSystems[sys] {
				continue
			}
			for _, adv := range m.Adversaries {
				switch adv {
				case AdvNone, AdvSelfish:
				default:
					return nil, fmt.Errorf("sweep: unknown adversary %q", adv)
				}
				if adv == AdvSelfish && (!selfishSystems[sys] || link != LinkSync) {
					continue
				}
				for _, n := range m.Ns {
					for s := 0; s < m.Seeds; s++ {
						cfg := Config{
							System: sys, Link: link, Adversary: adv,
							N: n, Blocks: m.TargetBlocks, SeedIndex: s,
						}
						if adv == AdvSelfish {
							cfg.Alpha = m.Alpha
						}
						cfg.Seed = cfg.DeriveSeed(m.RootSeed)
						out = append(out, cfg)
					}
				}
			}
		}
	}
	return out, nil
}

// Result is the structured outcome of one configuration.
type Result struct {
	Config Config `json:"config"`
	// Refinement is the simulator's claimed refinement (for honest
	// Table 1 runs, the paper's row).
	Refinement string `json:"refinement"`
	// Expected and Level are the anticipated vs measured consistency
	// levels; Match reports their agreement.
	Expected string `json:"expected"`
	Level    string `json:"level"`
	Match    bool   `json:"match"`
	// Blocks / Forks / Ticks / Delivered / Dropped summarize the run.
	Blocks    int   `json:"blocks"`
	Forks     int   `json:"forks"`
	Ticks     int64 `json:"ticks"`
	Delivered int   `json:"delivered"`
	Dropped   int   `json:"dropped"`
	// MaxReorg is the deepest rollback observed between consecutive
	// reads of any single process; FinalityDepth = MaxReorg+1 is the
	// smallest depth-d finality gadget that would have been safe on
	// this run.
	MaxReorg      int `json:"maxReorg"`
	FinalityDepth int `json:"finalityDepth"`
	// FairnessTVD is the total variation distance between realized and
	// entitled block shares (chain quality for adversarial runs).
	FairnessTVD float64 `json:"fairnessTVD"`
	// AdversaryShare is the adversary's realized main-chain share
	// (selfish runs only).
	AdversaryShare float64 `json:"adversaryShare,omitempty"`
	// WallNS is the measured wall-clock cost of the run. It is
	// excluded from the canonical JSON: it is the one field that is
	// not deterministic.
	WallNS int64 `json:"-"`
}

// Report is a completed sweep.
type Report struct {
	RootSeed uint64   `json:"rootSeed"`
	Results  []Result `json:"results"`
	// Total / Matched aggregate the verdicts; Ticks totals virtual
	// time across configurations.
	Total   int   `json:"total"`
	Matched int   `json:"matched"`
	Ticks   int64 `json:"ticks"`
	// WallNS is the sweep's wall-clock time (excluded from canonical
	// JSON, like Result.WallNS).
	WallNS int64 `json:"-"`
	// Parallelism is the worker count actually used. Excluded from
	// the canonical JSON so sweeps at different parallelism remain
	// byte-comparable.
	Parallelism int `json:"-"`
}

// Run expands the matrix and executes every configuration across a
// bounded pool of the given parallelism (<1 selects NumCPU). Results are
// in matrix-expansion order regardless of scheduling.
func Run(m Matrix, parallelism int) (*Report, error) {
	m = m.withDefaults()
	configs, err := m.Configs()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	results := parallel.Map(configs, parallelism, func(_ int, cfg Config) Result {
		return runConfig(cfg)
	})
	rep := &Report{
		RootSeed:    m.RootSeed,
		Results:     results,
		Total:       len(results),
		WallNS:      time.Since(start).Nanoseconds(),
		Parallelism: parallel.Workers(parallelism),
	}
	for _, r := range results {
		if r.Match {
			rep.Matched++
		}
		rep.Ticks += r.Ticks
	}
	return rep, nil
}

// runConfig executes one configuration: simulate, classify, measure.
func runConfig(cfg Config) Result {
	p := chains.Params{N: cfg.N, TargetBlocks: cfg.Blocks, Seed: cfg.Seed}
	start := time.Now()

	var (
		res      chains.Result
		expected consistency.Level
		out      Result
	)
	switch {
	case cfg.Adversary == AdvSelfish:
		stats := chains.RunSelfishMining(p, cfg.Alpha)
		res = stats.Result
		expected = consistency.LevelEC
		out.AdversaryShare = stats.AdversaryShare
		merits := make([]float64, cfg.N)
		merits[0] = cfg.Alpha
		for i := 1; i < cfg.N; i++ {
			merits[i] = (1 - cfg.Alpha) / float64(cfg.N-1)
		}
		out.FairnessTVD = fairness.FromCounts(stats.MainChainByProc, merits).TVD
	case cfg.Link == LinkAsync:
		// Slow-mining asynchronous regime: common-case delay equal to
		// the synchronous bound, no stragglers — the configuration the
		// Section 4.2 conjecture predicts still converges to EC.
		res = chains.RunBitcoinAsync(chains.AsyncParams{Params: p, MaxDelay: 8})
		expected = consistency.LevelEC
		out.FairnessTVD = fairness.Analyze(res.History, equalMerits(cfg.N)).TVD
	default:
		sys, err := chains.ByName(cfg.System)
		if err != nil {
			// Configs() validated the name; an error here is a bug.
			panic(err)
		}
		res = sys.Run(p)
		expected = sys.Expected()
		out.FairnessTVD = fairness.Analyze(res.History, equalMerits(cfg.N)).TVD
	}

	cls := res.Classify(chains.Options(p, res.History))
	out.Config = cfg
	out.Refinement = res.Refinement
	out.Expected = expected.String()
	out.Level = cls.Level.String()
	out.Match = cls.Level == expected
	out.Blocks = res.Blocks
	out.Forks = res.Forks
	out.Ticks = res.Ticks
	out.Delivered = res.Delivered
	out.Dropped = res.Dropped
	out.MaxReorg = maxReorg(res.History)
	out.FinalityDepth = out.MaxReorg + 1
	out.WallNS = time.Since(start).Nanoseconds()
	return out
}

// equalMerits is the uniform entitlement used for honest runs.
func equalMerits(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// maxReorg scans each process's read sequence and returns the deepest
// observed rollback: the largest number of blocks a process saw leave its
// selected chain between two consecutive reads.
func maxReorg(h *history.History) int {
	last := map[history.ProcID]history.Chain{}
	deepest := 0
	for _, r := range h.Reads() {
		prev, ok := last[r.Op.Proc]
		if ok {
			cp := prev.CommonPrefix(r.Chain)
			if d := len(prev) - len(cp); d > deepest {
				deepest = d
			}
		}
		last[r.Op.Proc] = r.Chain
	}
	return deepest
}
