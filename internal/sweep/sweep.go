// Package sweep is a compatibility shim over the scenario-matrix engine,
// which now lives in the public façade (blockadt/pkg/blockadt) so that
// systems, links and adversaries resolve through the name registries
// instead of package-local switch statements. Every identifier here is an
// alias; existing internal callers and the determinism/ordering regression
// tests exercise the façade engine directly.
//
// Reproducibility contract (unchanged): every configuration receives its
// own deterministic prng stream, derived from the matrix root seed and a
// hash of the configuration's canonical key (Config.DeriveSeed). Because
// configurations share no state and the pool preserves input order, a
// sweep's canonical JSON output is byte-identical at any parallelism.
package sweep

import "blockadt/pkg/blockadt"

// Link models of the matrix's network dimension.
const (
	LinkSync  = blockadt.LinkSync
	LinkAsync = blockadt.LinkAsync
	LinkPsync = blockadt.LinkPsync
)

// Adversary models of the matrix's fault dimension.
const (
	AdvNone    = blockadt.AdvNone
	AdvSelfish = blockadt.AdvSelfish
)

type (
	// Config is one fully resolved scenario of the matrix.
	Config = blockadt.Scenario
	// Matrix spans a scenario cross product.
	Matrix = blockadt.Matrix
	// Result is the structured outcome of one configuration.
	Result = blockadt.Result
	// Report is a completed sweep.
	Report = blockadt.Report
)

// Table1 returns the matrix regenerating Table 1: every registered
// system, one honest synchronous run each.
func Table1(n, blocks int, seed uint64) Matrix {
	return blockadt.Table1(n, blocks, seed)
}

// Run expands the matrix and executes every configuration across a
// bounded pool of the given parallelism (<1 selects NumCPU). Results are
// in matrix-expansion order regardless of scheduling.
func Run(m Matrix, parallelism int) (*Report, error) {
	return blockadt.Run(m, parallelism)
}

// FormatTable renders the results as an aligned text table, one row per
// configuration.
func FormatTable(results []Result) string {
	return blockadt.FormatTable(results)
}
