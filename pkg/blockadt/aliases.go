package blockadt

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/chains"
	"blockadt/internal/consistency"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
)

// Core data types of the BT-ADT, re-exported so façade consumers never
// touch internal import paths. These are type aliases, not copies: values
// flow freely between the façade and the implementation.
type (
	// Block is a BlockTree vertex: id, parent link, oracle token, payload.
	Block = blocktree.Block
	// BlockID names a block.
	BlockID = blocktree.BlockID
	// Chain is a selected blockchain {b0}⌢f(bt) of blocks.
	Chain = blocktree.Chain
	// Tree is the BlockTree bt.
	Tree = blocktree.Tree
	// Predicate is the application validity predicate P of Section 3.1.
	Predicate = blocktree.Predicate

	// ProcID identifies a process.
	ProcID = history.ProcID
	// BlockRef names a block inside a recorded history.
	BlockRef = history.BlockRef
	// History is an immutable recorded concurrent history.
	History = history.History
	// HistoryChain is a chain of block references inside a history.
	HistoryChain = history.Chain
	// Recorder collects history events.
	Recorder = history.Recorder
	// Label describes one recorded operation.
	Label = history.Label

	// Level is a BT consistency level (None / EC / SC).
	Level = consistency.Level
	// CheckOptions parameterizes the consistency checkers.
	CheckOptions = consistency.Options
	// Verdict is one criterion's outcome.
	Verdict = consistency.Verdict
	// ConsistencyReport aggregates the verdicts of one criterion family.
	ConsistencyReport = consistency.Report
	// Classification is the checker's overall (SC report, EC report,
	// level) triple.
	Classification = consistency.Classification

	// SimParams configures a full network simulation of a registered
	// system.
	SimParams = chains.Params
	// SimResult is the outcome of one simulated run.
	SimResult = chains.Result
	// Execution is the unified executor's composed scenario: a system
	// plus one strategy value per axis (links, adversary, topology).
	// Link, adversary and topology specs compose themselves into it
	// through their Plan hooks.
	Execution = chains.Scenario
	// ExecutionParams is the executor's unified parameter set — the core
	// SimParams plus every knob the link, adversary and topology plans
	// read.
	ExecutionParams = chains.ScenarioParams
	// AdversaryStats is the structured census an adversarial execution
	// attaches to its result.
	AdversaryStats = chains.AdversaryStats

	// OracleToken is the right, granted by getToken, to chain a block.
	OracleToken = oracle.Token
	// OracleStats snapshots an oracle's operation counters.
	OracleStats = oracle.Stats
)

// Consistency levels, re-exported.
const (
	LevelNone = consistency.LevelNone
	LevelEC   = consistency.LevelEC
	LevelSC   = consistency.LevelSC
)

// GenesisID is the id of the genesis block b0 every tree is rooted at.
const GenesisID = blocktree.GenesisID

// NewTree returns an empty BlockTree holding only the genesis block.
func NewTree() *Tree { return blocktree.New() }

// Genesis returns the genesis block b0.
func Genesis() Block { return blocktree.Genesis() }

// NewRecorder returns a fresh history recorder.
func NewRecorder() *Recorder { return history.NewRecorder() }

// Operation kinds of recorded history labels.
const (
	KindAppend = history.KindAppend
	KindRead   = history.KindRead
)

// NewOracle constructs a token oracle directly from a configuration (K =
// Unbounded gives Θ_P, K ≥ 1 gives Θ_F,k). Prefer NewOracleByName for
// registry-driven construction.
func NewOracle(cfg OracleConfig) *Oracle { return oracle.New(cfg) }

// NewProdigalOracle returns Θ_P with the given merit probabilities.
func NewProdigalOracle(seed uint64, merits ...float64) *Oracle {
	return oracle.NewProdigal(seed, merits...)
}

// NewFrugalOracle returns Θ_F,k with the given merit probabilities.
func NewFrugalOracle(k int, seed uint64, merits ...float64) *Oracle {
	return oracle.NewFrugal(k, seed, merits...)
}

// NewOracleByName constructs a registered oracle family with the given
// configuration.
func NewOracleByName(name string, cfg OracleConfig) (*Oracle, error) {
	spec, err := LookupOracle(name)
	if err != nil {
		return nil, err
	}
	return spec.New(cfg), nil
}

// NewSelector constructs a registered selection function by name.
func NewSelector(name string) (Selector, error) {
	spec, err := LookupSelector(name)
	if err != nil {
		return nil, err
	}
	return spec.New(), nil
}
