package blockadt

import (
	"blockadt/internal/consistency"
	"blockadt/internal/parallel"
)

// CheckSC checks the BT Strong Consistency criteria over a history.
func CheckSC(h *History, opts CheckOptions) ConsistencyReport {
	return consistency.CheckSC(h, opts)
}

// CheckEC checks the BT Eventual Consistency criteria over a history.
func CheckEC(h *History, opts CheckOptions) ConsistencyReport {
	return consistency.CheckEC(h, opts)
}

// ClassifyHistory runs both criterion families and assigns the strongest
// satisfied consistency level.
func ClassifyHistory(h *History, opts CheckOptions) Classification {
	return consistency.Classify(h, opts)
}

// ClassifyHistories classifies a batch of histories across the worker
// pool, preserving input order.
func ClassifyHistories(hs []*History, opts CheckOptions, parallelism int) []Classification {
	return parallel.Map(hs, parallelism, func(_ int, h *History) Classification {
		return consistency.Classify(h, opts)
	})
}

// UpdateAgreement checks the R3 Update Agreement property (Definition
// 4.3) — the communication guarantee the necessity results revolve around.
func UpdateAgreement(h *History, opts CheckOptions) Verdict {
	return consistency.UpdateAgreement(h, opts)
}

// LRC checks the Light Reliable Communication broadcast properties
// (Definition 4.4).
func LRC(h *History, opts CheckOptions) Verdict {
	return consistency.LRC(h, opts)
}

// EventualPrefix checks the Eventual Prefix criterion (Definition 3.3).
func EventualPrefix(h *History, opts CheckOptions) Verdict {
	return consistency.EventualPrefix(h, opts)
}

// StrongPrefix checks the Strong Prefix criterion (Definition 3.4).
func StrongPrefix(h *History, opts CheckOptions) Verdict {
	return consistency.StrongPrefix(h, opts)
}
