package blockadt

import (
	"blockadt/internal/chains"
	"blockadt/internal/parallel"
)

// Table1Row is one row of the regenerated Table 1.
type Table1Row = chains.Row

// ClassifyTable regenerates Table 1 from the registry: simulate every
// registered system with the given parameters and classify its recorded
// history. Rows come back in registration order (Table 1 order for the
// built-ins); the runs fan out across all CPUs.
func ClassifyTable(p SimParams) []Table1Row {
	return ClassifyTableParallel(p, 0)
}

// ClassifyTableParallel is ClassifyTable with an explicit worker bound
// (<1 selects NumCPU).
func ClassifyTableParallel(p SimParams, parallelism int) []Table1Row {
	return parallel.Map(Systems(), parallelism, func(_ int, spec SystemSpec) Table1Row {
		return chains.ClassifyOne(specSystem{spec}, p)
	})
}

// ClassifySystem simulates a single registered system and classifies its
// history.
func ClassifySystem(name string, p SimParams) (Table1Row, error) {
	spec, err := LookupSystem(name)
	if err != nil {
		return Table1Row{}, err
	}
	return chains.ClassifyOne(specSystem{spec}, p), nil
}

// FormatTable1 renders the rows as an aligned text table mirroring Table 1
// with the measured column appended.
func FormatTable1(rows []Table1Row) string {
	return chains.FormatTable(rows)
}
