package blockadt

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"blockadt/internal/metrics"
)

// This file is the paired A-vs-B comparison API under the hypothesis
// harness: run two scenario matrices that differ in at most one
// dimension, pair their results scenario-for-scenario, and extract one
// metric's paired observations. Pairing — same system, same process
// count, same seed index, differing only in the varied dimension — is
// what makes the per-seed differences exchangeable under the null
// hypothesis, so the sign test downstream is exact rather than
// approximate.

// comparableDims are the matrix dimensions an A/B comparison may vary:
// each yields scenario pairs that share everything else, including the
// seed index. The remaining dimensions (seeds, rootSeed, metrics,
// sharding) define the sampling frame itself — varying them breaks
// pairing, so Compare rejects them.
var comparableDims = map[string]bool{
	"systems":      true,
	"links":        true,
	"adversaries":  true,
	"ns":           true,
	"targetBlocks": true,
	"alpha":        true,
}

// MatrixDelta reports the dimensions in which the two matrices differ,
// compared after defaulting (so an explicit Links ["sync"] equals an
// empty Links). The returned names are the matrix's JSON field names;
// "shard" covers both sharding fields. An empty delta means the
// matrices expand to identical scenario sets.
func MatrixDelta(a, b Matrix) []string {
	a, b = a.withDefaults(), b.withDefaults()
	var delta []string
	if !slices.Equal(a.Systems, b.Systems) {
		delta = append(delta, "systems")
	}
	if !slices.Equal(a.Links, b.Links) {
		delta = append(delta, "links")
	}
	if !slices.Equal(a.Adversaries, b.Adversaries) {
		delta = append(delta, "adversaries")
	}
	if !slices.Equal(a.Ns, b.Ns) {
		delta = append(delta, "ns")
	}
	if a.Seeds != b.Seeds {
		delta = append(delta, "seeds")
	}
	if a.RootSeed != b.RootSeed {
		delta = append(delta, "rootSeed")
	}
	if a.TargetBlocks != b.TargetBlocks {
		delta = append(delta, "targetBlocks")
	}
	if a.Alpha != b.Alpha {
		delta = append(delta, "alpha")
	}
	if !slices.Equal(a.Metrics, b.Metrics) {
		delta = append(delta, "metrics")
	}
	if a.ShardIndex != b.ShardIndex || a.ShardCount != b.ShardCount {
		delta = append(delta, "shard")
	}
	return delta
}

// ValuePair is one paired observation: the same scenario identity run
// under arm A and arm B, with the compared metric's value from each.
type ValuePair struct {
	// Key is the shared scenario identity — the canonical scenario key
	// with the varied dimension masked to "*".
	Key string  `json:"key"`
	A   float64 `json:"a"`
	B   float64 `json:"b"`
}

// ArmStats summarizes the compared metric over one arm's paired rows.
// Only paired rows count, so the two arms' statistics always describe
// the same scenario identities.
type ArmStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Comparison is the outcome of a paired A-vs-B run: the varied
// dimension, the paired observations in arm-A expansion order, per-arm
// summaries over the paired rows, and the bookkeeping of rows that
// could not be paired. Every field is a pure function of the two
// matrices, so comparisons are byte-identical at any parallelism — the
// same property the underlying sweeps have.
type Comparison struct {
	Metric string `json:"metric"`
	// Delta names the dimension the arms vary (empty when the matrices
	// are identical — the self-comparison an Equivalence check runs).
	Delta []string    `json:"delta,omitempty"`
	Pairs []ValuePair `json:"pairs"`
	A     ArmStats    `json:"a"`
	B     ArmStats    `json:"b"`
	// UnpairedA / UnpairedB count scenarios present in one arm only
	// (e.g. a committee system pruned by a PoW-only link model on the
	// other arm); SkippedA / SkippedB count paired identities dropped
	// because the metric was inapplicable on that arm's run.
	UnpairedA int `json:"unpairedA,omitempty"`
	UnpairedB int `json:"unpairedB,omitempty"`
	SkippedA  int `json:"skippedA,omitempty"`
	SkippedB  int `json:"skippedB,omitempty"`
}

// AValues / BValues return the paired observations of one arm, in pair
// order — the vectors the statistical tests consume.
func (c *Comparison) AValues() []float64 {
	out := make([]float64, len(c.Pairs))
	for i, p := range c.Pairs {
		out[i] = p.A
	}
	return out
}

func (c *Comparison) BValues() []float64 {
	out := make([]float64, len(c.Pairs))
	for i, p := range c.Pairs {
		out[i] = p.B
	}
	return out
}

// Compare runs both matrices through the sweep engine and pairs their
// results on the named metric. The matrices must differ in at most one
// of the comparable dimensions (systems, links, adversaries, ns,
// targetBlocks, alpha), and each arm must fix that dimension to a
// single value — otherwise masking it would collide identities within
// an arm. Matrices that do not request the metric get it added; ones
// that request other metrics must include it. Run options (store,
// census, tracer) apply to both arms, so a shared run store serves
// cached scenarios to either arm — including scenarios the two arms
// have in common.
func Compare(ctx context.Context, a, b Matrix, metric string, parallelism int, opts ...RunOption) (*Comparison, error) {
	if _, err := LookupMetric(metric); err != nil {
		return nil, err
	}
	delta := MatrixDelta(a, b)
	for _, d := range delta {
		if !comparableDims[d] {
			return nil, fmt.Errorf("blockadt: matrices differ in %s, which cannot be paired arm-to-arm (vary one of systems, links, adversaries, ns, targetBlocks, alpha)", d)
		}
	}
	if len(delta) > 1 {
		return nil, fmt.Errorf("blockadt: matrices differ in %d dimensions (%s); a comparison varies exactly one", len(delta), strings.Join(delta, ", "))
	}
	masked := ""
	if len(delta) == 1 {
		masked = delta[0]
		for _, m := range []Matrix{a, b} {
			if err := m.singleValued(masked); err != nil {
				return nil, err
			}
		}
	}
	var err error
	if a, err = withMetric(a, metric); err != nil {
		return nil, err
	}
	if b, err = withMetric(b, metric); err != nil {
		return nil, err
	}

	rowsA, err := collectArm(ctx, a, metric, masked, parallelism, opts)
	if err != nil {
		return nil, err
	}
	rowsB, err := collectArm(ctx, b, metric, masked, parallelism, opts)
	if err != nil {
		return nil, err
	}

	cmp := &Comparison{Metric: metric, Delta: delta}
	byKey := make(map[string]armRow, len(rowsB))
	for _, r := range rowsB {
		byKey[r.key] = r
	}
	pairedB := make(map[string]bool, len(rowsB))
	for _, ra := range rowsA {
		rb, ok := byKey[ra.key]
		if !ok {
			cmp.UnpairedA++
			continue
		}
		pairedB[ra.key] = true
		switch {
		case !ra.ok && !rb.ok:
			cmp.SkippedA++
			cmp.SkippedB++
		case !ra.ok:
			cmp.SkippedA++
		case !rb.ok:
			cmp.SkippedB++
		default:
			cmp.Pairs = append(cmp.Pairs, ValuePair{Key: ra.key, A: ra.value, B: rb.value})
		}
	}
	for _, rb := range rowsB {
		if !pairedB[rb.key] {
			cmp.UnpairedB++
		}
	}
	cmp.A = armStats(cmp.AValues())
	cmp.B = armStats(cmp.BValues())
	return cmp, nil
}

// singleValued checks that the named varied dimension holds exactly one
// value in this (defaulted) matrix. The scalar dimensions (alpha,
// targetBlocks) trivially qualify.
func (m Matrix) singleValued(dim string) error {
	m = m.withDefaults()
	n := 1
	switch dim {
	case "systems":
		n = len(m.Systems)
	case "links":
		n = len(m.Links)
	case "adversaries":
		n = len(m.Adversaries)
	case "ns":
		n = len(m.Ns)
	}
	if n != 1 {
		return fmt.Errorf("blockadt: comparison varies %s, so each arm must fix it to a single value (got %d)", dim, n)
	}
	return nil
}

// withMetric returns the matrix with the compared metric guaranteed in
// its Metrics list: an empty list becomes exactly [metric]; a non-empty
// list must already contain it (the caller chose a wider collection set
// — typically all metrics, to share cache entries with full sweeps).
func withMetric(m Matrix, metric string) (Matrix, error) {
	if len(m.Metrics) == 0 {
		m.Metrics = []string{metric}
		return m, nil
	}
	if slices.Contains(m.Metrics, metric) {
		return m, nil
	}
	return Matrix{}, fmt.Errorf("blockadt: matrix collects metrics %s but not the compared metric %q", strings.Join(m.Metrics, ", "), metric)
}

// armRow is one arm result reduced to what pairing needs: the masked
// identity, the metric value, and whether the metric applied.
type armRow struct {
	key   string
	value float64
	ok    bool
}

// collectArm streams one arm's sweep and projects each result onto the
// compared metric under the masked pair key.
func collectArm(ctx context.Context, m Matrix, metric, masked string, parallelism int, opts []RunOption) ([]armRow, error) {
	var rows []armRow
	for r, err := range Stream(ctx, m, parallelism, opts...) {
		if err != nil {
			return nil, err
		}
		v, ok := r.Metrics[metric]
		rows = append(rows, armRow{key: pairKey(r.Config, masked), value: v, ok: ok})
	}
	return rows, nil
}

// pairKey is the scenario's canonical key with the varied dimension
// masked to "*", so the two arms' counterpart scenarios collide on it.
// Masking adversaries also masks alpha (honest scenarios carry no merit
// share, adversarial ones do — the field varies with the dimension);
// masking links also masks the link's parameter suffix.
func pairKey(c Scenario, masked string) string {
	sys, link, lp, adv := c.System, c.Link, c.LinkParams, c.Adversary
	alpha := c.Alpha
	n, blocks := c.N, c.Blocks
	switch masked {
	case "systems":
		sys = "*"
	case "links":
		link, lp = "*", ""
	case "adversaries":
		adv, alpha = "*", -1
	case "alpha":
		alpha = -1
	case "ns":
		n = -1
	case "targetBlocks":
		blocks = -1
	}
	key := fmt.Sprintf("%s|%s|%s|a=%.4f|n=%d|b=%d|s=%d", sys, link, adv, alpha, n, blocks, c.SeedIndex)
	if lp != "" {
		key += "|lp=" + lp
	}
	return key
}

// armStats folds the paired values of one arm.
func armStats(values []float64) ArmStats {
	var w metrics.Welford
	for _, v := range values {
		w.Add(v)
	}
	return ArmStats{Count: w.Count(), Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max()}
}
