package blockadt

import "blockadt/internal/consensus"

// ConsensusValue is a value proposed to and decided by Consensus.
type ConsensusValue = consensus.Value

// Consensus is the one-shot agreement object of Theorem 4.2.
type Consensus = consensus.Consensus

// NewConsensusFromFrugal builds Protocol A (Figure 11): wait-free
// Consensus from a frugal k=1 oracle. The oracle must have K == 1 and a
// merit tape per proposer.
func NewConsensusFromFrugal(o *Oracle, base BlockRef) (Consensus, error) {
	return consensus.NewFromFrugal(o, base)
}
