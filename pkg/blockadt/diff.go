package blockadt

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FieldDelta is one divergent field of one scenario between two sweep
// reports. Numeric fields carry Old/New/Rel; categorical fields (the
// consistency verdicts, a metric present on only one side, the reports'
// root seeds) carry OldText/NewText and never pass a tolerance.
type FieldDelta struct {
	Key   string `json:"key"`   // scenario key, or "(report)" for report-level fields
	Field string `json:"field"` // e.g. "forks", "metric:fork_rate", "level"
	// Numeric deltas.
	Old float64 `json:"old,omitempty"`
	New float64 `json:"new,omitempty"`
	// Rel is |new-old| / max(|new|,|old|) — 1.0 when one side is zero.
	Rel float64 `json:"rel,omitempty"`
	// Categorical deltas.
	OldText string `json:"oldText,omitempty"`
	NewText string `json:"newText,omitempty"`
	// Within reports whether the delta passed the tolerance.
	Within bool `json:"within"`
}

func (d FieldDelta) numeric() bool { return d.OldText == "" && d.NewText == "" }

// Diff is the structured comparison of two sweep reports: the primitive
// `btadt diff` prints and CI gates on.
type Diff struct {
	// Tolerance is the relative tolerance the comparison ran under.
	Tolerance float64 `json:"tolerance"`
	// Compared counts the scenarios present in both reports.
	Compared int `json:"compared"`
	// OnlyOld/OnlyNew list scenario keys present in one report only.
	OnlyOld []string `json:"onlyOld,omitempty"`
	OnlyNew []string `json:"onlyNew,omitempty"`
	// Deltas lists every field that differs, in the old report's
	// expansion order (fields in declaration order, metrics sorted).
	Deltas []FieldDelta `json:"deltas,omitempty"`
}

// Clean reports whether the comparison passed: no scenarios unique to
// either side and every delta within tolerance.
func (d *Diff) Clean() bool {
	if len(d.OnlyOld) > 0 || len(d.OnlyNew) > 0 {
		return false
	}
	for _, e := range d.Deltas {
		if !e.Within {
			return false
		}
	}
	return true
}

// Breaches counts the deltas beyond tolerance.
func (d *Diff) Breaches() int {
	n := 0
	for _, e := range d.Deltas {
		if !e.Within {
			n++
		}
	}
	return n
}

// DiffReports compares two sweep reports scenario by scenario under a
// relative tolerance: a numeric field passes when
// |new-old| <= tol·max(|new|,|old|); categorical fields (consistency
// verdicts, refinements, match flags, a metric collected on one side
// only) must be identical. tol 0 demands byte-level agreement on every
// compared field — the right gate for this engine, whose sweeps are
// deterministic at any parallelism.
func DiffReports(old, new *Report, tol float64) *Diff {
	d := &Diff{Tolerance: tol}
	if old.RootSeed != new.RootSeed {
		d.Deltas = append(d.Deltas, FieldDelta{
			Key: "(report)", Field: "rootSeed",
			OldText: strconv.FormatUint(old.RootSeed, 10),
			NewText: strconv.FormatUint(new.RootSeed, 10),
		})
	}
	newByKey := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newByKey[r.Config.Key()] = r
	}
	seen := make(map[string]bool, len(old.Results))
	for _, a := range old.Results {
		key := a.Config.Key()
		seen[key] = true
		b, ok := newByKey[key]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, key)
			continue
		}
		d.Compared++
		d.Deltas = append(d.Deltas, diffResult(key, a, b, tol)...)
	}
	for _, r := range new.Results {
		if !seen[r.Config.Key()] {
			d.OnlyNew = append(d.OnlyNew, r.Config.Key())
		}
	}
	return d
}

// diffResult compares one scenario's two results field by field.
func diffResult(key string, a, b Result, tol float64) []FieldDelta {
	var out []FieldDelta
	categorical := func(field, av, bv string) {
		if av != bv {
			out = append(out, FieldDelta{Key: key, Field: field, OldText: av, NewText: bv})
		}
	}
	numeric := func(field string, av, bv float64) {
		if av == bv {
			return
		}
		rel := relDelta(av, bv)
		out = append(out, FieldDelta{Key: key, Field: field, Old: av, New: bv, Rel: rel, Within: rel <= tol})
	}

	categorical("refinement", a.Refinement, b.Refinement)
	categorical("expected", a.Expected, b.Expected)
	categorical("level", a.Level, b.Level)
	categorical("match", strconv.FormatBool(a.Match), strconv.FormatBool(b.Match))
	numeric("blocks", float64(a.Blocks), float64(b.Blocks))
	numeric("forks", float64(a.Forks), float64(b.Forks))
	numeric("ticks", float64(a.Ticks), float64(b.Ticks))
	numeric("delivered", float64(a.Delivered), float64(b.Delivered))
	numeric("dropped", float64(a.Dropped), float64(b.Dropped))
	numeric("maxReorg", float64(a.MaxReorg), float64(b.MaxReorg))
	numeric("finalityDepth", float64(a.FinalityDepth), float64(b.FinalityDepth))
	numeric("fairnessTVD", a.FairnessTVD, b.FairnessTVD)
	numeric("adversaryShare", a.AdversaryShare, b.AdversaryShare)

	for _, name := range metricUnion(a.Metrics, b.Metrics) {
		av, aok := a.Metrics[name]
		bv, bok := b.Metrics[name]
		switch {
		case aok && bok:
			numeric("metric:"+name, av, bv)
		case aok:
			categorical("metric:"+name, fmtMetric(av), "(absent)")
		default:
			categorical("metric:"+name, "(absent)", fmtMetric(bv))
		}
	}
	return out
}

func fmtMetric(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// relDelta is |a-b| scaled by the larger magnitude; exactly-equal values
// never reach it. With one side zero it is 1, so any appearing or
// vanishing quantity fails every tolerance below 100%.
func relDelta(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// metricUnion returns the sorted union of two metric maps' names.
func metricUnion(a, b map[string]float64) []string {
	set := make(map[string]bool, len(a)+len(b))
	for name := range a {
		set[name] = true
	}
	for name := range b {
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Format renders the diff as the deterministic text `btadt diff`
// prints: one line per divergent field, then a one-line verdict.
func (d *Diff) Format() string {
	var sb strings.Builder
	for _, key := range d.OnlyOld {
		fmt.Fprintf(&sb, "only in old: %s\n", key)
	}
	for _, key := range d.OnlyNew {
		fmt.Fprintf(&sb, "only in new: %s\n", key)
	}
	for _, e := range d.Deltas {
		verdict := "BEYOND"
		if e.Within {
			verdict = "within"
		}
		if e.numeric() {
			fmt.Fprintf(&sb, "%-52s %-20s %14g -> %-14g %+8.2f%% %s\n",
				e.Key, e.Field, e.Old, e.New, 100*signedRel(e), verdict)
		} else {
			fmt.Fprintf(&sb, "%-52s %-20s %14s -> %-14s %8s %s\n",
				e.Key, e.Field, e.OldText, e.NewText, "", "BEYOND")
		}
	}
	switch {
	case len(d.Deltas) == 0 && len(d.OnlyOld) == 0 && len(d.OnlyNew) == 0:
		fmt.Fprintf(&sb, "reports identical: %d configurations, every field equal\n", d.Compared)
	case d.Clean():
		fmt.Fprintf(&sb, "reports agree within tolerance %g: %d configurations, %d deltas all within\n",
			d.Tolerance, d.Compared, len(d.Deltas))
	default:
		fmt.Fprintf(&sb, "reports DIVERGE: %d configurations compared, %d deltas beyond tolerance %g, %d only-old, %d only-new\n",
			d.Compared, d.Breaches(), d.Tolerance, len(d.OnlyOld), len(d.OnlyNew))
	}
	return sb.String()
}

// signedRel is the signed relative change (new vs old) for display.
func signedRel(e FieldDelta) float64 {
	den := math.Max(math.Abs(e.Old), math.Abs(e.New))
	if den == 0 {
		return 0
	}
	return (e.New - e.Old) / den
}
