package blockadt

import (
	"strings"
	"testing"
)

func diffBase(t *testing.T) *Report {
	t.Helper()
	m := Matrix{
		Systems:      []string{"Bitcoin"},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Seeds:        2,
		RootSeed:     9,
		TargetBlocks: 8,
		Metrics:      []string{"fork_rate", "msg_bytes"},
	}
	rep, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func reencode(t *testing.T, rep *Report) *Report {
	t.Helper()
	raw, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDiffIdentical: a report diffed against its own decode is clean at
// tolerance zero.
func TestDiffIdentical(t *testing.T) {
	rep := diffBase(t)
	d := DiffReports(rep, reencode(t, rep), 0)
	if !d.Clean() || len(d.Deltas) != 0 {
		t.Fatalf("identical reports produced deltas: %+v", d.Deltas)
	}
	if d.Compared != rep.Total {
		t.Fatalf("compared %d of %d configs", d.Compared, rep.Total)
	}
	if !strings.Contains(d.Format(), "reports identical") {
		t.Fatalf("verdict line missing from:\n%s", d.Format())
	}
}

// TestDiffWithinTolerance: a small perturbation passes a loose
// tolerance and fails a tight one.
func TestDiffWithinTolerance(t *testing.T) {
	rep := diffBase(t)
	bumped := reencode(t, rep)
	bumped.Results[0].Metrics["fork_rate"] *= 1.04 // +4%

	loose := DiffReports(rep, bumped, 0.05)
	if !loose.Clean() {
		t.Fatalf("4%% drift failed a 5%% tolerance:\n%s", loose.Format())
	}
	if len(loose.Deltas) != 1 {
		t.Fatalf("expected exactly one delta, got %+v", loose.Deltas)
	}

	tight := DiffReports(rep, bumped, 0.01)
	if tight.Clean() {
		t.Fatal("4% drift passed a 1% tolerance")
	}
	if tight.Breaches() != 1 {
		t.Fatalf("Breaches = %d, want 1", tight.Breaches())
	}
}

// TestDiffRegression: categorical flips and missing configs always fail.
func TestDiffRegression(t *testing.T) {
	rep := diffBase(t)
	broken := reencode(t, rep)
	broken.Results[0].Level = "none"
	broken.Results[0].Match = false
	broken.Results[1].Forks += 10
	broken.Results = broken.Results[:len(broken.Results)-1]

	d := DiffReports(rep, broken, 0.5)
	if d.Clean() {
		t.Fatal("regressed report passed the diff")
	}
	if len(d.OnlyOld) != 1 {
		t.Fatalf("OnlyOld = %v, want one dropped config", d.OnlyOld)
	}
	out := d.Format()
	for _, want := range []string{"level", "match", "forks", "only in old", "DIVERGE"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffMetricPresence: a metric collected on one side only is a
// categorical failure at any tolerance.
func TestDiffMetricPresence(t *testing.T) {
	rep := diffBase(t)
	stripped := reencode(t, rep)
	delete(stripped.Results[0].Metrics, "msg_bytes")
	d := DiffReports(rep, stripped, 1.0)
	if d.Clean() {
		t.Fatal("missing metric passed the diff")
	}
	if !strings.Contains(d.Format(), "metric:msg_bytes") {
		t.Fatalf("metric absence not reported:\n%s", d.Format())
	}
}

// TestDiffRootSeedMismatch: comparing sweeps of different root seeds is
// flagged as a report-level delta.
func TestDiffRootSeedMismatch(t *testing.T) {
	rep := diffBase(t)
	other := reencode(t, rep)
	other.RootSeed++
	d := DiffReports(rep, other, 0)
	if d.Clean() {
		t.Fatal("root-seed mismatch passed the diff")
	}
	if !strings.Contains(d.Format(), "rootSeed") {
		t.Fatalf("root-seed mismatch not reported:\n%s", d.Format())
	}
}
