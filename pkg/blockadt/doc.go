// Package blockadt is the public, supported surface of the repository: a
// registry-driven façade over the reproduction of "Blockchain Abstract
// Data Type" (Anceaume et al., PPoPP'19 / arXiv:1802.09877).
//
// The paper's whole point is composability — a blockchain is a refinement
// R(BT-ADT, Θ) of the BlockTree abstract data type by a token oracle from
// the Θ_P/Θ_F,k hierarchy, read through a selection function f, deployed
// over a communication model. This package exposes exactly those axes as
// name-based registries:
//
//   - systems    (Table 1 rows: Bitcoin, Ethereum, …, Hyperledger)
//   - oracles    (prodigal Θ_P, frugal Θ_F,k)
//   - selectors  (longest, heaviest, ghost, single)
//   - links      (sync, async)
//   - adversaries (none, selfish)
//
// Everything composes by name. blockadt.New(name, opts...) instantiates a
// live System object — the refinement R(BT-ADT, Θ) with Append, Read,
// History and Finality. Simulate(name, opts...) runs a full network
// simulation of a registered system. Run and Stream execute whole scenario
// matrices (system × link × adversary × n × seed) across a bounded worker
// pool, deterministically: every configuration derives an independent prng
// stream from the matrix root seed, so the canonical JSON report is
// byte-identical at any parallelism.
//
// Extension happens through the same registries: RegisterSystem,
// RegisterOracle, RegisterSelector, RegisterLink and RegisterAdversary
// accept user-defined specs, after which the new name is constructible via
// New/Simulate, sweepable in a Matrix, and listed by `btadt list` — no
// switch statement to edit. See docs/api.md for a worked "add your own
// adversary" example.
//
// The `internal/` packages remain the implementation and are not a
// supported import path; examples/ and cmd/ import only this package (CI
// enforces it).
package blockadt
