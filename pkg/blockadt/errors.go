package blockadt

import (
	"errors"
	"fmt"
	"strings"

	"blockadt/internal/chains"
)

// ErrUnknownName is the sentinel every failed registry lookup matches:
// errors.Is(err, blockadt.ErrUnknownName) is true for any Lookup* miss
// (system, oracle, selector, link, adversary, metric — and the hypothesis
// experiment registry), regardless of which registry produced it.
var ErrUnknownName = errors.New("blockadt: unknown name")

// UnknownNameError is the typed failure of a registry lookup: the kind of
// registry consulted, the name that missed, and the registered
// alternatives at lookup time. Callers branch on it with errors.As to
// build structured responses (the serve 400 body) instead of parsing the
// message; the message itself is stable and carries the same guidance it
// always did.
type UnknownNameError struct {
	// Kind is the registry's singular kind: "system", "oracle",
	// "selector", "link", "adversary", "topology", "metric" or
	// "experiment".
	Kind string
	// Name is the key that was looked up.
	Name string
	// Registered lists the names that were registered, in registration
	// order.
	Registered []string
}

// Error renders the historical lookup-failure message byte for byte:
// `blockadt: unknown <kind> "<name>" (registered: a, b, c)`.
func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("blockadt: unknown %s %q (registered: %s)",
		e.Kind, e.Name, strings.Join(e.Registered, ", "))
}

// Is matches the ErrUnknownName sentinel, so errors.Is works without
// callers knowing the concrete type.
func (e *UnknownNameError) Is(target error) bool { return target == ErrUnknownName }

// convertExecuteErr lifts the executor's typed failures into the
// façade's error vocabulary: a system outside the generic PoW driver's
// support set surfaces as the same *UnknownNameError a registry miss
// produces (Kind "system", Registered = the driver's support set).
// Other executor errors (composition mistakes) pass through unchanged.
func convertExecuteErr(err error) error {
	var ue *chains.UnknownSystemError
	if errors.As(err, &ue) {
		return &UnknownNameError{Kind: "system", Name: ue.System, Registered: ue.Known}
	}
	return err
}
