package blockadt

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestLookupMissTyped pins the typed-error contract across every façade
// lookup: a miss is an *UnknownNameError matching the ErrUnknownName
// sentinel, carrying the registry kind, the missed name and the
// registered alternatives, with the historical message text intact.
func TestLookupMissTyped(t *testing.T) {
	cases := []struct {
		kind   string
		lookup func(string) error
		sample string // a name that must appear in Registered
	}{
		{"system", func(n string) error { _, err := LookupSystem(n); return err }, "Bitcoin"},
		{"oracle", func(n string) error { _, err := LookupOracle(n); return err }, "prodigal"},
		{"selector", func(n string) error { _, err := LookupSelector(n); return err }, "longest"},
		{"link", func(n string) error { _, err := LookupLink(n); return err }, LinkSync},
		{"adversary", func(n string) error { _, err := LookupAdversary(n); return err }, AdvSelfish},
		{"topology", func(n string) error { _, err := LookupTopology(n); return err }, TopoGossip},
		{"metric", func(n string) error { _, err := LookupMetric(n); return err }, MetricForkRate},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			err := c.lookup("no-such-name")
			if err == nil {
				t.Fatal("expected a lookup miss")
			}
			if !errors.Is(err, ErrUnknownName) {
				t.Fatalf("errors.Is(err, ErrUnknownName) = false for %v", err)
			}
			var unknown *UnknownNameError
			if !errors.As(err, &unknown) {
				t.Fatalf("errors.As(&UnknownNameError) = false for %v", err)
			}
			if unknown.Kind != c.kind || unknown.Name != "no-such-name" {
				t.Fatalf("got Kind %q Name %q, want %q %q", unknown.Kind, unknown.Name, c.kind, "no-such-name")
			}
			found := false
			for _, name := range unknown.Registered {
				if name == c.sample {
					found = true
				}
			}
			if !found {
				t.Fatalf("Registered should include %q, got %v", c.sample, unknown.Registered)
			}
			want := fmt.Sprintf("blockadt: unknown %s %q (registered: %s)",
				c.kind, "no-such-name", strings.Join(unknown.Registered, ", "))
			if err.Error() != want {
				t.Fatalf("message drifted:\n got %q\nwant %q", err.Error(), want)
			}
		})
	}
}

// TestLookupHit guards the non-error path: a registered name resolves
// without an error on every registry.
func TestLookupHit(t *testing.T) {
	if _, err := LookupSystem("Bitcoin"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupLink(LinkSync); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupMetric(MetricForkRate); err != nil {
		t.Fatal(err)
	}
}
