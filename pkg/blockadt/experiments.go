package blockadt

import "blockadt/internal/experiments"

// ExperimentResult is the outcome of one per-figure/per-theorem
// reproduction experiment.
type ExperimentResult = experiments.Result

// RunExperiments executes the paper-artifact experiment index with the
// given base seed (0 = the canonical 42).
func RunExperiments(seed uint64) []ExperimentResult {
	return experiments.Runner{Seed: seed}.All()
}

// RunExtensions executes the beyond-the-paper extension experiments
// (worked examples, future work, related-work mapping).
func RunExtensions(seed uint64) []ExperimentResult {
	return experiments.Runner{Seed: seed}.Extensions()
}

// FormatExperiments renders experiment results as an aligned report.
func FormatExperiments(results []ExperimentResult) string {
	return experiments.Format(results)
}
