package blockadt

import "blockadt/internal/fairness"

// FairnessReport is the realized-vs-entitled block-share analysis of one
// run — the executable reading of the paper's merit parameter.
type FairnessReport = fairness.Report

// FairnessAggregate summarizes a multi-seed fairness sweep.
type FairnessAggregate = fairness.Aggregate

// AnalyzeFairness computes per-process realized block shares against the
// merit entitlement from a recorded history.
func AnalyzeFairness(h *History, merits []float64) FairnessReport {
	return fairness.Analyze(h, merits)
}

// SweepFairnessSeeds runs the per-seed analysis across the worker pool:
// one derived seed per index, preserving seed order in the output.
func SweepFairnessSeeds(rootSeed uint64, seeds, parallelism int, run func(seed uint64) FairnessReport) []FairnessReport {
	return fairness.SweepSeeds(rootSeed, seeds, parallelism, run)
}

// AggregateFairness folds per-seed reports into a sweep summary at the
// given TVD tolerance.
func AggregateFairness(reports []FairnessReport, tolerance float64) FairnessAggregate {
	return fairness.AggregateReports(reports, tolerance)
}
