package hypothesis

import (
	"sort"

	"blockadt/internal/metrics"
	"blockadt/pkg/blockadt"
)

// evaluatePairs folds one comparison's paired observations into its
// test statistics and the class the evidence supports: Dominance (with
// the supported direction) when the paired sign test clears the
// significance gate AND the mean and median differences agree with the
// sign majority, Equivalence otherwise (including the all-tie case,
// where the arms are literally byte-equal on the metric). The function
// is a pure fold over the pair order, so it is as deterministic as the
// sweeps feeding it — and unit-testable on synthetic pair slices
// without running a simulator.
func evaluatePairs(pairs []blockadt.ValuePair) (Class, int, TestReport) {
	var t TestReport
	var wa, wb metrics.Welford
	diffs := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		wa.Add(p.A)
		wb.Add(p.B)
		d := p.B - p.A
		diffs = append(diffs, d)
		switch {
		case d > 0:
			t.SignPos++
		case d < 0:
			t.SignNeg++
		default:
			t.SignTies++
		}
	}
	t.SignP = metrics.SignTest(t.SignPos, t.SignNeg)
	if w, ok := metrics.WelchT(&wa, &wb); ok {
		t.Welch = &WelchOutcome{T: w.T, DF: w.DF, P: w.P}
	} else if wa.Count() >= 2 {
		t.Note = "Welch t omitted: both arms have zero variance"
	} else {
		t.Note = "Welch t omitted: fewer than two paired observations"
	}

	if t.SignPos == 0 && t.SignNeg == 0 {
		// Every pair tied: the arms are indistinguishable by
		// construction, not merely by lack of power.
		return Equivalence, 0, t
	}
	dir := 0
	switch {
	case t.SignPos > t.SignNeg:
		dir = 1
	case t.SignNeg > t.SignPos:
		dir = -1
	}
	if dir != 0 && t.SignP <= SignificanceLevel &&
		directionConsistent(dir, wb.Mean()-wa.Mean(), median(diffs)) {
		return Dominance, dir, t
	}
	return Equivalence, 0, t
}

// directionConsistent requires the mean difference to strictly agree
// with the sign-test majority and the median difference not to oppose
// it — a sanity check that a few extreme pairs are not dragging the
// verdict against the bulk of the evidence.
func directionConsistent(dir int, meanDiff, medianDiff float64) bool {
	d := float64(dir)
	return d*meanDiff > 0 && d*medianDiff >= 0
}

// median returns the sample median (0 when empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// verdictTwoArm compares a two-arm experiment's measured class against
// its claim. A claimed Dominance is refuted by a significant opposite
// direction or by arms that tie on every pair (they are provably not
// dominant), and inconclusive when the evidence merely fails the
// significance gate. A claimed Equivalence is refuted by any
// significant difference.
func verdictTwoArm(expected Class, expDir int, measured Class, mDir int, t TestReport) Verdict {
	switch expected {
	case Dominance:
		switch {
		case measured == Dominance && mDir == expDir:
			return Confirmed
		case measured == Dominance:
			return Refuted
		case t.SignPos == 0 && t.SignNeg == 0:
			return Refuted
		default:
			return Inconclusive
		}
	case Equivalence:
		if measured == Equivalence {
			return Confirmed
		}
		return Refuted
	}
	return Inconclusive
}
