package hypothesis

import (
	"math"
	"testing"

	"blockadt/pkg/blockadt"
)

func pairs(diffs ...float64) []blockadt.ValuePair {
	out := make([]blockadt.ValuePair, len(diffs))
	for i, d := range diffs {
		out[i] = blockadt.ValuePair{Key: "k", A: 1, B: 1 + d}
	}
	return out
}

func TestEvaluatePairsAllTies(t *testing.T) {
	class, dir, tests := evaluatePairs(pairs(0, 0, 0, 0, 0, 0, 0, 0))
	if class != Equivalence || dir != 0 {
		t.Fatalf("all ties: got class %s dir %d, want Equivalence 0", class, dir)
	}
	if tests.SignTies != 8 || tests.SignPos != 0 || tests.SignNeg != 0 {
		t.Fatalf("tie tally wrong: %+v", tests)
	}
	if tests.SignP != 1 {
		t.Fatalf("all-tie sign test p = %v, want 1", tests.SignP)
	}
}

func TestEvaluatePairsUnanimousDominance(t *testing.T) {
	class, dir, tests := evaluatePairs(pairs(0.1, 0.2, 0.1, 0.3, 0.2, 0.1, 0.15, 0.25))
	if class != Dominance || dir != 1 {
		t.Fatalf("got class %s dir %d, want Dominance +1", class, dir)
	}
	if want := 2.0 / 256.0; math.Abs(tests.SignP-want) > 1e-12 {
		t.Fatalf("sign p = %v, want %v", tests.SignP, want)
	}
}

func TestEvaluatePairsOppositeDirection(t *testing.T) {
	class, dir, _ := evaluatePairs(pairs(-0.1, -0.2, -0.1, -0.3, -0.2, -0.1, -0.15, -0.25))
	if class != Dominance || dir != -1 {
		t.Fatalf("got class %s dir %d, want Dominance -1", class, dir)
	}
}

func TestEvaluatePairsNotSignificant(t *testing.T) {
	// 5 up / 3 down: two-sided p = 0.7266 — indistinguishable.
	class, dir, tests := evaluatePairs(pairs(0.1, 0.2, 0.1, 0.3, 0.2, -0.1, -0.15, -0.25))
	if class != Equivalence || dir != 0 {
		t.Fatalf("got class %s dir %d, want Equivalence 0", class, dir)
	}
	if tests.SignP <= SignificanceLevel {
		t.Fatalf("5/3 split should not be significant, p = %v", tests.SignP)
	}
}

func TestEvaluatePairsZeroVarianceArms(t *testing.T) {
	// Both arms constant but different: the sign test still classifies
	// (every pair agrees), while the Welch t is undefined and must be
	// omitted with a note instead of producing NaNs.
	class, dir, tests := evaluatePairs(pairs(1, 1, 1, 1, 1, 1, 1, 1))
	if class != Dominance || dir != 1 {
		t.Fatalf("got class %s dir %d, want Dominance +1", class, dir)
	}
	if tests.Welch != nil {
		t.Fatalf("Welch t should be omitted for zero-variance arms, got %+v", tests.Welch)
	}
	if tests.Note == "" {
		t.Fatal("expected a note explaining the omitted Welch t")
	}
}

func TestEvaluatePairsMeanGuard(t *testing.T) {
	// Nine small wins and one catastrophic loss: the sign test is
	// significant (9/1, p ≈ 0.021) but the mean difference opposes the
	// majority, so the direction-consistency guard demotes the verdict.
	class, dir, _ := evaluatePairs(pairs(0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, -10))
	if class != Equivalence || dir != 0 {
		t.Fatalf("got class %s dir %d, want Equivalence 0 (mean disagrees with sign majority)", class, dir)
	}
}

func TestVerdictTwoArm(t *testing.T) {
	sig := TestReport{SignPos: 8, SignNeg: 0, SignP: 2.0 / 256.0}
	ties := TestReport{SignTies: 8, SignP: 1}
	weak := TestReport{SignPos: 5, SignNeg: 3, SignP: 0.7266}
	cases := []struct {
		name     string
		expected Class
		expDir   int
		measured Class
		mDir     int
		t        TestReport
		want     Verdict
	}{
		{"dominance confirmed", Dominance, 1, Dominance, 1, sig, Confirmed},
		{"dominance wrong direction", Dominance, 1, Dominance, -1, sig, Refuted},
		{"dominance but arms tie", Dominance, 1, Equivalence, 0, ties, Refuted},
		{"dominance underpowered", Dominance, 1, Equivalence, 0, weak, Inconclusive},
		{"equivalence confirmed", Equivalence, 0, Equivalence, 0, ties, Confirmed},
		{"equivalence refuted", Equivalence, 0, Dominance, 1, sig, Refuted},
	}
	for _, c := range cases {
		if got := verdictTwoArm(c.expected, c.expDir, c.measured, c.mDir, c.t); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v, want 0", m)
	}
}
