package hypothesis

import (
	"fmt"

	"blockadt/pkg/blockadt"
)

// The three first-party experiments. Each is an executable statement of
// one of the paper's claims over the scenario engine; their checked-in
// outcomes under hypotheses/ are the CI goldens. All three share the
// sweep root seed 42 and the default n=8, 30-block scenario shape, so
// their scenarios are cache hits against the CI sweep store wherever
// the dimensions overlap.

// phaseGrid is the (drop rate, GST) grid of the Theorem 4.7 phase
// boundary experiment: the p=0 row is reliable weak synchrony at two
// stabilization times (Eventual Prefix must hold), the p>0 rows drop
// correct-process messages (Theorem 4.7: Eventual Prefix must fall).
var phaseGrid = []struct {
	Rate      float64
	GSTDeltas int
}{
	{0, 8}, {0, 16},
	{0.05, 8}, {0.05, 16},
	{0.10, 8}, {0.10, 16},
}

func init() {
	allMetrics := blockadt.MetricNames()
	powMatrix := func(link string) blockadt.Matrix {
		return blockadt.Matrix{
			Systems:      []string{"Bitcoin", "Ethereum"},
			Links:        []string{link},
			Ns:           []int{8},
			TargetBlocks: 30,
			// Collecting the full metric set keeps these scenarios
			// byte-identical with the CI sweep's store keys (`-metrics
			// all`), so the cached shards serve them without simulating.
			Metrics: allMetrics,
		}
	}

	Register(Experiment{
		Name: "fork-rate-vs-delta",
		Claim: "Quadrupling the network delay bound (asynchronous links with maxDelay = 32 " +
			"vs the synchronous δ = 8) raises the PoW fork rate: a block update in flight " +
			"four times longer widens the window in which two miners extend different " +
			"tips, so forks per committed block increase across the paired seeds.",
		Class:     Dominance,
		Metric:    blockadt.MetricForkRate,
		Direction: +1,
		Seeds:     8,
		RootSeed:  42,
		Arms: []Arm{
			{Label: "sync", Matrix: powMatrix(blockadt.LinkSync)},
			{Label: "slow", Matrix: powMatrix(blockadt.EnsureAsyncLink(32))},
		},
	})

	alphas := []float64{0.15, 0.25, 0.34, 0.45}
	selfishArms := make([]Arm, 0, len(alphas))
	for _, alpha := range alphas {
		selfishArms = append(selfishArms, Arm{
			Label: fmt.Sprintf("α=%.2f", alpha),
			Value: alpha,
			Matrix: blockadt.Matrix{
				Systems:      []string{"Bitcoin"},
				Adversaries:  []string{blockadt.AdvSelfish},
				Alpha:        alpha,
				Ns:           []int{8},
				TargetBlocks: 30,
				Metrics:      allMetrics,
			},
		})
	}
	Register(Experiment{
		Name: "selfish-revenue-vs-alpha",
		Claim: "A selfish miner's realized main-chain share grows monotonically with its " +
			"merit share α: each step of the α grid raises the adversary_share mean, and " +
			"the endpoints (α = 0.15 vs α = 0.45) separate on every paired seed.",
		Class:     Monotonicity,
		Metric:    blockadt.MetricAdversaryShare,
		Direction: +1,
		Seeds:     8,
		RootSeed:  42,
		Arms:      selfishArms,
	})

	phaseArms := make([]Arm, 0, len(phaseGrid))
	for _, cell := range phaseGrid {
		link := blockadt.EnsureLossyPsyncLink(cell.Rate, cell.GSTDeltas)
		phaseArms = append(phaseArms, Arm{
			Label: fmt.Sprintf("p=%.2f gst=%dδ", cell.Rate, cell.GSTDeltas),
			Matrix: blockadt.Matrix{
				Systems:      []string{"Bitcoin", "Ethereum"},
				Links:        []string{link},
				Ns:           []int{8},
				TargetBlocks: 30,
			},
		})
	}
	Register(Experiment{
		Name: "theorem-4.7-phase-boundary",
		Claim: "The Theorem 4.7 boundary is sharp and deterministic over weakly-synchronous " +
			"lossy links: with reliable channels (p = 0) every run converges to its " +
			"eventual-consistency prediction at both stabilization times, while any " +
			"positive drop rate destroys even Eventual Prefix on every run — the outcome " +
			"is decided by the configuration, not by chance.",
		Class:    Deterministic,
		Seeds:    4,
		RootSeed: 42,
		Arms:     phaseArms,
	})
}
