package hypothesis

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFindings renders the outcome as a FINDINGS.md document: the
// claim, the verdict, per-arm summaries, and the paired per-seed
// evidence. The document is a pure function of the outcome — no
// timestamps, no environment — so checked-in findings only change when
// the evidence does.
func (o *Outcome) WriteFindings(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Hypothesis: %s\n\n", o.Name)
	fmt.Fprintf(&b, "**Claim.** %s\n\n", o.Claim)
	fmt.Fprintf(&b, "**Verdict: %s** — expected %s, measured %s%s.\n\n",
		strings.ToUpper(string(o.Verdict)), o.Expected, o.Measured, directionSuffix(o))

	fmt.Fprintf(&b, "## Setup\n\n")
	fmt.Fprintf(&b, "| | |\n|---|---|\n")
	if o.Metric != "" {
		fmt.Fprintf(&b, "| metric | `%s` |\n", o.Metric)
	}
	fmt.Fprintf(&b, "| seeds | %d per arm, paired by seed index |\n", o.Seeds)
	fmt.Fprintf(&b, "| root seed | %d |\n", o.RootSeed)
	fmt.Fprintf(&b, "| significance | paired sign test, two-sided, α = %.2f |\n\n", SignificanceLevel)

	o.writeArms(&b)
	o.writeComparisons(&b)

	if len(o.Notes) > 0 {
		fmt.Fprintf(&b, "## Notes\n\n")
		for _, n := range o.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
		fmt.Fprintf(&b, "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func directionSuffix(o *Outcome) string {
	if o.MeasuredDirection == 0 {
		return ""
	}
	return fmt.Sprintf(" (direction %+d)", o.MeasuredDirection)
}

func (o *Outcome) writeArms(b *strings.Builder) {
	fmt.Fprintf(b, "## Arms\n\n")
	deterministic := len(o.Arms) > 0 && o.Arms[0].Determinism != nil
	if deterministic {
		fmt.Fprintf(b, "| arm | expected level | rows | matched | measured levels |\n")
		fmt.Fprintf(b, "|---|---|---|---|---|\n")
		for _, a := range o.Arms {
			d := a.Determinism
			fmt.Fprintf(b, "| %s | %s | %d | %d | %s |\n",
				a.Label, d.Expected, d.Rows, d.Matched, levelHistogram(d.Levels))
		}
	} else {
		fmt.Fprintf(b, "| arm | value | pairs | mean | std | min | max |\n")
		fmt.Fprintf(b, "|---|---|---|---|---|---|---|\n")
		for _, a := range o.Arms {
			s := a.Stats
			fmt.Fprintf(b, "| %s | %s | %d | %s | %s | %s | %s |\n",
				a.Label, fnum(a.Value), s.Count, fnum(s.Mean), fnum(s.Std), fnum(s.Min), fnum(s.Max))
		}
	}
	fmt.Fprintf(b, "\n")
}

func (o *Outcome) writeComparisons(b *strings.Builder) {
	for _, c := range o.Comparisons {
		fmt.Fprintf(b, "## %s vs %s\n\n", c.ALabel, c.BLabel)
		t := c.Tests
		fmt.Fprintf(b, "Sign test over %d pairs: %d above, %d below, %d tied — p = %s.\n",
			t.SignPos+t.SignNeg+t.SignTies, t.SignPos, t.SignNeg, t.SignTies, fnum(t.SignP))
		if t.Welch != nil {
			fmt.Fprintf(b, "Welch t = %s (df = %s), p = %s.\n", fnum(t.Welch.T), fnum(t.Welch.DF), fnum(t.Welch.P))
		}
		if t.Note != "" {
			fmt.Fprintf(b, "%s.\n", strings.TrimSuffix(t.Note, "."))
		}
		fmt.Fprintf(b, "\n### Paired values\n\n")
		fmt.Fprintf(b, "| scenario | %s | %s | Δ |\n|---|---|---|---|\n", c.ALabel, c.BLabel)
		for _, p := range c.Comparison.Pairs {
			fmt.Fprintf(b, "| `%s` | %s | %s | %s |\n", p.Key, fnum(p.A), fnum(p.B), fnum(p.B-p.A))
		}
		fmt.Fprintf(b, "\n")
	}
}

// levelHistogram renders a measured-level histogram in sorted-key order
// ("EC:14, none:2"), matching the canonical JSON's map key ordering.
func levelHistogram(levels map[string]int) string {
	keys := make([]string, 0, len(levels))
	for k := range levels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, levels[k]))
	}
	return strings.Join(parts, ", ")
}

// fnum formats a float compactly but deterministically (%.6g — enough
// precision for every metric the harness compares, stable across runs).
func fnum(v float64) string {
	return fmt.Sprintf("%.6g", v)
}
