// Package hypothesis is the statistical A-vs-B verdict harness over the
// blockadt scenario engine: declare an experiment — a claim, two or more
// matrix arms differing in exactly one dimension, a metric, and an
// expected relationship — and Run turns deterministic paired sweeps into
// a Confirmed/Refuted/Inconclusive verdict with the per-seed evidence
// attached.
//
// The harness exists because the repository's sweeps answer "what
// happened" but not "is the difference real": a fork-rate gap between
// two link models over eight seeds may be signal or seed noise. Pairing
// arms seed-for-seed (blockadt.Compare) makes the per-seed differences
// exchangeable under the null hypothesis, so an exact paired sign test
// — backed by a Welch t as a parametric second opinion — turns the gap
// into a p-value with no distributional assumptions and no external
// statistics dependency.
//
// Everything downstream of the simulator is a pure fold of the paired
// results, so outcomes are byte-identical at any parallelism and
// cache-first under a shared run store — the properties that let CI gate
// on a checked-in verdict with `btadt diff -tol 0`.
package hypothesis

import (
	"fmt"
	"sync"

	"blockadt/pkg/blockadt"
)

// Class is a relationship an experiment claims between its arms.
type Class string

const (
	// Deterministic claims each arm's per-run expected consistency level
	// is realized by every run — no statistics, every row must match.
	Deterministic Class = "Deterministic"
	// Dominance claims arm B's metric exceeds arm A's (Direction +1; -1
	// for the reverse), consistently enough to pass the paired sign test.
	Dominance Class = "Dominance"
	// Monotonicity claims the metric moves monotonically with the arms'
	// Value axis, with a significant endpoint-to-endpoint difference.
	Monotonicity Class = "Monotonicity"
	// Equivalence claims the arms are statistically indistinguishable on
	// the metric.
	Equivalence Class = "Equivalence"
)

// Verdict is the comparison of the expected class against the measured
// evidence.
type Verdict string

const (
	// Confirmed: the measured relationship matches the claim.
	Confirmed Verdict = "confirmed"
	// Refuted: the evidence is significant and contradicts the claim.
	Refuted Verdict = "refuted"
	// Inconclusive: the evidence neither confirms nor significantly
	// contradicts (e.g. the right direction without significance).
	Inconclusive Verdict = "inconclusive"
)

// SignificanceLevel is the two-sided significance gate of the paired
// sign test. With eight paired seeds a unanimous direction reaches
// p = 2/256 ≈ 0.008; six paired seeds are the minimum that can clear
// the gate at all.
const SignificanceLevel = 0.05

// Arm is one configuration of an experiment: a scenario matrix plus its
// position on the varied axis. The matrix's Seeds field is ignored —
// the runner stamps the experiment's (or the caller's) seed count so
// every arm always sweeps the same seed indices.
type Arm struct {
	// Label names the arm in findings ("sync", "α=0.25", "p=0.10 gst=16δ").
	Label string
	// Value is the arm's coordinate on the varied axis, used to order
	// Monotonicity arms and reported in findings. Unused (0) for
	// two-arm and Deterministic experiments.
	Value float64
	// Matrix is the arm's scenario matrix. Arms of one experiment must
	// differ in exactly one comparable dimension (blockadt.Compare's
	// contract) so their scenarios pair seed-for-seed.
	Matrix blockadt.Matrix
}

// Experiment declares one hypothesis: a claim, the arms that probe it,
// the metric that measures it, and the relationship the claim predicts.
type Experiment struct {
	// Name is the registry key (kebab-case, also the findings directory
	// name).
	Name string
	// Claim is the prose statement the verdict confirms or refutes.
	Claim string
	// Class is the claimed relationship.
	Class Class
	// Metric is the registered metric compared across arms. Empty for
	// Deterministic experiments, which judge per-run consistency levels
	// instead.
	Metric string
	// Direction is +1 when the metric is claimed to increase from arm A
	// to arm B (or along the Value axis), -1 for decrease. Unused for
	// Deterministic and Equivalence claims.
	Direction int
	// Seeds is the default paired seed count per arm; callers may
	// override it upward or downward (but never below two for
	// statistical classes — Run refuses).
	Seeds int
	// RootSeed is the experiment's root seed; arms share it so scenario
	// streams pair up.
	RootSeed uint64
	// Arms are the configurations, in comparison order: exactly two for
	// Dominance/Equivalence, three or more in ascending Value order for
	// Monotonicity, one or more for Deterministic.
	Arms []Arm
}

// The experiment registry mirrors the façade's: name-keyed,
// registration-order-preserving, with misses reported as
// *blockadt.UnknownNameError (Kind "experiment") so errors.Is/As work
// the same way they do for every other registry.
var (
	regMu    sync.RWMutex
	regOrder []string
	regByKey = map[string]Experiment{}
)

// Register adds an experiment to the registry, panicking on an empty or
// duplicate name like the façade's Register* functions do.
func Register(e Experiment) {
	if e.Name == "" {
		panic("hypothesis: cannot register an experiment with an empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByKey[e.Name]; dup {
		panic(fmt.Sprintf("hypothesis: experiment %q registered twice", e.Name))
	}
	regOrder = append(regOrder, e.Name)
	regByKey[e.Name] = e
}

// Lookup returns the registered experiment, or an UnknownNameError
// naming the registered alternatives.
func Lookup(name string) (Experiment, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := regByKey[name]
	if !ok {
		return Experiment{}, &blockadt.UnknownNameError{
			Kind:       "experiment",
			Name:       name,
			Registered: append([]string(nil), regOrder...),
		}
	}
	return e, nil
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// All returns every registered experiment in registration order.
func All() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, regByKey[name])
	}
	return out
}
