package hypothesis

import (
	"encoding/json"
	"fmt"
	"io"

	"blockadt/pkg/blockadt"
)

// OutcomeFormat is the value of every outcome's discriminator field —
// `btadt diff` sniffs it to pick the hypothesis comparison path, and it
// versions the JSON shape for CI goldens.
const OutcomeFormat = "btadt-hypothesis-v1"

// Outcome is the complete result of running one experiment: the claim,
// the verdict, per-arm summaries, and — for statistical classes — every
// paired observation and test statistic that produced it. All fields
// are pure functions of the experiment and its seed count, so encoding
// an outcome is byte-identical across runs, parallelism levels, and
// cache states.
type Outcome struct {
	// Hypothesis is the format discriminator (OutcomeFormat).
	Hypothesis string `json:"hypothesis"`
	Name       string `json:"name"`
	Claim      string `json:"claim"`
	// Expected is the claimed class; Measured is the class the evidence
	// supports; Verdict compares them.
	Expected Class   `json:"expectedClass"`
	Measured Class   `json:"measuredClass"`
	Verdict  Verdict `json:"verdict"`
	Metric   string  `json:"metric,omitempty"`
	// Direction is the claimed direction (+1/-1); MeasuredDirection is
	// the direction the evidence supports (0 when none).
	Direction         int    `json:"direction,omitempty"`
	MeasuredDirection int    `json:"measuredDirection,omitempty"`
	Seeds             int    `json:"seeds"`
	RootSeed          uint64 `json:"rootSeed"`
	// Arms summarizes each arm in experiment order.
	Arms []ArmOutcome `json:"arms"`
	// Comparisons are the paired A-vs-B runs behind the verdict:
	// one for two-arm experiments; each adjacent pair plus the
	// endpoints for Monotonicity. Empty for Deterministic experiments.
	Comparisons []ComparisonOutcome `json:"comparisons,omitempty"`
	// Notes carry human-readable caveats (zero-variance arms, skipped
	// Welch tests, unpaired rows).
	Notes []string `json:"notes,omitempty"`
}

// ArmOutcome summarizes one arm.
type ArmOutcome struct {
	Label string  `json:"label"`
	Value float64 `json:"value,omitempty"`
	// Stats summarizes the compared metric over the arm's paired rows
	// (statistical classes only).
	Stats *blockadt.ArmStats `json:"stats,omitempty"`
	// Determinism reports the per-run consistency-level check
	// (Deterministic class only).
	Determinism *DeterminismOutcome `json:"determinism,omitempty"`
}

// DeterminismOutcome is one arm's expected-vs-measured consistency
// tally: how many of the arm's runs realized the predicted level.
type DeterminismOutcome struct {
	// Rows and Matched count the arm's scenario runs and how many
	// matched their predicted level.
	Rows    int `json:"rows"`
	Matched int `json:"matched"`
	// Expected is the predicted consistency level ("SC", "EC", "none");
	// Levels histograms the measured ones.
	Expected string         `json:"expectedLevel"`
	Levels   map[string]int `json:"levels"`
}

// ComparisonOutcome is one paired A-vs-B comparison with its test
// statistics.
type ComparisonOutcome struct {
	ALabel string `json:"aLabel"`
	BLabel string `json:"bLabel"`
	// Comparison carries the paired values and per-arm stats
	// (blockadt.Compare's result).
	Comparison *blockadt.Comparison `json:"comparison"`
	// Tests carries the paired sign test and, when defined, the Welch t.
	Tests TestReport `json:"tests"`
}

// TestReport is the statistical evidence of one paired comparison.
type TestReport struct {
	// SignPos counts pairs where B > A, SignNeg where B < A, SignTies
	// where they are equal; SignP is the exact two-sided sign-test
	// p-value over the non-tied pairs.
	SignPos  int     `json:"signPos"`
	SignNeg  int     `json:"signNeg"`
	SignTies int     `json:"signTies"`
	SignP    float64 `json:"signP"`
	// Welch is the two-sample Welch t-test over the two arms' values —
	// a parametric second opinion, never the gate. Omitted when
	// undefined (fewer than two observations per arm, or both arms
	// zero-variance).
	Welch *WelchOutcome `json:"welch,omitempty"`
	// Note explains an omitted or degenerate test.
	Note string `json:"note,omitempty"`
}

// WelchOutcome is a computed Welch t-test.
type WelchOutcome struct {
	T  float64 `json:"t"`
	DF float64 `json:"df"`
	P  float64 `json:"p"`
}

// EncodeJSON writes the outcome in the repository's canonical JSON
// form: two-space indent, no HTML escaping, trailing newline — the
// byte-exact shape `btadt diff -tol 0` gates on.
func (o *Outcome) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(o)
}

// DecodeOutcome reads a canonical outcome back, rejecting JSON that
// does not carry the expected discriminator.
func DecodeOutcome(r io.Reader) (*Outcome, error) {
	var o Outcome
	dec := json.NewDecoder(r)
	if err := dec.Decode(&o); err != nil {
		return nil, err
	}
	if o.Hypothesis != OutcomeFormat {
		return nil, &FormatError{Got: o.Hypothesis}
	}
	return &o, nil
}

// FormatError reports a hypothesis JSON document of the wrong format
// version (or not a hypothesis document at all).
type FormatError struct{ Got string }

func (e *FormatError) Error() string {
	return fmt.Sprintf("hypothesis: document is not %s (got %q)", OutcomeFormat, e.Got)
}
