package hypothesis

import (
	"context"
	"fmt"

	"blockadt/pkg/blockadt"
)

// Config parameterizes one Run.
type Config struct {
	// Seeds overrides the experiment's default paired seed count; 0
	// keeps the default. Statistical classes refuse fewer than two —
	// a single seed cannot distinguish signal from seed noise.
	Seeds int
	// Parallelism bounds the sweep workers (<1 selects NumCPU). The
	// outcome is byte-identical at any value.
	Parallelism int
	// Metrics overrides every arm's collected-metric set (e.g. the
	// CLI's -metrics flag). It must still include the experiment's
	// compared metric — blockadt.Compare rejects a set that lacks it.
	// Nil keeps each arm's declared set.
	Metrics []string
	// Options apply to every underlying sweep (store, census, tracer);
	// with a shared run store, reruns and overlapping arms are served
	// cache-first.
	Options []blockadt.RunOption
}

// ResolveSeeds reports the paired seed count Run will use for this
// config: the override if positive, else the experiment default, else 8.
func (e Experiment) ResolveSeeds(cfg Config) int {
	if cfg.Seeds > 0 {
		return cfg.Seeds
	}
	if e.Seeds > 0 {
		return e.Seeds
	}
	return 8
}

// Matrices returns each arm's matrix exactly as Run resolves it under
// cfg — the scenario set a store preflight should check.
func (e Experiment) Matrices(cfg Config) []blockadt.Matrix {
	seeds := e.ResolveSeeds(cfg)
	out := make([]blockadt.Matrix, 0, len(e.Arms))
	for _, a := range e.Arms {
		out = append(out, armMatrix(e, a, seeds, cfg))
	}
	return out
}

// Run executes the experiment and returns its outcome. Every path runs
// through the deterministic sweep engine (blockadt.Stream / Compare),
// so the outcome is a pure function of the experiment and the seed
// count: byte-identical at any parallelism, and cache-first under
// blockadt.WithStore.
func Run(ctx context.Context, e Experiment, cfg Config) (*Outcome, error) {
	seeds := e.ResolveSeeds(cfg)
	if e.Class != Deterministic && seeds < 2 {
		return nil, fmt.Errorf("hypothesis: experiment %q needs at least 2 paired seeds for a statistical verdict, got %d", e.Name, seeds)
	}
	out := &Outcome{
		Hypothesis: OutcomeFormat,
		Name:       e.Name,
		Claim:      e.Claim,
		Expected:   e.Class,
		Metric:     e.Metric,
		Seeds:      seeds,
		RootSeed:   e.RootSeed,
	}
	switch e.Class {
	case Deterministic:
		if len(e.Arms) == 0 {
			return nil, fmt.Errorf("hypothesis: experiment %q has no arms", e.Name)
		}
		return runDeterministic(ctx, e, seeds, cfg, out)
	case Dominance, Equivalence:
		if len(e.Arms) != 2 {
			return nil, fmt.Errorf("hypothesis: %s experiment %q needs exactly 2 arms, got %d", e.Class, e.Name, len(e.Arms))
		}
		if e.Class == Dominance && e.Direction == 0 {
			return nil, fmt.Errorf("hypothesis: Dominance experiment %q declares no direction", e.Name)
		}
		out.Direction = e.Direction
		return runTwoArm(ctx, e, seeds, cfg, out)
	case Monotonicity:
		if len(e.Arms) < 3 {
			return nil, fmt.Errorf("hypothesis: Monotonicity experiment %q needs at least 3 arms, got %d", e.Name, len(e.Arms))
		}
		if e.Direction == 0 {
			return nil, fmt.Errorf("hypothesis: Monotonicity experiment %q declares no direction", e.Name)
		}
		out.Direction = e.Direction
		return runMonotonic(ctx, e, seeds, cfg, out)
	default:
		return nil, fmt.Errorf("hypothesis: experiment %q has unknown class %q", e.Name, e.Class)
	}
}

// armMatrix resolves one arm's matrix for this run: the experiment's
// root seed and the run's seed count override whatever the arm's
// declaration carried, so all arms always sweep the same paired seed
// indices from the same root; a Config.Metrics override replaces the
// arm's collected-metric set.
func armMatrix(e Experiment, a Arm, seeds int, cfg Config) blockadt.Matrix {
	m := a.Matrix
	m.Seeds = seeds
	m.RootSeed = e.RootSeed
	if cfg.Metrics != nil {
		m.Metrics = append([]string(nil), cfg.Metrics...)
	}
	return m
}

// runTwoArm handles Dominance and Equivalence: one paired comparison,
// classified by the sign test.
func runTwoArm(ctx context.Context, e Experiment, seeds int, cfg Config, out *Outcome) (*Outcome, error) {
	armA, armB := e.Arms[0], e.Arms[1]
	cmp, err := blockadt.Compare(ctx,
		armMatrix(e, armA, seeds, cfg), armMatrix(e, armB, seeds, cfg),
		e.Metric, cfg.Parallelism, cfg.Options...)
	if err != nil {
		return nil, err
	}
	if len(cmp.Pairs) == 0 {
		return nil, fmt.Errorf("hypothesis: experiment %q produced no paired scenarios (every row was unpaired or the metric never applied)", e.Name)
	}
	measured, mdir, tests := evaluatePairs(cmp.Pairs)
	out.Measured = measured
	out.MeasuredDirection = mdir
	out.Verdict = verdictTwoArm(e.Class, e.Direction, measured, mdir, tests)
	out.Arms = []ArmOutcome{
		{Label: armA.Label, Value: armA.Value, Stats: &cmp.A},
		{Label: armB.Label, Value: armB.Value, Stats: &cmp.B},
	}
	out.Comparisons = []ComparisonOutcome{{ALabel: armA.Label, BLabel: armB.Label, Comparison: cmp, Tests: tests}}
	out.Notes = append(out.Notes, comparisonNotes(armA.Label, armB.Label, cmp)...)
	if tests.Note != "" {
		out.Notes = append(out.Notes, tests.Note)
	}
	return out, nil
}

// runMonotonic handles Monotonicity: every adjacent pair of arms is
// compared to check the mean ordering, and the endpoint pair carries
// the significance gate. Under a shared run store each arm simulates
// once and the overlapping comparisons are cache hits.
func runMonotonic(ctx context.Context, e Experiment, seeds int, cfg Config, out *Outcome) (*Outcome, error) {
	arms := e.Arms
	for i := 1; i < len(arms); i++ {
		if arms[i].Value <= arms[i-1].Value {
			return nil, fmt.Errorf("hypothesis: Monotonicity experiment %q arms must be in strictly ascending Value order (arm %d: %v after %v)",
				e.Name, i, arms[i].Value, arms[i-1].Value)
		}
	}
	dir := float64(e.Direction)

	// Adjacent comparisons establish the per-step ordering and give each
	// arm its paired summary statistics.
	meansOrdered := true
	for i := 0; i+1 < len(arms); i++ {
		cmp, err := blockadt.Compare(ctx,
			armMatrix(e, arms[i], seeds, cfg), armMatrix(e, arms[i+1], seeds, cfg),
			e.Metric, cfg.Parallelism, cfg.Options...)
		if err != nil {
			return nil, err
		}
		if len(cmp.Pairs) == 0 {
			return nil, fmt.Errorf("hypothesis: experiment %q arms %q and %q share no paired scenarios", e.Name, arms[i].Label, arms[i+1].Label)
		}
		_, _, tests := evaluatePairs(cmp.Pairs)
		if dir*(cmp.B.Mean-cmp.A.Mean) <= 0 {
			meansOrdered = false
		}
		a := cmp.A
		out.Arms = append(out.Arms, ArmOutcome{Label: arms[i].Label, Value: arms[i].Value, Stats: &a})
		if i+2 == len(arms) {
			b := cmp.B
			out.Arms = append(out.Arms, ArmOutcome{Label: arms[i+1].Label, Value: arms[i+1].Value, Stats: &b})
		}
		out.Comparisons = append(out.Comparisons, ComparisonOutcome{ALabel: arms[i].Label, BLabel: arms[i+1].Label, Comparison: cmp, Tests: tests})
		out.Notes = append(out.Notes, comparisonNotes(arms[i].Label, arms[i+1].Label, cmp)...)
	}

	// The endpoint comparison carries the significance gate: if the
	// extremes are not significantly separated, no amount of in-between
	// ordering makes the trend statistically real.
	first, last := arms[0], arms[len(arms)-1]
	end, err := blockadt.Compare(ctx,
		armMatrix(e, first, seeds, cfg), armMatrix(e, last, seeds, cfg),
		e.Metric, cfg.Parallelism, cfg.Options...)
	if err != nil {
		return nil, err
	}
	if len(end.Pairs) == 0 {
		return nil, fmt.Errorf("hypothesis: experiment %q endpoint arms %q and %q share no paired scenarios", e.Name, first.Label, last.Label)
	}
	endClass, endDir, endTests := evaluatePairs(end.Pairs)
	out.Comparisons = append(out.Comparisons, ComparisonOutcome{ALabel: first.Label, BLabel: last.Label, Comparison: end, Tests: endTests})
	if endTests.Note != "" {
		out.Notes = append(out.Notes, endTests.Note)
	}
	out.MeasuredDirection = endDir

	switch {
	case endClass == Dominance && endDir == e.Direction && meansOrdered:
		out.Measured = Monotonicity
		out.Verdict = Confirmed
	case endClass == Dominance && endDir == -e.Direction:
		// The extremes separate significantly the wrong way.
		out.Measured = Dominance
		out.Verdict = Refuted
	case endTests.SignPos == 0 && endTests.SignNeg == 0:
		// The endpoints tie on every pair: the metric provably does not
		// move across the axis.
		out.Measured = Equivalence
		out.Verdict = Refuted
	default:
		out.Measured = Equivalence
		out.Verdict = Inconclusive
		if endClass == Dominance && !meansOrdered {
			out.Measured = Dominance
			out.Notes = append(out.Notes, "endpoints separate significantly but intermediate arm means are not monotone")
		} else if meansOrdered {
			out.Notes = append(out.Notes, "arm means are ordered but the endpoint difference is not significant")
		}
	}
	return out, nil
}

// runDeterministic handles Deterministic: every arm's runs must realize
// their predicted consistency level, at every seed — no statistics,
// one mismatched row refutes.
func runDeterministic(ctx context.Context, e Experiment, seeds int, cfg Config, out *Outcome) (*Outcome, error) {
	confirmed := true
	for _, arm := range e.Arms {
		det := &DeterminismOutcome{Levels: map[string]int{}}
		for r, err := range blockadt.Stream(ctx, armMatrix(e, arm, seeds, cfg), cfg.Parallelism, cfg.Options...) {
			if err != nil {
				return nil, err
			}
			det.Rows++
			if r.Match {
				det.Matched++
			}
			det.Levels[r.Level]++
			switch det.Expected {
			case "":
				det.Expected = r.Expected
			case r.Expected:
			default:
				det.Expected = "mixed"
			}
		}
		if det.Rows == 0 {
			return nil, fmt.Errorf("hypothesis: experiment %q arm %q expands to no scenarios", e.Name, arm.Label)
		}
		if det.Matched != det.Rows {
			confirmed = false
		}
		out.Arms = append(out.Arms, ArmOutcome{Label: arm.Label, Value: arm.Value, Determinism: det})
	}
	out.Measured = Deterministic
	if confirmed {
		out.Verdict = Confirmed
	} else {
		out.Verdict = Refuted
	}
	return out, nil
}

// comparisonNotes renders a comparison's dropped-row bookkeeping as
// human-readable caveats (empty when everything paired and applied).
func comparisonNotes(aLabel, bLabel string, cmp *blockadt.Comparison) []string {
	var notes []string
	if cmp.UnpairedA > 0 || cmp.UnpairedB > 0 {
		notes = append(notes, fmt.Sprintf("unpaired scenarios dropped: %d only in %q, %d only in %q",
			cmp.UnpairedA, aLabel, cmp.UnpairedB, bLabel))
	}
	if cmp.SkippedA > 0 || cmp.SkippedB > 0 {
		notes = append(notes, fmt.Sprintf("pairs dropped where %q was inapplicable: %d in %q, %d in %q",
			cmp.Metric, cmp.SkippedA, aLabel, cmp.SkippedB, bLabel))
	}
	return notes
}
