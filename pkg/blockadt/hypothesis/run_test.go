package hypothesis

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"blockadt/pkg/blockadt"
)

func TestRunRefusesSingleSeed(t *testing.T) {
	e, err := Lookup("fork-rate-vs-delta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), e, Config{Seeds: 1}); err == nil {
		t.Fatal("expected a refusal for a single-seed statistical experiment")
	} else if !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("refusal should explain the seed floor, got: %v", err)
	}
}

func TestRunIdenticalArmsAreEquivalent(t *testing.T) {
	// A == B: every pair ties by construction (the engine is
	// deterministic), so a claimed Equivalence is confirmed.
	m := blockadt.Matrix{Systems: []string{"Bitcoin"}, TargetBlocks: 15}
	e := Experiment{
		Name:     "self-vs-self",
		Claim:    "a matrix compared against itself ties on every pair",
		Class:    Equivalence,
		Metric:   blockadt.MetricForkRate,
		Seeds:    4,
		RootSeed: 42,
		Arms:     []Arm{{Label: "a", Matrix: m}, {Label: "b", Matrix: m}},
	}
	out, err := Run(context.Background(), e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != Confirmed || out.Measured != Equivalence {
		t.Fatalf("got verdict %s measured %s, want confirmed Equivalence", out.Verdict, out.Measured)
	}
	tests := out.Comparisons[0].Tests
	if tests.SignPos != 0 || tests.SignNeg != 0 || tests.SignTies != 4 {
		t.Fatalf("self-comparison should tie on every pair: %+v", tests)
	}
}

func TestRunFirstPartyExperimentsConfirm(t *testing.T) {
	wantMeasured := map[string]Class{
		"fork-rate-vs-delta":         Dominance,
		"selfish-revenue-vs-alpha":   Monotonicity,
		"theorem-4.7-phase-boundary": Deterministic,
	}
	for _, e := range All() {
		out, err := Run(context.Background(), e, Config{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if out.Verdict != Confirmed {
			t.Errorf("%s: verdict %s, want confirmed", e.Name, out.Verdict)
		}
		if want := wantMeasured[e.Name]; out.Measured != want {
			t.Errorf("%s: measured %s, want %s", e.Name, out.Measured, want)
		}
	}
}

func TestRunByteIdenticalAcrossParallelism(t *testing.T) {
	e, err := Lookup("fork-rate-vs-delta")
	if err != nil {
		t.Fatal(err)
	}
	encode := func(parallelism int) []byte {
		out, err := Run(context.Background(), e, Config{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := out.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	wide := encode(runtime.NumCPU())
	if !bytes.Equal(serial, wide) {
		t.Fatal("outcome JSON differs between -parallel 1 and NumCPU")
	}
}

func TestLookupUnknownExperiment(t *testing.T) {
	_, err := Lookup("no-such-experiment")
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, blockadt.ErrUnknownName) {
		t.Fatalf("errors.Is(err, ErrUnknownName) = false for %v", err)
	}
	var unknown *blockadt.UnknownNameError
	if !errors.As(err, &unknown) {
		t.Fatalf("errors.As(&UnknownNameError) = false for %v", err)
	}
	if unknown.Kind != "experiment" || unknown.Name != "no-such-experiment" {
		t.Fatalf("unexpected fields: %+v", unknown)
	}
	if len(unknown.Registered) == 0 || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("error should list registered experiments: %v", err)
	}
}

func TestOutcomeJSONRoundTrip(t *testing.T) {
	e, err := Lookup("theorem-4.7-phase-boundary")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), e, Config{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeOutcome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != out.Name || back.Verdict != out.Verdict {
		t.Fatalf("round trip changed the outcome: %+v", back)
	}
	var rebuf bytes.Buffer
	if err := back.EncodeJSON(&rebuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rebuf.Bytes()) {
		t.Fatal("re-encoding a decoded outcome is not byte-identical")
	}
	if _, err := DecodeOutcome(strings.NewReader(`{"hypothesis":"other"}`)); err == nil {
		t.Fatal("expected a format error for a foreign discriminator")
	} else {
		var ferr *FormatError
		if !errors.As(err, &ferr) {
			t.Fatalf("want *FormatError, got %T: %v", err, err)
		}
	}
}
