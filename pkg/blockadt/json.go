package blockadt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// EncodeJSON renders the report in its canonical form: indented JSON with
// struct-declaration field order and wall-clock fields omitted. Two sweeps
// of the same matrix produce byte-identical encodings regardless of
// parallelism — this is the representation the determinism regression
// test compares and the BENCH_*.json trend tracking ingests.
func (r *Report) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FormatTableHeader renders the sweep table's header line and rule.
func FormatTableHeader() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-9s %-8s %-10s %3s %5s %-9s %-9s %6s %6s %6s %8s %6s\n",
		"system", "link", "adv", "topo", "n", "seed", "expected", "measured", "blocks", "forks", "reorg", "fairTVD", "match")
	fmt.Fprintln(&b, strings.Repeat("-", 114))
	return b.String()
}

// FormatRow renders one result as a sweep-table row.
func FormatRow(r Result) string {
	match := "yes"
	if !r.Match {
		match = "NO"
	}
	topo := r.Config.Topology
	if topo == "" {
		topo = TopoComplete
	}
	return fmt.Sprintf("%-12s %-9s %-8s %-10s %3d %5d %-9s %-9s %6d %6d %6d %8.4f %6s\n",
		r.Config.System, r.Config.Link, r.Config.Adversary, topo, r.Config.N, r.Config.SeedIndex,
		r.Expected, r.Level, r.Blocks, r.Forks, r.MaxReorg, r.FairnessTVD, match)
}

// FormatTable renders the results as an aligned text table, one row per
// scenario.
func FormatTable(results []Result) string {
	var b strings.Builder
	b.WriteString(FormatTableHeader())
	for _, r := range results {
		b.WriteString(FormatRow(r))
	}
	return b.String()
}
