package blockadt

import "blockadt/internal/ledger"

// The account-transfer ledger of the paper's worked validity-predicate
// example (Section 3.1), re-exported for façade consumers.
type (
	// LedgerAccount names an account.
	LedgerAccount = ledger.Account
	// LedgerTx is one transfer transaction.
	LedgerTx = ledger.Tx
	// LedgerPayload is the transaction batch a block carries.
	LedgerPayload = ledger.Payload
	// LedgerState is the replayed account state.
	LedgerState = ledger.State
	// LedgerValidator implements the double-spend-rejecting predicate P.
	LedgerValidator = ledger.Validator
	// LedgerWorkload generates deterministic valid transaction batches.
	LedgerWorkload = ledger.Workload
)

// NewLedgerWorkload returns a deterministic transaction workload over
// nAccounts accounts, each seeded with the initial balance.
func NewLedgerWorkload(seed uint64, nAccounts int, initial uint64) *LedgerWorkload {
	return ledger.NewWorkload(seed, nAccounts, initial)
}

// NewLedgerValidator builds the validity predicate P over the given
// genesis allocation and tree.
func NewLedgerValidator(genesis map[LedgerAccount]uint64, tree *Tree) *LedgerValidator {
	return ledger.NewValidator(genesis, tree)
}

// DecodeLedgerPayload decodes a block payload back into its batch.
func DecodeLedgerPayload(b []byte) (LedgerPayload, error) {
	return ledger.DecodePayload(b)
}

// ReplayLedger replays a committed chain into the final account state.
func ReplayLedger(genesis map[LedgerAccount]uint64, chain Chain) (*LedgerState, error) {
	return ledger.Replay(genesis, chain)
}
