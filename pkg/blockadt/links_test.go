package blockadt

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// adversityMatrix spans the full enlarged link dimension over every
// registered system (the non-sync links prune to the PoW systems).
// TargetBlocks stays at the baseline's 30: shorter runs occasionally
// measure SC on an expected-EC config (no observable reorg happened to
// occur), which is a pre-existing property of short sweeps, not of the
// link layer.
func adversityMatrix(seeds int) Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin", "Ethereum", "Hyperledger"},
		Links:        []string{LinkSync, LinkAsync, LinkPsync, LinkLossy, LinkPartition, LinkJitter},
		Seeds:        seeds,
		TargetBlocks: 30,
		RootSeed:     42,
		Metrics:      MetricNames(),
	}
}

// TestEnlargedMatrixByteIdenticalAcrossParallelism is the acceptance
// criterion for the link layer: the 6-link matrix sweeps byte-identically
// at parallelism 1 and NumCPU, metrics included.
func TestEnlargedMatrixByteIdenticalAcrossParallelism(t *testing.T) {
	m := adversityMatrix(2)
	serial, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelRep, err := Run(m, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := serial.EncodeJSON()
	j2, _ := parallelRep.EncodeJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("enlarged-matrix sweep JSON differs between parallelism 1 and NumCPU")
	}
	// 3 systems on sync + 2 PoW systems on each of the 5 adversity links,
	// 2 seeds each.
	if want := (3 + 2*5) * 2; serial.Total != want {
		t.Fatalf("matrix expanded to %d scenarios, want %d", serial.Total, want)
	}
	if serial.Matched != serial.Total {
		t.Fatalf("%d/%d scenarios missed their expected level", serial.Total-serial.Matched, serial.Total)
	}
}

// TestRegisteredLinksDeterministic is the registry-wide property test:
// for every registered link model, running the same fully resolved
// scenario twice yields identical results — the delivery schedule, and
// everything derived from it, is a pure function of (topology, seed).
func TestRegisteredLinksDeterministic(t *testing.T) {
	for _, spec := range Links() {
		system := "Bitcoin"
		if spec.Supports != nil && !spec.Supports(system) {
			t.Fatalf("link %q does not support %s", spec.Name, system)
		}
		cfg := Scenario{
			System: system, Link: spec.Name, Adversary: AdvNone,
			LinkParams: spec.Params, N: 8, Blocks: 15, SeedIndex: 0,
		}
		cfg.Seed = cfg.DeriveSeed(42)
		a, err := RunScenario(cfg)
		if err != nil {
			t.Fatalf("link %q: %v", spec.Name, err)
		}
		b, err := RunScenario(cfg)
		if err != nil {
			t.Fatalf("link %q: %v", spec.Name, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Errorf("link %q: identical scenario produced different results", spec.Name)
		}
	}
}

// TestLossyLinkWitnessesTheorem47 pins the façade-level shape of the
// necessity result: every lossy scenario drops messages, is predicted
// LevelNone (Theorem 4.7: Eventual Prefix unimplementable under loss),
// and the measured classification agrees.
func TestLossyLinkWitnessesTheorem47(t *testing.T) {
	m := Matrix{Links: []string{LinkLossy}, Seeds: 2, TargetBlocks: 20, RootSeed: 42}
	rep, err := Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 { // Bitcoin, Ethereum × 2 seeds
		t.Fatalf("lossy matrix expanded to %d scenarios, want 4", rep.Total)
	}
	for _, r := range rep.Results {
		if r.Dropped == 0 {
			t.Errorf("%s: lossy run dropped nothing", r.Config.Key())
		}
		if r.Expected != "none" || r.Level != "none" || !r.Match {
			t.Errorf("%s: expected=%s level=%s match=%v — want the Theorem 4.7 violation", r.Config.Key(), r.Expected, r.Level, r.Match)
		}
	}
}

// TestPartitionLinkMetrics: partition scenarios expose the heal-lag and
// dropped-message collectors; sync scenarios stay free of the
// partition-only metric.
func TestPartitionLinkMetrics(t *testing.T) {
	m := Matrix{
		Systems: []string{"Bitcoin"},
		Links:   []string{LinkSync, LinkPartition},
		Seeds:   1, TargetBlocks: 20, RootSeed: 42,
		Metrics: []string{MetricMsgsDropped, MetricPartitionHealLag},
	}
	rep, err := Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if _, ok := r.Metrics[MetricMsgsDropped]; !ok {
			t.Errorf("%s: msgs_dropped missing", r.Config.Key())
		}
		lag, ok := r.Metrics[MetricPartitionHealLag]
		switch r.Config.Link {
		case LinkPartition:
			if !ok {
				t.Errorf("%s: partition_heal_lag missing on a partition run", r.Config.Key())
			}
			if lag < 0 {
				t.Errorf("%s: negative heal lag %v", r.Config.Key(), lag)
			}
			if r.Metrics[MetricMsgsDropped] != 0 {
				t.Errorf("%s: deferred partition dropped %v messages", r.Config.Key(), r.Metrics[MetricMsgsDropped])
			}
		default:
			if ok {
				t.Errorf("%s: partition_heal_lag reported on a %s run", r.Config.Key(), r.Config.Link)
			}
		}
	}
}

// TestLinkParamsParticipateInScenarioIdentity: a link's parameter string
// is part of the scenario key — and therefore of the derived seed and
// the run-store cache key — while parameterless scenarios keep their
// historical identities (pinned against the PR-4 baseline's derived
// seed).
func TestLinkParamsParticipateInScenarioIdentity(t *testing.T) {
	sync := Scenario{System: "Bitcoin", Link: LinkSync, Adversary: AdvNone, N: 8, Blocks: 30, SeedIndex: 0}
	if sync.Key() != "Bitcoin|sync|none|a=0.0000|n=8|b=30|s=0" {
		t.Fatalf("parameterless key changed: %s", sync.Key())
	}
	if got := sync.DeriveSeed(42); got != 8502013113552945509 {
		t.Fatalf("historical derived seed changed: %d", got)
	}
	lossy := Scenario{System: "Bitcoin", Link: LinkLossy, Adversary: AdvNone, LinkParams: "p=0.10", N: 8, Blocks: 30, SeedIndex: 0}
	retuned := lossy
	retuned.LinkParams = "p=0.25"
	if lossy.Key() == retuned.Key() {
		t.Fatal("retuned link parameters did not change the scenario key")
	}
	if lossy.DeriveSeed(42) == retuned.DeriveSeed(42) {
		t.Fatal("retuned link parameters did not change the derived seed")
	}
	// Matrix expansion stamps the registered spec's params.
	configs, err := Matrix{Systems: []string{"Bitcoin"}, Links: []string{LinkLossy}, RootSeed: 42}.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 || configs[0].LinkParams != "p=0.10" {
		t.Fatalf("expansion did not stamp link params: %+v", configs)
	}
}

// TestAdversityLinksPruneToPoWSystems: the committee systems never
// expand under the netsim-backed links, and both PoW systems always do.
func TestAdversityLinksPruneToPoWSystems(t *testing.T) {
	for _, link := range []string{LinkAsync, LinkPsync, LinkLossy, LinkPartition, LinkJitter} {
		configs, err := Matrix{Links: []string{link}, RootSeed: 1}.Configs()
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, c := range configs {
			got[c.System] = true
		}
		if len(got) != 2 || !got["Bitcoin"] || !got["Ethereum"] {
			t.Errorf("link %q expanded to %v, want exactly the PoW systems", link, got)
		}
	}
}
