package blockadt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Merge folds the reports of sharded sweeps of matrix m back into the
// canonical unsharded report: results are reordered into full
// matrix-expansion order and the census fields recomputed, so the merged
// report's EncodeJSON is byte-identical to running the whole matrix in
// one piece. Shard order does not matter, and overlapping shards are
// tolerated as long as the overlapping results agree. It errors when a
// shard was produced under a different root seed, when any matrix
// scenario is missing from the union, when the union contains scenarios
// the matrix does not expand to, and when two shards disagree about the
// same scenario — each of those means the shards and the matrix (or the
// engine that ran them) were not actually the same.
func Merge(m Matrix, shards ...*Report) (*Report, error) {
	full := m
	full.ShardIndex, full.ShardCount = 0, 0
	configs, err := full.Configs()
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]Result, len(configs))
	for i, shard := range shards {
		if shard == nil {
			return nil, fmt.Errorf("blockadt: shard %d is nil", i)
		}
		if shard.RootSeed != full.RootSeed {
			return nil, fmt.Errorf("blockadt: shard %d swept root seed %d, matrix has %d",
				i, shard.RootSeed, full.RootSeed)
		}
		for _, r := range shard.Results {
			key := r.Config.Key()
			if prev, dup := byKey[key]; dup {
				if !resultsEqual(prev, r) {
					return nil, fmt.Errorf("blockadt: shards disagree about scenario %s", key)
				}
				continue
			}
			byKey[key] = r
		}
	}

	rep := &Report{RootSeed: full.RootSeed, Results: make([]Result, len(configs)), Total: len(configs)}
	var missing []string
	for i, cfg := range configs {
		r, ok := byKey[cfg.Key()]
		if !ok {
			missing = append(missing, cfg.Key())
			continue
		}
		delete(byKey, cfg.Key())
		rep.Results[i] = r
		if r.Match {
			rep.Matched++
		}
		rep.Ticks += r.Ticks
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("blockadt: %d of %d scenarios missing from the shards (first: %s)",
			len(missing), len(configs), missing[0])
	}
	if len(byKey) > 0 {
		for key := range byKey {
			return nil, fmt.Errorf("blockadt: shards contain %d scenarios outside the matrix (first: %s)",
				len(byKey), key)
		}
	}
	return rep, nil
}

// resultsEqual compares two results by their canonical JSON, the same
// representation the report encodes (wall-clock excluded).
func resultsEqual(a, b Result) bool {
	ea, erra := json.Marshal(a)
	eb, errb := json.Marshal(b)
	return erra == nil && errb == nil && bytes.Equal(ea, eb)
}

// DecodeReport parses a sweep report from its canonical JSON (the
// output of Report.EncodeJSON / `btadt sweep -json`).
func DecodeReport(raw []byte) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("blockadt: not a sweep report: %w", err)
	}
	if rep.Results == nil && rep.Total == 0 && !strings.Contains(string(raw), "\"results\"") {
		return nil, fmt.Errorf("blockadt: not a sweep report: no results field")
	}
	return &rep, nil
}
