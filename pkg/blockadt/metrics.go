package blockadt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"blockadt/internal/metrics"
)

// ConfigAggregate is the multi-seed summary of one matrix point: the
// scenario coordinates minus the seed dimension, the match census, and
// one streaming Summary per collected metric. It is the row type of
// `btadt stats` and the canonical JSON AggregateSeeds encodes.
type ConfigAggregate struct {
	System    string  `json:"system"`
	Link      string  `json:"link"`
	Adversary string  `json:"adversary"`
	Topology  string  `json:"topology,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`
	N         int     `json:"n"`
	Blocks    int     `json:"blocks"`
	// Seeds counts the runs folded in; Matched how many hit their
	// expected consistency level.
	Seeds   int `json:"seeds"`
	Matched int `json:"matched"`
	// Metrics maps metric name → streaming summary. encoding/json
	// sorts map keys, so the encoding is canonical.
	Metrics map[string]MetricSummary `json:"metrics"`
}

// configKey is a ConfigAggregate's identity: everything in a Scenario
// except the seed dimension.
type configKey struct {
	system, link, adversary, topology string
	alpha                             float64
	n, blocks                         int
}

// SeedAggregator folds sweep results into per-config aggregates across
// the seed dimension in O(1) memory per (config, metric): Welford
// accumulators plus exact-or-P² quantile sketches, never the raw values.
// Because both Run and Stream deliver results in matrix-expansion order,
// feeding either into the aggregator produces byte-identical aggregates
// at any parallelism.
type SeedAggregator struct {
	order []configKey
	byKey map[configKey]*seedAgg
}

type seedAgg struct {
	seeds, matched int
	aggs           map[string]*metrics.Agg
}

// NewSeedAggregator returns an empty aggregator.
func NewSeedAggregator() *SeedAggregator {
	return &SeedAggregator{byKey: map[configKey]*seedAgg{}}
}

// Add folds one scenario result into its config's aggregate.
func (a *SeedAggregator) Add(r Result) {
	key := configKey{
		system: r.Config.System, link: r.Config.Link, adversary: r.Config.Adversary,
		topology: r.Config.Topology,
		alpha:    r.Config.Alpha, n: r.Config.N, blocks: r.Config.Blocks,
	}
	st, ok := a.byKey[key]
	if !ok {
		st = &seedAgg{aggs: map[string]*metrics.Agg{}}
		a.byKey[key] = st
		a.order = append(a.order, key)
	}
	st.seeds++
	if r.Match {
		st.matched++
	}
	for name, v := range r.Metrics {
		agg, ok := st.aggs[name]
		if !ok {
			agg = metrics.NewAgg()
			st.aggs[name] = agg
		}
		agg.Add(v)
	}
}

// Aggregates snapshots the per-config summaries in first-seen (matrix
// expansion) order.
func (a *SeedAggregator) Aggregates() []ConfigAggregate {
	out := make([]ConfigAggregate, 0, len(a.order))
	for _, key := range a.order {
		st := a.byKey[key]
		agg := ConfigAggregate{
			System: key.system, Link: key.link, Adversary: key.adversary,
			Topology: key.topology,
			Alpha:    key.alpha, N: key.n, Blocks: key.blocks,
			Seeds: st.seeds, Matched: st.matched,
			Metrics: make(map[string]MetricSummary, len(st.aggs)),
		}
		for name, m := range st.aggs {
			agg.Metrics[name] = m.Summary()
		}
		out = append(out, agg)
	}
	return out
}

// AggregateSeeds folds a completed sweep's results into per-config
// aggregates across the seed dimension: results that differ only in
// SeedIndex land in the same ConfigAggregate, in matrix-expansion order.
// Metrics must have been collected (Matrix.Metrics); results without a
// metrics map still contribute to the seed/match census.
func AggregateSeeds(results []Result) []ConfigAggregate {
	agg := NewSeedAggregator()
	for _, r := range results {
		agg.Add(r)
	}
	return agg.Aggregates()
}

// StatsReport is the canonical output of an aggregated sweep: the root
// seed every run derived from and one aggregate per matrix point.
type StatsReport struct {
	RootSeed uint64            `json:"rootSeed"`
	Total    int               `json:"total"`
	Configs  []ConfigAggregate `json:"configs"`
}

// EncodeJSON renders the stats report in its canonical form (indented,
// struct-declaration field order, sorted metric keys). Two aggregations
// of the same matrix produce byte-identical encodings regardless of
// sweep parallelism — the stats counterpart of Report.EncodeJSON's
// contract, pinned by the determinism regression test.
func (s *StatsReport) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FormatStatsHeader renders the stats table's header line and rule.
func FormatStatsHeader() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-6s %-8s %-10s %3s %5s %-19s %12s %12s %12s %12s\n",
		"system", "link", "adv", "topo", "n", "seeds", "metric", "mean", "p50", "p99", "max")
	fmt.Fprintln(&b, strings.Repeat("-", 121))
	return b.String()
}

// FormatStatsRows renders one config's aggregate as one table row per
// collected metric, in the given metric-name order (names the config did
// not collect are skipped).
func FormatStatsRows(agg ConfigAggregate, metricOrder []string) string {
	var b strings.Builder
	topo := agg.Topology
	if topo == "" {
		topo = TopoComplete
	}
	for _, name := range metricOrder {
		s, ok := agg.Metrics[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s %-6s %-8s %-10s %3d %5d %-19s %12.6g %12.6g %12.6g %12.6g\n",
			agg.System, agg.Link, agg.Adversary, topo, agg.N, agg.Seeds, name,
			s.Mean, s.P50, s.P99, s.Max)
	}
	return b.String()
}
