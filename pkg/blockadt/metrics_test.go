package blockadt

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"blockadt/internal/chains"
	"blockadt/internal/fairness"
)

// metricsTestMatrix is a small multi-dimensional matrix with collection
// enabled: honest and adversarial scenarios, several seeds per point.
// Systems are pinned so registrations made by other tests cannot change
// the expansion under us.
func metricsTestMatrix() Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin", "Hyperledger"},
		Links:        []string{LinkSync, LinkPsync},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Seeds:        3,
		TargetBlocks: 15,
		RootSeed:     42,
		Metrics:      MetricNames(),
	}
}

// TestMetricsSweepDeterministicAcrossParallelism is the acceptance
// regression: metrics-enabled sweep JSON and the aggregated stats report
// are byte-identical at parallelism 1 and NumCPU, whether fed from the
// buffered Run or the streaming path.
func TestMetricsSweepDeterministicAcrossParallelism(t *testing.T) {
	m := metricsTestMatrix()
	serial, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelRep, err := Run(m, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	j1, err := serial.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := parallelRep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("metrics-enabled sweep JSON differs between parallelism 1 and NumCPU")
	}

	s1 := &StatsReport{RootSeed: m.RootSeed, Total: serial.Total, Configs: AggregateSeeds(serial.Results)}
	s2 := &StatsReport{RootSeed: m.RootSeed, Total: parallelRep.Total, Configs: AggregateSeeds(parallelRep.Results)}
	e1, err := s1.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("aggregated stats JSON differs between parallelism 1 and NumCPU")
	}

	// The streaming path feeds the same aggregates.
	agg := NewSeedAggregator()
	for r, err := range Stream(context.Background(), m, runtime.NumCPU()) {
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(r)
	}
	if !reflect.DeepEqual(agg.Aggregates(), s1.Configs) {
		t.Fatal("stream-fed aggregates differ from buffered aggregates")
	}
}

// TestMetricsRowsPopulated pins the per-row collection semantics: every
// scenario of a metrics-enabled sweep carries the applicable collectors,
// adversary-only metrics appear exactly on adversarial rows, and the
// instrumentation counters reach the collectors (positive message and
// byte costs on every networked run).
func TestMetricsRowsPopulated(t *testing.T) {
	rep, err := Run(metricsTestMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Metrics == nil {
			t.Fatalf("%s: metrics enabled but row has no metrics", r.Config.Key())
		}
		for _, name := range []string{MetricForkRate, MetricChainQuality, MetricGrowthRate,
			MetricFinalityDepth, MetricMsgs, MetricMsgBytes, MetricRoundsToAgreement} {
			if _, ok := r.Metrics[name]; !ok {
				t.Fatalf("%s: metric %s missing", r.Config.Key(), name)
			}
		}
		if r.Metrics[MetricMsgs] <= 0 || r.Metrics[MetricMsgBytes] <= 0 {
			t.Fatalf("%s: instrumentation counters empty: msgs=%v bytes=%v",
				r.Config.Key(), r.Metrics[MetricMsgs], r.Metrics[MetricMsgBytes])
		}
		_, hasShare := r.Metrics[MetricAdversaryShare]
		if adversarial := r.Config.Adversary == AdvSelfish; hasShare != adversarial {
			t.Fatalf("%s: adversary_share present=%v on adversary=%q", r.Config.Key(), hasShare, r.Config.Adversary)
		}
	}
	// Disabled collection stays zero-cost and zero-footprint.
	m := metricsTestMatrix()
	m.Metrics = nil
	plain, err := Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plain.Results {
		if r.Metrics != nil {
			t.Fatal("metrics map allocated with collection disabled")
		}
	}
}

// TestSelfishMiningMetricsAboveProportional reproduces the Eyal–Sirer
// relationship through the stats pipeline: aggregated across seeds, the
// adversary's measured main-chain share exceeds its merit entitlement
// (γ=1 regime, above the threshold), and the measured chain quality
// degrades below the honest sweep's.
func TestSelfishMiningMetricsAboveProportional(t *testing.T) {
	const alpha = 0.34
	m := Matrix{
		Systems:      []string{"Bitcoin"},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Alpha:        alpha,
		Seeds:        4,
		TargetBlocks: 60,
		RootSeed:     31,
		Metrics:      []string{MetricAdversaryShare, MetricChainQuality, MetricFairnessTVD},
	}
	rep, err := Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	aggs := AggregateSeeds(rep.Results)
	if len(aggs) != 2 {
		t.Fatalf("aggregated %d configs, want 2 (honest + selfish)", len(aggs))
	}
	honest, selfish := aggs[0], aggs[1]
	if honest.Adversary != AdvNone || selfish.Adversary != AdvSelfish {
		t.Fatalf("unexpected aggregate order: %q, %q", honest.Adversary, selfish.Adversary)
	}
	share, ok := selfish.Metrics[MetricAdversaryShare]
	if !ok || share.Count != m.Seeds {
		t.Fatalf("adversary_share aggregated over %d seeds, want %d", share.Count, m.Seeds)
	}
	if share.Mean <= alpha {
		t.Fatalf("mean adversary share %.3f ≤ merit %.3f — Eyal–Sirer profitability not reproduced", share.Mean, alpha)
	}
	if _, ok := honest.Metrics[MetricAdversaryShare]; ok {
		t.Fatal("honest aggregate carries adversary_share")
	}
	hq, sq := honest.Metrics[MetricChainQuality], selfish.Metrics[MetricChainQuality]
	if sq.Mean >= hq.Mean {
		t.Fatalf("selfish chain quality %.3f ≥ honest %.3f — withholding left no trace", sq.Mean, hq.Mean)
	}
}

// TestFruitChainMetricsCloserToFair reproduces the FruitChains claim
// with the metrics subsystem's distance statistics: under the same
// withholding adversary, the fruit-reward census stays closer to the
// merit entitlement than block authorship does (smaller TVD ⇒ higher
// chain quality).
func TestFruitChainMetricsCloserToFair(t *testing.T) {
	p := chains.Params{N: 6, TargetBlocks: 120, Seed: 31}
	const alpha = 0.34
	res, err := chains.Execute(chains.Scenario{
		Adversary: chains.FruitWithholding,
		Params:    chains.ScenarioParams{Params: p, Alpha: alpha},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Adversary

	merits := make([]float64, 6)
	merits[0] = alpha
	for i := 1; i < 6; i++ {
		merits[i] = (1 - alpha) / 5
	}
	blockTVD := fairness.FromCounts(stats.BlockShareByProc, merits).TVD
	rewardTVD := fairness.FromCounts(stats.FruitRewardByProc, merits).TVD
	if rewardTVD >= blockTVD {
		t.Fatalf("reward TVD %.3f ≥ block TVD %.3f — FruitChain fairness not reproduced", rewardTVD, blockTVD)
	}
	// In metric terms: reward chain quality beats block chain quality.
	if qReward, qBlock := 1-rewardTVD, 1-blockTVD; qReward <= qBlock {
		t.Fatalf("reward chain quality %.3f ≤ block chain quality %.3f", qReward, qBlock)
	}
}

// TestMetricRegistryCollisionPanics is the CI guard for metric-name
// collisions: a duplicate registration must panic at init time, not
// shadow an existing collector.
func TestMetricRegistryCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric registration did not panic")
		}
	}()
	RegisterMetric(MetricSpec{
		Name:        MetricForkRate, // collides with the built-in
		Description: "impostor",
		Compute:     func(MetricRun) (float64, bool) { return 0, false },
	})
}

// TestWithMetricsOnSimulate covers the single-run façade path: metric
// collection on Simulate and SimulateAdversary, scope enforcement on
// New, and unknown-name failure.
func TestWithMetricsOnSimulate(t *testing.T) {
	res, err := Simulate("Bitcoin", WithBlocks(15), WithSeed(7), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) == 0 {
		t.Fatal("WithMetrics() collected nothing")
	}
	if _, ok := res.Metrics[MetricAdversaryShare]; ok {
		t.Fatal("honest Simulate reported adversary_share")
	}
	if res.Metrics[MetricMsgBytes] <= 0 {
		t.Fatal("byte instrumentation missing from Simulate metrics")
	}

	sub, err := Simulate("Bitcoin", WithBlocks(15), WithSeed(7), WithMetrics(MetricForkRate))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Metrics) != 1 {
		t.Fatalf("subset request returned %d metrics, want 1", len(sub.Metrics))
	}

	out, err := SimulateAdversary("Bitcoin", AdvSelfish, WithBlocks(30), WithSeed(31), WithAlpha(0.34), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if share, ok := out.Metrics[MetricAdversaryShare]; !ok || share != out.AdversaryShare {
		t.Fatalf("adversarial metrics share %v, outcome share %v", share, out.AdversaryShare)
	}

	if _, err := New("Bitcoin", WithMetrics()); err == nil {
		t.Error("New ignored WithMetrics instead of rejecting it")
	}
	if _, err := Simulate("Bitcoin", WithMetrics("nope")); err == nil {
		t.Error("Simulate accepted an unregistered metric name")
	}
	if _, err := (Matrix{Metrics: []string{"nope"}}).Configs(); err == nil {
		t.Error("Matrix expanded despite an unregistered metric name")
	}
}

// TestMetricRunNormalizesDefaults pins the snapshot contract: every
// metric-collecting entry point describes the run that actually happened
// — a defaulted request ran 8 processes, so a collector that normalizes
// by N must see 8, not 0, from Simulate and SimulateAdversary alike.
func TestMetricRunNormalizesDefaults(t *testing.T) {
	const name = "test_msgs_per_proc"
	// The registry is process-global with no unregistration; guard for
	// repeated runs (-count=2).
	if _, err := LookupMetric(name); err != nil {
		RegisterMetric(MetricSpec{
			Name:        name,
			Description: "test-only: delivered messages per process",
			Compute: func(r MetricRun) (float64, bool) {
				if r.N == 0 {
					return 0, false
				}
				return float64(r.Delivered) / float64(r.N), true
			},
		})
	}
	res, err := Simulate("Bitcoin", WithSeed(31), WithBlocks(15), WithMetrics(name))
	if err != nil {
		t.Fatal(err)
	}
	honest, ok := res.Metrics[name]
	out, err := SimulateAdversary("Bitcoin", AdvSelfish, WithSeed(31), WithBlocks(15), WithMetrics(name))
	if err != nil {
		t.Fatal(err)
	}
	adv, advOK := out.Metrics[name]
	if !ok || !advOK {
		t.Fatalf("per-process collector inapplicable on a defaulted run (Simulate ok=%v, SimulateAdversary ok=%v) — N not normalized", ok, advOK)
	}
	if honest != float64(res.Delivered)/8 {
		t.Fatalf("Simulate snapshot N mismatch: metric %v, want %v", honest, float64(res.Delivered)/8)
	}
	if adv != float64(out.Delivered)/8 {
		t.Fatalf("SimulateAdversary snapshot N mismatch: metric %v, want %v", adv, float64(out.Delivered)/8)
	}
}

// TestRegistriesEnumeratesGenerically pins the generic enumeration
// surface `btadt list` renders: all seven registries appear in order,
// with every registration present — including the ones this PR adds (the
// topology dimension) — without any per-registry code in the caller.
func TestRegistriesEnumeratesGenerically(t *testing.T) {
	infos := Registries()
	wantKinds := []string{"system", "oracle", "selector", "link", "adversary", "topology", "metric"}
	if len(infos) != len(wantKinds) {
		t.Fatalf("enumerated %d registries, want %d", len(infos), len(wantKinds))
	}
	byKind := map[string]RegistryInfo{}
	for i, info := range infos {
		if info.Kind != wantKinds[i] {
			t.Fatalf("registry %d is %q, want %q", i, info.Kind, wantKinds[i])
		}
		if len(info.Entries) == 0 {
			t.Fatalf("registry %q enumerated empty", info.Kind)
		}
		for _, e := range info.Entries {
			if e.Name == "" || e.Description == "" {
				t.Fatalf("registry %q entry %+v incomplete", info.Kind, e)
			}
		}
		byKind[info.Kind] = info
	}
	names := func(kind string) map[string]bool {
		set := map[string]bool{}
		for _, e := range byKind[kind].Entries {
			set[e.Name] = true
		}
		return set
	}
	if !names("link")[LinkPsync] {
		t.Error("generic enumeration missed the psync link")
	}
	topoNames := names("topology")
	for _, want := range []string{TopoComplete, TopoGossip, TopoClustered} {
		if !topoNames[want] {
			t.Errorf("generic enumeration missed topology %q", want)
		}
	}
	metricNames := names("metric")
	for _, want := range MetricNames() {
		if !metricNames[want] {
			t.Errorf("generic enumeration missed metric %q", want)
		}
	}
}
