package blockadt

import "blockadt/internal/netsim"

// The deterministic message-passing substrate of Section 4.2, re-exported
// for façade consumers that build replicated deployments (the forkmonitor
// example, fault-injection drivers).
type (
	// NetSim is the virtual-time network simulator.
	NetSim = netsim.Sim
	// NetMessage is a network message carrying a block update.
	NetMessage = netsim.Message
	// NetHandler reacts to deliveries and timers at one process.
	NetHandler = netsim.Handler
	// NetHandlerFuncs adapts plain functions to NetHandler.
	NetHandlerFuncs = netsim.HandlerFuncs
	// NetLinkModel decides delivery delay and loss per message.
	NetLinkModel = netsim.LinkModel
	// SynchronousLink delivers within [Min, Delta].
	SynchronousLink = netsim.Synchronous
	// AsynchronousLink has a bounded common case with stragglers.
	AsynchronousLink = netsim.Asynchronous
	// LossyLink wraps a link model with a per-message drop rule.
	LossyLink = netsim.Lossy
	// NetReplica is a BlockTree replica speaking the update protocol.
	NetReplica = netsim.Replica
)

// UpdateMsg is the message kind replicas exchange.
const UpdateMsg = netsim.UpdateMsg

// NewNetSim returns a simulator over the given link model and seed.
func NewNetSim(links NetLinkModel, seed uint64) *NetSim {
	return netsim.New(links, seed)
}

// NewNetReplica returns a replica reading through selection function f
// and recording into rec.
func NewNetReplica(id ProcID, f Selector, rec *Recorder) *NetReplica {
	return netsim.NewReplica(id, f, rec)
}
