package blockadt

import "fmt"

// settings accumulates the functional options of New and Simulate.
type settings struct {
	oracle         string
	oracleInstance *Oracle
	selector       string
	link           string
	adversary      string
	topology       string
	seed           uint64
	n              int
	writers        int
	blocks         int
	forkBound      int
	alpha          float64
	merits         []float64
	finalityDepth  int
	metricsOn      bool
	metricNames    []string
}

// Option customizes New, Simulate and SimulateAdversary. Each option
// documents which entry points it applies to; passing an option to an
// entry point outside its scope is an error — the façade fails loudly
// rather than silently ignoring a knob (a WithSelector passed to Simulate
// would otherwise look honored while the simulator used its own rule).
// Unset options fall back to the system spec's profile (oracle, selector)
// and the repository-wide simulation defaults.
//
// Zero values are the "unset" sentinel throughout (the convention the
// whole repository uses): WithSeed(0), WithBlocks(0) or WithAlpha(0) are
// indistinguishable from omitting the option and select the default, and
// only non-zero values participate in the scope checks above.
type Option func(*settings)

// WithOracle selects a registered oracle family by name (e.g. "prodigal",
// "frugal"), overriding the system's default. Applies to New.
func WithOracle(name string) Option { return func(s *settings) { s.oracle = name } }

// WithOracleInstance injects an already-constructed oracle, bypassing the
// registry — useful when the caller wants to inspect the oracle's state
// after the run. Applies to New.
func WithOracleInstance(o *Oracle) Option { return func(s *settings) { s.oracleInstance = o } }

// WithSelector selects a registered selection function f by name (e.g.
// "longest", "heaviest", "ghost", "single"). Applies to New.
func WithSelector(name string) Option { return func(s *settings) { s.selector = name } }

// WithLink selects a registered communication model by name ("sync",
// "async"). Applies to Simulate and SimulateAdversary; a live New
// instance is a shared-memory object with no network.
func WithLink(name string) Option { return func(s *settings) { s.link = name } }

// WithAdversary selects a registered fault model by name. Applies to
// Simulate, which rejects any value but "none" with a pointer to
// SimulateAdversary (where the adversary is the positional argument).
func WithAdversary(name string) Option { return func(s *settings) { s.adversary = name } }

// WithTopology selects a registered dissemination topology by name
// ("complete", "gossip3", "clustered2"). Applies to Simulate;
// SimulateAdversary rejects non-default topologies (adversary models
// assume complete-graph broadcast), and a live New instance has no
// network.
func WithTopology(name string) Option { return func(s *settings) { s.topology = name } }

// WithSeed sets the seed driving all pseudorandomness. Applies to every
// entry point.
func WithSeed(seed uint64) Option { return func(s *settings) { s.seed = seed } }

// WithN sets the number of processes |V|. Applies to every entry point.
func WithN(n int) Option { return func(s *settings) { s.n = n } }

// WithWriters bounds the appending subset |M| ≤ |V| (0 = permissionless).
// Applies to Simulate and SimulateAdversary.
func WithWriters(m int) Option { return func(s *settings) { s.writers = m } }

// WithBlocks sets the target committed chain length. Applies to Simulate
// and SimulateAdversary.
func WithBlocks(b int) Option { return func(s *settings) { s.blocks = b } }

// WithForkBound sets the frugal oracle's k (ignored by prodigal oracles).
// Applies to New.
func WithForkBound(k int) Option { return func(s *settings) { s.forkBound = k } }

// WithAlpha sets the adversary's merit share. Applies to
// SimulateAdversary.
func WithAlpha(alpha float64) Option { return func(s *settings) { s.alpha = alpha } }

// WithMerits sets per-process token probabilities (the paper's merit
// parameter αᵢ), overriding the uniform default. Applies to New and
// Simulate; Simulate accepts it only for merit-aware (PoW) systems and
// requires one entry per process — committee systems grant
// deterministically, and a silently ignored merit vector would fake a
// fairness result.
func WithMerits(merits ...float64) Option {
	return func(s *settings) { s.merits = append([]float64(nil), merits...) }
}

// WithFinalityDepth sets the depth-d finality gadget a live instance's
// Finality() uses (default 6). Applies to New.
func WithFinalityDepth(d int) Option { return func(s *settings) { s.finalityDepth = d } }

// WithMetrics enables metric collection over the run: the named
// registered collectors (none = every registered metric) are computed
// from the completed simulation and returned in the result's Metrics
// map. Applies to Simulate and SimulateAdversary; for sweeps, set
// Matrix.Metrics instead.
func WithMetrics(names ...string) Option {
	return func(s *settings) {
		s.metricsOn = true
		s.metricNames = append([]string(nil), names...)
	}
}

func applyOptions(opts []Option) settings {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	return s
}

// instanceOnlyErr reports the first New-scoped option that was passed to
// the named simulation entry point.
func (s settings) instanceOnlyErr(entry string) error {
	switch {
	case s.oracle != "":
		return fmt.Errorf("blockadt: WithOracle applies to New, not %s", entry)
	case s.oracleInstance != nil:
		return fmt.Errorf("blockadt: WithOracleInstance applies to New, not %s", entry)
	case s.selector != "":
		return fmt.Errorf("blockadt: WithSelector applies to New, not %s", entry)
	case s.forkBound != 0:
		return fmt.Errorf("blockadt: WithForkBound applies to New, not %s", entry)
	case s.finalityDepth != 0:
		return fmt.Errorf("blockadt: WithFinalityDepth applies to New, not %s", entry)
	}
	return nil
}

// simulationOnlyErr reports the first Simulate-scoped option that was
// passed to New.
func (s settings) simulationOnlyErr() error {
	switch {
	case s.link != "":
		return fmt.Errorf("blockadt: WithLink applies to Simulate, not New (a live instance has no network)")
	case s.topology != "":
		return fmt.Errorf("blockadt: WithTopology applies to Simulate, not New (a live instance has no network)")
	case s.adversary != "":
		return fmt.Errorf("blockadt: WithAdversary applies to Simulate, not New")
	case s.blocks != 0:
		return fmt.Errorf("blockadt: WithBlocks applies to Simulate, not New (a live instance grows by Append)")
	case s.writers != 0:
		return fmt.Errorf("blockadt: WithWriters applies to Simulate, not New")
	case s.alpha != 0:
		return fmt.Errorf("blockadt: WithAlpha applies to SimulateAdversary, not New")
	case s.metricsOn:
		return fmt.Errorf("blockadt: WithMetrics applies to Simulate and SimulateAdversary, not New (metrics measure completed runs)")
	}
	return nil
}

// metricSpecs resolves the WithMetrics request: the named collectors, or
// every registered one when the option was given without names.
func (s settings) metricSpecs() ([]MetricSpec, error) {
	if !s.metricsOn {
		return nil, nil
	}
	names := s.metricNames
	if len(names) == 0 {
		names = MetricNames()
	}
	specs := make([]MetricSpec, 0, len(names))
	for _, name := range names {
		spec, err := LookupMetric(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// topologySpec resolves the WithTopology request against the registry
// and the composition's support predicate. No option (or the complete
// default) resolves to the nil-Plan complete-graph spec.
func (s settings) topologySpec(system, link, adversary string) (TopologySpec, error) {
	name := s.topology
	if name == "" {
		name = TopoComplete
	}
	tspec, err := LookupTopology(name)
	if err != nil {
		return TopologySpec{}, err
	}
	if tspec.Plan != nil && !tspec.supportsScenario(system, link, adversary) {
		return TopologySpec{}, fmt.Errorf("blockadt: system %q does not implement topology %q under link %q and adversary %q", system, name, link, adversary)
	}
	return tspec, nil
}

// simParams assembles the chains-level parameters from the options.
func (s settings) simParams() SimParams {
	return SimParams{
		N:            s.n,
		Writers:      s.writers,
		TargetBlocks: s.blocks,
		Seed:         s.seed,
		Merits:       s.merits,
	}
}
