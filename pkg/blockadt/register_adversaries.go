package blockadt

import (
	"blockadt/internal/chains"
	"blockadt/internal/consistency"
	"blockadt/internal/fairness"
)

// Adversary names of the scenario matrix's fault dimension.
const (
	// AdvNone runs every process honestly.
	AdvNone = "none"
	// AdvSelfish replaces process 0 with an Eyal–Sirer selfish miner
	// holding merit share Alpha. Only the PoW systems implement it.
	AdvSelfish = "selfish"
)

// The two fault models self-register. "none" is the honest default (nil
// Run); "selfish" wraps the Eyal–Sirer withholding miner.
func init() {
	RegisterAdversary(AdversarySpec{
		Name:        AdvNone,
		Description: "every process follows the protocol",
	})
	selfishSystems := map[string]bool{"Bitcoin": true}
	RegisterAdversary(AdversarySpec{
		Name:        AdvSelfish,
		Description: "Eyal–Sirer block-withholding miner at process 0 with merit share α",
		Supports: func(system, link string) bool {
			return selfishSystems[system] && link == LinkSync
		},
		Run: func(system, link string, p SimParams, alpha float64) AdversaryOutcome {
			stats := chains.RunSelfishMining(p, alpha)
			// Chain quality against this model's entitlement: the
			// adversary at process 0 holds alpha, the honest miners
			// split the remainder equally. The process count comes from
			// the same normalization RunSelfishMining applies, so the
			// entitlement vector can never drift from the processes
			// that actually ran.
			n := chains.NormalizeSelfishN(p.N)
			merits := make([]float64, n)
			merits[0] = alpha
			for i := 1; i < n; i++ {
				merits[i] = (1 - alpha) / float64(n-1)
			}
			return AdversaryOutcome{
				SimResult:       stats.Result,
				Expected:        consistency.LevelEC,
				FairnessTVD:     fairness.FromCounts(stats.MainChainByProc, merits).TVD,
				AdversaryMined:  stats.AdversaryMined,
				HonestMined:     stats.HonestMined,
				AdversaryShare:  stats.AdversaryShare,
				HonestShare:     stats.HonestShare,
				AdversaryMerit:  stats.AdversaryMerit,
				Orphaned:        stats.Orphaned,
				MainChainByProc: stats.MainChainByProc,
			}
		},
	})
}
