package blockadt

import (
	"blockadt/internal/chains"
	"blockadt/internal/consistency"
	"blockadt/internal/fairness"
)

// Adversary names of the scenario matrix's fault dimension.
const (
	// AdvNone runs every process honestly.
	AdvNone = "none"
	// AdvSelfish replaces process 0 with an Eyal–Sirer selfish miner
	// holding merit share Alpha. Only the PoW systems implement it.
	AdvSelfish = "selfish"
)

// The two fault models self-register. "none" is the honest default (nil
// Plan); "selfish" composes the Eyal–Sirer withholding plan.
func init() {
	RegisterAdversary(AdversarySpec{
		Name:        AdvNone,
		Description: "every process follows the protocol",
	})
	selfishSystems := map[string]bool{"Bitcoin": true}
	RegisterAdversary(AdversarySpec{
		Name:        AdvSelfish,
		Description: "Eyal–Sirer block-withholding miner at process 0 with merit share α",
		Supports: func(system, link string) bool {
			return selfishSystems[system] && link == LinkSync
		},
		Plan: func(ex *Execution) {
			ex.Adversary = chains.SelfishWithholding
		},
		// Withholding skews chain quality, not consistency: the run is
		// still predicted eventually consistent.
		Expected: func(system, link string, honest Level) Level { return consistency.LevelEC },
		// Chain quality against this model's entitlement: the adversary
		// at process 0 holds alpha, the honest miners split the
		// remainder equally. The process count comes from the same
		// normalization the withholding plan applies, so the entitlement
		// vector can never drift from the processes that actually ran.
		Entitlement: func(p SimParams, alpha float64) []float64 {
			n := chains.NormalizeSelfishN(p.N)
			merits := make([]float64, n)
			merits[0] = alpha
			for i := 1; i < n; i++ {
				merits[i] = (1 - alpha) / float64(n-1)
			}
			return merits
		},
	})
}

// adversaryOutcome assembles the structured outcome of an adversarial
// execution from the census the plan attached to the result. It is the
// one place AdversaryStats maps onto the façade's AdversaryOutcome,
// shared by the sweep engine and SimulateAdversary.
func adversaryOutcome(spec AdversarySpec, system, link string, p SimParams, alpha float64, honest Level, res SimResult) AdversaryOutcome {
	out := AdversaryOutcome{SimResult: res, Expected: honest}
	if spec.Expected != nil {
		out.Expected = spec.Expected(system, link, honest)
	}
	stats := res.Adversary
	if stats == nil {
		return out
	}
	if spec.Entitlement != nil {
		out.FairnessTVD = fairness.FromCounts(stats.MainChainByProc, spec.Entitlement(p, alpha)).TVD
	}
	out.AdversaryMined = stats.AdversaryMined
	out.HonestMined = stats.HonestMined
	out.AdversaryShare = stats.AdversaryShare
	out.HonestShare = stats.HonestShare
	out.AdversaryMerit = stats.AdversaryMerit
	out.Orphaned = stats.Orphaned
	out.MainChainByProc = stats.MainChainByProc
	return out
}
