package blockadt

import (
	"blockadt/internal/chains"
	"blockadt/internal/consistency"
)

// Link model names of the scenario matrix's network dimension.
const (
	// LinkSync is the synchronous δ-bounded link model every Table 1
	// simulator uses.
	LinkSync = "sync"
	// LinkAsync is the asynchronous regime of the Section 4.2 open
	// issues (bounded common case with stragglers). Only the PoW
	// systems implement it.
	LinkAsync = "async"
	// LinkPsync is the weakly synchronous (eventually synchronous)
	// regime: asynchronous before the global stabilization time GST,
	// δ-bounded after — the paper's weakly synchronous channels. Only
	// the PoW systems implement it.
	LinkPsync = "psync"
)

// The three scenario link models self-register. "sync" is the default
// (nil Run: the system's own simulator is used); "async" and "psync"
// carry their own runners and the set of systems that implement them.
func init() {
	RegisterLink(LinkSpec{
		Name:        LinkSync,
		Description: "synchronous δ-bounded delivery — the Table 1 setting (Section 4.2)",
	})
	asyncSystems := map[string]bool{"Bitcoin": true}
	RegisterLink(LinkSpec{
		Name:        LinkAsync,
		Description: "asynchronous slow-mining regime with bounded common case (Section 4.2 TBC)",
		Supports:    func(system string) bool { return asyncSystems[system] },
		Run: func(system string, p SimParams) SimResult {
			// Slow-mining asynchronous regime: common-case delay equal to
			// the synchronous bound, no stragglers — the configuration the
			// Section 4.2 conjecture predicts still converges to EC.
			return chains.RunBitcoinAsync(chains.AsyncParams{Params: p, MaxDelay: 8})
		},
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
	RegisterLink(LinkSpec{
		Name:        LinkPsync,
		Description: "weakly synchronous: asynchronous before GST, δ-bounded after (Section 4.2)",
		Supports:    chains.SupportsPsync,
		Run: func(system string, p SimParams) SimResult {
			// GST and PreMax take the runner's δ-scaled defaults: the run
			// outlives stabilization by a wide margin, so the theory still
			// predicts (eventual) convergence.
			return chains.RunPoWPsync(system, chains.PsyncParams{Params: p})
		},
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
}
