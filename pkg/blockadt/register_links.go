package blockadt

import (
	"fmt"

	"blockadt/internal/chains"
	"blockadt/internal/consistency"
)

// Link model names of the scenario matrix's network dimension.
const (
	// LinkSync is the synchronous δ-bounded link model every Table 1
	// simulator uses.
	LinkSync = "sync"
	// LinkAsync is the asynchronous regime of the Section 4.2 open
	// issues (bounded common case with stragglers). PoW systems only.
	LinkAsync = "async"
	// LinkPsync is the weakly synchronous (eventually synchronous)
	// regime: asynchronous before the global stabilization time GST,
	// δ-bounded after, with every pre-GST send delivered by GST+δ (the
	// DLS partial-synchrony bound). PoW systems only.
	LinkPsync = "psync"
	// LinkLossy drops each message independently with a fixed seeded
	// probability and never retransmits — the non-reliable channels of
	// Theorem 4.7, whose runs witness the Eventual Prefix violation the
	// theorem proves unavoidable. PoW systems only.
	LinkLossy = "lossy"
	// LinkPartition bisects the network for a fixed interval, deferring
	// cross-cut deliveries until the cut heals; the sides fork while
	// partitioned and reconverge afterwards. PoW systems only.
	LinkPartition = "partition"
	// LinkJitter stretches a small fraction of deliveries by 10× —
	// heavy-tail stragglers over otherwise synchronous links. PoW
	// systems only.
	LinkJitter = "jitter"
)

// The six scenario link models self-register. "sync" is the default
// (nil Plan: the system's own simulator is used); the rest compose one
// of the executor's link plans, all supporting every PoW system
// (chains.SupportsPoWLinks — the committee systems assume synchronous
// rounds). Each spec's Params string is the canonical encoding of its
// fixed parameters; it joins scenario keys and run-store cache keys, so
// retuning a model changes scenario identity instead of reusing stale
// caches. Expected encodes the theory's prediction: every adversity
// model except lossy preserves eventual consistency; lossy drops
// messages from correct processes, so by Theorem 4.7 not even Eventual
// Prefix survives.
func init() {
	RegisterLink(LinkSpec{
		Name:        LinkSync,
		Description: "synchronous δ-bounded delivery — the Table 1 setting (Section 4.2)",
	})
	RegisterLink(LinkSpec{
		Name:        LinkAsync,
		Description: "asynchronous slow-mining regime with bounded common case (Section 4.2 TBC)",
		Params:      "maxDelay=8",
		Supports:    chains.SupportsPoWLinks,
		Plan: func(ex *Execution) {
			// Slow-mining asynchronous regime: common-case delay equal to
			// the synchronous bound, no stragglers — the configuration the
			// Section 4.2 conjecture predicts still converges to EC.
			ex.Links = chains.AsyncLinks
			ex.Params.MaxDelay = 8
		},
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
	RegisterLink(LinkSpec{
		Name:        LinkPsync,
		Description: "weakly synchronous: async before GST, δ-bounded after, pre-GST sends delivered by GST+δ (Section 4.2)",
		Supports:    chains.SupportsPoWLinks,
		Plan: func(ex *Execution) {
			// GST and PreMax take the plan's δ-scaled defaults: the run
			// outlives stabilization by a wide margin, so the theory still
			// predicts (eventual) convergence.
			ex.Links = chains.PsyncLinks
		},
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
	RegisterLink(LinkSpec{
		Name:        LinkLossy,
		Description: "seeded per-message drops, no retransmission — the Theorem 4.7 lossy channels",
		Params:      "p=0.10",
		Supports:    chains.SupportsPoWLinks,
		Plan: func(ex *Execution) {
			ex.Links = chains.LossyLinks
			ex.Params.Rate = chains.DefaultLossRate
		},
		// Theorem 4.7: dropping even one correct process's message makes
		// Eventual Prefix unimplementable — the run retains no criterion
		// of the hierarchy.
		Expected: func(system string, sync Level) Level { return consistency.LevelNone },
	})
	RegisterLink(LinkSpec{
		Name:        LinkPartition,
		Description: "transient bisection [8δ,24δ), cross-cut traffic deferred until heal",
		Params:      "start=8δ,heal=24δ,defer",
		Supports:    chains.SupportsPoWLinks,
		Plan: func(ex *Execution) {
			// Zero values pick the plan's δ-scaled window and the N/2
			// bisection; the result carries the heal time for the
			// partition_heal_lag metric.
			ex.Links = chains.PartitionLinks
		},
		// The cut heals and deferred traffic arrives, so convergence is
		// delayed, not destroyed: still EC.
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
	RegisterLink(LinkSpec{
		Name:        LinkJitter,
		Description: "heavy-tail stragglers: 5% of deliveries stretched 10× over synchronous links",
		Params:      "tail=0.05,x=10",
		Supports:    chains.SupportsPoWLinks,
		Plan: func(ex *Execution) {
			ex.Links = chains.JitterLinks
		},
		// Every message still arrives: stragglers inflate forks and
		// finality depth but never break eventual consistency.
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
}

// EnsureAsyncLink registers — idempotently — a hidden asynchronous
// link-model variant with the given common-case delay bound, and
// returns its registry name. The built-in "async" model fixes
// maxDelay = 8 (the synchronous δ); experiments probing fork rate
// against the delay bound register wider variants through this helper.
// Like every hidden variant, the name is a pure function of the
// parameter, so re-registration is a no-op and the Params string keys
// scenario identity.
func EnsureAsyncLink(maxDelay int64) string {
	if maxDelay <= 0 {
		maxDelay = 8
	}
	name := fmt.Sprintf("async:maxDelay=%d", maxDelay)
	linkRegistry.ensure(name, LinkSpec{
		Name:        name,
		Description: fmt.Sprintf("asynchronous slow-mining variant: common-case delay bound %d ticks", maxDelay),
		Params:      fmt.Sprintf("maxDelay=%d", maxDelay),
		Supports:    chains.SupportsPoWLinks,
		Hidden:      true,
		Plan: func(ex *Execution) {
			ex.Links = chains.AsyncLinks
			ex.Params.MaxDelay = maxDelay
		},
		// Slower links delay convergence without destroying it: still EC.
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
	return name
}

// EnsureLossyPsyncLink registers — idempotently — a hidden link-model
// variant combining per-message drops at the given rate with
// weakly-synchronous delivery stabilizing at gstDeltas·δ, and returns its
// registry name. The variant behaves like any registered link (matrices
// expand it, scenario keys and run-store cache keys carry its Params) but
// is excluded from Registries() enumeration: it exists for hypothesis
// experiments that sweep the Theorem 4.7 (p × GST) boundary, not for the
// `btadt list` surface. The name is a pure function of the parameters, so
// re-registering the same point is a no-op and two experiments sharing a
// grid cell share its cache entries.
func EnsureLossyPsyncLink(rate float64, gstDeltas int) string {
	if gstDeltas <= 0 {
		gstDeltas = 8
	}
	name := fmt.Sprintf("lossy+psync:p=%.2f,gst=%dδ", rate, gstDeltas)
	expected := consistency.LevelNone
	if rate == 0 {
		// Rate 0 restores reliable channels: plain weak synchrony, which
		// converges back to EC after stabilization (Theorem 4.7's
		// hypothesis — a dropped correct-process message — never holds).
		expected = consistency.LevelEC
	}
	linkRegistry.ensure(name, LinkSpec{
		Name:        name,
		Description: fmt.Sprintf("lossy weakly-synchronous variant: drop rate %.2f over GST=%dδ links (Theorem 4.7 boundary)", rate, gstDeltas),
		Params:      fmt.Sprintf("p=%.2f,gst=%dδ", rate, gstDeltas),
		Supports:    chains.SupportsPoWLinks,
		Hidden:      true,
		Plan: func(ex *Execution) {
			ex.Links = chains.LossyPsyncLinks
			ex.Params.Rate = rate
			ex.Params.GSTDeltas = int64(gstDeltas)
		},
		Expected: func(system string, sync Level) Level { return expected },
	})
	return name
}
