package blockadt

import (
	"blockadt/internal/chains"
	"blockadt/internal/consistency"
)

// Link model names of the scenario matrix's network dimension.
const (
	// LinkSync is the synchronous δ-bounded link model every Table 1
	// simulator uses.
	LinkSync = "sync"
	// LinkAsync is the asynchronous regime of the Section 4.2 open
	// issues (bounded common case with stragglers). Only the PoW
	// systems implement it.
	LinkAsync = "async"
)

// The two scenario link models self-register. "sync" is the default (nil
// Run: the system's own simulator is used); "async" carries its own
// runner and the set of systems that implement it.
func init() {
	RegisterLink(LinkSpec{
		Name:        LinkSync,
		Description: "synchronous δ-bounded delivery — the Table 1 setting (Section 4.2)",
	})
	asyncSystems := map[string]bool{"Bitcoin": true}
	RegisterLink(LinkSpec{
		Name:        LinkAsync,
		Description: "asynchronous slow-mining regime with bounded common case (Section 4.2 TBC)",
		Supports:    func(system string) bool { return asyncSystems[system] },
		Run: func(system string, p SimParams) SimResult {
			// Slow-mining asynchronous regime: common-case delay equal to
			// the synchronous bound, no stragglers — the configuration the
			// Section 4.2 conjecture predicts still converges to EC.
			return chains.RunBitcoinAsync(chains.AsyncParams{Params: p, MaxDelay: 8})
		},
		Expected: func(system string, sync Level) Level { return consistency.LevelEC },
	})
}
