package blockadt

import "blockadt/internal/metrics"

// MetricRun is the per-run snapshot metric collectors measure: simulator
// counters plus the recorded history. The engine assembles it from a
// scenario result; user-registered collectors treat it as read-only.
type MetricRun = metrics.Run

// MetricSummary is the streaming aggregate of one metric across a seed
// sweep (Welford mean/std/min/max plus p50/p99 from the exact-or-P²
// sketch).
type MetricSummary = metrics.Summary

// Built-in metric names (the registration order below).
const (
	MetricForkRate          = metrics.ForkRateName
	MetricChainQuality      = metrics.ChainQualityName
	MetricGrowthRate        = metrics.GrowthRateName
	MetricFinalityDepth     = metrics.FinalityDepthName
	MetricFinalityLatency   = metrics.FinalityLatencyName
	MetricMsgs              = metrics.MsgsName
	MetricMsgBytes          = metrics.MsgBytesName
	MetricRoundsToAgreement = metrics.RoundsToAgreementName
	MetricAdversaryShare    = metrics.AdversaryShareName
	MetricFairnessTVD       = metrics.FairnessTVDName
	MetricMsgsDropped       = metrics.MsgsDroppedName
	MetricPartitionHealLag  = metrics.PartitionHealLagName
)

// The built-in collectors self-register in a fixed order (the order
// MetricNames reports and `btadt stats -metrics` defaults to). Each is a
// pure function from internal/metrics.
func init() {
	register := func(name, desc string, c metrics.Collector) {
		RegisterMetric(MetricSpec{Name: name, Description: desc, Compute: c})
	}
	register(MetricForkRate,
		"fork points per committed block (0 for the consensus systems)", metrics.ForkRate)
	register(MetricChainQuality,
		"1 − fairness TVD: how closely main-chain authorship matches merit entitlement", metrics.ChainQuality)
	register(MetricGrowthRate,
		"committed blocks per virtual tick (chain growth)", metrics.GrowthRate)
	register(MetricFinalityDepth,
		"MaxReorg+1: smallest safe depth-d finality gadget for the run", metrics.FinalityDepth)
	register(MetricFinalityLatency,
		"virtual time for a block to sink to the safe depth", metrics.FinalityLatency)
	register(MetricMsgs,
		"delivered network messages", metrics.Msgs)
	register(MetricMsgBytes,
		"estimated wire bytes sent (including dropped messages)", metrics.MsgBytes)
	register(MetricRoundsToAgreement,
		"virtual ticks per committed block (rounds per decision)", metrics.RoundsToAgreement)
	register(MetricAdversaryShare,
		"adversary's realized main-chain share (adversarial runs only)", metrics.AdversaryShare)
	register(MetricFairnessTVD,
		"realized-vs-entitled total variation distance (chain quality loss)", metrics.FairnessTVD)
	register(MetricMsgsDropped,
		"messages the link model destroyed (lossy drops, partition cuts)", metrics.MsgsDropped)
	register(MetricPartitionHealLag,
		"virtual time from partition heal to chain re-convergence (partition runs only)", metrics.PartitionHealLag)
}
