package blockadt

import "blockadt/internal/oracle"

// The two oracle families of the Θ hierarchy (Section 3.2) self-register.
func init() {
	RegisterOracle(OracleSpec{
		Name:        "prodigal",
		Description: "Θ_P: no bound on consumed tokens per block — PoW-style validation, forks allowed",
		New: func(cfg OracleConfig) *Oracle {
			cfg.K = oracle.Unbounded
			return oracle.New(cfg)
		},
	})
	RegisterOracle(OracleSpec{
		Name:        "frugal",
		Description: "Θ_F,k: at most k blocks consumed per predecessor — k=1 is consensus-grade",
		New: func(cfg OracleConfig) *Oracle {
			if cfg.K < 1 {
				cfg.K = 1
			}
			return oracle.New(cfg)
		},
	})
}
