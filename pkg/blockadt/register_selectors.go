package blockadt

import "blockadt/internal/blocktree"

// The four selection functions f : BT → BC self-register.
func init() {
	RegisterSelector(SelectorSpec{
		Name:        "longest",
		Description: "maximal-length chain, ties broken by lexicographically largest tip (Figure 2)",
		New:         func() Selector { return blocktree.LongestChain{} },
	})
	RegisterSelector(SelectorSpec{
		Name:        "heaviest",
		Description: "maximal cumulative work — Bitcoin's rule (Section 5.1)",
		New:         func() Selector { return blocktree.HeaviestChain{} },
	})
	RegisterSelector(SelectorSpec{
		Name:        "ghost",
		Description: "Greedy Heaviest-Observed SubTree descent — Ethereum's rule (Section 5.2)",
		New:         func() Selector { return blocktree.GHOST{} },
	})
	RegisterSelector(SelectorSpec{
		Name:        "single",
		Description: "unique-chain projection for fork-free trees (Red Belly, Hyperledger)",
		New:         func() Selector { return blocktree.SingleChain{} },
	})
}
