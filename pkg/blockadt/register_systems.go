package blockadt

import "blockadt/internal/chains"

// The seven Table 1 systems self-register in the paper's row order — the
// registration order is the default Systems dimension of a Matrix, which
// keeps sweep reports byte-identical with the pre-registry engine.
func init() {
	register := func(sys chains.System, desc, oracleName, selectorName string, meritAware bool) {
		RegisterSystem(SystemSpec{
			Name:        sys.Name(),
			Description: desc,
			Refinement:  sys.Refinement(),
			Expected:    sys.Expected(),
			Oracle:      oracleName,
			Selector:    selectorName,
			MeritAware:  meritAware,
			Run:         sys.Run,
		})
	}
	// The PoW systems drive their prodigal oracles from Params.Merits
	// (hashing power); the committee systems grant deterministically.
	register(chains.Bitcoin{},
		"permissionless PoW, heaviest-chain f, prodigal Θ_P (Section 5.1)",
		"prodigal", "heaviest", true)
	register(chains.Ethereum{},
		"permissionless PoW with GHOST selection, prodigal Θ_P (Section 5.2)",
		"prodigal", "ghost", true)
	register(chains.Algorand{},
		"committee BA⋆ agreement, frugal Θ_F,k=1 w.h.p. (Section 5.3)",
		"frugal", "longest", false)
	register(chains.ByzCoin{},
		"PoW-elected committee + PBFT, frugal Θ_F,k=1 (Section 5.4)",
		"frugal", "longest", false)
	register(chains.PeerCensus{},
		"PoW identities + BFT consensus, frugal Θ_F,k=1 (Section 5.5)",
		"frugal", "longest", false)
	register(chains.RedBelly{},
		"deterministic binary consensus, one chain by construction (Section 5.6)",
		"frugal", "single", false)
	register(chains.Hyperledger{},
		"consortium ordering service, frugal Θ_F,k=1 (Section 5.7)",
		"frugal", "single", false)
}
