package blockadt

import (
	"blockadt/internal/chains"
)

// Topology names of the scenario matrix's dissemination dimension.
const (
	// TopoComplete broadcasts every update directly to every process —
	// the complete graph every Table 1 simulator assumes. It is the
	// default: scenarios running on it carry no topology key component,
	// so pre-existing scenario keys (and the run-store entries behind
	// them) are unchanged.
	TopoComplete = "complete"
	// TopoGossip floods updates over a degree-3 ring-gossip overlay:
	// each process sends direct copies to its 3 ring successors and
	// relays first-seen updates onward. PoW systems only.
	TopoGossip = "gossip3"
	// TopoClustered splits the processes into two equal id clusters and
	// charges cross-cluster deliveries 4δ extra latency on top of the
	// link model. PoW systems only.
	TopoClustered = "clustered2"
)

// The three dissemination topologies self-register. "complete" is the
// default (nil Plan: the system's own broadcast runs untouched); the
// non-default topologies compose the executor's gossip and clustered
// plans. Both run on the generic PoW driver and model honest
// dissemination, so they support the PoW systems under any link model
// but no adversary (the adversarial strategies assume direct broadcast).
func init() {
	RegisterTopology(TopologySpec{
		Name:        TopoComplete,
		Description: "complete graph: every update broadcast directly to every process (the Table 1 setting)",
	})
	RegisterTopology(TopologySpec{
		Name:        TopoGossip,
		Description: "degree-3 ring-gossip overlay: direct copies to 3 ring successors, flooding relays the rest",
		Params:      "k=3",
		Supports: func(system, link, adversary string) bool {
			return chains.SupportsPoWLinks(system) && adversary == AdvNone
		},
		Plan: func(ex *Execution) {
			ex.Topology = chains.GossipTopology(3)
		},
		// Flooding still delivers every update to every process (relays
		// ride the same links), so the link model's prediction stands.
	})
	RegisterTopology(TopologySpec{
		Name:        TopoClustered,
		Description: "two latency clusters: cross-cluster deliveries pay 4δ extra on top of the link model",
		Params:      "clusters=2,x=4δ",
		// Bitcoin only: heaviest-chain selection absorbs the cluster
		// divergence quickly, so the EC prediction holds across seeds.
		// GHOST keeps both clusters' subtrees competitive for long
		// stretches and the finite-run checker (rightly) flags the
		// divergence on a seed-dependent fraction of runs, which would
		// turn the sweep's expected-level verdict into a coin flip.
		Supports: func(system, link, adversary string) bool {
			return system == "Bitcoin" && adversary == AdvNone
		},
		Plan: func(ex *Execution) {
			ex.Topology = chains.ClusteredTopology(2, 4)
		},
		// Extra latency delays convergence without destroying it: the
		// link model's prediction stands.
	})
}
