package blockadt

import (
	"fmt"
	"sync"
)

// registry is a name-keyed, registration-order-preserving store. Order
// matters: the default scenario matrix expands systems in registration
// order, which for the built-ins is the paper's Table 1 order — keeping
// sweep reports byte-identical across refactors.
type registry[T any] struct {
	kind  string
	mu    sync.RWMutex
	order []string
	byKey map[string]T
}

func newRegistry[T any](kind string) *registry[T] {
	return &registry[T]{kind: kind, byKey: map[string]T{}}
}

func (r *registry[T]) register(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("blockadt: cannot register a %s with an empty name", r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[name]; dup {
		panic(fmt.Sprintf("blockadt: %s %q registered twice", r.kind, name))
	}
	r.order = append(r.order, name)
	r.byKey[name] = v
}

func (r *registry[T]) lookup(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byKey[name]
	if !ok {
		return v, &UnknownNameError{
			Kind:       r.kind,
			Name:       name,
			Registered: append([]string(nil), r.order...),
		}
	}
	return v, nil
}

// ensure registers name→v unless it is already present (in which case the
// existing registration wins). It exists for idempotent variant
// registration — experiment link variants are derived from their
// parameters, so same name means same spec.
func (r *registry[T]) ensure(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("blockadt: cannot register a %s with an empty name", r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byKey[name]; ok {
		return
	}
	r.order = append(r.order, name)
	r.byKey[name] = v
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

func (r *registry[T]) all() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]T, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byKey[name])
	}
	return out
}

// The seven registries backing the façade.
var (
	systemRegistry    = newRegistry[SystemSpec]("system")
	oracleRegistry    = newRegistry[OracleSpec]("oracle")
	selectorRegistry  = newRegistry[SelectorSpec]("selector")
	linkRegistry      = newRegistry[LinkSpec]("link")
	adversaryRegistry = newRegistry[AdversarySpec]("adversary")
	topologyRegistry  = newRegistry[TopologySpec]("topology")
	metricRegistry    = newRegistry[MetricSpec]("metric")
)

// RegistryEntry is one registration as the generic enumeration exposes
// it: the registry key, an optional detail column (the paper's
// refinement for systems, empty elsewhere), and the one-line description.
type RegistryEntry struct {
	Name, Detail, Description string
}

// RegistryInfo describes one registry: its kind (singular), the section
// title `btadt list` prints, and its entries in registration order.
type RegistryInfo struct {
	Kind    string
	Title   string
	Entries []RegistryEntry
}

// registryEnumerators lists every registry in presentation order. New
// registries are added here once; everything that enumerates registries
// generically (`btadt list`, completeness tests) picks them up with no
// per-registry code.
var registryEnumerators = []func() RegistryInfo{
	func() RegistryInfo {
		return enumerate("system", "systems (Table 1 order)", systemRegistry,
			func(s SystemSpec) RegistryEntry {
				return RegistryEntry{Name: s.Name, Detail: s.Refinement, Description: s.Description}
			})
	},
	func() RegistryInfo {
		return enumerate("oracle", "oracles", oracleRegistry,
			func(o OracleSpec) RegistryEntry { return RegistryEntry{Name: o.Name, Description: o.Description} })
	},
	func() RegistryInfo {
		return enumerate("selector", "selectors", selectorRegistry,
			func(s SelectorSpec) RegistryEntry { return RegistryEntry{Name: s.Name, Description: s.Description} })
	},
	func() RegistryInfo {
		info := RegistryInfo{Kind: "link", Title: "links"}
		for _, l := range linkRegistry.all() {
			// Hidden variants (experiment-registered parameterizations)
			// stay resolvable by name but out of the presentation surface.
			if l.Hidden {
				continue
			}
			info.Entries = append(info.Entries, RegistryEntry{Name: l.Name, Detail: l.Params, Description: l.Description})
		}
		return info
	},
	func() RegistryInfo {
		return enumerate("adversary", "adversaries", adversaryRegistry,
			func(a AdversarySpec) RegistryEntry { return RegistryEntry{Name: a.Name, Description: a.Description} })
	},
	func() RegistryInfo {
		info := RegistryInfo{Kind: "topology", Title: "topologies"}
		for _, t := range topologyRegistry.all() {
			if t.Hidden {
				continue
			}
			info.Entries = append(info.Entries, RegistryEntry{Name: t.Name, Detail: t.Params, Description: t.Description})
		}
		return info
	},
	func() RegistryInfo {
		return enumerate("metric", "metrics", metricRegistry,
			func(m MetricSpec) RegistryEntry { return RegistryEntry{Name: m.Name, Description: m.Description} })
	},
}

func enumerate[T any](kind, title string, r *registry[T], entry func(T) RegistryEntry) RegistryInfo {
	info := RegistryInfo{Kind: kind, Title: title}
	for _, v := range r.all() {
		info.Entries = append(info.Entries, entry(v))
	}
	return info
}

// Registries enumerates every façade registry with its entries in
// registration order — the generic surface `btadt list` renders, which
// therefore picks up new registries and registrations without
// per-registry code.
func Registries() []RegistryInfo {
	out := make([]RegistryInfo, 0, len(registryEnumerators))
	for _, enum := range registryEnumerators {
		out = append(out, enum())
	}
	return out
}

// RegisterSystem adds a system to the registry. It panics on an empty or
// duplicate name or a nil Run, mirroring database/sql's driver contract:
// registration happens in init functions, where failing loudly beats
// failing later by name lookup.
func RegisterSystem(s SystemSpec) {
	if s.Run == nil {
		panic(fmt.Sprintf("blockadt: system %q registered without a Run function", s.Name))
	}
	systemRegistry.register(s.Name, s)
}

// RegisterOracle adds a token-oracle constructor to the registry.
func RegisterOracle(o OracleSpec) {
	if o.New == nil {
		panic(fmt.Sprintf("blockadt: oracle %q registered without a constructor", o.Name))
	}
	oracleRegistry.register(o.Name, o)
}

// RegisterSelector adds a selection function f to the registry.
func RegisterSelector(s SelectorSpec) {
	if s.New == nil {
		panic(fmt.Sprintf("blockadt: selector %q registered without a constructor", s.Name))
	}
	selectorRegistry.register(s.Name, s)
}

// RegisterLink adds a communication model to the registry.
func RegisterLink(l LinkSpec) {
	linkRegistry.register(l.Name, l)
}

// RegisterAdversary adds a fault model to the registry.
func RegisterAdversary(a AdversarySpec) {
	adversaryRegistry.register(a.Name, a)
}

// RegisterTopology adds a dissemination topology to the registry.
func RegisterTopology(t TopologySpec) {
	topologyRegistry.register(t.Name, t)
}

// RegisterMetric adds a run-measurement collector to the registry. Like
// the other six registries it panics on an empty or duplicate name or a
// nil Compute.
func RegisterMetric(m MetricSpec) {
	if m.Compute == nil {
		panic(fmt.Sprintf("blockadt: metric %q registered without a Compute function", m.Name))
	}
	metricRegistry.register(m.Name, m)
}

// LookupSystem returns the registered system spec, or an error naming the
// registered alternatives.
func LookupSystem(name string) (SystemSpec, error) { return systemRegistry.lookup(name) }

// LookupOracle returns the registered oracle spec.
func LookupOracle(name string) (OracleSpec, error) { return oracleRegistry.lookup(name) }

// LookupSelector returns the registered selector spec.
func LookupSelector(name string) (SelectorSpec, error) { return selectorRegistry.lookup(name) }

// LookupLink returns the registered link spec.
func LookupLink(name string) (LinkSpec, error) { return linkRegistry.lookup(name) }

// LookupAdversary returns the registered adversary spec.
func LookupAdversary(name string) (AdversarySpec, error) { return adversaryRegistry.lookup(name) }

// LookupTopology returns the registered topology spec.
func LookupTopology(name string) (TopologySpec, error) { return topologyRegistry.lookup(name) }

// LookupMetric returns the registered metric spec.
func LookupMetric(name string) (MetricSpec, error) { return metricRegistry.lookup(name) }

// Systems returns every registered system in registration order (for the
// built-ins, Table 1 order).
func Systems() []SystemSpec { return systemRegistry.all() }

// Oracles returns every registered oracle in registration order.
func Oracles() []OracleSpec { return oracleRegistry.all() }

// Selectors returns every registered selector in registration order.
func Selectors() []SelectorSpec { return selectorRegistry.all() }

// Links returns every registered link model in registration order.
func Links() []LinkSpec { return linkRegistry.all() }

// Adversaries returns every registered adversary in registration order.
func Adversaries() []AdversarySpec { return adversaryRegistry.all() }

// Topologies returns every registered topology in registration order.
func Topologies() []TopologySpec { return topologyRegistry.all() }

// Metrics returns every registered metric collector in registration
// order.
func Metrics() []MetricSpec { return metricRegistry.all() }

// MetricNames returns the registered metric names in registration order
// — the "all metrics" set WithMetrics() and `btadt stats` default to.
func MetricNames() []string { return metricRegistry.names() }

// SystemNames returns the registered system names in registration order —
// the default Systems dimension of a Matrix.
func SystemNames() []string { return systemRegistry.names() }
