package blockadt

import (
	"fmt"
	"strings"
	"sync"
)

// registry is a name-keyed, registration-order-preserving store. Order
// matters: the default scenario matrix expands systems in registration
// order, which for the built-ins is the paper's Table 1 order — keeping
// sweep reports byte-identical across refactors.
type registry[T any] struct {
	kind  string
	mu    sync.RWMutex
	order []string
	byKey map[string]T
}

func newRegistry[T any](kind string) *registry[T] {
	return &registry[T]{kind: kind, byKey: map[string]T{}}
}

func (r *registry[T]) register(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("blockadt: cannot register a %s with an empty name", r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[name]; dup {
		panic(fmt.Sprintf("blockadt: %s %q registered twice", r.kind, name))
	}
	r.order = append(r.order, name)
	r.byKey[name] = v
}

func (r *registry[T]) lookup(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byKey[name]
	if !ok {
		return v, fmt.Errorf("blockadt: unknown %s %q (registered: %s)",
			r.kind, name, strings.Join(r.order, ", "))
	}
	return v, nil
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

func (r *registry[T]) all() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]T, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byKey[name])
	}
	return out
}

// The five registries backing the façade.
var (
	systemRegistry    = newRegistry[SystemSpec]("system")
	oracleRegistry    = newRegistry[OracleSpec]("oracle")
	selectorRegistry  = newRegistry[SelectorSpec]("selector")
	linkRegistry      = newRegistry[LinkSpec]("link")
	adversaryRegistry = newRegistry[AdversarySpec]("adversary")
)

// RegisterSystem adds a system to the registry. It panics on an empty or
// duplicate name or a nil Run, mirroring database/sql's driver contract:
// registration happens in init functions, where failing loudly beats
// failing later by name lookup.
func RegisterSystem(s SystemSpec) {
	if s.Run == nil {
		panic(fmt.Sprintf("blockadt: system %q registered without a Run function", s.Name))
	}
	systemRegistry.register(s.Name, s)
}

// RegisterOracle adds a token-oracle constructor to the registry.
func RegisterOracle(o OracleSpec) {
	if o.New == nil {
		panic(fmt.Sprintf("blockadt: oracle %q registered without a constructor", o.Name))
	}
	oracleRegistry.register(o.Name, o)
}

// RegisterSelector adds a selection function f to the registry.
func RegisterSelector(s SelectorSpec) {
	if s.New == nil {
		panic(fmt.Sprintf("blockadt: selector %q registered without a constructor", s.Name))
	}
	selectorRegistry.register(s.Name, s)
}

// RegisterLink adds a communication model to the registry.
func RegisterLink(l LinkSpec) {
	linkRegistry.register(l.Name, l)
}

// RegisterAdversary adds a fault model to the registry.
func RegisterAdversary(a AdversarySpec) {
	adversaryRegistry.register(a.Name, a)
}

// LookupSystem returns the registered system spec, or an error naming the
// registered alternatives.
func LookupSystem(name string) (SystemSpec, error) { return systemRegistry.lookup(name) }

// LookupOracle returns the registered oracle spec.
func LookupOracle(name string) (OracleSpec, error) { return oracleRegistry.lookup(name) }

// LookupSelector returns the registered selector spec.
func LookupSelector(name string) (SelectorSpec, error) { return selectorRegistry.lookup(name) }

// LookupLink returns the registered link spec.
func LookupLink(name string) (LinkSpec, error) { return linkRegistry.lookup(name) }

// LookupAdversary returns the registered adversary spec.
func LookupAdversary(name string) (AdversarySpec, error) { return adversaryRegistry.lookup(name) }

// Systems returns every registered system in registration order (for the
// built-ins, Table 1 order).
func Systems() []SystemSpec { return systemRegistry.all() }

// Oracles returns every registered oracle in registration order.
func Oracles() []OracleSpec { return oracleRegistry.all() }

// Selectors returns every registered selector in registration order.
func Selectors() []SelectorSpec { return selectorRegistry.all() }

// Links returns every registered link model in registration order.
func Links() []LinkSpec { return linkRegistry.all() }

// Adversaries returns every registered adversary in registration order.
func Adversaries() []AdversarySpec { return adversaryRegistry.all() }

// SystemNames returns the registered system names in registration order —
// the default Systems dimension of a Matrix.
func SystemNames() []string { return systemRegistry.names() }
