package blockadt

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestRegistrationOrderIsTable1 pins the registration order of the
// built-in systems to the paper's Table 1 row order — the default Systems
// dimension of a Matrix, and therefore the byte layout of every sweep
// report.
func TestRegistrationOrderIsTable1(t *testing.T) {
	want := []string{"Bitcoin", "Ethereum", "Algorand", "ByzCoin", "PeerCensus", "RedBelly", "Hyperledger"}
	got := SystemNames()
	if len(got) < len(want) {
		t.Fatalf("registered %d systems, want at least %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("system %d registered as %q, want %q (registration order is the Table 1 contract)", i, got[i], name)
		}
	}
}

// TestRegistriesPopulated is the in-process version of the `btadt list`
// smoke test: every registry has entries and every entry carries a
// description.
func TestRegistriesPopulated(t *testing.T) {
	if len(Systems()) == 0 || len(Oracles()) == 0 || len(Selectors()) == 0 ||
		len(Links()) == 0 || len(Adversaries()) == 0 {
		t.Fatal("a registry is empty: a registration init() did not run")
	}
	for _, s := range Systems() {
		if s.Description == "" || s.Refinement == "" || s.Oracle == "" || s.Selector == "" {
			t.Errorf("system %q registered with incomplete spec", s.Name)
		}
		if _, err := LookupOracle(s.Oracle); err != nil {
			t.Errorf("system %q names unregistered oracle %q", s.Name, s.Oracle)
		}
		if _, err := LookupSelector(s.Selector); err != nil {
			t.Errorf("system %q names unregistered selector %q", s.Name, s.Selector)
		}
	}
}

// TestRegistryRoundTrip asserts the façade's core contract: every
// registered system name constructs a live System via New, the System's
// four operations work, and a 1-config sweep of the name is deterministic
// — two runs with the same root seed produce byte-identical canonical
// JSON.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range SystemNames() {
		t.Run(name, func(t *testing.T) {
			sys, err := New(name, WithSeed(7))
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			if sys.Name() != name {
				t.Fatalf("instance name %q, want %q", sys.Name(), name)
			}
			ok, err := sys.Append(0, Block{ID: "rt-1"})
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			if !ok {
				t.Fatal("Append refused with an always-granting default merit")
			}
			chain := sys.Read(0)
			if got := chain.Tip().ID; got != "rt-1" {
				t.Fatalf("Read tip %q, want rt-1", got)
			}
			if reads := len(sys.History().Reads()); reads != 1 {
				t.Fatalf("history recorded %d reads, want 1", reads)
			}
			if _, err := sys.Finality(); err != nil {
				t.Fatalf("Finality: %v", err)
			}

			m := Matrix{Systems: []string{name}, TargetBlocks: 12, RootSeed: 11}
			first, err := Run(m, 1)
			if err != nil {
				t.Fatalf("sweep run 1: %v", err)
			}
			second, err := Run(m, 1)
			if err != nil {
				t.Fatalf("sweep run 2: %v", err)
			}
			if first.Total != 1 {
				t.Fatalf("1-config matrix ran %d configs", first.Total)
			}
			j1, err := first.EncodeJSON()
			if err != nil {
				t.Fatal(err)
			}
			j2, err := second.EncodeJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("same seed, different JSON:\n--- first ---\n%s\n--- second ---\n%s", j1, j2)
			}
		})
	}
}

// TestUnknownNamesFailLoudly covers the error path of every lookup the
// façade exposes: a typo must name the registered alternatives instead of
// silently doing nothing.
func TestUnknownNamesFailLoudly(t *testing.T) {
	if _, err := New("Dogecoin"); err == nil {
		t.Error("New accepted an unregistered system")
	} else if !strings.Contains(err.Error(), "Bitcoin") {
		t.Errorf("error %q does not name the registered alternatives", err)
	}
	if _, err := New("Bitcoin", WithSelector("wormhole")); err == nil {
		t.Error("New accepted an unregistered selector")
	}
	if _, err := New("Bitcoin", WithOracle("delphi")); err == nil {
		t.Error("New accepted an unregistered oracle")
	}
	if _, err := Simulate("Dogecoin"); err == nil {
		t.Error("Simulate accepted an unregistered system")
	}
	if _, err := Simulate("Bitcoin", WithLink("wormhole")); err == nil {
		t.Error("Simulate accepted an unregistered link")
	}
	if _, err := Simulate("Hyperledger", WithLink(LinkAsync)); err == nil {
		t.Error("Simulate accepted a link the system does not implement")
	}
	if _, err := SimulateAdversary("Bitcoin", "gremlin"); err == nil {
		t.Error("SimulateAdversary accepted an unregistered adversary")
	}
	if _, err := SimulateAdversary("Hyperledger", AdvSelfish); err == nil {
		t.Error("SimulateAdversary accepted a system the adversary does not support")
	}
	if _, err := NewSelector("wormhole"); err == nil {
		t.Error("NewSelector accepted an unregistered name")
	}
	if _, err := NewOracleByName("delphi", OracleConfig{}); err == nil {
		t.Error("NewOracleByName accepted an unregistered name")
	}
	if _, err := SimulateAdversary("Bitcoin", AdvSelfish, WithLink("wormhole")); err == nil {
		t.Error("SimulateAdversary accepted an unregistered link")
	}
	for _, m := range []Matrix{
		{Systems: []string{"Dogecoin"}},
		{Links: []string{"wormhole"}},
		{Adversaries: []string{"gremlin"}},
		{Adversaries: []string{AdvSelfish}, Alpha: 1.5},
		{Adversaries: []string{AdvSelfish}, Alpha: -0.1},
	} {
		if _, err := m.Configs(); err == nil {
			t.Errorf("matrix %+v expanded despite an unregistered dimension", m)
		}
	}
	for name, cfg := range map[string]Scenario{
		"unknown system":     {System: "Dogecoin", Link: LinkSync, Adversary: AdvNone, N: 4, Blocks: 5},
		"unknown link":       {System: "Bitcoin", Link: "wormhole", Adversary: AdvNone, N: 4, Blocks: 5},
		"unknown adversary":  {System: "Bitcoin", Link: LinkSync, Adversary: "gremlin", N: 4, Blocks: 5},
		"unsupported link":   {System: "Hyperledger", Link: LinkAsync, Adversary: AdvNone, N: 4, Blocks: 5},
		"unsupported combo":  {System: "Hyperledger", Link: LinkSync, Adversary: AdvSelfish, Alpha: 0.3, N: 4, Blocks: 5},
		"degenerate alpha":   {System: "Bitcoin", Link: LinkSync, Adversary: AdvSelfish, Alpha: 0, N: 4, Blocks: 5},
		"out-of-range alpha": {System: "Bitcoin", Link: LinkSync, Adversary: AdvSelfish, Alpha: 1.5, N: 4, Blocks: 5},
	} {
		if _, err := RunScenario(cfg); err == nil {
			t.Errorf("RunScenario accepted a scenario with %s: %+v", name, cfg)
		}
	}
}

// TestOptionScopeEnforced pins the fail-loudly contract for options
// passed outside their documented scope: they must error, not be
// silently ignored.
func TestOptionScopeEnforced(t *testing.T) {
	if _, err := New("Bitcoin", WithBlocks(10)); err == nil {
		t.Error("New ignored WithBlocks instead of rejecting it")
	}
	if _, err := New("Bitcoin", WithLink(LinkSync)); err == nil {
		t.Error("New ignored WithLink instead of rejecting it")
	}
	if _, err := New("Bitcoin", WithAlpha(0.3)); err == nil {
		t.Error("New ignored WithAlpha instead of rejecting it")
	}
	if _, err := Simulate("Bitcoin", WithSelector("ghost")); err == nil {
		t.Error("Simulate ignored WithSelector instead of rejecting it")
	}
	if _, err := Simulate("Bitcoin", WithOracleInstance(NewFrugalOracle(1, 1, 1))); err == nil {
		t.Error("Simulate ignored WithOracleInstance instead of rejecting it")
	}
	if _, err := Simulate("Bitcoin", WithAlpha(0.3)); err == nil {
		t.Error("Simulate ignored WithAlpha instead of rejecting it")
	}
	if _, err := SimulateAdversary("Bitcoin", AdvSelfish, WithFinalityDepth(3)); err == nil {
		t.Error("SimulateAdversary ignored WithFinalityDepth instead of rejecting it")
	}
	if _, err := SimulateAdversary("Bitcoin", AdvSelfish, WithAdversary(AdvSelfish)); err == nil {
		t.Error("SimulateAdversary ignored a redundant WithAdversary instead of rejecting it")
	}
	orc := NewFrugalOracle(1, 1, 1)
	if _, err := New("Bitcoin", WithOracleInstance(orc), WithSeed(42)); err == nil {
		t.Error("New ignored WithSeed alongside WithOracleInstance instead of rejecting the conflict")
	}
	if _, err := New("Bitcoin", WithOracleInstance(orc), WithMerits(1, 1)); err == nil {
		t.Error("New ignored WithMerits alongside WithOracleInstance instead of rejecting the conflict")
	}
	if _, err := Simulate("Algorand", WithMerits(0.6, 0.1, 0.1, 0.1, 0.1), WithN(5)); err == nil {
		t.Error("Simulate ignored WithMerits for a deterministic-grant system instead of rejecting it")
	}
	if _, err := Simulate("Bitcoin", WithMerits(0.5, 0.5), WithN(3)); err == nil {
		t.Error("Simulate accepted a merit vector shorter than the process count (the simulator would silently fall back to uniform)")
	}
	if _, err := SimulateAdversary("Bitcoin", AdvSelfish, WithMerits(0.5, 0.5)); err == nil {
		t.Error("SimulateAdversary ignored WithMerits instead of rejecting it (the adversary model derives merits from alpha)")
	}
}

// TestExpectedLevelFollowsLink pins the link-adjusted expectation the
// sweep engine uses, exposed to Simulate callers via ExpectedLevel.
func TestExpectedLevelFollowsLink(t *testing.T) {
	if lvl, err := ExpectedLevel("Hyperledger", LinkSync); err != nil || lvl != LevelSC {
		t.Errorf("ExpectedLevel(Hyperledger, sync) = %v, %v; want SC", lvl, err)
	}
	if lvl, err := ExpectedLevel("Bitcoin", LinkAsync); err != nil || lvl != LevelEC {
		t.Errorf("ExpectedLevel(Bitcoin, async) = %v, %v; want EC", lvl, err)
	}
	if _, err := ExpectedLevel("Hyperledger", LinkAsync); err == nil {
		t.Error("ExpectedLevel accepted a link the system does not implement")
	}
	if _, err := ExpectedLevel("Bitcoin", "wormhole"); err == nil {
		t.Error("ExpectedLevel accepted an unregistered link")
	}
}

// TestRunScenarioNormalizesN pins the honest-path entitlement vector to
// the simulators' N default: an N=0 scenario must not compare an 8-process
// run against an empty merit vector (which would report a fair run as
// TVD ≈ 0.5).
func TestRunScenarioNormalizesN(t *testing.T) {
	res, err := RunScenario(Scenario{System: "Bitcoin", Link: LinkSync, Adversary: AdvNone, Blocks: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// An empty entitlement vector degenerates to exactly 0.5; uniform
	// merits over the 8 defaulted miners stay well below it.
	if res.FairnessTVD >= 0.4 {
		t.Fatalf("uniform mining reported TVD %.3f — the entitlement vector did not match the run's processes", res.FairnessTVD)
	}
}

// TestRunScenarioMatchesSweep pins the exported single-scenario entry
// point to the engine: running a Configs-expanded scenario directly
// reproduces the sweep's result for it.
func TestRunScenarioMatchesSweep(t *testing.T) {
	m := Matrix{Systems: []string{"Bitcoin"}, TargetBlocks: 10, RootSeed: 5}
	rep, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunScenario(rep.Results[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	a, b := direct, rep.Results[0]
	a.WallNS, b.WallNS = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunScenario diverged from the sweep engine:\ndirect: %+v\nsweep:  %+v", a, b)
	}
}

// TestUserRegistrationExtends registers a toy system/link/adversary and
// asserts the registries make them constructible and sweepable by name —
// the plug-in contract docs/api.md documents.
func TestUserRegistrationExtends(t *testing.T) {
	bitcoin, err := LookupSystem("Bitcoin")
	if err != nil {
		t.Fatal(err)
	}
	// The registry is process-global and offers no unregistration (like
	// database/sql drivers), so guard for repeated runs (-count=2).
	if _, err := LookupSystem("TestCoin"); err != nil {
		RegisterSystem(SystemSpec{
			Name:        "TestCoin",
			Description: "test-only clone of Bitcoin",
			Refinement:  bitcoin.Refinement,
			Expected:    bitcoin.Expected,
			Oracle:      bitcoin.Oracle,
			Selector:    bitcoin.Selector,
			Run:         bitcoin.Run,
		})
	}
	if _, err := New("TestCoin"); err != nil {
		t.Fatalf("registered system not constructible: %v", err)
	}
	rep, err := Run(Matrix{Systems: []string{"TestCoin"}, TargetBlocks: 10, RootSeed: 3}, 1)
	if err != nil {
		t.Fatalf("registered system not sweepable: %v", err)
	}
	if rep.Total != 1 || !rep.Results[0].Match {
		t.Fatalf("TestCoin sweep: total=%d match=%v", rep.Total, rep.Results[0].Match)
	}
	// The clone shares Bitcoin's simulator and derives its seed from a
	// different canonical key, so its result must differ from Bitcoin's
	// at the same root seed — the per-name stream independence contract.
	bitRep, err := Run(Matrix{Systems: []string{"Bitcoin"}, TargetBlocks: 10, RootSeed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bitRep.Results[0].Config.Seed == rep.Results[0].Config.Seed {
		t.Fatal("distinct system names derived the same scenario seed")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterSystem(SystemSpec{Name: "TestCoin", Run: bitcoin.Run})
}

// TestProfileComposition pins the system → (oracle, selector) profiles a
// live instance composes by default.
func TestProfileComposition(t *testing.T) {
	cases := []struct {
		system, oracleName, selectorName string
	}{
		{"Bitcoin", "Θ_P", "heaviest"},
		{"Ethereum", "Θ_P", "ghost"},
		{"Hyperledger", "Θ_F,k=1", "single"},
	}
	for _, c := range cases {
		sys, err := New(c.system)
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Oracle().Name(); got != c.oracleName {
			t.Errorf("%s composed oracle %q, want %q", c.system, got, c.oracleName)
		}
		if got := sys.Selector().Name(); got != c.selectorName {
			t.Errorf("%s composed selector %q, want %q", c.system, got, c.selectorName)
		}
	}
}

// TestFinalityTracksDepth drives a live instance past the gadget depth
// and asserts the finalized prefix lags the selected chain by exactly d
// blocks.
func TestFinalityTracksDepth(t *testing.T) {
	const depth, total = 3, 8
	sys, err := New("Hyperledger", WithFinalityDepth(depth), WithSelector("longest"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if ok, err := sys.Append(0, Block{ID: BlockID(fmt.Sprintf("f%02d", i))}); err != nil || !ok {
			t.Fatalf("append %d: ok=%v err=%v", i, ok, err)
		}
	}
	fin, err := sys.Finality()
	if err != nil {
		t.Fatal(err)
	}
	// total appends + genesis, truncated by depth.
	if want := total + 1 - depth; len(fin) != want {
		t.Fatalf("finalized %d blocks, want %d", len(fin), want)
	}
}
